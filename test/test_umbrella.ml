(* Smoke test for the Lan_repro umbrella: the curated public API exposes
   every subsystem under one module, and the paths actually link. *)

let test_umbrella_paths () =
  let costs = Lan_repro.Analysis.Costs.standalone in
  Alcotest.(check (float 1e-9)) "via umbrella" 140.59
    (Lan_repro.Analysis.Error_free.blast costs ~packets:64);
  let rng = Lan_repro.Stats.Rng.create ~seed:1 in
  Alcotest.(check bool) "rng" true (Lan_repro.Stats.Rng.float rng < 1.0);
  let result =
    Lan_repro.Simnet.Driver.run
      ~suite:(Lan_repro.Protocol.Suite.Blast Lan_repro.Protocol.Blast.Go_back_n)
      ~config:(Lan_repro.Protocol.Config.make ~total_packets:4 ())
      ()
  in
  Alcotest.(check bool) "sim via umbrella" true
    (result.Lan_repro.Simnet.Driver.outcome = Lan_repro.Protocol.Action.Success);
  Alcotest.(check bool) "experiments registered" true
    (List.length Lan_repro.Experiments.all >= 19)

let () =
  Alcotest.run "umbrella"
    [ ("lan_repro", [ Alcotest.test_case "paths link" `Quick test_umbrella_paths ]) ]
