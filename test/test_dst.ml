(* Deterministic whole-system simulation: the memnet wire, and the full
   engine + swarm harness under virtual time.

   The memnet tests pin the wire semantics the DST harness depends on:
   latency-delayed delivery, close waking a parked reader, and in-flight
   datagrams landing on a rebound port (the address-reuse collision fuel).
   The harness tests run the entire system — a real [Server.Engine] and real
   [Sockets.Peer] senders — and assert the replay contract: same seed, same
   journal, bit for bit, at any parallelism. *)

module Sim = Eventsim.Sim
module Proc = Eventsim.Proc
module Time = Eventsim.Time
module Net = Memnet.Net

let default_latency_ns = 50_000

let in_sim ?(until = 1_000_000_000) f =
  let sim = Sim.create () in
  Proc.spawn (Proc.env sim) (fun () -> f sim);
  Sim.run ~until:(Time.of_ns until) sim;
  sim

(* ----------------------------------------------------------------- memnet *)

let test_memnet_delivery () =
  let got = ref None in
  ignore
    (in_sim (fun sim ->
         let net = Net.create ~sim ~seed:1 () in
         let a = Net.bind net and b = Net.bind net in
         (Net.transport a).Sockets.Transport.send ~peer:(Net.address b)
           ~on_outcome:ignore (Bytes.of_string "ping");
         match (Net.transport b).Sockets.Transport.recv ~timeout_ns:(Some 1_000_000) with
         | `Datagram { Sockets.Transport.buf; len; from } ->
             got := Some (Bytes.sub_string buf 0 len, from, Time.to_ns (Sim.now sim))
         | `Timeout -> ()));
  match !got with
  | None -> Alcotest.fail "datagram never delivered"
  | Some (payload, from, arrived_ns) ->
      Alcotest.(check string) "payload" "ping" payload;
      Alcotest.(check bool) "from sender's address" true (from = Unix.ADDR_INET (Unix.inet_addr_loopback, 40_000));
      Alcotest.(check int) "arrives after one propagation delay" default_latency_ns arrived_ns

let test_memnet_recv_timeout () =
  let result = ref None in
  ignore
    (in_sim (fun sim ->
         let net = Net.create ~sim ~seed:1 () in
         let a = Net.bind net in
         (match (Net.transport a).Sockets.Transport.recv ~timeout_ns:(Some 3_000_000) with
         | `Timeout -> result := Some (Time.to_ns (Sim.now sim))
         | `Datagram _ -> ())));
  match !result with
  | None -> Alcotest.fail "recv neither timed out nor returned"
  | Some ns -> Alcotest.(check int) "times out at the deadline" 3_000_000 ns

let test_memnet_close_wakes_reader () =
  let outcome = ref "pending" in
  ignore
    (in_sim (fun sim ->
         let net = Net.create ~sim ~seed:1 () in
         let victim = Net.bind net in
         ignore
           (Sim.schedule_at sim (Time.of_ns 2_000_000) (fun () -> Net.close victim)
             : Sim.handle);
         try
           match (Net.transport victim).Sockets.Transport.recv ~timeout_ns:None with
           | `Timeout -> outcome := "timeout"
           | `Datagram _ -> outcome := "datagram"
         with Net.Closed port -> outcome := Printf.sprintf "closed:%d" (port land 0xFFFF)));
  Alcotest.(check string) "parked reader raises Closed" "closed:40000" !outcome

let test_memnet_port_reuse_receives_in_flight () =
  (* A datagram launched at the old binding lands on whoever holds the port
     when it arrives — the ambiguity the churn reuse scenario feeds on. *)
  let got = ref None in
  ignore
    (in_sim (fun sim ->
         let net = Net.create ~sim ~seed:1 () in
         let a = Net.bind net in
         let victim = Net.bind net in
         let port = Net.port victim in
         (Net.transport a).Sockets.Transport.send ~peer:(Net.address victim)
           ~on_outcome:ignore (Bytes.of_string "stale");
         Net.close victim;
         let replacement = Net.bind ~port net in
         match
           (Net.transport replacement).Sockets.Transport.recv
             ~timeout_ns:(Some 1_000_000)
         with
         | `Datagram { Sockets.Transport.buf; len; _ } ->
             got := Some (Bytes.sub_string buf 0 len)
         | `Timeout -> ()));
  Alcotest.(check (option string)) "rebound port receives it" (Some "stale") !got

(* ---------------------------------------------------- engine over memnet *)

let req_message ~transfer_id ~packet_bytes ~total_bytes ~data_crc =
  let total_packets = (total_bytes + packet_bytes - 1) / packet_bytes in
  {
    (Packet.Message.req ~transfer_id ~total:total_packets) with
    Packet.Message.payload =
      Sockets.Suite_codec.encode ~data_crc ~packet_bytes ~total_bytes
        (Protocol.Suite.Blast Protocol.Blast.Go_back_n);
  }

(* Address reuse at the engine: a second REQ on the same (address, id) with
   different geometry supersedes the stale flow; an identical duplicate REQ
   only re-acks. *)
let test_engine_supersede_on_address_reuse () =
  let sim = Sim.create () in
  let net = Net.create ~sim ~seed:3 () in
  let server_ep = Net.bind ~port:7_000 net in
  let clock () = Time.to_ns (Sim.now sim) in
  let engine =
    Server.Engine.create ~max_flows:4
      ~ctx:
        (Sockets.Io_ctx.make ~clock
           ~tuning:
             (Protocol.Tuning.fixed ~retransmit_ns:5_000_000 ~max_attempts:3 ())
           ())
      ~transport:(Net.transport server_ep) ()
  in
  let env = Proc.env sim in
  Proc.spawn env (fun () -> Server.Engine.run engine);
  Proc.spawn env (fun () ->
      let ep = Net.bind ~port:6_000 net in
      let send m =
        (Net.transport ep).Sockets.Transport.send ~peer:(Net.address server_ep)
          ~on_outcome:ignore
          (Packet.Codec.encode m)
      in
      let original = req_message ~transfer_id:1 ~packet_bytes:512 ~total_bytes:2_048 ~data_crc:11l in
      send original;
      Proc.sleep (Time.span_ns 1_000_000);
      (* The same REQ again: a retransmitted handshake, not a new sender. *)
      send original;
      Proc.sleep (Time.span_ns 1_000_000);
      (* Same address, same id, different payload: a new process on the
         reused port. *)
      send (req_message ~transfer_id:1 ~packet_bytes:512 ~total_bytes:4_096 ~data_crc:99l);
      Proc.sleep (Time.span_ns 5_000_000);
      Alcotest.(check (list string))
        "engine invariants hold mid-churn" []
        (Server.Engine.invariant_violations engine);
      Server.Engine.stop engine);
  Sim.run ~until:(Time.of_ns 1_000_000_000) sim;
  let t = Server.Engine.totals engine in
  Alcotest.(check int) "duplicate REQ does not supersede; new geometry does" 1
    t.Server.Engine.superseded;
  Alcotest.(check int) "both incarnations admitted" 2 t.Server.Engine.accepted;
  Alcotest.(check int) "both settled as aborts" 2 t.Server.Engine.aborted;
  Alcotest.(check (list string))
    "engine invariants hold after shutdown" []
    (Server.Engine.invariant_violations engine)

(* ------------------------------------------------------------ whole system *)

let config ~seed ~churn ~faults ~senders ~transfers =
  {
    (Dst.Harness.default_config ~seed) with
    Dst.Harness.churn;
    faults;
    senders;
    transfers;
  }

let test_dst_clean_steady () =
  let cfg = config ~seed:41 ~churn:Dst.Harness.Steady ~faults:None ~senders:4 ~transfers:2 in
  let t = Dst.Harness.run cfg in
  Alcotest.(check (list string)) "no violations" [] t.Dst.Harness.violations;
  Alcotest.(check int) "every transfer attempted" 8 t.Dst.Harness.attempted;
  Alcotest.(check int) "every transfer completed" 8 t.Dst.Harness.completed;
  Alcotest.(check int) "server agrees" 8 t.Dst.Harness.server_completed

let test_dst_all_churns_uphold_invariants () =
  List.iter
    (fun churn ->
      let cfg =
        config ~seed:17 ~churn ~faults:(Some Faults.Scenario.chaos) ~senders:8 ~transfers:2
      in
      let t = Dst.Harness.run cfg in
      Alcotest.(check (list string))
        (Printf.sprintf "no violations under %s churn" (Dst.Harness.churn_name churn))
        [] t.Dst.Harness.violations)
    Dst.Harness.all_churns

let test_dst_full_scale_chaos () =
  let cfg =
    config ~seed:7 ~churn:Dst.Harness.Mixed ~faults:(Some Faults.Scenario.chaos) ~senders:16
      ~transfers:3
  in
  let t = Dst.Harness.run cfg in
  Alcotest.(check (list string)) "no violations" [] t.Dst.Harness.violations;
  Alcotest.(check bool) "most transfers complete" true
    (t.Dst.Harness.completed * 2 > t.Dst.Harness.attempted)

let test_dst_replay_bit_for_bit () =
  let cfg =
    config ~seed:23 ~churn:Dst.Harness.Mixed ~faults:(Some Faults.Scenario.chaos) ~senders:8
      ~transfers:2
  in
  let a = Dst.Harness.run cfg and b = Dst.Harness.run cfg in
  Alcotest.(check string) "identical journals" a.Dst.Harness.journal b.Dst.Harness.journal;
  Alcotest.(check string) "identical digests" a.Dst.Harness.digest b.Dst.Harness.digest

let test_dst_jobs_invariant () =
  let cfg =
    config ~seed:1 ~churn:Dst.Harness.Mixed ~faults:(Some Faults.Scenario.chaos) ~senders:6
      ~transfers:2
  in
  let seeds = [ 1; 2; 3; 4 ] in
  let digests jobs =
    List.map
      (fun (t : Dst.Harness.trial) -> t.Dst.Harness.digest)
      (Dst.Harness.run_seeds ~jobs cfg ~seeds)
  in
  Alcotest.(check (list string)) "same digests at jobs=1 and jobs=4" (digests 1) (digests 4)

let test_dst_adaptive_jobs_invariant () =
  (* The AIMD controller is pure arithmetic over the event stream, so the
     whole-system journal must stay bit-for-bit reproducible at any
     parallelism with adaptive tuning too — budgets, train ramps, lossy
     faults and all. *)
  let cfg =
    {
      (config ~seed:11 ~churn:Dst.Harness.Mixed ~faults:(Some Faults.Scenario.lossy2)
         ~senders:6 ~transfers:2)
      with
      Dst.Harness.tuning =
        Protocol.Tuning.adaptive ~retransmit_ns:20_000_000 ~max_attempts:20 ();
    }
  in
  let seeds = [ 11; 12; 13 ] in
  let digests jobs =
    List.map
      (fun (t : Dst.Harness.trial) -> t.Dst.Harness.digest)
      (Dst.Harness.run_seeds ~jobs cfg ~seeds)
  in
  Alcotest.(check (list string)) "same digests at jobs=1 and jobs=4" (digests 1) (digests 4);
  let a = Dst.Harness.run cfg and b = Dst.Harness.run cfg in
  Alcotest.(check string) "adaptive replay is bit-for-bit" a.Dst.Harness.journal
    b.Dst.Harness.journal

let test_dst_reuse_exercises_supersede () =
  (* Across a handful of seeds the reuse schedule must hit the engine's
     supersede path at least once — otherwise the scenario is dead weight. *)
  let total =
    List.fold_left
      (fun acc seed ->
        let cfg =
          config ~seed ~churn:Dst.Harness.Reuse ~faults:(Some Faults.Scenario.chaos)
            ~senders:8 ~transfers:2
        in
        let t = Dst.Harness.run cfg in
        Alcotest.(check (list string)) "no violations" [] t.Dst.Harness.violations;
        acc + t.Dst.Harness.superseded)
      0
      [ 1; 2; 3; 4; 5; 6; 7; 8 ]
  in
  Alcotest.(check bool) "supersede path exercised" true (total > 0)

let () =
  Alcotest.run "dst"
    [
      ( "memnet",
        [
          Alcotest.test_case "latency-delayed delivery" `Quick test_memnet_delivery;
          Alcotest.test_case "recv timeout" `Quick test_memnet_recv_timeout;
          Alcotest.test_case "close wakes parked reader" `Quick test_memnet_close_wakes_reader;
          Alcotest.test_case "rebound port receives in-flight" `Quick
            test_memnet_port_reuse_receives_in_flight;
        ] );
      ( "engine",
        [
          Alcotest.test_case "supersede on address reuse" `Quick
            test_engine_supersede_on_address_reuse;
        ] );
      ( "whole-system",
        [
          Alcotest.test_case "clean steady run" `Quick test_dst_clean_steady;
          Alcotest.test_case "every churn scenario" `Quick test_dst_all_churns_uphold_invariants;
          Alcotest.test_case "16 senders under mixed chaos" `Quick test_dst_full_scale_chaos;
          Alcotest.test_case "replay is bit-for-bit" `Quick test_dst_replay_bit_for_bit;
          Alcotest.test_case "digests invariant under jobs" `Quick test_dst_jobs_invariant;
          Alcotest.test_case "adaptive tuning stays deterministic" `Quick
            test_dst_adaptive_jobs_invariant;
          Alcotest.test_case "reuse churn hits supersede" `Quick
            test_dst_reuse_exercises_supersede;
        ] );
    ]
