(* Tests for the wire format: checksums, bitsets, message codec. *)

(* ------------------------------------------------------------- Checksum *)

let test_internet_known_vector () =
  (* Classic RFC 1071 example: 0001 f203 f4f5 f6f7 -> checksum 0x220d. *)
  let buf = Bytes.of_string "\x00\x01\xf2\x03\xf4\xf5\xf6\xf7" in
  Alcotest.(check int) "rfc1071" 0x220d (Packet.Checksum.internet buf ~pos:0 ~len:8)

let test_internet_odd_length () =
  let buf = Bytes.of_string "\xab" in
  (* 0xab00 padded -> complement 0x54ff *)
  Alcotest.(check int) "odd pad" 0x54ff (Packet.Checksum.internet buf ~pos:0 ~len:1)

let test_internet_detects_flip () =
  let buf = Bytes.of_string "hello world, 1985" in
  let sum = Packet.Checksum.internet buf ~pos:0 ~len:(Bytes.length buf) in
  Bytes.set buf 3 'L';
  let sum' = Packet.Checksum.internet buf ~pos:0 ~len:(Bytes.length buf) in
  Alcotest.(check bool) "changed" true (sum <> sum')

let test_crc32_known_vectors () =
  Alcotest.(check int32) "check string" 0xCBF43926l (Packet.Checksum.crc32_string "123456789");
  Alcotest.(check int32) "empty" 0l (Packet.Checksum.crc32_string "")

let test_crc32_range () =
  let buf = Bytes.of_string "xx123456789yy" in
  Alcotest.(check int32) "subrange" 0xCBF43926l (Packet.Checksum.crc32 buf ~pos:2 ~len:9)

(* --------------------------------------------------------------- Bitset *)

let test_bitset_basics () =
  let b = Packet.Bitset.create 10 in
  Alcotest.(check int) "empty count" 0 (Packet.Bitset.count b);
  Packet.Bitset.set b 3;
  Packet.Bitset.set b 9;
  Alcotest.(check bool) "mem 3" true (Packet.Bitset.mem b 3);
  Alcotest.(check bool) "not mem 4" false (Packet.Bitset.mem b 4);
  Alcotest.(check int) "count" 2 (Packet.Bitset.count b);
  Alcotest.(check (option int)) "first missing" (Some 0) (Packet.Bitset.first_missing b);
  Packet.Bitset.clear b 3;
  Alcotest.(check bool) "cleared" false (Packet.Bitset.mem b 3)

let test_bitset_missing () =
  let b = Packet.Bitset.create 5 in
  Packet.Bitset.set b 1;
  Packet.Bitset.set b 3;
  Alcotest.(check (list int)) "missing" [ 0; 2; 4 ] (Packet.Bitset.missing b);
  Packet.Bitset.set_all b;
  Alcotest.(check (list int)) "none missing" [] (Packet.Bitset.missing b);
  Alcotest.(check bool) "full" true (Packet.Bitset.is_full b);
  Alcotest.(check (option int)) "no first missing" None (Packet.Bitset.first_missing b)

let test_bitset_zero_length () =
  let b = Packet.Bitset.create 0 in
  Alcotest.(check bool) "empty set is full" true (Packet.Bitset.is_full b);
  Alcotest.(check (list int)) "no missing" [] (Packet.Bitset.missing b)

let test_bitset_bounds () =
  let b = Packet.Bitset.create 4 in
  Alcotest.check_raises "set out of range" (Invalid_argument "Bitset: index out of range")
    (fun () -> Packet.Bitset.set b 4)

let test_bitset_roundtrip () =
  let b = Packet.Bitset.create 13 in
  List.iter (Packet.Bitset.set b) [ 0; 5; 7; 12 ];
  match Packet.Bitset.of_bytes (Packet.Bitset.to_bytes b) with
  | None -> Alcotest.fail "roundtrip failed"
  | Some b' ->
      Alcotest.(check int) "length" 13 (Packet.Bitset.length b');
      Alcotest.(check (list int)) "same missing" (Packet.Bitset.missing b)
        (Packet.Bitset.missing b')

let test_bitset_rejects_trailing_bits () =
  let b = Packet.Bitset.create 3 in
  let encoded = Packet.Bitset.to_bytes b in
  (* Set a bit beyond the declared length. *)
  Bytes.set encoded 4 (Char.chr 0b1000);
  Alcotest.(check bool) "rejected" true (Packet.Bitset.of_bytes encoded = None)

let prop_bitset_roundtrip =
  QCheck.Test.make ~name:"bitset encode/decode roundtrip" ~count:200
    QCheck.(pair (int_range 0 200) (list small_nat))
    (fun (n, indices) ->
      let b = Packet.Bitset.create n in
      List.iter (fun i -> if i < n then Packet.Bitset.set b i) indices;
      match Packet.Bitset.of_bytes (Packet.Bitset.to_bytes b) with
      | None -> false
      | Some b' ->
          Packet.Bitset.length b' = n && Packet.Bitset.missing b' = Packet.Bitset.missing b)

(* ---------------------------------------------------------------- Codec *)

let sample_messages =
  [
    Packet.Message.req ~transfer_id:7 ~total:64;
    Packet.Message.data ~transfer_id:7 ~seq:0 ~total:64 ~payload:(String.make 1024 'x');
    Packet.Message.data ~transfer_id:7 ~seq:63 ~total:64 ~payload:"last";
    Packet.Message.ack ~transfer_id:7 ~seq:64 ~total:64;
    Packet.Message.nack ~transfer_id:7 ~first_missing:12 ~total:64 ();
    (let received = Packet.Bitset.create 64 in
     List.iter (Packet.Bitset.set received) (List.init 60 Fun.id);
     Packet.Message.nack ~transfer_id:7 ~first_missing:60 ~total:64 ~received ());
  ]

let test_codec_roundtrip_samples () =
  List.iter
    (fun m ->
      match Packet.Codec.decode (Packet.Codec.encode m) with
      | Ok m' ->
          Alcotest.(check bool)
            (Format.asprintf "roundtrip %a" Packet.Message.pp m)
            true (Packet.Message.equal m m')
      | Error e -> Alcotest.failf "decode error: %a" Packet.Codec.pp_error e)
    sample_messages

let test_codec_rejects_truncation () =
  let buf = Packet.Codec.encode (List.nth sample_messages 1) in
  (match Packet.Codec.decode (Bytes.sub buf 0 10) with
  | Error Packet.Codec.Too_short -> ()
  | _ -> Alcotest.fail "expected Too_short");
  match Packet.Codec.decode (Bytes.sub buf 0 (Bytes.length buf - 1)) with
  | Error (Packet.Codec.Length_mismatch _) -> ()
  | _ -> Alcotest.fail "expected Length_mismatch"

let test_codec_rejects_corruption () =
  let check_corrupt pos expected_tag =
    let buf = Packet.Codec.encode (List.nth sample_messages 1) in
    Bytes.set buf pos (Char.chr (Char.code (Bytes.get buf pos) lxor 0xFF));
    match Packet.Codec.decode buf with
    | Error e ->
        let tag =
          match e with
          | Packet.Codec.Bad_magic -> "magic"
          | Packet.Codec.Bad_version _ -> "version"
          | Packet.Codec.Bad_header_checksum -> "header"
          | Packet.Codec.Bad_payload_checksum -> "payload"
          | _ -> "other"
        in
        Alcotest.(check string) (Printf.sprintf "corrupt byte %d" pos) expected_tag tag
    | Ok _ -> Alcotest.failf "corruption at byte %d not detected" pos
  in
  check_corrupt 0 "magic";
  check_corrupt 2 "version";
  check_corrupt 8 "header";
  (* a seq byte: header checksum catches it *)
  check_corrupt 30 "payload"
(* a payload byte: CRC catches it *)

let test_codec_rejects_bad_kind () =
  let buf = Packet.Codec.encode (List.nth sample_messages 0) in
  Bytes.set buf 3 (Char.chr 99);
  (* Re-fix the header checksum so only the kind is wrong. *)
  Bytes.set_uint16_be buf 18 0;
  let sum = Packet.Checksum.internet buf ~pos:0 ~len:Packet.Codec.header_bytes in
  Bytes.set_uint16_be buf 18 sum;
  match Packet.Codec.decode buf with
  | Error (Packet.Codec.Bad_kind 99) -> ()
  | _ -> Alcotest.fail "expected Bad_kind"

let test_codec_decode_sub () =
  let m = List.nth sample_messages 3 in
  let encoded = Packet.Codec.encode m in
  let padded = Bytes.cat (Bytes.of_string "junk") encoded in
  match Packet.Codec.decode_sub padded ~pos:4 ~len:(Bytes.length encoded) with
  | Ok m' -> Alcotest.(check bool) "sub decode" true (Packet.Message.equal m m')
  | Error e -> Alcotest.failf "decode_sub error: %a" Packet.Codec.pp_error e

let test_codec_decode_sub_fuzz () =
  (* Seeded fuzz over the untrusted-input surface: random garbage, truncated
     prefixes, bit-flipped encodings, and out-of-range [pos]/[len] must all
     come back as [Error], never as an exception — and both checksum
     rejection paths must actually fire over the run. *)
  let rng = Stats.Rng.create ~seed:0xF00D in
  let header_rejects = ref 0 in
  let payload_rejects = ref 0 in
  let sample () =
    List.nth sample_messages (Stats.Rng.int rng (List.length sample_messages))
  in
  for _ = 1 to 3_000 do
    let buf, pos, len =
      match Stats.Rng.int rng 4 with
      | 0 ->
          (* arbitrary bytes with arbitrary, possibly invalid, bounds *)
          let n = Stats.Rng.int rng 64 in
          let buf = Bytes.init n (fun _ -> Char.chr (Stats.Rng.int rng 256)) in
          (buf, Stats.Rng.int rng 80 - 8, Stats.Rng.int rng 80 - 8)
      | 1 ->
          (* valid encoding, truncated to a random prefix *)
          let buf = Packet.Codec.encode (sample ()) in
          (buf, 0, Stats.Rng.int rng (Bytes.length buf + 1))
      | 2 ->
          (* valid encoding with a handful of random bit flips *)
          let buf = Packet.Codec.encode (sample ()) in
          for _ = 0 to Stats.Rng.int rng 4 do
            let p = Stats.Rng.int rng (Bytes.length buf) in
            let bit = 1 lsl Stats.Rng.int rng 8 in
            Bytes.set buf p (Char.chr (Char.code (Bytes.get buf p) lxor bit))
          done;
          (buf, 0, Bytes.length buf)
      | _ ->
          (* valid encoding at a random offset inside a larger buffer *)
          let encoded = Packet.Codec.encode (sample ()) in
          let pad = Stats.Rng.int rng 16 in
          let buf = Bytes.cat (Bytes.make pad '\xAA') encoded in
          (buf, pad, Bytes.length encoded)
    in
    match Packet.Codec.decode_sub buf ~pos ~len with
    | Ok _ -> ()
    | Error Packet.Codec.Bad_header_checksum -> incr header_rejects
    | Error Packet.Codec.Bad_payload_checksum -> incr payload_rejects
    | Error _ -> ()
    | exception e -> Alcotest.failf "decode_sub raised %s" (Printexc.to_string e)
  done;
  Alcotest.(check bool) "header checksum path exercised" true (!header_rejects > 0);
  Alcotest.(check bool) "payload checksum path exercised" true (!payload_rejects > 0)

let gen_message =
  let open QCheck.Gen in
  let* kind = oneofl Packet.Kind.all in
  let* transfer_id = int_range 0 0xFFFF in
  let* total = int_range 1 256 in
  match kind with
  | Packet.Kind.Req -> return (Packet.Message.req ~transfer_id ~total)
  | Packet.Kind.Rej -> return (Packet.Message.rej ~transfer_id)
  | Packet.Kind.Data ->
      let* seq = int_range 0 (total - 1) in
      let* payload = string_size (int_range 0 600) in
      return (Packet.Message.data ~transfer_id ~seq ~total ~payload)
  | Packet.Kind.Ack ->
      let* seq = int_range 0 total in
      return (Packet.Message.ack ~transfer_id ~seq ~total)
  | Packet.Kind.Nack ->
      let* first_missing = int_range 0 (total - 1) in
      let* with_set = bool in
      if with_set then begin
        let received = Packet.Bitset.create total in
        let* indices = list_size (int_range 0 total) (int_range 0 (total - 1)) in
        List.iter (Packet.Bitset.set received) indices;
        return (Packet.Message.nack ~transfer_id ~first_missing ~total ~received ())
      end
      else return (Packet.Message.nack ~transfer_id ~first_missing ~total ())
  | Packet.Kind.Mreq -> return (Packet.Stripe.manifest_query ~object_id:transfer_id)
  | Packet.Kind.Mrep ->
      let* entries =
        list_size (int_range 0 8)
          (let* index = int_range 0 15 in
           let* bytes = int_range 0 100_000 in
           let* crc = int_range 0 0xFFFFFF in
           return
             {
               Packet.Stripe.stripe = { object_id = transfer_id; index; count = 16 };
               bytes;
               crc = Int32.of_int crc;
             })
      in
      return (Packet.Stripe.manifest_reply ~object_id:transfer_id entries)

(* Optionally stamp a receiver budget onto a generated message: the v2 wire
   format. [None] keeps the message on the v1 24-byte header. *)
let gen_message_v2 =
  let open QCheck.Gen in
  let* m = gen_message in
  let* b = opt (oneof [ return 0; int_range 1 0xFFFF; return 0xFFFFFFFF ]) in
  return (match b with None -> m | Some b -> Packet.Message.with_budget m b)

let prop_codec_roundtrip =
  QCheck.Test.make ~name:"codec roundtrip for arbitrary messages" ~count:300
    (QCheck.make gen_message_v2) (fun m ->
      match Packet.Codec.decode (Packet.Codec.encode m) with
      | Ok m' -> Packet.Message.equal m m'
      | Error _ -> false)

let prop_codec_bitflip_detected =
  QCheck.Test.make ~name:"any single bit flip is rejected" ~count:300
    QCheck.(pair (QCheck.make gen_message_v2) (pair small_nat small_nat))
    (fun (m, (byte_pick, bit)) ->
      let buf = Packet.Codec.encode m in
      let pos = byte_pick mod Bytes.length buf in
      let bit = bit mod 8 in
      Bytes.set buf pos (Char.chr (Char.code (Bytes.get buf pos) lxor (1 lsl bit)));
      match Packet.Codec.decode buf with
      | Error _ -> true
      | Ok m' ->
          (* A flip inside the checksum fields themselves must not produce a
             *different* accepted message. *)
          Packet.Message.equal m m')

let test_codec_budget_wire_compat () =
  (* Budget-less messages stay on the v1 24-byte header: byte-for-byte what
     an old peer emits and expects. *)
  let ack = Packet.Message.ack ~transfer_id:7 ~seq:5 ~total:8 in
  Alcotest.(check int) "v1 ack wire bytes" Packet.Codec.header_bytes
    (Bytes.length (Packet.Codec.encode ack));
  (match Packet.Codec.decode (Packet.Codec.encode ack) with
  | Ok m ->
      Alcotest.(check bool) "no budget on v1" true (Packet.Message.budget m = None);
      Alcotest.(check bool) "v1 roundtrip equal" true (Packet.Message.equal ack m)
  | Error _ -> Alcotest.fail "v1 ack failed to decode");
  (* Stamping a budget grows the header by exactly the u32 field and the
     value survives the roundtrip. *)
  let acked = Packet.Message.with_budget ack 42 in
  let buf = Packet.Codec.encode acked in
  Alcotest.(check int) "v2 ack wire bytes" Packet.Codec.header_bytes_v2 (Bytes.length buf);
  (match Packet.Codec.decode buf with
  | Ok m ->
      Alcotest.(check bool) "budget survives" true (Packet.Message.budget m = Some 42);
      Alcotest.(check bool) "v2 roundtrip equal" true (Packet.Message.equal acked m)
  | Error _ -> Alcotest.fail "v2 ack failed to decode");
  (* budget = 0 is meaningful (handshake marker, solicit stamp, receiver
     throttle) and must be distinguishable from "no budget". *)
  let received = Packet.Bitset.create 8 in
  Packet.Bitset.set received 3;
  let nack =
    Packet.Message.with_budget
      (Packet.Message.nack ~transfer_id:7 ~first_missing:0 ~total:8 ~received ())
      0
  in
  (match Packet.Codec.decode (Packet.Codec.encode nack) with
  | Ok m ->
      Alcotest.(check bool) "zero budget survives" true (Packet.Message.budget m = Some 0);
      Alcotest.(check bool) "bitmap survives v2" true
        (match Packet.Message.received_set m with
        | Some set -> Packet.Bitset.mem set 3 && not (Packet.Bitset.mem set 0)
        | None -> false)
  | Error _ -> Alcotest.fail "v2 nack failed to decode");
  (* Full u32 range. *)
  let wide = Packet.Message.with_budget (Packet.Message.req ~transfer_id:1 ~total:4) 0xFFFFFFFF in
  match Packet.Codec.decode (Packet.Codec.encode wide) with
  | Ok m ->
      Alcotest.(check bool) "u32 budget survives" true
        (Packet.Message.budget m = Some 0xFFFFFFFF)
  | Error _ -> Alcotest.fail "u32 budget failed to decode"

(* -------------------------------------------------------------- Message *)

let test_message_received_set () =
  let received = Packet.Bitset.create 8 in
  Packet.Bitset.set received 0;
  let m = Packet.Message.nack ~transfer_id:1 ~first_missing:1 ~total:8 ~received () in
  (match Packet.Message.received_set m with
  | Some set ->
      Alcotest.(check bool) "bit 0" true (Packet.Bitset.mem set 0);
      Alcotest.(check bool) "bit 1" false (Packet.Bitset.mem set 1)
  | None -> Alcotest.fail "no set");
  let plain = Packet.Message.nack ~transfer_id:1 ~first_missing:1 ~total:8 () in
  Alcotest.(check bool) "plain nack has no set" true (Packet.Message.received_set plain = None)

let test_message_validation () =
  Alcotest.check_raises "seq beyond total" (Invalid_argument "Message.data: seq beyond total")
    (fun () -> ignore (Packet.Message.data ~transfer_id:0 ~seq:5 ~total:5 ~payload:""))

let test_message_wire_bytes () =
  let m = Packet.Message.data ~transfer_id:0 ~seq:0 ~total:1 ~payload:(String.make 100 'a') in
  Alcotest.(check int) "header + payload" 124 (Packet.Message.wire_bytes m);
  Alcotest.(check int) "encode size matches" 124 (Bytes.length (Packet.Codec.encode m))

let qcheck tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "packet"
    [
      ( "checksum",
        [
          Alcotest.test_case "internet known vector" `Quick test_internet_known_vector;
          Alcotest.test_case "internet odd length" `Quick test_internet_odd_length;
          Alcotest.test_case "internet detects flip" `Quick test_internet_detects_flip;
          Alcotest.test_case "crc32 known vectors" `Quick test_crc32_known_vectors;
          Alcotest.test_case "crc32 range" `Quick test_crc32_range;
        ] );
      ( "bitset",
        Alcotest.test_case "basics" `Quick test_bitset_basics
        :: Alcotest.test_case "missing" `Quick test_bitset_missing
        :: Alcotest.test_case "zero length" `Quick test_bitset_zero_length
        :: Alcotest.test_case "bounds" `Quick test_bitset_bounds
        :: Alcotest.test_case "roundtrip" `Quick test_bitset_roundtrip
        :: Alcotest.test_case "rejects trailing bits" `Quick test_bitset_rejects_trailing_bits
        :: qcheck [ prop_bitset_roundtrip ] );
      ( "codec",
        Alcotest.test_case "roundtrip samples" `Quick test_codec_roundtrip_samples
        :: Alcotest.test_case "rejects truncation" `Quick test_codec_rejects_truncation
        :: Alcotest.test_case "rejects corruption" `Quick test_codec_rejects_corruption
        :: Alcotest.test_case "rejects bad kind" `Quick test_codec_rejects_bad_kind
        :: Alcotest.test_case "decode_sub" `Quick test_codec_decode_sub
        :: Alcotest.test_case "decode_sub fuzz" `Quick test_codec_decode_sub_fuzz
        :: Alcotest.test_case "budget wire compat" `Quick test_codec_budget_wire_compat
        :: qcheck [ prop_codec_roundtrip; prop_codec_bitflip_detected ] );
      ( "message",
        [
          Alcotest.test_case "received set" `Quick test_message_received_set;
          Alcotest.test_case "validation" `Quick test_message_validation;
          Alcotest.test_case "wire bytes" `Quick test_message_wire_bytes;
        ] );
    ]
