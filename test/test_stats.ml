(* Tests for the stats substrate: RNG, summaries, histograms, distributions. *)

let check_float = Alcotest.(check (float 1e-9))
let check_close epsilon = Alcotest.(check (float epsilon))

(* ------------------------------------------------------------------ Rng *)

let test_rng_deterministic () =
  let a = Stats.Rng.create ~seed:42 and b = Stats.Rng.create ~seed:42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Stats.Rng.bits64 a) (Stats.Rng.bits64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Stats.Rng.create ~seed:1 and b = Stats.Rng.create ~seed:2 in
  let differs = ref false in
  for _ = 1 to 10 do
    if Stats.Rng.bits64 a <> Stats.Rng.bits64 b then differs := true
  done;
  Alcotest.(check bool) "seeds give different streams" true !differs

let test_rng_copy () =
  let a = Stats.Rng.create ~seed:7 in
  ignore (Stats.Rng.bits64 a);
  let b = Stats.Rng.copy a in
  Alcotest.(check int64) "copy resumes identically" (Stats.Rng.bits64 a) (Stats.Rng.bits64 b)

let test_rng_split_decorrelates () =
  let a = Stats.Rng.create ~seed:7 in
  let b = Stats.Rng.split a in
  let equal = ref 0 in
  for _ = 1 to 64 do
    if Stats.Rng.bits64 a = Stats.Rng.bits64 b then incr equal
  done;
  Alcotest.(check int) "no collisions across split" 0 !equal

let test_rng_float_range () =
  let rng = Stats.Rng.create ~seed:3 in
  for _ = 1 to 10_000 do
    let x = Stats.Rng.float rng in
    if not (x >= 0.0 && x < 1.0) then Alcotest.failf "float out of range: %f" x
  done

let test_rng_int_bounds () =
  let rng = Stats.Rng.create ~seed:4 in
  for _ = 1 to 10_000 do
    let x = Stats.Rng.int rng 17 in
    if x < 0 || x >= 17 then Alcotest.failf "int out of range: %d" x
  done;
  Alcotest.check_raises "zero bound rejected" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Stats.Rng.int rng 0))

let test_rng_int_covers_all_residues () =
  let rng = Stats.Rng.create ~seed:5 in
  let seen = Array.make 7 false in
  for _ = 1 to 1_000 do
    seen.(Stats.Rng.int rng 7) <- true
  done;
  Array.iteri (fun i hit -> Alcotest.(check bool) (Printf.sprintf "residue %d seen" i) true hit) seen

let test_bernoulli_frequency () =
  let rng = Stats.Rng.create ~seed:11 in
  let n = 100_000 in
  let hits = ref 0 in
  for _ = 1 to n do
    if Stats.Rng.bernoulli rng ~p:0.3 then incr hits
  done;
  check_close 0.01 "bernoulli mean" 0.3 (float_of_int !hits /. float_of_int n)

let test_bernoulli_extremes () =
  let rng = Stats.Rng.create ~seed:12 in
  for _ = 1 to 100 do
    Alcotest.(check bool) "p=0 never" false (Stats.Rng.bernoulli rng ~p:0.0);
    Alcotest.(check bool) "p=1 always" true (Stats.Rng.bernoulli rng ~p:1.0)
  done

let test_geometric_mean () =
  let rng = Stats.Rng.create ~seed:13 in
  let p = 0.25 in
  let n = 50_000 in
  let total = ref 0 in
  for _ = 1 to n do
    total := !total + Stats.Rng.geometric rng ~p
  done;
  (* E[failures before success] = (1-p)/p = 3 *)
  check_close 0.1 "geometric mean" 3.0 (float_of_int !total /. float_of_int n)

let test_geometric_p1 () =
  let rng = Stats.Rng.create ~seed:14 in
  for _ = 1 to 10 do
    Alcotest.(check int) "p=1 gives zero failures" 0 (Stats.Rng.geometric rng ~p:1.0)
  done

let test_exponential_mean () =
  let rng = Stats.Rng.create ~seed:15 in
  let n = 50_000 in
  let total = ref 0.0 in
  for _ = 1 to n do
    total := !total +. Stats.Rng.exponential rng ~mean:2.5
  done;
  check_close 0.1 "exponential mean" 2.5 (!total /. float_of_int n)

let test_shuffle_permutes () =
  let rng = Stats.Rng.create ~seed:16 in
  let a = Array.init 50 Fun.id in
  Stats.Rng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "same multiset" (Array.init 50 Fun.id) sorted

let test_derive_deterministic () =
  let a = Stats.Rng.derive ~root:42 ~index:7 and b = Stats.Rng.derive ~root:42 ~index:7 in
  for _ = 1 to 16 do
    Alcotest.(check int64) "same stream" (Stats.Rng.bits64 a) (Stats.Rng.bits64 b)
  done

let test_derive_decorrelates_indices () =
  (* Adjacent task indices must not yield overlapping or shifted streams:
     check the first words across a window of indices are pairwise distinct,
     and that index i+1's stream is not index i's stream shifted by one (the
     failure mode of seeding xoshiro with correlated splitmix states). *)
  let first_words =
    List.init 64 (fun i ->
        let rng = Stats.Rng.derive ~root:1 ~index:i in
        (Stats.Rng.bits64 rng, Stats.Rng.bits64 rng))
  in
  let firsts = List.map fst first_words in
  let distinct = List.sort_uniq Int64.compare firsts in
  Alcotest.(check int) "distinct first words" 64 (List.length distinct);
  List.iteri
    (fun i (_, second) ->
      match List.nth_opt firsts (i + 1) with
      | Some next_first ->
          Alcotest.(check bool) "not a shifted stream" false (Int64.equal second next_first)
      | None -> ())
    first_words

let test_derive_root_sensitivity () =
  let a = Stats.Rng.derive ~root:1 ~index:0 and b = Stats.Rng.derive ~root:2 ~index:0 in
  let differs = ref false in
  for _ = 1 to 8 do
    if Stats.Rng.bits64 a <> Stats.Rng.bits64 b then differs := true
  done;
  Alcotest.(check bool) "roots decorrelate" true !differs

let test_derive_rejects_negative_index () =
  Alcotest.check_raises "negative index"
    (Invalid_argument "Rng.derive: index must be non-negative") (fun () ->
      ignore (Stats.Rng.derive ~root:1 ~index:(-1)))

(* -------------------------------------------------------------- Summary *)

let test_summary_basic () =
  let s = Stats.Summary.of_array [| 1.0; 2.0; 3.0; 4.0 |] in
  Alcotest.(check int) "count" 4 (Stats.Summary.count s);
  check_float "mean" 2.5 (Stats.Summary.mean s);
  check_float "variance" (5.0 /. 3.0) (Stats.Summary.variance s);
  check_float "min" 1.0 (Stats.Summary.min s);
  check_float "max" 4.0 (Stats.Summary.max s);
  check_float "total" 10.0 (Stats.Summary.total s)

let test_summary_empty () =
  let s = Stats.Summary.create () in
  Alcotest.(check bool) "mean nan" true (Float.is_nan (Stats.Summary.mean s));
  Alcotest.(check bool) "variance nan" true (Float.is_nan (Stats.Summary.variance s))

let test_summary_single () =
  let s = Stats.Summary.of_array [| 5.0 |] in
  check_float "mean" 5.0 (Stats.Summary.mean s);
  Alcotest.(check bool) "variance nan for n=1" true (Float.is_nan (Stats.Summary.variance s))

let test_summary_merge_matches_union () =
  let xs = [| 1.0; 5.0; 2.0 |] and ys = [| 7.0; 3.0; 9.0; 4.0 |] in
  let merged = Stats.Summary.merge (Stats.Summary.of_array xs) (Stats.Summary.of_array ys) in
  let union = Stats.Summary.of_array (Array.append xs ys) in
  Alcotest.(check int) "count" (Stats.Summary.count union) (Stats.Summary.count merged);
  check_float "mean" (Stats.Summary.mean union) (Stats.Summary.mean merged);
  check_close 1e-9 "variance" (Stats.Summary.variance union) (Stats.Summary.variance merged)

let test_summary_merge_empty () =
  let s = Stats.Summary.of_array [| 1.0; 2.0 |] in
  let merged = Stats.Summary.merge s (Stats.Summary.create ()) in
  check_float "mean unchanged" 1.5 (Stats.Summary.mean merged)

let prop_welford_matches_naive =
  QCheck.Test.make ~name:"welford matches naive two-pass variance" ~count:200
    QCheck.(list_of_size Gen.(int_range 2 100) (float_range (-1000.0) 1000.0))
    (fun xs ->
      let a = Array.of_list xs in
      let s = Stats.Summary.of_array a in
      let n = float_of_int (Array.length a) in
      let mean = Array.fold_left ( +. ) 0.0 a /. n in
      let var =
        Array.fold_left (fun acc x -> acc +. ((x -. mean) ** 2.0)) 0.0 a /. (n -. 1.0)
      in
      let got = Stats.Summary.variance s in
      Float.abs (got -. var) <= 1e-6 *. Float.max 1.0 (Float.abs var))

(* ------------------------------------------------------------ Histogram *)

let test_histogram_linear_binning () =
  let h = Stats.Histogram.linear ~lo:0.0 ~hi:10.0 ~bins:10 in
  List.iter (Stats.Histogram.add h) [ 0.0; 0.5; 1.5; 9.99; -1.0; 10.0; 25.0 ];
  Alcotest.(check int) "total" 7 (Stats.Histogram.count h);
  Alcotest.(check int) "bin 0" 2 (Stats.Histogram.bin_count h 0);
  Alcotest.(check int) "bin 1" 1 (Stats.Histogram.bin_count h 1);
  Alcotest.(check int) "bin 9" 1 (Stats.Histogram.bin_count h 9);
  Alcotest.(check int) "underflow" 1 (Stats.Histogram.underflow h);
  Alcotest.(check int) "overflow" 2 (Stats.Histogram.overflow h)

let test_histogram_log_bounds () =
  let h = Stats.Histogram.logarithmic ~lo:1.0 ~hi:1000.0 ~bins:3 in
  let lo, hi = Stats.Histogram.bin_bounds h 1 in
  check_close 1e-6 "log bin lower edge" 10.0 lo;
  check_close 1e-6 "log bin upper edge" 100.0 hi

let test_histogram_quantile () =
  let h = Stats.Histogram.linear ~lo:0.0 ~hi:100.0 ~bins:100 in
  for i = 0 to 99 do
    Stats.Histogram.add h (float_of_int i +. 0.5)
  done;
  check_close 2.0 "median near 50" 50.0 (Stats.Histogram.quantile h 0.5);
  check_close 2.0 "p90 near 90" 90.0 (Stats.Histogram.quantile h 0.9)

let test_histogram_empty_quantile () =
  let h = Stats.Histogram.linear ~lo:0.0 ~hi:1.0 ~bins:4 in
  Alcotest.(check bool) "empty quantile nan" true (Float.is_nan (Stats.Histogram.quantile h 0.5))

(* --------------------------------------------------------- Distribution *)

let test_exchange_failure_prob () =
  check_float "zero loss" 0.0 (Stats.Distribution.exchange_failure_prob ~packet_loss:0.0 ~packets:64);
  check_float "zero packets" 0.0 (Stats.Distribution.exchange_failure_prob ~packet_loss:0.5 ~packets:0);
  check_close 1e-12 "two packets at 0.1"
    (1.0 -. (0.9 *. 0.9))
    (Stats.Distribution.exchange_failure_prob ~packet_loss:0.1 ~packets:2);
  (* Tiny-loss regime where naive 1-(1-p)^n would lose precision. *)
  let p = 1e-9 and n = 65 in
  (* First-order n*p, with the second-order binomial correction. *)
  let expected = (float_of_int n *. p) -. (2080.0 *. p *. p) in
  let got = Stats.Distribution.exchange_failure_prob ~packet_loss:p ~packets:n in
  if Float.abs (got -. expected) > 1e-9 *. expected then
    Alcotest.failf "tiny-loss precision: got %.17g want ~%.17g" got expected

let test_exchange_failure_total_loss () =
  check_float "loss=1" 1.0 (Stats.Distribution.exchange_failure_prob ~packet_loss:1.0 ~packets:1)

let test_geometric_moments () =
  check_float "mean" 1.0 (Stats.Distribution.geometric_mean ~fail:0.5);
  check_float "variance" 2.0 (Stats.Distribution.geometric_variance ~fail:0.5)

let test_geometric_pmf_sums () =
  let fail = 0.3 in
  let total = ref 0.0 in
  for k = 0 to 100 do
    total := !total +. Stats.Distribution.geometric_pmf ~fail k
  done;
  check_close 1e-12 "pmf sums to 1" 1.0 !total;
  check_close 1e-12 "cdf matches partial sum" !total (Stats.Distribution.geometric_cdf ~fail 100)

let test_binomial_pmf () =
  check_close 1e-9 "B(4,0.5) at 2" 0.375 (Stats.Distribution.binomial_pmf ~n:4 ~p:0.5 2);
  let total = ref 0.0 in
  for k = 0 to 10 do
    total := !total +. Stats.Distribution.binomial_pmf ~n:10 ~p:0.3 k
  done;
  check_close 1e-9 "pmf sums to 1" 1.0 !total

let test_log_choose () =
  check_close 1e-9 "C(10,3)" (log 120.0) (Stats.Distribution.log_choose 10 3);
  check_float "C(n,0)" 0.0 (Stats.Distribution.log_choose 5 0);
  Alcotest.(check bool) "k>n" true (Stats.Distribution.log_choose 3 4 = neg_infinity)

(* ----------------------------------------------------------- Percentile *)

let test_percentile_median () =
  check_float "odd median" 3.0 (Stats.Percentile.median [| 5.0; 1.0; 3.0 |]);
  check_float "even median" 2.5 (Stats.Percentile.median [| 4.0; 1.0; 2.0; 3.0 |])

let test_percentile_extremes () =
  let xs = [| 9.0; 1.0; 5.0 |] in
  check_float "q0 is min" 1.0 (Stats.Percentile.quantile xs 0.0);
  check_float "q1 is max" 9.0 (Stats.Percentile.quantile xs 1.0)

let prop_quantile_monotone =
  QCheck.Test.make ~name:"quantile is monotone in q" ~count:200
    QCheck.(
      pair
        (list_of_size Gen.(int_range 1 50) (float_range (-100.0) 100.0))
        (pair (float_range 0.0 1.0) (float_range 0.0 1.0)))
    (fun (xs, (q1, q2)) ->
      let a = Array.of_list xs in
      let lo = Float.min q1 q2 and hi = Float.max q1 q2 in
      Stats.Percentile.quantile a lo <= Stats.Percentile.quantile a hi +. 1e-9)

let qcheck tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "stats"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
          Alcotest.test_case "copy" `Quick test_rng_copy;
          Alcotest.test_case "split decorrelates" `Quick test_rng_split_decorrelates;
          Alcotest.test_case "float range" `Quick test_rng_float_range;
          Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
          Alcotest.test_case "int covers residues" `Quick test_rng_int_covers_all_residues;
          Alcotest.test_case "bernoulli frequency" `Quick test_bernoulli_frequency;
          Alcotest.test_case "bernoulli extremes" `Quick test_bernoulli_extremes;
          Alcotest.test_case "geometric mean" `Quick test_geometric_mean;
          Alcotest.test_case "geometric p=1" `Quick test_geometric_p1;
          Alcotest.test_case "exponential mean" `Quick test_exponential_mean;
          Alcotest.test_case "shuffle permutes" `Quick test_shuffle_permutes;
          Alcotest.test_case "derive deterministic" `Quick test_derive_deterministic;
          Alcotest.test_case "derive decorrelates indices" `Quick
            test_derive_decorrelates_indices;
          Alcotest.test_case "derive root sensitivity" `Quick test_derive_root_sensitivity;
          Alcotest.test_case "derive rejects negative index" `Quick
            test_derive_rejects_negative_index;
        ] );
      ( "summary",
        Alcotest.test_case "basic moments" `Quick test_summary_basic
        :: Alcotest.test_case "empty" `Quick test_summary_empty
        :: Alcotest.test_case "single" `Quick test_summary_single
        :: Alcotest.test_case "merge matches union" `Quick test_summary_merge_matches_union
        :: Alcotest.test_case "merge with empty" `Quick test_summary_merge_empty
        :: qcheck [ prop_welford_matches_naive ] );
      ( "histogram",
        [
          Alcotest.test_case "linear binning" `Quick test_histogram_linear_binning;
          Alcotest.test_case "log bounds" `Quick test_histogram_log_bounds;
          Alcotest.test_case "quantile" `Quick test_histogram_quantile;
          Alcotest.test_case "empty quantile" `Quick test_histogram_empty_quantile;
        ] );
      ( "distribution",
        [
          Alcotest.test_case "exchange failure prob" `Quick test_exchange_failure_prob;
          Alcotest.test_case "exchange failure total loss" `Quick test_exchange_failure_total_loss;
          Alcotest.test_case "geometric moments" `Quick test_geometric_moments;
          Alcotest.test_case "geometric pmf sums" `Quick test_geometric_pmf_sums;
          Alcotest.test_case "binomial pmf" `Quick test_binomial_pmf;
          Alcotest.test_case "log choose" `Quick test_log_choose;
        ] );
      ( "percentile",
        Alcotest.test_case "median" `Quick test_percentile_median
        :: Alcotest.test_case "extremes" `Quick test_percentile_extremes
        :: qcheck [ prop_quantile_monotone ] );
    ]
