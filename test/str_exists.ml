(* Tiny helper shared by test files: substring containment without pulling in
   the Str library. *)

let contains_substring haystack needle =
  let h = String.length haystack and n = String.length needle in
  if n = 0 then true
  else begin
    let rec scan i = i + n <= h && (String.sub haystack i n = needle || scan (i + 1)) in
    scan 0
  end
