(* The shard fleet and its merge algebra.

   The qcheck properties pin the algebra the merged observability relies on:
   [Protocol.Counters.merge] and [Obs.Hist.merge] must be associative and
   commutative (with [create ()] as identity), or the aggregated snapshot
   would depend on shard enumeration order. Inputs are small integers so
   float sums are exact and equality is honest.

   The reconciliation tests then run a real [Server.Shard_group] — live and
   post-run — and check the aggregated [lanrepro-stat/1] snapshot is the sum
   of the per-shard snapshots, which is also what the swarm's merged report
   must agree with. The memnet tests pin explicit REUSEPORT-style steering:
   deterministic placement by source address, slots that vacate on close and
   rebind on restart. Finally the engine-idle tests pin the epoll loop's
   no-busy-wait contract: an idle engine parks instead of ticking, and
   [stop] wakes it promptly. *)

let counters_of_array a =
  let c = Protocol.Counters.create () in
  c.Protocol.Counters.data_sent <- a.(0);
  c.Protocol.Counters.retransmitted_data <- a.(1);
  c.Protocol.Counters.acks_sent <- a.(2);
  c.Protocol.Counters.nacks_sent <- a.(3);
  c.Protocol.Counters.rounds <- a.(4);
  c.Protocol.Counters.timeouts <- a.(5);
  c.Protocol.Counters.duplicates_received <- a.(6);
  c.Protocol.Counters.delivered <- a.(7);
  c.Protocol.Counters.faults_injected <- a.(8);
  c.Protocol.Counters.corrupt_detected <- a.(9);
  c.Protocol.Counters.garbage_received <- a.(10);
  c

let counters_fields c =
  Protocol.Counters.
    [
      c.data_sent; c.retransmitted_data; c.acks_sent; c.nacks_sent; c.rounds;
      c.timeouts; c.duplicates_received; c.delivered; c.faults_injected;
      c.corrupt_detected; c.garbage_received;
    ]

let counters_gen = QCheck.(array_of_size (Gen.return 11) (int_range 0 1000))

let prop_counters_merge_commutative =
  QCheck.Test.make ~name:"Counters.merge is commutative" ~count:200
    QCheck.(pair counters_gen counters_gen)
    (fun (a, b) ->
      let ab = counters_of_array a and ba = counters_of_array b in
      Protocol.Counters.merge ~into:ab (counters_of_array b);
      Protocol.Counters.merge ~into:ba (counters_of_array a);
      counters_fields ab = counters_fields ba)

let prop_counters_merge_associative =
  QCheck.Test.make ~name:"Counters.merge is associative (and create() is identity)"
    ~count:200
    QCheck.(triple counters_gen counters_gen counters_gen)
    (fun (a, b, c) ->
      (* left: (a + b) + c *)
      let left = counters_of_array a in
      Protocol.Counters.merge ~into:left (counters_of_array b);
      Protocol.Counters.merge ~into:left (counters_of_array c);
      (* right: a + (b + c) *)
      let bc = counters_of_array b in
      Protocol.Counters.merge ~into:bc (counters_of_array c);
      let right = counters_of_array a in
      Protocol.Counters.merge ~into:right bc;
      (* identity: folding through a fresh create () changes nothing *)
      let via_zero = Protocol.Counters.create () in
      Protocol.Counters.merge ~into:via_zero left;
      counters_fields left = counters_fields right
      && counters_fields left = counters_fields via_zero)

(* Histograms compare by their JSON summary: count, quantiles, min/max, and
   mean are all exact over small-integer-valued samples, and [to_json] is a
   pure function of the merged bucket state. *)
let hist_of values =
  let h = Obs.Hist.create ~lo:1.0 ~hi:1e6 ~bins:120 () in
  List.iter (fun v -> Obs.Hist.add h (float_of_int v)) values;
  h

let hist_key h = Obs.Json.to_string (Obs.Hist.to_json h)
let values_gen = QCheck.(list_of_size Gen.(int_range 0 50) (int_range 1 100_000))

let prop_hist_merge_commutative =
  QCheck.Test.make ~name:"Hist.merge is commutative" ~count:200
    QCheck.(pair values_gen values_gen)
    (fun (a, b) ->
      let ab = hist_of a and ba = hist_of b in
      Obs.Hist.merge ~into:ab (hist_of b);
      Obs.Hist.merge ~into:ba (hist_of a);
      hist_key ab = hist_key ba)

let prop_hist_merge_associative =
  QCheck.Test.make ~name:"Hist.merge is associative (and an empty hist is identity)"
    ~count:200
    QCheck.(triple values_gen values_gen values_gen)
    (fun (a, b, c) ->
      let left = hist_of a in
      Obs.Hist.merge ~into:left (hist_of b);
      Obs.Hist.merge ~into:left (hist_of c);
      let bc = hist_of b in
      Obs.Hist.merge ~into:bc (hist_of c);
      let right = hist_of a in
      Obs.Hist.merge ~into:right bc;
      let via_zero = hist_of [] in
      Obs.Hist.merge ~into:via_zero left;
      hist_key left = hist_key right && hist_key left = hist_key via_zero)

(* ------------------------------------------------- snapshot reconciliation *)

let json_path path json =
  List.fold_left (fun acc key -> Option.bind acc (Obs.Json.member key)) (Some json) path

let json_int path json =
  Option.value ~default:0 (Option.bind (json_path path json) Obs.Json.to_int)

let totals_keys =
  [
    "accepted"; "completed"; "aborted"; "rejected"; "superseded"; "stray_datagrams";
    "garbage"; "send_failures";
  ]

let counters_keys =
  [
    "data_sent"; "retransmitted_data"; "acks_sent"; "nacks_sent"; "rounds"; "timeouts";
    "duplicates_received"; "delivered"; "faults_injected"; "corrupt_detected";
    "garbage_received";
  ]

(* The aggregated snapshot must be the sum of the per-shard snapshots —
   after a real sharded swarm, where the REUSEPORT hash actually spread
   flows and the group machinery produced both views. *)
let test_sharded_swarm_reconciles () =
  let shards = 3 in
  let report =
    Server.Swarm.run ~flows:8 ~bytes:8192 ~packet_bytes:1024 ~seed:3 ~shards ()
  in
  Alcotest.(check int) "shards recorded" shards report.Server.Swarm.shards;
  Alcotest.(check int) "all flows completed" 8 report.Server.Swarm.completed;
  Alcotest.(check (list string)) "no invariant violations" [] report.Server.Swarm.invariants;
  let agg = report.Server.Swarm.engine_snapshot in
  Alcotest.(check int) "snapshot shard count" shards (json_int [ "shards" ] agg);
  Alcotest.(check int) "no shard unresponsive" 0 (json_int [ "shards_unresponsive" ] agg);
  let per_shard =
    match Option.bind (json_path [ "per_shard" ] agg) Obs.Json.to_list with
    | Some rows -> rows
    | None -> Alcotest.fail "aggregated snapshot has no per_shard breakdown"
  in
  Alcotest.(check int) "one breakdown row per shard" shards (List.length per_shard);
  List.iter
    (fun key ->
      let summed =
        List.fold_left (fun acc row -> acc + json_int [ "totals"; key ] row) 0 per_shard
      in
      Alcotest.(check int)
        (Printf.sprintf "aggregated totals.%s = sum of shards" key)
        summed
        (json_int [ "totals"; key ] agg))
    totals_keys;
  Alcotest.(check int) "aggregated completed = server totals" 8
    (json_int [ "totals"; "completed" ] agg);
  Alcotest.(check int) "server totals agree" report.Server.Swarm.server.Server.Engine.completed
    (json_int [ "totals"; "completed" ] agg);
  List.iter
    (fun key ->
      let ticks_sum =
        List.fold_left (fun acc row -> acc + json_int [ "health"; key ] row) 0 per_shard
      in
      Alcotest.(check int)
        (Printf.sprintf "aggregated health.%s = sum of shards" key)
        ticks_sum
        (json_int [ "health"; key ] agg))
    [ "ticks"; "drain_exhausted"; "spurious_wakeups" ];
  (* The snapshot's counter roll-up and the report's merged roll-up come
     from two different paths (per-shard snapshot sum vs Counters.merge
     over engines); they must agree field for field. *)
  List.iter2
    (fun key field ->
      Alcotest.(check int)
        (Printf.sprintf "snapshot counters.%s = Counters.merge roll-up" key)
        field
        (json_int [ "counters"; key ] agg))
    counters_keys
    (counters_fields report.Server.Swarm.rollup)

(* The live fetch path: a started, idle group answers through each engine's
   idle hook (request flag + wake), so a snapshot costs no data-path time
   and never reports an idle shard unresponsive. *)
let test_live_group_snapshot () =
  let group = Server.Shard_group.create ~shards:2 ~seed:9 () in
  Server.Shard_group.start group;
  Fun.protect
    ~finally:(fun () ->
      Server.Shard_group.stop group;
      Server.Shard_group.join group)
    (fun () ->
      let snap = Server.Shard_group.snapshot group in
      Alcotest.(check int) "both shards answered" 0
        (json_int [ "shards_unresponsive" ] snap);
      Alcotest.(check int) "no flows yet" 0 (json_int [ "active_flows" ] snap);
      let answered =
        List.filter Option.is_some (Server.Shard_group.shard_snapshots group)
      in
      Alcotest.(check int) "per-shard snapshots all arrive" 2 (List.length answered))

(* ---------------------------------------------------- memnet shard steering *)

module Sim = Eventsim.Sim
module Proc = Eventsim.Proc
module Time = Eventsim.Time
module Net = Memnet.Net

let src_port = function Unix.ADDR_INET (_, p) -> p | Unix.ADDR_UNIX _ -> -1

let test_memnet_steering_and_rebind () =
  let landed = Array.make 3 [] in
  let dropped_before = ref 0 and dropped_after = ref 0 in
  let sim = Sim.create () in
  let net = Net.create ~sim ~seed:1 () in
  let env = Proc.env sim in
  let reader index ep () =
    let t = Net.transport ep in
    let rec loop () =
      match t.Sockets.Transport.recv ~timeout_ns:(Some 400_000_000) with
      | `Datagram { Sockets.Transport.from; _ } ->
          landed.(index) <- src_port from :: landed.(index);
          loop ()
      | `Timeout -> ()
    in
    try loop () with Net.Closed _ -> ()
  in
  let spawn_member index =
    let ep = Net.bind_shard net ~port:7000 ~shards:3 ~index ~shard_of:src_port in
    Proc.spawn env (reader index ep);
    ep
  in
  let members = Array.init 3 spawn_member in
  let target = Unix.ADDR_INET (Unix.inet_addr_loopback, 7000) in
  let send_from () =
    let ep = Net.bind net in
    (Net.transport ep).Sockets.Transport.send ~peer:target ~on_outcome:ignore
      (Bytes.of_string "hi");
    Net.port ep
  in
  let sent = ref [] in
  Proc.spawn env (fun () ->
      (* Six distinct source ports, so every residue class is hit. *)
      for _ = 1 to 6 do
        sent := send_from () :: !sent;
        Proc.sleep (Time.span_ns 1_000_000)
      done;
      dropped_before := (Net.stats net).Net.dropped_unbound;
      (* Vacate slot 1: datagrams steered at the gap must drop, the others
         still deliver. *)
      Net.close members.(1);
      let p = send_from () in
      assert (p mod 3 = 1);
      Proc.sleep (Time.span_ns 10_000_000);
      dropped_after := (Net.stats net).Net.dropped_unbound;
      (* A restarted shard rebinds the same slot and receives again. *)
      let again = Net.bind_shard net ~port:7000 ~shards:3 ~index:1 ~shard_of:src_port in
      Proc.spawn env (reader 1 again);
      Proc.sleep (Time.span_ns 1_000_000);
      ignore (send_from () : int));
  Sim.run ~until:(Time.of_ns 2_000_000_000) sim;
  Alcotest.(check int) "nothing dropped while all slots bound" 0 !dropped_before;
  Alcotest.(check int) "gap steering drops as unbound" 1 (!dropped_after - !dropped_before);
  Array.iteri
    (fun index ports ->
      List.iter
        (fun port ->
          Alcotest.(check int)
            (Printf.sprintf "port %d steered by source mod shards" port)
            index (port mod 3))
        ports)
    landed;
  let delivered = Array.fold_left (fun acc l -> acc + List.length l) 0 landed in
  (* 6 before the kill + 1 after the rebind; the one into the gap dropped. *)
  Alcotest.(check int) "all surviving sends delivered" 7 delivered

let test_memnet_steering_is_deterministic () =
  let run () =
    let landed = Array.make 4 [] in
    let sim = Sim.create () in
    let net = Net.create ~sim ~seed:5 () in
    let env = Proc.env sim in
    Array.iteri
      (fun index () ->
        let ep = Net.bind_shard net ~port:7000 ~shards:4 ~index ~shard_of:src_port in
        Proc.spawn env (fun () ->
            let t = Net.transport ep in
            let rec loop () =
              match t.Sockets.Transport.recv ~timeout_ns:(Some 300_000_000) with
              | `Datagram { Sockets.Transport.from; _ } ->
                  landed.(index) <- src_port from :: landed.(index);
                  loop ()
              | `Timeout -> ()
            in
            loop ()))
      (Array.make 4 ());
    Proc.spawn env (fun () ->
        for _ = 1 to 12 do
          let ep = Net.bind net in
          (Net.transport ep).Sockets.Transport.send
            ~peer:(Unix.ADDR_INET (Unix.inet_addr_loopback, 7000))
            ~on_outcome:ignore (Bytes.of_string "x");
          Proc.sleep (Time.span_ns 500_000)
        done);
    Sim.run ~until:(Time.of_ns 1_000_000_000) sim;
    Array.map (List.sort compare) landed
  in
  let a = run () and b = run () in
  Alcotest.(check bool) "identical placement across runs" true (a = b)

(* ------------------------------------------------------- engine idle cost *)

(* An idle engine on a wakeable transport must park (no 20 Hz tick), and
   [stop] must get it out of that park promptly. Generous bounds: the
   assertions fail on a busy-looping or 50 ms-capped loop, not on a slow CI
   machine. *)
let test_engine_idle_parks_and_stops_promptly () =
  let socket, _ = Sockets.Udp.create_socket () in
  let poller = Sockets.Poller.create () in
  let transport = Sockets.Transport.udp ~poller ~socket () in
  let engine = Server.Engine.create ~transport () in
  let domain = Domain.spawn (fun () -> Server.Engine.run engine) in
  Unix.sleepf 0.3;
  let t0 = Unix.gettimeofday () in
  Server.Engine.stop engine;
  Domain.join domain;
  let stop_s = Unix.gettimeofday () -. t0 in
  Sockets.Poller.close poller;
  Sockets.Udp.close socket;
  let h = Server.Engine.health engine in
  Alcotest.(check bool)
    (Printf.sprintf "stop wakes the idle wait promptly (%.3f s)" stop_s)
    true (stop_s < 1.0);
  (* 0.3 s idle at the old 50 ms cap would be ~6 ticks; parked is O(1). *)
  Alcotest.(check bool)
    (Printf.sprintf "idle engine parks instead of ticking (ticks=%d)" h.Server.Engine.ticks)
    true
    (h.Server.Engine.ticks <= 3)

let qcheck tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "shard"
    [
      ( "merge-algebra",
        qcheck
          [
            prop_counters_merge_commutative;
            prop_counters_merge_associative;
            prop_hist_merge_commutative;
            prop_hist_merge_associative;
          ] );
      ( "reconciliation",
        [
          Alcotest.test_case "sharded swarm snapshot reconciles" `Quick
            test_sharded_swarm_reconciles;
          Alcotest.test_case "live group snapshot via idle hook" `Quick
            test_live_group_snapshot;
        ] );
      ( "memnet-steering",
        [
          Alcotest.test_case "steer, vacate, rebind" `Quick test_memnet_steering_and_rebind;
          Alcotest.test_case "placement is deterministic" `Quick
            test_memnet_steering_is_deterministic;
        ] );
      ( "engine-idle",
        [
          Alcotest.test_case "idle engine parks; stop is prompt" `Quick
            test_engine_idle_parks_and_stops_promptly;
        ] );
    ]
