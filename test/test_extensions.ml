(* Tests for the extension features: adaptive retransmission (Rtt),
   end-to-end data integrity, and protocol robustness to reordering. *)

(* ------------------------------------------------------------------ Rtt *)

let test_rtt_initial_timeout () =
  let r = Protocol.Rtt.create ~initial_ns:50_000_000 () in
  Alcotest.(check int) "initial" 50_000_000 (Protocol.Rtt.timeout_ns r);
  Alcotest.(check int) "no samples" 0 (Protocol.Rtt.samples r);
  Alcotest.(check bool) "no srtt" true (Protocol.Rtt.srtt_ns r = None)

let test_rtt_converges_to_constant_rtt () =
  let r = Protocol.Rtt.create ~initial_ns:50_000_000 () in
  for _ = 1 to 50 do
    Protocol.Rtt.observe r ~sample_ns:2_000_000
  done;
  (match Protocol.Rtt.srtt_ns r with
  | Some srtt -> Alcotest.(check bool) "srtt ~ sample" true (abs (srtt - 2_000_000) < 10_000)
  | None -> Alcotest.fail "no srtt");
  (* With zero jitter the deviation decays, so the timeout approaches the
     RTT itself (floored at the 1 ms minimum). *)
  Alcotest.(check bool) "timeout near rtt" true (Protocol.Rtt.timeout_ns r < 3_000_000)

let test_rtt_tracks_variance () =
  let r = Protocol.Rtt.create ~initial_ns:50_000_000 () in
  let rng = Stats.Rng.create ~seed:41 in
  for _ = 1 to 200 do
    Protocol.Rtt.observe r
      ~sample_ns:(2_000_000 + Stats.Rng.int rng 2_000_000)
  done;
  let timeout = Protocol.Rtt.timeout_ns r in
  (* Mean ~3 ms, deviation ~0.5 ms: timeout should sit above the max
     plausible RTT but far below the initial 50 ms. *)
  Alcotest.(check bool)
    (Printf.sprintf "timeout %d ns sensible" timeout)
    true
    (timeout > 3_000_000 && timeout < 12_000_000)

let test_rtt_backoff_and_reset () =
  let r = Protocol.Rtt.create ~initial_ns:10_000_000 () in
  Protocol.Rtt.backoff r;
  Protocol.Rtt.backoff r;
  Alcotest.(check int) "doubled twice" 40_000_000 (Protocol.Rtt.timeout_ns r);
  Protocol.Rtt.observe r ~sample_ns:5_000_000;
  Alcotest.(check bool) "reset by clean sample" true
    (Protocol.Rtt.timeout_ns r < 20_000_000)

let test_rtt_clamps () =
  let r = Protocol.Rtt.create ~initial_ns:2_000_000 () in
  for _ = 1 to 40 do
    Protocol.Rtt.backoff r
  done;
  Alcotest.(check int) "capped at 100x initial" 200_000_000 (Protocol.Rtt.timeout_ns r);
  let tiny = Protocol.Rtt.create ~initial_ns:2_000_000 () in
  for _ = 1 to 60 do
    Protocol.Rtt.observe tiny ~sample_ns:1_000
  done;
  Alcotest.(check int) "floored at 1 ms" 1_000_000 (Protocol.Rtt.timeout_ns tiny)

let test_rtt_no_overflow () =
  (* Regression: repeated backoff used to compute [base * backoff_factor]
     unclamped, wrapping to a negative timeout once the factor grew past
     [max_int / base]. The timeout must stay positive and capped no matter
     how many consecutive timeouts occur. *)
  let r = Protocol.Rtt.create ~initial_ns:50_000_000 () in
  for _ = 1 to 200 do
    Protocol.Rtt.backoff r;
    let t = Protocol.Rtt.timeout_ns r in
    Alcotest.(check bool)
      (Printf.sprintf "positive after backoff (%d)" t)
      true
      (t > 0 && t <= 100 * 50_000_000)
  done;
  (* Same with a huge initial value, where even the 100x cap would wrap. *)
  let huge = Protocol.Rtt.create ~initial_ns:(max_int / 8) () in
  for _ = 1 to 200 do
    Protocol.Rtt.backoff huge
  done;
  Alcotest.(check bool) "huge initial stays positive" true (Protocol.Rtt.timeout_ns huge > 0);
  (* And with samples near the cap feeding the estimator. *)
  let sampled = Protocol.Rtt.create ~initial_ns:(max_int / 8) () in
  Protocol.Rtt.observe sampled ~sample_ns:(max_int / 8);
  for _ = 1 to 200 do
    Protocol.Rtt.backoff sampled
  done;
  Alcotest.(check bool) "sampled stays positive" true (Protocol.Rtt.timeout_ns sampled > 0)

let test_rtt_rejects_bad_input () =
  Alcotest.check_raises "zero initial" (Invalid_argument "Rtt.create: initial_ns must be positive")
    (fun () -> ignore (Protocol.Rtt.create ~initial_ns:0 ()));
  let r = Protocol.Rtt.create ~initial_ns:1_000_000 () in
  Alcotest.check_raises "zero sample" (Invalid_argument "Rtt.observe: sample must be positive")
    (fun () -> Protocol.Rtt.observe r ~sample_ns:0)

(* ------------------------------------------------- adaptive timeout, sim *)

let test_adaptive_timeout_in_simulator () =
  (* A deliberately terrible fixed interval (10x the train time) vs the
     adaptive estimator, both at 1% loss: the estimator must be
     substantially faster on average. *)
  let packets = 64 in
  let t0_ns = 173_000_000 in
  let run ~adaptive seed =
    let rng = Stats.Rng.create ~seed in
    let network_error = Netmodel.Error_model.iid rng ~loss:0.01 in
    let rtt =
      if adaptive then Some (Protocol.Rtt.create ~initial_ns:(10 * t0_ns) ()) else None
    in
    let result =
      Simnet.Driver.run ~params:Netmodel.Params.vkernel ~network_error ?rtt
        ~suite:(Protocol.Suite.Blast Protocol.Blast.Go_back_n)
        ~config:
          (Protocol.Config.make
             ~tuning:(Protocol.Tuning.fixed ~retransmit_ns:(10 * t0_ns) ())
             ~total_packets:packets ())
        ()
    in
    Simnet.Driver.elapsed_ms result
  in
  let mean f =
    let total = ref 0.0 in
    for seed = 1 to 12 do
      total := !total +. f seed
    done;
    !total /. 12.0
  in
  let fixed = mean (run ~adaptive:false) in
  let adaptive = mean (run ~adaptive:true) in
  if not (adaptive < fixed) then
    Alcotest.failf "adaptive %.1f ms should beat fixed %.1f ms" adaptive fixed

let test_adaptive_timeout_error_free_unchanged () =
  (* With no losses the timer never fires, so adaptivity must not change the
     elapsed time at all. *)
  let run rtt =
    Simnet.Driver.run ?rtt
      ~suite:(Protocol.Suite.Blast Protocol.Blast.Go_back_n)
      ~config:(Protocol.Config.make ~total_packets:16 ())
      ()
  in
  let fixed = run None in
  let adaptive = run (Some (Protocol.Rtt.create ~initial_ns:200_000_000 ())) in
  Alcotest.(check int) "same elapsed"
    (Eventsim.Time.span_to_ns fixed.Simnet.Driver.elapsed)
    (Eventsim.Time.span_to_ns adaptive.Simnet.Driver.elapsed)

(* ----------------------------------------------------- integrity, UDP *)

let test_integrity_verified_on_clean_transfer () =
  let rng = Stats.Rng.create ~seed:51 in
  let data = String.init 30_000 (fun _ -> Char.chr (Stats.Rng.int rng 256)) in
  let receiver_socket, receiver_address = Sockets.Udp.create_socket () in
  let sender_socket, _ = Sockets.Udp.create_socket () in
  let received = ref None in
  let thread =
    Thread.create
      (fun () -> received := Some (Sockets.Peer.serve_one ~socket:receiver_socket ()))
      ()
  in
  let _ =
    Sockets.Peer.send ~socket:sender_socket ~peer:receiver_address
      ~suite:(Protocol.Suite.Blast Protocol.Blast.Selective) ~data ()
  in
  Thread.join thread;
  Sockets.Udp.close receiver_socket;
  Sockets.Udp.close sender_socket;
  match !received with
  | Some r ->
      Alcotest.(check bool) "verified" true (r.Sockets.Peer.integrity = Sockets.Peer.Verified)
  | None -> Alcotest.fail "nothing received"

let test_integrity_detects_mismatch () =
  (* A hand-rolled sender that advertises the CRC of different data: the
     receiver must flag the mismatch. *)
  let receiver_socket, receiver_address = Sockets.Udp.create_socket () in
  let sender_socket, _ = Sockets.Udp.create_socket () in
  let received = ref None in
  let thread =
    Thread.create
      (fun () -> received := Some (Sockets.Peer.serve_one ~socket:receiver_socket ()))
      ()
  in
  let transfer_id = 7 in
  let advertised = "what I promised" and actual = "what I delivered" in
  let req =
    {
      (Packet.Message.req ~transfer_id ~total:1) with
      Packet.Message.payload =
        Sockets.Suite_codec.encode
          ~data_crc:(Packet.Checksum.crc32_string advertised)
          ~packet_bytes:(String.length actual)
          ~total_bytes:(String.length actual)
          (Protocol.Suite.Blast Protocol.Blast.Go_back_n);
    }
  in
  (* Handshake, one data packet, wait for the train ack. *)
  ignore (Sockets.Udp.send_message sender_socket receiver_address req : Sockets.Udp.send_outcome);
  (match Sockets.Udp.recv_message ~timeout_ns:2_000_000_000 sender_socket with
  | `Message (m, _) when m.Packet.Message.kind = Packet.Kind.Ack -> ()
  | _ -> Alcotest.fail "no handshake ack");
  ignore
    (Sockets.Udp.send_message sender_socket receiver_address
       (Packet.Message.data ~transfer_id ~seq:0 ~total:1 ~payload:actual)
      : Sockets.Udp.send_outcome);
  (match Sockets.Udp.recv_message ~timeout_ns:2_000_000_000 sender_socket with
  | `Message (m, _) when m.Packet.Message.kind = Packet.Kind.Ack -> ()
  | _ -> Alcotest.fail "no train ack");
  Thread.join thread;
  Sockets.Udp.close receiver_socket;
  Sockets.Udp.close sender_socket;
  match !received with
  | Some r ->
      Alcotest.(check bool) "mismatch flagged" true
        (r.Sockets.Peer.integrity = Sockets.Peer.Mismatch);
      Alcotest.(check string) "data still delivered" actual r.Sockets.Peer.data
  | None -> Alcotest.fail "nothing received"

(* ------------------------------------------------- reordering robustness *)

(* A harness that delivers in-flight messages in random order. Blast
   receivers absorb any order (packets carry their offsets); go-back-n's
   cumulative machinery must still terminate. *)
let run_with_reordering ~seed suite total =
  let rng = Stats.Rng.create ~seed in
  let config =
    Protocol.Config.make ~packet_bytes:16
      ~tuning:(Protocol.Tuning.fixed ~max_attempts:1000 ())
      ~total_packets:total ()
  in
  let payload = Protocol.Machine.constant_payload config in
  let sender = Protocol.Suite.sender suite config ~payload in
  let receiver = Protocol.Suite.receiver suite config in
  let s2r = ref [] and r2s = ref [] in
  let delivered : (int, string) Hashtbl.t = Hashtbl.create 32 in
  let timer = ref false in
  let outcome = ref None in
  let do_actions side actions =
    List.iter
      (fun action ->
        match action with
        | Protocol.Action.Send m -> begin
            match side with
            | `S -> s2r := m :: !s2r
            | `R -> r2s := m :: !r2s
          end
        | Protocol.Action.Arm_timer _ -> if side = `S then timer := true
        | Protocol.Action.Stop_timer -> if side = `S then timer := false
        | Protocol.Action.Deliver { seq; payload } ->
            if Hashtbl.mem delivered seq then Alcotest.failf "double delivery of %d" seq;
            Hashtbl.add delivered seq payload
        | Protocol.Action.Complete o -> outcome := Some o)
      actions
  in
  let take_random queue =
    let array = Array.of_list !queue in
    let index = Stats.Rng.int rng (Array.length array) in
    queue := List.filteri (fun i _ -> i <> index) !queue;
    array.(index)
  in
  do_actions `R (receiver.Protocol.Machine.start ());
  do_actions `S (sender.Protocol.Machine.start ());
  let steps = ref 0 in
  while !outcome = None do
    incr steps;
    if !steps > 500_000 then Alcotest.fail "reordering harness: too many steps";
    if !s2r <> [] then
      do_actions `R (receiver.Protocol.Machine.handle (Protocol.Action.Message (take_random s2r)))
    else if !r2s <> [] then
      do_actions `S (sender.Protocol.Machine.handle (Protocol.Action.Message (take_random r2s)))
    else if !timer then do_actions `S (sender.Protocol.Machine.handle Protocol.Action.Timeout)
    else Alcotest.fail "reordering harness: deadlock"
  done;
  (Option.get !outcome, delivered, payload)

let prop_blast_survives_reordering =
  QCheck.Test.make ~name:"blast machines survive arbitrary reordering" ~count:100
    QCheck.(pair (int_range 1 24) (pair int (oneofl Protocol.Blast.all_strategies)))
    (fun (total, (seed, strategy)) ->
      let outcome, delivered, payload =
        run_with_reordering ~seed:(abs seed) (Protocol.Suite.Blast strategy) total
      in
      outcome = Protocol.Action.Success
      && Hashtbl.length delivered = total
      && List.for_all
           (fun seq -> Hashtbl.find_opt delivered seq = Some (payload seq))
           (List.init total Fun.id))

let prop_sliding_window_survives_reordering =
  QCheck.Test.make ~name:"sliding window survives reordering" ~count:60
    QCheck.(pair (int_range 1 16) int)
    (fun (total, seed) ->
      let outcome, delivered, _ =
        run_with_reordering ~seed:(abs seed)
          (Protocol.Suite.Sliding_window { window = 4 })
          total
      in
      outcome = Protocol.Action.Success && Hashtbl.length delivered = total)

let prop_multi_blast_survives_reordering =
  QCheck.Test.make ~name:"multi-blast survives reordering" ~count:60
    QCheck.(pair (int_range 1 30) int)
    (fun (total, seed) ->
      let outcome, delivered, _ =
        run_with_reordering ~seed:(abs seed)
          (Protocol.Suite.Multi_blast { strategy = Protocol.Blast.Selective; chunk_packets = 7 })
          total
      in
      outcome = Protocol.Action.Success && Hashtbl.length delivered = total)

let qcheck tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "extensions"
    [
      ( "rtt",
        [
          Alcotest.test_case "initial timeout" `Quick test_rtt_initial_timeout;
          Alcotest.test_case "converges" `Quick test_rtt_converges_to_constant_rtt;
          Alcotest.test_case "tracks variance" `Quick test_rtt_tracks_variance;
          Alcotest.test_case "backoff and reset" `Quick test_rtt_backoff_and_reset;
          Alcotest.test_case "clamps" `Quick test_rtt_clamps;
          Alcotest.test_case "no backoff overflow" `Quick test_rtt_no_overflow;
          Alcotest.test_case "rejects bad input" `Quick test_rtt_rejects_bad_input;
        ] );
      ( "adaptive-simulator",
        [
          Alcotest.test_case "beats terrible fixed interval" `Quick
            test_adaptive_timeout_in_simulator;
          Alcotest.test_case "error-free unchanged" `Quick
            test_adaptive_timeout_error_free_unchanged;
        ] );
      ( "integrity",
        [
          Alcotest.test_case "verified on clean transfer" `Quick
            test_integrity_verified_on_clean_transfer;
          Alcotest.test_case "detects mismatch" `Quick test_integrity_detects_mismatch;
        ] );
      ( "reordering",
        qcheck
          [
            prop_blast_survives_reordering;
            prop_sliding_window_survives_reordering;
            prop_multi_blast_survives_reordering;
          ] );
    ]
