(* Ring transfers: striped, replicated blasts with write quorum and
   read-repair.

   Pure layers first — the shared Stats.Hash (balance, and the steering
   formula pinned byte-for-byte so sharded DST journals keep replaying),
   consistent-hash placement (balance, minimal remapping on a death),
   stripe/manifest wire codecs, stripe slicing and planning — then the
   engine's manifest table over memnet, the whole-system DST scenario
   (kill one of N mid-transfer under every netem scenario; quorum holds
   and repair reconverges, bit-for-bit at any jobs), and a real-UDP fleet
   put/kill/repair pass. *)

module Sim = Eventsim.Sim
module Proc = Eventsim.Proc
module Time = Eventsim.Time
module Net = Memnet.Net

(* ------------------------------------------------------------------ hash *)

(* The DST steering formula, frozen: changing it silently re-shards every
   recorded journal. This is the exact historical expression. *)
let test_hash_steer_pinned () =
  List.iter
    (fun (seed, port) ->
      let expected =
        ((port * 0x9E3779B1) lxor (seed * 0x85EBCA77)) lsr 11 land 0x3FFF_FFFF
      in
      Alcotest.(check int)
        (Printf.sprintf "steer seed=%d port=%d" seed port)
        expected
        (Stats.Hash.steer ~seed port))
    [ (1, 40_000); (7, 40_001); (123, 9_000); (0, 0); (999_983, 65_535) ]

let test_hash_mix_spreads () =
  (* Identity-adjacent inputs must land far apart: mix is the finalizer
     behind every placement point. *)
  let h = Hashtbl.create 64 in
  for i = 0 to 9_999 do
    Hashtbl.replace h (Stats.Hash.mix i) ()
  done;
  Alcotest.(check int) "10k distinct inputs, 10k distinct outputs" 10_000
    (Hashtbl.length h)

let qcheck_mix2_balance =
  QCheck.Test.make ~name:"mix2 buckets stay balanced" ~count:30
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let buckets = Array.make 8 0 in
      let n = 4_000 in
      for key = 0 to n - 1 do
        let b = Stats.Hash.mix2 ~seed key 0 mod 8 in
        buckets.(b) <- buckets.(b) + 1
      done;
      let fair = n / 8 in
      Array.for_all (fun c -> c > fair / 2 && c < fair * 2) buckets)

(* ------------------------------------------------------------- placement *)

let test_placement_replicas_distinct () =
  let ring = Ring.Placement.create ~seed:11 [ 0; 1; 2; 3; 4 ] in
  for stripe = 0 to 63 do
    let r = Ring.Placement.replicas ring ~object_id:7 ~stripe ~r:3 in
    Alcotest.(check int) "three replicas" 3 (List.length r);
    Alcotest.(check int) "distinct" 3 (List.length (List.sort_uniq compare r))
  done

let test_placement_deterministic () =
  let a = Ring.Placement.create ~seed:3 [ 0; 1; 2 ]
  and b = Ring.Placement.create ~seed:3 [ 2; 0; 1 ] in
  for stripe = 0 to 31 do
    Alcotest.(check (list int)) "order-insensitive construction"
      (Ring.Placement.successors a ~object_id:5 ~stripe)
      (Ring.Placement.successors b ~object_id:5 ~stripe)
  done

let test_placement_balance () =
  (* Primary ownership over many stripes splits roughly evenly — the
     virtual nodes doing their job. *)
  let servers = 5 and stripes = 2_000 in
  let ring = Ring.Placement.create ~seed:42 (List.init servers Fun.id) in
  let owned = Array.make servers 0 in
  for stripe = 0 to stripes - 1 do
    match Ring.Placement.replicas ring ~object_id:1 ~stripe ~r:1 with
    | [ primary ] -> owned.(primary) <- owned.(primary) + 1
    | _ -> Alcotest.fail "r=1 must give one primary"
  done;
  let fair = stripes / servers in
  Array.iteri
    (fun i c ->
      if c < fair / 2 || c > fair * 2 then
        Alcotest.failf "server %d owns %d of %d stripes (fair %d)" i c stripes fair)
    owned

let qcheck_placement_minimal_remap =
  (* Consistent hashing's defining property: removing one server only
     deletes it from each preference list — every other position is
     untouched, so repair after a death never moves a surviving replica. *)
  QCheck.Test.make ~name:"removing a server never remaps survivors" ~count:50
    QCheck.(pair (int_bound 100_000) (int_bound 4))
    (fun (seed, victim) ->
      let ring = Ring.Placement.create ~seed [ 0; 1; 2; 3; 4 ] in
      let live = Ring.Placement.remove ring victim in
      List.for_all
        (fun stripe ->
          let full = Ring.Placement.successors ring ~object_id:9 ~stripe in
          let shrunk = Ring.Placement.successors live ~object_id:9 ~stripe in
          shrunk = List.filter (fun n -> n <> victim) full)
        (List.init 64 Fun.id))

(* ----------------------------------------------------------------- codec *)

let qcheck_stripe_ext_roundtrip =
  QCheck.Test.make ~name:"stripe ext roundtrips" ~count:200
    QCheck.(triple (int_bound 0xFFFF_FFF) (int_bound 0xFFFE) (int_bound 0xFFFE))
    (fun (object_id, a, b) ->
      let count = 1 + max a b and index = min a b in
      let s = { Packet.Stripe.object_id; index; count } in
      Packet.Stripe.decode_ext (Packet.Stripe.encode_ext s)
      = Some s)

let test_stripe_ext_rejects_bad_magic () =
  let s = { Packet.Stripe.object_id = 1; index = 0; count = 2 } in
  let raw = Bytes.of_string (Packet.Stripe.encode_ext s) in
  Bytes.set raw 8 'X';
  Alcotest.(check bool) "corrupted magic rejected" true
    (Packet.Stripe.decode_ext (Bytes.to_string raw) = None)

let test_manifest_roundtrip () =
  let entries =
    List.init 5 (fun i ->
        {
          Packet.Stripe.stripe = { Packet.Stripe.object_id = 9; index = i; count = 5 };
          bytes = 1_000 + i;
          crc = Int32.of_int (77 * i);
        })
  in
  (match Packet.Stripe.decode_manifest (Packet.Stripe.encode_manifest entries) with
  | Some back -> Alcotest.(check bool) "entries survive" true (back = entries)
  | None -> Alcotest.fail "manifest did not decode");
  Alcotest.(check bool) "empty manifest roundtrips" true
    (Packet.Stripe.decode_manifest (Packet.Stripe.encode_manifest []) = Some [])

let test_suite_codec_carries_stripe () =
  let stripe = { Packet.Stripe.object_id = 123; index = 3; count = 8 } in
  let payload =
    Sockets.Suite_codec.encode ~data_crc:55l ~stripe ~packet_bytes:512
      ~total_bytes:4_096
      (Protocol.Suite.Blast Protocol.Blast.Selective)
  in
  match Sockets.Suite_codec.decode payload with
  | Some info ->
      Alcotest.(check bool) "stripe survives" true
        (info.Sockets.Suite_codec.stripe = Some stripe);
      Alcotest.(check bool) "crc survives" true
        (info.Sockets.Suite_codec.data_crc = Some 55l)
  | None -> Alcotest.fail "striped REQ payload did not decode"

(* ---------------------------------------------------------------- client *)

let test_stripe_bounds_partition () =
  List.iter
    (fun (total, stripes) ->
      let pieces =
        List.init stripes (fun index ->
            Ring.Client.stripe_bounds ~total ~stripes ~index)
      in
      let covered = List.fold_left (fun acc (_, len) -> acc + len) 0 pieces in
      Alcotest.(check int)
        (Printf.sprintf "%d bytes over %d stripes" total stripes)
        total covered;
      ignore
        (List.fold_left
           (fun expect (offset, len) ->
             Alcotest.(check int) "contiguous" expect offset;
             offset + len)
           0 pieces))
    [ (1_000, 1); (1_000, 3); (1_024, 16); (17, 17) ]

let test_plan_shape () =
  let ring = Ring.Placement.create ~seed:2 [ 0; 1; 2; 3 ] in
  let jobs = Ring.Client.plan ring ~object_id:4 ~total:8_192 ~stripes:4 ~replicas:2 in
  Alcotest.(check int) "stripes x replicas jobs" 8 (List.length jobs);
  for stripe = 0 to 3 do
    let mine = List.filter (fun j -> j.Ring.Client.stripe = stripe) jobs in
    let servers = List.map (fun j -> j.Ring.Client.server) mine in
    Alcotest.(check int) "two replicas" 2 (List.length servers);
    Alcotest.(check int) "on distinct servers" 2
      (List.length (List.sort_uniq compare servers));
    List.iter
      (fun j ->
        let offset, bytes =
          Ring.Client.stripe_bounds ~total:8_192 ~stripes:4 ~index:stripe
        in
        Alcotest.(check int) "offset agrees" offset j.Ring.Client.offset;
        Alcotest.(check int) "bytes agree" bytes j.Ring.Client.bytes)
      mine
  done

(* ------------------------------------------------------- manifest + plan *)

let test_manifest_quorum_and_repair_plan () =
  let data = String.init 4_000 (fun i -> Char.chr (i land 0xff)) in
  let stripes = 4 in
  let crcs = Ring.Client.stripe_crcs ~data ~stripes in
  let ring = Ring.Placement.create ~seed:8 [ 0; 1; 2 ] in
  let m = Ring.Manifest.create ~object_id:6 ~stripes in
  let entry ~server:_ ~stripe ~crc =
    {
      Packet.Stripe.stripe = { Packet.Stripe.object_id = 6; index = stripe; count = stripes };
      bytes = snd (Ring.Client.stripe_bounds ~total:4_000 ~stripes ~index:stripe);
      crc;
    }
  in
  (* Servers 0 and 1 hold everything; server 2 claims stripe 0 with the
     wrong bytes — it must not count toward replication. *)
  List.iter
    (fun server ->
      Ring.Manifest.record m ~server
        (List.init stripes (fun stripe -> entry ~server ~stripe ~crc:crcs.(stripe))))
    [ 0; 1 ];
  Ring.Manifest.record m ~server:2 [ entry ~server:2 ~stripe:0 ~crc:0xDEADl ];
  Alcotest.(check bool) "quorum 2 met" true
    (Ring.Manifest.quorum_met m ~quorum:2 ~crcs);
  Alcotest.(check bool) "quorum 3 unmet (bad crc does not count)" false
    (Ring.Manifest.quorum_met m ~quorum:3 ~crcs);
  let actions = Ring.Repair.plan ~placement:ring ~object_id:6 ~replicas:3 ~crcs m in
  Alcotest.(check int) "one re-blast per stripe" stripes (List.length actions);
  List.iter
    (fun (a : Ring.Repair.action) ->
      Alcotest.(check int) "always the non-holder" 2 a.Ring.Repair.server)
    actions;
  Alcotest.(check (list int)) "fully replicated needs nothing" []
    (List.map
       (fun (a : Ring.Repair.action) -> a.Ring.Repair.stripe)
       (Ring.Repair.plan ~placement:ring ~object_id:6 ~replicas:2 ~crcs m))

(* -------------------------------------------------- engine manifest (sim) *)

let test_engine_manifest_over_memnet () =
  let sim = Sim.create () in
  let net = Net.create ~sim ~seed:4 () in
  let clock () = Time.to_ns (Sim.now sim) in
  let server_ep = Net.bind ~port:7_100 net in
  let engine =
    Server.Engine.create
      ~ctx:
        (Sockets.Io_ctx.make ~clock
           ~tuning:
             (Protocol.Tuning.fixed ~retransmit_ns:5_000_000 ~max_attempts:10 ())
           ())
      ~lane_prefix:"r0:"
      ~transport:(Net.transport server_ep) ()
  in
  let data = String.init 3_000 (fun i -> Char.chr ((i * 7) land 0xff)) in
  let crc = Packet.Checksum.crc32_string data in
  let survey = ref None in
  let env = Proc.env sim in
  Proc.spawn env (fun () -> Server.Engine.run engine);
  Proc.spawn env (fun () ->
      let ep = Net.bind net in
      let result =
        Sockets.Peer.send_via
          ~ctx:
            (Sockets.Io_ctx.make ~clock
               ~tuning:
                 (Protocol.Tuning.fixed ~retransmit_ns:5_000_000 ~max_attempts:10 ())
               ())
          ~transfer_id:31 ~packet_bytes:512
          ~stripe:{ Packet.Stripe.object_id = 31; index = 2; count = 5 }
          ~transport:(Net.transport ep) ~peer:(Net.address server_ep)
          ~suite:(Protocol.Suite.Blast Protocol.Blast.Go_back_n) ~data ()
      in
      Alcotest.(check bool) "striped blast succeeds" true
        (result.Sockets.Peer.outcome = Protocol.Action.Success);
      Net.close ep;
      (* Interrogate over the wire, exactly as repair would. *)
      let qep = Net.bind net in
      survey :=
        Ring.Repair.query_via ~attempts:3 ~timeout_ns:20_000_000 ~clock
          ~transport:(Net.transport qep) ~peer:(Net.address server_ep)
          ~object_id:31 ();
      Net.close qep;
      Server.Engine.stop engine);
  Sim.run ~until:(Time.of_ns 2_000_000_000) sim;
  (match !survey with
  | Some [ e ] ->
      Alcotest.(check int) "stripe index" 2 e.Packet.Stripe.stripe.Packet.Stripe.index;
      Alcotest.(check int) "stripe count" 5 e.Packet.Stripe.stripe.Packet.Stripe.count;
      Alcotest.(check int) "bytes" 3_000 e.Packet.Stripe.bytes;
      Alcotest.(check bool) "crc matches the blasted bytes" true
        (e.Packet.Stripe.crc = crc)
  | Some l -> Alcotest.failf "expected one manifest entry, got %d" (List.length l)
  | None -> Alcotest.fail "manifest query went unanswered");
  Alcotest.(check int) "engine manifest size" 1 (Server.Engine.manifest_size engine);
  Alcotest.(check (list string)) "engine invariants" []
    (Server.Engine.invariant_violations engine)

(* ------------------------------------------------------------- DST trials *)

let ring_config ~seed ~faults =
  { (Dst.Ring_sim.default_config ~seed) with Dst.Ring_sim.faults }

let test_ring_dst_clean_kill () =
  let t = Dst.Ring_sim.run (ring_config ~seed:5 ~faults:None) in
  Alcotest.(check (list string)) "no violations" [] t.Dst.Ring_sim.violations;
  Alcotest.(check bool) "a server was killed" true (t.Dst.Ring_sim.killed <> None);
  Alcotest.(check bool) "quorum met before repair" true t.Dst.Ring_sim.quorum_met;
  Alcotest.(check bool) "fully replicated after repair" true
    t.Dst.Ring_sim.fully_replicated

(* Satellite: kill-one convergence under {e every} netem scenario — quorum
   survives the death, repair restores full replication, and the journal
   is bit-for-bit identical at any jobs. *)
let test_ring_dst_every_scenario () =
  List.iter
    (fun scenario ->
      let faults =
        if Faults.Scenario.is_clean scenario then None else Some scenario
      in
      let cfg = ring_config ~seed:19 ~faults in
      let name = Faults.Scenario.name scenario in
      let t = Dst.Ring_sim.run cfg in
      Alcotest.(check (list string))
        (Printf.sprintf "no violations under %s" name)
        [] t.Dst.Ring_sim.violations;
      Alcotest.(check bool)
        (Printf.sprintf "repair reconverges under %s" name)
        true t.Dst.Ring_sim.fully_replicated;
      let t' = Dst.Ring_sim.run cfg in
      Alcotest.(check string)
        (Printf.sprintf "replay bit-for-bit under %s" name)
        t.Dst.Ring_sim.journal t'.Dst.Ring_sim.journal)
    Faults.Scenario.all

let test_ring_dst_jobs_invariant () =
  let cfg = ring_config ~seed:1 ~faults:(Some Faults.Scenario.lossy2) in
  let seeds = [ 1; 2; 3; 4 ] in
  let digests jobs =
    List.map
      (fun (t : Dst.Ring_sim.trial) -> t.Dst.Ring_sim.digest)
      (Dst.Ring_sim.run_seeds ~jobs cfg ~seeds)
  in
  Alcotest.(check (list string)) "same digests at jobs=1 and jobs=4" (digests 1)
    (digests 4)

(* --------------------------------------------------------- real-UDP fleet *)

let test_fleet_put_kill_repair () =
  let seed = 6 in
  let fleet = Ring.Fleet.create ~servers:3 ~seed () in
  Ring.Fleet.start fleet;
  Fun.protect
    ~finally:(fun () ->
      Ring.Fleet.stop fleet;
      Ring.Fleet.join fleet)
    (fun () ->
      let placement = Ring.Fleet.placement ~seed fleet in
      let peer_of = Ring.Fleet.peer_of fleet in
      let data = String.init 16_384 (fun i -> Char.chr ((i * 131) land 0xff)) in
      let put =
        Ring.Client.put
          ~tuning:(Protocol.Tuning.fixed ~retransmit_ns:10_000_000 ~max_attempts:20 ())
          ~placement
          ~peer_of ~object_id:9 ~stripes:4 ~replicas:2 ~quorum:2 ~data ()
      in
      Alcotest.(check bool) "write quorum met" true put.Ring.Client.quorum_met;
      (* The fleet's merged snapshot sees every stripe replica. *)
      let snap = Ring.Fleet.snapshot fleet in
      (match Obs.Json.member "manifest_stripes" snap with
      | Some j ->
          Alcotest.(check (option int)) "fleet manifest covers the plan" (Some 8)
            (Obs.Json.to_int j)
      | None -> Alcotest.fail "merged snapshot lacks manifest_stripes");
      (* Kill one member for good; repair re-homes its stripes. *)
      Ring.Fleet.kill fleet 0;
      Alcotest.(check (list int)) "members 1 and 2 live" [ 1; 2 ]
        (Ring.Fleet.alive fleet);
      let live = Ring.Fleet.live_placement ~seed fleet in
      let report =
        Ring.Repair.run
          ~tuning:(Protocol.Tuning.fixed ~retransmit_ns:10_000_000 ~max_attempts:5 ())
          ~attempts:3
          ~timeout_ns:100_000_000 ~placement:live ~peer_of ~object_id:9
          ~stripes:4 ~replicas:2 ~data ()
      in
      Alcotest.(check bool) "repair restores full replication" true
        report.Ring.Repair.fully_replicated;
      Alcotest.(check (list string)) "fleet invariants" []
        (Ring.Fleet.invariant_violations fleet))

let () =
  Alcotest.run "ring"
    [
      ( "hash",
        [
          Alcotest.test_case "steering formula pinned" `Quick test_hash_steer_pinned;
          Alcotest.test_case "mix is injective-ish" `Quick test_hash_mix_spreads;
          QCheck_alcotest.to_alcotest qcheck_mix2_balance;
        ] );
      ( "placement",
        [
          Alcotest.test_case "replicas distinct" `Quick test_placement_replicas_distinct;
          Alcotest.test_case "construction order-insensitive" `Quick
            test_placement_deterministic;
          Alcotest.test_case "primary ownership balanced" `Quick test_placement_balance;
          QCheck_alcotest.to_alcotest qcheck_placement_minimal_remap;
        ] );
      ( "codec",
        [
          QCheck_alcotest.to_alcotest qcheck_stripe_ext_roundtrip;
          Alcotest.test_case "bad magic rejected" `Quick test_stripe_ext_rejects_bad_magic;
          Alcotest.test_case "manifest roundtrips" `Quick test_manifest_roundtrip;
          Alcotest.test_case "REQ payload carries stripe" `Quick
            test_suite_codec_carries_stripe;
        ] );
      ( "client",
        [
          Alcotest.test_case "stripe bounds partition" `Quick test_stripe_bounds_partition;
          Alcotest.test_case "plan shape" `Quick test_plan_shape;
        ] );
      ( "manifest",
        [
          Alcotest.test_case "quorum and repair plan" `Quick
            test_manifest_quorum_and_repair_plan;
        ] );
      ( "engine",
        [
          Alcotest.test_case "manifest over memnet" `Quick
            test_engine_manifest_over_memnet;
        ] );
      ( "dst",
        [
          Alcotest.test_case "clean kill-one trial" `Quick test_ring_dst_clean_kill;
          Alcotest.test_case "every netem scenario reconverges" `Slow
            test_ring_dst_every_scenario;
          Alcotest.test_case "digests invariant under jobs" `Quick
            test_ring_dst_jobs_invariant;
        ] );
      ( "fleet",
        [
          Alcotest.test_case "put, kill, repair over real UDP" `Quick
            test_fleet_put_kill_repair;
        ] );
    ]
