(* The fault-injection layer: scenario registry, Netem injector mechanics,
   determinism, the simulator integration, and the UDP chaos soak — the
   campaign asserting that every suite x scenario combination either delivers
   CRC-verified data or fails cleanly within its attempt bound. *)

module F = Faults

let sample_datagram seq =
  Packet.Codec.encode
    (Packet.Message.data ~transfer_id:3 ~seq ~total:64 ~payload:(String.make 200 'p'))

(* ------------------------------------------------------------- Scenario *)

let test_registry () =
  Alcotest.(check int) "five named scenarios" 5 (List.length F.Scenario.all);
  Alcotest.(check bool) "clean is clean" true (F.Scenario.is_clean F.Scenario.clean);
  Alcotest.(check bool) "chaos is not" false (F.Scenario.is_clean F.Scenario.chaos);
  (match F.Scenario.find "bursty" with
  | Some s -> Alcotest.(check string) "find bursty" "bursty" (F.Scenario.name s)
  | None -> Alcotest.fail "bursty not found");
  Alcotest.(check bool) "unknown name" true (F.Scenario.find "nope" = None);
  (* Every registry scenario that corrupts flips at most one bit — the
     codec detects any single-bit flip, so the soak's no-corrupt-delivery
     invariant holds by construction rather than by seed luck. *)
  List.iter
    (fun s ->
      List.iter
        (function
          | F.Scenario.Corrupt { max_bits; _ } ->
              Alcotest.(check int)
                (F.Scenario.name s ^ " flips single bits")
                1 max_bits
          | _ -> ())
        (F.Scenario.injectors s))
    F.Scenario.all

let test_scenario_validation () =
  Alcotest.(check bool)
    "bad probability rejected" true
    (try
       ignore (F.Scenario.make ~name:"bad" [ F.Scenario.Drop_iid 1.5 ]);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool)
    "unbounded delay rejected" true
    (try
       ignore
         (F.Scenario.make ~name:"bad"
            [ F.Scenario.Delay { p = 0.5; min_ns = 0; max_ns = 10_000_000_000 } ]);
       false
     with Invalid_argument _ -> true)

(* ----------------------------------------------------- Netem mechanics *)

let emissions_of netem datagrams =
  List.concat_map (fun d -> F.Netem.tx_bytes netem d) datagrams

let test_determinism () =
  let scenario = F.Scenario.chaos in
  let run () =
    let netem = F.Netem.create ~seed:42 scenario in
    let out =
      List.init 200 (fun i -> sample_datagram (i mod 64))
      |> List.concat_map (fun d ->
             List.map
               (fun { F.Netem.delay_ns; data } -> (delay_ns, Bytes.to_string data))
               (F.Netem.tx_bytes netem d))
    in
    (out, F.Netem.total (F.Netem.stats netem))
  in
  let a, a_total = run () in
  let b, b_total = run () in
  Alcotest.(check bool) "same seed, same emissions" true (a = b);
  Alcotest.(check int) "same seed, same fault count" a_total b_total;
  Alcotest.(check bool) "faults actually injected" true (a_total > 0)

let test_drop_all () =
  let netem =
    F.Netem.create ~seed:7 (F.Scenario.make ~name:"sink" [ F.Scenario.Drop_iid 1.0 ])
  in
  let out = emissions_of netem (List.init 50 sample_datagram) in
  Alcotest.(check int) "nothing emitted" 0 (List.length out);
  Alcotest.(check int) "all counted" 50 (F.Netem.stats netem).F.Netem.dropped;
  Alcotest.(check bool) "drops coin agrees" true (F.Netem.drops netem)

let test_duplicate_all () =
  let netem =
    F.Netem.create ~seed:7 (F.Scenario.make ~name:"dup" [ F.Scenario.Duplicate 1.0 ])
  in
  let out = F.Netem.tx_bytes netem (sample_datagram 0) in
  Alcotest.(check int) "two emissions" 2 (List.length out);
  Alcotest.(check int) "counted once" 1 (F.Netem.stats netem).F.Netem.duplicated

let test_corrupt_single_bit_always_detected () =
  let netem =
    F.Netem.create ~seed:11
      (F.Scenario.make ~name:"flip" [ F.Scenario.Corrupt { p = 1.0; max_bits = 1 } ])
  in
  let rejected = ref 0 in
  for seq = 0 to 63 do
    List.iter
      (fun { F.Netem.data; _ } ->
        match Packet.Codec.decode data with
        | Ok _ -> Alcotest.failf "single-bit flip on packet %d went undetected" seq
        | Error _ -> incr rejected)
      (F.Netem.tx_bytes netem (sample_datagram seq))
  done;
  Alcotest.(check int) "all flips counted" 64 (F.Netem.stats netem).F.Netem.corrupted;
  Alcotest.(check int) "all flips rejected" 64 !rejected

let test_truncate_all () =
  let netem =
    F.Netem.create ~seed:5 (F.Scenario.make ~name:"cut" [ F.Scenario.Truncate 1.0 ])
  in
  let original = sample_datagram 0 in
  List.iter
    (fun { F.Netem.data; _ } ->
      Alcotest.(check bool)
        "strictly shorter" true
        (Bytes.length data < Bytes.length original))
    (F.Netem.tx_bytes netem original);
  Alcotest.(check int) "counted" 1 (F.Netem.stats netem).F.Netem.truncated

let test_delay_bounds () =
  let netem =
    F.Netem.create ~seed:5
      (F.Scenario.make ~name:"slow"
         [ F.Scenario.Delay { p = 1.0; min_ns = 5_000; max_ns = 9_000 } ])
  in
  List.iter
    (fun d ->
      List.iter
        (fun { F.Netem.delay_ns; _ } ->
          Alcotest.(check bool)
            "delay within window" true
            (delay_ns >= 5_000 && delay_ns <= 9_000))
        (F.Netem.tx_bytes netem d))
    (List.init 20 sample_datagram);
  Alcotest.(check int) "all delayed" 20 (F.Netem.stats netem).F.Netem.delayed

let test_reorder_holdback_and_flush () =
  let scenario =
    F.Scenario.make ~name:"swap" [ F.Scenario.Reorder { p = 1.0; gap = 1 } ]
  in
  let netem = F.Netem.create ~seed:3 scenario in
  let first = F.Netem.tx_bytes netem (sample_datagram 0) in
  Alcotest.(check int) "first held back" 0 (List.length first);
  (* With p = 1 the second datagram is held in turn, and the send releases
     the first one behind it — the datagrams swap places on the wire. *)
  (match F.Netem.tx_bytes netem (sample_datagram 1) with
  | [ { F.Netem.data; _ } ] ->
      Alcotest.(check bool) "the released datagram is the first one" true
        (Bytes.equal data (sample_datagram 0))
  | out -> Alcotest.failf "expected exactly the released datagram, got %d" (List.length out));
  (* A held datagram with no subsequent sends comes out in the flush. *)
  let netem = F.Netem.create ~seed:3 scenario in
  ignore (F.Netem.tx_bytes netem (sample_datagram 0));
  Alcotest.(check int) "flush releases the tail" 1 (List.length (F.Netem.flush netem));
  Alcotest.(check int) "flush leaves nothing" 0 (List.length (F.Netem.flush netem))

let test_counters_attached () =
  let counters = Protocol.Counters.create () in
  let netem =
    F.Netem.create ~counters ~seed:9
      (F.Scenario.make ~name:"sink" [ F.Scenario.Drop_iid 1.0 ])
  in
  ignore (emissions_of netem (List.init 10 sample_datagram));
  Alcotest.(check int) "injections surfaced in counters" 10
    counters.Protocol.Counters.faults_injected

let test_tx_message_undecodable_callback () =
  let netem =
    F.Netem.create ~seed:13
      (F.Scenario.make ~name:"flip" [ F.Scenario.Corrupt { p = 1.0; max_bits = 1 } ])
  in
  let detected = ref 0 in
  let out =
    F.Netem.tx_message
      ~on_undecodable:(fun _ -> incr detected)
      netem
      (Packet.Message.ack ~transfer_id:1 ~seq:4 ~total:8)
  in
  Alcotest.(check int) "nothing decodable emitted" 0 (List.length out);
  Alcotest.(check int) "detection reported" 1 !detected

(* ------------------------------------------------ simulator integration *)

let sim_suites =
  [
    Protocol.Suite.Stop_and_wait;
    Protocol.Suite.Blast Protocol.Blast.Go_back_n;
    Protocol.Suite.Blast Protocol.Blast.Selective;
  ]

let test_simulator_scenarios () =
  (* Every suite x scenario over the simulated wire: the transfer must end
     (the driver would raise on a drained queue or spin past max_attempts),
     and a successful outcome must have delivered every payload intact. *)
  List.iter
    (fun suite ->
      List.iter
        (fun scenario ->
          let payload seq = Printf.sprintf "payload-%03d" seq in
          let config =
            Protocol.Config.make ~total_packets:12
              ~tuning:(Protocol.Tuning.fixed ~max_attempts:100 ())
              ()
          in
          let result =
            Simnet.Driver.run
              ~sender_faults:(F.Netem.create ~seed:21 scenario)
              ~receiver_faults:(F.Netem.create ~seed:22 scenario)
              ~suite ~config ~payload ()
          in
          let label =
            Protocol.Suite.name suite ^ "/" ^ F.Scenario.name scenario
          in
          match result.Simnet.Driver.outcome with
          | Protocol.Action.Success ->
              Alcotest.(check int)
                (label ^ " delivered all")
                12
                (List.length result.Simnet.Driver.received);
              List.iter
                (fun (seq, p) ->
                  Alcotest.(check string) (label ^ " payload intact") (payload seq) p)
                result.Simnet.Driver.received;
              (* Only the heavyweight scenario is guaranteed to have injected
                 something over a 12-packet transfer; a 2% dropper can
                 legitimately stay silent. *)
              if F.Scenario.name scenario = "chaos" then
                Alcotest.(check bool)
                  (label ^ " injections recorded")
                  true
                  (result.Simnet.Driver.sender.Protocol.Counters.faults_injected
                   + result.Simnet.Driver.receiver.Protocol.Counters.faults_injected
                   > 0)
          | Protocol.Action.Too_many_attempts | Protocol.Action.Peer_unreachable
          | Protocol.Action.Rejected ->
              (* Clean, bounded failure: acceptable under faults. *)
              ())
        F.Scenario.all)
    sim_suites

let test_simulator_clean_unaffected () =
  (* The clean scenario through the fault plumbing must behave exactly like
     no fault plumbing at all. *)
  let config = Protocol.Config.make ~total_packets:16 () in
  let suite = Protocol.Suite.Blast Protocol.Blast.Go_back_n in
  let plain = Simnet.Driver.run ~suite ~config () in
  let routed =
    Simnet.Driver.run
      ~sender_faults:(F.Netem.create ~seed:1 F.Scenario.clean)
      ~receiver_faults:(F.Netem.create ~seed:2 F.Scenario.clean)
      ~suite ~config ()
  in
  Alcotest.(check bool)
    "same outcome" true
    (plain.Simnet.Driver.outcome = routed.Simnet.Driver.outcome);
  Alcotest.(check bool)
    "same elapsed" true
    (Simnet.Driver.elapsed_ms plain = Simnet.Driver.elapsed_ms routed);
  Alcotest.(check int) "no injections" 0
    (routed.Simnet.Driver.sender.Protocol.Counters.faults_injected
    + routed.Simnet.Driver.receiver.Protocol.Counters.faults_injected)

(* --------------------------------------------------------- UDP no-hang *)

let test_sender_unreachable () =
  (* Nobody listening: the handshake must exhaust its attempts and return a
     clean [Peer_unreachable], quickly, instead of raising or blocking. *)
  let dead_socket, dead_address = Sockets.Udp.create_socket () in
  let sender_socket, _ = Sockets.Udp.create_socket () in
  Fun.protect
    ~finally:(fun () ->
      Sockets.Udp.close dead_socket;
      Sockets.Udp.close sender_socket)
    (fun () ->
      let result =
        Sockets.Peer.send
          ~ctx:
            (Sockets.Io_ctx.make
               ~tuning:
                 (Protocol.Tuning.fixed ~retransmit_ns:2_000_000 ~max_attempts:3 ())
               ())
          ~socket:sender_socket ~peer:dead_address ~suite:Protocol.Suite.Stop_and_wait
          ~data:"hello" ()
      in
      Alcotest.(check bool)
        "peer unreachable" true
        (result.Sockets.Peer.outcome = Protocol.Action.Peer_unreachable))

let test_receiver_watchdog () =
  (* A sender that completes the handshake and then dies: the receiver's
     idle watchdog must fire and [serve_one] must return a clean abort —
     this is the regression test for the receiver-hang bug. *)
  let receiver_socket, receiver_address = Sockets.Udp.create_socket () in
  let sender_socket, _ = Sockets.Udp.create_socket () in
  let result = ref None in
  let thread =
    Thread.create
      (fun () ->
        result :=
          Some
            (Sockets.Peer.serve_one
               ~ctx:
                 (Sockets.Io_ctx.make
                    ~tuning:
                      (Protocol.Tuning.fixed ~retransmit_ns:5_000_000 ~max_attempts:4 ())
                    ())
               ~idle_timeout_ns:30_000_000 ~accept_timeout_ns:2_000_000_000
               ~socket:receiver_socket ()))
      ()
  in
  let req =
    {
      (Packet.Message.req ~transfer_id:9 ~total:4) with
      Packet.Message.payload =
        Sockets.Suite_codec.encode ~packet_bytes:256 ~total_bytes:1024
          Protocol.Suite.Stop_and_wait;
    }
  in
  (* Hand-roll the handshake, then go silent. *)
  ignore (Sockets.Udp.send_message sender_socket receiver_address req : Sockets.Udp.send_outcome);
  Thread.join thread;
  Sockets.Udp.close receiver_socket;
  Sockets.Udp.close sender_socket;
  match !result with
  | None -> Alcotest.fail "serve_one did not return"
  | Some r ->
      Alcotest.(check bool)
        "clean abort" true
        (r.Sockets.Peer.receive_outcome = Protocol.Action.Peer_unreachable);
      Alcotest.(check string) "no data" "" r.Sockets.Peer.data

(* ------------------------------------------------------ UDP chaos soak *)

let soak_iters () =
  match Sys.getenv_opt "CHAOS_ITERS" with
  | Some v -> ( match int_of_string_opt v with Some n when n > 0 -> n | _ -> 1)
  | None -> 1

let test_chaos_soak () =
  (* The campaign: every protocol suite x every named scenario over real UDP
     loopback. The invariant (verified delivery or clean bounded failure —
     never a hang, never corrupt data) is checked inside Chaos.run_one;
     anything that survives into [violations] is a bug. *)
  let runs = Sockets.Chaos.run_campaign ~iters:(soak_iters ()) ~seed:2026 () in
  let violations = Sockets.Chaos.violations runs in
  List.iter
    (fun (r : Sockets.Chaos.run) ->
      Alcotest.failf "%s/%s (seed %d): %s"
        (Protocol.Suite.name r.Sockets.Chaos.suite)
        (F.Scenario.name r.Sockets.Chaos.scenario)
        r.Sockets.Chaos.seed
        (Option.value r.Sockets.Chaos.violation ~default:"?"))
    violations;
  Alcotest.(check int)
    (Printf.sprintf "no violations in %d runs (%d completed)" (List.length runs)
       (Sockets.Chaos.completed runs))
    0 (List.length violations);
  (* The clean scenario must always complete outright. *)
  List.iter
    (fun (r : Sockets.Chaos.run) ->
      if F.Scenario.is_clean r.Sockets.Chaos.scenario then
        match r.Sockets.Chaos.send with
        | Some s ->
            Alcotest.(check bool)
              (Protocol.Suite.name r.Sockets.Chaos.suite ^ "/clean completes")
              true
              (s.Sockets.Peer.outcome = Protocol.Action.Success)
        | None -> Alcotest.fail "clean run raised")
    runs

(* -------------------------------------------------------- fault table *)

let test_fault_table_renders () =
  let stats = F.Netem.create_stats () in
  stats.F.Netem.dropped <- 3;
  stats.F.Netem.corrupted <- 1;
  let counters = Protocol.Counters.create () in
  counters.Protocol.Counters.corrupt_detected <- 1;
  let row =
    Report.Fault_table.of_counters ~label:"saw/chaos" ~stats ~outcome:"success" counters
  in
  let table = Report.Fault_table.render [ row ] in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("table mentions " ^ needle) true
        (Str_exists.contains_substring table needle))
    [ "saw/chaos"; "drop"; "success" ]

let () =
  Alcotest.run "faults"
    [
      ( "scenario",
        [
          Alcotest.test_case "registry" `Quick test_registry;
          Alcotest.test_case "validation" `Quick test_scenario_validation;
        ] );
      ( "netem",
        [
          Alcotest.test_case "deterministic replay" `Quick test_determinism;
          Alcotest.test_case "drop everything" `Quick test_drop_all;
          Alcotest.test_case "duplicate everything" `Quick test_duplicate_all;
          Alcotest.test_case "single-bit flips detected" `Quick
            test_corrupt_single_bit_always_detected;
          Alcotest.test_case "truncation" `Quick test_truncate_all;
          Alcotest.test_case "delay bounds" `Quick test_delay_bounds;
          Alcotest.test_case "reorder holdback and flush" `Quick
            test_reorder_holdback_and_flush;
          Alcotest.test_case "counters attached" `Quick test_counters_attached;
          Alcotest.test_case "undecodable callback" `Quick
            test_tx_message_undecodable_callback;
        ] );
      ( "simulator",
        [
          Alcotest.test_case "all suites x scenarios" `Quick test_simulator_scenarios;
          Alcotest.test_case "clean scenario is a no-op" `Quick
            test_simulator_clean_unaffected;
        ] );
      ( "udp",
        [
          Alcotest.test_case "sender unreachable" `Quick test_sender_unreachable;
          Alcotest.test_case "receiver watchdog" `Quick test_receiver_watchdog;
          Alcotest.test_case "chaos soak" `Slow test_chaos_soak;
        ] );
      ( "report",
        [ Alcotest.test_case "fault table" `Quick test_fault_table_renders ] );
    ]
