(* Tests for the reporting library (tables, charts, timelines, CSV) and the
   workload definitions, plus a smoke pass over every bench experiment so the
   reproduction harness itself is under test. *)

open Eventsim

(* ---------------------------------------------------------------- Table *)

let test_table_renders_aligned () =
  let rendered =
    Report.Table.render ~header:[ "name"; "value" ]
      ~rows:[ [ "x"; "1" ]; [ "longer"; "22" ] ]
      ()
  in
  let lines = String.split_on_char '\n' rendered in
  Alcotest.(check int) "six lines" 6 (List.length lines);
  let widths = List.map String.length lines in
  List.iter (fun w -> Alcotest.(check int) "constant width" (List.hd widths) w) widths;
  Alcotest.(check bool) "contains header" true
    (List.exists (fun l -> String.length l > 0 && String.contains l 'n') lines)

let test_table_rejects_ragged_rows () =
  Alcotest.check_raises "ragged" (Invalid_argument "Table.render: ragged row") (fun () ->
      ignore (Report.Table.render ~header:[ "a"; "b" ] ~rows:[ [ "only one" ] ] ()))

let test_table_formats () =
  Alcotest.(check string) "ms small" "4.080" (Report.Table.fmt_ms 4.08);
  Alcotest.(check string) "ms mid" "45.63" (Report.Table.fmt_ms 45.63);
  Alcotest.(check string) "ms big" "172.8" (Report.Table.fmt_ms 172.79);
  Alcotest.(check string) "pct" "38.0%" (Report.Table.fmt_pct 0.38)

(* ---------------------------------------------------------------- Chart *)

let test_chart_renders_points () =
  let chart =
    Report.Chart.render ~width:40 ~height:10
      [ { Report.Chart.name = "line"; points = [ (0.0, 0.0); (1.0, 1.0); (2.0, 2.0) ] } ]
  in
  Alcotest.(check bool) "glyph present" true (String.contains chart '*');
  Alcotest.(check bool) "legend present" true
    (String.length chart > 0
    && Str_exists.contains_substring chart "line")

let test_chart_empty () =
  Alcotest.(check string) "no data" "(no data)" (Report.Chart.render [])

let test_chart_log_skips_nonpositive () =
  (* Only the positive point plots; no exception. *)
  let chart =
    Report.Chart.render ~log_x:true
      [ { Report.Chart.name = "s"; points = [ (0.0, 1.0); (10.0, 1.0); (100.0, 2.0) ] } ]
  in
  Alcotest.(check bool) "rendered" true (String.contains chart '*')

(* ------------------------------------------------------------- Timeline *)

let test_timeline_renders_lanes () =
  let trace = Trace.create () in
  Trace.record trace ~lane:"cpu" ~kind:"copy-data-in" ~start:(Time.of_ns 0)
    ~stop:(Time.of_ns 500_000);
  Trace.record trace ~lane:"wire" ~kind:"transmit-data" ~start:(Time.of_ns 500_000)
    ~stop:(Time.of_ns 900_000);
  let rendered = Report.Timeline.render ~width:50 trace in
  Alcotest.(check bool) "cpu lane" true (Str_exists.contains_substring rendered "cpu");
  Alcotest.(check bool) "wire lane" true (Str_exists.contains_substring rendered "wire");
  Alcotest.(check bool) "copy glyph" true (String.contains rendered 'C');
  Alcotest.(check bool) "transmit glyph" true (String.contains rendered 'T')

let test_timeline_empty () =
  Alcotest.(check string) "empty" "(empty trace)" (Report.Timeline.render (Trace.create ()))

let test_timeline_glyphs () =
  Alcotest.(check char) "data copy" 'C' (Report.Timeline.glyph_of_kind "copy-data-in");
  Alcotest.(check char) "ack copy" 'c' (Report.Timeline.glyph_of_kind "copy-ack-out");
  Alcotest.(check char) "data tx" 'T' (Report.Timeline.glyph_of_kind "transmit-data");
  Alcotest.(check char) "ack tx" 't' (Report.Timeline.glyph_of_kind "transmit-ack");
  Alcotest.(check char) "other" '#' (Report.Timeline.glyph_of_kind "busy-wait")

(* ------------------------------------------------------------------ CSV *)

let test_csv_escaping () =
  Alcotest.(check string) "plain" "abc" (Report.Csv.escape "abc");
  Alcotest.(check string) "comma" "\"a,b\"" (Report.Csv.escape "a,b");
  Alcotest.(check string) "quote" "\"a\"\"b\"" (Report.Csv.escape "a\"b");
  Alcotest.(check string) "line" "a,\"b,c\",d" (Report.Csv.line [ "a"; "b,c"; "d" ])

let test_csv_roundtrip_file () =
  let path = Filename.temp_file "lanrepro" ".csv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Report.Csv.to_file path ~header:[ "n"; "ms" ] ~rows:[ [ "1"; "3.93" ]; [ "64"; "140.6" ] ];
      let ic = open_in path in
      let contents = really_input_string ic (in_channel_length ic) in
      close_in ic;
      Alcotest.(check string) "contents" "n,ms\n1,3.93\n64,140.6\n" contents)

(* ------------------------------------------------------------- Workload *)

let test_workload_ladders () =
  Alcotest.(check (list int)) "packets" [ 1; 2; 4; 8; 16; 32; 64 ]
    Workload.Sizes.paper_ladder_packets;
  Alcotest.(check int) "bytes head" 1024 (List.hd Workload.Sizes.paper_ladder_bytes);
  Alcotest.(check int) "dump" (16 * 1024 * 1024) Workload.Sizes.dump_bytes;
  let ladder = Workload.Sizes.pn_ladder in
  Alcotest.(check bool) "spans decades" true
    (List.hd ladder = 1e-7 && List.exists (fun p -> p = 1e-1) ladder);
  let rec increasing = function
    | a :: (b :: _ as rest) -> a < b && increasing rest
    | _ -> true
  in
  Alcotest.(check bool) "monotone" true (increasing ladder)

let test_workload_file_sizes () =
  let rng = Stats.Rng.create ~seed:81 in
  let sizes = Workload.Sizes.file_sizes rng ~count:500 in
  Alcotest.(check int) "count" 500 (List.length sizes);
  List.iter
    (fun s ->
      if s < 512 || s > 1024 * 1024 then Alcotest.failf "size %d outside range" s)
    sizes;
  (* Log-uniform: both tails should show up in 500 draws. *)
  Alcotest.(check bool) "small files occur" true (List.exists (fun s -> s < 4096) sizes);
  Alcotest.(check bool) "large files occur" true (List.exists (fun s -> s > 262_144) sizes)

(* ---------------------------------------------- experiments smoke tests *)

let run_experiment name =
  match List.assoc_opt name Experiments.all with
  | None -> Alcotest.failf "experiment %s not registered" name
  | Some f ->
      let buffer = Buffer.create 4096 in
      let ppf = Format.formatter_of_buffer buffer in
      f ppf;
      Format.pp_print_flush ppf ();
      let out = Buffer.contents buffer in
      Alcotest.(check bool) (name ^ " produced output") true (String.length out > 100);
      out

let test_cheap_experiments_run () =
  List.iter
    (fun name -> ignore (run_experiment name))
    [ "fig1"; "table1"; "table2"; "table3"; "fig2"; "fig3"; "fig4"; "intext"; "ablation-buffers";
      "ablation-window"; "ablation-dma"; "ablation-pagesize"; "ablation-overrun" ]

let test_table1_contains_anchor () =
  let out = run_experiment "table1" in
  Alcotest.(check bool) "64 KiB blast value present" true
    (Str_exists.contains_substring out "140.6");
  Alcotest.(check bool) "ratio claim present" true
    (Str_exists.contains_substring out "1.79x")

let test_table3_contains_anchors () =
  let out = run_experiment "table3" in
  Alcotest.(check bool) "To(64)" true (Str_exists.contains_substring out "172.8");
  Alcotest.(check bool) "To(1)" true (Str_exists.contains_substring out "5.890")

let test_experiment_registry_complete () =
  let names = List.map fst Experiments.all in
  List.iter
    (fun required ->
      Alcotest.(check bool) (required ^ " registered") true (List.mem required names))
    [
      "fig1"; "table1"; "table2"; "table3"; "fig2"; "fig3"; "fig4"; "fig5"; "fig6"; "intext";
      "ablation-buffers"; "ablation-window"; "ablation-multiblast"; "ablation-burst";
      "ablation-load"; "ablation-rtt"; "ablation-dma"; "ablation-pagesize";
      "ablation-overrun"; "ablation-pacing"; "udp"; "baseline-tcp";
    ]

let () =
  Alcotest.run "report-workload-experiments"
    [
      ( "table",
        [
          Alcotest.test_case "aligned" `Quick test_table_renders_aligned;
          Alcotest.test_case "ragged rejected" `Quick test_table_rejects_ragged_rows;
          Alcotest.test_case "formats" `Quick test_table_formats;
        ] );
      ( "chart",
        [
          Alcotest.test_case "renders points" `Quick test_chart_renders_points;
          Alcotest.test_case "empty" `Quick test_chart_empty;
          Alcotest.test_case "log skips nonpositive" `Quick test_chart_log_skips_nonpositive;
        ] );
      ( "timeline",
        [
          Alcotest.test_case "renders lanes" `Quick test_timeline_renders_lanes;
          Alcotest.test_case "empty" `Quick test_timeline_empty;
          Alcotest.test_case "glyphs" `Quick test_timeline_glyphs;
        ] );
      ( "csv",
        [
          Alcotest.test_case "escaping" `Quick test_csv_escaping;
          Alcotest.test_case "file roundtrip" `Quick test_csv_roundtrip_file;
        ] );
      ( "workload",
        [
          Alcotest.test_case "ladders" `Quick test_workload_ladders;
          Alcotest.test_case "file sizes" `Quick test_workload_file_sizes;
        ] );
      ( "experiments",
        [
          Alcotest.test_case "cheap experiments run" `Quick test_cheap_experiments_run;
          Alcotest.test_case "table1 anchors" `Quick test_table1_contains_anchor;
          Alcotest.test_case "table3 anchors" `Quick test_table3_contains_anchors;
          Alcotest.test_case "registry complete" `Quick test_experiment_registry_complete;
        ] );
    ]
