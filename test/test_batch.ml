(* The sendmmsg/recvmmsg packet-train fast path: wire-level round trips,
   per-datagram outcome accounting across partial sends, the ENOSYS/env
   fallback, fault injection upstream of the batch, and a batched swarm
   soak. Every test also passes with LANREPRO_BATCH=fallback (the CI matrix
   runs the whole suite both ways). *)

let payload_of i = Bytes.of_string (Printf.sprintf "datagram-%04d" i)

let make_pair () =
  let rx_socket, address = Sockets.Udp.create_socket () in
  Unix.set_nonblock rx_socket;
  let tx_socket, _ = Sockets.Udp.create_socket () in
  (tx_socket, rx_socket, address)

let close_pair tx_socket rx_socket =
  Sockets.Udp.close tx_socket;
  Sockets.Udp.close rx_socket

(* Drain [expected] datagrams from [rx], waiting (bounded) for loopback
   delivery, and return the payload strings in arrival order. *)
let drain_payloads rx rx_socket ~expected =
  let got = ref [] and count = ref 0 in
  let deadline = Unix.gettimeofday () +. 2.0 in
  while !count < expected && Unix.gettimeofday () < deadline do
    let n = Sockets.Batch.recv rx ~limit:expected in
    if n = 0 then ignore (Unix.select [ rx_socket ] [] [] 0.05)
    else
      for i = 0 to n - 1 do
        let buf, len, _from = Sockets.Batch.get rx i in
        got := Bytes.sub_string buf 0 len :: !got;
        incr count
      done
  done;
  List.rev !got

let check_round_trip ~force_fallback () =
  let tx_socket, rx_socket, address = make_pair () in
  Fun.protect
    ~finally:(fun () -> close_pair tx_socket rx_socket)
    (fun () ->
      let batch = Sockets.Batch.create ~force_fallback ~socket:tx_socket () in
      let rx = Sockets.Batch.create_rx ~force_fallback ~socket:rx_socket () in
      let n = 64 in
      for i = 0 to n - 1 do
        Sockets.Batch.push batch ~peer:address (payload_of i)
      done;
      Alcotest.(check int) "queued" n (Sockets.Batch.length batch);
      let report = Sockets.Batch.flush batch in
      Alcotest.(check int) "submitted" n report.Sockets.Batch.submitted;
      Alcotest.(check int) "sent" n report.Sockets.Batch.sent;
      Alcotest.(check int) "failed" 0 report.Sockets.Batch.failed;
      (if force_fallback || not (Sockets.Batch.kernel_support ()) then
         Alcotest.(check int) "fallback: one syscall per datagram" n
           report.Sockets.Batch.syscalls
       else
         Alcotest.(check bool) "fast path: far fewer syscalls than datagrams" true
           (report.Sockets.Batch.syscalls <= 1 + (n / 8)));
      let payloads = drain_payloads rx rx_socket ~expected:n in
      Alcotest.(check int) "all delivered" n (List.length payloads);
      (* Loopback preserves order, so arrival order is push order. *)
      List.iteri
        (fun i got ->
          Alcotest.(check string) "payload intact" (Bytes.to_string (payload_of i)) got)
        payloads;
      Alcotest.(check int) "rx counted" n (Sockets.Batch.rx_received rx);
      if not (force_fallback || not (Sockets.Batch.kernel_support ())) then
        Alcotest.(check bool) "rx fast path: fewer syscalls than datagrams" true
          (Sockets.Batch.rx_syscalls rx < n))

let test_round_trip_fast () = check_round_trip ~force_fallback:false ()
let test_round_trip_fallback () = check_round_trip ~force_fallback:true ()

(* An oversized datagram in the middle of a train: the kernel stops the
   sendmmsg short, the batch resolves exactly that entry through the
   one-datagram path (Send_failed EMSGSIZE), and the rest of the train still
   goes out. Outcome callbacks fire once per datagram with the same verdicts
   the unbatched transport would have produced. *)
let check_partial_send ~force_fallback () =
  let tx_socket, rx_socket, address = make_pair () in
  Fun.protect
    ~finally:(fun () -> close_pair tx_socket rx_socket)
    (fun () ->
      let batch = Sockets.Batch.create ~force_fallback ~socket:tx_socket () in
      let rx = Sockets.Batch.create_rx ~force_fallback ~socket:rx_socket () in
      let oversized = 3 in
      let n = 7 in
      let outcomes = Array.make n None in
      for i = 0 to n - 1 do
        let data =
          if i = oversized then Bytes.make 70_000 '!' (* > the 65507 B UDP maximum *)
          else payload_of i
        in
        Sockets.Batch.push batch ~peer:address
          ~on_outcome:(fun o -> outcomes.(i) <- Some o)
          data
      done;
      let report = Sockets.Batch.flush batch in
      Alcotest.(check int) "submitted" n report.Sockets.Batch.submitted;
      Alcotest.(check int) "sent" (n - 1) report.Sockets.Batch.sent;
      Alcotest.(check int) "failed" 1 report.Sockets.Batch.failed;
      Array.iteri
        (fun i outcome ->
          match outcome with
          | None -> Alcotest.failf "no outcome fired for datagram %d" i
          | Some Sockets.Udp.Sent ->
              Alcotest.(check bool) "only the oversized entry fails" true (i <> oversized)
          | Some (Sockets.Udp.Send_failed error) ->
              Alcotest.(check int) "oversized entry" oversized i;
              Alcotest.(check string) "classified as EMSGSIZE" "EMSGSIZE"
                (match error with Unix.EMSGSIZE -> "EMSGSIZE" | e -> Unix.error_message e))
        outcomes;
      let payloads = drain_payloads rx rx_socket ~expected:(n - 1) in
      let expected =
        List.filter_map
          (fun i -> if i = oversized then None else Some (Bytes.to_string (payload_of i)))
          (List.init n Fun.id)
      in
      Alcotest.(check (list string)) "survivors delivered in order" expected payloads)

let test_partial_send_fast () = check_partial_send ~force_fallback:false ()
let test_partial_send_fallback () = check_partial_send ~force_fallback:true ()

(* The LANREPRO_BATCH knob: "0"/"off"/"false" disable batching at the
   Io_ctx layer, "fallback"/"emulate" keep the train API but take the
   one-datagram path — and a batch created under the knob really does. *)
let test_env_knob () =
  let original = Sys.getenv_opt "LANREPRO_BATCH" in
  let restore () =
    Unix.putenv "LANREPRO_BATCH" (match original with Some v -> v | None -> "")
  in
  Fun.protect ~finally:restore (fun () ->
      List.iter
        (fun (value, enabled, fallback) ->
          Unix.putenv "LANREPRO_BATCH" value;
          Alcotest.(check bool) (value ^ " enabled") enabled (Sockets.Batch.env_enabled ());
          Alcotest.(check bool)
            (value ^ " forces fallback")
            fallback
            (Sockets.Batch.env_force_fallback ());
          Alcotest.(check bool)
            (value ^ " reflected in Io_ctx")
            enabled
            (Sockets.Io_ctx.default ()).Sockets.Io_ctx.batch)
        [
          ("0", false, false);
          ("off", false, false);
          ("false", false, false);
          ("1", true, false);
          ("fallback", true, true);
          ("emulate", true, true);
        ];
      (* A batch created under the fallback knob takes the one-datagram
         path end to end — the ENOSYS posture, forced from the outside. *)
      Unix.putenv "LANREPRO_BATCH" "fallback";
      let tx_socket, rx_socket, address = make_pair () in
      Fun.protect
        ~finally:(fun () -> close_pair tx_socket rx_socket)
        (fun () ->
          let batch = Sockets.Batch.create ~socket:tx_socket () in
          Alcotest.(check bool) "fallback honoured" true (Sockets.Batch.using_fallback batch);
          for i = 0 to 9 do
            Sockets.Batch.push batch ~peer:address (payload_of i)
          done;
          let report = Sockets.Batch.flush batch in
          Alcotest.(check int) "one syscall per datagram" 10 report.Sockets.Batch.syscalls;
          Alcotest.(check int) "all sent" 10 report.Sockets.Batch.sent;
          let rx = Sockets.Batch.create_rx ~socket:rx_socket () in
          Alcotest.(check int) "all delivered" 10
            (List.length (drain_payloads rx rx_socket ~expected:10))))

(* Fault injection happens upstream of the batch, per datagram, so the same
   seeded netem drops the same datagrams whether the survivors then go out
   through sendmmsg trains or one sendto at a time. *)
let test_netem_drop_parity () =
  let scenario = Faults.Scenario.make ~name:"half" [ Faults.Scenario.Drop_iid 0.5 ] in
  let n = 100 in
  let survivors ~batched =
    let tx_socket, rx_socket, address = make_pair () in
    Fun.protect
      ~finally:(fun () -> close_pair tx_socket rx_socket)
      (fun () ->
        let netem = Faults.Netem.create ~seed:77 scenario in
        let batch =
          if batched then Some (Sockets.Batch.create ~socket:tx_socket ()) else None
        in
        let out data =
          match batch with
          | Some b -> Sockets.Batch.push b ~peer:address data
          | None ->
              ignore (Sockets.Udp.send_bytes tx_socket address data : Sockets.Udp.send_outcome)
        in
        for i = 0 to n - 1 do
          List.iter
            (fun { Faults.Netem.delay_ns = _; data } -> out data)
            (Faults.Netem.tx_bytes netem (payload_of i))
        done;
        let emitted =
          match batch with
          | Some b ->
              let report = Sockets.Batch.flush b in
              report.Sockets.Batch.sent
          | None -> n - (Faults.Netem.stats netem).Faults.Netem.dropped
        in
        let rx = Sockets.Batch.create_rx ~socket:rx_socket () in
        let payloads = drain_payloads rx rx_socket ~expected:emitted in
        Alcotest.(check bool) "netem actually dropped some" true
          ((Faults.Netem.stats netem).Faults.Netem.dropped > 0);
        payloads)
  in
  let batched = survivors ~batched:true in
  let unbatched = survivors ~batched:false in
  Alcotest.(check (list string)) "same datagrams survive either path" unbatched batched

(* End-to-end transfer with batching on at both peers: the protocol result
   and the whole-segment CRC must come out exactly as they do unbatched. *)
let test_peer_transfer_batched () =
  let rng = Stats.Rng.create ~seed:21 in
  let data = String.init 100_000 (fun _ -> Char.chr (Stats.Rng.int rng 256)) in
  let ctx = Sockets.Io_ctx.make ~batch:true () in
  let receiver_socket, receiver_address = Sockets.Udp.create_socket () in
  let sender_socket, _ = Sockets.Udp.create_socket () in
  let received = ref None in
  let thread =
    Thread.create
      (fun () -> received := Some (Sockets.Peer.serve_one ~ctx ~socket:receiver_socket ()))
      ()
  in
  let result =
    Sockets.Peer.send ~ctx ~socket:sender_socket ~peer:receiver_address
      ~suite:(Protocol.Suite.Blast Protocol.Blast.Go_back_n) ~data ()
  in
  Thread.join thread;
  Sockets.Udp.close receiver_socket;
  Sockets.Udp.close sender_socket;
  Alcotest.(check bool) "success" true (result.Sockets.Peer.outcome = Protocol.Action.Success);
  match !received with
  | Some r ->
      Alcotest.(check bool) "data intact" true (String.equal r.Sockets.Peer.data data);
      Alcotest.(check bool) "CRC verified" true (r.Sockets.Peer.integrity = Sockets.Peer.Verified)
  | None -> Alcotest.fail "nothing received"

(* Same transfer under a seeded drop scenario with batching on: the faults
   bite (drops and retransmissions both happen) and the protocol still
   recovers a byte-perfect, CRC-verified segment. *)
let test_peer_transfer_batched_lossy () =
  let rng = Stats.Rng.create ~seed:22 in
  let data = String.init 60_000 (fun _ -> Char.chr (Stats.Rng.int rng 256)) in
  let scenario = Faults.Scenario.make ~name:"drop15" [ Faults.Scenario.Drop_iid 0.15 ] in
  let netem = Faults.Netem.create ~seed:5 scenario in
  let ctx =
    Sockets.Io_ctx.make ~faults:netem ~batch:true
      ~tuning:(Protocol.Tuning.fixed ~retransmit_ns:20_000_000 ()) ()
  in
  let receiver_socket, receiver_address = Sockets.Udp.create_socket () in
  let sender_socket, _ = Sockets.Udp.create_socket () in
  let received = ref None in
  let thread =
    Thread.create
      (fun () ->
        received :=
          Some
            (Sockets.Peer.serve_one
               ~ctx:(Sockets.Io_ctx.make ~batch:true ())
               ~socket:receiver_socket ()))
      ()
  in
  let result =
    Sockets.Peer.send ~ctx ~socket:sender_socket
      ~peer:receiver_address
      ~suite:(Protocol.Suite.Blast Protocol.Blast.Selective)
      ~data ()
  in
  Thread.join thread;
  Sockets.Udp.close receiver_socket;
  Sockets.Udp.close sender_socket;
  Alcotest.(check bool) "success" true (result.Sockets.Peer.outcome = Protocol.Action.Success);
  Alcotest.(check bool) "netem dropped datagrams" true
    ((Faults.Netem.stats netem).Faults.Netem.dropped > 0);
  Alcotest.(check bool) "retransmissions happened" true
    (result.Sockets.Peer.counters.Protocol.Counters.retransmitted_data > 0);
  match !received with
  | Some r ->
      Alcotest.(check bool) "data intact" true (String.equal r.Sockets.Peer.data data);
      Alcotest.(check bool) "CRC verified" true (r.Sockets.Peer.integrity = Sockets.Peer.Verified)
  | None -> Alcotest.fail "nothing received"

(* Concurrent soak: a batched engine serving batched senders, every flow
   CRC-verified server-side. *)
let test_swarm_batched () =
  let ctx = Sockets.Io_ctx.make ~batch:true () in
  let report = Server.Swarm.run ~bytes:16_384 ~seed:11 ~ctx ~flows:8 () in
  Alcotest.(check int) "all completed" 8 report.Server.Swarm.completed;
  Alcotest.(check int) "none failed" 0 report.Server.Swarm.failed;
  Alcotest.(check int) "server verified every flow" 8 (Server.Swarm.server_verified report)

let () =
  Alcotest.run "batch"
    [
      ( "round-trip",
        [
          Alcotest.test_case "fast path" `Quick test_round_trip_fast;
          Alcotest.test_case "forced fallback" `Quick test_round_trip_fallback;
        ] );
      ( "partial-send",
        [
          Alcotest.test_case "fast path" `Quick test_partial_send_fast;
          Alcotest.test_case "forced fallback" `Quick test_partial_send_fallback;
        ] );
      ("env-knob", [ Alcotest.test_case "LANREPRO_BATCH" `Quick test_env_knob ]);
      ("netem", [ Alcotest.test_case "drop parity over batch" `Quick test_netem_drop_parity ]);
      ( "peer",
        [
          Alcotest.test_case "batched transfer CRC-verified" `Quick test_peer_transfer_batched;
          Alcotest.test_case "batched lossy transfer recovers" `Quick
            test_peer_transfer_batched_lossy;
        ] );
      ("swarm", [ Alcotest.test_case "batched 8-sender soak" `Quick test_swarm_batched ]);
    ]
