(* Live engine introspection: the mergeable histogram, the per-flow lifecycle
   trace, and the queryable stats plane.

   Three layers, matching how the pieces deploy. [Obs.Hist] and
   [Obs.Flowtrace] are tested directly as data structures. The lifecycle
   grammar is then asserted against the whole system: a DST trial stamps the
   trace under virtual time, so the export must replay bit-for-bit at any
   parallelism — the same contract the journal digest carries. Finally the
   stat socket is exercised for real: a UDP round-trip against a polling
   loop, and a query landing mid-run against a live swarm engine, whose
   snapshot must reconcile with the final rollup. *)

let json_path path json =
  List.fold_left (fun acc key -> Option.bind acc (Obs.Json.member key)) (Some json) path

let json_int path json = Option.bind (json_path path json) Obs.Json.to_int
let json_str path json = Option.bind (json_path path json) Obs.Json.to_str

(* ------------------------------------------------------------------- hist *)

let test_hist_quantiles () =
  let h = Obs.Hist.create ~lo:1.0 ~hi:1e6 ~bins:120 () in
  for v = 1 to 1000 do
    Obs.Hist.add h (float_of_int v)
  done;
  let s = Obs.Hist.snapshot h in
  Alcotest.(check int) "count" 1000 s.Obs.Hist.count;
  Alcotest.(check (float 0.0)) "max is exact" 1000.0 s.Obs.Hist.max;
  (* Log-bucketed: quantiles are approximate, but must stay within one
     bucket's relative error (12%% at 120 bins over 6 decades). *)
  let within name expected actual =
    Alcotest.(check bool)
      (Printf.sprintf "%s within bucket error (got %.1f, want ~%.1f)" name actual expected)
      true
      (Float.abs (actual -. expected) /. expected < 0.13)
  in
  within "p50" 500.0 s.Obs.Hist.p50;
  within "p90" 900.0 s.Obs.Hist.p90;
  within "p99" 990.0 s.Obs.Hist.p99;
  within "mean" 500.5 s.Obs.Hist.mean

let test_hist_exact_extremes () =
  (* Quantiles clamp to the observed min and max, so a single-sample
     histogram reports that sample everywhere. *)
  let h = Obs.Hist.create () in
  Obs.Hist.add h 42.0;
  Alcotest.(check (float 0.0)) "p50 of one sample" 42.0 (Obs.Hist.quantile h 0.5);
  Alcotest.(check (float 0.0)) "p99 of one sample" 42.0 (Obs.Hist.quantile h 0.99)

let test_hist_merge () =
  let a = Obs.Hist.create ~lo:1.0 ~hi:1e3 ~bins:60 () in
  let b = Obs.Hist.create ~lo:1.0 ~hi:1e3 ~bins:60 () in
  let whole = Obs.Hist.create ~lo:1.0 ~hi:1e3 ~bins:60 () in
  for v = 1 to 500 do
    Obs.Hist.add a (float_of_int v);
    Obs.Hist.add whole (float_of_int v)
  done;
  for v = 501 to 900 do
    Obs.Hist.add b (float_of_int v);
    Obs.Hist.add whole (float_of_int v)
  done;
  Obs.Hist.merge ~into:a b;
  let merged = Obs.Hist.snapshot a and direct = Obs.Hist.snapshot whole in
  Alcotest.(check int) "merged count" direct.Obs.Hist.count merged.Obs.Hist.count;
  Alcotest.(check (float 0.0)) "merged max" direct.Obs.Hist.max merged.Obs.Hist.max;
  Alcotest.(check (float 0.0)) "merged p50" direct.Obs.Hist.p50 merged.Obs.Hist.p50;
  Alcotest.(check (float 0.0)) "merged p99" direct.Obs.Hist.p99 merged.Obs.Hist.p99

let test_hist_merge_geometry_mismatch () =
  let a = Obs.Hist.create ~lo:1.0 ~hi:1e3 ~bins:60 () in
  let b = Obs.Hist.create ~lo:1.0 ~hi:1e6 ~bins:60 () in
  Alcotest.check_raises "different geometry refuses to merge"
    (Invalid_argument "Hist.merge: mismatched bucket geometry") (fun () ->
      Obs.Hist.merge ~into:a b)

let test_hist_ignores_non_finite () =
  let h = Obs.Hist.create () in
  Obs.Hist.add h Float.nan;
  Obs.Hist.add h 5.0;
  Alcotest.(check int) "nan not counted" 1 (Obs.Hist.count h)

(* -------------------------------------------------------------- flowtrace *)

let lifecycle t ~flow ~at events =
  List.iteri (fun i e -> Obs.Flowtrace.record t ~flow e ~now:(at + (i * 10))) events

let test_flowtrace_valid_lifecycle () =
  let t = Obs.Flowtrace.create () in
  lifecycle t ~flow:"a" ~at:100
    Obs.Flowtrace.
      [ Admitted; First_data; Round; Round; Verify; Terminal Done ];
  lifecycle t ~flow:"b" ~at:105 Obs.Flowtrace.[ Admitted; Terminal Failed ];
  Obs.Flowtrace.record t ~flow:"c" (Obs.Flowtrace.Terminal Obs.Flowtrace.Rejected) ~now:200;
  Alcotest.(check (list string)) "grammar holds" [] (Obs.Flowtrace.validate t)

let test_flowtrace_rejects_bad_grammar () =
  let missing_terminal = Obs.Flowtrace.create () in
  lifecycle missing_terminal ~flow:"x" ~at:0 Obs.Flowtrace.[ Admitted; First_data ];
  Alcotest.(check bool) "missing terminal flagged" true
    (Obs.Flowtrace.validate missing_terminal <> []);
  let two_terminals = Obs.Flowtrace.create () in
  lifecycle two_terminals ~flow:"x" ~at:0
    Obs.Flowtrace.[ Admitted; Terminal Done; Terminal Failed ];
  Alcotest.(check bool) "second terminal flagged" true
    (Obs.Flowtrace.validate two_terminals <> []);
  let after_terminal = Obs.Flowtrace.create () in
  lifecycle after_terminal ~flow:"x" ~at:0
    Obs.Flowtrace.[ Admitted; Terminal Done; Round ];
  Alcotest.(check bool) "event after terminal flagged" true
    (Obs.Flowtrace.validate after_terminal <> [])

let test_flowtrace_spans_nest () =
  let t = Obs.Flowtrace.create () in
  lifecycle t ~flow:"f" ~at:1000
    Obs.Flowtrace.[ Admitted; First_data; Round; Verify; Terminal Done ];
  let spans = Obs.Flowtrace.spans t in
  let find kind =
    match List.find_opt (fun s -> s.Obs.Span.kind = kind) spans with
    | Some s -> s
    | None -> Alcotest.failf "no %S span" kind
  in
  let outer = find "flow" and handshake = find "handshake" and blast = find "blast" in
  let ends s = s.Obs.Span.start_ns + s.Obs.Span.dur_ns in
  Alcotest.(check bool) "handshake starts with flow" true
    (handshake.Obs.Span.start_ns = outer.Obs.Span.start_ns);
  Alcotest.(check bool) "handshake ends before blast begins" true
    (ends handshake = blast.Obs.Span.start_ns);
  Alcotest.(check bool) "blast ends with flow" true (ends blast = ends outer);
  Alcotest.(check bool) "all spans share the flow's lane" true
    (List.for_all (fun s -> s.Obs.Span.lane = "f") spans)

(* -------------------------------------------------- lifecycle, whole-system *)

let dst_config ~seed =
  {
    (Dst.Harness.default_config ~seed) with
    Dst.Harness.churn = Dst.Harness.Mixed;
    faults = Some Faults.Scenario.chaos;
    senders = 6;
    transfers = 2;
  }

let test_dst_trace_grammar_under_chaos () =
  (* A full chaos trial — kills, port reuse, engine restarts — and the
     harness's own horizon check asserts the lifecycle grammar (it runs
     [Obs.Flowtrace.validate] once the engine wound down). The trace must
     also actually cover the run: at least one span per admitted flow. *)
  let t = Dst.Harness.run (dst_config ~seed:29) in
  Alcotest.(check (list string)) "no violations (grammar included)" []
    t.Dst.Harness.violations;
  let lines =
    List.filter (fun l -> l <> "") (String.split_on_char '\n' t.Dst.Harness.flowtrace)
  in
  Alcotest.(check bool) "trace is non-empty" true (List.length lines > 0);
  List.iter
    (fun line ->
      match Obs.Json.parse line with
      | Error e -> Alcotest.failf "unparseable trace line %S: %s" line e
      | Ok json ->
          Alcotest.(check bool) "record has flow, ev, ts" true
            (json_str [ "flow" ] json <> None
            && json_str [ "ev" ] json <> None
            && json_int [ "ts" ] json <> None))
    lines

let test_dst_trace_identical_across_jobs () =
  let cfg = dst_config ~seed:11 in
  let seeds = [ 11; 12; 13; 14 ] in
  let traces jobs =
    List.map
      (fun (t : Dst.Harness.trial) -> t.Dst.Harness.flowtrace)
      (Dst.Harness.run_seeds ~jobs cfg ~seeds)
  in
  let sequential = traces 1 and parallel = traces 4 in
  Alcotest.(check (list string)) "flowtrace bytes identical at jobs=1 and jobs=4"
    sequential parallel;
  Alcotest.(check bool) "traces carry events" true
    (List.for_all (fun t -> String.length t > 0) sequential)

(* ------------------------------------------------------------- stats plane *)

let test_admin_round_trip () =
  let admin = Server.Admin.create ~port:0 () in
  let port = Server.Admin.port admin in
  let snapshot () =
    Obs.Json.Obj
      [
        ("schema", Obs.Json.String "lanrepro-stat/1");
        ("active_flows", Obs.Json.Int 3);
      ]
  in
  let stop = Atomic.make false in
  let server =
    Domain.spawn (fun () ->
        while not (Atomic.get stop) do
          Server.Admin.poll admin ~snapshot;
          Unix.sleepf 0.002
        done)
  in
  let result =
    Server.Admin.query ~timeout_ms:500 ~retries:5
      (Unix.ADDR_INET (Unix.inet_addr_loopback, port))
  in
  Atomic.set stop true;
  Domain.join server;
  Server.Admin.close admin;
  match result with
  | Error e -> Alcotest.failf "query failed: %s" e
  | Ok json ->
      Alcotest.(check (option string)) "schema" (Some "lanrepro-stat/1")
        (json_str [ "schema" ] json);
      Alcotest.(check (option int)) "payload round-trips" (Some 3)
        (json_int [ "active_flows" ] json)

let test_admin_parse_address () =
  (match Server.Admin.parse_address "127.0.0.1:9901" with
  | Ok (Unix.ADDR_INET (_, 9901)) -> ()
  | _ -> Alcotest.fail "host:port did not parse");
  (match Server.Admin.parse_address "9901" with
  | Ok (Unix.ADDR_INET (addr, 9901)) ->
      Alcotest.(check string) "bare port defaults to loopback" "127.0.0.1"
        (Unix.string_of_inet_addr addr)
  | _ -> Alcotest.fail "bare port did not parse");
  match Server.Admin.parse_address "nonsense" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "garbage accepted"

let test_stat_socket_under_swarm_load () =
  (* The acceptance path: a live engine under swarm load answers a stat
     query mid-run without disturbing the data path, and the final snapshot
     reconciles with the rollup the report carries. *)
  let port = 45_991 in
  let live = ref None in
  let querier =
    Domain.spawn (fun () ->
        let addr = Unix.ADDR_INET (Unix.inet_addr_loopback, port) in
        let deadline = Unix.gettimeofday () +. 20.0 in
        let rec loop () =
          if !live = None && Unix.gettimeofday () < deadline then (
            (match Server.Admin.query ~timeout_ms:200 ~retries:1 addr with
            | Ok json -> live := Some json
            | Error _ -> Unix.sleepf 0.01);
            loop ())
        in
        loop ())
  in
  let flowtrace = Obs.Flowtrace.create () in
  let report =
    Server.Swarm.run ~max_flows:8 ~bytes:(256 * 1024) ~seed:5
      ~ctx:(Sockets.Io_ctx.make ()) ~flowtrace ~admin_port:port ~flows:8 ()
  in
  Domain.join querier;
  Alcotest.(check int) "all flows complete" 8 report.Server.Swarm.completed;
  Alcotest.(check (list string)) "engine invariants held" [] report.Server.Swarm.invariants;
  (* The mid-run snapshot: well-formed, and taken while the engine lived. *)
  (match !live with
  | None -> Alcotest.fail "no snapshot answered during the run"
  | Some json ->
      Alcotest.(check (option string)) "live schema" (Some "lanrepro-stat/1")
        (json_str [ "schema" ] json);
      Alcotest.(check bool) "live snapshot has health" true
        (json_path [ "health"; "ticks" ] json <> None);
      Alcotest.(check bool) "live snapshot has counters" true
        (json_path [ "counters"; "delivered" ] json <> None));
  (* The final snapshot reconciles with the report's own totals. *)
  let final = report.Server.Swarm.engine_snapshot in
  Alcotest.(check (option int)) "snapshot totals match report"
    (Some report.Server.Swarm.server.Server.Engine.completed)
    (json_int [ "totals"; "completed" ] final);
  Alcotest.(check (option int)) "no flows left in the table" (Some 0)
    (json_int [ "active_flows" ] final);
  (match json_int [ "counters"; "delivered" ] final with
  | Some delivered -> Alcotest.(check bool) "rollup carried data" true (delivered > 0)
  | None -> Alcotest.fail "snapshot counters missing");
  (* And the engine's flowtrace closed every lifecycle it opened. *)
  Alcotest.(check (list string)) "swarm flowtrace grammar holds" []
    (Obs.Flowtrace.validate flowtrace)

let () =
  Alcotest.run "introspection"
    [
      ( "hist",
        [
          Alcotest.test_case "quantiles within bucket error" `Quick test_hist_quantiles;
          Alcotest.test_case "extremes are exact" `Quick test_hist_exact_extremes;
          Alcotest.test_case "merge equals direct accumulation" `Quick test_hist_merge;
          Alcotest.test_case "merge refuses mismatched geometry" `Quick
            test_hist_merge_geometry_mismatch;
          Alcotest.test_case "non-finite samples ignored" `Quick test_hist_ignores_non_finite;
        ] );
      ( "flowtrace",
        [
          Alcotest.test_case "valid lifecycles pass" `Quick test_flowtrace_valid_lifecycle;
          Alcotest.test_case "grammar violations caught" `Quick
            test_flowtrace_rejects_bad_grammar;
          Alcotest.test_case "spans are well-nested" `Quick test_flowtrace_spans_nest;
        ] );
      ( "whole-system",
        [
          Alcotest.test_case "chaos trial upholds lifecycle grammar" `Quick
            test_dst_trace_grammar_under_chaos;
          Alcotest.test_case "trace bytes invariant under jobs" `Quick
            test_dst_trace_identical_across_jobs;
        ] );
      ( "stats-plane",
        [
          Alcotest.test_case "admin socket round-trip" `Quick test_admin_round_trip;
          Alcotest.test_case "address parsing" `Quick test_admin_parse_address;
          Alcotest.test_case "stat query under swarm load" `Quick
            test_stat_socket_under_swarm_load;
        ] );
    ]
