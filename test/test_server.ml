(* The concurrent transfer server: sans-IO flow engine, timer heap, admission
   control, and the 32-sender swarm soak. *)

let scenario name =
  match Faults.Scenario.find name with
  | Some s -> s
  | None -> Alcotest.failf "unknown scenario %s" name

(* ------------------------------------------------------------- timer heap *)

let test_timers_ordering () =
  let heap = Server.Timers.create () in
  Alcotest.(check bool) "fresh heap empty" true (Server.Timers.is_empty heap);
  List.iter (fun d -> Server.Timers.add heap ~deadline:d d) [ 50; 10; 30; 20; 40; 10 ];
  Alcotest.(check (option int)) "peek is min" (Some 10) (Server.Timers.peek_deadline heap);
  Alcotest.(check int) "six entries" 6 (Server.Timers.length heap);
  let popped = ref [] in
  let rec drain () =
    match Server.Timers.pop heap with
    | Some (_, payload) ->
        popped := payload :: !popped;
        drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check (list int)) "sorted drain" [ 10; 10; 20; 30; 40; 50 ] (List.rev !popped)

let test_timers_pop_due () =
  let heap = Server.Timers.create () in
  Server.Timers.add heap ~deadline:100 "late";
  Server.Timers.add heap ~deadline:10 "due";
  Alcotest.(check (option string)) "due entry pops" (Some "due")
    (Server.Timers.pop_due heap ~now:50);
  Alcotest.(check (option string)) "future entry does not" None (Server.Timers.pop_due heap ~now:50);
  Alcotest.(check (option string)) "until its time comes" (Some "late")
    (Server.Timers.pop_due heap ~now:100)

(* The heap against a naive sorted-list model, under random interleavings of
   insert, cancel, and pop-due — duplicate deadlines and cancel-after-fire
   included. The heap has no cancel operation by design (the engine uses lazy
   invalidation: stale entries pop and are discarded by the caller), so
   cancellation is modelled exactly as the engine does it — a cancelled-id
   set both sides consult on pop. *)
let prop_timers_match_model =
  let op_gen =
    (* (tag, value): tag picks the operation, value the deadline / advance. *)
    QCheck.(list_of_size Gen.(int_range 1 120) (pair (int_bound 5) (int_bound 30)))
  in
  QCheck.Test.make ~name:"timer heap agrees with sorted-list model" ~count:300 op_gen
    (fun ops ->
      let heap = Server.Timers.create () in
      let model = ref [] in
      (* Monotone clock: pop_due must never see time move backwards. *)
      let now = ref 0 in
      let next_id = ref 0 in
      let cancelled = Hashtbl.create 16 in
      let model_pop_due () =
        match List.sort compare !model with
        | [] -> None
        | (deadline, _) :: _ when deadline > !now -> None
        | (deadline, _) :: _ ->
            (* Ties are unordered: any payload at the minimal deadline is a
               correct answer, so the model commits to the heap's choice only
               after checking deadline agreement. *)
            Some deadline
      in
      let pop_due_agrees () =
        match (Server.Timers.pop_due heap ~now:!now, model_pop_due ()) with
        | None, None -> true
        | Some id, Some deadline ->
            let candidates = List.filter (fun (d, _) -> d = deadline) !model in
            if not (List.exists (fun (_, i) -> i = id) candidates) then false
            else begin
              model := List.filter (fun (_, i) -> i <> id) !model;
              (* A cancelled entry still pops — lazy invalidation — and the
                 caller discards it; agreement is all that matters here. *)
              ignore (Hashtbl.mem cancelled id : bool);
              true
            end
        | Some _, None | None, Some _ -> false
      in
      let step (tag, value) =
        match tag with
        | 0 | 1 | 2 ->
            let id = !next_id in
            next_id := id + 1;
            let deadline = !now + value in
            Server.Timers.add heap ~deadline id;
            model := (deadline, id) :: !model;
            true
        | 3 ->
            (* Cancel a random live or already-fired id: firing a cancelled
               entry later must stay harmless on both sides. *)
            if !next_id > 0 then Hashtbl.replace cancelled (value mod !next_id) ();
            true
        | _ ->
            now := !now + value;
            pop_due_agrees ()
      in
      let ok = List.for_all step ops in
      (* Drain: everything left pops in nondecreasing deadline order and the
         two sides agree entry for entry. *)
      now := max_int;
      let rec drain last =
        match Server.Timers.pop_due heap ~now:!now with
        | None -> !model = []
        | Some id -> (
            match List.sort compare !model with
            | [] -> false
            | (deadline, _) :: _ ->
                deadline >= last
                && List.mem (deadline, id) (List.filter (fun (d, _) -> d = deadline) !model)
                && begin
                     model := List.filter (fun (_, i) -> i <> id) !model;
                     drain deadline
                   end)
      in
      ok
      && Server.Timers.length heap = List.length !model
      && Option.equal ( = )
           (Server.Timers.peek_deadline heap)
           (match List.sort compare !model with [] -> None | (d, _) :: _ -> Some d)
      && drain min_int)

(* -------------------------------------------------------- counters merge *)

let test_counters_merge () =
  let a = Protocol.Counters.create () in
  let b = Protocol.Counters.create () in
  a.Protocol.Counters.data_sent <- 3;
  a.Protocol.Counters.acks_sent <- 2;
  b.Protocol.Counters.data_sent <- 4;
  b.Protocol.Counters.retransmitted_data <- 5;
  b.Protocol.Counters.corrupt_detected <- 1;
  Protocol.Counters.merge ~into:a b;
  Alcotest.(check int) "data_sent summed" 7 a.Protocol.Counters.data_sent;
  Alcotest.(check int) "acks kept" 2 a.Protocol.Counters.acks_sent;
  Alcotest.(check int) "retransmits merged" 5 a.Protocol.Counters.retransmitted_data;
  Alcotest.(check int) "corrupt merged" 1 a.Protocol.Counters.corrupt_detected;
  Alcotest.(check int) "source untouched" 4 b.Protocol.Counters.data_sent;
  let total = Protocol.Counters.sum [ a; b ] in
  Alcotest.(check int) "sum folds all" 11 total.Protocol.Counters.data_sent

(* ------------------------------------------------- sans-IO flow, no sockets *)

let flow_req ~transfer_id ~data ~packet_bytes =
  {
    (Packet.Message.req ~transfer_id
       ~total:((String.length data + packet_bytes - 1) / packet_bytes))
    with
    Packet.Message.payload =
      Sockets.Suite_codec.encode
        ~data_crc:(Packet.Checksum.crc32_string data)
        ~packet_bytes ~total_bytes:(String.length data)
        (Protocol.Suite.Blast Protocol.Blast.Go_back_n);
  }

let make_flow ?(transfer_id = 7) ?(packet_bytes = 256) ~data ~now () =
  let counters = Protocol.Counters.create () in
  let probe = Obs.Probe.create ~lane:"test" ~counters () in
  match
    Sockets.Flow.create
      ~tuning:(Protocol.Tuning.fixed ~retransmit_ns:1_000_000 ~max_attempts:5 ())
      ~probe ~counters ~now
      (flow_req ~transfer_id ~data ~packet_bytes)
  with
  | Ok (flow, actions) -> (flow, actions)
  | Error _ -> Alcotest.fail "flow creation refused a valid REQ"

(* Drive a whole transfer with fabricated messages and a fabricated clock:
   the engine is sans-IO, so the test owns both ends of the contract. *)
let test_flow_pure_transfer () =
  let data = String.init 700 (fun i -> Char.chr (i mod 256)) in
  let packet_bytes = 256 in
  let transfer_id = 7 in
  let flow, actions = make_flow ~transfer_id ~packet_bytes ~data ~now:1_000 () in
  (match actions with
  | Sockets.Flow.Transmit m :: _ ->
      Alcotest.(check bool) "handshake ack first" true
        (m.Packet.Message.kind = Packet.Kind.Ack && m.Packet.Message.seq = 0)
  | [] -> Alcotest.fail "no handshake ack emitted");
  Alcotest.(check int) "transfer id" transfer_id (Sockets.Flow.transfer_id flow);
  (* A duplicate REQ mid-transfer is re-acked, not fed to the machine. *)
  let dup =
    Sockets.Flow.on_message flow ~now:2_000 (flow_req ~transfer_id ~data ~packet_bytes)
  in
  Alcotest.(check int) "duplicate REQ re-acked" 1 (List.length dup);
  let total = 3 in
  for seq = 0 to total - 1 do
    let payload =
      String.sub data (seq * packet_bytes)
        (min packet_bytes (String.length data - (seq * packet_bytes)))
    in
    ignore
      (Sockets.Flow.on_message flow ~now:(3_000 + seq)
         (Packet.Message.data ~transfer_id ~seq ~total ~payload)
        : Sockets.Flow.action list)
  done;
  Alcotest.(check bool) "lingering after last packet" true
    (Sockets.Flow.status flow = `Lingering);
  (* Linger expiry settles the flow; the deadline drives it, not a message. *)
  let deadline =
    match Sockets.Flow.next_deadline flow with
    | Some d -> d
    | None -> Alcotest.fail "lingering flow must expose its deadline"
  in
  ignore (Sockets.Flow.on_tick flow ~now:deadline : Sockets.Flow.action list);
  match Sockets.Flow.status flow with
  | `Done c ->
      Alcotest.(check string) "data reassembled" data c.Sockets.Flow.data;
      Alcotest.(check bool) "crc verified" true
        (c.Sockets.Flow.integrity = Sockets.Flow.Verified);
      Alcotest.(check bool) "outcome success" true
        (c.Sockets.Flow.outcome = Protocol.Action.Success)
  | _ -> Alcotest.fail "flow did not settle after linger expiry"

let test_flow_idle_watchdog () =
  let data = String.make 512 'w' in
  let flow, _ = make_flow ~data ~now:0 () in
  (* No datagrams ever arrive: the watchdog deadline is the next wake-up,
     and ticking at it aborts with the typed outcome. *)
  let deadline = Option.get (Sockets.Flow.next_deadline flow) in
  ignore (Sockets.Flow.on_tick flow ~now:deadline : Sockets.Flow.action list);
  match Sockets.Flow.status flow with
  | `Done c ->
      Alcotest.(check bool) "peer unreachable" true
        (c.Sockets.Flow.outcome = Protocol.Action.Peer_unreachable);
      Alcotest.(check string) "no data" "" c.Sockets.Flow.data
  | _ -> Alcotest.fail "watchdog did not abort the silent flow"

let test_flow_rejects_bad_geometry () =
  let counters = Protocol.Counters.create () in
  let probe = Obs.Probe.create ~lane:"test" ~counters () in
  let make payload =
    Sockets.Flow.create ~probe ~counters ~now:0
      { (Packet.Message.req ~transfer_id:1 ~total:1) with Packet.Message.payload }
  in
  (match make "bogus" with
  | Error `Bad_geometry -> ()
  | _ -> Alcotest.fail "undecodable geometry accepted");
  (* A REQ claiming a huge transfer must not size an allocation. *)
  (match
     make
       (Sockets.Suite_codec.encode ~packet_bytes:1024 ~total_bytes:(1 lsl 40)
          (Protocol.Suite.Blast Protocol.Blast.Go_back_n))
   with
  | Error `Bad_geometry -> ()
  | _ -> Alcotest.fail "oversized geometry accepted");
  match
    Sockets.Flow.create ~probe ~counters ~now:0
      (Packet.Message.data ~transfer_id:1 ~seq:0 ~total:1 ~payload:"x")
  with
  | Error `Not_a_req -> ()
  | _ -> Alcotest.fail "non-REQ accepted"

(* ------------------------------------------------------- admission control *)

(* Raw REQs against a capped engine: flow N+1 gets a REJ datagram back. *)
let test_admission_rej_reply () =
  let socket, address = Sockets.Udp.create_socket () in
  let engine =
    Server.Engine.create ~max_flows:2 ~transport:(Sockets.Transport.udp ~socket ()) ()
  in
  let domain = Domain.spawn (fun () -> Server.Engine.run engine) in
  let data = String.make 2048 'a' in
  let req id = flow_req ~transfer_id:id ~data ~packet_bytes:1024 in
  let client i =
    let s, _ = Sockets.Udp.create_socket () in
    Fun.protect
      ~finally:(fun () -> Sockets.Udp.close s)
      (fun () ->
        ignore (Sockets.Udp.send_message s address (req i) : Sockets.Udp.send_outcome);
        match Sockets.Udp.recv_message ~timeout_ns:2_000_000_000 s with
        | `Message (m, _) -> Some m.Packet.Message.kind
        | `Timeout | `Garbage _ -> None)
  in
  (* Two flows admitted (handshake ack), they then sit in the table idling. *)
  Alcotest.(check (option (testable Packet.Kind.pp ( = ))))
    "first admitted" (Some Packet.Kind.Ack) (client 1);
  Alcotest.(check (option (testable Packet.Kind.pp ( = ))))
    "second admitted" (Some Packet.Kind.Ack) (client 2);
  Alcotest.(check (option (testable Packet.Kind.pp ( = ))))
    "third refused with REJ" (Some Packet.Kind.Rej) (client 3);
  Server.Engine.stop engine;
  Domain.join domain;
  Sockets.Udp.close socket;
  let totals = Server.Engine.totals engine in
  Alcotest.(check int) "two accepted" 2 totals.Server.Engine.accepted;
  Alcotest.(check int) "one rejected" 1 totals.Server.Engine.rejected;
  Alcotest.(check int) "idle flows force-settled" 2 totals.Server.Engine.aborted

(* A full sender against a zero-capacity server surfaces the clean outcome. *)
let test_admission_sender_outcome () =
  let report = Server.Swarm.run ~flows:2 ~max_flows:0 ~bytes:4096 ~seed:3 () in
  Alcotest.(check int) "every sender rejected" 2 report.Server.Swarm.rejected;
  Alcotest.(check int) "none completed" 0 report.Server.Swarm.completed;
  Alcotest.(check int) "none failed uncleanly" 0 report.Server.Swarm.failed;
  List.iter
    (fun (s : Server.Swarm.sender_report) ->
      Alcotest.(check bool) "typed Rejected outcome" true
        (s.Server.Swarm.outcome = Protocol.Action.Rejected))
    report.Server.Swarm.senders

(* ------------------------------------------------------------- swarm soak *)

(* The tentpole acceptance test: 32 concurrent senders over loopback, seeded
   netem on both sides, one server socket. Every transfer must end in a
   typed outcome (the pool would surface a hang as a timeout-killed CI job),
   and completed flows must be CRC-verified on the server side. *)
let test_swarm_32_under_faults () =
  let report =
    Server.Swarm.run ~flows:32 ~jobs:32 ~bytes:4096 ~packet_bytes:512
      ~tuning:(Protocol.Tuning.fixed ~retransmit_ns:8_000_000 ~max_attempts:40 ())
      ~scenario:(scenario "chaos") ~server_scenario:(scenario "chaos") ~seed:2026 ()
  in
  Alcotest.(check int) "all 32 senders returned" 32
    (List.length report.Server.Swarm.senders);
  List.iter
    (fun (s : Server.Swarm.sender_report) ->
      match s.Server.Swarm.outcome with
      | Protocol.Action.Success | Protocol.Action.Too_many_attempts
      | Protocol.Action.Peer_unreachable | Protocol.Action.Rejected ->
          ())
    report.Server.Swarm.senders;
  (* Under the chaos scenario a few flows may fail cleanly; the soak demands
     a healthy majority actually complete... *)
  Alcotest.(check bool)
    (Printf.sprintf "at least half completed (%d/32)" report.Server.Swarm.completed)
    true
    (report.Server.Swarm.completed >= 16);
  (* ...and that no completed flow ever delivered corrupt data. *)
  List.iter
    (fun (e : Server.Engine.completion_event) ->
      if e.Server.Engine.completion.Sockets.Flow.outcome = Protocol.Action.Success then
        Alcotest.(check bool) "server-side CRC verified" true
          (e.Server.Engine.completion.Sockets.Flow.integrity = Sockets.Flow.Verified))
    report.Server.Swarm.completions;
  let totals = report.Server.Swarm.server in
  Alcotest.(check int) "server settled every admitted flow"
    totals.Server.Engine.accepted
    (totals.Server.Engine.completed + totals.Server.Engine.aborted);
  (* The roll-up merges per-flow counters: it must see at least one data
     packet per completed flow. *)
  Alcotest.(check bool) "rollup reflects traffic" true
    (report.Server.Swarm.rollup.Protocol.Counters.delivered
    >= report.Server.Swarm.completed)

(* Determinism: the same seed replays the same admission/settlement totals. *)
let test_swarm_deterministic_totals () =
  let run () =
    let r =
      Server.Swarm.run ~flows:6 ~jobs:6 ~bytes:4096 ~packet_bytes:512
        ~tuning:(Protocol.Tuning.fixed ~retransmit_ns:8_000_000 ())
        ~scenario:(scenario "lossy2")
        ~server_scenario:(scenario "lossy2") ~seed:99 ()
    in
    (r.Server.Swarm.completed, r.Server.Swarm.rejected, r.Server.Swarm.failed)
  in
  let a = run () and b = run () in
  Alcotest.(check (triple int int int)) "same outcome counts" a b

let () =
  Alcotest.run "server"
    [
      ( "timers",
        Alcotest.test_case "heap ordering" `Quick test_timers_ordering
        :: Alcotest.test_case "pop_due gating" `Quick test_timers_pop_due
        :: List.map QCheck_alcotest.to_alcotest [ prop_timers_match_model ] );
      ("counters", [ Alcotest.test_case "merge and sum" `Quick test_counters_merge ]);
      ( "flow",
        [
          Alcotest.test_case "pure sans-IO transfer" `Quick test_flow_pure_transfer;
          Alcotest.test_case "idle watchdog aborts" `Quick test_flow_idle_watchdog;
          Alcotest.test_case "bad geometry refused" `Quick test_flow_rejects_bad_geometry;
        ] );
      ( "admission",
        [
          Alcotest.test_case "REJ past the cap" `Quick test_admission_rej_reply;
          Alcotest.test_case "sender surfaces Rejected" `Quick test_admission_sender_outcome;
        ] );
      ( "swarm",
        [
          Alcotest.test_case "32 senders under chaos" `Slow test_swarm_32_under_faults;
          Alcotest.test_case "deterministic totals" `Quick test_swarm_deterministic_totals;
        ] );
    ]
