(* Tests for the protocol state machines, driven by a pure in-memory harness:
   no clock, no network — losses and duplications are scripted, and timeouts
   fire whenever the system is otherwise quiescent. *)

module P = Protocol

type dir = S2r | R2s

(* Runs a sender/receiver pair to completion. [drop ~dir ~count m] decides
   whether the [count]-th transmission (globally numbered from 1) is lost;
   [duplicate] delivers the message twice. Returns the sender's outcome and
   the delivered payloads. Fails the test on double delivery or deadlock. *)
let run ?(max_steps = 100_000) ?(drop = fun ~dir:_ ~count:_ _ -> false)
    ?(duplicate = fun ~dir:_ ~count:_ _ -> false) (sender : P.Machine.t)
    (receiver : P.Machine.t) =
  let s2r = Queue.create () and r2s = Queue.create () in
  let delivered : (int, string) Hashtbl.t = Hashtbl.create 64 in
  let sender_timer = ref false in
  let outcome = ref None in
  let count = ref 0 in
  let do_actions side actions =
    let enqueue m =
      incr count;
      let dir = match side with `Sender -> S2r | `Receiver -> R2s in
      let queue = match side with `Sender -> s2r | `Receiver -> r2s in
      if not (drop ~dir ~count:!count m) then begin
        Queue.push m queue;
        if duplicate ~dir ~count:!count m then Queue.push m queue
      end
    in
    List.iter
      (fun action ->
        match action with
        | P.Action.Send m -> enqueue m
        | P.Action.Arm_timer _ -> ( match side with `Sender -> sender_timer := true | `Receiver -> ())
        | P.Action.Stop_timer -> ( match side with `Sender -> sender_timer := false | `Receiver -> ())
        | P.Action.Deliver { seq; payload } ->
            if Hashtbl.mem delivered seq then Alcotest.failf "packet %d delivered twice" seq;
            Hashtbl.add delivered seq payload
        | P.Action.Complete o -> outcome := Some o)
      actions
  in
  do_actions `Receiver (receiver.P.Machine.start ());
  do_actions `Sender (sender.P.Machine.start ());
  let steps = ref 0 in
  while !outcome = None do
    incr steps;
    if !steps > max_steps then Alcotest.fail "harness: too many steps";
    if not (Queue.is_empty s2r) then
      do_actions `Receiver (receiver.P.Machine.handle (P.Action.Message (Queue.pop s2r)))
    else if not (Queue.is_empty r2s) then
      do_actions `Sender (sender.P.Machine.handle (P.Action.Message (Queue.pop r2s)))
    else if !sender_timer then do_actions `Sender (sender.P.Machine.handle P.Action.Timeout)
    else Alcotest.fail "harness: deadlock (no messages in flight, no timer armed)"
  done;
  (Option.get !outcome, delivered)

let config ?(total = 8) ?(max_attempts = 50) () =
  P.Config.make ~packet_bytes:32
    ~tuning:(P.Tuning.fixed ~max_attempts ())
    ~total_packets:total ()

let payload_of config = P.Machine.constant_payload config

let check_all_delivered config delivered =
  let total = config.P.Config.total_packets in
  Alcotest.(check int) "all packets delivered" total (Hashtbl.length delivered);
  for seq = 0 to total - 1 do
    match Hashtbl.find_opt delivered seq with
    | None -> Alcotest.failf "packet %d missing" seq
    | Some payload ->
        Alcotest.(check string)
          (Printf.sprintf "payload %d intact" seq)
          (payload_of config seq) payload
  done

let machines ?counters_s ?counters_r suite config =
  let sender = P.Suite.sender suite ?counters:counters_s config ~payload:(payload_of config) in
  let receiver = P.Suite.receiver suite ?counters:counters_r config in
  (sender, receiver)

let all_suites =
  [
    P.Suite.Stop_and_wait;
    P.Suite.Sliding_window { window = max_int };
    P.Suite.Sliding_window { window = 4 };
    P.Suite.Blast P.Blast.Full_retransmit;
    P.Suite.Blast P.Blast.Full_retransmit_nack;
    P.Suite.Blast P.Blast.Go_back_n;
    P.Suite.Blast P.Blast.Selective;
    P.Suite.Multi_blast { strategy = P.Blast.Go_back_n; chunk_packets = 3 };
    P.Suite.Multi_blast { strategy = P.Blast.Selective; chunk_packets = 4 };
  ]

(* ------------------------------------------------------- error-free runs *)

let test_error_free suite () =
  let config = config () in
  let sender, receiver = machines suite config in
  let outcome, delivered = run sender receiver in
  Alcotest.(check bool) "success" true (outcome = P.Action.Success);
  check_all_delivered config delivered;
  Alcotest.(check bool) "sender complete" true (sender.P.Machine.is_complete ());
  Alcotest.(check bool) "receiver complete" true (receiver.P.Machine.is_complete ())

let test_error_free_counts () =
  let config = config ~total:8 () in
  (* Blast: 8 data packets, one ack, no retransmissions. *)
  let cs = P.Counters.create () and cr = P.Counters.create () in
  let sender, receiver =
    machines ~counters_s:cs ~counters_r:cr (P.Suite.Blast P.Blast.Go_back_n) config
  in
  ignore (run sender receiver);
  Alcotest.(check int) "data sent" 8 cs.P.Counters.data_sent;
  Alcotest.(check int) "no retransmissions" 0 cs.P.Counters.retransmitted_data;
  Alcotest.(check int) "one round" 1 cs.P.Counters.rounds;
  Alcotest.(check int) "single ack" 1 cr.P.Counters.acks_sent;
  Alcotest.(check int) "no nacks" 0 cr.P.Counters.nacks_sent;
  (* Stop-and-wait: an ack per packet. *)
  let cs = P.Counters.create () and cr = P.Counters.create () in
  let sender, receiver = machines ~counters_s:cs ~counters_r:cr P.Suite.Stop_and_wait config in
  ignore (run sender receiver);
  Alcotest.(check int) "saw acks" 8 cr.P.Counters.acks_sent;
  Alcotest.(check int) "saw data" 8 cs.P.Counters.data_sent;
  (* Sliding window: also an ack per packet. *)
  let cs = P.Counters.create () and cr = P.Counters.create () in
  let sender, receiver =
    machines ~counters_s:cs ~counters_r:cr (P.Suite.Sliding_window { window = max_int }) config
  in
  ignore (run sender receiver);
  Alcotest.(check int) "sw acks" 8 cr.P.Counters.acks_sent;
  Alcotest.(check int) "sw data" 8 cs.P.Counters.data_sent

(* ------------------------------------------------- scripted single losses *)

let drop_nth_data n =
  let seen = ref 0 in
  fun ~dir ~count:_ (m : Packet.Message.t) ->
    match dir with
    | S2r when m.Packet.Message.kind = Packet.Kind.Data ->
        incr seen;
        !seen = n
    | _ -> false

let test_blast_full_retransmit_drop_mid () =
  let config = config ~total:8 () in
  let cs = P.Counters.create () in
  let sender, receiver =
    machines ~counters_s:cs (P.Suite.Blast P.Blast.Full_retransmit) config
  in
  let outcome, delivered = run ~drop:(drop_nth_data 3) sender receiver in
  Alcotest.(check bool) "success" true (outcome = P.Action.Success);
  check_all_delivered config delivered;
  (* Whole train resent: 8 + 8 transmissions. *)
  Alcotest.(check int) "full retrain" 16 cs.P.Counters.data_sent;
  Alcotest.(check int) "two rounds" 2 cs.P.Counters.rounds;
  Alcotest.(check int) "one timeout" 1 cs.P.Counters.timeouts

let test_blast_nack_drop_mid () =
  let config = config ~total:8 () in
  let cs = P.Counters.create () and cr = P.Counters.create () in
  let sender, receiver =
    machines ~counters_s:cs ~counters_r:cr (P.Suite.Blast P.Blast.Full_retransmit_nack) config
  in
  let outcome, delivered = run ~drop:(drop_nth_data 3) sender receiver in
  Alcotest.(check bool) "success" true (outcome = P.Action.Success);
  check_all_delivered config delivered;
  Alcotest.(check int) "nack instead of timeout" 1 cr.P.Counters.nacks_sent;
  Alcotest.(check int) "no timeout" 0 cs.P.Counters.timeouts;
  Alcotest.(check int) "full retrain" 16 cs.P.Counters.data_sent

let test_blast_gbn_drop_mid () =
  let config = config ~total:8 () in
  let cs = P.Counters.create () in
  let sender, receiver = machines ~counters_s:cs (P.Suite.Blast P.Blast.Go_back_n) config in
  (* Drop packet 3 (index 2): retransmission goes from packet 2 to 7 = 6 packets. *)
  let outcome, delivered = run ~drop:(drop_nth_data 3) sender receiver in
  Alcotest.(check bool) "success" true (outcome = P.Action.Success);
  check_all_delivered config delivered;
  Alcotest.(check int) "partial retrain" (8 + 6) cs.P.Counters.data_sent

let test_blast_selective_drop_mid () =
  let config = config ~total:8 () in
  let cs = P.Counters.create () in
  let sender, receiver = machines ~counters_s:cs (P.Suite.Blast P.Blast.Selective) config in
  (* Drop packet 3 (index 2): retransmission = packet 2 plus the terminator. *)
  let outcome, delivered = run ~drop:(drop_nth_data 3) sender receiver in
  Alcotest.(check bool) "success" true (outcome = P.Action.Success);
  check_all_delivered config delivered;
  Alcotest.(check int) "selective retrain" (8 + 2) cs.P.Counters.data_sent

let test_blast_selective_drop_last () =
  let config = config ~total:8 () in
  let cs = P.Counters.create () in
  let sender, receiver = machines ~counters_s:cs (P.Suite.Blast P.Blast.Selective) config in
  (* Losing the terminator forces a timeout, then just the terminator again. *)
  let outcome, delivered = run ~drop:(drop_nth_data 8) sender receiver in
  Alcotest.(check bool) "success" true (outcome = P.Action.Success);
  check_all_delivered config delivered;
  Alcotest.(check int) "terminator only" (8 + 1) cs.P.Counters.data_sent;
  Alcotest.(check int) "one timeout" 1 cs.P.Counters.timeouts

let test_blast_ack_lost () =
  let config = config ~total:8 () in
  let cs = P.Counters.create () in
  let sender, receiver = machines ~counters_s:cs (P.Suite.Blast P.Blast.Go_back_n) config in
  let drop ~dir ~count:_ (m : Packet.Message.t) =
    dir = R2s && m.Packet.Message.kind = Packet.Kind.Ack && cs.P.Counters.timeouts = 0
  in
  let outcome, delivered = run ~drop sender receiver in
  Alcotest.(check bool) "success" true (outcome = P.Action.Success);
  check_all_delivered config delivered;
  (* Timeout resends the terminator; the complete receiver re-acks. *)
  Alcotest.(check int) "one extra data packet" 9 cs.P.Counters.data_sent

let test_blast_nack_lost () =
  let config = config ~total:8 () in
  let cs = P.Counters.create () in
  let sender, receiver = machines ~counters_s:cs (P.Suite.Blast P.Blast.Go_back_n) config in
  let dropped_nack = ref false in
  let drop ~dir ~count:_ (m : Packet.Message.t) =
    match dir with
    | S2r -> m.Packet.Message.kind = Packet.Kind.Data && m.Packet.Message.seq = 2 && cs.P.Counters.rounds = 1
    | R2s ->
        if m.Packet.Message.kind = Packet.Kind.Nack && not !dropped_nack then begin
          dropped_nack := true;
          true
        end
        else false
  in
  let outcome, delivered = run ~drop sender receiver in
  Alcotest.(check bool) "success" true (outcome = P.Action.Success);
  check_all_delivered config delivered;
  Alcotest.(check bool) "the nack was exercised" true !dropped_nack;
  (* Round 1: 8 packets, packet 2 lost, NACK lost; timeout resends terminator;
     receiver nacks again; resend 2..7. *)
  Alcotest.(check int) "transmissions" (8 + 1 + 6) cs.P.Counters.data_sent

let test_saw_data_loss () =
  let config = config ~total:5 () in
  let cs = P.Counters.create () in
  let sender, receiver = machines ~counters_s:cs P.Suite.Stop_and_wait config in
  let outcome, delivered = run ~drop:(drop_nth_data 3) sender receiver in
  Alcotest.(check bool) "success" true (outcome = P.Action.Success);
  check_all_delivered config delivered;
  Alcotest.(check int) "one retransmission" 1 cs.P.Counters.retransmitted_data

let test_saw_ack_loss_no_double_delivery () =
  let config = config ~total:5 () in
  let dropped = ref false in
  let drop ~dir ~count:_ (m : Packet.Message.t) =
    if dir = R2s && m.Packet.Message.kind = Packet.Kind.Ack && m.Packet.Message.seq = 2
       && not !dropped
    then begin
      dropped := true;
      true
    end
    else false
  in
  let sender, receiver = machines P.Suite.Stop_and_wait (config) in
  let outcome, delivered = run ~drop sender receiver in
  (* The harness itself fails on double delivery. *)
  Alcotest.(check bool) "success" true (outcome = P.Action.Success);
  check_all_delivered config delivered

let test_sw_small_window_loss () =
  let config = config ~total:10 () in
  let cs = P.Counters.create () in
  let sender, receiver =
    machines ~counters_s:cs (P.Suite.Sliding_window { window = 3 }) config
  in
  let outcome, delivered = run ~drop:(drop_nth_data 4) sender receiver in
  Alcotest.(check bool) "success" true (outcome = P.Action.Success);
  check_all_delivered config delivered;
  Alcotest.(check bool) "window retransmitted" true (cs.P.Counters.retransmitted_data > 0)

let test_duplicated_packets_tolerated () =
  List.iter
    (fun suite ->
      let config = config ~total:6 () in
      let sender, receiver = machines suite config in
      let duplicate ~dir:_ ~count:_ _ = true in
      let outcome, delivered = run ~duplicate sender receiver in
      Alcotest.(check bool) (P.Suite.name suite ^ " survives duplication") true
        (outcome = P.Action.Success);
      check_all_delivered config delivered)
    all_suites

let test_give_up () =
  let config = config ~total:4 ~max_attempts:3 () in
  List.iter
    (fun suite ->
      let sender, receiver = machines suite config in
      let drop ~dir ~count:_ _ = dir = S2r in
      let outcome, delivered = run ~drop sender receiver in
      Alcotest.(check bool) (P.Suite.name suite ^ " gives up") true
        (outcome = P.Action.Too_many_attempts);
      Alcotest.(check int) "nothing delivered" 0 (Hashtbl.length delivered))
    [
      P.Suite.Stop_and_wait;
      P.Suite.Sliding_window { window = max_int };
      P.Suite.Blast P.Blast.Full_retransmit;
      P.Suite.Blast P.Blast.Go_back_n;
      P.Suite.Multi_blast { strategy = P.Blast.Go_back_n; chunk_packets = 2 };
    ]

let test_multi_blast_chunk_isolation () =
  (* A loss in the last chunk must not retransmit earlier chunks. *)
  let config = config ~total:12 () in
  let cs = P.Counters.create () in
  let sender, receiver =
    machines ~counters_s:cs
      (P.Suite.Multi_blast { strategy = P.Blast.Full_retransmit_nack; chunk_packets = 4 })
      config
  in
  (* Drop the 10th data transmission = packet index 9, in the third chunk. *)
  let outcome, delivered = run ~drop:(drop_nth_data 10) sender receiver in
  Alcotest.(check bool) "success" true (outcome = P.Action.Success);
  check_all_delivered config delivered;
  (* Only the third chunk (4 packets) is retransmitted. *)
  Alcotest.(check int) "transmissions" (12 + 4) cs.P.Counters.data_sent

let test_multi_blast_counts_error_free () =
  let config = config ~total:10 () in
  let cs = P.Counters.create () and cr = P.Counters.create () in
  let sender, receiver =
    machines ~counters_s:cs ~counters_r:cr
      (P.Suite.Multi_blast { strategy = P.Blast.Go_back_n; chunk_packets = 4 })
      config
  in
  let outcome, delivered = run sender receiver in
  Alcotest.(check bool) "success" true (outcome = P.Action.Success);
  check_all_delivered config delivered;
  Alcotest.(check int) "one ack per chunk" 3 cr.P.Counters.acks_sent;
  Alcotest.(check int) "data once" 10 cs.P.Counters.data_sent

(* ----------------------------------------------------------- adaptive blast *)

let adaptive_config ?(total = 40) ?(tuning = P.Tuning.adaptive ()) () =
  P.Config.make ~packet_bytes:32 ~tuning ~total_packets:total ()

let test_adaptive_error_free_opens_at_budget () =
  let config = adaptive_config ~total:40 () in
  let cs = P.Counters.create () and cr = P.Counters.create () in
  let sender, receiver =
    machines ~counters_s:cs ~counters_r:cr (P.Suite.Blast P.Blast.Selective) config
  in
  let outcome, delivered = run sender receiver in
  Alcotest.(check bool) "success" true (outcome = P.Action.Success);
  check_all_delivered config delivered;
  (* Clean network: the first train is init_train = 8; the receiver's first
     advertisement (max_train = 128 by default) opens the window, so the
     remaining 32 packets travel in one second train. *)
  Alcotest.(check int) "data once" 40 cs.P.Counters.data_sent;
  Alcotest.(check int) "no retransmissions" 0 cs.P.Counters.retransmitted_data;
  Alcotest.(check int) "two solicited rounds" 2 cs.P.Counters.rounds;
  Alcotest.(check int) "one nack" 1 cr.P.Counters.nacks_sent;
  Alcotest.(check int) "final ack" 1 cr.P.Counters.acks_sent

let test_adaptive_capped_ramp () =
  (* With the advertisement pinned to 8, opening cannot skip the ramp:
     40 packets travel in ceil(40/8) = 5 trains of at most 8. *)
  let config = adaptive_config ~total:40 () in
  let cs = P.Counters.create () in
  let sender =
    P.Suite.sender (P.Suite.Blast P.Blast.Selective) ~counters:cs config
      ~payload:(payload_of config)
  in
  let receiver =
    P.Suite.receiver (P.Suite.Blast P.Blast.Selective) ~budget:(fun () -> 8) config
  in
  let outcome, delivered = run sender receiver in
  Alcotest.(check bool) "success" true (outcome = P.Action.Success);
  check_all_delivered config delivered;
  Alcotest.(check int) "data once" 40 cs.P.Counters.data_sent;
  Alcotest.(check int) "five solicited rounds" 5 cs.P.Counters.rounds

let test_adaptive_loss_shrinks_train () =
  let config = adaptive_config ~total:40 () in
  let ctrl = P.Adapt.create (Option.get (P.Tuning.aimd config.P.Config.tuning)) in
  let cs = P.Counters.create () in
  let sender = P.Adapt.sender ~counters:cs ~ctrl config ~payload:(payload_of config) in
  let receiver = P.Adapt.receiver config in
  (* Drop a packet in the middle of the second train. *)
  let outcome, delivered = run ~drop:(drop_nth_data 10) sender receiver in
  Alcotest.(check bool) "success" true (outcome = P.Action.Success);
  check_all_delivered config delivered;
  Alcotest.(check int) "one loss round observed" 1 (P.Adapt.loss_rounds ctrl);
  (* Selective repair: only the lost packet travels twice. *)
  Alcotest.(check int) "selective retrain" 41 cs.P.Counters.data_sent

let test_adaptive_budget_throttles () =
  let config = adaptive_config ~total:24 () in
  let cs = P.Counters.create () in
  let sender = P.Suite.sender (P.Suite.Blast P.Blast.Selective) ~counters:cs config
      ~payload:(payload_of config)
  in
  let receiver =
    P.Suite.receiver (P.Suite.Blast P.Blast.Selective) ~budget:(fun () -> 2) config
  in
  let outcome, delivered = run sender receiver in
  Alcotest.(check bool) "success" true (outcome = P.Action.Success);
  check_all_delivered config delivered;
  (* First train is init_train = 8; every later train is capped at the
     advertised budget of 2: at least (24 - 8) / 2 further rounds. *)
  Alcotest.(check bool) "budget caps the trains"
    true
    (cs.P.Counters.rounds >= 1 + ((24 - 8) / 2));
  Alcotest.(check int) "data once despite throttle" 24 cs.P.Counters.data_sent

let test_adaptive_stale_response_ignored () =
  (* A response whose bitmap predates the current solicit — the echo of a
     duplicated solicit after a spurious timeout, or one delayed past a
     retransmission — must not be scored as the current round's feedback:
     that would count every in-flight packet as lost and re-blast them all.
     Its bitmap still folds in; the real response drives the next train. *)
  let tuning = P.Tuning.adaptive ~init_train:4 ~increase:4 () in
  let config = adaptive_config ~total:8 ~tuning () in
  let ctrl = P.Adapt.create (Option.get (P.Tuning.aimd config.P.Config.tuning)) in
  let cs = P.Counters.create () in
  let sender = P.Adapt.sender ~counters:cs ~ctrl config ~payload:(payload_of config) in
  (match sender.P.Machine.start () with
  | P.Action.Stop_timer :: _ -> ()
  | _ -> Alcotest.fail "a blast must retire the previous round's timer first");
  (* Round 1 is seqs 0-3 with solicit 3. *)
  let nack upto =
    let received = Packet.Bitset.create 8 in
    for i = 0 to upto do
      Packet.Bitset.set received i
    done;
    P.Action.Message
      (Packet.Message.with_budget
         (Packet.Message.nack ~transfer_id:config.P.Config.transfer_id
            ~first_missing:(upto + 1) ~total:8 ~received ())
         8)
  in
  let actions = sender.P.Machine.handle (nack 1) in
  Alcotest.(check bool) "stale response emits nothing" true (actions = []);
  Alcotest.(check int) "stale response starts no round" 1 cs.P.Counters.rounds;
  Alcotest.(check int) "no loss charged for in-flight packets" 0 (P.Adapt.loss_rounds ctrl);
  let actions = sender.P.Machine.handle (nack 3) in
  Alcotest.(check int) "the genuine response blasts round 2" 2 cs.P.Counters.rounds;
  Alcotest.(check bool) "round 2 sends data" true
    (List.exists
       (function
         | P.Action.Send m -> m.Packet.Message.kind = Packet.Kind.Data
         | _ -> false)
       actions);
  Alcotest.(check int) "still no loss charged" 0 (P.Adapt.loss_rounds ctrl)

let test_adaptive_zero_budget_cannot_stall () =
  let config = adaptive_config ~total:12 () in
  let sender =
    P.Suite.sender (P.Suite.Blast P.Blast.Selective) config ~payload:(payload_of config)
  in
  let receiver =
    P.Suite.receiver (P.Suite.Blast P.Blast.Selective) ~budget:(fun () -> 0) config
  in
  let outcome, delivered = run sender receiver in
  (* The min_train floor wins over a zero budget: progress continues. *)
  Alcotest.(check bool) "success" true (outcome = P.Action.Success);
  check_all_delivered config delivered

let gen_aimd =
  let open QCheck.Gen in
  let* min_train = int_range 1 8 in
  let* max_train = int_range min_train (min_train + 120) in
  let* init_train = int_range min_train max_train in
  let* increase = int_range 1 8 in
  let* decrease = float_range 0.1 0.9 in
  return
    (Option.get
       (P.Tuning.aimd
          (P.Tuning.adaptive ~init_train ~min_train ~max_train ~increase ~decrease ())))

let prop_aimd_loss_monotone =
  QCheck.Test.make ~name:"aimd: a loss round never grows the train" ~count:300
    (QCheck.make QCheck.Gen.(pair gen_aimd (int_range 0 40)))
    (fun (params, warmup) ->
      let ctrl = P.Adapt.create params in
      for _ = 1 to warmup do
        P.Adapt.on_round ctrl ~sent:(P.Adapt.train ctrl) ~lost:0
      done;
      let ok = ref true in
      for i = 1 to 20 do
        let before = P.Adapt.train ctrl in
        if i mod 2 = 0 then P.Adapt.on_timeout ctrl
        else P.Adapt.on_round ctrl ~sent:before ~lost:1;
        if P.Adapt.train ctrl > before then ok := false
      done;
      !ok)

let prop_aimd_bounded_by_budget =
  QCheck.Test.make
    ~name:"aimd: train stays within [min_train, min (max_train, budget)]" ~count:300
    (QCheck.make
       QCheck.Gen.(pair gen_aimd (list_size (int_range 1 60) (int_range 0 400))))
    (fun (params, events) ->
      let ctrl = P.Adapt.create params in
      let last_budget = ref None in
      List.for_all
        (fun ev ->
          (match ev mod 4 with
          | 0 -> P.Adapt.on_round ctrl ~sent:(P.Adapt.train ctrl) ~lost:0
          | 1 -> P.Adapt.on_round ctrl ~sent:(P.Adapt.train ctrl) ~lost:(1 + (ev / 4))
          | 2 -> P.Adapt.on_timeout ctrl
          | _ ->
              last_budget := Some (ev / 4);
              P.Adapt.on_budget ctrl ~budget:(ev / 4));
          let cap =
            match !last_budget with
            | Some b when b > 0 -> min params.P.Tuning.max_train b
            | Some _ | None -> params.P.Tuning.max_train
          in
          let train = P.Adapt.train ctrl in
          train >= params.P.Tuning.min_train
          && train <= max params.P.Tuning.min_train cap)
        events)

let prop_aimd_converges_under_constant_loss =
  QCheck.Test.make ~name:"aimd: constant loss converges to min_train" ~count:200
    (QCheck.make gen_aimd)
    (fun params ->
      let ctrl = P.Adapt.create params in
      (* decrease <= 0.9 shrinks any train <= 128 to the floor well inside
         200 rounds; once there it must stay. *)
      for _ = 1 to 200 do
        P.Adapt.on_round ctrl ~sent:(P.Adapt.train ctrl) ~lost:1
      done;
      let at_floor = P.Adapt.train ctrl = params.P.Tuning.min_train in
      P.Adapt.on_round ctrl ~sent:(P.Adapt.train ctrl) ~lost:1;
      at_floor && P.Adapt.train ctrl = params.P.Tuning.min_train)

let prop_adaptive_completes_under_random_loss =
  QCheck.Test.make ~name:"adaptive blast completes under random loss" ~count:60
    QCheck.(pair (int_range 1 40) (pair int (float_range 0.0 0.4)))
    (fun (total, (seed, loss)) ->
      let rng = Stats.Rng.create ~seed:(abs seed) in
      let config =
        P.Config.make ~packet_bytes:16
          ~tuning:(P.Tuning.adaptive ~max_attempts:1000 ())
          ~total_packets:total ()
      in
      let suite = P.Suite.Blast P.Blast.Selective in
      let sender = P.Suite.sender suite config ~payload:(payload_of config) in
      let receiver = P.Suite.receiver suite config in
      let drop ~dir:_ ~count:_ _ = Stats.Rng.bernoulli rng ~p:loss in
      let outcome, delivered = run ~max_steps:2_000_000 ~drop sender receiver in
      outcome = P.Action.Success
      && Hashtbl.length delivered = total
      && List.for_all
           (fun seq -> Hashtbl.find_opt delivered seq = Some (payload_of config seq))
           (List.init total Fun.id))

(* ------------------------------------------------------ random-loss qcheck *)

let prop_completes_under_random_loss suite =
  QCheck.Test.make
    ~name:(Printf.sprintf "%s completes under random loss" (P.Suite.name suite))
    ~count:60
    QCheck.(pair (int_range 1 20) (pair int (float_range 0.0 0.4)))
    (fun (total, (seed, loss)) ->
      let rng = Stats.Rng.create ~seed:(abs seed) in
      let config =
        P.Config.make ~packet_bytes:16
          ~tuning:(P.Tuning.fixed ~max_attempts:1000 ())
          ~total_packets:total ()
      in
      let sender = P.Suite.sender suite config ~payload:(payload_of config) in
      let receiver = P.Suite.receiver suite config in
      let drop ~dir:_ ~count:_ _ = Stats.Rng.bernoulli rng ~p:loss in
      let outcome, delivered = run ~max_steps:2_000_000 ~drop sender receiver in
      outcome = P.Action.Success
      && Hashtbl.length delivered = total
      && List.for_all
           (fun seq -> Hashtbl.find_opt delivered seq = Some (payload_of config seq))
           (List.init total Fun.id))

let prop_counter_invariants suite =
  QCheck.Test.make
    ~name:(Printf.sprintf "%s counter invariants under random loss" (P.Suite.name suite))
    ~count:60
    QCheck.(pair (int_range 1 16) (pair int (float_range 0.0 0.3)))
    (fun (total, (seed, loss)) ->
      let rng = Stats.Rng.create ~seed:(abs seed) in
      let config =
        P.Config.make ~packet_bytes:16
          ~tuning:(P.Tuning.fixed ~max_attempts:1000 ())
          ~total_packets:total ()
      in
      let cs = P.Counters.create () and cr = P.Counters.create () in
      let sender = P.Suite.sender suite ~counters:cs config ~payload:(payload_of config) in
      let receiver = P.Suite.receiver suite ~counters:cr config in
      let drop ~dir:_ ~count:_ _ = Stats.Rng.bernoulli rng ~p:loss in
      let outcome, _ = run ~max_steps:2_000_000 ~drop sender receiver in
      outcome = P.Action.Success
      (* Every distinct packet reached the receiver exactly once. *)
      && cr.P.Counters.delivered = total
      (* First transmissions + retransmissions account for all data sends. *)
      && cs.P.Counters.data_sent = total + cs.P.Counters.retransmitted_data
      (* At least one transmission round happened; rounds grow only with
         repair work. *)
      && cs.P.Counters.rounds >= 1
      && cs.P.Counters.rounds <= 1 + cs.P.Counters.timeouts + cr.P.Counters.nacks_sent
         + cr.P.Counters.acks_sent)

let qcheck tests = List.map QCheck_alcotest.to_alcotest tests

let error_free_cases =
  List.map
    (fun suite ->
      Alcotest.test_case (P.Suite.name suite) `Quick (test_error_free suite))
    all_suites

let () =
  Alcotest.run "protocol"
    [
      ("error-free", error_free_cases);
      ( "counts",
        [
          Alcotest.test_case "error-free counters" `Quick test_error_free_counts;
          Alcotest.test_case "multi-blast error-free counters" `Quick
            test_multi_blast_counts_error_free;
        ] );
      ( "scripted-loss",
        [
          Alcotest.test_case "blast full retransmit, mid loss" `Quick
            test_blast_full_retransmit_drop_mid;
          Alcotest.test_case "blast nack, mid loss" `Quick test_blast_nack_drop_mid;
          Alcotest.test_case "blast go-back-n, mid loss" `Quick test_blast_gbn_drop_mid;
          Alcotest.test_case "blast selective, mid loss" `Quick test_blast_selective_drop_mid;
          Alcotest.test_case "blast selective, terminator loss" `Quick
            test_blast_selective_drop_last;
          Alcotest.test_case "blast ack lost" `Quick test_blast_ack_lost;
          Alcotest.test_case "blast nack lost" `Quick test_blast_nack_lost;
          Alcotest.test_case "saw data loss" `Quick test_saw_data_loss;
          Alcotest.test_case "saw ack loss, exactly-once" `Quick
            test_saw_ack_loss_no_double_delivery;
          Alcotest.test_case "sliding window loss" `Quick test_sw_small_window_loss;
          Alcotest.test_case "duplication tolerated" `Quick test_duplicated_packets_tolerated;
          Alcotest.test_case "give up after max attempts" `Quick test_give_up;
          Alcotest.test_case "multi-blast chunk isolation" `Quick
            test_multi_blast_chunk_isolation;
        ] );
      ( "random-loss",
        qcheck
          (List.map prop_completes_under_random_loss
             [
               P.Suite.Stop_and_wait;
               P.Suite.Sliding_window { window = max_int };
               P.Suite.Sliding_window { window = 2 };
               P.Suite.Blast P.Blast.Full_retransmit;
               P.Suite.Blast P.Blast.Full_retransmit_nack;
               P.Suite.Blast P.Blast.Go_back_n;
               P.Suite.Blast P.Blast.Selective;
               P.Suite.Multi_blast { strategy = P.Blast.Selective; chunk_packets = 5 };
             ]) );
      ( "adaptive",
        Alcotest.test_case "error-free opens at budget" `Quick
             test_adaptive_error_free_opens_at_budget
        :: Alcotest.test_case "capped advertisement forces the ramp" `Quick
             test_adaptive_capped_ramp
        :: Alcotest.test_case "loss shrinks the train" `Quick test_adaptive_loss_shrinks_train
        :: Alcotest.test_case "budget throttles the train" `Quick test_adaptive_budget_throttles
        :: Alcotest.test_case "zero budget cannot stall" `Quick
             test_adaptive_zero_budget_cannot_stall
        :: Alcotest.test_case "stale response is not round feedback" `Quick
             test_adaptive_stale_response_ignored
        :: qcheck
             [
               prop_aimd_loss_monotone;
               prop_aimd_bounded_by_budget;
               prop_aimd_converges_under_constant_loss;
               prop_adaptive_completes_under_random_loss;
             ] );
      ( "invariants",
        qcheck
          (List.map prop_counter_invariants
             [
               P.Suite.Stop_and_wait;
               P.Suite.Blast P.Blast.Full_retransmit;
               P.Suite.Blast P.Blast.Go_back_n;
               P.Suite.Blast P.Blast.Selective;
             ]) );
    ]
