(* Tests for the discrete-event simulation kernel and the process layer. *)

open Eventsim

let span_ms = Time.span_ms
let check_ns = Alcotest.(check int)

(* ----------------------------------------------------------------- Time *)

let test_time_conversions () =
  check_ns "ms roundtrip" 1_500_000 (Time.span_to_ns (span_ms 1.5));
  check_ns "us roundtrip" 10_000 (Time.span_to_ns (Time.span_us 10.0));
  Alcotest.(check (float 1e-9)) "to_ms" 2.5 (Time.span_to_ms (span_ms 2.5));
  check_ns "add" 3_000_000 (Time.to_ns (Time.add (Time.of_ns 1_000_000) (span_ms 2.0)))

let test_time_rounding () =
  (* 0.8192 ms = 819200 ns exactly; 0.0001 us rounds to 0 ns *)
  check_ns "exact" 819_200 (Time.span_to_ns (span_ms 0.8192));
  check_ns "rounds" 0 (Time.span_to_ns (Time.span_us 0.0001))

let test_time_negative_rejected () =
  Alcotest.check_raises "negative span" (Invalid_argument "Time.span: negative duration")
    (fun () -> ignore (span_ms (-1.0)));
  Alcotest.check_raises "negative diff" (Invalid_argument "Time.diff: negative span") (fun () ->
      ignore (Time.diff (Time.of_ns 1) (Time.of_ns 2)));
  Alcotest.check_raises "negative sub" (Invalid_argument "Time.span_sub: negative result")
    (fun () -> ignore (Time.span_sub (Time.span_ns 1) (Time.span_ns 2)))

(* ---------------------------------------------------------- Event_queue *)

let test_queue_orders_by_time () =
  let q = Event_queue.create () in
  Event_queue.push q ~time:(Time.of_ns 30) "c";
  Event_queue.push q ~time:(Time.of_ns 10) "a";
  Event_queue.push q ~time:(Time.of_ns 20) "b";
  let pop () = Option.map snd (Event_queue.pop q) in
  Alcotest.(check (option string)) "first" (Some "a") (pop ());
  Alcotest.(check (option string)) "second" (Some "b") (pop ());
  Alcotest.(check (option string)) "third" (Some "c") (pop ());
  Alcotest.(check (option string)) "empty" None (pop ())

let test_queue_fifo_ties () =
  let q = Event_queue.create () in
  for i = 0 to 9 do
    Event_queue.push q ~time:(Time.of_ns 5) i
  done;
  for i = 0 to 9 do
    match Event_queue.pop q with
    | Some (_, v) -> Alcotest.(check int) "tie order" i v
    | None -> Alcotest.fail "queue drained early"
  done

let prop_queue_sorted =
  QCheck.Test.make ~name:"pop order is nondecreasing in time" ~count:200
    QCheck.(list_of_size Gen.(int_range 0 200) (int_range 0 1_000))
    (fun times ->
      let q = Event_queue.create () in
      List.iter (fun ns -> Event_queue.push q ~time:(Time.of_ns ns) ns) times;
      let rec drain prev =
        match Event_queue.pop q with
        | None -> true
        | Some (t, _) -> Time.to_ns t >= prev && drain (Time.to_ns t)
      in
      drain 0)

(* ------------------------------------------------------------------ Sim *)

let test_sim_runs_in_order () =
  let sim = Sim.create () in
  let log = ref [] in
  let note tag () = log := tag :: !log in
  ignore (Sim.schedule_at sim (Time.of_ns 20) (note "b"));
  ignore (Sim.schedule_at sim (Time.of_ns 10) (note "a"));
  ignore (Sim.schedule_at sim (Time.of_ns 30) (note "c"));
  Sim.run sim;
  Alcotest.(check (list string)) "order" [ "a"; "b"; "c" ] (List.rev !log);
  check_ns "clock at last event" 30 (Time.to_ns (Sim.now sim))

let test_sim_same_instant_fifo () =
  let sim = Sim.create () in
  let log = ref [] in
  for i = 0 to 4 do
    ignore (Sim.schedule_at sim (Time.of_ns 5) (fun () -> log := i :: !log))
  done;
  Sim.run sim;
  Alcotest.(check (list int)) "fifo" [ 0; 1; 2; 3; 4 ] (List.rev !log)

let test_sim_cancel () =
  let sim = Sim.create () in
  let fired = ref false in
  let h = Sim.schedule_at sim (Time.of_ns 10) (fun () -> fired := true) in
  Alcotest.(check bool) "pending before" true (Sim.is_pending h);
  Sim.cancel h;
  Alcotest.(check bool) "pending after" false (Sim.is_pending h);
  Alcotest.(check int) "live count" 0 (Sim.pending sim);
  Sim.run sim;
  Alcotest.(check bool) "not fired" false !fired

let test_sim_schedule_from_callback () =
  let sim = Sim.create () in
  let log = ref [] in
  ignore
    (Sim.schedule_at sim (Time.of_ns 10) (fun () ->
         log := "outer" :: !log;
         ignore (Sim.schedule_after sim (Time.span_ns 5) (fun () -> log := "inner" :: !log))));
  Sim.run sim;
  Alcotest.(check (list string)) "nested" [ "outer"; "inner" ] (List.rev !log);
  check_ns "clock" 15 (Time.to_ns (Sim.now sim))

let test_sim_same_instant_from_callback () =
  let sim = Sim.create () in
  let log = ref [] in
  ignore
    (Sim.schedule_at sim (Time.of_ns 10) (fun () ->
         ignore (Sim.schedule_after sim Time.span_zero (fun () -> log := "zero" :: !log));
         log := "first" :: !log));
  ignore (Sim.schedule_at sim (Time.of_ns 10) (fun () -> log := "second" :: !log));
  Sim.run sim;
  Alcotest.(check (list string)) "zero-delay runs after queued same-instant events"
    [ "first"; "second"; "zero" ] (List.rev !log)

let test_sim_run_until () =
  let sim = Sim.create () in
  let count = ref 0 in
  for i = 1 to 5 do
    ignore (Sim.schedule_at sim (Time.of_ns (i * 10)) (fun () -> incr count))
  done;
  Sim.run ~until:(Time.of_ns 30) sim;
  Alcotest.(check int) "events up to limit" 3 !count;
  check_ns "clock parked at limit" 30 (Time.to_ns (Sim.now sim));
  Sim.run sim;
  Alcotest.(check int) "rest run later" 5 !count

let test_sim_past_rejected () =
  let sim = Sim.create () in
  ignore (Sim.schedule_at sim (Time.of_ns 10) (fun () -> ()));
  Sim.run sim;
  Alcotest.check_raises "past" (Invalid_argument "Sim.schedule_at: time is in the past")
    (fun () -> ignore (Sim.schedule_at sim (Time.of_ns 5) (fun () -> ())))

let test_sim_max_events () =
  let sim = Sim.create () in
  let count = ref 0 in
  for i = 1 to 10 do
    ignore (Sim.schedule_at sim (Time.of_ns i) (fun () -> incr count))
  done;
  Sim.run ~max_events:4 sim;
  Alcotest.(check int) "bounded" 4 !count

(* ---------------------------------------------------------------- Timer *)

let test_timer_fires_once () =
  let sim = Sim.create () in
  let fired = ref 0 in
  let timer = Timer.create sim ~on_fire:(fun () -> incr fired) in
  Timer.arm timer (Time.span_ns 10);
  Sim.run sim;
  Alcotest.(check int) "fired once" 1 !fired;
  Alcotest.(check bool) "idle after fire" false (Timer.is_armed timer)

let test_timer_rearm_replaces () =
  let sim = Sim.create () in
  let fired_at = ref [] in
  let t = Timer.create sim ~on_fire:(fun () -> fired_at := Time.to_ns (Sim.now sim) :: !fired_at) in
  Timer.arm t (Time.span_ns 10);
  Timer.arm t (Time.span_ns 50);
  Alcotest.(check (option int)) "deadline moved" (Some 50) (Option.map Time.to_ns (Timer.deadline t));
  Sim.run sim;
  Alcotest.(check (list int)) "fired at replaced deadline only" [ 50 ] !fired_at

let test_timer_stop () =
  let sim = Sim.create () in
  let fired = ref false in
  let timer = Timer.create sim ~on_fire:(fun () -> fired := true) in
  Timer.arm timer (Time.span_ns 10);
  Timer.stop timer;
  Sim.run sim;
  Alcotest.(check bool) "stopped" false !fired

(* ---------------------------------------------------------------- Trace *)

let test_trace_totals_by_kind () =
  let trace = Trace.create () in
  Trace.record trace ~lane:"cpu" ~kind:"copy" ~start:(Time.of_ns 0) ~stop:(Time.of_ns 10);
  Trace.record trace ~lane:"cpu" ~kind:"copy" ~start:(Time.of_ns 20) ~stop:(Time.of_ns 35);
  Trace.record trace ~lane:"wire" ~kind:"tx" ~start:(Time.of_ns 10) ~stop:(Time.of_ns 20);
  let totals = Trace.total_by_kind trace in
  let find k = Time.span_to_ns (List.assoc k totals) in
  Alcotest.(check int) "copy total" 25 (find "copy");
  Alcotest.(check int) "tx total" 10 (find "tx");
  Alcotest.(check (list string)) "lanes in order" [ "cpu"; "wire" ] (Trace.lanes trace);
  check_ns "end time" 35 (Time.to_ns (Trace.end_time trace))

let test_trace_disabled () =
  let trace = Trace.create () in
  Trace.set_enabled trace false;
  Trace.record trace ~lane:"cpu" ~kind:"copy" ~start:(Time.of_ns 0) ~stop:(Time.of_ns 10);
  Alcotest.(check int) "nothing recorded" 0 (List.length (Trace.spans trace))

(* ----------------------------------------------------------------- Proc *)

let test_proc_sleep_sequence () =
  let sim = Sim.create () in
  let env = Proc.env sim in
  let log = ref [] in
  Proc.spawn env (fun () ->
      Proc.sleep (Time.span_ns 10);
      log := ("a", Time.to_ns (Sim.now sim)) :: !log;
      Proc.sleep (Time.span_ns 5);
      log := ("b", Time.to_ns (Sim.now sim)) :: !log);
  Sim.run sim;
  Alcotest.(check (list (pair string int))) "sequence" [ ("a", 10); ("b", 15) ] (List.rev !log)

let test_proc_interleaving () =
  let sim = Sim.create () in
  let env = Proc.env sim in
  let log = ref [] in
  Proc.spawn env (fun () ->
      Proc.sleep (Time.span_ns 10);
      log := "slow" :: !log);
  Proc.spawn env (fun () ->
      Proc.sleep (Time.span_ns 5);
      log := "fast" :: !log);
  Sim.run sim;
  Alcotest.(check (list string)) "interleaved" [ "fast"; "slow" ] (List.rev !log)

let test_proc_blocking_outside_raises () =
  Alcotest.check_raises "sleep outside process" Proc.Not_in_process (fun () ->
      Proc.sleep (Time.span_ns 1))

let test_waitq_fifo () =
  let sim = Sim.create () in
  let env = Proc.env sim in
  let q = Waitq.create () in
  let log = ref [] in
  for i = 1 to 3 do
    Proc.spawn env (fun () ->
        Waitq.wait q;
        log := i :: !log)
  done;
  Proc.spawn env (fun () ->
      Proc.sleep (Time.span_ns 10);
      Waitq.broadcast q);
  Sim.run sim;
  Alcotest.(check (list int)) "fifo wakeup" [ 1; 2; 3 ] (List.rev !log)

let test_waitq_signal_wakes_one () =
  let sim = Sim.create () in
  let env = Proc.env sim in
  let q = Waitq.create () in
  let woken = ref 0 in
  for _ = 1 to 3 do
    Proc.spawn env (fun () ->
        Waitq.wait q;
        incr woken)
  done;
  Proc.spawn env (fun () ->
      Proc.sleep (Time.span_ns 10);
      Waitq.signal q);
  Sim.run sim;
  Alcotest.(check int) "one woken" 1 !woken;
  Alcotest.(check int) "two still waiting" 2 (Waitq.waiters q)

let test_resource_mutual_exclusion () =
  let sim = Sim.create () in
  let env = Proc.env sim in
  let r = Resource.create ~capacity:1 in
  let log = ref [] in
  let worker tag =
    Proc.spawn env (fun () ->
        Resource.with_resource r (fun () ->
            log := (tag ^ "-in", Time.to_ns (Sim.now sim)) :: !log;
            Proc.sleep (Time.span_ns 10);
            log := (tag ^ "-out", Time.to_ns (Sim.now sim)) :: !log))
  in
  worker "a";
  worker "b";
  Sim.run sim;
  Alcotest.(check (list (pair string int)))
    "serialized"
    [ ("a-in", 0); ("a-out", 10); ("b-in", 10); ("b-out", 20) ]
    (List.rev !log)

let test_resource_busy_span () =
  let sim = Sim.create () in
  let env = Proc.env sim in
  let r = Resource.create ~capacity:1 in
  Proc.spawn env (fun () ->
      Proc.sleep (Time.span_ns 5);
      Resource.with_resource r (fun () -> Proc.sleep (Time.span_ns 10)));
  Sim.run sim;
  Alcotest.(check int) "busy span" 10
    (Time.span_to_ns (Resource.busy_span r ~now:(Sim.now sim)))

let test_resource_over_release () =
  let r = Resource.create ~capacity:1 in
  Alcotest.check_raises "over-release" (Invalid_argument "Resource.release: not held")
    (fun () -> Resource.release r)

let test_resource_capacity_two () =
  let sim = Sim.create () in
  let env = Proc.env sim in
  let r = Resource.create ~capacity:2 in
  let concurrent = ref 0 and peak = ref 0 in
  for _ = 1 to 4 do
    Proc.spawn env (fun () ->
        Resource.with_resource r (fun () ->
            incr concurrent;
            if !concurrent > !peak then peak := !concurrent;
            Proc.sleep (Time.span_ns 10);
            decr concurrent))
  done;
  Sim.run sim;
  Alcotest.(check int) "peak concurrency" 2 !peak

let test_mailbox_blocking_get () =
  let sim = Sim.create () in
  let env = Proc.env sim in
  let mb = Mailbox.create ~capacity:2 in
  let got = ref None in
  Proc.spawn env (fun () -> got := Some (Mailbox.get mb));
  Proc.spawn env (fun () ->
      Proc.sleep (Time.span_ns 10);
      ignore (Mailbox.try_put mb "hello"));
  Sim.run sim;
  Alcotest.(check (option string)) "received" (Some "hello") !got

let test_mailbox_capacity () =
  let mb = Mailbox.create ~capacity:2 in
  Alcotest.(check bool) "first" true (Mailbox.try_put mb 1);
  Alcotest.(check bool) "second" true (Mailbox.try_put mb 2);
  Alcotest.(check bool) "third rejected" false (Mailbox.try_put mb 3);
  Alcotest.(check int) "length" 2 (Mailbox.length mb)

let test_mailbox_peek_holds_slot () =
  let sim = Sim.create () in
  let env = Proc.env sim in
  let mb = Mailbox.create ~capacity:1 in
  ignore (Mailbox.try_put mb "x");
  Proc.spawn env (fun () ->
      let v = Mailbox.peek mb in
      Alcotest.(check string) "peek" "x" v;
      Alcotest.(check bool) "slot still held" false (Mailbox.try_put mb "y");
      Mailbox.remove mb;
      Alcotest.(check bool) "slot free after remove" true (Mailbox.try_put mb "y"));
  Sim.run sim

(* Random-program property: whatever the interleaving of sleeping/acquiring
   processes, a capacity-k resource never over-grants, ends fully released,
   and hands units to waiters in FIFO order. This guards the non-barging
   semaphore (a starvation bug here once silently dropped 95% of
   sliding-window acks). *)
let prop_resource_random_programs =
  QCheck.Test.make ~name:"resource invariants under random process programs" ~count:100
    QCheck.(triple (int_range 1 3) (int_range 1 8) int)
    (fun (capacity, procs, seed) ->
      let rng = Stats.Rng.create ~seed:(abs seed) in
      let sim = Sim.create () in
      let env = Proc.env sim in
      let resource = Resource.create ~capacity in
      let holding = ref 0 and peak = ref 0 and violations = ref 0 in
      let grant_order = ref [] and request_order = ref [] in
      for i = 1 to procs do
        let actions = 1 + Stats.Rng.int rng 4 in
        let initial_delay = Stats.Rng.int rng 50 in
        let think = 1 + Stats.Rng.int rng 20 in
        Proc.spawn env (fun () ->
            Proc.sleep (Time.span_ns initial_delay);
            for a = 1 to actions do
              request_order := (i, a) :: !request_order;
              Resource.acquire resource;
              grant_order := (i, a) :: !grant_order;
              incr holding;
              if !holding > !peak then peak := !holding;
              if !holding > capacity then incr violations;
              Proc.sleep (Time.span_ns think);
              decr holding;
              Resource.release resource
            done)
      done;
      Sim.run sim;
      !violations = 0
      && Resource.available resource = capacity
      && List.length !grant_order = List.length !request_order)

let prop_resource_fifo_when_serialized =
  QCheck.Test.make ~name:"capacity-1 resource grants strictly in request order" ~count:100
    QCheck.(pair (int_range 2 6) int)
    (fun (procs, seed) ->
      let rng = Stats.Rng.create ~seed:(abs seed) in
      let sim = Sim.create () in
      let env = Proc.env sim in
      let resource = Resource.create ~capacity:1 in
      let requests = ref [] and grants = ref [] in
      for i = 1 to procs do
        let delay = Stats.Rng.int rng 5 in
        Proc.spawn env (fun () ->
            Proc.sleep (Time.span_ns delay);
            requests := i :: !requests;
            Resource.acquire resource;
            grants := i :: !grants;
            Proc.sleep (Time.span_ns 100);
            Resource.release resource)
      done;
      Sim.run sim;
      List.rev !grants = List.rev !requests)

let qcheck tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "eventsim"
    [
      ( "time",
        [
          Alcotest.test_case "conversions" `Quick test_time_conversions;
          Alcotest.test_case "rounding" `Quick test_time_rounding;
          Alcotest.test_case "negative rejected" `Quick test_time_negative_rejected;
        ] );
      ( "event_queue",
        Alcotest.test_case "orders by time" `Quick test_queue_orders_by_time
        :: Alcotest.test_case "fifo ties" `Quick test_queue_fifo_ties
        :: qcheck [ prop_queue_sorted ] );
      ( "sim",
        [
          Alcotest.test_case "runs in order" `Quick test_sim_runs_in_order;
          Alcotest.test_case "same instant fifo" `Quick test_sim_same_instant_fifo;
          Alcotest.test_case "cancel" `Quick test_sim_cancel;
          Alcotest.test_case "schedule from callback" `Quick test_sim_schedule_from_callback;
          Alcotest.test_case "same instant from callback" `Quick test_sim_same_instant_from_callback;
          Alcotest.test_case "run until" `Quick test_sim_run_until;
          Alcotest.test_case "past rejected" `Quick test_sim_past_rejected;
          Alcotest.test_case "max events" `Quick test_sim_max_events;
        ] );
      ( "timer",
        [
          Alcotest.test_case "fires once" `Quick test_timer_fires_once;
          Alcotest.test_case "rearm replaces" `Quick test_timer_rearm_replaces;
          Alcotest.test_case "stop" `Quick test_timer_stop;
        ] );
      ( "trace",
        [
          Alcotest.test_case "totals by kind" `Quick test_trace_totals_by_kind;
          Alcotest.test_case "disabled" `Quick test_trace_disabled;
        ] );
      ( "proc",
        [
          Alcotest.test_case "sleep sequence" `Quick test_proc_sleep_sequence;
          Alcotest.test_case "interleaving" `Quick test_proc_interleaving;
          Alcotest.test_case "blocking outside raises" `Quick test_proc_blocking_outside_raises;
          Alcotest.test_case "waitq fifo" `Quick test_waitq_fifo;
          Alcotest.test_case "waitq signal wakes one" `Quick test_waitq_signal_wakes_one;
          Alcotest.test_case "resource mutual exclusion" `Quick test_resource_mutual_exclusion;
          Alcotest.test_case "resource busy span" `Quick test_resource_busy_span;
          Alcotest.test_case "resource over-release" `Quick test_resource_over_release;
          Alcotest.test_case "resource capacity two" `Quick test_resource_capacity_two;
          Alcotest.test_case "mailbox blocking get" `Quick test_mailbox_blocking_get;
          Alcotest.test_case "mailbox capacity" `Quick test_mailbox_capacity;
          Alcotest.test_case "mailbox peek holds slot" `Quick test_mailbox_peek_holds_slot;
        ]
        @ qcheck [ prop_resource_random_programs; prop_resource_fifo_when_serialized ] );
    ]
