(* End-to-end transfers over real UDP loopback sockets, with injected loss.
   The receiver runs on a separate thread; both ends use the same protocol
   machines as the simulator. *)

let random_data rng n = String.init n (fun _ -> Char.chr (Stats.Rng.int rng 256))

let transfer ?lossy_sender ?lossy_receiver ?(packet_bytes = 1024) ?(retransmit_ns = 20_000_000)
    ?tuning ?receiver_tuning ~suite ~data () =
  let receiver_socket, receiver_address = Sockets.Udp.create_socket () in
  let sender_socket, _ = Sockets.Udp.create_socket () in
  let sender_tuning =
    match tuning with
    | Some t -> t
    | None -> Protocol.Tuning.fixed ~retransmit_ns ()
  in
  let receiver_tuning =
    match receiver_tuning with Some t -> t | None -> sender_tuning
  in
  let ctx_of t = Sockets.Io_ctx.make ~tuning:t () in
  let ctx = ctx_of sender_tuning in
  let received = ref None in
  let receiver_error = ref None in
  let thread =
    Thread.create
      (fun () ->
        try
          received :=
            Some
              (Sockets.Peer.serve_one ~ctx:(ctx_of receiver_tuning)
                 ?lossy:lossy_receiver ~socket:receiver_socket ~suite ())
        with exn -> receiver_error := Some exn)
      ()
  in
  let result =
    Fun.protect
      ~finally:(fun () ->
        Thread.join thread;
        Sockets.Udp.close receiver_socket;
        Sockets.Udp.close sender_socket)
      (fun () ->
        Sockets.Peer.send ~ctx ?lossy:lossy_sender ~packet_bytes
          ~socket:sender_socket ~peer:receiver_address ~suite ~data ())
  in
  (match !receiver_error with Some exn -> raise exn | None -> ());
  (result, Option.get !received)

let check_roundtrip ?lossy_sender ?lossy_receiver ?packet_bytes ~suite ~data () =
  let send_result, receive_result =
    transfer ?lossy_sender ?lossy_receiver ?packet_bytes ~suite ~data ()
  in
  Alcotest.(check bool)
    (Protocol.Suite.name suite ^ " completes")
    true
    (send_result.Sockets.Peer.outcome = Protocol.Action.Success);
  Alcotest.(check int)
    (Protocol.Suite.name suite ^ " length")
    (String.length data)
    (String.length receive_result.Sockets.Peer.data);
  Alcotest.(check bool)
    (Protocol.Suite.name suite ^ " bytes intact")
    true
    (String.equal data receive_result.Sockets.Peer.data)

let all_suites =
  [
    Protocol.Suite.Stop_and_wait;
    Protocol.Suite.Sliding_window { window = max_int };
    Protocol.Suite.Blast Protocol.Blast.Full_retransmit;
    Protocol.Suite.Blast Protocol.Blast.Full_retransmit_nack;
    Protocol.Suite.Blast Protocol.Blast.Go_back_n;
    Protocol.Suite.Blast Protocol.Blast.Selective;
    Protocol.Suite.Multi_blast { strategy = Protocol.Blast.Go_back_n; chunk_packets = 8 };
  ]

let test_clean_roundtrips () =
  let rng = Stats.Rng.create ~seed:1 in
  List.iter
    (fun suite ->
      let data = random_data rng 10_000 in
      check_roundtrip ~suite ~data ())
    all_suites

let test_single_packet () =
  check_roundtrip ~suite:(Protocol.Suite.Blast Protocol.Blast.Go_back_n) ~data:"hello, 1985" ()

let test_non_multiple_size () =
  (* The last packet is a partial one. *)
  let rng = Stats.Rng.create ~seed:2 in
  check_roundtrip
    ~suite:(Protocol.Suite.Blast Protocol.Blast.Selective)
    ~data:(random_data rng 2_500) ()

let test_exact_multiple_size () =
  let rng = Stats.Rng.create ~seed:3 in
  check_roundtrip ~suite:(Protocol.Suite.Blast Protocol.Blast.Go_back_n)
    ~data:(random_data rng 4_096) ()

let test_large_transfer () =
  let rng = Stats.Rng.create ~seed:4 in
  check_roundtrip
    ~suite:(Protocol.Suite.Multi_blast { strategy = Protocol.Blast.Selective; chunk_packets = 32 })
    ~data:(random_data rng 262_144) ()

let test_lossy_sender_side () =
  let rng = Stats.Rng.create ~seed:5 in
  List.iter
    (fun suite ->
      let data = random_data rng 20_000 in
      let lossy_sender = Sockets.Lossy.create ~seed:42 ~tx_loss:0.1 ~rx_loss:0.05 in
      check_roundtrip ~lossy_sender ~suite ~data ())
    [
      Protocol.Suite.Blast Protocol.Blast.Go_back_n;
      Protocol.Suite.Blast Protocol.Blast.Selective;
      Protocol.Suite.Stop_and_wait;
    ]

let test_lossy_both_sides_retransmits () =
  let rng = Stats.Rng.create ~seed:6 in
  let data = random_data rng 30_000 in
  let lossy_sender = Sockets.Lossy.create ~seed:7 ~tx_loss:0.15 ~rx_loss:0.0 in
  let lossy_receiver = Sockets.Lossy.create ~seed:8 ~tx_loss:0.15 ~rx_loss:0.0 in
  let send_result, receive_result =
    transfer ~lossy_sender ~lossy_receiver
      ~suite:(Protocol.Suite.Blast Protocol.Blast.Go_back_n) ~data ()
  in
  Alcotest.(check bool) "completes" true
    (send_result.Sockets.Peer.outcome = Protocol.Action.Success);
  Alcotest.(check bool) "data intact" true (String.equal data receive_result.Sockets.Peer.data);
  Alcotest.(check bool) "losses actually injected" true
    (Sockets.Lossy.dropped lossy_sender > 0 || Sockets.Lossy.dropped lossy_receiver > 0);
  Alcotest.(check bool) "retransmissions happened" true
    (send_result.Sockets.Peer.counters.Protocol.Counters.retransmitted_data > 0)

let test_small_packets () =
  let rng = Stats.Rng.create ~seed:9 in
  check_roundtrip ~packet_bytes:64
    ~suite:(Protocol.Suite.Blast Protocol.Blast.Selective)
    ~data:(random_data rng 3_000) ()

let test_empty_data_rejected () =
  let socket, address = Sockets.Udp.create_socket () in
  Fun.protect
    ~finally:(fun () -> Sockets.Udp.close socket)
    (fun () ->
      Alcotest.check_raises "empty" (Invalid_argument "Peer.send: empty data") (fun () ->
          ignore
            (Sockets.Peer.send ~socket ~peer:address
               ~suite:(Protocol.Suite.Blast Protocol.Blast.Go_back_n) ~data:"" ())))

let test_lossy_statistics () =
  let lossy = Sockets.Lossy.create ~seed:1 ~tx_loss:0.5 ~rx_loss:0.0 in
  let passed = ref 0 in
  for _ = 1 to 1000 do
    if Sockets.Lossy.pass_tx lossy then incr passed
  done;
  Alcotest.(check bool) "about half pass" true (!passed > 400 && !passed < 600);
  Alcotest.(check int) "drop count" (1000 - !passed) (Sockets.Lossy.dropped lossy)

let test_geometry_roundtrip () =
  let m = Packet.Message.req_with_geometry ~transfer_id:9 ~packet_bytes:512 ~total_bytes:5_000 in
  Alcotest.(check int) "derived total" 10 m.Packet.Message.total;
  (match Packet.Message.geometry m with
  | Some (pb, tb) ->
      Alcotest.(check int) "packet bytes" 512 pb;
      Alcotest.(check int) "total bytes" 5_000 tb
  | None -> Alcotest.fail "no geometry");
  Alcotest.(check bool) "plain req has none" true
    (Packet.Message.geometry (Packet.Message.req ~transfer_id:9 ~total:3) = None)

let main_suites =
    [
      ( "clean",
        [
          Alcotest.test_case "roundtrip all suites" `Quick test_clean_roundtrips;
          Alcotest.test_case "single packet" `Quick test_single_packet;
          Alcotest.test_case "non-multiple size" `Quick test_non_multiple_size;
          Alcotest.test_case "exact multiple size" `Quick test_exact_multiple_size;
          Alcotest.test_case "large transfer" `Quick test_large_transfer;
          Alcotest.test_case "small packets" `Quick test_small_packets;
          Alcotest.test_case "empty data rejected" `Quick test_empty_data_rejected;
          Alcotest.test_case "geometry roundtrip" `Quick test_geometry_roundtrip;
        ] );
      ( "lossy",
        [
          Alcotest.test_case "sender-side loss" `Quick test_lossy_sender_side;
          Alcotest.test_case "both sides lossy" `Quick test_lossy_both_sides_retransmits;
          Alcotest.test_case "loss statistics" `Quick test_lossy_statistics;
        ] );
    ]

(* Appended: the REQ carries the protocol suite, so a receiver started with a
   different (or no) default still runs the sender's protocol. *)
let test_suite_carried_in_req () =
  let rng = Stats.Rng.create ~seed:33 in
  let data = random_data rng 50_000 in
  let receiver_socket, receiver_address = Sockets.Udp.create_socket () in
  let sender_socket, _ = Sockets.Udp.create_socket () in
  let received = ref None in
  let thread =
    Thread.create
      (fun () ->
        (* Deliberately no ~suite: the receiver must learn it from the REQ. *)
        received := Some (Sockets.Peer.serve_one ~socket:receiver_socket ()))
      ()
  in
  let suite = Protocol.Suite.Multi_blast { strategy = Protocol.Blast.Selective; chunk_packets = 16 } in
  let result = Sockets.Peer.send ~socket:sender_socket ~peer:receiver_address ~suite ~data () in
  Thread.join thread;
  Sockets.Udp.close receiver_socket;
  Sockets.Udp.close sender_socket;
  Alcotest.(check bool) "success" true (result.Sockets.Peer.outcome = Protocol.Action.Success);
  match !received with
  | Some r -> Alcotest.(check bool) "intact" true (String.equal r.Sockets.Peer.data data)
  | None -> Alcotest.fail "nothing received"

let test_suite_codec_roundtrip () =
  List.iter
    (fun suite ->
      match
        Sockets.Suite_codec.decode
          (Sockets.Suite_codec.encode ~data_crc:0xDEADBEEFl ~packet_bytes:512
             ~total_bytes:9999 suite)
      with
      | Some
          {
            Sockets.Suite_codec.packet_bytes = 512;
            total_bytes = 9999;
            suite = Some decoded;
            data_crc = Some 0xDEADBEEFl;
            stripe = None;
          } ->
          Alcotest.(check string) "same suite" (Protocol.Suite.name suite)
            (Protocol.Suite.name decoded)
      | _ -> Alcotest.failf "roundtrip failed for %s" (Protocol.Suite.name suite))
    (Protocol.Suite.Sliding_window { window = max_int }
     :: Protocol.Suite.Sliding_window { window = 7 }
     :: Protocol.Suite.Stop_and_wait
     :: Protocol.Suite.Multi_blast { strategy = Protocol.Blast.Go_back_n; chunk_packets = 64 }
     :: Protocol.Suite.all_blast_strategies);
  (* The 14-byte form (no CRC) also roundtrips. *)
  (match
     Sockets.Suite_codec.decode
       (Sockets.Suite_codec.encode ~packet_bytes:256 ~total_bytes:1000
          Protocol.Suite.Stop_and_wait)
   with
  | Some { Sockets.Suite_codec.packet_bytes = 256; total_bytes = 1000; data_crc = None; _ } ->
      ()
  | _ -> Alcotest.fail "14-byte form failed");
  (* Bare 8-byte geometry decodes with no suite. *)
  let bare = Bytes.create 8 in
  Bytes.set_int32_be bare 0 1024l;
  Bytes.set_int32_be bare 4 4096l;
  (match Sockets.Suite_codec.decode (Bytes.to_string bare) with
  | Some { Sockets.Suite_codec.packet_bytes = 1024; total_bytes = 4096; suite = None; data_crc = None; stripe = None } -> ()
  | _ -> Alcotest.fail "bare geometry rejected");
  Alcotest.(check bool) "garbage rejected" true (Sockets.Suite_codec.decode "xyz" = None)

let test_survives_garbage_datagrams () =
  (* A hostile or confused peer sprays random bytes at the receiver during a
     real transfer: the codec rejects them and the transfer is unaffected. *)
  let rng = Stats.Rng.create ~seed:55 in
  let data = random_data rng 40_000 in
  let receiver_socket, receiver_address = Sockets.Udp.create_socket () in
  let sender_socket, _ = Sockets.Udp.create_socket () in
  let noise_socket, _ = Sockets.Udp.create_socket () in
  let received = ref None in
  let receiver_thread =
    Thread.create
      (fun () -> received := Some (Sockets.Peer.serve_one ~socket:receiver_socket ()))
      ()
  in
  let stop_noise = ref false in
  let noise_thread =
    Thread.create
      (fun () ->
        let noise_rng = Stats.Rng.create ~seed:56 in
        while not !stop_noise do
          let len = 1 + Stats.Rng.int noise_rng 600 in
          let junk = Bytes.init len (fun _ -> Char.chr (Stats.Rng.int noise_rng 256)) in
          (try
             ignore (Unix.sendto noise_socket junk 0 len [] receiver_address)
           with Unix.Unix_error _ -> ());
          Thread.yield ()
        done)
      ()
  in
  let result =
    Sockets.Peer.send ~socket:sender_socket ~peer:receiver_address
      ~suite:(Protocol.Suite.Blast Protocol.Blast.Go_back_n) ~data ()
  in
  stop_noise := true;
  Thread.join noise_thread;
  Thread.join receiver_thread;
  Sockets.Udp.close receiver_socket;
  Sockets.Udp.close sender_socket;
  Sockets.Udp.close noise_socket;
  Alcotest.(check bool) "completes despite noise" true
    (result.Sockets.Peer.outcome = Protocol.Action.Success);
  match !received with
  | Some r ->
      Alcotest.(check bool) "data intact" true (String.equal r.Sockets.Peer.data data);
      Alcotest.(check bool) "integrity verified" true
        (r.Sockets.Peer.integrity = Sockets.Peer.Verified)
  | None -> Alcotest.fail "nothing received"

let test_paced_send_roundtrip () =
  let rng = Stats.Rng.create ~seed:57 in
  let data = random_data rng 60_000 in
  let receiver_socket, receiver_address = Sockets.Udp.create_socket () in
  let sender_socket, _ = Sockets.Udp.create_socket () in
  let received = ref None in
  let thread =
    Thread.create
      (fun () -> received := Some (Sockets.Peer.serve_one ~socket:receiver_socket ()))
      ()
  in
  let result =
    Sockets.Peer.send
      ~ctx:
        (Sockets.Io_ctx.make
           ~tuning:
             (Protocol.Tuning.fixed ~pacing:(Protocol.Tuning.Fixed_gap 20_000) ())
           ())
      ~socket:sender_socket ~peer:receiver_address
      ~suite:(Protocol.Suite.Blast Protocol.Blast.Go_back_n) ~data ()
  in
  Thread.join thread;
  Sockets.Udp.close receiver_socket;
  Sockets.Udp.close sender_socket;
  Alcotest.(check bool) "success" true (result.Sockets.Peer.outcome = Protocol.Action.Success);
  (match !received with
  | Some r -> Alcotest.(check bool) "intact" true (String.equal r.Sockets.Peer.data data)
  | None -> Alcotest.fail "nothing received");
  (* Pacing slows the blast to at least packets x gap. *)
  Alcotest.(check bool) "pacing actually slows the train" true
    (result.Sockets.Peer.elapsed_ns >= 59 * 20_000)

(* ------------------------------------------------------- adaptive trains *)

let test_adaptive_roundtrip () =
  let rng = Stats.Rng.create ~seed:71 in
  let data = random_data rng 120_000 in
  let tuning = Protocol.Tuning.adaptive ~retransmit_ns:20_000_000 () in
  let send_result, receive_result =
    transfer ~tuning ~suite:(Protocol.Suite.Blast Protocol.Blast.Selective) ~data ()
  in
  Alcotest.(check bool) "success" true
    (send_result.Sockets.Peer.outcome = Protocol.Action.Success);
  Alcotest.(check bool) "handshake settled on adaptive" true
    send_result.Sockets.Peer.adaptive;
  Alcotest.(check bool) "data intact" true
    (String.equal data receive_result.Sockets.Peer.data)

let test_adaptive_lossy_roundtrip () =
  let rng = Stats.Rng.create ~seed:72 in
  let data = random_data rng 80_000 in
  let tuning =
    Protocol.Tuning.adaptive ~retransmit_ns:20_000_000
      ~pacing:Protocol.Tuning.Rtt_spread ()
  in
  let lossy_sender = Sockets.Lossy.create ~seed:73 ~tx_loss:0.08 ~rx_loss:0.0 in
  let send_result, receive_result =
    transfer ~tuning ~lossy_sender
      ~suite:(Protocol.Suite.Blast Protocol.Blast.Selective) ~data ()
  in
  Alcotest.(check bool) "success under loss" true
    (send_result.Sockets.Peer.outcome = Protocol.Action.Success);
  Alcotest.(check bool) "adaptive" true send_result.Sockets.Peer.adaptive;
  Alcotest.(check bool) "data intact" true
    (String.equal data receive_result.Sockets.Peer.data);
  Alcotest.(check bool) "losses actually injected" true
    (Sockets.Lossy.dropped lossy_sender > 0)

let test_adaptive_honored_by_fixed_receiver () =
  (* A receiver pinned to fixed tuning still obliges a budget-stamped REQ:
     the wire wins, and the flow runs adaptive with budget-stamped ACKs. *)
  let rng = Stats.Rng.create ~seed:74 in
  let data = random_data rng 60_000 in
  let send_result, receive_result =
    transfer
      ~tuning:(Protocol.Tuning.adaptive ~retransmit_ns:20_000_000 ())
      ~receiver_tuning:(Protocol.Tuning.fixed ~retransmit_ns:20_000_000 ())
      ~suite:(Protocol.Suite.Blast Protocol.Blast.Selective) ~data ()
  in
  Alcotest.(check bool) "success" true
    (send_result.Sockets.Peer.outcome = Protocol.Action.Success);
  Alcotest.(check bool) "receiver obliges the adaptive REQ" true
    send_result.Sockets.Peer.adaptive;
  Alcotest.(check bool) "data intact" true
    (String.equal data receive_result.Sockets.Peer.data)

(* A v1-only peer, emulated faithfully: every wire-v2 (budget-stamped)
   datagram is dropped on the floor — an old decoder cannot parse the frame
   — and the rest drive a fixed-tuned flow by hand. The adaptive sender's
   handshake must fall back to a v1 REQ, read the bare ACK, and negotiate
   the transfer down to fixed trains. *)
let old_v1_receiver socket =
  let clock = (Sockets.Io_ctx.default ()).Sockets.Io_ctx.clock in
  Unix.setsockopt_float socket Unix.SO_RCVTIMEO 0.05;
  let buf = Bytes.create 65_536 in
  let flow = ref None in
  let deadline = clock () + 10_000_000_000 in
  let result = ref None in
  while !result = None && clock () < deadline do
    let incoming =
      try
        let len, from = Unix.recvfrom socket buf 0 (Bytes.length buf) [] in
        Some (Bytes.sub buf 0 len, from)
      with Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> None
    in
    let actions, from =
      match incoming with
      | None -> (
          match !flow with
          | Some (f, from) -> (Sockets.Flow.on_tick f ~now:(clock ()), Some from)
          | None -> ([], None))
      | Some (datagram, from) -> (
          match Packet.Codec.decode datagram with
          | Error _ -> ([], None)
          | Ok m when Packet.Message.budget m <> None ->
              ([], None) (* v2 frame: undecodable for a v1-only binary *)
          | Ok m -> (
              match !flow with
              | Some (f, _) -> (Sockets.Flow.on_message f ~now:(clock ()) m, Some from)
              | None -> (
                  let counters = Protocol.Counters.create () in
                  match
                    Sockets.Flow.create
                      ~tuning:(Protocol.Tuning.fixed ~retransmit_ns:20_000_000 ())
                      ~probe:(Obs.Probe.create ~lane:"v1-peer" ~counters ())
                      ~counters ~now:(clock ()) m
                  with
                  | Ok (f, actions) ->
                      flow := Some (f, from);
                      (actions, Some from)
                  | Error _ -> ([], None))))
    in
    (match from with
    | Some from ->
        List.iter
          (fun (Sockets.Flow.Transmit m) ->
            let encoded = Packet.Codec.encode m in
            ignore (Unix.sendto socket encoded 0 (Bytes.length encoded) [] from))
          actions
    | None -> ());
    match !flow with
    | Some (f, _) -> (
        match Sockets.Flow.status f with
        | `Done completion -> result := Some completion
        | `Running | `Lingering -> ())
    | None -> ()
  done;
  !result

let test_adaptive_negotiates_down_with_v1_peer () =
  let rng = Stats.Rng.create ~seed:76 in
  let data = random_data rng 40_000 in
  let receiver_socket, receiver_address = Sockets.Udp.create_socket () in
  let sender_socket, _ = Sockets.Udp.create_socket () in
  let received = ref None in
  let thread = Thread.create (fun () -> received := old_v1_receiver receiver_socket) () in
  let result =
    Fun.protect
      ~finally:(fun () ->
        Thread.join thread;
        Sockets.Udp.close receiver_socket;
        Sockets.Udp.close sender_socket)
      (fun () ->
        Sockets.Peer.send
          ~ctx:
            (Sockets.Io_ctx.make
               ~tuning:(Protocol.Tuning.adaptive ~retransmit_ns:20_000_000 ())
               ())
          ~socket:sender_socket ~peer:receiver_address
          ~suite:(Protocol.Suite.Blast Protocol.Blast.Selective) ~data ())
  in
  Alcotest.(check bool) "success against a v1-only peer" true
    (result.Sockets.Peer.outcome = Protocol.Action.Success);
  Alcotest.(check bool) "negotiated down to fixed trains" false
    result.Sockets.Peer.adaptive;
  match !received with
  | Some completion ->
      Alcotest.(check bool) "data intact at the v1 peer" true
        (String.equal data completion.Sockets.Flow.data)
  | None -> Alcotest.fail "the v1 peer never completed"

let test_fixed_sender_against_adaptive_receiver () =
  (* The other direction: a fixed-tuned (old-style) sender never stamps a
     budget on its REQ, and the adaptive-capable receiver serves it plain
     fixed blast. *)
  let rng = Stats.Rng.create ~seed:75 in
  let data = random_data rng 60_000 in
  let send_result, receive_result =
    transfer
      ~tuning:(Protocol.Tuning.fixed ~retransmit_ns:20_000_000 ())
      ~receiver_tuning:(Protocol.Tuning.adaptive ~retransmit_ns:20_000_000 ())
      ~suite:(Protocol.Suite.Blast Protocol.Blast.Selective) ~data ()
  in
  Alcotest.(check bool) "success" true
    (send_result.Sockets.Peer.outcome = Protocol.Action.Success);
  Alcotest.(check bool) "stays fixed" false send_result.Sockets.Peer.adaptive;
  Alcotest.(check bool) "data intact" true
    (String.equal data receive_result.Sockets.Peer.data)

let test_tcp_baseline_roundtrip () =
  let rng = Stats.Rng.create ~seed:88 in
  let data = random_data rng 200_000 in
  let listener, address = Sockets.Tcp_baseline.listen () in
  let received = ref "" in
  let thread =
    Thread.create (fun () -> received := Sockets.Tcp_baseline.serve_one ~socket:listener ()) ()
  in
  let elapsed_ns = Sockets.Tcp_baseline.send ~peer:address ~data () in
  Thread.join thread;
  (try Unix.close listener with Unix.Unix_error _ -> ());
  Alcotest.(check bool) "data intact" true (String.equal !received data);
  Alcotest.(check bool) "elapsed positive" true (elapsed_ns > 0)

let () =
  Alcotest.run "sockets"
    (main_suites
    @ [
        ( "suite-in-req",
          [
            Alcotest.test_case "receiver learns suite from REQ" `Quick test_suite_carried_in_req;
            Alcotest.test_case "suite codec roundtrip" `Quick test_suite_codec_roundtrip;
          ] );
        ( "tcp-baseline",
          [ Alcotest.test_case "roundtrip" `Quick test_tcp_baseline_roundtrip ] );
        ( "pacing",
          [ Alcotest.test_case "paced send roundtrip" `Quick test_paced_send_roundtrip ] );
        ( "adaptive",
          [
            Alcotest.test_case "adaptive roundtrip" `Quick test_adaptive_roundtrip;
            Alcotest.test_case "adaptive under loss with rtt pacing" `Quick
              test_adaptive_lossy_roundtrip;
            Alcotest.test_case "fixed-tuned receiver obliges adaptive REQ" `Quick
              test_adaptive_honored_by_fixed_receiver;
            Alcotest.test_case "negotiates down with a v1-only peer" `Quick
              test_adaptive_negotiates_down_with_v1_peer;
            Alcotest.test_case "fixed sender, adaptive receiver" `Quick
              test_fixed_sender_against_adaptive_receiver;
          ] );
        ( "robustness",
          [
            Alcotest.test_case "survives garbage datagrams" `Quick
              test_survives_garbage_datagrams;
          ] );
      ])
