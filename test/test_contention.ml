(* Tests for the CSMA/CD medium arbiter and the background-load machinery:
   the paper's "low load" caveat made executable. *)

open Eventsim

let params = Netmodel.Params.standalone

let csma ?(seed = 1) ?max_backoff_exponent ?attempt_limit () =
  Netmodel.Arbiter.csma_cd
    ~rng:(Stats.Rng.create ~seed)
    ~propagation:params.Netmodel.Params.propagation ?max_backoff_exponent ?attempt_limit ()

let run_transfer ?arbiter ?background suite packets =
  Simnet.Driver.run ?arbiter ?background ~suite
    ~config:(Protocol.Config.make ~total_packets:packets ())
    ()

let blast = Protocol.Suite.Blast Protocol.Blast.Go_back_n

let test_csma_uncontended_matches_fifo () =
  (* With a single transfer in flight there are no collisions, and elapsed
     time equals the FIFO (idle network) result exactly. *)
  let fifo = run_transfer blast 16 in
  let contended = run_transfer ~arbiter:(csma ()) blast 16 in
  Alcotest.(check int) "same elapsed"
    (Time.span_to_ns fifo.Simnet.Driver.elapsed)
    (Time.span_to_ns contended.Simnet.Driver.elapsed)

let test_csma_station_defers () =
  (* Two stations, B starts while A's frame is mid-air: B senses busy and
     defers; nobody collides. *)
  let sim = Sim.create () in
  let arbiter = csma () in
  let wire = Netmodel.Wire.create sim ~params ~arbiter () in
  let a = Netmodel.Station.create wire ~name:"a" in
  let b = Netmodel.Station.create wire ~name:"b" in
  let sink = Netmodel.Station.create wire ~name:"sink" in
  let env = Proc.env sim in
  Proc.spawn env (fun () ->
      Netmodel.Station.send a ~dst:(Netmodel.Station.address sink) ~bytes:1024 ());
  Proc.spawn env (fun () ->
      (* A's copy takes C = 1.35 ms, then its transmission runs 0.82 ms; B's
         copy also takes C, so B reaches the medium while... both reach it at
         the same time! Stagger B by sleeping first. *)
      Proc.sleep (Time.span_ms 0.1);
      Netmodel.Station.send b ~dst:(Netmodel.Station.address sink) ~bytes:1024 ());
  Proc.spawn env (fun () ->
      for _ = 1 to 2 do
        ignore (Netmodel.Station.recv sink)
      done);
  Sim.run sim;
  let stats = Netmodel.Wire.medium_stats wire in
  Alcotest.(check int) "no collisions" 0 stats.Netmodel.Arbiter.collisions;
  Alcotest.(check bool) "deferred" true (stats.Netmodel.Arbiter.deferrals > 0);
  Alcotest.(check int) "both delivered" 2 (Netmodel.Wire.counters wire).Netmodel.Wire.delivered

let test_csma_simultaneous_start_collides () =
  (* Two stations hit the idle medium at the same instant: they collide, back
     off, and both frames eventually get through. *)
  let sim = Sim.create () in
  let arbiter = csma ~seed:5 () in
  let wire = Netmodel.Wire.create sim ~params ~arbiter () in
  let a = Netmodel.Station.create wire ~name:"a" in
  let b = Netmodel.Station.create wire ~name:"b" in
  let sink = Netmodel.Station.create wire ~name:"sink" in
  let env = Proc.env sim in
  let send station =
    Proc.spawn env (fun () ->
        Netmodel.Station.send station ~dst:(Netmodel.Station.address sink) ~bytes:1024 ())
  in
  send a;
  send b;
  Proc.spawn env (fun () ->
      for _ = 1 to 2 do
        ignore (Netmodel.Station.recv sink)
      done);
  Sim.run sim;
  let stats = Netmodel.Wire.medium_stats wire in
  Alcotest.(check bool) "collided" true (stats.Netmodel.Arbiter.collisions >= 2);
  Alcotest.(check int) "both delivered eventually" 2
    (Netmodel.Wire.counters wire).Netmodel.Wire.delivered;
  Alcotest.(check int) "nothing dropped" 0
    (Netmodel.Wire.counters wire).Netmodel.Wire.lost_collision

let test_csma_excessive_collisions_drop () =
  (* Zero backoff keeps the two stations in lockstep: every retry collides
     and after the attempt limit both frames are abandoned. *)
  let sim = Sim.create () in
  let arbiter = csma ~max_backoff_exponent:0 ~attempt_limit:4 () in
  let wire = Netmodel.Wire.create sim ~params ~arbiter () in
  let a = Netmodel.Station.create wire ~name:"a" in
  let b = Netmodel.Station.create wire ~name:"b" in
  let sink = Netmodel.Station.create wire ~name:"sink" in
  let env = Proc.env sim in
  let send station =
    Proc.spawn env (fun () ->
        Netmodel.Station.send station ~dst:(Netmodel.Station.address sink) ~bytes:1024 ())
  in
  send a;
  send b;
  Sim.run sim;
  let stats = Netmodel.Wire.medium_stats wire in
  Alcotest.(check int) "both dropped" 2 stats.Netmodel.Arbiter.excessive_collision_drops;
  Alcotest.(check int) "collisions = 2 x attempts" 8 stats.Netmodel.Arbiter.collisions;
  Alcotest.(check int) "nothing delivered" 0
    (Netmodel.Wire.counters wire).Netmodel.Wire.delivered;
  Alcotest.(check int) "wire counter agrees" 2
    (Netmodel.Wire.counters wire).Netmodel.Wire.lost_collision

let test_background_load_slows_transfer () =
  let rng = Stats.Rng.create ~seed:31 in
  let clean = run_transfer ~arbiter:(csma ~seed:32 ()) blast 64 in
  let loaded =
    run_transfer
      ~arbiter:(csma ~seed:32 ())
      ~background:(fun wire ->
        ignore (Simnet.Load.attach ~rng ~offered_load:0.5 wire))
      blast 64
  in
  Alcotest.(check bool) "loaded slower" true
    (Simnet.Driver.elapsed_ms loaded > Simnet.Driver.elapsed_ms clean);
  Alcotest.(check bool) "still completes" true
    (loaded.Simnet.Driver.outcome = Protocol.Action.Success)

let test_background_load_rate () =
  (* The generator's offered load should be close to the request. *)
  let sim = Sim.create () in
  let wire = Netmodel.Wire.create sim ~params () in
  let rng = Stats.Rng.create ~seed:33 in
  let flow = Simnet.Load.attach ~rng ~offered_load:0.3 wire in
  Sim.run ~until:(Time.of_ns 1_000_000_000) sim;
  (* 0.3 of 10 Mb/s for 1 s = 375 KB = ~366 frames of 1 KiB. *)
  let sent = float_of_int (Simnet.Load.frames_sent flow) in
  Alcotest.(check bool)
    (Printf.sprintf "rate close to request (sent %.0f)" sent)
    true
    (sent > 280.0 && sent < 450.0)

let test_load_rejects_bad_fraction () =
  let sim = Sim.create () in
  let wire = Netmodel.Wire.create sim ~params () in
  let rng = Stats.Rng.create ~seed:34 in
  Alcotest.check_raises "zero load" (Invalid_argument "Load.attach: offered_load outside (0,1)")
    (fun () -> ignore (Simnet.Load.attach ~rng ~offered_load:0.0 wire))

let () =
  Alcotest.run "contention"
    [
      ( "csma-cd",
        [
          Alcotest.test_case "uncontended matches fifo" `Quick test_csma_uncontended_matches_fifo;
          Alcotest.test_case "station defers" `Quick test_csma_station_defers;
          Alcotest.test_case "simultaneous start collides" `Quick
            test_csma_simultaneous_start_collides;
          Alcotest.test_case "excessive collisions drop" `Quick
            test_csma_excessive_collisions_drop;
        ] );
      ( "load",
        [
          Alcotest.test_case "background load slows transfer" `Quick
            test_background_load_slows_transfer;
          Alcotest.test_case "background load rate" `Quick test_background_load_rate;
          Alcotest.test_case "rejects bad fraction" `Quick test_load_rejects_bad_fraction;
        ] );
    ]
