(* Tests for the V-kernel IPC layer: MoveTo/MoveFrom semantics, access
   rights, demultiplexing of concurrent transfers, behaviour under loss. *)

open Eventsim

let setup ?(params = Netmodel.Params.vkernel) ?network_error ?suite () =
  let sim = Sim.create () in
  let wire = Netmodel.Wire.create sim ~params ?network_error () in
  let a = Vkernel.Kernel.create ?suite wire ~name:"alpha" in
  let b = Vkernel.Kernel.create ?suite wire ~name:"beta" in
  (sim, a, b)

let pattern n = String.init n (fun i -> Char.chr (((i * 7) + (i / 251)) land 0xFF))

let run_in_proc sim f =
  let result = ref None in
  Proc.spawn (Proc.env sim) (fun () -> result := Some (f ()));
  Sim.run sim;
  match !result with
  | Some r -> r
  | None -> Alcotest.fail "simulation drained before the operation finished"

let check_ok = function
  | Ok v -> v
  | Error e -> Alcotest.failf "unexpected error: %a" Vkernel.Kernel.pp_error e

let test_move_to_basic () =
  let sim, a, b = setup () in
  let data = pattern 10_000 in
  let buffer = Bytes.create 16_384 in
  let segment = Vkernel.Kernel.register_segment b ~rights:Vkernel.Kernel.Write_only buffer in
  let () =
    run_in_proc sim (fun () ->
        check_ok
          (Vkernel.Kernel.move_to a ~dst:(Vkernel.Kernel.address b) ~segment ~offset:100 ~data))
  in
  Alcotest.(check string) "bytes landed at offset" data (Bytes.sub_string buffer 100 10_000);
  Alcotest.(check char) "byte before untouched" '\000' (Bytes.get buffer 99);
  Alcotest.(check char) "byte after untouched" '\000' (Bytes.get buffer (100 + 10_000))

let test_move_from_basic () =
  let sim, a, b = setup () in
  let data = pattern 20_000 in
  let buffer = Bytes.of_string data in
  let segment = Vkernel.Kernel.register_segment b ~rights:Vkernel.Kernel.Read_only buffer in
  let fetched =
    run_in_proc sim (fun () ->
        check_ok
          (Vkernel.Kernel.move_from a ~dst:(Vkernel.Kernel.address b) ~segment ~offset:5_000
             ~len:10_000))
  in
  Alcotest.(check string) "fetched slice" (String.sub data 5_000 10_000) fetched

let test_rights_enforced () =
  let sim, a, b = setup () in
  let buffer = Bytes.create 4_096 in
  let read_only = Vkernel.Kernel.register_segment b ~rights:Vkernel.Kernel.Read_only buffer in
  let write_only = Vkernel.Kernel.register_segment b ~rights:Vkernel.Kernel.Write_only buffer in
  let to_read_only, from_write_only, unknown =
    run_in_proc sim (fun () ->
        let dst = Vkernel.Kernel.address b in
        let r1 =
          Vkernel.Kernel.move_to a ~dst ~segment:read_only ~offset:0 ~data:(pattern 100)
        in
        let r2 = Vkernel.Kernel.move_from a ~dst ~segment:write_only ~offset:0 ~len:100 in
        let r3 = Vkernel.Kernel.move_from a ~dst ~segment:999 ~offset:0 ~len:100 in
        (r1, r2, r3))
  in
  Alcotest.(check bool) "write into read-only denied" true
    (to_read_only = Error Vkernel.Kernel.Access_denied);
  Alcotest.(check bool) "read from write-only denied" true
    (from_write_only = Error Vkernel.Kernel.Access_denied);
  Alcotest.(check bool) "unknown segment" true (unknown = Error Vkernel.Kernel.Unknown_segment)

let test_bounds_enforced () =
  let sim, a, b = setup () in
  let buffer = Bytes.create 1_000 in
  let segment = Vkernel.Kernel.register_segment b ~rights:Vkernel.Kernel.Read_write buffer in
  let result =
    run_in_proc sim (fun () ->
        Vkernel.Kernel.move_to a ~dst:(Vkernel.Kernel.address b) ~segment ~offset:500
          ~data:(pattern 501))
  in
  Alcotest.(check bool) "overflow rejected" true (result = Error Vkernel.Kernel.Out_of_bounds)

let test_move_to_under_loss () =
  let rng = Stats.Rng.create ~seed:21 in
  let network_error = Netmodel.Error_model.iid rng ~loss:0.03 in
  let sim, a, b = setup ~network_error () in
  let data = pattern 30_000 in
  let buffer = Bytes.create 30_000 in
  let segment = Vkernel.Kernel.register_segment b ~rights:Vkernel.Kernel.Read_write buffer in
  let () =
    run_in_proc sim (fun () ->
        check_ok
          (Vkernel.Kernel.move_to a ~dst:(Vkernel.Kernel.address b) ~segment ~offset:0 ~data))
  in
  Alcotest.(check string) "intact under loss" data (Bytes.to_string buffer)

let test_move_from_under_loss () =
  let rng = Stats.Rng.create ~seed:22 in
  let network_error = Netmodel.Error_model.iid rng ~loss:0.03 in
  let sim, a, b = setup ~network_error () in
  let data = pattern 25_000 in
  let segment =
    Vkernel.Kernel.register_segment b ~rights:Vkernel.Kernel.Read_only (Bytes.of_string data)
  in
  let fetched =
    run_in_proc sim (fun () ->
        check_ok
          (Vkernel.Kernel.move_from a ~dst:(Vkernel.Kernel.address b) ~segment ~offset:0
             ~len:25_000))
  in
  Alcotest.(check string) "intact under loss" data fetched

let test_concurrent_transfers_demultiplexed () =
  (* Two kernels move data to a third at the same time; transfer ids keep the
     trains apart. *)
  let sim = Sim.create () in
  let wire = Netmodel.Wire.create sim ~params:Netmodel.Params.vkernel () in
  let a = Vkernel.Kernel.create wire ~name:"a" in
  let b = Vkernel.Kernel.create wire ~name:"b" in
  let c = Vkernel.Kernel.create wire ~name:"c" in
  let buf_a = Bytes.create 8_192 and buf_b = Bytes.create 8_192 in
  let seg_a = Vkernel.Kernel.register_segment c ~rights:Vkernel.Kernel.Write_only buf_a in
  let seg_b = Vkernel.Kernel.register_segment c ~rights:Vkernel.Kernel.Write_only buf_b in
  let data_a = pattern 8_000 in
  let data_b = String.init 8_000 (fun i -> Char.chr ((i * 13) land 0xFF)) in
  let done_a = ref false and done_b = ref false in
  Proc.spawn (Proc.env sim) (fun () ->
      (match
         Vkernel.Kernel.move_to a ~dst:(Vkernel.Kernel.address c) ~segment:seg_a ~offset:0
           ~data:data_a
       with
      | Ok () -> done_a := true
      | Error e -> Alcotest.failf "a: %a" Vkernel.Kernel.pp_error e));
  Proc.spawn (Proc.env sim) (fun () ->
      (match
         Vkernel.Kernel.move_to b ~dst:(Vkernel.Kernel.address c) ~segment:seg_b ~offset:0
           ~data:data_b
       with
      | Ok () -> done_b := true
      | Error e -> Alcotest.failf "b: %a" Vkernel.Kernel.pp_error e));
  Sim.run sim;
  Alcotest.(check bool) "both completed" true (!done_a && !done_b);
  Alcotest.(check string) "train a intact" data_a (Bytes.sub_string buf_a 0 8_000);
  Alcotest.(check string) "train b intact" data_b (Bytes.sub_string buf_b 0 8_000)

let test_sequential_transfers_reuse_kernel () =
  let sim, a, b = setup () in
  let buffer = Bytes.create 4_096 in
  let segment = Vkernel.Kernel.register_segment b ~rights:Vkernel.Kernel.Read_write buffer in
  let () =
    run_in_proc sim (fun () ->
        let dst = Vkernel.Kernel.address b in
        check_ok (Vkernel.Kernel.move_to a ~dst ~segment ~offset:0 ~data:(pattern 2_048));
        let fetched = check_ok (Vkernel.Kernel.move_from a ~dst ~segment ~offset:0 ~len:2_048) in
        Alcotest.(check string) "read back what was written" (pattern 2_048) fetched)
  in
  Alcotest.(check bool) "bindings tracked" true (Vkernel.Kernel.active_transfers a >= 1)

let test_kernel_elapsed_matches_table3 () =
  (* A 64 KiB MoveTo with the kernel constants should take ~To(64)=173 ms
     plus the REQ handshake round. *)
  let sim, a, b = setup () in
  let data = pattern 65_536 in
  let buffer = Bytes.create 65_536 in
  let segment = Vkernel.Kernel.register_segment b ~rights:Vkernel.Kernel.Write_only buffer in
  let elapsed_ms =
    run_in_proc sim (fun () ->
        let sim = Proc.current_sim () in
        let started = Sim.now sim in
        check_ok
          (Vkernel.Kernel.move_to a ~dst:(Vkernel.Kernel.address b) ~segment ~offset:0 ~data);
        Time.span_to_ms (Time.diff (Sim.now sim) started))
  in
  (* Handshake: REQ (Ca-ish copy + transmit) + ACK, ~2 ms with kernel
     constants; transfer: 172.8 ms. *)
  Alcotest.(check bool)
    (Printf.sprintf "elapsed %.1f ms in [172, 180]" elapsed_ms)
    true
    (elapsed_ms > 172.0 && elapsed_ms < 180.0)

let test_multi_blast_kernel_transfer () =
  let sim, a, b = setup ~suite:(Protocol.Suite.Multi_blast { strategy = Protocol.Blast.Selective; chunk_packets = 16 }) () in
  let data = pattern 50_000 in
  let buffer = Bytes.create 50_000 in
  let segment = Vkernel.Kernel.register_segment b ~rights:Vkernel.Kernel.Write_only buffer in
  let () =
    run_in_proc sim (fun () ->
        check_ok
          (Vkernel.Kernel.move_to a ~dst:(Vkernel.Kernel.address b) ~segment ~offset:0 ~data))
  in
  Alcotest.(check string) "intact" data (Bytes.to_string buffer)

(* -------------------------------------------------- short-message IPC *)

let test_ipc_roundtrip () =
  let sim, a, b = setup () in
  let server_pid = Vkernel.Kernel.register_process b ~name:"echo" in
  let client_pid = Vkernel.Kernel.register_process a ~name:"client" in
  Proc.spawn (Proc.env sim) (fun () ->
      let body, token = Vkernel.Kernel.receive b ~pid:server_pid in
      Vkernel.Kernel.reply b token ("echo: " ^ body));
  let reply =
    run_in_proc sim (fun () ->
        check_ok
          (Vkernel.Kernel.send a ~dst:(Vkernel.Kernel.address b) ~from_pid:client_pid
             ~to_pid:server_pid "hello"))
  in
  Alcotest.(check string) "reply" "echo: hello" reply;
  Alcotest.(check (option string)) "process name" (Some "echo")
    (Vkernel.Kernel.process_name b ~pid:server_pid)

let test_ipc_unknown_process () =
  let sim, a, b = setup () in
  let client_pid = Vkernel.Kernel.register_process a ~name:"client" in
  let result =
    run_in_proc sim (fun () ->
        Vkernel.Kernel.send a ~dst:(Vkernel.Kernel.address b) ~from_pid:client_pid
          ~to_pid:999 "anyone there?")
  in
  Alcotest.(check bool) "no such process" true (result = Error Vkernel.Kernel.No_such_process)

let test_ipc_under_loss_exactly_once () =
  let rng = Stats.Rng.create ~seed:61 in
  let network_error = Netmodel.Error_model.iid rng ~loss:0.15 in
  let sim = Sim.create () in
  let wire =
    Netmodel.Wire.create sim ~params:Netmodel.Params.vkernel ~network_error ()
  in
  let a = Vkernel.Kernel.create ~retransmit_ns:20_000_000 wire ~name:"a" in
  let b = Vkernel.Kernel.create ~retransmit_ns:20_000_000 wire ~name:"b" in
  let server_pid = Vkernel.Kernel.register_process b ~name:"counter" in
  let client_pid = Vkernel.Kernel.register_process a ~name:"client" in
  let handled = ref 0 in
  Proc.spawn (Proc.env sim) (fun () ->
      for _ = 1 to 5 do
        let body, token = Vkernel.Kernel.receive b ~pid:server_pid in
        incr handled;
        Vkernel.Kernel.reply b token ("ok " ^ body)
      done);
  let replies =
    run_in_proc sim (fun () ->
        List.map
          (fun i ->
            check_ok
              (Vkernel.Kernel.send a ~dst:(Vkernel.Kernel.address b) ~from_pid:client_pid
                 ~to_pid:server_pid (string_of_int i)))
          [ 1; 2; 3; 4; 5 ])
  in
  Alcotest.(check (list string)) "all replies, in order"
    [ "ok 1"; "ok 2"; "ok 3"; "ok 4"; "ok 5" ]
    replies;
  (* Retransmissions under 15% loss must not create duplicate deliveries. *)
  Alcotest.(check int) "handled exactly once each" 5 !handled

let test_ipc_body_limit () =
  let sim, a, b = setup () in
  ignore sim;
  let client_pid = Vkernel.Kernel.register_process a ~name:"client" in
  Alcotest.check_raises "oversized body"
    (Invalid_argument "Kernel.send: body exceeds 32 bytes") (fun () ->
      ignore
        (Vkernel.Kernel.send a ~dst:(Vkernel.Kernel.address b) ~from_pid:client_pid
           ~to_pid:1 (String.make 33 'x')))

let test_ipc_arranges_bulk_move () =
  (* The paper's protocol sequence: short message names the segment, the
     kernel then blasts the data. *)
  let sim, client_kernel, server_kernel = setup () in
  let server_pid = Vkernel.Kernel.register_process server_kernel ~name:"file-server" in
  let client_pid = Vkernel.Kernel.register_process client_kernel ~name:"app" in
  let file = pattern 20_000 in
  let file_segment =
    Vkernel.Kernel.register_segment server_kernel ~rights:Vkernel.Kernel.Read_only
      (Bytes.of_string file)
  in
  (* Server: answer "open" requests with the segment id and size. *)
  Proc.spawn (Proc.env sim) (fun () ->
      let body, token = Vkernel.Kernel.receive server_kernel ~pid:server_pid in
      Alcotest.(check string) "request" "open paper.txt" body;
      Vkernel.Kernel.reply server_kernel token
        (Printf.sprintf "%d %d" file_segment (String.length file)));
  let fetched =
    run_in_proc sim (fun () ->
        let dst = Vkernel.Kernel.address server_kernel in
        let reply =
          check_ok
            (Vkernel.Kernel.send client_kernel ~dst ~from_pid:client_pid ~to_pid:server_pid
               "open paper.txt")
        in
        match String.split_on_char ' ' reply with
        | [ segment; len ] ->
            check_ok
              (Vkernel.Kernel.move_from client_kernel ~dst
                 ~segment:(int_of_string segment) ~offset:0 ~len:(int_of_string len))
        | _ -> Alcotest.failf "bad reply %S" reply)
  in
  Alcotest.(check string) "file contents" file fetched

let () =
  Alcotest.run "vkernel"
    [
      ( "semantics",
        [
          Alcotest.test_case "move_to basic" `Quick test_move_to_basic;
          Alcotest.test_case "move_from basic" `Quick test_move_from_basic;
          Alcotest.test_case "rights enforced" `Quick test_rights_enforced;
          Alcotest.test_case "bounds enforced" `Quick test_bounds_enforced;
          Alcotest.test_case "sequential transfers" `Quick test_sequential_transfers_reuse_kernel;
        ] );
      ( "loss",
        [
          Alcotest.test_case "move_to under loss" `Quick test_move_to_under_loss;
          Alcotest.test_case "move_from under loss" `Quick test_move_from_under_loss;
        ] );
      ( "system",
        [
          Alcotest.test_case "concurrent transfers demultiplexed" `Quick
            test_concurrent_transfers_demultiplexed;
          Alcotest.test_case "64 KiB MoveTo matches Table 3" `Quick
            test_kernel_elapsed_matches_table3;
          Alcotest.test_case "multi-blast transfer" `Quick test_multi_blast_kernel_transfer;
        ] );
      ( "ipc",
        [
          Alcotest.test_case "send/receive/reply roundtrip" `Quick test_ipc_roundtrip;
          Alcotest.test_case "unknown process" `Quick test_ipc_unknown_process;
          Alcotest.test_case "exactly-once under loss" `Quick test_ipc_under_loss_exactly_once;
          Alcotest.test_case "body limit" `Quick test_ipc_body_limit;
          Alcotest.test_case "message arranges bulk move" `Quick test_ipc_arranges_bulk_move;
        ] );
    ]
