(* Tests for the telemetry layer: event journal round-trips, flight-recorder
   ring semantics, the metrics registry, the Chrome trace exporter, and the
   cross-transport agreement between journal events and protocol counters. *)

let event = Alcotest.testable Obs.Event.pp Obs.Event.equal

let sample_events () =
  (* One event of every kind, with and without detail/seq, deterministic. *)
  List.concat
    (List.mapi
       (fun i kind ->
         [
           Obs.Event.make ~ts_ns:(i * 1000) ~lane:"sender" ~kind ();
           Obs.Event.make
             ~ts_ns:((i * 1000) + 500)
             ~lane:"receiver" ~kind ~detail:"data" ~seq:i ();
         ])
       Obs.Event.all_kinds)

(* ------------------------------------------------------------------ JSONL *)

let test_jsonl_round_trip () =
  let events = sample_events () in
  let jsonl = Obs.Export.jsonl_of_events events in
  match Obs.Export.events_of_jsonl jsonl with
  | Error e -> Alcotest.failf "decode failed: %s" e
  | Ok decoded -> Alcotest.(check (list event)) "round trip" events decoded

let test_jsonl_skips_meta_lines () =
  let events = sample_events () in
  let jsonl =
    "{\"postmortem\":\"watchdog\",\"dropped\":3}\n\n" ^ Obs.Export.jsonl_of_events events
  in
  match Obs.Export.events_of_jsonl jsonl with
  | Error e -> Alcotest.failf "decode failed: %s" e
  | Ok decoded -> Alcotest.(check (list event)) "meta skipped" events decoded

let test_jsonl_reports_malformed_line () =
  match Obs.Export.events_of_jsonl "{\"ts\":1,\"lane\":\"a\",\"ev\":\"tx\"}\nnot json\n" with
  | Ok _ -> Alcotest.fail "malformed line accepted"
  | Error e ->
      Alcotest.(check bool) "names the line" true (Str_exists.contains_substring e "line 2")

let test_kind_names_round_trip () =
  List.iter
    (fun kind ->
      match Obs.Event.kind_of_string (Obs.Event.kind_to_string kind) with
      | Some k ->
          Alcotest.(check string)
            "kind" (Obs.Event.kind_to_string kind) (Obs.Event.kind_to_string k)
      | None -> Alcotest.failf "kind %s did not parse" (Obs.Event.kind_to_string kind))
    Obs.Event.all_kinds

(* --------------------------------------------------------------- recorder *)

let test_recorder_wraparound () =
  let tick = ref 0 in
  let r =
    Obs.Recorder.create ~capacity:8
      ~now:(fun () ->
        incr tick;
        !tick * 10)
      ()
  in
  for i = 1 to 27 do
    Obs.Recorder.emit r ~lane:"sender" ~kind:Obs.Event.Tx ~seq:i ()
  done;
  Alcotest.(check int) "total counts everything" 27 (Obs.Recorder.total r);
  let events = Obs.Recorder.events r in
  Alcotest.(check int) "ring keeps capacity" 8 (List.length events);
  Alcotest.(check (list int)) "exactly the last 8, oldest first"
    [ 20; 21; 22; 23; 24; 25; 26; 27 ]
    (List.map (fun (e : Obs.Event.t) -> e.Obs.Event.seq) events);
  (* Timestamps are normalized to the first event ever recorded. *)
  List.iter
    (fun (e : Obs.Event.t) -> Alcotest.(check bool) "non-negative ts" true (e.Obs.Event.ts_ns >= 0))
    events;
  Obs.Recorder.clear r;
  Alcotest.(check int) "clear empties the ring" 0 (List.length (Obs.Recorder.events r))

let test_recorder_postmortem_dump () =
  let path = Filename.temp_file "obs_postmortem" ".jsonl" in
  let r = Obs.Recorder.create ~capacity:4 ~postmortem:path () in
  Alcotest.(check (option string)) "empty ring dumps nothing" None
    (Obs.Recorder.postmortem r ~reason:"nothing happened");
  for i = 1 to 6 do
    Obs.Recorder.emit r ~lane:"sender" ~kind:Obs.Event.Rx ~seq:i ()
  done;
  (match Obs.Recorder.postmortem r ~reason:"watchdog" with
  | None -> Alcotest.fail "no dump written"
  | Some written ->
      Alcotest.(check string) "dumps to the configured path" path written;
      let ic = open_in written in
      let contents =
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      Alcotest.(check bool) "meta line present" true
        (Str_exists.contains_substring contents "\"postmortem\":\"watchdog\"");
      (match Obs.Export.events_of_jsonl contents with
      | Error e -> Alcotest.failf "dump does not parse: %s" e
      | Ok events ->
          Alcotest.(check (list event)) "dump equals the ring" (Obs.Recorder.events r) events));
  Sys.remove path

(* ---------------------------------------------------------------- metrics *)

let test_metrics_registry () =
  let m = Obs.Metrics.create () in
  let c = Obs.Metrics.counter m ~labels:[ ("side", "sender") ] "sent" in
  Obs.Metrics.inc c;
  Obs.Metrics.inc ~by:4 c;
  Alcotest.(check int) "counter accumulates" 5 (Obs.Metrics.counter_value c);
  let same = Obs.Metrics.counter m ~labels:[ ("side", "sender") ] "sent" in
  Obs.Metrics.inc same;
  Alcotest.(check int) "same name+labels is the same instrument" 6
    (Obs.Metrics.counter_value c);
  let g = Obs.Metrics.gauge m "elapsed_ms" in
  Obs.Metrics.set_gauge g 12.5;
  Alcotest.(check (float 1e-9)) "gauge holds" 12.5 (Obs.Metrics.gauge_value g);
  Alcotest.check_raises "one name, one instrument type"
    (Invalid_argument "Metrics: \"sent\" is already a counter") (fun () ->
      ignore (Obs.Metrics.gauge m "sent"))

let test_metrics_bridge_and_json () =
  let m = Obs.Metrics.create () in
  let counters = Protocol.Counters.create () in
  counters.Protocol.Counters.data_sent <- 64;
  counters.Protocol.Counters.retransmitted_data <- 3;
  counters.Protocol.Counters.faults_injected <- 7;
  Obs.Metrics.bridge_counters m ~labels:[ ("side", "sender") ] counters;
  let v name =
    Obs.Metrics.counter_value (Obs.Metrics.counter m ~labels:[ ("side", "sender") ] name)
  in
  Alcotest.(check int) "data_sent bridged" 64 (v "protocol_data_sent");
  Alcotest.(check int) "retx bridged" 3 (v "protocol_retransmitted_data");
  Alcotest.(check int) "faults bridged" 7 (v "protocol_faults_injected");
  (* The JSON snapshot is parseable and carries the bridged value. *)
  match Obs.Json.parse (Obs.Json.to_string (Obs.Metrics.to_json m)) with
  | Error e -> Alcotest.failf "snapshot does not parse: %s" e
  | Ok json -> (
      match Obs.Json.to_list json with
      | None -> Alcotest.fail "snapshot is not a list"
      | Some entries ->
          let retx =
            List.find_opt
              (fun e ->
                Option.bind (Obs.Json.member "name" e) Obs.Json.to_str
                = Some "protocol_retransmitted_data")
              entries
          in
          let value =
            Option.bind retx (fun e ->
                Option.bind (Obs.Json.member "value" e) Obs.Json.to_int)
          in
          Alcotest.(check (option int)) "value in snapshot" (Some 3) value)

(* ------------------------------------------------------------------ spans *)

let test_span_trace_round_trip () =
  let trace = Eventsim.Trace.create () in
  let result =
    Simnet.Driver.run ~trace
      ~suite:(Protocol.Suite.Blast Protocol.Blast.Go_back_n)
      ~config:(Protocol.Config.make ~total_packets:6 ())
      ()
  in
  Alcotest.(check bool) "transfer completed" true
    (result.Simnet.Driver.outcome = Protocol.Action.Success);
  let round_tripped = Obs.Span.to_trace (Obs.Span.of_trace trace) in
  Alcotest.(check string) "Timeline renders a converted trace identically"
    (Report.Timeline.render ~width:90 trace)
    (Report.Timeline.render ~width:90 round_tripped)

(* ----------------------------------------------------------- chrome export *)

let ph e = Option.bind (Obs.Json.member "ph" e) Obs.Json.to_str

let trace_events json =
  match Option.bind (Obs.Json.member "traceEvents" json) Obs.Json.to_list with
  | Some l -> l
  | None -> Alcotest.fail "no traceEvents array"

let test_chrome_export_valid () =
  let spans =
    [
      { Obs.Span.lane = "wire"; kind = "transmit-data"; start_ns = 2_000; dur_ns = 1_000 };
      { Obs.Span.lane = "cpu"; kind = "copy-data-in"; start_ns = 0; dur_ns = 500 };
    ]
  in
  let events = sample_events () in
  let raw = Obs.Export.chrome_string ~spans ~events () in
  match Obs.Json.parse raw with
  | Error e -> Alcotest.failf "chrome export is not valid JSON: %s" e
  | Ok json ->
      let entries = trace_events json in
      let payload = List.filter (fun e -> ph e <> Some "M") entries in
      Alcotest.(check int) "every span and event exported"
        (List.length spans + List.length events)
        (List.length payload);
      let ts e =
        match Option.bind (Obs.Json.member "ts" e) Obs.Json.to_float with
        | Some v -> v
        | None -> Alcotest.fail "payload entry without ts"
      in
      let rec monotone = function
        | a :: (b :: _ as rest) ->
            Alcotest.(check bool) "ts sorted ascending" true (ts a <= ts b);
            monotone rest
        | _ -> ()
      in
      monotone payload;
      List.iter
        (fun e ->
          Alcotest.(check bool) "ts non-negative" true (ts e >= 0.0);
          match ph e with
          | Some "X" ->
              let dur = Option.bind (Obs.Json.member "dur" e) Obs.Json.to_float in
              Alcotest.(check bool) "dur non-negative" true
                (match dur with Some d -> d >= 0.0 | None -> false)
          | Some "i" -> ()
          | other ->
              Alcotest.failf "unexpected phase %s"
                (Option.value other ~default:"<missing>"))
        payload

(* ------------------------------------- events agree with counters, sim side *)

let count_events kind events =
  List.length (List.filter (fun (e : Obs.Event.t) -> e.Obs.Event.kind = kind) events)

let test_sim_driver_events_match_counters () =
  let recorder = Obs.Recorder.create () in
  let rng = Stats.Rng.create ~seed:7 in
  let result =
    Simnet.Driver.run ~recorder
      ~network_error:(Netmodel.Error_model.iid rng ~loss:0.05)
      ~suite:(Protocol.Suite.Blast Protocol.Blast.Go_back_n)
      ~config:(Protocol.Config.make ~total_packets:32 ())
      ()
  in
  let events = Obs.Recorder.events recorder in
  Alcotest.(check bool) "transfer completed" true
    (result.Simnet.Driver.outcome = Protocol.Action.Success);
  Alcotest.(check bool) "the lossy run retransmitted" true
    (result.Simnet.Driver.sender.Protocol.Counters.retransmitted_data > 0);
  Alcotest.(check int) "retransmit events == sender counter"
    result.Simnet.Driver.sender.Protocol.Counters.retransmitted_data
    (count_events Obs.Event.Retransmit events);
  Alcotest.(check int) "duplicate events == receiver counter"
    result.Simnet.Driver.receiver.Protocol.Counters.duplicates_received
    (count_events Obs.Event.Duplicate events);
  Alcotest.(check int) "deliver events == receiver counter"
    result.Simnet.Driver.receiver.Protocol.Counters.delivered
    (count_events Obs.Event.Deliver events)

(* ------------------------------------- events agree with counters, UDP side *)

let test_udp_chaos_events_match_counters () =
  let scenario =
    match Faults.Scenario.find "chaos" with
    | Some s -> s
    | None -> Alcotest.fail "chaos scenario missing"
  in
  let recorder = Obs.Recorder.create () in
  let run =
    Sockets.Chaos.run_one
      ~ctx:(Sockets.Io_ctx.make ~recorder ())
      ~seed:3
      ~suite:(Protocol.Suite.Blast Protocol.Blast.Go_back_n)
      ~scenario ()
  in
  Alcotest.(check (option string)) "invariant holds" None run.Sockets.Chaos.violation;
  let send =
    match run.Sockets.Chaos.send with
    | Some s -> s
    | None -> Alcotest.fail "sender raised"
  in
  let received =
    match run.Sockets.Chaos.received with
    | Some r -> r
    | None -> Alcotest.fail "receiver raised"
  in
  let events = Obs.Recorder.events recorder in
  let faults_injected =
    send.Sockets.Peer.counters.Protocol.Counters.faults_injected
    + received.Sockets.Peer.receive_counters.Protocol.Counters.faults_injected
  in
  Alcotest.(check int) "retransmit events == sender counter"
    send.Sockets.Peer.counters.Protocol.Counters.retransmitted_data
    (count_events Obs.Event.Retransmit events);
  Alcotest.(check int) "fault events == both netems' injections" faults_injected
    (count_events Obs.Event.Fault events);
  (* The same counts must survive the Chrome export: count instants by name
     in the parsed JSON — exactly what the acceptance criterion greps. *)
  match Obs.Json.parse (Obs.Export.chrome_string ~events ()) with
  | Error e -> Alcotest.failf "chrome export does not parse: %s" e
  | Ok json ->
      let named name e =
        ph e = Some "i"
        && Option.bind (Obs.Json.member "name" e) Obs.Json.to_str = Some name
      in
      let count name = List.length (List.filter (named name) (trace_events json)) in
      Alcotest.(check int) "exported retransmit instants"
        send.Sockets.Peer.counters.Protocol.Counters.retransmitted_data
        (count "retransmit");
      Alcotest.(check int) "exported fault instants" faults_injected (count "fault")

let () =
  Alcotest.run "obs"
    [
      ( "journal",
        [
          Alcotest.test_case "jsonl round trip" `Quick test_jsonl_round_trip;
          Alcotest.test_case "jsonl skips meta lines" `Quick test_jsonl_skips_meta_lines;
          Alcotest.test_case "jsonl reports malformed line" `Quick
            test_jsonl_reports_malformed_line;
          Alcotest.test_case "kind names round trip" `Quick test_kind_names_round_trip;
        ] );
      ( "recorder",
        [
          Alcotest.test_case "ring wraparound keeps last N" `Quick test_recorder_wraparound;
          Alcotest.test_case "postmortem dump" `Quick test_recorder_postmortem_dump;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "registry" `Quick test_metrics_registry;
          Alcotest.test_case "bridge and json snapshot" `Quick test_metrics_bridge_and_json;
        ] );
      ( "export",
        [
          Alcotest.test_case "span/trace round trip renders identically" `Quick
            test_span_trace_round_trip;
          Alcotest.test_case "chrome trace is valid and monotone" `Quick
            test_chrome_export_valid;
        ] );
      ( "agreement",
        [
          Alcotest.test_case "sim events match counters" `Quick
            test_sim_driver_events_match_counters;
          Alcotest.test_case "udp chaos events match counters" `Quick
            test_udp_chaos_events_match_counters;
        ] );
    ]
