(* Integration tests: protocol machines over the simulated LAN.

   The headline assertions: the simulator's error-free elapsed times equal
   the paper's closed-form formulas to the nanosecond, for every protocol and
   interface variant. *)

open Eventsim

(* Integer-nanosecond constants of the standalone preset. *)
let c = 1_350_000
let ca = 170_000
let t = 819_200
let ta = 51_200
let tau = 10_000

let saw_ns n = n * ((2 * c) + (2 * ca) + t + ta + (2 * tau))
let blast_ns n = (n * (c + t)) + c + (2 * ca) + ta + (2 * tau)
let sw_ns n = (n * (c + ca + t)) + c + ca + ta + (2 * tau)
let dbl_ns n = (n * c) + t + c + (2 * ca) + ta + (2 * tau) (* T < C here *)

let config ?(total = 8) () = Protocol.Config.make ~total_packets:total ()

let run ?params ?network_error ?interface_error ?trace ?payload suite ~total =
  Simnet.Driver.run ?params ?network_error ?interface_error ?trace ?payload ~suite
    ~config:(config ~total ()) ()

let check_elapsed_ns name expected result =
  Alcotest.(check int) name expected (Time.span_to_ns result.Simnet.Driver.elapsed)

(* ------------------------------------------- error-free exact elapsed time *)

let sizes = [ 1; 2; 4; 8; 16; 32; 64 ]

let test_saw_matches_formula () =
  List.iter
    (fun n ->
      let result = run Protocol.Suite.Stop_and_wait ~total:n in
      Alcotest.(check bool) "success" true (result.Simnet.Driver.outcome = Protocol.Action.Success);
      check_elapsed_ns (Printf.sprintf "SAW %d packets" n) (saw_ns n) result)
    sizes

let test_blast_matches_formula () =
  List.iter
    (fun strategy ->
      List.iter
        (fun n ->
          let result = run (Protocol.Suite.Blast strategy) ~total:n in
          check_elapsed_ns
            (Printf.sprintf "blast/%s %d packets" (Protocol.Blast.strategy_name strategy) n)
            (blast_ns n) result)
        sizes)
    Protocol.Blast.all_strategies

let test_sliding_window_matches_formula () =
  (* The simulator undercuts the steady-state formula by exactly one
     (Ca - Ta + tau) for N >= 2: the first data packet's cycle carries no ack
     copy-out yet (the ack is still in flight), a pipeline warm-up effect the
     paper's linear formula — an approximation by its own account — ignores. *)
  let warmup = ca - ta + tau in
  List.iter
    (fun n ->
      let result = run (Protocol.Suite.Sliding_window { window = max_int }) ~total:n in
      let expected = if n = 1 then sw_ns 1 else sw_ns n - warmup in
      check_elapsed_ns (Printf.sprintf "SW %d packets" n) expected result)
    sizes

let test_double_buffered_matches_formula () =
  let params = Netmodel.Params.double_buffered Netmodel.Params.standalone in
  List.iter
    (fun n ->
      let result = run ~params (Protocol.Suite.Blast Protocol.Blast.Go_back_n) ~total:n in
      check_elapsed_ns (Printf.sprintf "double-buffered %d packets" n) (dbl_ns n) result)
    sizes

let test_multi_blast_error_free () =
  (* k back-to-back blasts of c packets: N (C+T) + k * (C + 2Ca + Ta + 2tau). *)
  let n = 12 and chunk = 4 in
  let k = 3 in
  let result =
    run (Protocol.Suite.Multi_blast { strategy = Protocol.Blast.Go_back_n; chunk_packets = chunk })
      ~total:n
  in
  let expected = (n * (c + t)) + (k * (c + (2 * ca) + ta + (2 * tau))) in
  check_elapsed_ns "multi-blast" expected result

(* --------------------------------------------- agreement with lib/analysis *)

let test_analysis_agrees_with_simulator () =
  let costs = Analysis.Costs.standalone in
  let check ?(tolerance = 1e-6) name formula simulated =
    List.iter
      (fun n ->
        let analytic = formula costs ~packets:n in
        let result = run simulated ~total:n in
        let sim_ms = Simnet.Driver.elapsed_ms result in
        if Float.abs (analytic -. sim_ms) > tolerance then
          Alcotest.failf "%s N=%d: analytic %.6f ms vs simulated %.6f ms" name n analytic sim_ms)
      sizes
  in
  check "SAW" Analysis.Error_free.stop_and_wait Protocol.Suite.Stop_and_wait;
  check "blast" Analysis.Error_free.blast (Protocol.Suite.Blast Protocol.Blast.Selective);
  (* SW: the formula is the paper's steady-state approximation; the simulator
     is exact, within one warm-up term (see above). *)
  check ~tolerance:0.13 "SW" Analysis.Error_free.sliding_window
    (Protocol.Suite.Sliding_window { window = max_int })

let test_paper_headline_ratio () =
  (* "the stop-and-wait protocol takes about twice as much time as either the
     sliding window or the blast protocol" *)
  let saw = float_of_int (saw_ns 64) and blast = float_of_int (blast_ns 64) in
  let ratio = saw /. blast in
  Alcotest.(check bool) "SAW ~ 2x blast" true (ratio > 1.7 && ratio < 2.1);
  let sw = float_of_int (sw_ns 64) in
  Alcotest.(check bool) "SW slightly above blast" true (sw > blast && sw < 1.1 *. blast)

let test_utilization_38_percent () =
  let result = run (Protocol.Suite.Blast Protocol.Blast.Go_back_n) ~total:64 in
  Alcotest.(check (float 0.01)) "38%% utilization" 0.38 result.Simnet.Driver.utilization;
  let analytic = Analysis.Error_free.network_utilization Analysis.Costs.standalone ~packets:64 in
  Alcotest.(check (float 0.005)) "analysis agrees" analytic result.Simnet.Driver.utilization

let test_vkernel_anchors () =
  (* Table 3 anchors: To(1) = 5.9 ms, To(64) = 173 ms. *)
  let params = Netmodel.Params.vkernel in
  let one = run ~params (Protocol.Suite.Blast Protocol.Blast.Go_back_n) ~total:1 in
  let sixty_four = run ~params (Protocol.Suite.Blast Protocol.Blast.Go_back_n) ~total:64 in
  Alcotest.(check (float 0.05)) "To(1) ~ 5.9 ms" 5.9 (Simnet.Driver.elapsed_ms one);
  Alcotest.(check (float 1.0)) "To(64) ~ 173 ms" 173.0 (Simnet.Driver.elapsed_ms sixty_four)

let test_in_text_naive_estimates () =
  let k = Analysis.Costs.paper_rounded in
  Alcotest.(check (float 1e-9)) "57024 us" 57.024 (Analysis.Error_free.naive_stop_and_wait k ~packets:64);
  Alcotest.(check (float 1e-9)) "55764 us" 55.764 (Analysis.Error_free.naive_sliding_window k ~packets:64);
  Alcotest.(check (float 1e-9)) "52551 us" 52.551 (Analysis.Error_free.naive_blast k ~packets:64)

(* --------------------------------------------------- Table 2 trace breakdown *)

let test_breakdown_through_driver () =
  let trace = Trace.create () in
  let result = run ~trace (Protocol.Suite.Blast Protocol.Blast.Go_back_n) ~total:1 in
  check_elapsed_ns "1-packet exchange" (blast_ns 1) result;
  let totals = Trace.total_by_kind trace in
  let find k = Time.span_to_ns (List.assoc k totals) in
  Alcotest.(check int) "copy data in" c (find "copy-data-in");
  Alcotest.(check int) "copy data out" c (find "copy-data-out");
  Alcotest.(check int) "transmit data" t (find "transmit-data");
  Alcotest.(check int) "copy ack in" ca (find "copy-ack-in");
  Alcotest.(check int) "copy ack out" ca (find "copy-ack-out");
  Alcotest.(check int) "transmit ack" ta (find "transmit-ack")

(* -------------------------------------------------------- payload integrity *)

let test_payload_integrity_through_sim () =
  let config = config ~total:5 () in
  let payload = Protocol.Machine.constant_payload config in
  let rng = Stats.Rng.create ~seed:42 in
  let network_error = Netmodel.Error_model.iid rng ~loss:0.1 in
  let result =
    Simnet.Driver.run ~network_error ~payload
      ~suite:(Protocol.Suite.Blast Protocol.Blast.Selective) ~config ()
  in
  Alcotest.(check bool) "success" true (result.Simnet.Driver.outcome = Protocol.Action.Success);
  Alcotest.(check int) "all delivered" 5 (List.length result.Simnet.Driver.received);
  List.iter
    (fun (seq, received) ->
      Alcotest.(check string) (Printf.sprintf "packet %d" seq) (payload seq) received)
    result.Simnet.Driver.received

(* ------------------------------------------------------------- lossy runs *)

let lossy_suites =
  [
    Protocol.Suite.Stop_and_wait;
    Protocol.Suite.Sliding_window { window = max_int };
    Protocol.Suite.Blast Protocol.Blast.Full_retransmit;
    Protocol.Suite.Blast Protocol.Blast.Full_retransmit_nack;
    Protocol.Suite.Blast Protocol.Blast.Go_back_n;
    Protocol.Suite.Blast Protocol.Blast.Selective;
    Protocol.Suite.Multi_blast { strategy = Protocol.Blast.Go_back_n; chunk_packets = 8 };
  ]

let test_lossy_network_all_protocols () =
  List.iter
    (fun suite ->
      let rng = Stats.Rng.create ~seed:7 in
      let network_error = Netmodel.Error_model.iid rng ~loss:0.02 in
      let config =
        Protocol.Config.make ~total_packets:32
          ~tuning:(Protocol.Tuning.fixed ~max_attempts:200 ())
          ()
      in
      let result = Simnet.Driver.run ~network_error ~suite ~config () in
      Alcotest.(check bool)
        (Protocol.Suite.name suite ^ " succeeds at 2% loss")
        true
        (result.Simnet.Driver.outcome = Protocol.Action.Success);
      Alcotest.(check int)
        (Protocol.Suite.name suite ^ " delivers all")
        32
        result.Simnet.Driver.receiver.Protocol.Counters.delivered)
    lossy_suites

let test_interface_loss_slows_blast () =
  let clean = run (Protocol.Suite.Blast Protocol.Blast.Go_back_n) ~total:64 in
  let rng = Stats.Rng.create ~seed:11 in
  let interface_error = Netmodel.Error_model.iid rng ~loss:0.05 in
  let lossy = run ~interface_error (Protocol.Suite.Blast Protocol.Blast.Go_back_n) ~total:64 in
  Alcotest.(check bool) "lossy slower" true
    (Simnet.Driver.elapsed_ms lossy > Simnet.Driver.elapsed_ms clean);
  Alcotest.(check bool) "retransmissions happened" true
    (lossy.Simnet.Driver.sender.Protocol.Counters.retransmitted_data > 0)

let test_total_loss_gives_up () =
  let rng = Stats.Rng.create ~seed:13 in
  let network_error = Netmodel.Error_model.iid rng ~loss:1.0 in
  let config =
    Protocol.Config.make ~total_packets:4
      ~tuning:(Protocol.Tuning.fixed ~max_attempts:3 ())
      ()
  in
  let result =
    Simnet.Driver.run ~network_error ~suite:(Protocol.Suite.Blast Protocol.Blast.Go_back_n)
      ~config ()
  in
  Alcotest.(check bool) "gave up" true
    (result.Simnet.Driver.outcome = Protocol.Action.Too_many_attempts)

(* ---------------------------------------------------------------- pacing *)

let test_pacing_matches_closed_form () =
  (* With a healthy receiver, a paced blast costs N x (C + T + P) plus the
     usual tail; the formula and the simulator agree within one P (the pause
     after the final packet overlaps the ack path). *)
  let pacing_ms = 0.4 in
  let result =
    Simnet.Driver.run
      ~pacing:(Time.span_ms pacing_ms)
      ~suite:(Protocol.Suite.Blast Protocol.Blast.Go_back_n)
      ~config:(config ~total:16 ())
      ()
  in
  let formula =
    Analysis.Error_free.blast_paced Analysis.Costs.standalone ~packets:16 ~pacing_ms
  in
  let sim = Simnet.Driver.elapsed_ms result in
  if Float.abs (formula -. sim) > pacing_ms +. 1e-9 then
    Alcotest.failf "paced: formula %.4f vs sim %.4f" formula sim

let test_pacing_cures_slow_receiver () =
  let slow =
    {
      Netmodel.Params.standalone with
      Netmodel.Params.rx_service_overhead = Time.span_ms 1.23;
    }
  in
  let run ?pacing () =
    Simnet.Driver.run ~params:slow ?pacing
      ~suite:(Protocol.Suite.Blast Protocol.Blast.Go_back_n)
      ~config:
        (Protocol.Config.make
           ~tuning:(Protocol.Tuning.fixed ~retransmit_ns:20_000_000 ())
           ~total_packets:64 ())
      ()
  in
  let thrashing = run () in
  let paced = run ~pacing:(Time.span_ms 0.45) () in
  Alcotest.(check bool) "unpaced overruns" true
    (thrashing.Simnet.Driver.wire.Netmodel.Wire.lost_overrun > 0);
  Alcotest.(check int) "paced never overruns" 0
    paced.Simnet.Driver.wire.Netmodel.Wire.lost_overrun;
  Alcotest.(check bool) "pacing is faster than repairing" true
    (Simnet.Driver.elapsed_ms paced < Simnet.Driver.elapsed_ms thrashing)

(* --------------------------------------------------------------- campaign *)

let test_campaign_reproducible () =
  let spec =
    Simnet.Campaign.default ~network_loss:0.02 ~trials:5 ~seed:3
      ~suite:(Protocol.Suite.Blast Protocol.Blast.Go_back_n)
      ~config:(config ~total:16 ()) ()
  in
  let a = Simnet.Campaign.run spec and b = Simnet.Campaign.run spec in
  Alcotest.(check (float 1e-12)) "same mean" (Stats.Summary.mean a.Simnet.Campaign.elapsed_ms)
    (Stats.Summary.mean b.Simnet.Campaign.elapsed_ms)

let test_campaign_error_free_is_deterministic () =
  let spec =
    Simnet.Campaign.default ~trials:4
      ~suite:(Protocol.Suite.Blast Protocol.Blast.Go_back_n)
      ~config:(config ~total:8 ()) ()
  in
  let outcome = Simnet.Campaign.run spec in
  Alcotest.(check int) "no failures" 0 outcome.Simnet.Campaign.failures;
  Alcotest.(check (float 1e-12)) "zero spread" 0.0
    (Stats.Summary.stddev outcome.Simnet.Campaign.elapsed_ms);
  Alcotest.(check (float 1e-9)) "matches formula"
    (float_of_int (blast_ns 8) /. 1e6)
    (Stats.Summary.mean outcome.Simnet.Campaign.elapsed_ms)

let () =
  Alcotest.run "simnet"
    [
      ( "error-free-exact",
        [
          Alcotest.test_case "stop-and-wait = formula" `Quick test_saw_matches_formula;
          Alcotest.test_case "blast = formula (all strategies)" `Quick test_blast_matches_formula;
          Alcotest.test_case "sliding window = formula" `Quick test_sliding_window_matches_formula;
          Alcotest.test_case "double buffered = formula" `Quick test_double_buffered_matches_formula;
          Alcotest.test_case "multi-blast = formula" `Quick test_multi_blast_error_free;
          Alcotest.test_case "analysis agrees with simulator" `Quick
            test_analysis_agrees_with_simulator;
        ] );
      ( "paper-claims",
        [
          Alcotest.test_case "SAW ~ 2x blast" `Quick test_paper_headline_ratio;
          Alcotest.test_case "38% utilization" `Quick test_utilization_38_percent;
          Alcotest.test_case "V-kernel anchors" `Quick test_vkernel_anchors;
          Alcotest.test_case "in-text naive estimates" `Quick test_in_text_naive_estimates;
          Alcotest.test_case "Table 2 breakdown" `Quick test_breakdown_through_driver;
        ] );
      ( "lossy",
        [
          Alcotest.test_case "payload integrity" `Quick test_payload_integrity_through_sim;
          Alcotest.test_case "all protocols at 2% loss" `Quick test_lossy_network_all_protocols;
          Alcotest.test_case "interface loss slows blast" `Quick test_interface_loss_slows_blast;
          Alcotest.test_case "total loss gives up" `Quick test_total_loss_gives_up;
        ] );
      ( "pacing",
        [
          Alcotest.test_case "matches closed form" `Quick test_pacing_matches_closed_form;
          Alcotest.test_case "cures a slow receiver" `Quick test_pacing_cures_slow_receiver;
        ] );
      ( "campaign",
        [
          Alcotest.test_case "reproducible" `Quick test_campaign_reproducible;
          Alcotest.test_case "error-free deterministic" `Quick
            test_campaign_error_free_is_deterministic;
        ] );
    ]
