(* Tests for the dump/restore archive format: encode/decode, filesystem
   roundtrips, corruption and path-traversal defenses, and a full dump over
   the UDP blast path. *)

let sample_entries =
  [
    Archive.Directory "etc";
    Archive.File { path = "etc/motd"; content = "welcome to 1985\n" };
    Archive.Directory "usr";
    Archive.Directory "usr/bin";
    Archive.File { path = "usr/bin/vkernel"; content = String.make 10_000 '\x7f' };
    Archive.File { path = "empty"; content = "" };
  ]

let entry_equal a b =
  match (a, b) with
  | Archive.Directory p, Archive.Directory q -> p = q
  | ( Archive.File { path = p; content = c },
      Archive.File { path = q; content = d } ) ->
      p = q && c = d
  | _ -> false

let test_encode_decode_roundtrip () =
  match Archive.decode (Archive.encode sample_entries) with
  | Ok decoded ->
      Alcotest.(check int) "count" (List.length sample_entries) (List.length decoded);
      List.iter2
        (fun a b -> Alcotest.(check bool) "entry" true (entry_equal a b))
        sample_entries decoded
  | Error e -> Alcotest.failf "decode: %a" Archive.pp_error e

let test_decode_rejects_corruption () =
  let encoded = Bytes.of_string (Archive.encode sample_entries) in
  Bytes.set encoded 20 (Char.chr (Char.code (Bytes.get encoded 20) lxor 0xFF));
  (match Archive.decode (Bytes.to_string encoded) with
  | Error Archive.Bad_checksum -> ()
  | _ -> Alcotest.fail "expected Bad_checksum");
  match Archive.decode "LD" with
  | Error Archive.Truncated -> ()
  | _ -> Alcotest.fail "expected Truncated"

let test_encode_rejects_traversal () =
  Alcotest.(check bool) "absolute" true
    (try
       ignore (Archive.encode [ Archive.Directory "/etc" ]);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "dotdot" true
    (try
       ignore (Archive.encode [ Archive.File { path = "a/../../b"; content = "" } ]);
       false
     with Invalid_argument _ -> true)

let test_decode_rejects_traversal () =
  (* Hand-build an archive whose path escapes, with a VALID checksum: the
     decoder must still refuse it. *)
  let evil = "../evil" in
  let buffer = Buffer.create 64 in
  Buffer.add_string buffer "LDMP\001";
  let u32 v =
    let b = Bytes.create 4 in
    Bytes.set_int32_be b 0 (Int32.of_int v);
    Buffer.add_bytes buffer b
  in
  u32 1;
  Buffer.add_uint8 buffer 0;
  let u16 = Bytes.create 2 in
  Bytes.set_uint16_be u16 0 (String.length evil);
  Buffer.add_bytes buffer u16;
  Buffer.add_string buffer evil;
  let body = Buffer.contents buffer in
  let crc = Bytes.create 4 in
  Bytes.set_int32_be crc 0 (Packet.Checksum.crc32_string body);
  match Archive.decode (body ^ Bytes.to_string crc) with
  | Error (Archive.Unsafe_path "../evil") -> ()
  | Ok _ -> Alcotest.fail "traversal accepted"
  | Error e -> Alcotest.failf "wrong error: %a" Archive.pp_error e

let with_temp_dir f =
  let root = Filename.temp_file "lanrepro" ".dir" in
  Sys.remove root;
  Unix.mkdir root 0o755;
  Fun.protect
    ~finally:(fun () -> ignore (Sys.command (Printf.sprintf "rm -rf %s" (Filename.quote root))))
    (fun () -> f root)

let test_filesystem_roundtrip () =
  with_temp_dir (fun source ->
      with_temp_dir (fun target ->
          ignore (Archive.extract ~root:source sample_entries);
          let walked = Archive.of_directory source in
          let encoded = Archive.encode walked in
          match Archive.decode encoded with
          | Error e -> Alcotest.failf "decode: %a" Archive.pp_error e
          | Ok entries ->
              let written = Archive.extract ~root:target entries in
              Alcotest.(check int) "entries written" (List.length walked) written;
              let read path =
                let ic = open_in_bin (Filename.concat target path) in
                Fun.protect
                  ~finally:(fun () -> close_in ic)
                  (fun () -> really_input_string ic (in_channel_length ic))
              in
              Alcotest.(check string) "motd" "welcome to 1985\n" (read "etc/motd");
              Alcotest.(check int) "big file" 10_000 (String.length (read "usr/bin/vkernel"));
              Alcotest.(check bool) "empty file" true (read "empty" = "")))

let test_of_directory_deterministic () =
  with_temp_dir (fun root ->
      ignore (Archive.extract ~root sample_entries);
      let a = Archive.encode (Archive.of_directory root) in
      let b = Archive.encode (Archive.of_directory root) in
      Alcotest.(check bool) "stable bytes" true (String.equal a b))

let test_dump_over_udp_blast () =
  (* The full pipeline: directory -> archive -> multi-blast over UDP ->
     archive -> directory. *)
  with_temp_dir (fun source ->
      with_temp_dir (fun target ->
          ignore (Archive.extract ~root:source sample_entries);
          let data = Archive.encode (Archive.of_directory source) in
          let receiver_socket, receiver_address = Sockets.Udp.create_socket () in
          let sender_socket, _ = Sockets.Udp.create_socket () in
          let received = ref None in
          let thread =
            Thread.create
              (fun () -> received := Some (Sockets.Peer.serve_one ~socket:receiver_socket ()))
              ()
          in
          let result =
            Sockets.Peer.send
              ~ctx:
                (Sockets.Io_ctx.make
                   ~tuning:(Protocol.Tuning.fixed ~retransmit_ns:20_000_000 ()) ())
              ~lossy:(Sockets.Lossy.create ~seed:9 ~tx_loss:0.05 ~rx_loss:0.0)
              ~socket:sender_socket ~peer:receiver_address
              ~suite:(Protocol.Suite.Multi_blast
                        { strategy = Protocol.Blast.Go_back_n; chunk_packets = 4 })
              ~data ()
          in
          Thread.join thread;
          Sockets.Udp.close receiver_socket;
          Sockets.Udp.close sender_socket;
          Alcotest.(check bool) "sent" true (result.Sockets.Peer.outcome = Protocol.Action.Success);
          match !received with
          | None -> Alcotest.fail "nothing received"
          | Some r -> begin
              Alcotest.(check bool) "integrity verified" true
                (r.Sockets.Peer.integrity = Sockets.Peer.Verified);
              match Archive.decode r.Sockets.Peer.data with
              | Error e -> Alcotest.failf "decode after transfer: %a" Archive.pp_error e
              | Ok entries ->
                  ignore (Archive.extract ~root:target entries);
                  let ic = open_in_bin (Filename.concat target "etc/motd") in
                  let motd =
                    Fun.protect
                      ~finally:(fun () -> close_in ic)
                      (fun () -> really_input_string ic (in_channel_length ic))
                  in
                  Alcotest.(check string) "restored" "welcome to 1985\n" motd
            end))

let prop_roundtrip =
  QCheck.Test.make ~name:"archive roundtrips arbitrary entries" ~count:100
    QCheck.(
      list_of_size Gen.(int_range 0 20)
        (pair (string_gen_of_size Gen.(int_range 1 8) Gen.(char_range 'a' 'z')) string))
    (fun files ->
      (* Build unique safe paths from the generated names. *)
      let entries =
        List.mapi
          (fun i (name, content) ->
            Archive.File { path = Printf.sprintf "d%d/%s" i name; content })
          files
      in
      match Archive.decode (Archive.encode entries) with
      | Ok decoded ->
          List.length decoded = List.length entries
          && List.for_all2 entry_equal entries decoded
      | Error _ -> false)

let qcheck tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "archive"
    [
      ( "format",
        Alcotest.test_case "roundtrip" `Quick test_encode_decode_roundtrip
        :: Alcotest.test_case "rejects corruption" `Quick test_decode_rejects_corruption
        :: Alcotest.test_case "encode rejects traversal" `Quick test_encode_rejects_traversal
        :: Alcotest.test_case "decode rejects traversal" `Quick test_decode_rejects_traversal
        :: qcheck [ prop_roundtrip ] );
      ( "filesystem",
        [
          Alcotest.test_case "roundtrip" `Quick test_filesystem_roundtrip;
          Alcotest.test_case "deterministic walk" `Quick test_of_directory_deterministic;
        ] );
      ( "end-to-end",
        [ Alcotest.test_case "dump over UDP blast" `Quick test_dump_over_udp_blast ] );
    ]
