(* Tests for the closed-form analysis and the Monte-Carlo runner, including
   the cross-validation between them that underpins Figures 5 and 6. *)

let costs = Analysis.Costs.standalone
let check_close epsilon = Alcotest.(check (float epsilon))

(* ------------------------------------------------------------ Error_free *)

let test_error_free_spot_values () =
  (* By hand from the Table 2 constants. *)
  check_close 1e-9 "blast 64" 140.59 (Analysis.Error_free.blast costs ~packets:64);
  check_close 1e-9 "saw 1" 3.9304 (Analysis.Error_free.stop_and_wait costs ~packets:1);
  check_close 1e-9 "saw 64" 251.5456 (Analysis.Error_free.stop_and_wait costs ~packets:64)

let test_error_free_ordering () =
  List.iter
    (fun n ->
      let saw = Analysis.Error_free.stop_and_wait costs ~packets:n in
      let sw = Analysis.Error_free.sliding_window costs ~packets:n in
      let blast = Analysis.Error_free.blast costs ~packets:n in
      let dbl = Analysis.Error_free.double_buffered costs ~packets:n in
      if not (saw > sw && sw > blast && blast > dbl) then
        Alcotest.failf "ordering violated at N=%d: %f %f %f %f" n saw sw blast dbl)
    [ 2; 4; 8; 16; 64; 256 ]

let test_double_buffered_regimes () =
  (* T < C regime uses the copy-bound branch. *)
  let n = 16 in
  let copy_bound = Analysis.Error_free.double_buffered costs ~packets:n in
  check_close 1e-9 "copy bound"
    ((float_of_int n *. 1.35) +. 0.8192 +. 1.35 +. 0.34 +. 0.0512 +. 0.02)
    copy_bound;
  (* A fast-copy machine flips to the wire-bound branch. *)
  let fast = { costs with Analysis.Costs.c = 0.2 } in
  let wire_bound = Analysis.Error_free.double_buffered fast ~packets:n in
  check_close 1e-9 "wire bound"
    ((float_of_int n *. 0.8192) +. 0.4 +. 0.34 +. 0.0512 +. 0.02)
    wire_bound

let test_utilization_value () =
  check_close 1e-2 "38%" 0.38 (Analysis.Error_free.network_utilization costs ~packets:64);
  (* Double buffering would raise utilization; more packets asymptotically
     approach T/(C+T). *)
  let u64 = Analysis.Error_free.network_utilization costs ~packets:64 in
  let u512 = Analysis.Error_free.network_utilization costs ~packets:512 in
  Alcotest.(check bool) "monotone in N" true (u512 > u64);
  Alcotest.(check bool) "bounded by T/(C+T)" true (u512 < 0.8192 /. (1.35 +. 0.8192))

(* --------------------------------------------------------- Expected_time *)

let test_failure_probs () =
  check_close 1e-12 "saw pc" (1.0 -. (0.99 *. 0.99))
    (Analysis.Expected_time.saw_exchange_failure ~pn:0.01);
  check_close 1e-12 "blast pc" (1.0 -. (0.99 ** 65.0))
    (Analysis.Expected_time.blast_failure ~pn:0.01 ~packets:64)

let test_expected_time_limits () =
  check_close 1e-12 "pc=0 gives t0" 10.0 (Analysis.Expected_time.expected ~t0:10.0 ~tr:50.0 ~pc:0.0);
  Alcotest.(check bool) "pc=1 diverges" true
    (Analysis.Expected_time.expected ~t0:10.0 ~tr:50.0 ~pc:1.0 = infinity)

let test_expected_time_monotone_in_pn () =
  let t0 = Analysis.Error_free.blast costs ~packets:64 in
  let values =
    List.map
      (fun pn -> Analysis.Expected_time.blast ~t0 ~tr:t0 ~pn ~packets:64)
      [ 1e-7; 1e-6; 1e-5; 1e-4; 1e-3; 1e-2 ]
  in
  let rec increasing = function
    | a :: (b :: _ as rest) -> a < b && increasing rest
    | _ -> true
  in
  Alcotest.(check bool) "monotone" true (increasing values)

let test_blast_beats_saw_in_operating_region () =
  (* Figure 5's conclusion: between 1e-5 and 1e-4 blast stays well below
     stop-and-wait even with a generous blast timeout. *)
  let t0_blast = Analysis.Error_free.blast costs ~packets:64 in
  let t0_saw1 = Analysis.Error_free.stop_and_wait costs ~packets:1 in
  List.iter
    (fun pn ->
      let blast =
        Analysis.Expected_time.blast ~t0:t0_blast ~tr:(10.0 *. t0_blast) ~pn ~packets:64
      in
      let saw =
        Analysis.Expected_time.stop_and_wait ~t0_packet:t0_saw1 ~tr:(10.0 *. t0_saw1) ~pn
          ~packets:64
      in
      if not (blast < 0.75 *. saw) then
        Alcotest.failf "blast %.2f not well below saw %.2f at pn=%g" blast saw pn)
    [ 1e-7; 1e-6; 1e-5; 1e-4 ]

let test_expected_time_flat_region () =
  (* At the network error rate (1e-5) the expected time is within 0.1% of the
     error-free time — the paper's "flat part of the curve". *)
  let t0 = Analysis.Error_free.blast costs ~packets:64 in
  let e = Analysis.Expected_time.blast ~t0 ~tr:t0 ~pn:1e-5 ~packets:64 in
  Alcotest.(check bool) "flat" true (e < t0 *. 1.002)

(* -------------------------------------------------------------- Variance *)

let test_variance_limits () =
  check_close 1e-12 "pc=0" 0.0 (Analysis.Variance.geometric_sigma ~t_fail:100.0 ~pc:0.0);
  let lo = Analysis.Variance.full_retransmit ~t0:100.0 ~tr:100.0 ~pc:0.01 in
  let hi = Analysis.Variance.full_retransmit ~t0:100.0 ~tr:100.0 ~pc:0.1 in
  Alcotest.(check bool) "monotone in pc" true (hi > lo);
  let with_nack = Analysis.Variance.full_retransmit_nack ~t0:100.0 ~pc:0.1 in
  Alcotest.(check bool) "nack halves sigma when tr=t0" true (with_nack < hi /. 1.9)

let test_paper_variant_close_at_low_pc () =
  let exact = Analysis.Variance.full_retransmit ~t0:173.0 ~tr:173.0 ~pc:1e-3 in
  let paper = Analysis.Variance.paper_full_retransmit ~t0:173.0 ~tr:173.0 ~pc:1e-3 in
  Alcotest.(check bool) "within 0.1%" true (Float.abs (exact -. paper) /. exact < 1e-3)

(* ----------------------------------------------------------- Monte-Carlo *)

let suite_of strategy = Protocol.Suite.Blast strategy

let test_mc_timing_consistency () =
  let timing = Montecarlo.Runner.blast_timing costs ~tr:100.0 in
  check_close 1e-9 "blast t0" (Analysis.Error_free.blast costs ~packets:64)
    (Montecarlo.Runner.error_free_time timing ~packets:64);
  let saw = Montecarlo.Runner.saw_timing costs ~tr:100.0 in
  check_close 1e-9 "saw t0"
    (Analysis.Error_free.stop_and_wait costs ~packets:64)
    (Montecarlo.Runner.error_free_time saw ~packets:64)

let test_mc_no_loss_deterministic () =
  let timing = Montecarlo.Runner.blast_timing costs ~tr:100.0 in
  List.iter
    (fun strategy ->
      let elapsed =
        Montecarlo.Runner.one_transfer
          ~drops:(fun () -> false)
          ~timing ~suite:(suite_of strategy) ~packets:64 ()
      in
      check_close 1e-9
        (Protocol.Blast.strategy_name strategy ^ " error-free")
        (Analysis.Error_free.blast costs ~packets:64)
        elapsed)
    Protocol.Blast.all_strategies

let test_mc_mean_matches_analytic_full_retransmit () =
  let packets = 16 in
  let t0 = Analysis.Error_free.blast costs ~packets in
  let tr = t0 in
  let timing = Montecarlo.Runner.blast_timing costs ~tr in
  let pn = 0.005 in
  let summary =
    (Montecarlo.Runner.sample
       ~sampler:(fun rng -> Montecarlo.Runner.iid rng ~loss:pn)
       ~timing ~suite:(suite_of Protocol.Blast.Full_retransmit) ~packets ~trials:4000 ~seed:5 ())
      .Montecarlo.Runner.elapsed_ms
  in
  let analytic = Analysis.Expected_time.blast ~t0 ~tr ~pn ~packets in
  let mc = Stats.Summary.mean summary in
  (* The analytic failed-attempt cost (T0 + Tr) differs from the simulated
     one (send time + Tr, no ack tail) by the tail — a ~4% effect on the
     retry term at this pn; 5% covers it plus Monte-Carlo noise. *)
  if Float.abs (mc -. analytic) /. analytic > 0.05 then
    Alcotest.failf "MC mean %.3f vs analytic %.3f" mc analytic

let test_mc_saw_mean_matches_analytic () =
  let packets = 16 in
  let t0_packet = Analysis.Error_free.stop_and_wait costs ~packets:1 in
  let tr = 10.0 *. t0_packet in
  let timing = Montecarlo.Runner.saw_timing costs ~tr in
  let pn = 0.01 in
  let summary =
    (Montecarlo.Runner.sample
       ~sampler:(fun rng -> Montecarlo.Runner.iid rng ~loss:pn)
       ~timing ~suite:Protocol.Suite.Stop_and_wait ~packets ~trials:4000 ~seed:6 ())
      .Montecarlo.Runner.elapsed_ms
  in
  let analytic = Analysis.Expected_time.stop_and_wait ~t0_packet ~tr ~pn ~packets in
  let mc = Stats.Summary.mean summary in
  if Float.abs (mc -. analytic) /. analytic > 0.02 then
    Alcotest.failf "MC mean %.3f vs analytic %.3f" mc analytic

let test_mc_sigma_matches_analytic_full_retransmit () =
  let packets = 16 in
  let t0 = Analysis.Error_free.blast costs ~packets in
  let tr = t0 in
  let timing = Montecarlo.Runner.blast_timing costs ~tr in
  let pn = 0.005 in
  let pc = Analysis.Expected_time.blast_failure ~pn ~packets in
  let summary =
    (Montecarlo.Runner.sample
       ~sampler:(fun rng -> Montecarlo.Runner.iid rng ~loss:pn)
       ~timing ~suite:(suite_of Protocol.Blast.Full_retransmit) ~packets ~trials:8000 ~seed:7 ())
      .Montecarlo.Runner.elapsed_ms
  in
  let analytic = Analysis.Variance.full_retransmit ~t0 ~tr ~pc in
  let mc = Stats.Summary.stddev summary in
  (* The paper's geometric model treats every attempt as independent; the
     real receiver accumulates packets across rounds (an ack-lost round makes
     the next attempt nearly certain to succeed), so the measured sigma runs
     somewhat BELOW the closed form. Assert the band rather than equality. *)
  if not (mc < analytic *. 1.02 && mc > 0.7 *. analytic) then
    Alcotest.failf "MC sigma %.3f outside (0.7, 1.02) x analytic %.3f" mc analytic

let test_mc_sigma_strategy_ordering () =
  (* Figure 6's qualitative result at the interface error rate: full
     retransmission without NACK is far worse than the rest; go-back-n is
     close to selective. *)
  let packets = 64 in
  let t0 = Analysis.Error_free.blast costs ~packets in
  let timing = Montecarlo.Runner.blast_timing costs ~tr:t0 in
  let pn = 1e-2 in
  let sigma strategy =
    Stats.Summary.stddev
      (Montecarlo.Runner.sample
         ~sampler:(fun rng -> Montecarlo.Runner.iid rng ~loss:pn)
         ~timing ~suite:(suite_of strategy) ~packets ~trials:3000 ~seed:8 ())
        .Montecarlo.Runner.elapsed_ms
  in
  let full = sigma Protocol.Blast.Full_retransmit in
  let nack = sigma Protocol.Blast.Full_retransmit_nack in
  let gbn = sigma Protocol.Blast.Go_back_n in
  let selective = sigma Protocol.Blast.Selective in
  (* Strict ordering at the knee of the curve. *)
  if not (full > 1.5 *. nack) then
    Alcotest.failf "full %.2f should far exceed nack %.2f" full nack;
  if not (nack > gbn) then Alcotest.failf "nack %.2f should exceed gbn %.2f" nack gbn;
  if not (gbn > selective) then
    Alcotest.failf "gbn %.2f should exceed selective %.2f" gbn selective;
  (* The paper's "go-back-n is only marginally inferior" claim lives at the
     interface error rate (~1e-4..1e-3): there, both strategies' spread is a
     small fraction of the mean and their expected times agree within 1%%. *)
  let at_rate pn strategy =
    (Montecarlo.Runner.sample
       ~sampler:(fun rng -> Montecarlo.Runner.iid rng ~loss:pn)
       ~timing ~suite:(suite_of strategy) ~packets ~trials:3000 ~seed:18 ())
      .Montecarlo.Runner.elapsed_ms
  in
  let gbn4 = at_rate 1e-4 Protocol.Blast.Go_back_n in
  let sel4 = at_rate 1e-4 Protocol.Blast.Selective in
  let mean_gap =
    Float.abs (Stats.Summary.mean gbn4 -. Stats.Summary.mean sel4) /. Stats.Summary.mean sel4
  in
  if mean_gap > 0.01 then Alcotest.failf "gbn/selective mean gap %.3f%%" (100. *. mean_gap);
  let rel_sigma = Stats.Summary.stddev gbn4 /. Stats.Summary.mean gbn4 in
  if rel_sigma > 0.08 then
    Alcotest.failf "gbn spread %.1f%% of mean at interface rate" (100. *. rel_sigma)

let test_mc_expected_time_insensitive_to_strategy () =
  (* Section 3.1.3's stronger conclusion: at realistic error rates even the
     crudest strategy has near-optimal expected time. *)
  let packets = 64 in
  let t0 = Analysis.Error_free.blast costs ~packets in
  let timing = Montecarlo.Runner.blast_timing costs ~tr:t0 in
  let pn = 1e-4 in
  let mean strategy =
    Stats.Summary.mean
      (Montecarlo.Runner.sample
         ~sampler:(fun rng -> Montecarlo.Runner.iid rng ~loss:pn)
         ~timing ~suite:(suite_of strategy) ~packets ~trials:1500 ~seed:9 ())
        .Montecarlo.Runner.elapsed_ms
  in
  let full = mean Protocol.Blast.Full_retransmit in
  let selective = mean Protocol.Blast.Selective in
  Alcotest.(check bool) "within 2%" true (Float.abs (full -. selective) /. selective < 0.02)

let test_mc_burst_sampler () =
  (* A hand-rolled two-state burst sampler; at the same average loss, bursts
     concentrate failures in fewer transfers. Expected time stays in the same
     ballpark; this exercises the pluggable-sampler path. *)
  let packets = 32 in
  let t0 = Analysis.Error_free.blast costs ~packets in
  let timing = Montecarlo.Runner.blast_timing costs ~tr:t0 in
  let burst_sampler rng =
    let in_burst = ref false in
    fun () ->
      if !in_burst then begin
        if Stats.Rng.bernoulli rng ~p:0.25 then in_burst := false;
        !in_burst
      end
      else begin
        if Stats.Rng.bernoulli rng ~p:0.003 then in_burst := true;
        !in_burst
      end
  in
  let summary =
    (Montecarlo.Runner.sample ~sampler:burst_sampler ~timing
       ~suite:(suite_of Protocol.Blast.Go_back_n) ~packets ~trials:800 ~seed:10 ())
      .Montecarlo.Runner.elapsed_ms
  in
  Alcotest.(check bool) "completes and costs more than error-free" true
    (Stats.Summary.mean summary >= t0)

(* ------------------------------------------------------------ Calibrate *)

let test_least_squares_exact () =
  let fit = Analysis.Calibrate.least_squares [ (1.0, 5.0); (2.0, 7.0); (3.0, 9.0) ] in
  check_close 1e-9 "slope" 2.0 fit.Analysis.Calibrate.slope;
  check_close 1e-9 "intercept" 3.0 fit.Analysis.Calibrate.intercept;
  check_close 1e-9 "r2" 1.0 fit.Analysis.Calibrate.r_square

let test_least_squares_rejects_degenerate () =
  Alcotest.check_raises "one point"
    (Invalid_argument "Calibrate.least_squares: need at least two points") (fun () ->
      ignore (Analysis.Calibrate.least_squares [ (1.0, 1.0) ]));
  Alcotest.check_raises "same x"
    (Invalid_argument "Calibrate.least_squares: x values are degenerate") (fun () ->
      ignore (Analysis.Calibrate.least_squares [ (1.0, 1.0); (1.0, 2.0) ]))

let test_recover_constants_from_simulated_ladders () =
  (* Measure the ladders on the event simulator and recover the paper's C
     and Ca from the fitted slopes - the authors' calibration, inverted. *)
  let measure suite n =
    Simnet.Driver.elapsed_ms
      (Simnet.Driver.run ~suite ~config:(Protocol.Config.make ~total_packets:n ()) ())
  in
  let ladder suite = List.map (fun n -> (n, measure suite n)) [ 2; 4; 8; 16; 32; 64 ] in
  let recovered =
    Analysis.Calibrate.recover_constants
      ~blast:(ladder (Protocol.Suite.Blast Protocol.Blast.Go_back_n))
      ~sliding_window:(ladder (Protocol.Suite.Sliding_window { window = max_int }))
      ~transmit_ms:0.8192
  in
  check_close 1e-6 "C recovered" 1.35 recovered.Analysis.Calibrate.copy_data_ms;
  check_close 1e-6 "Ca recovered" 0.17 recovered.Analysis.Calibrate.copy_ack_ms;
  Alcotest.(check bool) "blast fit is clean" true
    (recovered.Analysis.Calibrate.fit_blast.Analysis.Calibrate.r_square > 0.999999)

let test_mc_deterministic_given_seed () =
  let timing = Montecarlo.Runner.blast_timing costs ~tr:100.0 in
  let sample () =
    (Montecarlo.Runner.sample
       ~sampler:(fun rng -> Montecarlo.Runner.iid rng ~loss:0.02)
       ~timing ~suite:(suite_of Protocol.Blast.Go_back_n) ~packets:32 ~trials:50 ~seed:99 ())
      .Montecarlo.Runner.elapsed_ms
  in
  let a = sample () and b = sample () in
  check_close 1e-12 "identical mean" (Stats.Summary.mean a) (Stats.Summary.mean b);
  check_close 1e-12 "identical sd" (Stats.Summary.stddev a) (Stats.Summary.stddev b)

let test_mc_covers_all_suites () =
  (* Every protocol the library offers can run under the Monte-Carlo
     accountant, not just the blast family. *)
  let timing = Montecarlo.Runner.blast_timing costs ~tr:50.0 in
  List.iter
    (fun suite ->
      let elapsed =
        Montecarlo.Runner.one_transfer
          ~drops:(fun () -> false)
          ~timing ~suite ~packets:8 ()
      in
      if not (elapsed > 0.0) then
        Alcotest.failf "%s: nonpositive elapsed" (Protocol.Suite.name suite))
    [
      Protocol.Suite.Stop_and_wait;
      Protocol.Suite.Sliding_window { window = max_int };
      Protocol.Suite.Blast Protocol.Blast.Full_retransmit;
      Protocol.Suite.Blast Protocol.Blast.Selective;
      Protocol.Suite.Multi_blast { strategy = Protocol.Blast.Go_back_n; chunk_packets = 3 };
    ]

let test_mc_gives_up_at_total_loss () =
  let timing = Montecarlo.Runner.blast_timing costs ~tr:10.0 in
  Alcotest.(check bool) "raises" true
    (try
       ignore
         (Montecarlo.Runner.one_transfer ~max_attempts:5
            ~drops:(fun () -> true)
            ~timing ~suite:(suite_of Protocol.Blast.Full_retransmit) ~packets:4 ());
       false
     with Failure _ -> true)

let test_mc_sample_counts_failures () =
  (* At total loss every trial gives up; [sample] must report that in
     [failures] instead of raising, and the summary stays empty. *)
  let timing = Montecarlo.Runner.blast_timing costs ~tr:10.0 in
  let sample =
    Montecarlo.Runner.sample ~max_attempts:5
      ~sampler:(fun _rng () -> true)
      ~timing ~suite:(suite_of Protocol.Blast.Full_retransmit) ~packets:4 ~trials:100
      ~seed:21 ()
  in
  Alcotest.(check int) "all trials failed" 100 sample.Montecarlo.Runner.failures;
  Alcotest.(check int) "summary is empty" 0
    (Stats.Summary.count sample.Montecarlo.Runner.elapsed_ms)

let test_mc_sample_mixed_failures () =
  (* A drop rate high enough that some (but not all) trials exhaust their
     attempts: successes and failures must partition the trial count. *)
  let timing = Montecarlo.Runner.blast_timing costs ~tr:10.0 in
  let sample =
    Montecarlo.Runner.sample ~max_attempts:2
      ~sampler:(fun rng -> Montecarlo.Runner.iid rng ~loss:0.4)
      ~timing ~suite:(suite_of Protocol.Blast.Full_retransmit) ~packets:6 ~trials:400
      ~seed:22 ()
  in
  let succeeded = Stats.Summary.count sample.Montecarlo.Runner.elapsed_ms in
  let failed = sample.Montecarlo.Runner.failures in
  Alcotest.(check int) "partition" 400 (succeeded + failed);
  Alcotest.(check bool) "some failed" true (failed > 0);
  Alcotest.(check bool) "some succeeded" true (succeeded > 0)

let () =
  Alcotest.run "analysis-montecarlo"
    [
      ( "error-free",
        [
          Alcotest.test_case "spot values" `Quick test_error_free_spot_values;
          Alcotest.test_case "protocol ordering" `Quick test_error_free_ordering;
          Alcotest.test_case "double-buffered regimes" `Quick test_double_buffered_regimes;
          Alcotest.test_case "utilization" `Quick test_utilization_value;
        ] );
      ( "expected-time",
        [
          Alcotest.test_case "failure probabilities" `Quick test_failure_probs;
          Alcotest.test_case "limits" `Quick test_expected_time_limits;
          Alcotest.test_case "monotone in pn" `Quick test_expected_time_monotone_in_pn;
          Alcotest.test_case "blast beats saw in operating region" `Quick
            test_blast_beats_saw_in_operating_region;
          Alcotest.test_case "flat region at network error rate" `Quick
            test_expected_time_flat_region;
        ] );
      ( "calibrate",
        [
          Alcotest.test_case "least squares exact" `Quick test_least_squares_exact;
          Alcotest.test_case "rejects degenerate input" `Quick
            test_least_squares_rejects_degenerate;
          Alcotest.test_case "recovers C and Ca from ladders" `Quick
            test_recover_constants_from_simulated_ladders;
        ] );
      ( "variance",
        [
          Alcotest.test_case "limits and monotonicity" `Quick test_variance_limits;
          Alcotest.test_case "paper variant close at low pc" `Quick
            test_paper_variant_close_at_low_pc;
        ] );
      ( "montecarlo",
        [
          Alcotest.test_case "timing consistency" `Quick test_mc_timing_consistency;
          Alcotest.test_case "no loss deterministic" `Quick test_mc_no_loss_deterministic;
          Alcotest.test_case "mean matches analytic (blast)" `Slow
            test_mc_mean_matches_analytic_full_retransmit;
          Alcotest.test_case "mean matches analytic (saw)" `Slow test_mc_saw_mean_matches_analytic;
          Alcotest.test_case "sigma matches analytic (full retx)" `Slow
            test_mc_sigma_matches_analytic_full_retransmit;
          Alcotest.test_case "sigma strategy ordering (Figure 6)" `Slow
            test_mc_sigma_strategy_ordering;
          Alcotest.test_case "expected time insensitive to strategy" `Slow
            test_mc_expected_time_insensitive_to_strategy;
          Alcotest.test_case "burst sampler" `Quick test_mc_burst_sampler;
          Alcotest.test_case "deterministic given seed" `Quick test_mc_deterministic_given_seed;
          Alcotest.test_case "covers all suites" `Quick test_mc_covers_all_suites;
          Alcotest.test_case "gives up at total loss" `Quick test_mc_gives_up_at_total_loss;
          Alcotest.test_case "sample counts failures" `Quick test_mc_sample_counts_failures;
          Alcotest.test_case "sample partitions successes and failures" `Quick
            test_mc_sample_mixed_failures;
        ] );
    ]
