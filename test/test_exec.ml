(* Tests for the domain-parallel execution core and its contract: results
   are bit-for-bit identical whatever the parallelism, exceptions surface
   without killing the pool, and the shared observability sinks survive
   being hammered from several domains at once. *)

let costs = Analysis.Costs.standalone

(* ------------------------------------------------------------------ pool *)

let test_init_index_order () =
  Exec.Pool.with_pool ~jobs:4 (fun pool ->
      let results = Exec.Pool.init ~pool 100 ~f:(fun i -> i * i) in
      Alcotest.(check (array int)) "index order" (Array.init 100 (fun i -> i * i)) results)

let test_map_preserves_order () =
  let inputs = List.init 37 (fun i -> 37 - i) in
  let doubled = Exec.Pool.map ~jobs:4 inputs ~f:(fun x -> 2 * x) in
  Alcotest.(check (list int)) "list order" (List.map (fun x -> 2 * x) inputs) doubled

let test_fold_merges_in_index_order () =
  (* String concatenation is non-commutative, so any out-of-order merge or
     worker-dependent grouping would change the result. *)
  let expected = String.concat "" (List.init 50 string_of_int) in
  let folded =
    Exec.Pool.fold ~jobs:4 50 ~f:string_of_int ~merge:( ^ ) ~init:""
  in
  Alcotest.(check string) "index-order merge" expected folded;
  let serial = Exec.Pool.fold ~jobs:1 50 ~f:string_of_int ~merge:( ^ ) ~init:"" in
  Alcotest.(check string) "jobs=1 identical" folded serial

let test_pool_survives_raising_tasks () =
  Exec.Pool.with_pool ~jobs:4 (fun pool ->
      (* Several tasks raise; the whole batch must still drain, the
         lowest-index exception must be the one reported, and the pool must
         stay usable for later batches. *)
      let ran = Atomic.make 0 in
      (try
         ignore
           (Exec.Pool.init ~pool 64 ~f:(fun i ->
                ignore (Atomic.fetch_and_add ran 1 : int);
                if i mod 7 = 3 then failwith (Printf.sprintf "task %d" i);
                i)
            : int array);
         Alcotest.fail "expected a Failure"
       with Failure msg -> Alcotest.(check string) "lowest index wins" "task 3" msg);
      Alcotest.(check int) "batch fully drained" 64 (Atomic.get ran);
      let again = Exec.Pool.init ~pool 16 ~f:(fun i -> i + 1) in
      Alcotest.(check (array int)) "pool still works" (Array.init 16 (fun i -> i + 1)) again)

let test_empty_and_single () =
  Alcotest.(check (list int)) "empty map" [] (Exec.Pool.map ~jobs:4 [] ~f:(fun x -> x));
  let one = Exec.Pool.init ~jobs:4 1 ~f:(fun i -> i + 41) in
  Alcotest.(check (array int)) "single task" [| 41 |] one

let test_default_jobs_env () =
  Unix.putenv "LANREPRO_JOBS" "3";
  Alcotest.(check int) "env override" 3 (Exec.Pool.default_jobs ());
  Unix.putenv "LANREPRO_JOBS" "not-a-number";
  Alcotest.(check int) "garbage falls back" (Domain.recommended_domain_count ())
    (Exec.Pool.default_jobs ());
  Unix.putenv "LANREPRO_JOBS" "";
  Alcotest.(check int) "unset falls back" (Domain.recommended_domain_count ())
    (Exec.Pool.default_jobs ())

(* ----------------------------------------------------------- determinism *)

let bits = Int64.bits_of_float

let check_summary_identical label (a : Stats.Summary.t) (b : Stats.Summary.t) =
  Alcotest.(check int) (label ^ ": count") (Stats.Summary.count a) (Stats.Summary.count b);
  Alcotest.(check int64) (label ^ ": mean") (bits (Stats.Summary.mean a))
    (bits (Stats.Summary.mean b));
  Alcotest.(check int64) (label ^ ": stddev")
    (bits (Stats.Summary.stddev a))
    (bits (Stats.Summary.stddev b));
  Alcotest.(check int64) (label ^ ": min") (bits (Stats.Summary.min a))
    (bits (Stats.Summary.min b));
  Alcotest.(check int64) (label ^ ": max") (bits (Stats.Summary.max a))
    (bits (Stats.Summary.max b))

let mc_sample ~jobs ~pn ~trials ~seed =
  let timing =
    Montecarlo.Runner.blast_timing costs ~tr:(Analysis.Error_free.blast costs ~packets:32)
  in
  Montecarlo.Runner.sample ~jobs
    ~sampler:(fun rng -> Montecarlo.Runner.iid rng ~loss:pn)
    ~timing
    ~suite:(Protocol.Suite.Blast Protocol.Blast.Go_back_n)
    ~packets:32 ~trials ~seed ()

let test_mc_bit_identical_across_jobs () =
  (* The ISSUE's acceptance bar: 2000 trials, byte-identical statistics at
     jobs=1 and jobs>1. *)
  let a = mc_sample ~jobs:1 ~pn:1e-3 ~trials:2000 ~seed:17 in
  let b = mc_sample ~jobs:4 ~pn:1e-3 ~trials:2000 ~seed:17 in
  check_summary_identical "mc 2000 trials" a.Montecarlo.Runner.elapsed_ms
    b.Montecarlo.Runner.elapsed_ms;
  Alcotest.(check int) "failures" a.Montecarlo.Runner.failures b.Montecarlo.Runner.failures

let prop_mc_jobs_invariant =
  QCheck.Test.make ~name:"mc sample invariant under jobs" ~count:20
    QCheck.(triple (int_range 1 300) (int_range 0 1000) (float_range 0.0 0.05))
    (fun (trials, seed, pn) ->
      let a = mc_sample ~jobs:1 ~pn ~trials ~seed in
      let b = mc_sample ~jobs:4 ~pn ~trials ~seed in
      let sa = a.Montecarlo.Runner.elapsed_ms and sb = b.Montecarlo.Runner.elapsed_ms in
      a.Montecarlo.Runner.failures = b.Montecarlo.Runner.failures
      && Stats.Summary.count sa = Stats.Summary.count sb
      && Int64.equal (bits (Stats.Summary.mean sa)) (bits (Stats.Summary.mean sb))
      && Int64.equal (bits (Stats.Summary.stddev sa)) (bits (Stats.Summary.stddev sb))
      && Int64.equal (bits (Stats.Summary.min sa)) (bits (Stats.Summary.min sb))
      && Int64.equal (bits (Stats.Summary.max sa)) (bits (Stats.Summary.max sb)))

let test_campaign_bit_identical_across_jobs () =
  let spec =
    Simnet.Campaign.default ~network_loss:0.02 ~interface_loss:1e-3 ~trials:60 ~seed:5
      ~suite:(Protocol.Suite.Blast Protocol.Blast.Go_back_n)
      ~config:(Protocol.Config.make ~total_packets:16 ())
      ()
  in
  let a = Simnet.Campaign.run ~jobs:1 spec in
  let b = Simnet.Campaign.run ~jobs:4 spec in
  check_summary_identical "campaign elapsed" a.Simnet.Campaign.elapsed_ms
    b.Simnet.Campaign.elapsed_ms;
  check_summary_identical "campaign retransmissions" a.Simnet.Campaign.retransmissions
    b.Simnet.Campaign.retransmissions;
  Alcotest.(check int) "failures" a.Simnet.Campaign.failures b.Simnet.Campaign.failures

let test_sweep_bit_identical_across_jobs () =
  let run jobs =
    Simnet.Sweep.run ~trials:8 ~seed:2 ~jobs
      ~suites:
        [ Protocol.Suite.Stop_and_wait; Protocol.Suite.Blast Protocol.Blast.Go_back_n ]
      ~packets:[ 4; 8 ] ~losses:[ 0.0; 0.01 ] ()
  in
  let a = run 1 and b = run 4 in
  Alcotest.(check int) "cell count"
    (List.length a.Simnet.Sweep.cells)
    (List.length b.Simnet.Sweep.cells);
  List.iter2
    (fun (ca : Simnet.Sweep.cell) (cb : Simnet.Sweep.cell) ->
      Alcotest.(check string) "suite"
        (Protocol.Suite.name ca.Simnet.Sweep.suite)
        (Protocol.Suite.name cb.Simnet.Sweep.suite);
      Alcotest.(check int) "packets" ca.Simnet.Sweep.packets cb.Simnet.Sweep.packets;
      Alcotest.(check int64) "loss" (bits ca.Simnet.Sweep.network_loss)
        (bits cb.Simnet.Sweep.network_loss);
      Alcotest.(check int64) "mean" (bits ca.Simnet.Sweep.mean_ms)
        (bits cb.Simnet.Sweep.mean_ms);
      Alcotest.(check int64) "stddev" (bits ca.Simnet.Sweep.stddev_ms)
        (bits cb.Simnet.Sweep.stddev_ms);
      Alcotest.(check int64) "retransmissions" (bits ca.Simnet.Sweep.retransmissions)
        (bits cb.Simnet.Sweep.retransmissions);
      Alcotest.(check int) "failures" ca.Simnet.Sweep.failures cb.Simnet.Sweep.failures)
    a.Simnet.Sweep.cells b.Simnet.Sweep.cells

(* ----------------------------------------------------- obs domain safety *)

let test_metrics_domain_safety () =
  let metrics = Obs.Metrics.create () in
  let c = Obs.Metrics.counter metrics "hammered" in
  let h = Obs.Metrics.histogram metrics ~lo:0.0 ~hi:100.0 ~bins:10 "latency" in
  let s = Obs.Metrics.summary metrics "spread" in
  let per_domain = 25_000 in
  let hammer () =
    for i = 1 to per_domain do
      Obs.Metrics.inc c;
      if i mod 100 = 0 then begin
        Obs.Metrics.observe h (float_of_int (i mod 100));
        Obs.Metrics.record s (float_of_int i)
      end
    done
  in
  let domains = List.init 4 (fun _ -> Domain.spawn hammer) in
  List.iter Domain.join domains;
  Alcotest.(check int) "exact counter total" (4 * per_domain)
    (Obs.Metrics.counter_value c);
  (* The locked instruments must have seen every observation; their exact
     totals show up in the JSON snapshot. *)
  let json = Obs.Json.to_string (Obs.Metrics.to_json metrics) in
  Alcotest.(check bool) "snapshot renders" true (String.length json > 0);
  (* Registration from several domains must converge on one instrument. *)
  let registered =
    List.init 4 (fun _ -> Domain.spawn (fun () -> Obs.Metrics.counter metrics "shared"))
  in
  let counters = List.map Domain.join registered in
  List.iter (fun c' -> Obs.Metrics.inc c') counters;
  Alcotest.(check int) "one shared instrument" 4
    (Obs.Metrics.counter_value (Obs.Metrics.counter metrics "shared"))

let test_recorder_domain_safety () =
  let recorder = Obs.Recorder.create ~capacity:100_000 () in
  let per_domain = 5_000 in
  let domains =
    List.init 4 (fun d ->
        Domain.spawn (fun () ->
            for i = 1 to per_domain do
              Obs.Recorder.emit recorder
                ~lane:(Printf.sprintf "domain-%d" d)
                ~kind:Obs.Event.Tx ~seq:i ()
            done))
  in
  List.iter Domain.join domains;
  Alcotest.(check int) "every event recorded" (4 * per_domain) (Obs.Recorder.total recorder);
  let events = Obs.Recorder.events recorder in
  Alcotest.(check int) "ring holds them all" (4 * per_domain) (List.length events);
  (* Timestamps from the default logical clock must be strictly increasing
     after sorting — i.e. no two events got the same tick. *)
  let ts = List.map (fun (e : Obs.Event.t) -> e.Obs.Event.ts_ns) events in
  let sorted = List.sort compare ts in
  let distinct = List.sort_uniq compare ts in
  Alcotest.(check int) "no duplicated ticks" (List.length sorted) (List.length distinct)

let qcheck tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "exec"
    [
      ( "pool",
        [
          Alcotest.test_case "init in index order" `Quick test_init_index_order;
          Alcotest.test_case "map preserves order" `Quick test_map_preserves_order;
          Alcotest.test_case "fold merges in index order" `Quick
            test_fold_merges_in_index_order;
          Alcotest.test_case "survives raising tasks" `Quick test_pool_survives_raising_tasks;
          Alcotest.test_case "empty and single" `Quick test_empty_and_single;
        ] );
      ( "determinism",
        Alcotest.test_case "mc 2000 trials bit-identical" `Quick
          test_mc_bit_identical_across_jobs
        :: Alcotest.test_case "campaign bit-identical" `Quick
             test_campaign_bit_identical_across_jobs
        :: Alcotest.test_case "sweep bit-identical" `Quick test_sweep_bit_identical_across_jobs
        :: qcheck [ prop_mc_jobs_invariant ] );
      ( "obs-domain-safety",
        [
          Alcotest.test_case "metrics exact counts from 4 domains" `Quick
            test_metrics_domain_safety;
          Alcotest.test_case "recorder exact counts from 4 domains" `Quick
            test_recorder_domain_safety;
        ] );
      (* Env mutation last: it leaks into the process environment. *)
      ( "config",
        [ Alcotest.test_case "default_jobs env override" `Quick test_default_jobs_env ] );
    ]
