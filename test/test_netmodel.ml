(* Tests for the LAN hardware model: units, parameters, error models, and the
   wire/station timing semantics that the paper's formulas rest on. *)

open Eventsim

let ns_of_span = Time.span_to_ns
let check_ns = Alcotest.(check int)

(* ---------------------------------------------------------------- Units *)

let test_transmit_span_exact () =
  check_ns "1 KiB at 10 Mb/s" 819_200
    (ns_of_span (Netmodel.Units.transmit_span ~bandwidth_bps:10_000_000 ~bytes:1024));
  check_ns "64 B at 10 Mb/s" 51_200
    (ns_of_span (Netmodel.Units.transmit_span ~bandwidth_bps:10_000_000 ~bytes:64));
  check_ns "zero bytes" 0
    (ns_of_span (Netmodel.Units.transmit_span ~bandwidth_bps:10_000_000 ~bytes:0))

let test_units_sizes () =
  Alcotest.(check int) "kib" 65_536 (Netmodel.Units.kib 64);
  Alcotest.(check int) "mib" 2_097_152 (Netmodel.Units.mib 2)

(* --------------------------------------------------------------- Params *)

let params = Netmodel.Params.standalone

let test_params_calibration () =
  check_ns "T" 819_200 (ns_of_span (Netmodel.Params.data_transmit params));
  check_ns "Ta" 51_200 (ns_of_span (Netmodel.Params.ack_transmit params));
  check_ns "C exact at 1024" 1_350_000 (ns_of_span (Netmodel.Params.copy_cost params ~bytes:1024));
  check_ns "Ca exact at 64" 170_000 (ns_of_span (Netmodel.Params.copy_cost params ~bytes:64))

let test_params_copy_interpolation () =
  let cost bytes = ns_of_span (Netmodel.Params.copy_cost params ~bytes) in
  Alcotest.(check bool) "monotone" true (cost 64 < cost 512 && cost 512 < cost 1024);
  (* Midpoint of the linear model. *)
  let mid = cost 544 in
  Alcotest.(check bool) "midpoint between anchors"
    true (abs (mid - ((cost 64 + cost 1024) / 2)) < 1000)

let test_params_vkernel_constants () =
  let k = Netmodel.Params.vkernel in
  check_ns "kernel C" 1_830_000 (ns_of_span (Netmodel.Params.copy_cost k ~bytes:1024));
  check_ns "kernel Ca" 670_000 (ns_of_span (Netmodel.Params.copy_cost k ~bytes:64))

let test_params_packets_for () =
  Alcotest.(check int) "one" 1 (Netmodel.Params.packets_for params ~bytes:1024);
  Alcotest.(check int) "just over" 2 (Netmodel.Params.packets_for params ~bytes:1025);
  Alcotest.(check int) "64k" 64 (Netmodel.Params.packets_for params ~bytes:65_536)

let test_params_double_buffered () =
  let d = Netmodel.Params.double_buffered params in
  Alcotest.(check int) "tx buffers" 2 d.Netmodel.Params.tx_buffers;
  Alcotest.(check bool) "no busy wait" false d.Netmodel.Params.busy_wait_tx

(* ---------------------------------------------------------- Error_model *)

let test_perfect_never_drops () =
  let m = Netmodel.Error_model.perfect () in
  for _ = 1 to 1000 do
    Alcotest.(check bool) "no drop" false (Netmodel.Error_model.drops m)
  done

let test_iid_rate () =
  let rng = Stats.Rng.create ~seed:101 in
  let m = Netmodel.Error_model.iid rng ~loss:0.05 in
  let n = 100_000 in
  let drops = ref 0 in
  for _ = 1 to n do
    if Netmodel.Error_model.drops m then incr drops
  done;
  Alcotest.(check (float 0.005)) "empirical rate" 0.05 (float_of_int !drops /. float_of_int n);
  Alcotest.(check (float 1e-12)) "average_loss" 0.05 (Netmodel.Error_model.average_loss m)

let test_gilbert_elliott_stationary_rate () =
  let rng = Stats.Rng.create ~seed:102 in
  let m = Netmodel.Error_model.matched_gilbert_elliott rng ~mean_loss:0.02 ~burst_length:5.0 in
  Alcotest.(check (float 1e-9)) "stationary loss" 0.02 (Netmodel.Error_model.average_loss m);
  let n = 200_000 in
  let drops = ref 0 in
  for _ = 1 to n do
    if Netmodel.Error_model.drops m then incr drops
  done;
  Alcotest.(check (float 0.005)) "empirical" 0.02 (float_of_int !drops /. float_of_int n)

let test_gilbert_elliott_bursts () =
  let rng = Stats.Rng.create ~seed:103 in
  let m = Netmodel.Error_model.matched_gilbert_elliott rng ~mean_loss:0.05 ~burst_length:8.0 in
  (* Measure the mean run length of consecutive drops; should be near the
     configured burst length, and far from the iid value 1/(1-p) ~ 1.05. *)
  let run = ref 0 and runs = ref [] in
  for _ = 1 to 500_000 do
    if Netmodel.Error_model.drops m then incr run
    else if !run > 0 then begin
      runs := float_of_int !run :: !runs;
      run := 0
    end
  done;
  let mean = List.fold_left ( +. ) 0.0 !runs /. float_of_int (List.length !runs) in
  Alcotest.(check bool) "bursty" true (mean > 4.0 && mean < 12.0)

(* --------------------------------------------------- Wire/Station timing *)

(* Expected constants, in nanoseconds. *)
let c = 1_350_000
let ca = 170_000
let t_data = 819_200
let t_ack = 51_200
let tau = 10_000

type probe = Data | Ack

let setup ?(params = params) ?network_error ?interface_error () =
  let sim = Sim.create () in
  let trace = Trace.create () in
  let wire = Netmodel.Wire.create sim ~params ?network_error ?interface_error ~trace () in
  let a = Netmodel.Station.create wire ~name:"a" in
  let b = Netmodel.Station.create wire ~name:"b" in
  (sim, wire, trace, a, b)

let test_single_exchange_elapsed () =
  let sim, _, _, a, b = setup () in
  let env = Proc.env sim in
  let finished = ref (-1) in
  Proc.spawn env (fun () ->
      Netmodel.Station.send a ~dst:(Netmodel.Station.address b) ~bytes:1024 Data;
      let frame = Netmodel.Station.recv a in
      Alcotest.(check int) "ack size" 64 frame.Netmodel.Wire.bytes;
      finished := Time.to_ns (Sim.now sim));
  Proc.spawn env (fun () ->
      let frame = Netmodel.Station.recv b in
      Alcotest.(check int) "data size" 1024 frame.Netmodel.Wire.bytes;
      Netmodel.Station.send b ~dst:(Netmodel.Station.address a) ~bytes:64 Ack);
  Sim.run sim;
  (* C + T + tau + C + Ca + Ta + tau + Ca: the paper's Figure 2 path. *)
  check_ns "exchange elapsed" (c + t_data + tau + c + ca + t_ack + tau + ca) !finished

let test_exchange_breakdown_matches_table2 () =
  let sim, _, trace, a, b = setup () in
  let env = Proc.env sim in
  Proc.spawn env (fun () ->
      Netmodel.Station.send a ~dst:(Netmodel.Station.address b) ~bytes:1024 Data;
      ignore (Netmodel.Station.recv a));
  Proc.spawn env (fun () ->
      ignore (Netmodel.Station.recv b);
      Netmodel.Station.send b ~dst:(Netmodel.Station.address a) ~bytes:64 Ack);
  Sim.run sim;
  let totals = Trace.total_by_kind trace in
  let find k = ns_of_span (List.assoc k totals) in
  check_ns "copy data in" c (find "copy-data-in");
  check_ns "copy data out" c (find "copy-data-out");
  check_ns "copy ack in" ca (find "copy-ack-in");
  check_ns "copy ack out" ca (find "copy-ack-out");
  check_ns "transmit data" t_data (find "transmit-data");
  check_ns "transmit ack" t_ack (find "transmit-ack")

let test_blast_pipeline_period () =
  (* Three data packets sent back to back with a single-buffered interface:
     transmissions must end at k * (C + T), the Figure 3.b pipeline. *)
  let sim, wire, trace, a, b = setup () in
  let env = Proc.env sim in
  let n = 3 in
  Proc.spawn env (fun () ->
      for _ = 1 to n do
        Netmodel.Station.send a ~dst:(Netmodel.Station.address b) ~bytes:1024 Data
      done);
  Proc.spawn env (fun () ->
      for _ = 1 to n do
        ignore (Netmodel.Station.recv b)
      done);
  Sim.run sim;
  let tx_stops =
    Trace.spans trace
    |> List.filter (fun s -> s.Trace.kind = "transmit-data")
    |> List.map (fun s -> Time.to_ns s.Trace.stop)
  in
  Alcotest.(check (list int)) "pipeline"
    [ c + t_data; 2 * (c + t_data); 3 * (c + t_data) ]
    tx_stops;
  Alcotest.(check int) "all delivered" n (Netmodel.Wire.counters wire).Netmodel.Wire.delivered

let test_double_buffered_overlap () =
  (* With two buffers and no busy-wait (T < C here), copies dominate: the
     k-th transmission ends at k*C + T — Figure 3.d. *)
  let p = Netmodel.Params.double_buffered params in
  let sim, _, trace, a, b = setup ~params:p () in
  let env = Proc.env sim in
  let n = 3 in
  Proc.spawn env (fun () ->
      for _ = 1 to n do
        Netmodel.Station.send a ~dst:(Netmodel.Station.address b) ~bytes:1024 Data
      done);
  Proc.spawn env (fun () ->
      for _ = 1 to n do
        ignore (Netmodel.Station.recv b)
      done);
  Sim.run sim;
  let tx_stops =
    Trace.spans trace
    |> List.filter (fun s -> s.Trace.kind = "transmit-data")
    |> List.map (fun s -> Time.to_ns s.Trace.stop)
  in
  Alcotest.(check (list int)) "overlapped pipeline"
    [ c + t_data; (2 * c) + t_data; (3 * c) + t_data ]
    tx_stops

let test_network_loss_counted () =
  let rng = Stats.Rng.create ~seed:104 in
  let sim, wire, _, a, b =
    setup ~network_error:(Netmodel.Error_model.iid rng ~loss:1.0) ()
  in
  let env = Proc.env sim in
  Proc.spawn env (fun () ->
      Netmodel.Station.send a ~dst:(Netmodel.Station.address b) ~bytes:1024 Data);
  Sim.run sim;
  let counters = Netmodel.Wire.counters wire in
  Alcotest.(check int) "lost" 1 counters.Netmodel.Wire.lost_network;
  Alcotest.(check int) "none delivered" 0 counters.Netmodel.Wire.delivered;
  Alcotest.(check int) "rx empty" 0 (Netmodel.Station.rx_pending b)

let test_interface_loss_counted () =
  let rng = Stats.Rng.create ~seed:105 in
  let sim, wire, _, a, b =
    setup ~interface_error:(Netmodel.Error_model.iid rng ~loss:1.0) ()
  in
  let env = Proc.env sim in
  Proc.spawn env (fun () ->
      Netmodel.Station.send a ~dst:(Netmodel.Station.address b) ~bytes:1024 Data);
  Sim.run sim;
  Alcotest.(check int) "interface loss" 1 (Netmodel.Wire.counters wire).Netmodel.Wire.lost_interface

let test_overrun_when_receiver_stalls () =
  (* Nobody drains station b (rx_buffers = 2): the third arrival is an
     overrun drop, modelling the 3-Com full-speed failure mode. *)
  let sim, wire, _, a, b = setup () in
  let env = Proc.env sim in
  Proc.spawn env (fun () ->
      for _ = 1 to 3 do
        Netmodel.Station.send a ~dst:(Netmodel.Station.address b) ~bytes:1024 Data
      done);
  Sim.run sim;
  let counters = Netmodel.Wire.counters wire in
  Alcotest.(check int) "overrun" 1 counters.Netmodel.Wire.lost_overrun;
  Alcotest.(check int) "buffered" 2 (Netmodel.Station.rx_pending b);
  Alcotest.(check int) "flush" 2 (Netmodel.Station.flush_rx b)

let test_unknown_destination_rejected () =
  let sim, _, _, a, _ = setup () in
  let env = Proc.env sim in
  let raised = ref false in
  Proc.spawn env (fun () ->
      try Netmodel.Station.send a ~dst:999 ~bytes:64 Ack
      with Invalid_argument _ -> raised := true);
  Sim.run sim;
  Alcotest.(check bool) "rejected" true !raised

let test_utilization_of_blast () =
  (* For an N-packet one-way blast the wire is busy N*T out of N*(C+T). *)
  let sim, wire, _, a, b = setup () in
  let env = Proc.env sim in
  let n = 8 in
  Proc.spawn env (fun () ->
      for _ = 1 to n do
        Netmodel.Station.send a ~dst:(Netmodel.Station.address b) ~bytes:1024 Data
      done);
  Proc.spawn env (fun () ->
      for _ = 1 to n do
        ignore (Netmodel.Station.recv b)
      done);
  Sim.run sim;
  let expected =
    float_of_int (n * t_data) /. float_of_int (Time.to_ns (Sim.now sim))
  in
  Alcotest.(check (float 0.01)) "utilization" expected (Netmodel.Wire.utilization wire)

(* ------------------------------------------------------------------ DMA *)

let test_dma_frees_host_cpu () =
  let run params =
    Simnet.Driver.run ~params
      ~suite:(Protocol.Suite.Blast Protocol.Blast.Go_back_n)
      ~config:(Protocol.Config.make ~total_packets:32 ())
      ()
  in
  let host = run Netmodel.Params.standalone in
  let dma = run (Netmodel.Params.with_dma Netmodel.Params.standalone) in
  Alcotest.(check bool) "both succeed" true
    (host.Simnet.Driver.outcome = Protocol.Action.Success
    && dma.Simnet.Driver.outcome = Protocol.Action.Success);
  let share result =
    Time.span_to_ms result.Simnet.Driver.sender_cpu_busy
    /. Simnet.Driver.elapsed_ms result
  in
  Alcotest.(check bool) "host copies saturate the CPU" true (share host > 0.9);
  Alcotest.(check bool) "DMA frees the CPU" true (share dma < 0.1);
  (* The slow on-board processor makes the transfer slower, not faster. *)
  Alcotest.(check bool) "slow DMA costs elapsed time" true
    (Simnet.Driver.elapsed_ms dma > Simnet.Driver.elapsed_ms host)

let test_dma_data_still_intact () =
  let config = Protocol.Config.make ~total_packets:7 () in
  let payload = Protocol.Machine.constant_payload config in
  let rng = Stats.Rng.create ~seed:71 in
  let result =
    Simnet.Driver.run
      ~params:(Netmodel.Params.with_dma Netmodel.Params.standalone)
      ~network_error:(Netmodel.Error_model.iid rng ~loss:0.05)
      ~payload
      ~suite:(Protocol.Suite.Blast Protocol.Blast.Selective)
      ~config ()
  in
  Alcotest.(check bool) "success" true (result.Simnet.Driver.outcome = Protocol.Action.Success);
  List.iter
    (fun (seq, body) -> Alcotest.(check string) "payload" (payload seq) body)
    result.Simnet.Driver.received

let test_dma_cost_scaling () =
  let p = Netmodel.Params.with_dma ~copy_scale:2.0 Netmodel.Params.standalone in
  Alcotest.(check int) "scaled copy" 2_700_000
    (Time.span_to_ns (Netmodel.Params.dma_copy_cost p ~bytes:1024));
  Alcotest.check_raises "bad scale"
    (Invalid_argument "Params.with_dma: copy_scale must be positive") (fun () ->
      ignore (Netmodel.Params.with_dma ~copy_scale:0.0 Netmodel.Params.standalone))

let () =
  Alcotest.run "netmodel"
    [
      ( "units",
        [
          Alcotest.test_case "transmit span exact" `Quick test_transmit_span_exact;
          Alcotest.test_case "sizes" `Quick test_units_sizes;
        ] );
      ( "params",
        [
          Alcotest.test_case "calibration" `Quick test_params_calibration;
          Alcotest.test_case "copy interpolation" `Quick test_params_copy_interpolation;
          Alcotest.test_case "vkernel constants" `Quick test_params_vkernel_constants;
          Alcotest.test_case "packets_for" `Quick test_params_packets_for;
          Alcotest.test_case "double buffered" `Quick test_params_double_buffered;
        ] );
      ( "error_model",
        [
          Alcotest.test_case "perfect" `Quick test_perfect_never_drops;
          Alcotest.test_case "iid rate" `Quick test_iid_rate;
          Alcotest.test_case "gilbert-elliott stationary" `Quick test_gilbert_elliott_stationary_rate;
          Alcotest.test_case "gilbert-elliott bursts" `Quick test_gilbert_elliott_bursts;
        ] );
      ( "dma",
        [
          Alcotest.test_case "frees host cpu" `Quick test_dma_frees_host_cpu;
          Alcotest.test_case "data intact under loss" `Quick test_dma_data_still_intact;
          Alcotest.test_case "cost scaling" `Quick test_dma_cost_scaling;
        ] );
      ( "wire-station",
        [
          Alcotest.test_case "single exchange elapsed" `Quick test_single_exchange_elapsed;
          Alcotest.test_case "breakdown matches Table 2" `Quick test_exchange_breakdown_matches_table2;
          Alcotest.test_case "blast pipeline period" `Quick test_blast_pipeline_period;
          Alcotest.test_case "double-buffered overlap" `Quick test_double_buffered_overlap;
          Alcotest.test_case "network loss counted" `Quick test_network_loss_counted;
          Alcotest.test_case "interface loss counted" `Quick test_interface_loss_counted;
          Alcotest.test_case "overrun when receiver stalls" `Quick test_overrun_when_receiver_stalls;
          Alcotest.test_case "unknown destination rejected" `Quick test_unknown_destination_rejected;
          Alcotest.test_case "utilization of blast" `Quick test_utilization_of_blast;
        ] );
    ]
