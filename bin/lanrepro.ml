(* lanrepro — command-line front end to the library.

   Subcommands:
     simulate   run transfers on the simulated LAN and report statistics
     analyze    closed-form elapsed times / expected times / sigma
     timeline   render a Figure-3-style timing diagram
     mc         Monte-Carlo mean and standard deviation per strategy
     send/recv  real bulk transfer over UDP between two invocations *)

open Cmdliner

(* ------------------------------------------------------ shared arguments *)

let protocol_of_string s =
  let fail () =
    `Error
      (Printf.sprintf
         "unknown protocol %S (try: saw, sw, sw:8, blast:full, blast:nack, blast:gbn, \
          blast:selective, multi:gbn:64)"
         s)
  in
  let strategy = function
    | "full" -> Some Protocol.Blast.Full_retransmit
    | "nack" -> Some Protocol.Blast.Full_retransmit_nack
    | "gbn" -> Some Protocol.Blast.Go_back_n
    | "selective" -> Some Protocol.Blast.Selective
    | _ -> None
  in
  match String.split_on_char ':' s with
  | [ "saw" ] -> `Ok Protocol.Suite.Stop_and_wait
  | [ "sw" ] -> `Ok (Protocol.Suite.Sliding_window { window = max_int })
  | [ "sw"; w ] -> begin
      match int_of_string_opt w with
      | Some window when window > 0 -> `Ok (Protocol.Suite.Sliding_window { window })
      | _ -> fail ()
    end
  | [ "blast"; name ] -> begin
      match strategy name with Some s -> `Ok (Protocol.Suite.Blast s) | None -> fail ()
    end
  | [ "multi"; name; chunk ] -> begin
      match (strategy name, int_of_string_opt chunk) with
      | Some s, Some chunk_packets when chunk_packets > 0 ->
          `Ok (Protocol.Suite.Multi_blast { strategy = s; chunk_packets })
      | _ -> fail ()
    end
  | _ -> fail ()

let protocol_conv =
  Arg.conv
    ( (fun s ->
        match protocol_of_string s with `Ok p -> Ok p | `Error m -> Error (`Msg m)),
      fun ppf p -> Format.pp_print_string ppf (Protocol.Suite.name p) )

let protocol =
  Arg.(
    value
    & opt protocol_conv (Protocol.Suite.Blast Protocol.Blast.Go_back_n)
    & info [ "p"; "protocol" ] ~docv:"PROTO" ~doc:"Protocol: saw, sw[:W], blast:STRAT, multi:STRAT:CHUNK.")

let packets =
  Arg.(value & opt int 64 & info [ "n"; "packets" ] ~docv:"N" ~doc:"Transfer size in 1 KiB packets.")

let loss =
  Arg.(value & opt float 0.0 & info [ "loss" ] ~docv:"P" ~doc:"Network packet loss probability.")

let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Random seed.")
let trials = Arg.(value & opt int 30 & info [ "trials" ] ~doc:"Number of trials.")

let jobs =
  Arg.(
    value
    & opt (some int) None
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Worker domains for parallel trials. Defaults to $(b,LANREPRO_JOBS) when set, \
           else the machine's recommended domain count. Results are identical at any \
           value.")

let effective_jobs = function Some j -> j | None -> Exec.Pool.default_jobs ()

let kernel_mode =
  Arg.(value & flag & info [ "kernel" ] ~doc:"Use the V-kernel cost constants (Table 3) instead of the standalone ones (Table 2).")

let params_of kernel = if kernel then Netmodel.Params.vkernel else Netmodel.Params.standalone
let costs_of kernel = if kernel then Analysis.Costs.vkernel else Analysis.Costs.standalone

(* ---------------------------------------------------------- observability *)

let trace_out =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-out" ] ~docv:"PATH"
        ~doc:
          "Write the run's datagram events as Chrome trace_event JSON to $(docv) \
           (loadable in Perfetto or chrome://tracing).")

let metrics_out =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics-out" ] ~docv:"PATH" ~doc:"Write a JSON metrics snapshot to $(docv).")

(* A recorder/metrics pair exists only when the matching output file was
   requested, so untraced runs pay nothing. [flush] writes both files. *)
let telemetry trace_out metrics_out =
  let recorder = Option.map (fun _ -> Obs.Recorder.create ()) trace_out in
  let metrics = Option.map (fun _ -> Obs.Metrics.create ()) metrics_out in
  let flush ?(spans = []) () =
    (match (trace_out, recorder) with
    | Some path, Some r ->
        Obs.Export.write_chrome path ~spans ~events:(Obs.Recorder.events r) ();
        Printf.printf "wrote trace to %s\n" path
    | _ -> ());
    match (metrics_out, metrics) with
    | Some path, Some m ->
        let oc = open_out path in
        Fun.protect
          ~finally:(fun () -> close_out oc)
          (fun () -> output_string oc (Obs.Json.to_string (Obs.Metrics.to_json m)));
        Printf.printf "wrote metrics to %s\n" path
    | _ -> ()
  in
  (recorder, metrics, flush)

(* Tri-state so the LANREPRO_BATCH environment default applies when neither
   flag is given. *)
let batch_flag =
  Arg.(
    value
    & vflag None
        [
          ( Some true,
            info [ "batch" ]
              ~doc:
                "Submit packet trains through sendmmsg/recvmmsg — one syscall per train \
                 instead of per datagram (the default unless LANREPRO_BATCH=0)." );
          (Some false, info [ "no-batch" ] ~doc:"One syscall per datagram.");
        ])

let make_ctx ?recorder ?metrics ?tuning batch =
  Sockets.Io_ctx.make ?recorder ?metrics ?batch ?tuning ()

(* ---------------------------------------------------------------- tuning *)

(* The shared [--tuning]/[--pacing] pair. Commands resolve them against
   their own calibrated default profile: the retransmission timer and
   attempt budget stay whatever the command chose, only the train policy
   (and optionally the pacing) switches. *)
let tuning_flags =
  let mode =
    Arg.(
      value
      & opt (some (enum [ ("fixed", `Fixed); ("adaptive", `Adaptive) ])) None
      & info [ "tuning" ] ~docv:"PROFILE"
          ~doc:
            "Train tuning profile: $(b,fixed) keeps the paper's a-priori train \
             geometry; $(b,adaptive) runs the AIMD controller — train length tracks \
             per-round loss and the receiver-advertised budget (wire v2), pacing can \
             spread each train over one smoothed RTT.")
  in
  let pacing =
    Arg.(
      value
      & opt (some string) None
      & info [ "pacing" ] ~docv:"GAP"
          ~doc:
            "Data-packet pacing: $(b,none), $(b,rtt) (spread each train across one \
             smoothed RTT), or a fixed inter-packet gap in nanoseconds.")
  in
  Term.(const (fun mode pacing -> (mode, pacing)) $ mode $ pacing)

let resolve_tuning ~default (mode, pacing) =
  let pacing =
    match pacing with
    | None -> None
    | Some "none" -> Some Protocol.Tuning.No_pacing
    | Some "rtt" -> Some Protocol.Tuning.Rtt_spread
    | Some s -> (
        match int_of_string_opt s with
        | Some ns when ns > 0 -> Some (Protocol.Tuning.Fixed_gap ns)
        | _ ->
            Printf.eprintf "unknown --pacing %S (expected none, rtt, or a gap in ns)\n" s;
            exit 2)
  in
  let base =
    match mode with
    | None -> default
    | Some profile -> (
        let retransmit_ns = Protocol.Tuning.retransmit_ns default in
        let max_attempts = Protocol.Tuning.max_attempts default in
        let pacing = Protocol.Tuning.pacing default in
        match profile with
        | `Adaptive -> Protocol.Tuning.adaptive ~retransmit_ns ~max_attempts ~pacing ()
        | `Fixed -> Protocol.Tuning.fixed ~retransmit_ns ~max_attempts ~pacing ())
  in
  match pacing with None -> base | Some p -> Protocol.Tuning.with_pacing base p

(* --------------------------------------------------------------- simulate *)

let adaptive =
  Arg.(value & flag & info [ "adaptive" ] ~doc:"Use an adaptive (Jacobson/Karn) retransmission timeout.")

let simulate_cmd =
  let run protocol packets loss interface_loss trials seed kernel adaptive jobs trace_out
      metrics_out =
    let jobs = effective_jobs jobs in
    let spec =
      Simnet.Campaign.default ~params:(params_of kernel) ~network_loss:loss
        ~interface_loss ~trials ~seed ~suite:protocol
        ~config:(Protocol.Config.make ~total_packets:packets ())
        ()
    in
    let outcome =
      if adaptive then begin
        (* Campaign with a persistent per-peer estimator across trials. *)
        let rtt = Protocol.Rtt.create ~initial_ns:200_000_000 () in
        let elapsed = Stats.Summary.create () in
        let retransmissions = Stats.Summary.create () in
        let failures = ref 0 in
        (* A shared estimator makes trials order-dependent, so this branch is
           inherently serial; per-trial streams still come from the same
           [derive] path the parallel campaign uses. *)
        for trial = 0 to trials - 1 do
          let rng = Stats.Rng.derive ~root:seed ~index:trial in
          let error m l = if l = 0.0 then m else Netmodel.Error_model.iid rng ~loss:l in
          let result =
            Simnet.Driver.run ~params:(params_of kernel)
              ~network_error:(error (Netmodel.Error_model.perfect ()) loss)
              ~interface_error:(error (Netmodel.Error_model.perfect ()) interface_loss)
              ~rtt ~suite:protocol
              ~config:(Protocol.Config.make ~total_packets:packets ())
              ()
          in
          match result.Simnet.Driver.outcome with
          | Protocol.Action.Success ->
              Stats.Summary.add elapsed (Simnet.Driver.elapsed_ms result);
              Stats.Summary.add retransmissions
                (float_of_int result.Simnet.Driver.sender.Protocol.Counters.retransmitted_data)
          | Protocol.Action.Too_many_attempts | Protocol.Action.Peer_unreachable
          | Protocol.Action.Rejected ->
              incr failures
        done;
        { Simnet.Campaign.elapsed_ms = elapsed; failures = !failures; retransmissions }
      end
      else Simnet.Campaign.run ~jobs spec
    in
    Printf.printf "%s, %d KiB, loss=%g (network) %g (interface), %d trials, %d jobs%s:\n"
      (Protocol.Suite.name protocol) packets loss interface_loss trials jobs
      (if adaptive then " (adaptive: serial)" else "");
    Printf.printf "  elapsed: mean %.3f ms, sd %.3f ms, min %.3f, max %.3f\n"
      (Stats.Summary.mean outcome.Simnet.Campaign.elapsed_ms)
      (Stats.Summary.stddev outcome.Simnet.Campaign.elapsed_ms)
      (Stats.Summary.min outcome.Simnet.Campaign.elapsed_ms)
      (Stats.Summary.max outcome.Simnet.Campaign.elapsed_ms);
    Printf.printf "  retransmitted packets per trial: mean %.1f\n"
      (Stats.Summary.mean outcome.Simnet.Campaign.retransmissions);
    if outcome.Simnet.Campaign.failures > 0 then
      Printf.printf "  %d trials gave up\n" outcome.Simnet.Campaign.failures;
    (* Telemetry: re-run the first trial with the recorder/metrics attached
       (same seed, same error models) so the exported trace shows one
       representative transfer, then append the campaign-level gauges. *)
    let recorder, metrics, flush = telemetry trace_out metrics_out in
    if recorder <> None || metrics <> None then begin
      let trace = Eventsim.Trace.create () in
      let rng = Stats.Rng.derive ~root:seed ~index:0 in
      let error l = if l = 0.0 then Netmodel.Error_model.perfect () else Netmodel.Error_model.iid rng ~loss:l in
      ignore
        (Simnet.Driver.run ~params:(params_of kernel) ~network_error:(error loss)
           ~interface_error:(error interface_loss) ~trace ?recorder ?metrics
           ~suite:protocol
           ~config:(Protocol.Config.make ~total_packets:packets ())
           ()
          : Simnet.Driver.result);
      Option.iter
        (fun m ->
          let g name v =
            Obs.Metrics.set_gauge
              (Obs.Metrics.gauge m ~labels:[ ("transport", "sim") ] name)
              v
          in
          g "campaign_elapsed_ms_mean" (Stats.Summary.mean outcome.Simnet.Campaign.elapsed_ms);
          g "campaign_elapsed_ms_stddev"
            (Stats.Summary.stddev outcome.Simnet.Campaign.elapsed_ms);
          g "campaign_failures" (float_of_int outcome.Simnet.Campaign.failures))
        metrics;
      flush ~spans:(Obs.Span.of_trace trace) ()
    end
  in
  let interface_loss =
    Arg.(value & opt float 0.0 & info [ "interface-loss" ] ~docv:"P" ~doc:"Interface loss probability.")
  in
  Cmd.v
    (Cmd.info "simulate" ~doc:"Run transfers on the simulated LAN")
    Term.(
      const run $ protocol $ packets $ loss $ interface_loss $ trials $ seed $ kernel_mode
      $ adaptive $ jobs $ trace_out $ metrics_out)

(* -------------------------------------------------------------- calibrate *)

let calibrate_cmd =
  let run kernel =
    let params = params_of kernel in
    let measure suite n =
      Simnet.Driver.elapsed_ms
        (Simnet.Driver.run ~params ~suite
           ~config:(Protocol.Config.make ~total_packets:n ())
           ())
    in
    let ladder suite = List.map (fun n -> (n, measure suite n)) [ 2; 4; 8; 16; 32; 64 ] in
    let transmit_ms =
      Eventsim.Time.span_to_ms (Netmodel.Params.data_transmit params)
    in
    let recovered =
      Analysis.Calibrate.recover_constants
        ~blast:(ladder (Protocol.Suite.Blast Protocol.Blast.Go_back_n))
        ~sliding_window:(ladder (Protocol.Suite.Sliding_window { window = max_int }))
        ~transmit_ms
    in
    Printf.printf "measured ladders on the simulator, fitted T(N) = slope*N + intercept:\n";
    Printf.printf "  blast:          slope %.4f ms/packet (r2 %.6f)\n"
      recovered.Analysis.Calibrate.fit_blast.Analysis.Calibrate.slope
      recovered.Analysis.Calibrate.fit_blast.Analysis.Calibrate.r_square;
    Printf.printf "  sliding window: slope %.4f ms/packet (r2 %.6f)\n"
      recovered.Analysis.Calibrate.fit_sliding_window.Analysis.Calibrate.slope
      recovered.Analysis.Calibrate.fit_sliding_window.Analysis.Calibrate.r_square;
    Printf.printf "recovered constants (known T = %.4f ms):\n" transmit_ms;
    Printf.printf "  C  = %.4f ms (data packet copy)\n" recovered.Analysis.Calibrate.copy_data_ms;
    Printf.printf "  Ca = %.4f ms (ack packet copy)\n" recovered.Analysis.Calibrate.copy_ack_ms
  in
  Cmd.v
    (Cmd.info "calibrate" ~doc:"Recover the cost-model constants from measured ladders")
    Term.(const run $ kernel_mode)

(* ---------------------------------------------------------------- analyze *)

let analyze_cmd =
  let run packets pn tr_factor kernel =
    let costs = costs_of kernel in
    Printf.printf "constants: %s\n" (Format.asprintf "%a" Analysis.Costs.pp costs);
    Printf.printf "error-free elapsed for %d packets:\n" packets;
    Printf.printf "  stop-and-wait   %10.3f ms\n" (Analysis.Error_free.stop_and_wait costs ~packets);
    Printf.printf "  sliding window  %10.3f ms\n" (Analysis.Error_free.sliding_window costs ~packets);
    Printf.printf "  blast           %10.3f ms\n" (Analysis.Error_free.blast costs ~packets);
    Printf.printf "  double-buffered %10.3f ms\n" (Analysis.Error_free.double_buffered costs ~packets);
    Printf.printf "  network utilization (blast): %.1f%%\n"
      (100.0 *. Analysis.Error_free.network_utilization costs ~packets);
    if pn > 0.0 then begin
      let t0 = Analysis.Error_free.blast costs ~packets in
      let t0_packet = Analysis.Error_free.stop_and_wait costs ~packets:1 in
      let pc = Analysis.Expected_time.blast_failure ~pn ~packets in
      Printf.printf "\nat pn = %g (Tr = %g x T0):\n" pn tr_factor;
      Printf.printf "  E[T] blast (full retx)  %10.3f ms\n"
        (Analysis.Expected_time.blast ~t0 ~tr:(tr_factor *. t0) ~pn ~packets);
      Printf.printf "  E[T] stop-and-wait      %10.3f ms\n"
        (Analysis.Expected_time.stop_and_wait ~t0_packet ~tr:(tr_factor *. t0_packet) ~pn ~packets);
      Printf.printf "  sigma full retx         %10.3f ms\n"
        (Analysis.Variance.full_retransmit ~t0 ~tr:(tr_factor *. t0) ~pc);
      Printf.printf "  sigma full retx + nack  %10.3f ms\n"
        (Analysis.Variance.full_retransmit_nack ~t0 ~pc)
    end
  in
  let pn = Arg.(value & opt float 0.0 & info [ "pn" ] ~doc:"Packet error probability for the loss analysis.") in
  let tr_factor =
    Arg.(value & opt float 1.0 & info [ "tr-factor" ] ~doc:"Retransmission interval as a multiple of T0.")
  in
  Cmd.v
    (Cmd.info "analyze" ~doc:"Closed-form elapsed times, expected times, standard deviations")
    Term.(const run $ packets $ pn $ tr_factor $ kernel_mode)

(* --------------------------------------------------------------- timeline *)

let timeline_cmd =
  let run protocol packets width double kernel trace_out =
    let params = params_of kernel in
    let params = if double then Netmodel.Params.double_buffered params else params in
    let trace = Eventsim.Trace.create () in
    let result =
      Simnet.Driver.run ~params ~trace ~suite:protocol
        ~config:(Protocol.Config.make ~total_packets:packets ())
        ()
    in
    print_endline (Report.Timeline.render ~width trace);
    Printf.printf "total elapsed: %.3f ms\n" (Simnet.Driver.elapsed_ms result);
    match trace_out with
    | None -> ()
    | Some path ->
        Obs.Export.write_chrome path ~spans:(Obs.Span.of_trace trace) ();
        Printf.printf "wrote trace to %s\n" path
  in
  let width = Arg.(value & opt int 100 & info [ "width" ] ~doc:"Diagram width in columns.") in
  let double = Arg.(value & flag & info [ "double-buffered" ] ~doc:"Use a double-buffered interface.") in
  Cmd.v
    (Cmd.info "timeline" ~doc:"Render a Figure-3-style timing diagram")
    Term.(const run $ protocol $ packets $ width $ double $ kernel_mode $ trace_out)

(* --------------------------------------------------------------------- mc *)

let mc_cmd =
  let run protocol packets pn tr_factor trials seed kernel jobs =
    let jobs = effective_jobs jobs in
    let costs = costs_of kernel in
    let t0 = Analysis.Error_free.blast costs ~packets in
    let timing = Montecarlo.Runner.blast_timing costs ~tr:(tr_factor *. t0) in
    let sample =
      Montecarlo.Runner.sample ~jobs
        ~sampler:(fun rng -> Montecarlo.Runner.iid rng ~loss:pn)
        ~timing ~suite:protocol ~packets ~trials ~seed ()
    in
    let summary = sample.Montecarlo.Runner.elapsed_ms in
    Printf.printf "%s, %d packets, pn=%g, Tr=%g x T0, %d trials, %d jobs:\n"
      (Protocol.Suite.name protocol) packets pn tr_factor trials jobs;
    Printf.printf "  mean %.3f ms, sigma %.3f ms (error-free %.3f ms)\n"
      (Stats.Summary.mean summary) (Stats.Summary.stddev summary)
      (Montecarlo.Runner.error_free_time timing ~packets);
    if sample.Montecarlo.Runner.failures > 0 then
      Printf.printf "  %d trials gave up (excluded from the statistics)\n"
        sample.Montecarlo.Runner.failures
  in
  let pn = Arg.(value & opt float 1e-3 & info [ "pn" ] ~doc:"Packet error probability.") in
  let tr_factor =
    Arg.(value & opt float 1.0 & info [ "tr-factor" ] ~doc:"Retransmission interval as a multiple of T0.")
  in
  Cmd.v
    (Cmd.info "mc" ~doc:"Monte-Carlo expected time and standard deviation")
    Term.(
      const run $ protocol $ packets $ pn $ tr_factor $ trials $ seed $ kernel_mode $ jobs)

(* ------------------------------------------------------------------ sweep *)

let sweep_cmd =
  let run protocols packets losses trials seed kernel jobs csv metrics_out =
    let jobs = effective_jobs jobs in
    let suites =
      if protocols = [] then
        [
          Protocol.Suite.Stop_and_wait;
          Protocol.Suite.Sliding_window { window = max_int };
          Protocol.Suite.Blast Protocol.Blast.Go_back_n;
        ]
      else
        List.map
          (fun s ->
            match protocol_of_string s with
            | `Ok p -> p
            | `Error m ->
                prerr_endline m;
                exit 2)
          protocols
    in
    Printf.printf "sweep: %d trials per cell, %d jobs\n%!" trials jobs;
    let sweep =
      Simnet.Sweep.run ~params:(params_of kernel) ~trials ~seed ~jobs ~suites
        ~packets:(if packets = [] then [ 16; 64 ] else packets)
        ~losses:(if losses = [] then [ 0.0; 1e-3; 1e-2 ] else losses)
        ()
    in
    (match csv with
    | Some path ->
        let oc = open_out path in
        Fun.protect
          ~finally:(fun () -> close_out oc)
          (fun () -> output_string oc (Simnet.Sweep.to_csv sweep));
        Printf.printf "wrote %d rows to %s\n" (List.length sweep.Simnet.Sweep.cells) path
    | None -> print_endline (Simnet.Sweep.to_table sweep));
    (* One gauge set per cell, labelled by the cell coordinates, so the whole
       cross product lands in a single machine-readable snapshot. *)
    let _, metrics, flush = telemetry None metrics_out in
    Option.iter
      (fun m ->
        List.iter
          (fun (c : Simnet.Sweep.cell) ->
            let labels =
              [
                ("protocol", Protocol.Suite.name c.Simnet.Sweep.suite);
                ("packets", string_of_int c.Simnet.Sweep.packets);
                ("loss", Printf.sprintf "%g" c.Simnet.Sweep.network_loss);
              ]
            in
            let g name v = Obs.Metrics.set_gauge (Obs.Metrics.gauge m ~labels name) v in
            g "sweep_mean_ms" c.Simnet.Sweep.mean_ms;
            g "sweep_stddev_ms" c.Simnet.Sweep.stddev_ms;
            g "sweep_retransmissions" c.Simnet.Sweep.retransmissions;
            g "sweep_failures" (float_of_int c.Simnet.Sweep.failures))
          sweep.Simnet.Sweep.cells;
        flush ())
      metrics
  in
  let protocols =
    Arg.(value & opt_all string [] & info [ "P"; "protocols" ] ~docv:"PROTO" ~doc:"Protocol to include (repeatable).")
  in
  let packet_list =
    Arg.(value & opt_all int [] & info [ "N" ] ~docv:"N" ~doc:"Transfer size in packets (repeatable).")
  in
  let loss_list =
    Arg.(value & opt_all float [] & info [ "L" ] ~docv:"P" ~doc:"Loss probability (repeatable).")
  in
  let csv =
    Arg.(value & opt (some string) None & info [ "csv" ] ~docv:"PATH" ~doc:"Write CSV instead of a table.")
  in
  Cmd.v
    (Cmd.info "sweep" ~doc:"Cross-product measurement sweep (protocols x sizes x loss rates)")
    Term.(
      const run $ protocols $ packet_list $ loss_list $ trials $ seed $ kernel_mode $ jobs
      $ csv $ metrics_out)

(* ------------------------------------------------------------------ repro *)

let repro_cmd =
  let run list names =
    if list then List.iter (fun (name, _) -> print_endline name) Experiments.all
    else begin
      let to_run =
        if names = [] then Experiments.all
        else
          List.map
            (fun name ->
              match List.assoc_opt name Experiments.all with
              | Some f -> (name, f)
              | None ->
                  Printf.eprintf "unknown experiment %S (try --list)\n" name;
                  exit 2)
            names
      in
      let ppf = Format.std_formatter in
      List.iter (fun (_, f) -> f ppf) to_run;
      Format.pp_print_flush ppf ()
    end
  in
  let list = Arg.(value & flag & info [ "list" ] ~doc:"List the available experiments.") in
  let names = Arg.(value & pos_all string [] & info [] ~docv:"EXPERIMENT") in
  Cmd.v
    (Cmd.info "repro"
       ~doc:"Regenerate the paper's tables and figures (same engine as bench/main.exe)")
    Term.(const run $ list $ names)

(* -------------------------------------------------------------- send/recv *)

let host = Arg.(value & opt string "127.0.0.1" & info [ "host" ] ~doc:"Peer host.")
let port = Arg.(value & opt int 47085 & info [ "port" ] ~doc:"UDP port.")

let tx_loss =
  Arg.(value & opt float 0.0 & info [ "inject-loss" ] ~doc:"Probability of dropping each outgoing datagram (testing aid).")

let send_cmd =
  let run protocol host port file size loss seed adaptive batch tuning trace_out metrics_out =
    let data =
      match file with
      | Some path ->
          let ic = open_in_bin path in
          Fun.protect
            ~finally:(fun () -> close_in ic)
            (fun () -> really_input_string ic (in_channel_length ic))
      | None ->
          let rng = Stats.Rng.create ~seed in
          String.init size (fun _ -> Char.chr (Stats.Rng.int rng 256))
    in
    let socket = Unix.socket Unix.PF_INET Unix.SOCK_DGRAM 0 in
    let peer = Unix.ADDR_INET (Unix.inet_addr_of_string host, port) in
    let lossy =
      if loss > 0.0 then Sockets.Lossy.create ~seed ~tx_loss:loss ~rx_loss:0.0
      else Sockets.Lossy.perfect
    in
    let rtt = if adaptive then Some (Protocol.Rtt.create ~initial_ns:50_000_000 ()) else None in
    let tuning = resolve_tuning ~default:Protocol.Tuning.wire_default tuning in
    let recorder, metrics, flush = telemetry trace_out metrics_out in
    let ctx = make_ctx ?recorder ?metrics ~tuning batch in
    let result = Sockets.Peer.send ~ctx ~lossy ?rtt ~socket ~peer ~suite:protocol ~data () in
    Unix.close socket;
    Printf.printf "%s: %d bytes in %.1f ms (%d packets, %d retransmitted)\n"
      (match result.Sockets.Peer.outcome with
      | Protocol.Action.Success -> "sent"
      | Protocol.Action.Too_many_attempts -> "FAILED"
      | Protocol.Action.Peer_unreachable -> "FAILED (peer unreachable)"
      | Protocol.Action.Rejected -> "FAILED (server busy)")
      (String.length data)
      (float_of_int result.Sockets.Peer.elapsed_ns /. 1e6)
      result.Sockets.Peer.counters.Protocol.Counters.data_sent
      result.Sockets.Peer.counters.Protocol.Counters.retransmitted_data;
    flush ()
  in
  let file =
    Arg.(value & opt (some file) None & info [ "file" ] ~docv:"PATH" ~doc:"File to send (otherwise random data).")
  in
  let size =
    Arg.(value & opt int 65536 & info [ "size" ] ~doc:"Random payload size in bytes when no file is given.")
  in
  Cmd.v
    (Cmd.info "send" ~doc:"Send a bulk transfer to a lanrepro recv peer over UDP")
    Term.(
      const run $ protocol $ host $ port $ file $ size $ tx_loss $ seed $ adaptive
      $ batch_flag $ tuning_flags $ trace_out $ metrics_out)

let recv_cmd =
  let run protocol port out loss seed tuning trace_out metrics_out =
    let socket = Unix.socket Unix.PF_INET Unix.SOCK_DGRAM 0 in
    Unix.bind socket (Unix.ADDR_INET (Unix.inet_addr_of_string "0.0.0.0", port));
    Printf.printf "listening on UDP port %d...\n%!" port;
    let lossy =
      if loss > 0.0 then Sockets.Lossy.create ~seed ~tx_loss:loss ~rx_loss:0.0
      else Sockets.Lossy.perfect
    in
    let tuning = resolve_tuning ~default:Protocol.Tuning.wire_default tuning in
    let recorder, metrics, flush = telemetry trace_out metrics_out in
    let ctx = make_ctx ?recorder ?metrics ~tuning None in
    let result = Sockets.Peer.serve_one ~ctx ~lossy ~socket ~suite:protocol () in
    Unix.close socket;
    Printf.printf "received %d bytes (transfer %d)\n"
      (String.length result.Sockets.Peer.data)
      result.Sockets.Peer.transfer_id;
    (match out with
    | Some path ->
        let oc = open_out_bin path in
        Fun.protect
          ~finally:(fun () -> close_out oc)
          (fun () -> output_string oc result.Sockets.Peer.data);
        Printf.printf "wrote %s\n" path
    | None -> ());
    flush ()
  in
  let out =
    Arg.(value & opt (some string) None & info [ "out" ] ~docv:"PATH" ~doc:"Write the received data to this file.")
  in
  Cmd.v
    (Cmd.info "recv" ~doc:"Receive one bulk transfer over UDP")
    Term.(
      const run $ protocol $ port $ out $ tx_loss $ seed $ tuning_flags $ trace_out
      $ metrics_out)

(* ----------------------------------------------------------- dump/restore *)

let dump_cmd =
  let run protocol host port directory loss seed adaptive =
    let data = Archive.encode (Archive.of_directory directory) in
    Printf.printf "archived %s: %d bytes\n%!" directory (String.length data);
    let socket = Unix.socket Unix.PF_INET Unix.SOCK_DGRAM 0 in
    let peer = Unix.ADDR_INET (Unix.inet_addr_of_string host, port) in
    let lossy =
      if loss > 0.0 then Sockets.Lossy.create ~seed ~tx_loss:loss ~rx_loss:0.0
      else Sockets.Lossy.perfect
    in
    let rtt = if adaptive then Some (Protocol.Rtt.create ~initial_ns:50_000_000 ()) else None in
    let result = Sockets.Peer.send ~lossy ?rtt ~socket ~peer ~suite:protocol ~data () in
    Unix.close socket;
    Printf.printf "%s in %.1f ms (%d packets, %d retransmitted)\n"
      (match result.Sockets.Peer.outcome with
      | Protocol.Action.Success -> "dumped"
      | Protocol.Action.Too_many_attempts -> "FAILED"
      | Protocol.Action.Peer_unreachable -> "FAILED (peer unreachable)"
      | Protocol.Action.Rejected -> "FAILED (server busy)")
      (float_of_int result.Sockets.Peer.elapsed_ns /. 1e6)
      result.Sockets.Peer.counters.Protocol.Counters.data_sent
      result.Sockets.Peer.counters.Protocol.Counters.retransmitted_data
  in
  let directory =
    Arg.(required & pos 0 (some dir) None & info [] ~docv:"DIR" ~doc:"Directory to dump.")
  in
  let multi_default =
    Arg.(
      value
      & opt protocol_conv
          (Protocol.Suite.Multi_blast { strategy = Protocol.Blast.Go_back_n; chunk_packets = 64 })
      & info [ "p"; "protocol" ] ~docv:"PROTO" ~doc:"Transfer protocol.")
  in
  Cmd.v
    (Cmd.info "dump"
       ~doc:"Archive a directory and blast it to a lanrepro restore peer (the paper's remote file-system dump)")
    Term.(const run $ multi_default $ host $ port $ directory $ tx_loss $ seed $ adaptive)

let restore_cmd =
  let run port root loss seed =
    let socket = Unix.socket Unix.PF_INET Unix.SOCK_DGRAM 0 in
    Unix.bind socket (Unix.ADDR_INET (Unix.inet_addr_of_string "0.0.0.0", port));
    Printf.printf "waiting for a dump on UDP port %d...\n%!" port;
    let lossy =
      if loss > 0.0 then Sockets.Lossy.create ~seed ~tx_loss:loss ~rx_loss:0.0
      else Sockets.Lossy.perfect
    in
    let result = Sockets.Peer.serve_one ~lossy ~socket () in
    Unix.close socket;
    (match result.Sockets.Peer.integrity with
    | Sockets.Peer.Verified -> print_endline "end-to-end checksum: verified"
    | Sockets.Peer.Mismatch -> print_endline "WARNING: end-to-end checksum mismatch"
    | Sockets.Peer.Not_carried -> print_endline "sender carried no checksum");
    match Archive.decode result.Sockets.Peer.data with
    | Error e -> Format.printf "archive decode failed: %a@." Archive.pp_error e
    | Ok entries ->
        let written = Archive.extract ~root entries in
        Printf.printf "restored %d entries under %s\n" written root
  in
  let root =
    Arg.(value & opt string "restored" & info [ "root" ] ~docv:"DIR" ~doc:"Where to extract.")
  in
  Cmd.v
    (Cmd.info "restore" ~doc:"Receive one dump and extract it")
    Term.(const run $ port $ root $ tx_loss $ seed)

(* ------------------------------------------------------------------ chaos *)

let chaos_cmd =
  let run iters seed bytes scenario_names suite_names jobs trace_out metrics_out =
    let jobs = effective_jobs jobs in
    let scenarios =
      match scenario_names with
      | [] -> Faults.Scenario.all
      | names ->
          List.map
            (fun name ->
              match Faults.Scenario.find name with
              | Some s -> s
              | None ->
                  Printf.eprintf "unknown scenario %S (known: %s)\n" name
                    (String.concat ", " (List.map Faults.Scenario.name Faults.Scenario.all));
                  exit 2)
            names
    in
    let suites =
      match suite_names with
      | [] -> Sockets.Chaos.all_suites
      | names ->
          List.map
            (fun s ->
              match protocol_of_string s with
              | `Ok p -> p
              | `Error m ->
                  prerr_endline m;
                  exit 2)
            names
    in
    let combined_stats (r : Sockets.Chaos.run) =
      let s = Faults.Netem.create_stats () in
      let add (x : Faults.Netem.stats) =
        s.Faults.Netem.dropped <- s.Faults.Netem.dropped + x.Faults.Netem.dropped;
        s.Faults.Netem.duplicated <- s.Faults.Netem.duplicated + x.Faults.Netem.duplicated;
        s.Faults.Netem.reordered <- s.Faults.Netem.reordered + x.Faults.Netem.reordered;
        s.Faults.Netem.corrupted <- s.Faults.Netem.corrupted + x.Faults.Netem.corrupted;
        s.Faults.Netem.truncated <- s.Faults.Netem.truncated + x.Faults.Netem.truncated;
        s.Faults.Netem.delayed <- s.Faults.Netem.delayed + x.Faults.Netem.delayed
      in
      add r.Sockets.Chaos.sender_faults;
      add r.Sockets.Chaos.receiver_faults;
      s
    in
    let detections (r : Sockets.Chaos.run) =
      let of_counters (c : Protocol.Counters.t) =
        (c.Protocol.Counters.corrupt_detected, c.Protocol.Counters.garbage_received)
      in
      let sc, sg =
        match r.Sockets.Chaos.send with
        | Some s -> of_counters s.Sockets.Peer.counters
        | None -> (0, 0)
      in
      let rc, rg =
        match r.Sockets.Chaos.received with
        | Some rr -> of_counters rr.Sockets.Peer.receive_counters
        | None -> (0, 0)
      in
      (sc + rc, sg + rg)
    in
    let rows = ref [] in
    let progress (r : Sockets.Chaos.run) =
      let label =
        Printf.sprintf "%s/%s"
          (Protocol.Suite.name r.Sockets.Chaos.suite)
          (Faults.Scenario.name r.Sockets.Chaos.scenario)
      in
      let corrupt_detected, garbage_received = detections r in
      rows :=
        {
          Report.Fault_table.label;
          stats = combined_stats r;
          corrupt_detected;
          garbage_received;
          outcome =
            (if Sockets.Chaos.ok r then Sockets.Chaos.outcome_name r else "VIOLATION");
        }
        :: !rows;
      Printf.printf "  %-28s %s\n%!" label (Sockets.Chaos.outcome_name r)
    in
    Printf.printf "chaos soak: %d suites x %d scenarios x %d iters, %d bytes each, %d jobs\n%!"
      (List.length suites) (List.length scenarios) iters bytes jobs;
    let recorder, metrics, flush = telemetry trace_out metrics_out in
    let ctx = make_ctx ?recorder ?metrics None in
    let runs =
      Sockets.Chaos.run_campaign ~bytes ~ctx ~suites ~scenarios ~iters ~seed ~progress
        ~jobs ()
    in
    flush ();
    print_newline ();
    print_string (Report.Fault_table.render (List.rev !rows));
    let violations = Sockets.Chaos.violations runs in
    let completed = Sockets.Chaos.completed runs in
    Printf.printf "\n%d runs: %d completed, %d clean failures, %d violations\n"
      (List.length runs) completed
      (List.length runs - completed - List.length violations)
      (List.length violations);
    List.iter
      (fun (r : Sockets.Chaos.run) ->
        Printf.printf "VIOLATION %s/%s (seed %d): %s\n"
          (Protocol.Suite.name r.Sockets.Chaos.suite)
          (Faults.Scenario.name r.Sockets.Chaos.scenario)
          r.Sockets.Chaos.seed
          (Option.value r.Sockets.Chaos.violation ~default:"?"))
      violations;
    if violations <> [] then exit 1
  in
  let iters =
    Arg.(value & opt int 3 & info [ "iters" ] ~docv:"N" ~doc:"Iterations per suite x scenario cell.")
  in
  let bytes =
    Arg.(value & opt int 6000 & info [ "size" ] ~docv:"BYTES" ~doc:"Transfer size per run.")
  in
  let scenarios =
    Arg.(value & opt_all string [] & info [ "scenario" ] ~docv:"NAME"
         ~doc:"Fault scenario to run (repeatable; default: all of clean, lossy2, bursty, corrupting, chaos).")
  in
  let suites =
    Arg.(value & opt_all string [] & info [ "suite" ] ~docv:"PROTO"
         ~doc:"Protocol suite to include (repeatable, same syntax as --protocol; default: all seven).")
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:"Chaos soak over real UDP: every protocol suite against adversarial fault scenarios; \
             fails if any transfer hangs, exceeds its attempt bound, or delivers corrupt data")
    Term.(
      const run $ iters $ seed $ bytes $ scenarios $ suites $ jobs $ trace_out
      $ metrics_out)

(* ------------------------------------------------------------ serve/swarm *)

let string_of_sockaddr = function
  | Unix.ADDR_INET (address, port) ->
      Printf.sprintf "%s:%d" (Unix.string_of_inet_addr address) port
  | Unix.ADDR_UNIX path -> path

let resolve_scenario = function
  | None -> None
  | Some name -> begin
      match Faults.Scenario.find name with
      | Some s -> Some s
      | None ->
          Printf.eprintf "unknown scenario %S (known: %s)\n" name
            (String.concat ", " (List.map Faults.Scenario.name Faults.Scenario.all));
          exit 2
    end

let max_flows =
  Arg.(
    value
    & opt int 64
    & info [ "max-flows" ] ~docv:"N"
        ~doc:"Admission cap: concurrent transfers beyond this are answered with REJ.")

let admin_port =
  Arg.(
    value
    & opt (some int) None
    & info [ "admin-port" ] ~docv:"PORT"
        ~doc:
          "Bind a stat socket on 127.0.0.1:$(docv), answered from the serving loop's \
           idle point — query it live with $(b,lanrepro stat) or $(b,lanrepro top).")

let stats_interval =
  Arg.(
    value
    & opt (some float) None
    & info [ "stats-interval" ] ~docv:"SECONDS"
        ~doc:
          "Write one JSON stats snapshot every $(docv) seconds (one object per line; \
           see $(b,--stats-out)).")

let stats_out =
  Arg.(
    value
    & opt (some string) None
    & info [ "stats-out" ] ~docv:"PATH"
        ~doc:"Destination for $(b,--stats-interval) snapshots (default stdout).")

let shards_arg =
  Arg.(
    value
    & opt int 1
    & info [ "shards" ] ~docv:"N"
        ~doc:
          "Server shard count: $(docv) engines, each on its own domain with its own \
           SO_REUSEPORT socket on the shared port; the kernel's 4-tuple hash spreads \
           flows across them and observability (stat socket, totals, counters, \
           loop-health histograms) is merged across the fleet. 1 (default) keeps the \
           classic single engine.")

(* The periodic-snapshot sink: a JSONL writer plus its close hook. *)
let stats_writer stats_interval stats_out =
  match stats_interval with
  | None -> (None, (fun _ -> ()), fun () -> ())
  | Some seconds ->
      let interval_ns = Some (int_of_float (seconds *. 1e9)) in
      (match stats_out with
      | None ->
          (interval_ns, (fun json -> print_endline (Obs.Json.to_string json)), fun () -> ())
      | Some path ->
          let oc = open_out path in
          ( interval_ns,
            (fun json ->
              output_string oc (Obs.Json.to_string json);
              output_char oc '\n';
              Stdlib.flush oc),
            fun () ->
              close_out oc;
              Printf.printf "wrote stats to %s\n" path ))

(* A flowtrace rides along whenever a trace file was requested: its lifecycle
   spans land in the same Perfetto export as the datagram events. *)
let flowtrace_for trace_out = Option.map (fun _ -> Obs.Flowtrace.create ()) trace_out

let scenario_name option_name ~doc =
  Arg.(value & opt (some string) None & info [ option_name ] ~docv:"NAME" ~doc)

let serve_cmd =
  let run port max_flows scenario_name seed max_transfers batch tuning trace_out
      metrics_out admin_port stats_interval stats_out shards =
    if shards <= 0 then begin
      Printf.eprintf "serve: --shards must be positive\n";
      exit 2
    end;
    let scenario = resolve_scenario scenario_name in
    let tuning = resolve_tuning ~default:Protocol.Tuning.wire_default tuning in
    let recorder, metrics, flush = telemetry trace_out metrics_out in
    let ctx = make_ctx ?recorder ?metrics ~tuning batch in
    let flowtrace = flowtrace_for trace_out in
    let stats_interval_ns, on_snapshot, close_stats = stats_writer stats_interval stats_out in
    let on_complete (e : Server.Engine.completion_event) =
      let c = e.Server.Engine.completion in
      Printf.printf "  flow %d from %s: %s, %d bytes, crc %s, %.1f ms\n%!"
        c.Sockets.Flow.transfer_id
        (string_of_sockaddr e.Server.Engine.peer)
        (Format.asprintf "%a" Protocol.Action.pp_outcome c.Sockets.Flow.outcome)
        (String.length c.Sockets.Flow.data)
        (match c.Sockets.Flow.integrity with
        | Sockets.Flow.Verified -> "verified"
        | Sockets.Flow.Mismatch -> "MISMATCH"
        | Sockets.Flow.Not_carried -> "not carried")
        (float_of_int (e.Server.Engine.finished_ns - e.Server.Engine.started_ns) /. 1e6)
    in
    let scenario_suffix =
      match scenario_name with Some s -> ", scenario " ^ s | None -> ""
    in
    (if shards = 1 then begin
       let socket, address = Sockets.Udp.create_socket ~address:"0.0.0.0" ~port () in
       let poller = Sockets.Poller.create () in
       let admin = Option.map (fun p -> Server.Admin.create ~port:p ()) admin_port in
       let transport =
         Sockets.Transport.udp ~batch:ctx.Sockets.Io_ctx.batch ~poller ~socket ()
       in
       let engine =
         Server.Engine.create ~max_flows ?scenario ~seed ~ctx ~on_complete ?flowtrace
           ?admin ?stats_interval_ns ~on_snapshot ~transport ()
       in
       (* Ctrl-C stops the loop instead of killing the process, so the totals
          line and any requested telemetry still get written. *)
       Sys.set_signal Sys.sigint
         (Sys.Signal_handle (fun _ -> Server.Engine.stop engine));
       Printf.printf "serving on UDP %s (max %d concurrent flows%s)...\n%!"
         (string_of_sockaddr address) max_flows scenario_suffix;
       Option.iter
         (fun a -> Printf.printf "stat socket on 127.0.0.1:%d\n%!" (Server.Admin.port a))
         admin;
       Server.Engine.run ?max_transfers engine;
       Sockets.Poller.close poller;
       Sockets.Udp.close socket;
       Option.iter Server.Admin.close admin;
       Format.printf "server: %a@." Server.Engine.pp_totals (Server.Engine.totals engine)
     end
     else begin
       (* Sharded service: [max_transfers] counts settlements fleet-wide —
          the group's completion callback is serialized, so a plain counter
          is race-free; reaching the target stops every shard. *)
       let group_cell = ref None in
       let settled = ref 0 in
       let on_complete e =
         on_complete e;
         incr settled;
         match max_transfers with
         | Some n when !settled >= n ->
             Option.iter Server.Shard_group.stop !group_cell
         | _ -> ()
       in
       let group =
         Server.Shard_group.create ~address:"0.0.0.0" ~port ~max_flows ?scenario ~seed
           ~ctx ~on_complete ?flowtrace ?admin_port ?stats_interval_ns ~on_snapshot
           ~shards ()
       in
       group_cell := Some group;
       Sys.set_signal Sys.sigint
         (Sys.Signal_handle (fun _ -> Server.Shard_group.stop group));
       Printf.printf
         "serving on UDP %s across %d shards (max %d concurrent flows per shard%s)...\n%!"
         (string_of_sockaddr (Server.Shard_group.address group))
         shards max_flows scenario_suffix;
       Option.iter
         (fun p -> Printf.printf "stat socket on 127.0.0.1:%d (aggregated)\n%!" p)
         (Server.Shard_group.admin_port group);
       Server.Shard_group.start group;
       Server.Shard_group.join group;
       Format.printf "server: %a@." Server.Engine.pp_totals
         (Server.Shard_group.totals group)
     end);
    close_stats ();
    flush
      ~spans:(match flowtrace with Some ft -> Obs.Flowtrace.spans ft | None -> [])
      ()
  in
  let max_transfers =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-transfers" ] ~docv:"N"
          ~doc:"Exit after this many flows have settled (default: serve until SIGINT).")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Concurrent transfer server: accept many simultaneous senders over one UDP \
          socket, with admission control and per-flow fault injection")
    Term.(
      const run $ port $ max_flows
      $ scenario_name "scenario" ~doc:"Server-side fault scenario applied independently per flow."
      $ seed $ max_transfers $ batch_flag $ tuning_flags $ trace_out $ metrics_out
      $ admin_port $ stats_interval $ stats_out $ shards_arg)

let swarm_cmd =
  let run flows max_flows jobs size packet_bytes protocol scenario_name server_scenario_name
      seed batch tuning trace_out metrics_out admin_port stats_interval stats_out shards =
    let scenario = resolve_scenario scenario_name in
    let server_scenario = resolve_scenario server_scenario_name in
    let tuning =
      resolve_tuning ~default:(Protocol.Tuning.fixed ~retransmit_ns:20_000_000 ()) tuning
    in
    let recorder, metrics, flush = telemetry trace_out metrics_out in
    let ctx = make_ctx ?recorder ?metrics batch in
    let flowtrace = flowtrace_for trace_out in
    let stats_interval_ns, on_snapshot, close_stats = stats_writer stats_interval stats_out in
    let report =
      Server.Swarm.run ~max_flows ?jobs ~bytes:size ~packet_bytes ~suite:protocol ~tuning
        ?scenario ?server_scenario ~seed ~ctx ?flowtrace ?admin_port ?stats_interval_ns
        ~on_snapshot ~shards ~flows ()
    in
    close_stats ();
    Format.printf "%a@." Server.Swarm.pp_report report;
    Printf.printf "server-verified transfers: %d/%d\n"
      (Server.Swarm.server_verified report)
      report.Server.Swarm.completed;
    flush
      ~spans:(match flowtrace with Some ft -> Obs.Flowtrace.spans ft | None -> [])
      ();
    if report.Server.Swarm.failed > 0 then exit 1
  in
  let flows =
    Arg.(value & opt int 8 & info [ "flows" ] ~docv:"N" ~doc:"Concurrent senders to launch.")
  in
  let size =
    Arg.(value & opt int 65536 & info [ "size" ] ~docv:"BYTES" ~doc:"Payload bytes per flow.")
  in
  let packet_bytes =
    Arg.(value & opt int 1024 & info [ "packet-bytes" ] ~docv:"BYTES" ~doc:"Payload bytes per data packet.")
  in
  Cmd.v
    (Cmd.info "swarm"
       ~doc:
         "Swarm load generator: drive N concurrent transfers against one in-process \
          server and report aggregate throughput, latency, and admission outcomes; \
          exits non-zero if any flow fails uncleanly")
    Term.(
      const run $ flows $ max_flows $ jobs $ size $ packet_bytes $ protocol
      $ scenario_name "scenario" ~doc:"Sender-side fault scenario (independent per sender)."
      $ scenario_name "server-scenario" ~doc:"Server-side fault scenario (independent per flow)."
      $ seed $ batch_flag $ tuning_flags $ trace_out $ metrics_out $ admin_port
      $ stats_interval $ stats_out $ shards_arg)

(* ------------------------------------------------- deterministic simulation *)

let dst_cmd =
  let run seed seeds churn fault_name senders transfers max_flows shards until_virtual_s
      jobs tuning journal_dir =
    let churn =
      match Dst.Harness.churn_of_string churn with
      | Some c -> c
      | None ->
          Printf.eprintf "unknown churn scenario %S (known: %s)\n" churn
            (String.concat ", " (List.map Dst.Harness.churn_name Dst.Harness.all_churns));
          exit 2
    in
    let faults = resolve_scenario (Some fault_name) in
    let base = Dst.Harness.default_config ~seed in
    let cfg =
      {
        base with
        Dst.Harness.churn;
        faults;
        senders;
        transfers;
        max_flows;
        shards;
        horizon_ns = int_of_float (until_virtual_s *. 1e9);
        tuning = resolve_tuning ~default:base.Dst.Harness.tuning tuning;
      }
    in
    let seed_list = List.init seeds (fun i -> seed + i) in
    let started = Unix.gettimeofday () in
    let trials = Dst.Harness.run_seeds ?jobs cfg ~seeds:seed_list in
    let wall_s = Unix.gettimeofday () -. started in
    List.iter (fun t -> Format.printf "%a@." Dst.Harness.pp_trial t) trials;
    let active_s =
      List.fold_left (fun acc t -> acc +. (float_of_int t.Dst.Harness.virtual_ns /. 1e9)) 0.0
        trials
    in
    (* Each trial simulates its full horizon: the clock runs to the horizon
       even when every sender resolves early (idle virtual time is free —
       that is the point of discrete-event time). The active span is how much
       of it contained traffic. *)
    let simulated_s = float_of_int (List.length trials) *. until_virtual_s in
    Printf.printf
      "%d trial(s): %.0f virtual s simulated (%.1f s active) in %.2f wall s (%.0f virtual \
       s per wall s, %d jobs)\n"
      (List.length trials) simulated_s active_s wall_s
      (if wall_s > 0.0 then simulated_s /. wall_s else 0.0)
      (effective_jobs jobs);
    let failing =
      List.filter (fun t -> t.Dst.Harness.violations <> []) trials
    in
    List.iter
      (fun (t : Dst.Harness.trial) ->
        List.iter
          (fun v -> Printf.printf "seed %d: %s\n" t.Dst.Harness.seed v)
          t.Dst.Harness.violations)
      failing;
    (* Any failing seed must replay bit-for-bit: re-run it and compare the
       journal fingerprints, and keep the journal for offline debugging. *)
    let diverged = ref false in
    List.iter
      (fun (t : Dst.Harness.trial) ->
        let seed = t.Dst.Harness.seed in
        (match journal_dir with
        | None -> ()
        | Some dir ->
            let write name contents =
              let file = Filename.concat dir (Printf.sprintf "dst-seed-%d.%s" seed name) in
              let oc = open_out file in
              output_string oc contents;
              close_out oc;
              Printf.printf "seed %d: %s written to %s\n" seed name file
            in
            write "journal" t.Dst.Harness.journal;
            write "flowtrace.jsonl" t.Dst.Harness.flowtrace;
            if t.Dst.Harness.flight <> "" then write "flight.jsonl" t.Dst.Harness.flight);
        let again = Dst.Harness.run { cfg with Dst.Harness.seed } in
        let identical = again.Dst.Harness.digest = t.Dst.Harness.digest in
        if not identical then diverged := true;
        Printf.printf "seed %d: replay %s (digest %s)\n" seed
          (if identical then "identical" else "DIVERGED")
          t.Dst.Harness.digest)
      failing;
    if !diverged then exit 2;
    if failing <> [] then exit 1
  in
  let seeds =
    Arg.(
      value & opt int 1
      & info [ "seeds" ] ~docv:"N" ~doc:"Sweep N consecutive seeds starting at --seed.")
  in
  let churn =
    Arg.(
      value & opt string "mixed"
      & info [ "scenario" ] ~docv:"NAME"
          ~doc:
            "Churn scenario: steady (none), kill (senders die mid-transfer), reuse \
             (killed senders' ports rebound with colliding transfer ids), restart \
             (engine stop/restart with lingering flows), or mixed.")
  in
  let fault_name =
    Arg.(
      value & opt string "chaos"
      & info [ "faults" ] ~docv:"NAME"
          ~doc:"Wire fault scenario applied per memnet endpoint (clean disables).")
  in
  let senders =
    Arg.(
      value & opt int 16
      & info [ "senders" ] ~docv:"N" ~doc:"Concurrent simulated senders.")
  in
  let transfers =
    Arg.(
      value & opt int 3
      & info [ "transfers" ] ~docv:"N" ~doc:"Transfers each sender attempts.")
  in
  let max_flows =
    Arg.(
      value & opt int 12
      & info [ "max-flows" ] ~docv:"N"
          ~doc:"Engine admission cap; below --senders exercises REJ under pressure.")
  in
  let shards =
    Arg.(
      value & opt int 1
      & info [ "shards" ] ~docv:"N"
          ~doc:
            "Engine shard count: N engine processes as members of one memnet \
             REUSEPORT-style group, with datagrams steered by a pure seeded hash of \
             the source address — a sharded trial replays bit-for-bit like any other.")
  in
  let until_virtual_s =
    Arg.(
      value & opt float 60.0
      & info [ "until-virtual-s" ] ~docv:"SECONDS"
          ~doc:"Virtual-time budget per trial (the hang backstop).")
  in
  let journal_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "journal-dir" ] ~docv:"DIR"
          ~doc:
            "Write each failing seed's event journal, flowtrace, and engine flight \
             ring to DIR (CI artifact hook).")
  in
  Cmd.v
    (Cmd.info "dst"
       ~doc:
         "Whole-system deterministic simulation: the concurrent server plus a sender \
          swarm under virtual time with seeded faults and churn; every trial asserts \
          verified-delivery-or-clean-failure and engine invariants, any failing seed \
          replays bit-for-bit, and thousands of virtual seconds run per wall second")
    Term.(
      const run $ seed $ seeds $ churn $ fault_name $ senders $ transfers $ max_flows
      $ shards $ until_virtual_s $ jobs $ tuning_flags $ journal_dir)

(* ------------------------------------------------------------ ring transfers *)

(* Both the put and a later repair pass (possibly another process) derive
   the object bytes from the seed alone, so a repair never needs the
   original invocation's buffer shipped to it. *)
let ring_payload ~seed bytes =
  String.init bytes (fun i -> Char.chr (Stats.Hash.mix2 ~seed i 1 land 0xff))

let ring_servers =
  Arg.(value & opt int 3 & info [ "servers" ] ~docv:"N" ~doc:"Ring members.")

let ring_stripes =
  Arg.(value & opt int 8 & info [ "stripes" ] ~docv:"N" ~doc:"Stripes the object splits into.")

let ring_replicas =
  Arg.(value & opt int 2 & info [ "replicas" ] ~docv:"R" ~doc:"Replicas per stripe.")

let ring_quorum =
  Arg.(value & opt int 2 & info [ "quorum" ] ~docv:"W" ~doc:"Write quorum per stripe.")

let ring_bytes =
  Arg.(value & opt int 262144 & info [ "bytes" ] ~docv:"BYTES" ~doc:"Object size.")

let ring_object_id =
  Arg.(value & opt int 1 & info [ "object-id" ] ~docv:"ID" ~doc:"Object identifier.")

let ring_base_port =
  Arg.(
    value & opt int 0
    & info [ "base-port" ] ~docv:"PORT"
        ~doc:"Member i binds PORT+i (0: ephemeral ports, printed at startup).")

let ring_validate ~servers ~stripes ~replicas ~quorum ~bytes =
  let fail fmt = Printf.ksprintf (fun m -> Printf.eprintf "ring: %s\n" m; exit 2) fmt in
  if servers < 1 then fail "need at least one server";
  if not (0 < replicas && replicas <= servers) then
    fail "need 0 < replicas (%d) <= servers (%d)" replicas servers;
  if not (0 < quorum && quorum <= replicas) then
    fail "need 0 < quorum (%d) <= replicas (%d)" quorum replicas;
  if stripes < 1 then fail "need at least one stripe";
  if bytes < stripes then fail "need bytes (%d) >= stripes (%d)" bytes stripes

let pp_replication counts =
  String.concat " " (Array.to_list (Array.map string_of_int counts))

let print_repair_report (report : Ring.Repair.report) =
  Printf.printf "survey: %d answered%s\n"
    (List.length report.Ring.Repair.answered)
    (match report.Ring.Repair.unresponsive with
    | [] -> ""
    | dead ->
        Printf.sprintf ", unresponsive [%s]"
          (String.concat " " (List.map string_of_int dead)));
  Printf.printf "replication before repair [%s]\n"
    (pp_replication report.Ring.Repair.before);
  List.iter
    (fun ((a : Ring.Repair.action), outcome) ->
      Format.printf "  re-blast stripe %d -> server %d: %a@." a.Ring.Repair.stripe
        a.Ring.Repair.server Protocol.Action.pp_outcome outcome)
    report.Ring.Repair.actions;
  Printf.printf "replication after repair  [%s]\n"
    (pp_replication report.Ring.Repair.after);
  Printf.printf "repair: %s in %.1f ms\n"
    (if report.Ring.Repair.fully_replicated then "fully replicated"
     else "UNDER-REPLICATED")
    (float_of_int report.Ring.Repair.elapsed_ns /. 1e6)

let ring_put_cmd =
  let run servers stripes replicas quorum bytes packet_bytes retransmit_ms max_attempts
      base_port object_id seed kill no_repair hold_s admin_port jobs =
    ring_validate ~servers ~stripes ~replicas ~quorum ~bytes;
    if kill && servers < 2 then begin
      Printf.eprintf "ring: --kill needs at least two servers\n";
      exit 2
    end;
    let fleet = Ring.Fleet.create ~base_port ~seed ?admin_port ~servers () in
    Ring.Fleet.start fleet;
    Fun.protect
      ~finally:(fun () ->
        Ring.Fleet.stop fleet;
        Ring.Fleet.join fleet)
      (fun () ->
        Printf.printf "ring: %d servers on ports [%s]\n%!" servers
          (String.concat " "
             (Array.to_list (Array.map string_of_int (Ring.Fleet.ports fleet))));
        let placement = Ring.Fleet.placement ~seed fleet in
        let peer_of = Ring.Fleet.peer_of fleet in
        let data = ring_payload ~seed bytes in
        (* The kill lands while the fan-out is in flight: the put must
           still reach its write quorum from the survivors. *)
        let killer =
          if not kill then None
          else begin
            let victim = Stats.Hash.mix2 ~seed object_id 2 mod servers in
            Some
              (Thread.create
                 (fun () ->
                   Thread.delay 0.002;
                   Ring.Fleet.kill fleet victim;
                   Printf.printf "killed server %d mid-transfer\n%!" victim)
                 ())
          end
        in
        let tuning =
          Protocol.Tuning.fixed ~retransmit_ns:(retransmit_ms * 1_000_000)
            ~max_attempts ()
        in
        let put =
          Ring.Client.put ?jobs ~packet_bytes ~tuning ~placement
            ~peer_of ~object_id ~stripes ~replicas ~quorum ~data ()
        in
        Option.iter Thread.join killer;
        Printf.printf
          "put object %d: %d bytes, %d stripes x %d replicas; acks [%s]; quorum %s in \
           %.1f ms\n"
          object_id bytes stripes replicas
          (pp_replication put.Ring.Client.acked)
          (if put.Ring.Client.quorum_met then "MET" else "UNMET")
          (float_of_int put.Ring.Client.elapsed_ns /. 1e6);
        (* With a kill, W = R puts can be unable to reach quorum for the dead
           member's stripes; the verdict that matters is the ring's own
           post-repair survey, so that is what the exit code reports. *)
        let ok =
          if no_repair then put.Ring.Client.quorum_met
          else begin
            let live = Ring.Fleet.live_placement ~seed fleet in
            let report =
              Ring.Repair.run ?jobs ~packet_bytes ~tuning
                ~placement:live ~peer_of ~object_id ~stripes ~replicas ~data ()
            in
            print_repair_report report;
            report.Ring.Repair.fully_replicated
            && Array.for_all (fun c -> c >= quorum) report.Ring.Repair.after
          end
        in
        let snap = Ring.Fleet.snapshot fleet in
        Printf.printf "fleet: %d/%d alive, %d stripe replicas held\n"
          (List.length (Ring.Fleet.alive fleet))
          servers
          (Option.value ~default:0
             (Option.bind (Obs.Json.member "manifest_stripes" snap) Obs.Json.to_int));
        if hold_s > 0.0 then begin
          Printf.printf "holding the ring for %.1f s (repair it from another shell: \
                         lanrepro ring-repair --base-port %d ...)\n%!"
            hold_s (Ring.Fleet.port fleet 0);
          Unix.sleepf hold_s
        end;
        if not ok then exit 1)
  in
  let packet_bytes =
    Arg.(value & opt int 1024 & info [ "packet-bytes" ] ~docv:"BYTES" ~doc:"Payload bytes per data packet.")
  in
  let retransmit_ms =
    Arg.(
      value & opt int 20
      & info [ "retransmit-ms" ] ~docv:"MS"
          ~doc:"Per-flow retransmit timer; with --max-attempts this bounds how long a \
                blast at a dead member keeps trying.")
  in
  let max_attempts =
    Arg.(value & opt int 15 & info [ "max-attempts" ] ~docv:"N" ~doc:"Retries before a flow gives up.")
  in
  let kill =
    Arg.(
      value & flag
      & info [ "kill" ]
          ~doc:"Kill one (seeded-random) server mid-transfer, permanently; the put must \
                reach quorum from the survivors and repair re-homes the dead member's \
                stripes.")
  in
  let no_repair =
    Arg.(value & flag & info [ "no-repair" ] ~doc:"Skip the read-repair pass after the put.")
  in
  let hold_s =
    Arg.(
      value & opt float 0.0
      & info [ "hold-s" ] ~docv:"SECONDS"
          ~doc:"Keep the ring serving after the put, so another invocation (ring-repair, \
                stat) can reach it.")
  in
  Cmd.v
    (Cmd.info "ring-put"
       ~doc:
         "Striped, replicated blast across an in-process server ring: split the object \
          into stripes, blast each to its consistent-hash replicas as ordinary \
          sub-transfers, report the write quorum, then read-repair; with --kill one \
          member dies mid-transfer and the object must survive. Exits non-zero if the \
          quorum or repair fails")
    Term.(
      const run $ ring_servers $ ring_stripes $ ring_replicas $ ring_quorum $ ring_bytes
      $ packet_bytes $ retransmit_ms $ max_attempts $ ring_base_port $ ring_object_id
      $ seed $ kill $ no_repair $ hold_s $ admin_port $ jobs)

let ring_repair_cmd =
  let run servers base_port dead bytes stripes replicas object_id seed jobs =
    ring_validate ~servers ~stripes ~replicas ~quorum:replicas ~bytes;
    if base_port <= 0 then begin
      Printf.eprintf "ring-repair: --base-port is required (the ring's first port)\n";
      exit 2
    end;
    let dead =
      match dead with
      | "" -> []
      | s -> List.map int_of_string (String.split_on_char ',' s)
    in
    let live = List.filter (fun i -> not (List.mem i dead)) (List.init servers Fun.id) in
    if live = [] then begin
      Printf.eprintf "ring-repair: every member is marked dead\n";
      exit 2
    end;
    let placement = Ring.Placement.create ~seed live in
    let peer_of i = Unix.ADDR_INET (Unix.inet_addr_loopback, base_port + i) in
    let data = ring_payload ~seed bytes in
    let report =
      Ring.Repair.run ?jobs ~placement ~peer_of ~object_id ~stripes ~replicas ~data ()
    in
    print_repair_report report;
    if not report.Ring.Repair.fully_replicated then exit 1
  in
  let base_port =
    Arg.(
      value & opt int 0
      & info [ "base-port" ] ~docv:"PORT" ~doc:"Member i listens on PORT+i.")
  in
  let dead =
    Arg.(
      value & opt string ""
      & info [ "dead" ] ~docv:"I,J"
          ~doc:"Member indices known dead; repair plans around them on the live ring.")
  in
  Cmd.v
    (Cmd.info "ring-repair"
       ~doc:
         "Read-repair an object on a running ring (e.g. ring-put --hold-s): survey every \
          live member's stripe manifest over MREQ/MREP, re-blast under-replicated \
          stripes to their live successors, and re-survey. Exits non-zero unless every \
          stripe ends fully replicated")
    Term.(
      const run $ ring_servers $ base_port $ dead $ ring_bytes $ ring_stripes
      $ ring_replicas $ ring_object_id $ seed $ jobs)

let ring_dst_cmd =
  let run seed seeds servers stripes replicas quorum fault_name no_kill object_bytes
      until_virtual_s jobs journal_dir =
    ring_validate ~servers ~stripes ~replicas ~quorum ~bytes:object_bytes;
    let faults = resolve_scenario (Some fault_name) in
    let base = Dst.Ring_sim.default_config ~seed in
    let cfg =
      {
        base with
        Dst.Ring_sim.servers;
        stripes;
        replicas;
        quorum;
        kill_one = not no_kill;
        faults;
        object_bytes;
        horizon_ns = int_of_float (until_virtual_s *. 1e9);
      }
    in
    let seed_list = List.init seeds (fun i -> seed + i) in
    let started = Unix.gettimeofday () in
    let trials = Dst.Ring_sim.run_seeds ?jobs cfg ~seeds:seed_list in
    let wall_s = Unix.gettimeofday () -. started in
    List.iter (fun t -> Format.printf "%a@." Dst.Ring_sim.pp_trial t) trials;
    Printf.printf "%d trial(s) in %.2f wall s (%d jobs)\n" (List.length trials) wall_s
      (effective_jobs jobs);
    let failing = List.filter (fun t -> t.Dst.Ring_sim.violations <> []) trials in
    List.iter
      (fun (t : Dst.Ring_sim.trial) ->
        List.iter
          (fun v -> Printf.printf "seed %d: %s\n" t.Dst.Ring_sim.seed v)
          t.Dst.Ring_sim.violations)
      failing;
    (* A failing seed must replay bit-for-bit; keep its journal for offline
       debugging, exactly like the dst subcommand. *)
    let diverged = ref false in
    List.iter
      (fun (t : Dst.Ring_sim.trial) ->
        let seed = t.Dst.Ring_sim.seed in
        (match journal_dir with
        | None -> ()
        | Some dir ->
            let file = Filename.concat dir (Printf.sprintf "ring-dst-seed-%d.journal" seed) in
            let oc = open_out file in
            output_string oc t.Dst.Ring_sim.journal;
            close_out oc;
            Printf.printf "seed %d: journal written to %s\n" seed file);
        let again = Dst.Ring_sim.run { cfg with Dst.Ring_sim.seed } in
        let identical = again.Dst.Ring_sim.digest = t.Dst.Ring_sim.digest in
        if not identical then diverged := true;
        Printf.printf "seed %d: replay %s (digest %s)\n" seed
          (if identical then "identical" else "DIVERGED")
          t.Dst.Ring_sim.digest)
      failing;
    if !diverged then exit 2;
    if failing <> [] then exit 1
  in
  let seeds =
    Arg.(
      value & opt int 1
      & info [ "seeds" ] ~docv:"N" ~doc:"Sweep N consecutive seeds starting at --seed.")
  in
  let servers =
    Arg.(value & opt int 5 & info [ "servers" ] ~docv:"N" ~doc:"Ring members.")
  in
  let replicas =
    Arg.(value & opt int 3 & info [ "replicas" ] ~docv:"R" ~doc:"Replicas per stripe.")
  in
  let fault_name =
    Arg.(
      value & opt string "clean"
      & info [ "faults" ] ~docv:"NAME"
          ~doc:"Wire fault scenario applied per memnet endpoint (clean disables).")
  in
  let no_kill =
    Arg.(value & flag & info [ "no-kill" ] ~doc:"Skip the mid-transfer server kill.")
  in
  let object_bytes =
    Arg.(value & opt int 65536 & info [ "bytes" ] ~docv:"BYTES" ~doc:"Object size.")
  in
  let until_virtual_s =
    Arg.(
      value & opt float 60.0
      & info [ "until-virtual-s" ] ~docv:"SECONDS"
          ~doc:"Virtual-time budget per trial (the hang backstop).")
  in
  let journal_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "journal-dir" ] ~docv:"DIR"
          ~doc:"Write each failing seed's event journal to DIR (CI artifact hook).")
  in
  Cmd.v
    (Cmd.info "ring-dst"
       ~doc:
         "Deterministic simulation of a ring transfer: N engines under virtual time, a \
          striped replicated put with one server killed mid-transfer, then read-repair; \
          every trial asserts the write quorum survives the death and repair restores \
          full replication, and any failing seed replays bit-for-bit")
    Term.(
      const run $ seed $ seeds $ servers $ ring_stripes $ replicas $ ring_quorum
      $ fault_name $ no_kill $ object_bytes $ until_virtual_s $ jobs $ journal_dir)

(* --------------------------------------------------------- live stats plane *)

let stat_addr =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"ADDR"
        ~doc:"Stat socket address, HOST:PORT or just PORT (host defaults to 127.0.0.1).")

let stat_timeout_ms =
  Arg.(
    value & opt int 1000
    & info [ "timeout-ms" ] ~docv:"MS" ~doc:"Per-attempt reply timeout.")

let stat_retries =
  Arg.(
    value & opt int 3
    & info [ "retries" ] ~docv:"N" ~doc:"Query attempts before giving up (UDP, so lossy).")

(* Path lookup into a parsed snapshot; every accessor is total so a truncated
   or foreign reply degrades to "-" cells instead of an exception. *)
let json_path path json =
  List.fold_left (fun acc key -> Option.bind acc (Obs.Json.member key)) (Some json) path

let json_int path json = Option.bind (json_path path json) Obs.Json.to_int
let json_float path json = Option.bind (json_path path json) Obs.Json.to_float
let json_str path json = Option.bind (json_path path json) Obs.Json.to_str

let fetch_snapshot addr timeout_ms retries =
  match Server.Admin.parse_address addr with
  | Error e ->
      Printf.eprintf "stat: %s\n" e;
      exit 2
  | Ok sockaddr -> (
      match Server.Admin.query ~timeout_ms ~retries sockaddr with
      | Error e -> Error e
      | Ok json -> (
          match json_str [ "schema" ] json with
          | Some "lanrepro-stat/1" -> Ok json
          | Some other -> Error (Printf.sprintf "unexpected snapshot schema %S" other)
          | None -> Error "reply is not a lanrepro stat snapshot (no schema field)"))

let stat_cmd =
  let run addr timeout_ms retries =
    match fetch_snapshot addr timeout_ms retries with
    | Error e ->
        Printf.eprintf "stat: %s\n" e;
        exit 1
    | Ok json -> print_endline (Obs.Json.to_string json)
  in
  Cmd.v
    (Cmd.info "stat"
       ~doc:
         "Query a running server's stat socket (serve/swarm --admin-port) once and \
          print the JSON snapshot: per-flow states, loop-health quantiles, and \
          engine counters")
    Term.(const run $ stat_addr $ stat_timeout_ms $ stat_retries)

let render_snapshot buf addr json =
  let cell = function Some f -> Printf.sprintf "%10.1f" f | None -> "         -" in
  let int_or d path = Option.value ~default:d (json_int path json) in
  let uptime_s = float_of_int (int_or 0 [ "uptime_ns" ]) /. 1e9 in
  let shard_count = int_or 1 [ "shards" ] in
  let unresponsive = int_or 0 [ "shards_unresponsive" ] in
  Buffer.add_string buf
    (Printf.sprintf "lanrepro top — %s    uptime %.1f s%s\n\n" addr uptime_s
       (if shard_count > 1 then
          Printf.sprintf "    %d shards%s" shard_count
            (if unresponsive > 0 then Printf.sprintf " (%d unresponsive)" unresponsive
             else "")
        else ""));
  Buffer.add_string buf
    (Printf.sprintf
       "flows %d/%d active (%d omitted)   accepted %d  completed %d  aborted %d  \
        rejected %d  superseded %d\n"
       (int_or 0 [ "active_flows" ])
       (int_or 0 [ "max_flows" ])
       (int_or 0 [ "flows_omitted" ])
       (int_or 0 [ "totals"; "accepted" ])
       (int_or 0 [ "totals"; "completed" ])
       (int_or 0 [ "totals"; "aborted" ])
       (int_or 0 [ "totals"; "rejected" ])
       (int_or 0 [ "totals"; "superseded" ]));
  Buffer.add_string buf
    (Printf.sprintf "ticks %d  drain-exhausted %d  spurious %d  timer-heap %d\n\n"
       (int_or 0 [ "health"; "ticks" ])
       (int_or 0 [ "health"; "drain_exhausted" ])
       (int_or 0 [ "health"; "spurious_wakeups" ])
       (int_or 0 [ "health"; "timer_heap" ]));
  (* Per-shard lanes: one row per shard from the aggregated snapshot's
     [per_shard] breakdown (absent on a single-engine server). *)
  (match Option.bind (json_path [ "per_shard" ] json) Obs.Json.to_list with
  | Some (_ :: _ as per_shard) when shard_count > 1 ->
      Buffer.add_string buf
        (Printf.sprintf "%-6s %8s %9s %10s %8s %8s %10s %11s\n" "shard" "active"
           "accepted" "completed" "rejected" "ticks" "spurious" "timer-heap");
      List.iter
        (fun row ->
          let rint_or d path = Option.value ~default:d (json_int path row) in
          match json_path [ "unresponsive" ] row with
          | Some (Obs.Json.Bool true) ->
              Buffer.add_string buf
                (Printf.sprintf "  s%-4d (unresponsive)\n" (rint_or 0 [ "shard" ]))
          | _ ->
              Buffer.add_string buf
                (Printf.sprintf "  s%-4d %8d %9d %10d %8d %8d %10d %11d\n"
                   (rint_or 0 [ "shard" ])
                   (rint_or 0 [ "active_flows" ])
                   (rint_or 0 [ "totals"; "accepted" ])
                   (rint_or 0 [ "totals"; "completed" ])
                   (rint_or 0 [ "totals"; "rejected" ])
                   (rint_or 0 [ "health"; "ticks" ])
                   (rint_or 0 [ "health"; "spurious_wakeups" ])
                   (rint_or 0 [ "health"; "timer_heap" ])))
        per_shard;
      Buffer.add_char buf '\n'
  | _ -> ());
  (* Ring fleets answer with a [per_server] breakdown instead: one row per
     member, manifest size included, dead members marked. *)
  (match Option.bind (json_path [ "per_server" ] json) Obs.Json.to_list with
  | Some (_ :: _ as per_server) ->
      Buffer.add_string buf
        (Printf.sprintf "%-6s %6s %6s %8s %9s %10s %9s %8s\n" "server" "port" "alive"
           "active" "accepted" "completed" "stripes" "ticks");
      List.iter
        (fun row ->
          let rint_or d path = Option.value ~default:d (json_int path row) in
          match json_path [ "unresponsive" ] row with
          | Some (Obs.Json.Bool true) ->
              Buffer.add_string buf
                (Printf.sprintf "  r%-4d %6d (unresponsive)\n"
                   (rint_or 0 [ "server" ])
                   (rint_or 0 [ "port" ]))
          | _ ->
              Buffer.add_string buf
                (Printf.sprintf "  r%-4d %6d %6s %8d %9d %10d %9d %8d\n"
                   (rint_or 0 [ "server" ])
                   (rint_or 0 [ "port" ])
                   (match json_path [ "alive" ] row with
                   | Some (Obs.Json.Bool false) -> "dead"
                   | _ -> "yes")
                   (rint_or 0 [ "active_flows" ])
                   (rint_or 0 [ "totals"; "accepted" ])
                   (rint_or 0 [ "totals"; "completed" ])
                   (rint_or 0 [ "manifest_stripes" ])
                   (rint_or 0 [ "health"; "ticks" ])))
        per_server;
      Buffer.add_char buf '\n'
  | _ -> ());
  Buffer.add_string buf
    (Printf.sprintf "%-22s %10s %10s %10s\n" "loop health" "p50" "p99" "max");
  let hist_row label key scale =
    let q name = Option.map (fun v -> v *. scale) (json_float [ "health"; key; name ] json) in
    Buffer.add_string buf
      (Printf.sprintf "  %-20s %s %s %s\n" label (cell (q "p50")) (cell (q "p99"))
         (cell (q "max")))
  in
  hist_row "tick duration (us)" "tick_duration_ns" 1e-3;
  hist_row "recv drain (pkts)" "recv_drained" 1.0;
  hist_row "flush train (pkts)" "flush_train" 1.0;
  hist_row "timer heap depth" "timer_heap_depth" 1.0;
  Buffer.add_char buf '\n';
  Buffer.add_string buf
    (Printf.sprintf "%-34s %-9s %-9s %13s %7s %8s\n" "flow" "status" "phase" "pkts"
       "rounds" "age");
  let flows =
    Option.value ~default:[]
      (Option.bind (json_path [ "flows" ] json) Obs.Json.to_list)
  in
  List.iter
    (fun flow ->
      let str_or d path = Option.value ~default:d (json_str path flow) in
      let fint_or d path = Option.value ~default:d (json_int path flow) in
      Buffer.add_string buf
        (Printf.sprintf "%-34s %-9s %-9s %6d/%6d %7d %6.1f s\n"
           (str_or "?" [ "flow" ])
           (str_or "?" [ "status" ])
           (str_or "?" [ "phase" ])
           (fint_or 0 [ "delivered" ])
           (fint_or 0 [ "total_packets" ])
           (fint_or 0 [ "rounds" ])
           (float_of_int (fint_or 0 [ "age_ns" ]) /. 1e9)))
    flows;
  if flows = [] then Buffer.add_string buf "  (no active flows)\n"

let top_cmd =
  let run addr timeout_ms retries interval count =
    let remaining = ref count in
    let misses = ref 0 in
    while !remaining <> 0 && !misses < retries + 2 do
      (match fetch_snapshot addr timeout_ms retries with
      | Error e ->
          incr misses;
          Printf.printf "\027[2J\027[Hlanrepro top — %s: %s (attempt %d)\n%!" addr e !misses
      | Ok json ->
          misses := 0;
          let buf = Buffer.create 1024 in
          render_snapshot buf addr json;
          (* Clear + home, then one write, so the refresh does not flicker. *)
          print_string "\027[2J\027[H";
          print_string (Buffer.contents buf);
          Stdlib.flush Stdlib.stdout);
      if !remaining > 0 then decr remaining;
      if !remaining <> 0 then Unix.sleepf interval
    done;
    if !misses > 0 then exit 1
  in
  let interval =
    Arg.(
      value & opt float 1.0
      & info [ "interval" ] ~docv:"SECONDS" ~doc:"Seconds between refreshes.")
  in
  let count =
    Arg.(
      value & opt int 0
      & info [ "count" ] ~docv:"N"
          ~doc:"Stop after N refreshes (default 0: run until interrupted).")
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:
         "Live terminal view of a running server's stat socket: summary line, \
          loop-health quantiles, and a per-flow table, refreshed in place")
    Term.(const run $ stat_addr $ stat_timeout_ms $ stat_retries $ interval $ count)

let () =
  let default = Term.(ret (const (`Help (`Pager, None)))) in
  exit
    (Cmd.eval
       (Cmd.group ~default
          (Cmd.info "lanrepro" ~version:"1.0.0"
             ~doc:"Protocols for large data transfers over local networks (SIGCOMM '85) — reproduction toolkit")
          [
            simulate_cmd;
            analyze_cmd;
            calibrate_cmd;
            timeline_cmd;
            mc_cmd;
            sweep_cmd;
            repro_cmd;
            send_cmd;
            recv_cmd;
            dump_cmd;
            restore_cmd;
            chaos_cmd;
            serve_cmd;
            swarm_cmd;
            dst_cmd;
            ring_put_cmd;
            ring_repair_cmd;
            ring_dst_cmd;
            stat_cmd;
            top_cmd;
          ]))
