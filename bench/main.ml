(* Benchmark harness.

   Two layers:
   1. Reproduction: prints every table and figure of the paper (plus the
      ablations) — `main.exe` runs all of them, `main.exe table1 fig5 ...`
      a subset, `main.exe --list` enumerates them.
   2. Micro-benchmarks: one Bechamel Test.make per experiment, timing the
      computational kernel that regenerates it (skip with --no-bechamel). *)

open Bechamel

let kernel_costs = Analysis.Costs.vkernel

let one_sim_transfer suite packets () =
  ignore
    (Simnet.Driver.run ~suite ~config:(Protocol.Config.make ~total_packets:packets ()) ())

let one_mc_sample strategy pn () =
  ignore
    (Montecarlo.Runner.sample
       ~sampler:(fun rng -> Montecarlo.Runner.iid rng ~loss:pn)
       ~timing:
         (Montecarlo.Runner.blast_timing kernel_costs
            ~tr:(Analysis.Error_free.blast kernel_costs ~packets:64))
       ~suite:(Protocol.Suite.Blast strategy) ~packets:64 ~trials:20 ~seed:1 ())

let analytic_sweep () =
  List.iter
    (fun pn ->
      ignore
        (Analysis.Expected_time.blast
           ~t0:(Analysis.Error_free.blast kernel_costs ~packets:64)
           ~tr:173.0 ~pn ~packets:64))
    Workload.Sizes.pn_ladder

let tests =
  [
    Test.make ~name:"table1:sim-64KiB-blast" (Staged.stage (one_sim_transfer (Protocol.Suite.Blast Protocol.Blast.Go_back_n) 64));
    Test.make ~name:"table1:sim-64KiB-saw" (Staged.stage (one_sim_transfer Protocol.Suite.Stop_and_wait 64));
    Test.make ~name:"table1:sim-64KiB-sw"
      (Staged.stage (one_sim_transfer (Protocol.Suite.Sliding_window { window = max_int }) 64));
    Test.make ~name:"table2:sim-1KiB-exchange"
      (Staged.stage (one_sim_transfer (Protocol.Suite.Blast Protocol.Blast.Go_back_n) 1));
    Test.make ~name:"table3:sim-64KiB-kernel"
      (Staged.stage (fun () ->
           ignore
             (Simnet.Driver.run ~params:Netmodel.Params.vkernel
                ~suite:(Protocol.Suite.Blast Protocol.Blast.Go_back_n)
                ~config:(Protocol.Config.make ~total_packets:64 ())
                ())));
    Test.make ~name:"fig4:analytic-curves"
      (Staged.stage (fun () ->
           for n = 1 to 64 do
             ignore (Analysis.Error_free.blast Analysis.Costs.standalone ~packets:n)
           done));
    Test.make ~name:"fig5:analytic-sweep" (Staged.stage analytic_sweep);
    Test.make ~name:"fig5:mc-full-retransmit" (Staged.stage (one_mc_sample Protocol.Blast.Full_retransmit 1e-3));
    Test.make ~name:"fig6:mc-go-back-n" (Staged.stage (one_mc_sample Protocol.Blast.Go_back_n 1e-3));
    Test.make ~name:"fig6:mc-selective" (Staged.stage (one_mc_sample Protocol.Blast.Selective 1e-3));
    Test.make ~name:"codec:encode-decode-1KiB"
      (Staged.stage
         (let m =
            Packet.Message.data ~transfer_id:1 ~seq:0 ~total:64
              ~payload:(String.make 1024 'x')
          in
          fun () ->
            match Packet.Codec.decode (Packet.Codec.encode m) with
            | Ok _ -> ()
            | Error _ -> assert false));
    Test.make ~name:"machine:blast-64-error-free"
      (Staged.stage (fun () ->
           ignore
             (Montecarlo.Runner.one_transfer
                ~drops:(fun () -> false)
                ~timing:(Montecarlo.Runner.blast_timing kernel_costs ~tr:173.0)
                ~suite:(Protocol.Suite.Blast Protocol.Blast.Go_back_n) ~packets:64 ())));
  ]

(* Machine-readable perf trajectory: every bench run rewrites
   BENCH_protocols.json with per-protocol elapsed time and throughput for
   the standard 64-packet sim transfer plus wall times for the Monte-Carlo
   kernels, so later changes can diff protocol-level timings instead of
   eyeballing the console tables. *)

let bench_json_path = "BENCH_protocols.json"

let wall_ns f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  let t1 = Unix.gettimeofday () in
  (r, int_of_float ((t1 -. t0) *. 1e9))

let bench_suites =
  [
    Protocol.Suite.Stop_and_wait;
    Protocol.Suite.Sliding_window { window = max_int };
    Protocol.Suite.Blast Protocol.Blast.Full_retransmit;
    Protocol.Suite.Blast Protocol.Blast.Full_retransmit_nack;
    Protocol.Suite.Blast Protocol.Blast.Go_back_n;
    Protocol.Suite.Blast Protocol.Blast.Selective;
    Protocol.Suite.Multi_blast { strategy = Protocol.Blast.Go_back_n; chunk_packets = 4 };
  ]

(* Wall-clock for the same 2000-trial Monte-Carlo sample at one worker and
   at the requested parallelism. The results are bit-for-bit identical by
   the Exec.Pool contract; only the wall time may differ (on a multi-core
   machine). *)
let mc_parallel_rows jobs =
  let sample strategy ~jobs =
    ignore
      (Montecarlo.Runner.sample ~jobs
         ~sampler:(fun rng -> Montecarlo.Runner.iid rng ~loss:1e-3)
         ~timing:
           (Montecarlo.Runner.blast_timing kernel_costs
              ~tr:(Analysis.Error_free.blast kernel_costs ~packets:64))
         ~suite:(Protocol.Suite.Blast strategy) ~packets:64 ~trials:2000 ~seed:1 ()
        : Montecarlo.Runner.sample)
  in
  List.map
    (fun (label, strategy) ->
      let (), serial_wall = wall_ns (fun () -> sample strategy ~jobs:1) in
      let (), parallel_wall = wall_ns (fun () -> sample strategy ~jobs) in
      Obs.Json.Obj
        [
          ("kernel", Obs.Json.String label);
          ( "protocol",
            Obs.Json.String (Protocol.Suite.name (Protocol.Suite.Blast strategy)) );
          ("trials", Obs.Json.Int 2000);
          ("jobs", Obs.Json.Int jobs);
          ("wall_ns_jobs1", Obs.Json.Int serial_wall);
          ("wall_ns_jobsN", Obs.Json.Int parallel_wall);
          ( "speedup",
            Obs.Json.Float (float_of_int serial_wall /. float_of_int (max 1 parallel_wall))
          );
        ])
    [
      ("fig5:mc-full-retransmit", Protocol.Blast.Full_retransmit);
      ("fig6:mc-go-back-n", Protocol.Blast.Go_back_n);
    ]

(* Per-datagram allocation of the receive path, fresh buffer vs the reusable
   one (satellite of the server work: the old path allocated 64 KiB per
   recvfrom). Loopback self-send so the numbers are pure socket-path cost. *)
let rx_alloc_iters = 1000

let rx_alloc_delta () =
  let socket, address = Sockets.Udp.create_socket () in
  let message =
    Packet.Message.data ~transfer_id:1 ~seq:0 ~total:1 ~payload:(String.make 1024 'x')
  in
  let measure recv =
    let before = Gc.allocated_bytes () in
    for _ = 1 to rx_alloc_iters do
      ignore (Sockets.Udp.send_message socket address message : Sockets.Udp.send_outcome);
      ignore
        (recv ()
          : [ `Message of Packet.Message.t * Unix.sockaddr
            | `Timeout
            | `Garbage of Packet.Codec.error ])
    done;
    (Gc.allocated_bytes () -. before) /. float_of_int rx_alloc_iters
  in
  let fresh =
    measure (fun () -> Sockets.Udp.recv_message ~timeout_ns:1_000_000_000 socket)
  in
  let buffer = Sockets.Udp.rx_buffer () in
  let reused =
    measure (fun () -> Sockets.Udp.recv_message ~timeout_ns:1_000_000_000 ~buffer socket)
  in
  Sockets.Udp.close socket;
  (fresh, reused)

(* Table 2 revisited at the syscall layer: a one-way loopback blast of 4 MiB
   in 1 KiB datagrams, submitted as packet trains of increasing length with
   the sendmmsg/recvmmsg fast path on and off. The receiver drains after
   every train so the socket buffer never overflows, and the syscall counts
   cover both directions. Best-of-N walls to shave scheduler noise. *)
let batched_io_datagrams = 4096
let batched_io_payload_bytes = 1024
let batched_io_reps = 5

let batched_io_run ~train ~batched =
  let rx_socket, address = Sockets.Udp.create_socket () in
  Unix.set_nonblock rx_socket;
  (try Unix.setsockopt_int rx_socket Unix.SO_RCVBUF (4 * 1024 * 1024)
   with Unix.Unix_error _ -> ());
  let tx_socket, _ = Sockets.Udp.create_socket () in
  let payload = Bytes.make batched_io_payload_bytes 'x' in
  let rx_buffer = Sockets.Udp.rx_buffer () in
  let run () =
    let tx_syscalls = ref 0 and rx_syscalls = ref 0 and received = ref 0 in
    let batch =
      if batched then Some (Sockets.Batch.create ~capacity:train ~socket:tx_socket ())
      else None
    in
    let rx =
      if batched then
        Some (Sockets.Batch.create_rx ~capacity:(min train 256) ~socket:rx_socket ())
      else None
    in
    let drain_once () =
      match rx with
      | Some r -> Sockets.Batch.recv r ~limit:max_int
      | None -> (
          incr rx_syscalls;
          match Unix.recvfrom rx_socket rx_buffer 0 (Bytes.length rx_buffer) [] with
          | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
            ->
              0
          | _ -> 1)
    in
    let rec drain_all () =
      let n = drain_once () in
      if n > 0 then begin
        received := !received + n;
        drain_all ()
      end
    in
    let t0 = Unix.gettimeofday () in
    let submitted = ref 0 in
    while !submitted < batched_io_datagrams do
      let n = min train (batched_io_datagrams - !submitted) in
      (match batch with
      | Some b ->
          for _ = 1 to n do
            Sockets.Batch.push b ~peer:address payload
          done;
          ignore (Sockets.Batch.flush b : Sockets.Batch.report)
      | None ->
          for _ = 1 to n do
            incr tx_syscalls;
            ignore
              (Sockets.Udp.send_bytes tx_socket address payload : Sockets.Udp.send_outcome)
          done);
      submitted := !submitted + n;
      drain_all ()
    done;
    (* Bounded tail: the last train may still be in flight through loopback. *)
    let deadline = Unix.gettimeofday () +. 1.0 in
    while !received < batched_io_datagrams && Unix.gettimeofday () < deadline do
      ignore (Unix.select [ rx_socket ] [] [] 0.01);
      drain_all ()
    done;
    let wall = Unix.gettimeofday () -. t0 in
    (match batch with
    | Some b -> tx_syscalls := (Sockets.Batch.totals b).Sockets.Batch.syscalls
    | None -> ());
    (match rx with Some r -> rx_syscalls := Sockets.Batch.rx_syscalls r | None -> ());
    (wall, !tx_syscalls, !rx_syscalls, !received)
  in
  let best = ref (run ()) in
  for _ = 2 to batched_io_reps do
    let (wall, _, _, _) as rep = run () in
    let best_wall, _, _, _ = !best in
    if wall < best_wall then best := rep
  done;
  Sockets.Udp.close tx_socket;
  Sockets.Udp.close rx_socket;
  !best

let batched_io_rows () =
  List.concat_map
    (fun train ->
      List.map
        (fun batched ->
          let wall, tx_syscalls, rx_syscalls, received = batched_io_run ~train ~batched in
          let per_datagram =
            float_of_int (tx_syscalls + rx_syscalls) /. float_of_int batched_io_datagrams
          in
          let goodput_mbit_s =
            if wall <= 0.0 then 0.0
            else float_of_int (received * batched_io_payload_bytes * 8) /. wall /. 1e6
          in
          Printf.printf
            "batched_io: train=%3d %-9s %5d tx + %5d rx syscalls (%.3f/datagram), %d/%d \
             received, %.0f Mbit/s\n\
             %!"
            train
            (if batched then "batched" else "unbatched")
            tx_syscalls rx_syscalls per_datagram received batched_io_datagrams
            goodput_mbit_s;
          Obs.Json.Obj
            [
              ("train_len", Obs.Json.Int train);
              ("batched", Obs.Json.Bool batched);
              ("datagrams", Obs.Json.Int batched_io_datagrams);
              ("payload_bytes", Obs.Json.Int batched_io_payload_bytes);
              ("received", Obs.Json.Int received);
              ("tx_syscalls", Obs.Json.Int tx_syscalls);
              ("rx_syscalls", Obs.Json.Int rx_syscalls);
              ("syscalls_per_datagram", Obs.Json.Float per_datagram);
              ("wall_ns", Obs.Json.Int (int_of_float (wall *. 1e9)));
              ("goodput_mbit_s", Obs.Json.Float goodput_mbit_s);
            ])
        [ true; false ])
    [ 1; 8; 32; 128 ]

(* Simulation rate of the whole-system deterministic trials, measured over a
   seed sweep so per-trial setup cost amortises the way it does in a real CI
   soak. Two rates: horizon virtual s per wall s (what a seed sweep costs —
   the harness floor is 1000, and idle virtual time is free to simulate) and
   active virtual s per wall s (event-dense time only, the honest measure of
   the event loop itself). *)
let dst_sweep_seeds = 10

let dst_rows () =
  List.map
    (fun (label, churn, faults) ->
      let cfg =
        {
          (Dst.Harness.default_config ~seed:1) with
          Dst.Harness.churn;
          faults;
          senders = 8;
          transfers = 2;
        }
      in
      let seeds = List.init dst_sweep_seeds (fun i -> i + 1) in
      let trials, wall = wall_ns (fun () -> Dst.Harness.run_seeds ~jobs:1 cfg ~seeds) in
      let virtual_ns =
        List.fold_left (fun acc t -> acc + t.Dst.Harness.virtual_ns) 0 trials
      in
      let events = List.fold_left (fun acc t -> acc + t.Dst.Harness.events) 0 trials in
      let attempted =
        List.fold_left (fun acc t -> acc + t.Dst.Harness.attempted) 0 trials
      in
      let completed =
        List.fold_left (fun acc t -> acc + t.Dst.Harness.completed) 0 trials
      in
      let violations =
        List.fold_left (fun acc t -> acc + List.length t.Dst.Harness.violations) 0 trials
      in
      let horizon_ns = dst_sweep_seeds * cfg.Dst.Harness.horizon_ns in
      let active_per_wall =
        if wall <= 0 then 0.0 else float_of_int virtual_ns /. float_of_int wall
      in
      let horizon_per_wall =
        if wall <= 0 then 0.0 else float_of_int horizon_ns /. float_of_int wall
      in
      Printf.printf
        "dst: %-12s %d seeds, %.0f virtual s (%.1f active) in %6.1f wall ms (%6.0f \
         horizon / %4.0f active virtual s per wall s, %d events, %d/%d completed)\n\
         %!"
        label dst_sweep_seeds
        (float_of_int horizon_ns /. 1e9)
        (float_of_int virtual_ns /. 1e9)
        (float_of_int wall /. 1e6)
        horizon_per_wall active_per_wall events completed attempted;
      Obs.Json.Obj
        [
          ("scenario", Obs.Json.String label);
          ("churn", Obs.Json.String (Dst.Harness.churn_name churn));
          ("senders", Obs.Json.Int cfg.Dst.Harness.senders);
          ("seeds", Obs.Json.Int dst_sweep_seeds);
          ("attempted", Obs.Json.Int attempted);
          ("completed", Obs.Json.Int completed);
          ("events", Obs.Json.Int events);
          ("active_virtual_ns", Obs.Json.Int virtual_ns);
          ("horizon_virtual_ns", Obs.Json.Int horizon_ns);
          ("wall_ns", Obs.Json.Int wall);
          ("horizon_virtual_s_per_wall_s", Obs.Json.Float horizon_per_wall);
          ("active_virtual_s_per_wall_s", Obs.Json.Float active_per_wall);
          ("violations", Obs.Json.Int violations);
        ])
    [
      ("clean-steady", Dst.Harness.Steady, None);
      ("chaos-mixed", Dst.Harness.Mixed, Some Faults.Scenario.chaos);
    ]

(* Aggregate service capacity of the concurrent server at increasing fan-in:
   N simultaneous senders against one port, small payloads so the smoke run
   stays fast — at shards=1 (the single-engine loop, the ceiling this bench
   historically measured) and shards=4 (the SO_REUSEPORT fleet). Every row
   records the shard/jobs count it actually ran with and what the host could
   have offered ([recommended_domains]): a 1-core CI box runs the same
   matrix, it just cannot honestly pass the scaling gates there. *)
let serve_concurrency_rows () =
  (* The widest fan-in run doubles as the loop-health sample: its engine
     snapshot (taken after the loop exited) carries the tick-duration and
     heap-depth histograms for the bench's [engine_health] section. *)
  let health = ref Obs.Json.Null in
  let domains = Domain.recommended_domain_count () in
  let goodput = Hashtbl.create 16 in
  let rows =
    List.concat_map
      (fun shards ->
        List.map
          (fun flows ->
            let report =
              Server.Swarm.run ~flows ~bytes:16384 ~packet_bytes:1024 ~seed:1 ~shards ()
            in
            Hashtbl.replace goodput (shards, flows) report.Server.Swarm.aggregate_mbit_s;
            (match Obs.Json.member "health" report.Server.Swarm.engine_snapshot with
            | Some h ->
                health :=
                  Obs.Json.Obj
                    [
                      ("flows", Obs.Json.Int flows);
                      ("shards", Obs.Json.Int shards);
                      ("health", h);
                    ]
            | None -> ());
            let lat = Obs.Hist.snapshot report.Server.Swarm.latency_ms in
            Obs.Json.Obj
              [
                ("flows", Obs.Json.Int flows);
                ("shards", Obs.Json.Int report.Server.Swarm.shards);
                ("jobs", Obs.Json.Int report.Server.Swarm.jobs);
                ("recommended_domains", Obs.Json.Int domains);
                ("bytes_per_flow", Obs.Json.Int report.Server.Swarm.bytes_per_flow);
                ("completed", Obs.Json.Int report.Server.Swarm.completed);
                ("rejected", Obs.Json.Int report.Server.Swarm.rejected);
                ("failed", Obs.Json.Int report.Server.Swarm.failed);
                ("wall_ns", Obs.Json.Int report.Server.Swarm.elapsed_ns);
                ("aggregate_mbit_s", Obs.Json.Float report.Server.Swarm.aggregate_mbit_s);
                ("latency_ms_mean", Obs.Json.Float lat.Obs.Hist.mean);
                ("latency_ms_p50", Obs.Json.Float lat.Obs.Hist.p50);
                ("latency_ms_p90", Obs.Json.Float lat.Obs.Hist.p90);
                ("latency_ms_p99", Obs.Json.Float lat.Obs.Hist.p99);
                ("latency_ms_max", Obs.Json.Float lat.Obs.Hist.max);
              ])
          [ 1; 8; 32; 64; 256 ])
      [ 1; 4 ]
  in
  (* Scaling gates — skipped honestly, never faked, on hosts without the
     cores to run a real fleet (the skip is printed and the per-row
     [recommended_domains] records why). *)
  let g shards flows = Hashtbl.find_opt goodput (shards, flows) in
  if domains >= 4 then begin
    (match (g 1 32, g 4 32) with
    | Some single, Some sharded when single > 0.0 ->
        if sharded < 2.0 *. single then begin
          Printf.eprintf
            "bench: FAIL serve_concurrency scaling — shards=4 at 32 flows is %.2fx \
             shards=1 (%.2f vs %.2f Mbit/s; need >= 2x)\n"
            (sharded /. single) sharded single;
          exit 1
        end
    | _ -> ());
    match (g 4 1, g 4 64, g 4 256) with
    | Some g1, Some g64, Some g256 ->
        if g64 < g1 && g256 < g64 then begin
          Printf.eprintf
            "bench: FAIL serve_concurrency collapse — sharded goodput falls \
             monotonically 1 -> 64 -> 256 flows (%.2f -> %.2f -> %.2f Mbit/s)\n"
            g1 g64 g256;
          exit 1
        end
    | _ -> ()
  end
  else
    Printf.printf
      "serve_concurrency: SKIP scaling gates (host recommends %d domain(s); a shard \
       fleet needs >= 4)\n\
       %!"
      domains;
  (rows, !health)

(* Striped replicated ring transfers: wall-clock completion of a
   write-quorum put against a real-UDP fleet, as stripe width grows, on a
   clean wire and under loss. Striping only pays when the host has domains
   to run the fan-out in parallel, so the width gate arms on >= 4
   recommended domains and is otherwise printed as a SKIP (the per-row
   [recommended_domains] records why). *)
let ring_stripe_rows () =
  let domains = Domain.recommended_domain_count () in
  let bytes = 262_144 and servers = 4 and replicas = 2 and quorum = 2 in
  let data = String.init bytes (fun i -> Char.chr (i land 0xff)) in
  let clean_ns = Hashtbl.create 8 in
  let rows =
    List.concat_map
      (fun scenario ->
        let clean = Faults.Scenario.is_clean scenario in
        List.map
          (fun stripes ->
            let fleet =
              Ring.Fleet.create
                ?scenario:(if clean then None else Some scenario)
                ~seed:1 ~servers ()
            in
            Ring.Fleet.start fleet;
            Fun.protect
              ~finally:(fun () ->
                Ring.Fleet.stop fleet;
                Ring.Fleet.join fleet)
              (fun () ->
                let put =
                  Ring.Client.put
          ~tuning:(Protocol.Tuning.fixed ~retransmit_ns:20_000_000 ~max_attempts:20 ())
                    ~placement:(Ring.Fleet.placement ~seed:1 fleet)
                    ~peer_of:(Ring.Fleet.peer_of fleet)
                    ~object_id:1 ~stripes ~replicas ~quorum ~data ()
                in
                if clean then Hashtbl.replace clean_ns stripes put.Ring.Client.elapsed_ns;
                Obs.Json.Obj
                  [
                    ("scenario", Obs.Json.String (Faults.Scenario.name scenario));
                    ("stripes", Obs.Json.Int stripes);
                    ("replicas", Obs.Json.Int replicas);
                    ("quorum", Obs.Json.Int quorum);
                    ("servers", Obs.Json.Int servers);
                    ("recommended_domains", Obs.Json.Int domains);
                    ("bytes", Obs.Json.Int bytes);
                    ("quorum_met", Obs.Json.Bool put.Ring.Client.quorum_met);
                    ("wall_ns", Obs.Json.Int put.Ring.Client.elapsed_ns);
                  ]))
          [ 1; 4; 16 ])
      [ Faults.Scenario.clean; Faults.Scenario.lossy2 ]
  in
  if domains >= 4 then begin
    match (Hashtbl.find_opt clean_ns 1, Hashtbl.find_opt clean_ns 4) with
    | Some w1, Some w4 when w1 > 0 ->
        (* Width 4 must not lose to the single path on a host that can
           actually parallelize it; 25% slack absorbs wall-clock noise. *)
        if float_of_int w4 > 1.25 *. float_of_int w1 then begin
          Printf.eprintf
            "bench: FAIL ring_stripe width — stripes=4 put took %.1f ms vs %.1f ms at \
             stripes=1 (need <= 1.25x)\n"
            (float_of_int w4 /. 1e6) (float_of_int w1 /. 1e6);
          exit 1
        end
    | _ -> ()
  end
  else
    Printf.printf
      "ring_stripe: SKIP width gate (host recommends %d domain(s); the striped fan-out \
       needs >= 4)\n\
       %!"
      domains;
  rows

(* Adaptive trains vs the fixed ladder. Two legs, one geometry each:

   - simnet: a 256-packet transfer over the simulated LAN per netem
     scenario, fixed trains as Multi_blast chunks of 1/8/32/128 vs the
     AIMD-controlled adaptive blast. Virtual-time elapsed, so the rows are
     deterministic.
   - UDP swarm: the concurrent server under real sockets, same ladder,
     goodput from the swarm report's wall clock.

   Gate (both legs, per scenario): adaptive must reach at least 0.9x the
   best fixed train — the point of the controller is to find the geometry,
   not to be handed it. *)
let adaptive_gate = 0.9

let adaptive_fixed_trains = [ 1; 8; 32; 128 ]

let adaptive_scenarios = [ Faults.Scenario.clean; Faults.Scenario.lossy2 ]

let adaptive_sim_packets = 256

let adaptive_blast_rows () =
  let failures = ref [] in
  let sim_rows =
    List.concat_map
      (fun scenario ->
        let faults seed =
          if Faults.Scenario.is_clean scenario then None
          else Some (Faults.Netem.create ~seed scenario)
        in
        let goodput config suite =
          let result =
            Simnet.Driver.run ?sender_faults:(faults 11) ?receiver_faults:(faults 12)
              ~suite ~config ()
          in
          let elapsed_ms = Simnet.Driver.elapsed_ms result in
          if result.Simnet.Driver.outcome <> Protocol.Action.Success || elapsed_ms <= 0.0
          then 0.0
          else float_of_int (adaptive_sim_packets * 1024 * 8) /. (elapsed_ms /. 1e3) /. 1e6
        in
        let row ~train ~goodput:g =
          Obs.Json.Obj
            [
              ("scenario", Obs.Json.String (Faults.Scenario.name scenario));
              ("train", Obs.Json.String train);
              ("goodput_mbit_s", Obs.Json.Float g);
            ]
        in
        let fixed_rows =
          List.map
            (fun chunk ->
              let config =
                Protocol.Config.make
                  ~tuning:(Protocol.Tuning.fixed ~max_attempts:400 ())
                  ~total_packets:adaptive_sim_packets ()
              in
              let g =
                goodput config
                  (Protocol.Suite.Multi_blast
                     { strategy = Protocol.Blast.Selective; chunk_packets = chunk })
              in
              (chunk, g))
            adaptive_fixed_trains
        in
        let adaptive_goodput =
          let config =
            Protocol.Config.make
              ~tuning:(Protocol.Tuning.adaptive ~max_attempts:400 ())
              ~total_packets:adaptive_sim_packets ()
          in
          goodput config (Protocol.Suite.Blast Protocol.Blast.Selective)
        in
        let best_fixed = List.fold_left (fun acc (_, g) -> max acc g) 0.0 fixed_rows in
        Printf.printf
          "adaptive_blast sim: %-8s adaptive %7.1f Mbit/s vs best fixed %7.1f (%s)\n%!"
          (Faults.Scenario.name scenario)
          adaptive_goodput best_fixed
          (String.concat ", "
             (List.map (fun (c, g) -> Printf.sprintf "%d: %.1f" c g) fixed_rows));
        if adaptive_goodput < adaptive_gate *. best_fixed then
          failures :=
            Printf.sprintf "sim/%s: adaptive %.1f < %.1fx best fixed %.1f Mbit/s"
              (Faults.Scenario.name scenario)
              adaptive_goodput adaptive_gate best_fixed
            :: !failures;
        List.map (fun (c, g) -> row ~train:(string_of_int c) ~goodput:g) fixed_rows
        @ [ row ~train:"adaptive" ~goodput:adaptive_goodput ])
      adaptive_scenarios
  in
  let swarm_flows = 8 in
  let swarm_rows =
    List.concat_map
      (fun scenario ->
        let scenario_args =
          if Faults.Scenario.is_clean scenario then None else Some scenario
        in
        (* Real sockets and wall clocks: one swarm run on a loaded CI host
           can easily swing 30%, so each cell is the best of three — the
           gate compares achievable goodput, not scheduler luck. *)
        let goodput ~tuning ~suite =
          let one () =
            let report =
              Server.Swarm.run ~flows:swarm_flows ~bytes:65_536 ~packet_bytes:1024
                ~tuning ?scenario:scenario_args ?server_scenario:scenario_args ~seed:7
                ~suite ()
            in
            if report.Server.Swarm.completed < swarm_flows then 0.0
            else report.Server.Swarm.aggregate_mbit_s
          in
          List.fold_left (fun acc _ -> Float.max acc (one ())) 0.0 [ (); (); () ]
        in
        let row ~train ~goodput:g =
          Obs.Json.Obj
            [
              ("scenario", Obs.Json.String (Faults.Scenario.name scenario));
              ("train", Obs.Json.String train);
              ("flows", Obs.Json.Int swarm_flows);
              ("goodput_mbit_s", Obs.Json.Float g);
            ]
        in
        let fixed_rows =
          List.map
            (fun chunk ->
              let g =
                goodput
                  ~tuning:
                    (Protocol.Tuning.fixed ~retransmit_ns:20_000_000 ~max_attempts:100 ())
                  ~suite:
                    (Protocol.Suite.Multi_blast
                       { strategy = Protocol.Blast.Selective; chunk_packets = chunk })
              in
              (chunk, g))
            adaptive_fixed_trains
        in
        let adaptive_goodput =
          goodput
            ~tuning:
              (Protocol.Tuning.adaptive ~retransmit_ns:20_000_000 ~max_attempts:100 ())
            ~suite:(Protocol.Suite.Blast Protocol.Blast.Selective)
        in
        let best_fixed = List.fold_left (fun acc (_, g) -> max acc g) 0.0 fixed_rows in
        Printf.printf
          "adaptive_blast udp: %-8s adaptive %7.1f Mbit/s vs best fixed %7.1f (%s)\n%!"
          (Faults.Scenario.name scenario)
          adaptive_goodput best_fixed
          (String.concat ", "
             (List.map (fun (c, g) -> Printf.sprintf "%d: %.1f" c g) fixed_rows));
        if adaptive_goodput < adaptive_gate *. best_fixed then
          failures :=
            Printf.sprintf "udp/%s: adaptive %.1f < %.1fx best fixed %.1f Mbit/s"
              (Faults.Scenario.name scenario)
              adaptive_goodput adaptive_gate best_fixed
            :: !failures;
        List.map (fun (c, g) -> row ~train:(string_of_int c) ~goodput:g) fixed_rows
        @ [ row ~train:"adaptive" ~goodput:adaptive_goodput ])
      adaptive_scenarios
  in
  List.iter
    (fun msg -> Printf.eprintf "bench: FAIL adaptive_blast gate — %s\n" msg)
    !failures;
  if !failures <> [] then exit 1;
  Obs.Json.Obj
    [
      ("gate", Obs.Json.Float adaptive_gate);
      ("sim", Obs.Json.List sim_rows);
      ("udp_swarm", Obs.Json.List swarm_rows);
    ]

let write_bench_json ~jobs () =
  let packets = 64 in
  let sim_rows =
    List.map
      (fun suite ->
        let result, wall =
          wall_ns (fun () ->
              Simnet.Driver.run ~suite
                ~config:(Protocol.Config.make ~total_packets:packets ())
                ())
        in
        let elapsed_ms = Simnet.Driver.elapsed_ms result in
        (* Simulated goodput for the 64 KiB transfer, in Mbit/s. *)
        let throughput_mbit_s =
          float_of_int (packets * 1024 * 8) /. (elapsed_ms /. 1e3) /. 1e6
        in
        Obs.Json.Obj
          [
            ("protocol", Obs.Json.String (Protocol.Suite.name suite));
            ("elapsed_ms", Obs.Json.Float elapsed_ms);
            ("throughput_mbit_s", Obs.Json.Float throughput_mbit_s);
            ("wall_ns", Obs.Json.Int wall);
          ])
      bench_suites
  in
  let mc_rows =
    List.map
      (fun strategy ->
        let (), wall = wall_ns (one_mc_sample strategy 1e-3) in
        Obs.Json.Obj
          [
            ( "protocol",
              Obs.Json.String (Protocol.Suite.name (Protocol.Suite.Blast strategy)) );
            ("trials", Obs.Json.Int 20);
            ("wall_ns", Obs.Json.Int wall);
          ])
      [
        Protocol.Blast.Full_retransmit;
        Protocol.Blast.Full_retransmit_nack;
        Protocol.Blast.Go_back_n;
        Protocol.Blast.Selective;
      ]
  in
  let fresh_alloc, reused_alloc = rx_alloc_delta () in
  Printf.printf
    "rx buffer: %.0f B allocated per recv with a fresh buffer, %.0f B reused (%d loopback \
     datagrams)\n%!"
    fresh_alloc reused_alloc rx_alloc_iters;
  (* Regression gate: the reusable-buffer receive path is the default in
     every hot loop, and it must stay allocation-light. *)
  if reused_alloc > 4096.0 then begin
    Printf.eprintf
      "bench: FAIL rx_alloc regression — reused-buffer recv allocates %.0f B/datagram \
       (budget 4096)\n"
      reused_alloc;
    exit 1
  end;
  let serve_rows, engine_health = serve_concurrency_rows () in
  let json =
    Obs.Json.Obj
      [
        ("schema", Obs.Json.String "lanrepro-bench/9");
        ("packets", Obs.Json.Int packets);
        (* Context for mc_parallel: speedup > 1 is only possible when the
           host actually has cores to spread the domains over. *)
        ("recommended_domains", Obs.Json.Int (Domain.recommended_domain_count ()));
        ("sim_transfer", Obs.Json.List sim_rows);
        ("mc_kernels", Obs.Json.List mc_rows);
        ("mc_parallel", Obs.Json.List (mc_parallel_rows jobs));
        ("batched_io", Obs.Json.List (batched_io_rows ()));
        ("serve_concurrency", Obs.Json.List serve_rows);
        ("engine_health", engine_health);
        ("dst", Obs.Json.List (dst_rows ()));
        ("ring_stripe", Obs.Json.List (ring_stripe_rows ()));
        ("adaptive_blast", adaptive_blast_rows ());
        ( "rx_alloc",
          Obs.Json.Obj
            [
              ("iters", Obs.Json.Int rx_alloc_iters);
              ("fresh_bytes_per_recv", Obs.Json.Float fresh_alloc);
              ("reused_bytes_per_recv", Obs.Json.Float reused_alloc);
            ] );
      ]
  in
  let oc = open_out bench_json_path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (Obs.Json.to_string json));
  Printf.printf "wrote %s\n%!" bench_json_path

let run_bechamel () =
  print_endline "\n=== Bechamel micro-benchmarks (ns/run, OLS estimate) ===";
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~kde:None () in
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  let ols = Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |] in
  List.iter
    (fun test ->
      List.iter
        (fun elt ->
          let raw = Benchmark.run cfg instances elt in
          let result = Analyze.one ols Toolkit.Instance.monotonic_clock raw in
          let estimate =
            match Analyze.OLS.estimates result with
            | Some (est :: _) -> est
            | Some [] | None -> nan
          in
          let r2 = Option.value ~default:nan (Analyze.OLS.r_square result) in
          Printf.printf "%-32s %12.0f ns/run  (r2=%.3f)\n%!" (Test.Elt.name elt) estimate r2)
        (Test.elements test))
    tests

(* Pull a "--jobs N" (or "-j N") pair out of the raw argument list before
   the experiment-name filter runs: the numeric value would otherwise be
   mistaken for an experiment name. *)
let extract_jobs args =
  let rec go acc = function
    | [] -> (None, List.rev acc)
    | ("--jobs" | "-j") :: value :: rest -> begin
        match int_of_string_opt value with
        | Some j when j > 0 -> (Some j, List.rev_append acc rest)
        | _ ->
            Printf.eprintf "bench: --jobs expects a positive integer, got %S\n" value;
            exit 2
      end
    | ("--jobs" | "-j") :: [] ->
        Printf.eprintf "bench: --jobs expects a value\n";
        exit 2
    | a :: rest -> go (a :: acc) rest
  in
  go [] args

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let jobs_opt, args = extract_jobs args in
  let jobs = match jobs_opt with Some j -> j | None -> Exec.Pool.default_jobs () in
  let list_only = List.mem "--list" args in
  let no_bechamel = List.mem "--no-bechamel" args in
  let selected = List.filter (fun a -> not (String.length a > 1 && a.[0] = '-')) args in
  if list_only then List.iter (fun (name, _) -> print_endline name) Experiments.all
  else begin
    let to_run =
      if selected = [] then Experiments.all
      else
        List.map
          (fun name ->
            match List.assoc_opt name Experiments.all with
            | Some f -> (name, f)
            | None ->
                Printf.eprintf "unknown experiment %S (try --list)\n" name;
                exit 2)
          selected
    in
    Printf.printf "bench: jobs=%d (parallel Monte-Carlo timings)\n%!" jobs;
    let ppf = Format.std_formatter in
    List.iter (fun (_, f) -> f ppf) to_run;
    Format.pp_print_flush ppf ();
    write_bench_json ~jobs ();
    if not no_bechamel then run_bechamel ()
  end
