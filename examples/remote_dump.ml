(* A remote file-system dump: the "larger sizes" extension the paper sketches
   in Section 3.1.3 — break a very large transfer into multiple blasts so one
   late error never retransmits the whole thing.

   Uses the Monte-Carlo runner (the abstraction the paper itself used for
   strategy simulation), so a 16 MiB dump costs milliseconds to evaluate.

   Run with: dune exec examples/remote_dump.exe *)

let () =
  let costs = Analysis.Costs.vkernel in
  let dump_packets = Workload.Sizes.dump_bytes / 1024 in
  let t0 = Analysis.Error_free.blast costs ~packets:dump_packets in
  let timing = Montecarlo.Runner.blast_timing costs ~tr:(0.05 *. t0) in
  Printf.printf "dump size: %d MiB = %d packets; error-free single blast: %.1f s\n\n"
    (Workload.Sizes.dump_bytes / 1024 / 1024)
    dump_packets (t0 /. 1000.0);
  Printf.printf "%-18s %14s %14s %14s\n" "chunking" "pn=1e-5" "pn=1e-4" "pn=1e-3";
  let evaluate chunk =
    let suite =
      if chunk >= dump_packets then
        Protocol.Suite.Blast Protocol.Blast.Full_retransmit_nack
      else
        Protocol.Suite.Multi_blast
          { strategy = Protocol.Blast.Full_retransmit_nack; chunk_packets = chunk }
    in
    let label = if chunk >= dump_packets then "single blast" else Printf.sprintf "%d-packet" chunk in
    let cell pn =
      let summary =
        (Montecarlo.Runner.sample
           ~sampler:(fun rng -> Montecarlo.Runner.iid rng ~loss:pn)
           ~timing ~suite ~packets:dump_packets ~trials:25 ~seed:3 ())
          .Montecarlo.Runner.elapsed_ms
      in
      Printf.sprintf "%10.2f s" (Stats.Summary.mean summary /. 1000.0)
    in
    Printf.printf "%-18s %14s %14s %14s\n%!" label (cell 1e-5) (cell 1e-4) (cell 1e-3)
  in
  List.iter evaluate [ 64; 256; 1024; dump_packets ];
  print_endline
    "\nsmaller chunks pay a per-chunk ack round but cap the cost of each error;\n\
     at the interface error rate (1e-4) a few hundred packets per blast is the sweet spot."
