(* Quickstart: move 64 KiB across the simulated Ethernet with each protocol
   and see why the paper argues for blast.

   Run with: dune exec examples/quickstart.exe *)

let () =
  let config = Protocol.Config.make ~total_packets:64 () in
  let run suite =
    let result = Simnet.Driver.run ~suite ~config () in
    Printf.printf "  %-28s %8.2f ms  (%d data packets, %d acks)\n"
      (Protocol.Suite.name suite)
      (Simnet.Driver.elapsed_ms result)
      result.Simnet.Driver.sender.Protocol.Counters.data_sent
      result.Simnet.Driver.receiver.Protocol.Counters.acks_sent
  in
  print_endline "64 KiB over a 10 Mb/s Ethernet, SUN-workstation constants:";
  run Protocol.Suite.Stop_and_wait;
  run (Protocol.Suite.Sliding_window { window = max_int });
  run (Protocol.Suite.Blast Protocol.Blast.Go_back_n);

  (* The reason: with blast, the two processors copy in parallel. Watch a
     three-packet transfer. *)
  print_endline "\nThree-packet blast, as a timeline (Figure 3.b of the paper):";
  let trace = Eventsim.Trace.create () in
  ignore
    (Simnet.Driver.run ~trace ~suite:(Protocol.Suite.Blast Protocol.Blast.Go_back_n)
       ~config:(Protocol.Config.make ~total_packets:3 ())
       ());
  print_endline (Report.Timeline.render ~width:80 trace);

  (* And under packet loss, go-back-n repairs cheaply. *)
  let rng = Stats.Rng.create ~seed:7 in
  let network_error = Netmodel.Error_model.iid rng ~loss:0.01 in
  let lossy = Simnet.Driver.run ~network_error ~suite:(Protocol.Suite.Blast Protocol.Blast.Go_back_n) ~config () in
  Printf.printf "\nsame blast at 1%% packet loss: %.2f ms, %d packets retransmitted\n"
    (Simnet.Driver.elapsed_ms lossy)
    lossy.Simnet.Driver.sender.Protocol.Counters.retransmitted_data
