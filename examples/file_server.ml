(* A diskless workstation reading and writing files on a file server exactly
   as Section 2 of the paper describes: the client pre-allocates its buffer,
   tells the server about it with a short V-kernel message (Send/Receive/
   Reply), and the kernels blast the data across with MoveTo/MoveFrom — no
   intermediate copies.

   Run with: dune exec examples/file_server.exe *)

let () =
  let sim = Eventsim.Sim.create () in
  let wire = Netmodel.Wire.create sim ~params:Netmodel.Params.vkernel () in
  let server = Vkernel.Kernel.create wire ~name:"file-server" in
  let client = Vkernel.Kernel.create wire ~name:"workstation" in

  (* The server's "disk": two files exposed as read-only segments, plus a
     write-only spool for incoming data. *)
  let file name bytes =
    let contents = String.init bytes (fun i -> Char.chr ((i + String.length name) land 0xFF)) in
    let segment =
      Vkernel.Kernel.register_segment server ~rights:Vkernel.Kernel.Read_only
        (Bytes.of_string contents)
    in
    (name, segment, contents)
  in
  let catalogue = [ file "kernel.img" 65_536; file "paper.dvi" 24_000 ] in
  let spool = Bytes.create 32_768 in
  let spool_segment =
    Vkernel.Kernel.register_segment server ~rights:Vkernel.Kernel.Write_only spool
  in

  let server_pid = Vkernel.Kernel.register_process server ~name:"fs" in
  let client_pid = Vkernel.Kernel.register_process client ~name:"app" in

  (* The file service: answer "open <name>" with "<segment> <length>", and
     "spool" with the spool segment id. *)
  Eventsim.Proc.spawn (Eventsim.Proc.env sim) (fun () ->
      while true do
        let request, token = Vkernel.Kernel.receive server ~pid:server_pid in
        let answer =
          match String.split_on_char ' ' request with
          | [ "open"; name ] -> begin
              match List.find_opt (fun (n, _, _) -> n = name) catalogue with
              | Some (_, segment, contents) ->
                  Printf.sprintf "%d %d" segment (String.length contents)
              | None -> "ENOENT"
            end
          | [ "spool" ] -> Printf.sprintf "%d %d" spool_segment (Bytes.length spool)
          | _ -> "EINVAL"
        in
        Vkernel.Kernel.reply server token answer
      done);

  (* The client application. *)
  Eventsim.Proc.spawn (Eventsim.Proc.env sim) (fun () ->
      let dst = Vkernel.Kernel.address server in
      let rpc body =
        match Vkernel.Kernel.send client ~dst ~from_pid:client_pid ~to_pid:server_pid body with
        | Ok reply -> reply
        | Error e -> Format.kasprintf failwith "rpc failed: %a" Vkernel.Kernel.pp_error e
      in
      let read_file name =
        match String.split_on_char ' ' (rpc ("open " ^ name)) with
        | [ segment; length ] ->
            let started = Eventsim.Sim.now sim in
            let data =
              match
                Vkernel.Kernel.move_from client ~dst ~segment:(int_of_string segment)
                  ~offset:0 ~len:(int_of_string length)
              with
              | Ok data -> data
              | Error e -> Format.kasprintf failwith "move_from: %a" Vkernel.Kernel.pp_error e
            in
            let ms =
              Eventsim.Time.span_to_ms (Eventsim.Time.diff (Eventsim.Sim.now sim) started)
            in
            Printf.printf "read %-12s %6d bytes in %6.1f ms\n" name (String.length data) ms;
            data
        | _ -> failwith ("no such file: " ^ name)
      in
      let kernel_img = read_file "kernel.img" in
      let _paper = read_file "paper.dvi" in
      (match List.find_opt (fun (n, _, _) -> n = "kernel.img") catalogue with
      | Some (_, _, contents) -> assert (String.equal kernel_img contents)
      | None -> assert false);

      (* Write a report back through the spool. *)
      (match String.split_on_char ' ' (rpc "spool") with
      | [ segment; _capacity ] ->
          let report = String.init 20_000 (fun i -> Char.chr ((i * 11) land 0xFF)) in
          let started = Eventsim.Sim.now sim in
          (match
             Vkernel.Kernel.move_to client ~dst ~segment:(int_of_string segment) ~offset:0
               ~data:report
           with
          | Ok () ->
              assert (String.equal (Bytes.sub_string spool 0 20_000) report);
              Printf.printf "wrote spool    %6d bytes in %6.1f ms\n" (String.length report)
                (Eventsim.Time.span_to_ms
                   (Eventsim.Time.diff (Eventsim.Sim.now sim) started))
          | Error e -> Format.kasprintf failwith "move_to: %a" Vkernel.Kernel.pp_error e)
      | _ -> failwith "bad spool reply");

      (* Access control is enforced before any data moves. *)
      match List.find_opt (fun (n, _, _) -> n = "kernel.img") catalogue with
      | Some (_, segment, _) -> begin
          match Vkernel.Kernel.move_to client ~dst ~segment ~offset:0 ~data:"vandalism" with
          | Error Vkernel.Kernel.Access_denied ->
              print_endline "write to read-only file: denied (as it should be)"
          | Ok () -> print_endline "BUG: wrote into a read-only segment"
          | Error e -> Format.printf "unexpected error: %a@." Vkernel.Kernel.pp_error e
        end
      | None -> assert false);
  Eventsim.Sim.run ~max_events:2_000_000 sim
