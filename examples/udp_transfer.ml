(* The same protocol machines over real UDP sockets on the loopback
   interface, with loss injected at the endpoints. The receiver runs on a
   second thread; in a real deployment the two halves run on different
   machines (see bin/lanrepro.ml for a CLI that does exactly that).

   Run with: dune exec examples/udp_transfer.exe *)

let () =
  let rng = Stats.Rng.create ~seed:2024 in
  let data = String.init (512 * 1024) (fun _ -> Char.chr (Stats.Rng.int rng 256)) in
  let suite = Protocol.Suite.Multi_blast { strategy = Protocol.Blast.Go_back_n; chunk_packets = 64 } in
  let ctx =
    {
      (Sockets.Io_ctx.default ()) with
      Sockets.Io_ctx.tuning = Protocol.Tuning.fixed ~retransmit_ns:25_000_000 ();
    }
  in

  let receiver_socket, receiver_address = Sockets.Udp.create_socket () in
  let sender_socket, _ = Sockets.Udp.create_socket () in

  let received = ref None in
  let receiver_thread =
    Thread.create
      (fun () ->
        received :=
          Some
            (Sockets.Peer.serve_one ~ctx
               ~lossy:(Sockets.Lossy.create ~seed:5 ~tx_loss:0.02 ~rx_loss:0.02)
               ~socket:receiver_socket ~suite ()))
      ()
  in

  Printf.printf "sending %d KiB over UDP loopback with 2%% injected loss each way...\n%!"
    (String.length data / 1024);
  let result =
    Sockets.Peer.send ~ctx
      ~lossy:(Sockets.Lossy.create ~seed:6 ~tx_loss:0.02 ~rx_loss:0.02)
      ~socket:sender_socket ~peer:receiver_address ~suite ~data ()
  in
  Thread.join receiver_thread;
  Sockets.Udp.close receiver_socket;
  Sockets.Udp.close sender_socket;

  let intact =
    match !received with
    | Some r -> String.equal r.Sockets.Peer.data data
    | None -> false
  in
  Printf.printf "outcome: %s in %.1f ms\n"
    (match result.Sockets.Peer.outcome with
    | Protocol.Action.Success -> "success"
    | Protocol.Action.Too_many_attempts -> "gave up"
    | Protocol.Action.Peer_unreachable -> "peer unreachable"
    | Protocol.Action.Rejected -> "rejected (server busy)")
    (float_of_int result.Sockets.Peer.elapsed_ns /. 1e6);
  Printf.printf "data packets sent: %d (%d were retransmissions)\n"
    result.Sockets.Peer.counters.Protocol.Counters.data_sent
    result.Sockets.Peer.counters.Protocol.Counters.retransmitted_data;
  Printf.printf "payload intact at the far end: %b\n" intact
