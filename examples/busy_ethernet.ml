(* The paper's conclusions hold "under low load conditions" — this example
   turns the caveat into a picture: the same 64 KiB blast on a CSMA/CD
   Ethernet while background traffic ramps from idle to saturation.

   Run with: dune exec examples/busy_ethernet.exe *)

let transfer ~offered_load ~seed =
  let arbiter =
    Netmodel.Arbiter.csma_cd
      ~rng:(Stats.Rng.create ~seed)
      ~propagation:Netmodel.Params.standalone.Netmodel.Params.propagation ()
  in
  let background wire =
    if offered_load > 0.0 then
      ignore
        (Simnet.Load.attach
           ~rng:(Stats.Rng.create ~seed:(seed + 1))
           ~offered_load wire)
  in
  let result =
    Simnet.Driver.run ~arbiter ~background
      ~suite:(Protocol.Suite.Blast Protocol.Blast.Go_back_n)
      ~config:(Protocol.Config.make ~total_packets:64 ())
      ()
  in
  (Simnet.Driver.elapsed_ms result, (Netmodel.Arbiter.stats arbiter).Netmodel.Arbiter.collisions)

let () =
  print_endline "64 KiB blast on a CSMA/CD Ethernet vs background offered load:";
  print_endline "";
  Printf.printf "  %-14s %-14s %-11s %s\n" "offered load" "elapsed (ms)" "collisions" "";
  let baseline, _ = transfer ~offered_load:0.0 ~seed:100 in
  List.iter
    (fun offered_load ->
      (* Average a few seeds: background arrivals are stochastic. *)
      let trials = if offered_load = 0.0 then 1 else 5 in
      let total = ref 0.0 and collisions = ref 0 in
      for i = 0 to trials - 1 do
        let ms, c = transfer ~offered_load ~seed:(100 + (i * 7)) in
        total := !total +. ms;
        collisions := !collisions + c
      done;
      let mean = !total /. float_of_int trials in
      let bar = String.make (int_of_float (mean /. 10.0)) '#' in
      Printf.printf "  %-14s %-14.1f %-11d %s\n"
        (Printf.sprintf "%.0f%%" (offered_load *. 100.0))
        mean (!collisions / trials) bar)
    [ 0.0; 0.1; 0.2; 0.3; 0.4; 0.5; 0.6; 0.7 ];
  Printf.printf "\nidle-network baseline: %.1f ms; degradation is graceful — the protocol\n" baseline;
  print_endline "comparison (blast vs stop-and-wait) is insensitive to load, which is why";
  print_endline "the paper could afford to measure on an idle wire."
