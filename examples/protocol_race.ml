(* Race all the protocols across transfer sizes and error rates on the full
   event-driven simulator, printing a league table. A compact tour of the
   whole public API: params, error models, campaigns, summaries.

   Run with: dune exec examples/protocol_race.exe *)

let contenders =
  [
    Protocol.Suite.Stop_and_wait;
    Protocol.Suite.Sliding_window { window = max_int };
    Protocol.Suite.Blast Protocol.Blast.Full_retransmit;
    Protocol.Suite.Blast Protocol.Blast.Full_retransmit_nack;
    Protocol.Suite.Blast Protocol.Blast.Go_back_n;
    Protocol.Suite.Blast Protocol.Blast.Selective;
  ]

let () =
  let sizes = [ 16; 64 ] in
  let losses = [ 0.0; 1e-3; 1e-2 ] in
  List.iter
    (fun packets ->
      Printf.printf "\n=== %d KiB transfer ===\n" packets;
      let header =
        "protocol"
        :: List.map
             (fun loss ->
               if loss = 0.0 then "error-free (ms)" else Printf.sprintf "pn=%g (ms)" loss)
             losses
      in
      let rows =
        List.map
          (fun suite ->
            Protocol.Suite.name suite
            :: List.map
                 (fun loss ->
                   let spec =
                     Simnet.Campaign.default ~network_loss:loss
                       ~trials:(if loss = 0.0 then 1 else 12)
                       ~seed:17 ~suite
                       ~config:(Protocol.Config.make ~total_packets:packets ())
                       ()
                   in
                   let outcome = Simnet.Campaign.run spec in
                   let mean = Stats.Summary.mean outcome.Simnet.Campaign.elapsed_ms in
                   let sd = Stats.Summary.stddev outcome.Simnet.Campaign.elapsed_ms in
                   if Float.is_nan sd || sd = 0.0 then Printf.sprintf "%.2f" mean
                   else Printf.sprintf "%.1f +/- %.1f" mean sd)
                 losses)
          contenders
      in
      print_endline (Report.Table.render ~header ~rows ()))
    sizes;
  print_endline
    "\nthe paper's conclusions, visible in one table: blast wins everywhere under\n\
     realistic loss; stop-and-wait pays ~2x; the retransmission strategy only\n\
     matters once errors get frequent."
