module Sim = Eventsim.Sim
module Proc = Eventsim.Proc
module Time = Eventsim.Time
module Mailbox = Eventsim.Mailbox
module Net = Memnet.Net

let log = Logs.Src.create "dst.ring" ~doc:"ring transfer deterministic simulation"

module Log = (val Logs.src_log log : Logs.LOG)

type config = {
  seed : int;
  servers : int;
  stripes : int;
  replicas : int;
  quorum : int;
  kill_one : bool;
  faults : Faults.Scenario.t option;
  object_bytes : int;
  packet_bytes : int;
  vnodes : int;
  max_flows : int;
  tuning : Protocol.Tuning.t;
  latency_ns : int;
  horizon_ns : int;
}

let default_config ~seed =
  {
    seed;
    servers = 5;
    stripes = 8;
    replicas = 3;
    quorum = 2;
    kill_one = true;
    faults = None;
    object_bytes = 64 * 1024;
    packet_bytes = 1024;
    vnodes = 32;
    max_flows = 64;
    tuning = Protocol.Tuning.fixed ~retransmit_ns:20_000_000 ~max_attempts:20 ();
    latency_ns = 50_000;
    horizon_ns = 60_000_000_000;
  }

type trial = {
  seed : int;
  fault_name : string;
  killed : int option;
  blasts : int;
  blast_ok : int;
  blast_failed : int;
  quorum_met : bool;  (** surveyed over the live ring, before repair *)
  repair_actions : int;
  repair_rounds : int;
  fully_replicated : bool;  (** surveyed after repair, live ring *)
  violations : string list;
  virtual_ns : int;
  events : int;
  journal : string;
  digest : string;
}

type harness = {
  cfg : config;
  sim : Sim.t;
  net : Net.t;
  journal : Buffer.t;
  violations : string list ref;
  engines : Server.Engine.t option array;
  dead : bool array;
  shutdown : bool ref;
  mutable last_activity_ns : int;
  mutable killed : int option;
  mutable blasts : int;
  mutable blast_ok : int;
  mutable blast_failed : int;
  mutable quorum_met : bool;
  mutable repair_actions : int;
  mutable repair_rounds : int;
  mutable fully_replicated : bool;
  mutable client_done : bool;
}

let base_port = 9_100
let object_id = 77

let now_ns h = Time.to_ns (Sim.now h.sim)
let clock_of h () = now_ns h

let line h fmt =
  Printf.ksprintf
    (fun s ->
      let now = now_ns h in
      h.last_activity_ns <- now;
      Buffer.add_string h.journal (Printf.sprintf "[%d] %s\n" now s))
    fmt

let violation h s =
  h.violations := s :: !(h.violations);
  line h "VIOLATION %s" s

let outcome_str o = Format.asprintf "%a" Protocol.Action.pp_outcome o
let addr_of server = Unix.ADDR_INET (Unix.inet_addr_loopback, base_port + server)

(* Seeded random payload, eight bytes per RNG draw. *)
let payload_for rng bytes =
  let buf = Bytes.create bytes in
  let full = bytes / 8 in
  for i = 0 to full - 1 do
    Bytes.set_int64_le buf (i * 8) (Stats.Rng.bits64 rng)
  done;
  if bytes land 7 <> 0 then begin
    let word = Stats.Rng.bits64 rng in
    for i = (full * 8) to bytes - 1 do
      Bytes.set_uint8 buf i
        (Int64.to_int (Int64.shift_right_logical word ((i land 7) * 8)) land 0xff)
    done
  end;
  Bytes.unsafe_to_string buf

(* ---------------------------------------------------------------- servers *)

let on_complete h index (e : Server.Engine.completion_event) =
  let c = e.Server.Engine.completion in
  let peer_port =
    match e.Server.Engine.peer with
    | Unix.ADDR_INET (_, p) -> p
    | Unix.ADDR_UNIX _ -> 0
  in
  (match (c.Sockets.Flow.outcome, c.Sockets.Flow.integrity) with
  | Protocol.Action.Success, Sockets.Flow.Verified -> ()
  | Protocol.Action.Success, _ ->
      violation h
        (Printf.sprintf "server %d settled a success without CRC verification" index)
  | _ -> ());
  line h "server %d settle peer=%d id=%d outcome=%s bytes=%d" index peer_port
    c.Sockets.Flow.transfer_id (outcome_str c.Sockets.Flow.outcome)
    (String.length c.Sockets.Flow.data)

(* One ring member: engine on its own port, no resurrection — a killed
   member stays dead and the repair pass re-homes its stripes instead. *)
let server_proc h index () =
  let ep = Net.bind ~port:(base_port + index) h.net in
  let transport = Net.transport ep in
  let engine =
    Server.Engine.create ~max_flows:h.cfg.max_flows
      ~ctx:(Sockets.Io_ctx.make ~clock:(clock_of h) ~tuning:h.cfg.tuning ())
      ~on_complete:(on_complete h index)
      ~lane_prefix:(Printf.sprintf "r%d:" index)
      ~transport ()
  in
  h.engines.(index) <- Some engine;
  line h "server %d up port=%d" index (base_port + index);
  (try Server.Engine.run engine
   with exn ->
     violation h
       (Printf.sprintf "server %d raised %s" index (Printexc.to_string exn)));
  h.engines.(index) <- None;
  line h "server %d down manifest=%d %s" index
    (Server.Engine.manifest_size engine)
    (Format.asprintf "%a" Server.Engine.pp_totals (Server.Engine.totals engine));
  Net.close ep

(* ----------------------------------------------------------------- client *)

(* One stripe replica as its own simulated process on its own ephemeral
   endpoint — the DST mirror of Ring.Client.blast. *)
let blast_proc h ~data ~results (job : Ring.Client.job) () =
  let ep = Net.bind h.net in
  let transport = Net.transport ep in
  let stripe =
    {
      Packet.Stripe.object_id;
      index = job.Ring.Client.stripe;
      count = h.cfg.stripes;
    }
  in
  let result =
    Sockets.Peer.send_via
      ~ctx:(Sockets.Io_ctx.make ~clock:(clock_of h) ~tuning:h.cfg.tuning ())
      ~transfer_id:object_id ~packet_bytes:h.cfg.packet_bytes ~stripe ~transport
      ~peer:(addr_of job.Ring.Client.server)
      ~suite:(Protocol.Suite.Blast Protocol.Blast.Go_back_n)
      ~data:(String.sub data job.Ring.Client.offset job.Ring.Client.bytes)
      ()
  in
  line h "blast stripe=%d replica=%d server=%d outcome=%s" job.Ring.Client.stripe
    job.Ring.Client.replica job.Ring.Client.server
    (outcome_str result.Sockets.Peer.outcome);
  Net.close ep;
  ignore (Mailbox.try_put results (job, result.Sockets.Peer.outcome))

let run_blasts h ~data jobs =
  let results : (Ring.Client.job * Protocol.Action.outcome) Mailbox.t =
    Mailbox.create ~capacity:max_int
  in
  List.iteri
    (fun i job ->
      Proc.spawn (Proc.env h.sim)
        ~name:(Printf.sprintf "blast-%d" i)
        (blast_proc h ~data ~results job))
    jobs;
  List.map (fun _ -> Mailbox.get results) jobs

(* Survey every live member over the wire — a fresh endpoint per query so a
   straggling reply from one server can never be read as another's. Returns
   the folded manifest plus the live members whose exchange never completed
   (under a hostile wire the survey itself is lossy): a partial survey can
   drive repair — re-blasting a held stripe is idempotent — but must never
   ground a quorum verdict against anyone. *)
let survey h =
  let manifest = Ring.Manifest.create ~object_id ~stripes:h.cfg.stripes in
  let answered = Array.make h.cfg.servers false in
  let remaining () =
    List.init h.cfg.servers Fun.id
    |> List.filter (fun s -> (not h.dead.(s)) && not answered.(s))
  in
  (* Up to three passes over the silent members: a single MREQ/MREP
     exchange can lose every attempt against a perfectly live server, so
     the survey retries before calling anyone unresponsive. *)
  let pass = ref 0 in
  while !pass < 3 && remaining () <> [] do
    incr pass;
    List.iter
      (fun server ->
        let ep = Net.bind h.net in
        let transport = Net.transport ep in
        (match
           Ring.Repair.query_via ~attempts:5
             ~timeout_ns:(4 * Protocol.Tuning.retransmit_ns h.cfg.tuning)
             ~clock:(clock_of h)
             ~transport ~peer:(addr_of server) ~object_id ()
         with
        | Some entries ->
            answered.(server) <- true;
            Ring.Manifest.record manifest ~server entries;
            line h "survey server=%d entries=%d" server (List.length entries)
        | None -> line h "survey server=%d unresponsive (pass %d)" server !pass);
        Net.close ep)
      (remaining ())
  done;
  (manifest, remaining ())

let replication_str counts =
  String.concat "," (List.map string_of_int (Array.to_list counts))

let client_proc h () =
  let cfg = h.cfg in
  let rng = Stats.Rng.derive ~root:cfg.seed ~index:42 in
  (* Let every server come up before the fan-out. *)
  Proc.sleep (Time.span_ns 5_000_000);
  let data = payload_for rng cfg.object_bytes in
  let crcs = Ring.Client.stripe_crcs ~data ~stripes:cfg.stripes in
  let placement =
    Ring.Placement.create ~vnodes:cfg.vnodes ~seed:cfg.seed
      (List.init cfg.servers Fun.id)
  in
  let jobs =
    Ring.Client.plan placement ~object_id ~total:cfg.object_bytes
      ~stripes:cfg.stripes ~replicas:cfg.replicas
  in
  h.blasts <- List.length jobs;
  line h "put start object=%d bytes=%d stripes=%d replicas=%d quorum=%d jobs=%d"
    object_id cfg.object_bytes cfg.stripes cfg.replicas cfg.quorum h.blasts;
  (* The kill lands while the fan-out is in flight: one member of the ring
     goes dark mid-transfer, for good. *)
  if cfg.kill_one then begin
    let victim = Stats.Rng.int rng cfg.servers in
    (* A clean fan-out settles within a couple of milliseconds of virtual
       time, so the kill must land inside the first one to be genuinely
       mid-transfer. *)
    let delay_ns = 100_000 + Stats.Rng.int rng 500_000 in
    Proc.spawn (Proc.env h.sim) ~name:"killer" (fun () ->
        Proc.sleep (Time.span_ns delay_ns);
        match h.engines.(victim) with
        | Some engine when not h.dead.(victim) ->
            h.dead.(victim) <- true;
            h.killed <- Some victim;
            line h "churn kill server=%d" victim;
            Server.Engine.stop engine
        | _ -> ())
  end;
  let results = run_blasts h ~data jobs in
  List.iter
    (fun (_, outcome) ->
      if outcome = Protocol.Action.Success then h.blast_ok <- h.blast_ok + 1
      else h.blast_failed <- h.blast_failed + 1)
    results;
  line h "put end ok=%d failed=%d" h.blast_ok h.blast_failed;
  (* The verdict comes from the ring's own answers, not from the blasts'
     view of themselves. The invariant is no {e false durability claim}:
     whenever the put's own outcomes reached the quorum (per stripe,
     [Success] >= W), the survey must confirm it. The converse is allowed —
     under a hostile enough wire a blast at a {e live} server can exhaust
     its attempts and fail cleanly, and then the put itself already
     reported the object not durable. Successes on the killed server do
     not count toward the claim: a replica may land there before the kill,
     and dies with it — which is precisely the gap repair exists to
     close, not a lie anyone told. *)
  let claimed = Array.make cfg.stripes 0 in
  List.iter
    (fun ((job : Ring.Client.job), outcome) ->
      if outcome = Protocol.Action.Success && not h.dead.(job.Ring.Client.server) then
        claimed.(job.Ring.Client.stripe) <- claimed.(job.Ring.Client.stripe) + 1)
    results;
  let put_claimed_quorum = Array.for_all (fun c -> c >= cfg.quorum) claimed in
  let manifest, unanswered = survey h in
  let counts = Ring.Manifest.replication manifest ~crcs in
  line h "replication before repair [%s]" (replication_str counts);
  h.quorum_met <- Ring.Manifest.quorum_met manifest ~quorum:cfg.quorum ~crcs;
  if not h.quorum_met then begin
    line h "write quorum unmet before repair (put claimed it: %b)" put_claimed_quorum;
    if put_claimed_quorum then
      if unanswered = [] then
        violation h
          (Printf.sprintf
             "false durability claim: put reached quorum but the survey says [%s]"
             (replication_str counts))
      else
        (* A partial survey reads a silent live server's holdings as zero;
           it can drive repair (re-blasting a held stripe is idempotent)
           but must never ground a quorum verdict against anyone. *)
        line h "survey partial (unanswered [%s]); quorum verdict skipped"
          (String.concat "," (List.map string_of_int unanswered))
  end;
  (* Read-repair on the live ring, to convergence (bounded rounds). *)
  let live =
    List.init cfg.servers Fun.id |> List.filter (fun i -> not h.dead.(i))
  in
  let live_placement =
    Ring.Placement.create ~vnodes:cfg.vnodes ~seed:cfg.seed live
  in
  let target_replicas = min cfg.replicas (List.length live) in
  let rec repair_rounds round (manifest, unanswered) =
    let actions =
      Ring.Repair.plan ~placement:live_placement ~object_id
        ~replicas:target_replicas ~crcs manifest
    in
    if actions = [] then (manifest, unanswered)
    else if round > 3 then begin
      (if unanswered = [] then
         violation h
           (Printf.sprintf
              "repair did not converge after 3 rounds (%d actions left)"
              (List.length actions))
       else
         line h "repair rounds exhausted on a partial survey (unanswered [%s])"
           (String.concat "," (List.map string_of_int unanswered)));
      (manifest, unanswered)
    end
    else begin
      h.repair_rounds <- round;
      h.repair_actions <- h.repair_actions + List.length actions;
      List.iter (fun a -> line h "repair %s" (Format.asprintf "%a" Ring.Repair.pp_action a)) actions;
      let jobs =
        List.map
          (fun (a : Ring.Repair.action) ->
            let offset, bytes =
              Ring.Client.stripe_bounds ~total:cfg.object_bytes
                ~stripes:cfg.stripes ~index:a.Ring.Repair.stripe
            in
            {
              Ring.Client.stripe = a.Ring.Repair.stripe;
              replica = -1;
              server = a.Ring.Repair.server;
              offset;
              bytes;
            })
          actions
      in
      let results = run_blasts h ~data jobs in
      List.iter
        (fun (_, outcome) ->
          if outcome = Protocol.Action.Success then h.blast_ok <- h.blast_ok + 1
          else h.blast_failed <- h.blast_failed + 1)
        results;
      repair_rounds (round + 1) (survey h)
    end
  in
  let manifest, unanswered = repair_rounds 1 (manifest, unanswered) in
  let counts = Ring.Manifest.replication manifest ~crcs in
  line h "replication after repair [%s]" (replication_str counts);
  h.fully_replicated <- Array.for_all (fun n -> n >= target_replicas) counts;
  if not h.fully_replicated then
    if unanswered = [] then
      violation h
        (Printf.sprintf
           "repair left the object under-replicated: [%s] (target %d)"
           (replication_str counts) target_replicas)
    else
      line h "under-replication verdict skipped: survey partial (unanswered [%s])"
        (String.concat "," (List.map string_of_int unanswered));
  h.client_done <- true;
  h.shutdown := true;
  line h "client done; stopping ring";
  Array.iter (function Some e -> Server.Engine.stop e | None -> ()) h.engines

let invariant_watch h =
  let rec tick () =
    Array.iteri
      (fun index e ->
        match e with
        | Some engine ->
            List.iter
              (fun v -> violation h (Printf.sprintf "server %d invariant: %s" index v))
              (Server.Engine.invariant_violations engine)
        | None -> ())
      h.engines;
    if not !(h.shutdown) then
      ignore (Sim.schedule_after h.sim (Time.span_ns 25_000_000) tick : Sim.handle)
  in
  ignore (Sim.schedule_after h.sim (Time.span_ns 25_000_000) tick : Sim.handle)

(* ------------------------------------------------------------------ trial *)

let run cfg =
  if cfg.servers <= 1 then invalid_arg "Dst.Ring: need at least 2 servers";
  if cfg.stripes <= 0 then invalid_arg "Dst.Ring: stripes must be positive";
  if cfg.replicas <= 0 || cfg.replicas > cfg.servers then
    invalid_arg "Dst.Ring: need 0 < replicas <= servers";
  if cfg.quorum <= 0 || cfg.quorum > cfg.replicas then
    invalid_arg "Dst.Ring: need 0 < quorum <= replicas";
  if cfg.kill_one && cfg.quorum > cfg.replicas - 1 then
    invalid_arg "Dst.Ring: quorum must survive one death (quorum <= replicas - 1)";
  if cfg.object_bytes < cfg.stripes then
    invalid_arg "Dst.Ring: fewer bytes than stripes";
  let sim = Sim.create () in
  let net =
    Net.create ~sim ~latency_ns:cfg.latency_ns ?scenario:cfg.faults ~seed:cfg.seed ()
  in
  let h =
    {
      cfg;
      sim;
      net;
      journal = Buffer.create 4096;
      violations = ref [];
      engines = Array.make cfg.servers None;
      dead = Array.make cfg.servers false;
      shutdown = ref false;
      last_activity_ns = 0;
      killed = None;
      blasts = 0;
      blast_ok = 0;
      blast_failed = 0;
      quorum_met = false;
      repair_actions = 0;
      repair_rounds = 0;
      fully_replicated = false;
      client_done = false;
    }
  in
  line h "ring seed=%d servers=%d stripes=%d replicas=%d quorum=%d kill=%b faults=%s"
    cfg.seed cfg.servers cfg.stripes cfg.replicas cfg.quorum cfg.kill_one
    (match cfg.faults with Some s -> Faults.Scenario.name s | None -> "clean");
  let env = Proc.env sim in
  for index = 0 to cfg.servers - 1 do
    Proc.spawn env ~name:(Printf.sprintf "server-%d" index) (server_proc h index)
  done;
  Proc.spawn env ~name:"client" (client_proc h);
  invariant_watch h;
  Sim.run ~until:(Time.of_ns cfg.horizon_ns) sim;
  if not h.client_done then
    violation h "client did not finish within the virtual horizon";
  let stats = Net.stats net in
  line h "net delivered=%d unbound=%d overrun=%d" stats.Net.delivered
    stats.Net.dropped_unbound stats.Net.dropped_overrun;
  line h "trial end blasts=%d ok=%d failed=%d quorum=%b repaired=%b actions=%d"
    h.blasts h.blast_ok h.blast_failed h.quorum_met h.fully_replicated
    h.repair_actions;
  let journal = Buffer.contents h.journal in
  let violations = List.rev !(h.violations) in
  let trial =
    {
      seed = cfg.seed;
      fault_name =
        (match cfg.faults with Some s -> Faults.Scenario.name s | None -> "clean");
      killed = h.killed;
      blasts = h.blasts;
      blast_ok = h.blast_ok;
      blast_failed = h.blast_failed;
      quorum_met = h.quorum_met;
      repair_actions = h.repair_actions;
      repair_rounds = h.repair_rounds;
      fully_replicated = h.fully_replicated;
      violations;
      virtual_ns = h.last_activity_ns;
      events = List.length (String.split_on_char '\n' journal) - 1;
      journal;
      digest = Digest.to_hex (Digest.string journal);
    }
  in
  Log.info (fun f ->
      f "ring seed %d: %d/%d blasts ok, %d violations" cfg.seed trial.blast_ok
        trial.blasts
        (List.length trial.violations));
  trial

let run_seeds ?jobs cfg ~seeds =
  Exec.Pool.map ?jobs ~f:(fun seed -> run { cfg with seed }) seeds

let pp_trial ppf t =
  Format.fprintf ppf
    "seed %d [%s]: %d blasts (%d ok, %d failed), killed %s, quorum %s, repair %d \
     actions/%d rounds, %s; %d events over %.2f virtual s; %s"
    t.seed t.fault_name t.blasts t.blast_ok t.blast_failed
    (match t.killed with Some i -> string_of_int i | None -> "none")
    (if t.quorum_met then "met" else "UNMET")
    t.repair_actions t.repair_rounds
    (if t.fully_replicated then "fully replicated" else "UNDER-REPLICATED")
    t.events
    (float_of_int t.virtual_ns /. 1e9)
    (match t.violations with
    | [] -> "no violations"
    | vs -> Printf.sprintf "%d VIOLATIONS" (List.length vs))
