(** Whole-system deterministic simulation (DST).

    The FoundationDB move (SNIPPETS snippet 1) applied to this server: the
    {e entire} system — a real [Server.Engine], N real {!Sockets.Peer}
    senders — runs as {!Eventsim} processes over a {!Memnet} wire under
    virtual time, with the fault schedule, the churn schedule, every sender's
    workload, and the admission pressure all derived from one root seed. No
    wall clock, no socket, no thread: one integer replays the identical run
    bit-for-bit, violations included, at any [--jobs].

    Each trial asserts, continuously and at the end:
    - {e verified delivery or clean failure}: every sender finishes with a
      typed outcome (or is deliberately killed), every server-side [Success]
      carries a [Verified] whole-segment CRC, and every sender-side success
      matches a server-side verified delivery of the same bytes;
    - {e engine invariants} ([Server.Engine.invariant_violations]) on a
      periodic virtual tick: flow-table cap and coherence, timer-heap
      coverage of every live deadline, admission-totals balance;
    - {e no hangs}: a trial that reaches its virtual horizon with a transfer
      stuck longer than the protocol's worst-case bound is a violation, as
      is a drained event queue with unresolved senders (a lost wake-up).

    Churn schedules: {!Kill} closes sender endpoints
    mid-transfer; {!Reuse} rebinds the victim's port immediately and throws
    a colliding [(address, transfer id)] REQ at the engine's flow table;
    {!Restart} stops the engine with flows in the table and rebinds its
    port after an outage. {!Mixed} interleaves all three. *)

type churn = Steady | Kill | Reuse | Restart | Mixed

val churn_name : churn -> string
val churn_of_string : string -> churn option
val all_churns : churn list

type config = {
  seed : int;
  churn : churn;
  faults : Faults.Scenario.t option;  (** wire fault pipeline; [None] = clean *)
  senders : int;
  transfers : int;  (** transfers each sender attempts *)
  max_flows : int;  (** engine admission cap; below [senders] exercises REJ *)
  shards : int;
      (** engine shard count (default 1 — the classic single engine).
          [N > 1] runs N engine processes as members of one
          {!Memnet.Net.bind_shard} group on the server port: datagrams are
          steered by a pure, seeded hash of the source address — the
          REUSEPORT placement made explicit — so a sharded run is exactly
          as replayable as a single-engine one. Churn's [Restart] picks its
          victim shard from the seeded stream, and each shard restarts into
          its own slot. *)
  bytes_min : int;
  bytes_max : int;
  think_min_ns : int;
  think_max_ns : int;  (** seeded idle gap between a sender's transfers *)
  packet_bytes : int;
  tuning : Protocol.Tuning.t;
      (** one regime for every endpoint — engines advertise budgets from it,
          senders run fixed or adaptive trains per its variant; printed into
          the journal header so a trial is self-describing *)
  latency_ns : int;  (** memnet propagation delay *)
  horizon_ns : int;  (** virtual-time budget; the hang backstop *)
}

val default_config : seed:int -> config
(** 16 senders x 3 transfers of 2..32 KiB with 0.2..2 s think time, engine
    capped at 12 flows (per shard), chaos faults, mixed churn, one shard,
    60 virtual seconds. *)

type trial = {
  seed : int;
  churn : churn;
  fault_name : string;
  attempted : int;  (** transfers started by senders *)
  completed : int;  (** sender-side [Success] *)
  rejected : int;
  failed : int;  (** clean typed failures (unreachable / attempts exhausted) *)
  killed : int;  (** senders removed by churn *)
  restarts : int;  (** engine incarnations beyond the first *)
  superseded : int;  (** stale flows settled on address-reuse collisions *)
  server_completed : int;
  server_aborted : int;
  virtual_ns : int;  (** virtual time of the last event — the activity span *)
  events : int;  (** journal lines *)
  violations : string list;  (** empty = the run upheld every property *)
  journal : string;  (** the full event journal; bit-for-bit replayable *)
  digest : string;  (** MD5 hex of [journal] — the replay fingerprint *)
  flowtrace : string;
      (** {!Obs.Flowtrace} lifecycle export (JSONL), virtual-time stamped
          and shared across engine incarnations ([trace_epoch] = generation)
          — replays bit-for-bit at any [jobs], and once the engine wound
          down its lifecycle grammar is asserted as part of [violations] *)
  flight : string;
      (** the engine's {!Obs.Recorder} flight ring as JSONL; [""] unless
          the trial has violations *)
}

val run : config -> trial
(** One whole-system trial. Pure function of [config]: equal configs yield
    equal trials, journal bytes included. *)

val run_seeds : ?jobs:int -> config -> seeds:int list -> trial list
(** One trial per seed ([config.seed] is overridden), distributed over an
    [Exec.Pool]; results in [seeds] order, so the output is identical at any
    [jobs] — each trial owns its simulation, its network, and its engine. *)

val pp_trial : Format.formatter -> trial -> unit
(** One summary line (no journal). *)
