module Sim = Eventsim.Sim
module Proc = Eventsim.Proc
module Time = Eventsim.Time
module Net = Memnet.Net

let log = Logs.Src.create "dst.harness" ~doc:"whole-system deterministic simulation"

module Log = (val Logs.src_log log : Logs.LOG)

type churn = Steady | Kill | Reuse | Restart | Mixed

let churn_name = function
  | Steady -> "steady"
  | Kill -> "kill"
  | Reuse -> "reuse"
  | Restart -> "restart"
  | Mixed -> "mixed"

let all_churns = [ Steady; Kill; Reuse; Restart; Mixed ]
let churn_of_string s = List.find_opt (fun c -> churn_name c = s) all_churns

type config = {
  seed : int;
  churn : churn;
  faults : Faults.Scenario.t option;
  senders : int;
  transfers : int;
  max_flows : int;
  shards : int;
  bytes_min : int;
  bytes_max : int;
  think_min_ns : int;
  think_max_ns : int;
  packet_bytes : int;
  tuning : Protocol.Tuning.t;
  latency_ns : int;
  horizon_ns : int;
}

let default_config ~seed =
  {
    seed;
    churn = Mixed;
    faults = Some Faults.Scenario.chaos;
    senders = 16;
    transfers = 3;
    max_flows = 12;
    shards = 1;
    bytes_min = 2 * 1024;
    bytes_max = 32 * 1024;
    think_min_ns = 200_000_000;
    think_max_ns = 2_000_000_000;
    packet_bytes = 1024;
    tuning = Protocol.Tuning.fixed ~retransmit_ns:20_000_000 ~max_attempts:20 ();
    latency_ns = 50_000;
    horizon_ns = 60_000_000_000;
  }

type trial = {
  seed : int;
  churn : churn;
  fault_name : string;
  attempted : int;
  completed : int;
  rejected : int;
  failed : int;
  killed : int;
  restarts : int;
  superseded : int;
  server_completed : int;
  server_aborted : int;
  virtual_ns : int;
  events : int;
  violations : string list;
  journal : string;
  digest : string;
  flowtrace : string;
      (** per-flow lifecycle export (JSONL), virtual-time stamped — the
          byte-comparable replay artifact *)
  flight : string;  (** engine flight-ring JSONL; [""] unless the trial failed *)
}

(* One participant — an initial sender or a churn-spawned replacement. The
   churn controller and the end-of-run hang check read these; the process
   body writes them. All single-threaded under the simulation. *)
type slot = {
  label : string;
  mutable ep : Net.endpoint option;
  mutable active_id : int;  (** transfer id in flight; 0 = thinking/idle *)
  mutable active_total : int;  (** packet count of the in-flight transfer *)
  mutable started_at : int;  (** virtual ns the active transfer started *)
  mutable terminal : bool;
}

type harness = {
  cfg : config;
  sim : Sim.t;
  net : Net.t;
  journal : Buffer.t;
  flowtrace : Obs.Flowtrace.t;  (** shared across engine incarnations *)
  recorder : Obs.Recorder.t;  (** engine flight ring, virtual-time stamped *)
  violations : string list ref;
  engines : Server.Engine.t option array;
      (** current incarnation per shard, [None] mid-outage; length
          [cfg.shards] (1 = the classic single engine) *)
  slots : slot list ref;  (** insertion order — the churn picker's stable index *)
  remaining : int ref;  (** non-terminal participants *)
  shutdown : bool ref;  (** final stop requested; no restarts past this *)
  (* verified-delivery bookkeeping: (port, transfer id, payload crc) -> count *)
  sent_ok : (int * int * int32, int) Hashtbl.t;
  served_ok : (int * int * int32, int) Hashtbl.t;
  mutable last_activity_ns : int;  (** virtual time of the latest journal line *)
  mutable attempted : int;
  mutable completed : int;
  mutable rejected : int;
  mutable failed : int;
  mutable killed : int;
  mutable restarts : int;
  mutable superseded : int;
  mutable server_completed : int;
  mutable server_aborted : int;
}

let server_port = 9_000

let now_ns h = Time.to_ns (Sim.now h.sim)

let line h fmt =
  Printf.ksprintf
    (fun s ->
      let now = now_ns h in
      h.last_activity_ns <- now;
      Buffer.add_string h.journal (Printf.sprintf "[%d] %s\n" now s))
    fmt

let violation h s =
  h.violations := s :: !(h.violations);
  line h "VIOLATION %s" s

let port_of = function
  | Unix.ADDR_INET (_, port) -> port
  | Unix.ADDR_UNIX _ -> invalid_arg "dst: ADDR_UNIX peer"

let bump table key =
  Hashtbl.replace table key (1 + Option.value (Hashtbl.find_opt table key) ~default:0)

let outcome_str o = Format.asprintf "%a" Protocol.Action.pp_outcome o

(* Worst-case clean-failure time for one transfer: handshake and machine
   each exhaust [max_attempts] timeouts, plus linger, plus the netem delay
   cap (scenario validation bounds injected delays at one second) and a
   margin. A transfer unresolved longer than this has hung. *)
let worst_case_ns cfg =
  let retransmit_ns = Protocol.Tuning.retransmit_ns cfg.tuning in
  let max_attempts = Protocol.Tuning.max_attempts cfg.tuning in
  (2 * max_attempts * retransmit_ns) + (3 * retransmit_ns) + 2_000_000_000

let clock_of h () = now_ns h

let all_done h =
  h.shutdown := true;
  line h "all senders resolved; stopping engine";
  Array.iter (function Some e -> Server.Engine.stop e | None -> ()) h.engines

let finish h slot =
  if not slot.terminal then begin
    slot.terminal <- true;
    slot.active_id <- 0;
    decr h.remaining;
    if !(h.remaining) = 0 then all_done h
  end

(* ----------------------------------------------------------- server side *)

let on_complete h (e : Server.Engine.completion_event) =
  let c = e.Server.Engine.completion in
  let peer_port = port_of e.Server.Engine.peer in
  (match c.Sockets.Flow.outcome with
  | Protocol.Action.Success -> (
      match c.Sockets.Flow.integrity with
      | Sockets.Flow.Verified ->
          bump h.served_ok
            (peer_port, c.Sockets.Flow.transfer_id,
             Packet.Checksum.crc32_string c.Sockets.Flow.data)
      | Sockets.Flow.Mismatch | Sockets.Flow.Not_carried ->
          violation h
            (Printf.sprintf "server settled transfer %d from port %d without CRC verification"
               c.Sockets.Flow.transfer_id peer_port))
  | _ -> ());
  line h "server settle peer=%d id=%d outcome=%s bytes=%d" peer_port
    c.Sockets.Flow.transfer_id (outcome_str c.Sockets.Flow.outcome)
    (String.length c.Sockets.Flow.data)

(* Tags for journal lines and lanes: a single-shard run keeps the classic,
   untagged journal shape. *)
let engine_tag h index = if h.cfg.shards = 1 then "engine" else Printf.sprintf "engine s%d" index

let engine_proc h index () =
  let bind () =
    if h.cfg.shards = 1 then Net.bind ~port:server_port h.net
    else
      (* Steering is memnet's default: {!Stats.Hash.steer} of the source
         port under the network seed — the kernel's REUSEPORT 4-tuple hash
         made explicit, shared with ring placement. *)
      Net.bind_shard h.net ~port:server_port ~shards:h.cfg.shards ~index
  in
  let rec incarnation gen =
    let ep = bind () in
    let transport = Net.transport ep in
    let engine =
      Server.Engine.create ~max_flows:h.cfg.max_flows
        ~ctx:
          (Sockets.Io_ctx.make ~clock:(clock_of h) ~recorder:h.recorder
             ~tuning:h.cfg.tuning ())
        ~on_complete:(on_complete h) ~flowtrace:h.flowtrace ~trace_epoch:gen
        ?shard:(if h.cfg.shards = 1 then None else Some index)
        ~transport ()
    in
    h.engines.(index) <- Some engine;
    line h "%s up gen=%d" (engine_tag h index) gen;
    (try Server.Engine.run engine
     with exn ->
       violation h
         (Printf.sprintf "%s gen %d raised %s" (engine_tag h index) gen
            (Printexc.to_string exn)));
    h.engines.(index) <- None;
    let t = Server.Engine.totals engine in
    h.server_completed <- h.server_completed + t.Server.Engine.completed;
    h.server_aborted <- h.server_aborted + t.Server.Engine.aborted;
    h.superseded <- h.superseded + t.Server.Engine.superseded;
    line h "%s down gen=%d %s" (engine_tag h index) gen
      (Format.asprintf "%a" Server.Engine.pp_totals t);
    Net.close ep;
    (* An outage window before the same port comes back: mid-transfer
       senders blast into the void, then into a server that has never heard
       of their flows. Re-checked after the sleep — a shutdown during the
       outage must not resurrect the engine. *)
    if not !(h.shutdown) then begin
      h.restarts <- h.restarts + 1;
      Proc.sleep (Time.span_ns 200_000_000);
      if not !(h.shutdown) then incarnation (gen + 1)
    end
  in
  incarnation 0

(* ----------------------------------------------------------- sender side *)

let server_address = Unix.ADDR_INET (Unix.inet_addr_loopback, server_port)

(* Seeded random payload, eight bytes per RNG draw: senders generate tens of
   kilobytes per transfer, and a per-byte draw is the harness's hottest loop. *)
let payload_for rng bytes =
  let buf = Bytes.create bytes in
  let full = bytes / 8 in
  for i = 0 to full - 1 do
    Bytes.set_int64_le buf (i * 8) (Stats.Rng.bits64 rng)
  done;
  if bytes land 7 <> 0 then begin
    let word = Stats.Rng.bits64 rng in
    for i = full * 8 to bytes - 1 do
      Bytes.set_uint8 buf i (Int64.to_int (Int64.shift_right_logical word ((i land 7) * 8)) land 0xff)
    done
  end;
  Bytes.unsafe_to_string buf

let range rng lo hi = if hi <= lo then lo else lo + Stats.Rng.int rng (hi - lo + 1)

let packets_of h bytes = (bytes + h.cfg.packet_bytes - 1) / h.cfg.packet_bytes

(* One transfer through the real sender path over the simulated wire.
   [avoid_total] (a packet count) is for churn replacements: on a reused
   address and transfer id the geometry is the only thing distinguishing the
   new transfer's acks from the old one's stragglers, so a replacement never
   repeats its victim's. *)
let one_transfer h slot ~transport ~rng ~transfer_id ~port ?(avoid_total = 0) () =
  let avoidable =
    avoid_total > 0
    && (packets_of h h.cfg.bytes_min <> avoid_total
       || packets_of h h.cfg.bytes_max <> avoid_total)
  in
  let rec pick () =
    let bytes = range rng h.cfg.bytes_min h.cfg.bytes_max in
    if avoidable && packets_of h bytes = avoid_total then pick () else bytes
  in
  let bytes = pick () in
  let data = payload_for rng bytes in
  let crc = Packet.Checksum.crc32_string data in
  slot.active_id <- transfer_id;
  slot.active_total <- packets_of h bytes;
  slot.started_at <- now_ns h;
  h.attempted <- h.attempted + 1;
  line h "%s start id=%d bytes=%d crc=%08lx" slot.label transfer_id bytes crc;
  let result =
    Sockets.Peer.send_via
      ~ctx:(Sockets.Io_ctx.make ~clock:(clock_of h) ~tuning:h.cfg.tuning ())
      ~transfer_id ~packet_bytes:h.cfg.packet_bytes ~transport ~peer:server_address
      ~suite:(Protocol.Suite.Blast Protocol.Blast.Go_back_n) ~data ()
  in
  let outcome = result.Sockets.Peer.outcome in
  line h "%s end id=%d outcome=%s elapsed=%d" slot.label transfer_id (outcome_str outcome)
    result.Sockets.Peer.elapsed_ns;
  (match outcome with
  | Protocol.Action.Success ->
      h.completed <- h.completed + 1;
      bump h.sent_ok (port, transfer_id, crc)
  | Protocol.Action.Rejected -> h.rejected <- h.rejected + 1
  | Protocol.Action.Peer_unreachable | Protocol.Action.Too_many_attempts ->
      h.failed <- h.failed + 1);
  slot.active_id <- 0;
  slot.active_total <- 0

let guard h slot body =
  try body () with
  | Net.Closed _ ->
      h.killed <- h.killed + 1;
      line h "%s killed" slot.label;
      finish h slot
  | exn ->
      violation h
        (Printf.sprintf "%s raised %s — not a typed outcome" slot.label
           (Printexc.to_string exn));
      finish h slot

let sender_proc h slot index () =
  guard h slot (fun () ->
      let rng = Stats.Rng.derive ~root:h.cfg.seed ~index:(100 + index) in
      (* Staggered start: admission pressure ramps instead of one spike. *)
      Proc.sleep (Time.span_ns (1_000_000 + Stats.Rng.int rng 500_000_000));
      let ep = Net.bind h.net in
      slot.ep <- Some ep;
      let transport = Net.transport ep in
      let port = Net.port ep in
      for i = 1 to h.cfg.transfers do
        one_transfer h slot ~transport ~rng ~transfer_id:i ~port ();
        if i < h.cfg.transfers then
          Proc.sleep (Time.span_ns (range rng h.cfg.think_min_ns h.cfg.think_max_ns))
      done;
      line h "%s done" slot.label;
      finish h slot)

(* A churn replacement: rebinds the victim's port within the old flow's idle
   window and throws a REQ with the victim's in-flight transfer id but fresh
   bytes at the engine — the [(address, transfer id)] collision the
   supersede path must catch. *)
let replacement_proc h slot seq ~port ~transfer_id ~avoid_total () =
  guard h slot (fun () ->
      let rng = Stats.Rng.derive ~root:h.cfg.seed ~index:(7_000 + seq) in
      Proc.sleep (Time.span_ns (10_000_000 + Stats.Rng.int rng 40_000_000));
      let ep = Net.bind ~port h.net in
      slot.ep <- Some ep;
      one_transfer h slot ~transport:(Net.transport ep) ~rng ~transfer_id ~port ~avoid_total ();
      line h "%s done" slot.label;
      finish h slot)

(* ----------------------------------------------------------------- churn *)

let spawn_slot h label body =
  let slot =
    { label; ep = None; active_id = 0; active_total = 0; started_at = 0; terminal = false }
  in
  h.slots := !(h.slots) @ [ slot ];
  incr h.remaining;
  (slot, body slot)

let churn_controller h =
  let rng = Stats.Rng.derive ~root:h.cfg.seed ~index:7 in
  let kills = ref 0 and restarts_asked = ref 0 and reuse_seq = ref 0 in
  let max_kills = max 1 (h.cfg.senders / 2) in
  let victims () =
    let live = List.filter (fun s -> s.ep <> None && not s.terminal) !(h.slots) in
    (* Prefer a victim with a transfer in flight: senders spend most of their
       virtual time thinking, and killing an idle one never leaves a stale
       flow in the engine's table — the collision the reuse scenario exists
       to provoke. *)
    match List.filter (fun s -> s.active_id > 0) live with
    | [] -> live
    | busy -> busy
  in
  let kill ~reuse =
    match victims () with
    | [] -> ()
    | candidates ->
        let victim = List.nth candidates (Stats.Rng.int rng (List.length candidates)) in
        let ep = Option.get victim.ep in
        let port = Net.port ep in
        let in_flight = victim.active_id in
        let in_flight_total = victim.active_total in
        incr kills;
        line h "churn kill %s port=%d in_flight=%d" victim.label port in_flight;
        (* Closing wakes the victim's parked transport call with [Closed];
           its [guard] turns that into a journaled kill, never a violation. *)
        Net.close ep;
        victim.ep <- None;
        if reuse then begin
          incr reuse_seq;
          let seq = !reuse_seq in
          let transfer_id = if in_flight > 0 then in_flight else 1 in
          let slot, body =
            spawn_slot h
              (Printf.sprintf "reuse%d" seq)
              (fun slot ->
                replacement_proc h slot seq ~port ~transfer_id ~avoid_total:in_flight_total)
          in
          line h "churn reuse %s port=%d id=%d" slot.label port transfer_id;
          Proc.spawn (Proc.env h.sim) body
        end
  in
  let restart () =
    if !restarts_asked < 2 then begin
      (* Pick among live incarnations; a shard mid-outage is not a
         candidate. The extra RNG draw happens only when there is a real
         choice, so single-shard runs keep their classic event stream. *)
      let live = ref [] in
      Array.iteri
        (fun i e -> match e with Some engine -> live := (i, engine) :: !live | None -> ())
        h.engines;
      match List.rev !live with
      | [] -> ()
      | [ (index, engine) ] ->
          incr restarts_asked;
          line h "churn restart %s" (engine_tag h index);
          Server.Engine.stop engine
      | candidates ->
          let index, engine =
            List.nth candidates (Stats.Rng.int rng (List.length candidates))
          in
          incr restarts_asked;
          line h "churn restart %s" (engine_tag h index);
          Server.Engine.stop engine
    end
  in
  let act () =
    match h.cfg.churn with
    | Steady -> ()
    | Kill -> if !kills < max_kills then kill ~reuse:false
    | Reuse -> if !kills < max_kills then kill ~reuse:true
    | Restart -> restart ()
    | Mixed -> (
        match Stats.Rng.int rng 4 with
        | 0 -> restart ()
        | 1 -> if !kills < max_kills then kill ~reuse:false
        | _ -> if !kills < max_kills then kill ~reuse:true)
  in
  let rec tick () =
    if not !(h.shutdown) then begin
      act ();
      ignore
        (Sim.schedule_after h.sim
           (Time.span_ns (250_000_000 + Stats.Rng.int rng 1_000_000_000))
           tick
          : Sim.handle)
    end
  in
  if h.cfg.churn <> Steady then
    ignore
      (Sim.schedule_after h.sim
         (Time.span_ns (400_000_000 + Stats.Rng.int rng 800_000_000))
         tick
        : Sim.handle)

let invariant_watch h =
  let rec tick () =
    Array.iteri
      (fun index e ->
        match e with
        | Some engine ->
            List.iter
              (fun v -> violation h (engine_tag h index ^ " invariant: " ^ v))
              (Server.Engine.invariant_violations engine)
        | None -> ())
      h.engines;
    if not !(h.shutdown) then
      ignore (Sim.schedule_after h.sim (Time.span_ns 25_000_000) tick : Sim.handle)
  in
  ignore (Sim.schedule_after h.sim (Time.span_ns 25_000_000) tick : Sim.handle)

(* ------------------------------------------------------------------ trial *)

let run cfg =
  if cfg.senders <= 0 then invalid_arg "Dst: senders must be positive";
  if cfg.transfers <= 0 then invalid_arg "Dst: transfers must be positive";
  if cfg.bytes_min <= 0 || cfg.bytes_max < cfg.bytes_min then
    invalid_arg "Dst: bad transfer size range";
  if cfg.horizon_ns <= 0 then invalid_arg "Dst: horizon must be positive";
  if cfg.shards <= 0 then invalid_arg "Dst: shards must be positive";
  let sim = Sim.create () in
  let net = Net.create ~sim ~latency_ns:cfg.latency_ns ?scenario:cfg.faults ~seed:cfg.seed () in
  let h =
    {
      cfg;
      sim;
      net;
      journal = Buffer.create 4096;
      flowtrace = Obs.Flowtrace.create ();
      recorder = Obs.Recorder.create ();
      violations = ref [];
      engines = Array.make cfg.shards None;
      slots = ref [];
      remaining = ref 0;
      shutdown = ref false;
      sent_ok = Hashtbl.create 64;
      served_ok = Hashtbl.create 64;
      last_activity_ns = 0;
      attempted = 0;
      completed = 0;
      rejected = 0;
      failed = 0;
      killed = 0;
      restarts = 0;
      superseded = 0;
      server_completed = 0;
      server_aborted = 0;
    }
  in
  line h
    "dst seed=%d churn=%s faults=%s senders=%d transfers=%d max_flows=%d shards=%d tuning=%s"
    cfg.seed (churn_name cfg.churn)
    (match cfg.faults with Some s -> Faults.Scenario.name s | None -> "clean")
    cfg.senders cfg.transfers cfg.max_flows cfg.shards
    (Protocol.Tuning.to_string cfg.tuning);
  let env = Proc.env sim in
  for index = 0 to cfg.shards - 1 do
    Proc.spawn env
      ~name:(if cfg.shards = 1 then "engine" else Printf.sprintf "engine-s%d" index)
      (engine_proc h index)
  done;
  for index = 0 to cfg.senders - 1 do
    let _slot, body =
      spawn_slot h (Printf.sprintf "sender%d" index) (fun slot -> sender_proc h slot index)
    in
    Proc.spawn env ~name:(Printf.sprintf "sender%d" index) body
  done;
  churn_controller h;
  invariant_watch h;
  Sim.run ~until:(Time.of_ns cfg.horizon_ns) sim;
  (* [Sim.run ~until] leaves the clock at the horizon even when the queue
     drained early; the last journal line marks when activity actually
     stopped, which is the honest numerator for virtual-time throughput. *)
  let active_ns = h.last_activity_ns in
  let virtual_ns = now_ns h in
  (* Hang detection: an unresolved sender is a violation if the queue went
     quiet (a lost wake-up) or its transfer overran the worst-case bound. *)
  if !(h.remaining) > 0 then begin
    if Sim.pending sim = 0 then
      violation h
        (Printf.sprintf "event queue drained with %d senders unresolved (lost wake-up)"
           !(h.remaining));
    List.iter
      (fun s ->
        if (not s.terminal) && s.active_id > 0
           && virtual_ns - s.started_at > worst_case_ns cfg then
          violation h
            (Printf.sprintf "%s hung: transfer %d unresolved for %d virtual ns" s.label
               s.active_id (virtual_ns - s.started_at)))
      !(h.slots)
  end;
  (* Every sender-side verified success must match a server-side verified
     delivery of the same (address, id, bytes). *)
  Hashtbl.iter
    (fun ((port, id, crc) as key) sent ->
      let served = Option.value (Hashtbl.find_opt h.served_ok key) ~default:0 in
      if served < sent then
        violation h
          (Printf.sprintf
             "sender success without verified server delivery: port=%d id=%d crc=%08lx (%d vs %d)"
             port id crc sent served))
    h.sent_ok;
  let any_engine_up = Array.exists Option.is_some h.engines in
  Array.iteri
    (fun index e ->
      match e with
      | Some engine ->
          List.iter
            (fun v -> violation h (engine_tag h index ^ " invariant at horizon: " ^ v))
            (Server.Engine.invariant_violations engine)
      | None -> ())
    h.engines;
  if not any_engine_up then
    (* Every engine wound down, so every admitted flow was settled: the
       lifecycle grammar must hold — exactly one terminal per flow, nothing
       recorded past it. (With an engine still up at the horizon live flows
       legitimately lack terminals; the hang checks own that case.) *)
    List.iter
      (fun p -> violation h ("flowtrace: " ^ p))
      (Obs.Flowtrace.validate h.flowtrace);
  let stats = Net.stats net in
  line h "net delivered=%d unbound=%d overrun=%d" stats.Net.delivered
    stats.Net.dropped_unbound stats.Net.dropped_overrun;
  line h
    "trial end attempted=%d completed=%d rejected=%d failed=%d killed=%d restarts=%d \
     superseded=%d server=%d/%d"
    h.attempted h.completed h.rejected h.failed h.killed h.restarts h.superseded
    h.server_completed h.server_aborted;
  let journal = Buffer.contents h.journal in
  let violations = List.rev !(h.violations) in
  let trial =
    {
      seed = cfg.seed;
      churn = cfg.churn;
      fault_name = (match cfg.faults with Some s -> Faults.Scenario.name s | None -> "clean");
      attempted = h.attempted;
      completed = h.completed;
      rejected = h.rejected;
      failed = h.failed;
      killed = h.killed;
      restarts = h.restarts;
      superseded = h.superseded;
      server_completed = h.server_completed;
      server_aborted = h.server_aborted;
      virtual_ns = active_ns;
      events = List.length (String.split_on_char '\n' journal) - 1;
      violations;
      journal;
      digest = Digest.to_hex (Digest.string journal);
      flowtrace = Obs.Flowtrace.to_jsonl h.flowtrace;
      flight =
        (* Materialized only for failing trials: "what were the last N
           datagrams doing" next to the journal. *)
        (if violations = [] then ""
         else Obs.Export.jsonl_of_events (Obs.Recorder.events h.recorder));
    }
  in
  Log.info (fun f ->
      f "seed %d: %d/%d ok, %d violations" cfg.seed trial.completed trial.attempted
        (List.length trial.violations));
  trial

let run_seeds ?jobs cfg ~seeds =
  Exec.Pool.map ?jobs ~f:(fun seed -> run { cfg with seed }) seeds

let pp_trial ppf t =
  Format.fprintf ppf
    "seed %d [%s/%s]: %d attempted, %d ok, %d rejected, %d failed, %d killed; restarts %d, \
     superseded %d; server %d/%d; %d events over %.2f virtual s; %s"
    t.seed (churn_name t.churn) t.fault_name t.attempted t.completed t.rejected t.failed
    t.killed t.restarts t.superseded t.server_completed t.server_aborted t.events
    (float_of_int t.virtual_ns /. 1e9)
    (match t.violations with
    | [] -> "no violations"
    | vs -> Printf.sprintf "%d VIOLATIONS" (List.length vs))
