(** Deterministic simulation of a ring transfer: striped, replicated
    blast across N engine processes under virtual time, with one server
    killed mid-transfer and a read-repair pass restoring full
    replication.

    The whole system — N real [Server.Engine]s on their own memnet ports,
    one {!Sockets.Peer.send_via} process per stripe replica, the
    [MREQ]/[MREP] surveys and the re-blasts of {!Ring.Repair} — runs as
    {!Eventsim} processes over one seeded {!Memnet} wire. One integer
    replays the identical trial bit-for-bit at any [--jobs].

    Each trial asserts:
    - every server-side success carries a verified CRC;
    - no {e false durability claim}: whenever the put's own outcomes
      reached the write quorum for every stripe, the post-kill survey
      confirms it (under a hostile enough wire a blast at a live server
      may exhaust its attempts and fail cleanly — then the put already
      reported the object not durable, and no claim was made);
    - the repair pass converges — every stripe back at full replication
      {e on the live ring}, as judged by a fresh survey, within three
      rounds;
    - engine structural invariants on a periodic virtual tick, and the
      client finishing within the horizon. *)

type config = {
  seed : int;
  servers : int;
  stripes : int;
  replicas : int;
  quorum : int;  (** write quorum; must survive one death when [kill_one] *)
  kill_one : bool;  (** kill a seeded-random server mid-fan-out, for good *)
  faults : Faults.Scenario.t option;  (** wire pipeline; [None] = clean *)
  object_bytes : int;
  packet_bytes : int;
  vnodes : int;  (** placement virtual nodes per server *)
  max_flows : int;
  tuning : Protocol.Tuning.t;
  latency_ns : int;
  horizon_ns : int;
}

val default_config : seed:int -> config
(** 5 servers, 8 stripes x 3 replicas with quorum 2, one mid-transfer
    kill, a 64 KiB object in 1 KiB packets, clean wire, 60 virtual
    seconds. *)

type trial = {
  seed : int;
  fault_name : string;
  killed : int option;  (** the victim, when [kill_one] fired *)
  blasts : int;  (** put sub-transfers attempted (excl. repair) *)
  blast_ok : int;  (** sub-transfers settled [Success], repair included *)
  blast_failed : int;
  quorum_met : bool;  (** surveyed before repair *)
  repair_actions : int;
  repair_rounds : int;
  fully_replicated : bool;  (** surveyed after repair, live ring *)
  violations : string list;  (** empty = the run upheld every property *)
  virtual_ns : int;
  events : int;  (** journal lines *)
  journal : string;  (** bit-for-bit replayable *)
  digest : string;  (** MD5 hex of [journal] *)
}

val run : config -> trial
(** One trial; a pure function of [config], journal bytes included. *)

val run_seeds : ?jobs:int -> config -> seeds:int list -> trial list
(** One trial per seed over an [Exec.Pool]; results in [seeds] order, so
    the output is identical at any [jobs]. *)

val pp_trial : Format.formatter -> trial -> unit
