module Sim = Eventsim.Sim
module Proc = Eventsim.Proc
module Time = Eventsim.Time

exception Closed of int

type stats = {
  mutable delivered : int;
  mutable dropped_unbound : int;
  mutable dropped_overrun : int;
}

type endpoint = {
  net : t;
  port : int;
  address : Unix.sockaddr;
  queue : (bytes * Unix.sockaddr) Queue.t;
  scenario : Faults.Scenario.t option;  (** egress faults; [None] = clean wire *)
  links : (int, Faults.Netem.t) Hashtbl.t;
      (** one fault pipeline per destination port: netem's reorder stage holds
          datagrams back and releases them on a later transmission, so a
          pipeline shared across destinations would re-route the held datagram
          to whichever peer the releasing send was addressed to *)
  mutable reader : (unit -> unit) option;  (** parked [recv]'s wake-up, one-shot *)
  mutable closed : bool;
  mutable wake_requested : bool;
      (** transport [wake] latch: the next [recv] returns [`Timeout] *)
  shard_slot : int option;  (** index in a sharded port's member array *)
}

and target =
  | Single of endpoint
  | Sharded of group
      (** memnet's stand-in for [SO_REUSEPORT]: one port, N member
          endpoints, steering explicit and seeded — the kernel's 4-tuple
          hash replaced by a deterministic function of the source address
          so trials replay bit-for-bit *)

and group = { shard_of : Unix.sockaddr -> int; members : endpoint option array }

and t = {
  sim : Sim.t;
  latency_ns : int;
  capacity : int;
  default_scenario : Faults.Scenario.t option;
  seed : int;
  endpoints : (int, target) Hashtbl.t;
  stats : stats;
  mutable next_port : int;
}

let create ~sim ?(latency_ns = 50_000) ?(capacity = 256) ?scenario ~seed () =
  if latency_ns < 0 then invalid_arg "Net.create: negative latency";
  if capacity <= 0 then invalid_arg "Net.create: capacity must be positive";
  {
    sim;
    latency_ns;
    capacity;
    default_scenario =
      (match scenario with Some s when Faults.Scenario.is_clean s -> None | s -> s);
    seed;
    endpoints = Hashtbl.create 64;
    stats = { delivered = 0; dropped_unbound = 0; dropped_overrun = 0 };
    next_port = 40_000;
  }

let stats t = t.stats
let address ep = ep.address
let port ep = ep.port

let dst_port_of = function
  | Unix.ADDR_INET (_, port) -> port
  | Unix.ADDR_UNIX _ -> invalid_arg "Net: ADDR_UNIX has no port"

let resolve_scenario net scenario =
  match scenario with
  | Some s -> if Faults.Scenario.is_clean s then None else Some s
  | None -> net.default_scenario

let make_endpoint ?shard_slot net ~port scenario =
  {
    net;
    port;
    address = Unix.ADDR_INET (Unix.inet_addr_loopback, port);
    queue = Queue.create ();
    scenario;
    links = Hashtbl.create 8;
    reader = None;
    closed = false;
    wake_requested = false;
    shard_slot;
  }

let bind ?port ?scenario net =
  let port =
    match port with
    | Some p ->
        if Hashtbl.mem net.endpoints p then
          invalid_arg (Printf.sprintf "Net.bind: port %d already bound" p);
        p
    | None ->
        while Hashtbl.mem net.endpoints net.next_port do
          net.next_port <- net.next_port + 1
        done;
        let p = net.next_port in
        net.next_port <- net.next_port + 1;
        p
  in
  let ep = make_endpoint net ~port (resolve_scenario net scenario) in
  Hashtbl.replace net.endpoints port (Single ep);
  ep

(* A sharded port keeps its group entry (and therefore its steering
   function) alive across member close/rebind cycles: a member that dies
   and comes back — the DST engine-restart churn — lands back in the same
   slot and keeps receiving exactly the flows the hash steered to it. *)
let default_shard_of net source =
  Stats.Hash.steer ~seed:net.seed (dst_port_of source)

let bind_shard ?scenario ?shard_of net ~port ~shards ~index =
  if shards <= 0 then invalid_arg "Net.bind_shard: shards must be positive";
  if index < 0 || index >= shards then invalid_arg "Net.bind_shard: index out of range";
  let shard_of = match shard_of with Some f -> f | None -> default_shard_of net in
  let group =
    match Hashtbl.find_opt net.endpoints port with
    | None ->
        let g = { shard_of; members = Array.make shards None } in
        Hashtbl.replace net.endpoints port (Sharded g);
        g
    | Some (Sharded g) when Array.length g.members = shards -> g
    | Some (Sharded _) ->
        invalid_arg (Printf.sprintf "Net.bind_shard: port %d has a different shard count" port)
    | Some (Single _) ->
        invalid_arg (Printf.sprintf "Net.bind_shard: port %d already bound unsharded" port)
  in
  (match group.members.(index) with
  | Some _ ->
      invalid_arg (Printf.sprintf "Net.bind_shard: port %d shard %d already bound" port index)
  | None -> ());
  let ep = make_endpoint ~shard_slot:index net ~port (resolve_scenario net scenario) in
  group.members.(index) <- Some ep;
  ep

let wake_reader ep =
  match ep.reader with
  | None -> ()
  | Some wake -> wake () (* clears [ep.reader] itself; one-shot *)

let close ep =
  if not ep.closed then begin
    ep.closed <- true;
    (match (ep.shard_slot, Hashtbl.find_opt ep.net.endpoints ep.port) with
    | Some i, Some (Sharded g)
      when (match g.members.(i) with Some e -> e == ep | None -> false) ->
        (* Vacate the slot but keep the group: steering survives member
           churn, and datagrams for the gap count as dropped_unbound. *)
        g.members.(i) <- None
    | None, Some (Single e) when e == ep -> Hashtbl.remove ep.net.endpoints ep.port
    | _ -> ());
    Queue.clear ep.queue;
    Hashtbl.reset ep.links;
    (* Held-back (reordered) egress datagrams die with the process; in-flight
       scheduled deliveries do not — they resolve the port when they land. *)
    wake_reader ep
  end

(* Destination resolved now, at delivery time, not at send time: a port
   closed and rebound while the datagram was in flight receives it — the
   address-reuse collision the churn scenarios depend on. *)
let deliver net ~dst_port ~from data =
  let member =
    match Hashtbl.find_opt net.endpoints dst_port with
    | None -> None
    | Some (Single ep) -> Some ep
    | Some (Sharded g) ->
        (* Steered at delivery time by the source address alone — the
           memnet analogue of the kernel's REUSEPORT 4-tuple hash (each
           sender keeps one socket, so source fixes the shard). *)
        let n = Array.length g.members in
        g.members.(((g.shard_of from mod n) + n) mod n)
  in
  match member with
  | None -> net.stats.dropped_unbound <- net.stats.dropped_unbound + 1
  | Some ep ->
      if Queue.length ep.queue >= net.capacity then
        net.stats.dropped_overrun <- net.stats.dropped_overrun + 1
      else begin
        Queue.add (data, from) ep.queue;
        net.stats.delivered <- net.stats.delivered + 1;
        wake_reader ep
      end

(* The (source, destination) link's fault pipeline, created on first use.
   Seeding from (root, src * 2^16 + dst) keeps every link's fault stream
   independent of creation order, and a rebound port replays its
   predecessor's — same address, same wire, which is what replay
   determinism needs. *)
let link_faults ep ~dst_port scenario =
  match Hashtbl.find_opt ep.links dst_port with
  | Some netem -> netem
  | None ->
      let rng = Stats.Rng.derive ~root:ep.net.seed ~index:((ep.port * 65_536) + dst_port) in
      let netem =
        Faults.Netem.create ~seed:(Int64.to_int (Stats.Rng.bits64 rng) land max_int) scenario
      in
      Hashtbl.replace ep.links dst_port netem;
      netem

let send ep ~peer ~on_outcome data =
  if ep.closed then raise (Closed ep.port);
  let dst_port = dst_port_of peer in
  let emit ~delay_ns data =
    ignore
      (Sim.schedule_after ep.net.sim
         (Time.span_ns (ep.net.latency_ns + delay_ns))
         (fun () -> deliver ep.net ~dst_port ~from:ep.address data)
        : Sim.handle)
  in
  (match ep.scenario with
  | None -> emit ~delay_ns:0 (Bytes.copy data)
  | Some scenario ->
      let netem = link_faults ep ~dst_port scenario in
      List.iter
        (fun { Faults.Netem.delay_ns; data } -> emit ~delay_ns data)
        (Faults.Netem.tx_bytes netem data));
  (* The network accepted the datagram; whether it arrives is its business —
     UDP semantics, where loss is silent. *)
  on_outcome Sockets.Udp.Sent

let view (data, from) =
  { Sockets.Transport.buf = data; len = Bytes.length data; from }

let poll ep () =
  match Queue.take_opt ep.queue with
  | Some d -> `Datagram (view d)
  | None ->
      if ep.closed then raise (Closed ep.port);
      `Empty

let recv ep ~timeout_ns =
  let deadline = Option.map (fun ns -> Time.to_ns (Sim.now ep.net.sim) + ns) timeout_ns in
  let rec wait () =
    match Queue.take_opt ep.queue with
    | Some d -> `Datagram (view d)
    | None ->
        if ep.closed then raise (Closed ep.port);
        if ep.wake_requested then begin
          ep.wake_requested <- false;
          `Timeout
        end
        else
        let now = Time.to_ns (Sim.now ep.net.sim) in
        let expired = match deadline with Some d -> d - now <= 0 | None -> false in
        if expired then `Timeout
        else begin
          (* Park until a delivery, the timeout instant, or close — whichever
             fires first wins; the rest are disarmed by the one-shot flag. *)
          Proc.suspend (fun resume ->
              let fired = ref false in
              let wake () =
                if not !fired then begin
                  fired := true;
                  ep.reader <- None;
                  resume ()
                end
              in
              let timeout_event =
                Option.map (fun d -> Sim.schedule_at ep.net.sim (Time.of_ns d) wake) deadline
              in
              ep.reader <-
                Some
                  (fun () ->
                    Option.iter Sim.cancel timeout_event;
                    wake ()));
          wait ()
        end
  in
  wait ()

let transport ep =
  {
    Sockets.Transport.send = (fun ~peer ~on_outcome data -> send ep ~peer ~on_outcome data);
    flush = (fun () -> ());
    recv = (fun ~timeout_ns -> recv ep ~timeout_ns);
    poll = poll ep;
    sleep_ns = (fun ns -> Proc.sleep (Time.span_ns ns));
    wake =
      Some
        (fun () ->
          if not ep.closed then begin
            ep.wake_requested <- true;
            wake_reader ep
          end);
  }
