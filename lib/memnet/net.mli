(** An in-memory datagram network under {!Eventsim} virtual time.

    The second interpreter of {!Sockets.Transport.t}: per-port mailboxes
    standing in for UDP sockets, with propagation latency and a per-endpoint
    seeded {!Faults.Netem} pipeline standing in for the wire. Protocol loops
    written against the transport — {!Sockets.Peer.send_via},
    [Server.Engine] — run here unchanged, as simulated processes, with every
    timeout and fault decision on the virtual clock. Everything is
    deterministic: one root seed fixes all fault streams, and the
    single-threaded event queue fixes all interleavings, so a whole-system
    run replays bit-for-bit from the seed.

    Addresses are ordinary [Unix.ADDR_INET (loopback, port)] values used as
    pure data — never passed to the OS — so the engine's
    [(sockaddr, transfer_id)] flow keys work unmodified.

    Delivery model (datagram semantics, loopback-flavoured): a sent datagram
    is scheduled [latency_ns] (plus any injected delay) into the virtual
    future and the destination port is resolved at {e delivery} time — a
    port closed and rebound while datagrams are in flight receives them,
    exactly the address-reuse hazard the churn scenarios probe. Datagrams to
    an unbound port vanish; a full mailbox drops the newcomer (receiver
    overrun). Closing an endpoint wakes its parked reader with {!Closed} —
    how the simulation kills a process mid-transfer. *)

exception Closed of int
(** Raised by a transport operation on an endpoint that has been closed —
    the simulated process's cue that it has been killed. The payload is the
    endpoint's port. *)

type t
type endpoint

type stats = {
  mutable delivered : int;
  mutable dropped_unbound : int;  (** destination port not bound at delivery *)
  mutable dropped_overrun : int;  (** destination mailbox full *)
}

val create :
  sim:Eventsim.Sim.t ->
  ?latency_ns:int ->
  ?capacity:int ->
  ?scenario:Faults.Scenario.t ->
  seed:int ->
  unit ->
  t
(** A network on [sim]'s clock. [latency_ns] (default 50 µs, a loopback-ish
    figure) is the base propagation delay of every datagram; [capacity]
    (default 256) bounds each endpoint's mailbox; [scenario] is the default
    egress fault pipeline for endpoints that do not override it (a clean
    scenario means none). [seed] roots every endpoint's fault stream via
    [Stats.Rng.derive] on its port number, so streams are independent and
    the whole network replays from one integer. *)

val bind : ?port:int -> ?scenario:Faults.Scenario.t -> t -> endpoint
(** A fresh endpoint — ephemeral port by default, or exactly [port] (how a
    churn scenario rebinds a predecessor's address). Raises
    [Invalid_argument] if [port] is already bound. [scenario] overrides the
    network default for this endpoint's egress. *)

val bind_shard :
  ?scenario:Faults.Scenario.t ->
  ?shard_of:(Unix.sockaddr -> int) ->
  t ->
  port:int ->
  shards:int ->
  index:int ->
  endpoint
(** Member [index] of a sharded port — memnet's stand-in for
    [SO_REUSEPORT]. All members share [port]; a datagram is steered at
    delivery time to member [shard_of source mod shards], so steering is a
    deterministic, replayable function of the source address (the kernel's
    4-tuple hash made explicit — each sender keeps one socket, so the
    source fixes the shard). [shard_of] defaults to {!Stats.Hash.steer}
    of the source port under the network seed — the shared steering hash
    ring placement uses too. The first [bind_shard] on a port fixes the
    group's [shards] and [shard_of]; later calls must agree on [shards]
    and their [shard_of] is ignored. Closing a member vacates its slot but
    keeps the group (datagrams steered to the gap drop as
    [dropped_unbound]) so a restarted shard rebinds into the same slot.
    Raises [Invalid_argument] on a slot already bound, a shard-count
    mismatch, or a port already bound unsharded. *)

val address : endpoint -> Unix.sockaddr
val port : endpoint -> int

val close : endpoint -> unit
(** Unbinds the port and wakes a parked reader with {!Closed}; queued and
    in-flight datagrams to the port are dropped at delivery unless the port
    has been rebound by then. Idempotent. *)

val transport : endpoint -> Sockets.Transport.t
(** The endpoint as a {!Sockets.Transport.t}. Must be driven from inside an
    [Eventsim.Proc] process: [recv] parks the process until a datagram,
    timeout, or {!close}; [sleep_ns] sleeps in virtual time; [flush] is a
    no-op (there is no syscall boundary to amortize). Single-owner, like a
    socket: one reading process per endpoint. [wake] is provided: it latches
    a flag and resumes a parked reader, making the next (or current) [recv]
    return [`Timeout] — deterministic, since callers are themselves
    simulation events. *)

val stats : t -> stats
(** Network-wide delivery accounting (shared by all endpoints). *)
