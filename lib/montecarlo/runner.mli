(** Monte-Carlo simulation of transfer times under packet loss.

    This is the abstraction level of the paper's Section 3 analysis (and of
    the simulations its authors ran for the partial/selective strategies):
    packet-level timing is collapsed into three constants and the protocol
    logic is the {e real} state-machine implementation from [lib/protocol],
    driven by a loss sampler and a time accountant.

    {ul
    {- every data packet transmitted costs [per_packet] (= C + T for a blast
       pipeline; the whole exchange time T0(1) for stop-and-wait);}
    {- every acknowledgement or NACK that reaches the sender costs
       [response] (the trailing ack path C + 2Ca + Ta + 2 tau; 0 for
       stop-and-wait, where it is folded into [per_packet]);}
    {- every timeout costs [tr].}}

    Losses are sampled per transmission from a caller-supplied sampler, so
    iid and burst (Gilbert-Elliott) error processes plug in unchanged. *)

type timing = { per_packet : float; response : float; tr : float }

val blast_timing : Analysis.Costs.t -> tr:float -> timing
val saw_timing : Analysis.Costs.t -> tr:float -> timing

val error_free_time : timing -> packets:int -> float
(** [packets * per_packet + response] — equals [Analysis.Error_free.blast]
    for {!blast_timing} and [Analysis.Error_free.stop_and_wait] for
    {!saw_timing}. *)

val one_transfer :
  ?max_attempts:int ->
  drops:(unit -> bool) ->
  timing:timing ->
  suite:Protocol.Suite.t ->
  packets:int ->
  unit ->
  float
(** Elapsed time of a single transfer, in ms. Raises [Failure] if the
    machine exhausts [max_attempts] (default 10_000) transmission rounds —
    only reachable when the loss rate approaches 1. *)

val iid : Stats.Rng.t -> loss:float -> unit -> bool

type sample = {
  elapsed_ms : Stats.Summary.t;  (** over trials that completed *)
  failures : int;  (** trials that exhausted [max_attempts] and gave up *)
}

val sample :
  ?max_attempts:int ->
  ?pool:Exec.Pool.t ->
  ?jobs:int ->
  sampler:(Stats.Rng.t -> unit -> bool) ->
  timing:timing ->
  suite:Protocol.Suite.t ->
  packets:int ->
  trials:int ->
  seed:int ->
  unit ->
  sample
(** [trials] independent transfers; trial [i] gets the generator
    [Stats.Rng.derive ~root:seed ~index:i]. Trials run in fixed 64-trial
    chunks distributed over an {!Exec.Pool} ([jobs] defaults to
    {!Exec.Pool.default_jobs}; pass [?pool] to reuse one across calls), and
    the per-chunk summaries merge in chunk order, so the returned statistics
    are bit-for-bit independent of [jobs]. A trial that gives up is counted
    in [failures] instead of aborting the whole sample. *)
