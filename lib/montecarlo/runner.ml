type timing = { per_packet : float; response : float; tr : float }

let blast_timing (k : Analysis.Costs.t) ~tr =
  {
    per_packet = k.Analysis.Costs.c +. k.Analysis.Costs.t;
    response =
      k.Analysis.Costs.c
      +. (2.0 *. k.Analysis.Costs.ca)
      +. k.Analysis.Costs.ta
      +. (2.0 *. k.Analysis.Costs.tau);
    tr;
  }

let saw_timing (k : Analysis.Costs.t) ~tr =
  {
    per_packet =
      (2.0 *. k.Analysis.Costs.c)
      +. (2.0 *. k.Analysis.Costs.ca)
      +. k.Analysis.Costs.t +. k.Analysis.Costs.ta
      +. (2.0 *. k.Analysis.Costs.tau);
    response = 0.0;
    tr;
  }

let error_free_time timing ~packets = (float_of_int packets *. timing.per_packet) +. timing.response

let run_transfer ?(max_attempts = 10_000) ~drops ~timing ~suite ~packets () =
  let config =
    Protocol.Config.make ~transfer_id:1 ~total_packets:packets
      ~tuning:(Protocol.Tuning.fixed ~max_attempts ()) ()
  in
  let sender = Protocol.Suite.sender suite config ~payload:(fun _ -> "") in
  let receiver = Protocol.Suite.receiver suite config in
  let elapsed = ref 0.0 in
  let s2r = Queue.create () and r2s = Queue.create () in
  let timer_armed = ref false in
  let outcome = ref None in
  let do_actions side actions =
    List.iter
      (fun action ->
        match action with
        | Protocol.Action.Send m ->
            let survives =
              match side with
              | `Sender ->
                  (* A data transmission costs its pipeline slot whether or
                     not the network then loses it. *)
                  elapsed := !elapsed +. timing.per_packet;
                  not (drops ())
              | `Receiver ->
                  (* A lost response costs nothing here: the sender pays the
                     timeout instead. *)
                  if drops () then false
                  else begin
                    elapsed := !elapsed +. timing.response;
                    true
                  end
            in
            if survives then
              Queue.push m (match side with `Sender -> s2r | `Receiver -> r2s)
        | Protocol.Action.Arm_timer _ -> if side = `Sender then timer_armed := true
        | Protocol.Action.Stop_timer -> if side = `Sender then timer_armed := false
        | Protocol.Action.Deliver _ -> ()
        | Protocol.Action.Complete o -> outcome := Some o)
      actions
  in
  do_actions `Receiver (receiver.Protocol.Machine.start ());
  do_actions `Sender (sender.Protocol.Machine.start ());
  while !outcome = None do
    if not (Queue.is_empty s2r) then
      do_actions `Receiver
        (receiver.Protocol.Machine.handle (Protocol.Action.Message (Queue.pop s2r)))
    else if not (Queue.is_empty r2s) then
      do_actions `Sender
        (sender.Protocol.Machine.handle (Protocol.Action.Message (Queue.pop r2s)))
    else if !timer_armed then begin
      elapsed := !elapsed +. timing.tr;
      do_actions `Sender (sender.Protocol.Machine.handle Protocol.Action.Timeout)
    end
    else failwith "Montecarlo: deadlock"
  done;
  match !outcome with
  | Some Protocol.Action.Success -> Some !elapsed
  | Some
      ( Protocol.Action.Too_many_attempts | Protocol.Action.Peer_unreachable
      | Protocol.Action.Rejected )
  | None ->
      None

let one_transfer ?max_attempts ~drops ~timing ~suite ~packets () =
  match run_transfer ?max_attempts ~drops ~timing ~suite ~packets () with
  | Some elapsed -> elapsed
  | None -> failwith "Montecarlo: transfer gave up (loss rate too high)"

let iid rng ~loss () = loss > 0.0 && Stats.Rng.bernoulli rng ~p:loss

type sample = { elapsed_ms : Stats.Summary.t; failures : int }

(* Trials are grouped into fixed-size chunks, one pool task per chunk; the
   chunk geometry depends only on [trials], never on [jobs], and the chunk
   summaries merge in index order — so the result is bit-for-bit identical
   at any parallelism. *)
let chunk_trials = 64

let sample ?max_attempts ?pool ?jobs ~sampler ~timing ~suite ~packets ~trials ~seed () =
  if trials <= 0 then invalid_arg "Runner.sample: trials must be positive";
  let chunks = (trials + chunk_trials - 1) / chunk_trials in
  let chunk k =
    let summary = Stats.Summary.create () in
    let failures = ref 0 in
    let hi = min trials ((k + 1) * chunk_trials) in
    for trial = k * chunk_trials to hi - 1 do
      let rng = Stats.Rng.derive ~root:seed ~index:trial in
      let drops = sampler rng in
      match run_transfer ?max_attempts ~drops ~timing ~suite ~packets () with
      | Some elapsed -> Stats.Summary.add summary elapsed
      | None -> incr failures
    done;
    (summary, !failures)
  in
  let elapsed_ms, failures =
    Exec.Pool.fold ?pool ?jobs chunks ~f:chunk
      ~merge:(fun (s, f) (s', f') -> (Stats.Summary.merge s s', f + f'))
      ~init:(Stats.Summary.create (), 0)
  in
  { elapsed_ms; failures }
