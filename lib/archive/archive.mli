(** A minimal archive format for remote file-system dumps.

    The paper motivates very large transfers with "remote file system dumps";
    this module turns a directory tree into one byte string (and back), so
    the multi-blast protocols have a real workload: [lanrepro dump] sends an
    archive of a directory to a peer, which restores it.

    Format (all integers big-endian):
    {v
      "LDMP" | u8 version | u32 entry count
      per entry: u8 kind (0 dir, 1 file) | u16 path length | path
                 | u32 content length | content        (files only)
      trailer: u32 CRC-32 of everything before it
    v}

    Paths are relative, ['/']-separated, and validated on extraction: no
    absolute paths, no [".."] components (a hostile archive cannot escape
    the target directory). *)

type entry = Directory of string | File of { path : string; content : string }

type error =
  | Bad_magic
  | Bad_version of int
  | Truncated
  | Bad_checksum
  | Unsafe_path of string

val pp_error : Format.formatter -> error -> unit

val encode : entry list -> string
(** Raises [Invalid_argument] on unsafe or oversized paths (> 65535 bytes)
    or file contents over 1 GiB. *)

val decode : string -> (entry list, error) result

val of_directory : string -> entry list
(** Walks [root] (regular files and directories only; symlinks and special
    files are skipped), producing entries with paths relative to [root], in
    a deterministic (sorted) order. *)

val extract : root:string -> entry list -> int
(** Writes the entries under [root] (created if missing); returns the number
    of entries written. Raises [Failure] on unsafe paths — {!decode} already
    rejects them, so this is defense in depth for hand-built entry lists. *)
