type entry = Directory of string | File of { path : string; content : string }

type error = Bad_magic | Bad_version of int | Truncated | Bad_checksum | Unsafe_path of string

let pp_error ppf = function
  | Bad_magic -> Format.pp_print_string ppf "bad magic"
  | Bad_version v -> Format.fprintf ppf "unsupported version %d" v
  | Truncated -> Format.pp_print_string ppf "truncated archive"
  | Bad_checksum -> Format.pp_print_string ppf "checksum mismatch"
  | Unsafe_path p -> Format.fprintf ppf "unsafe path %S" p

let magic = "LDMP"
let version = 1

let path_is_safe path =
  String.length path > 0
  && path.[0] <> '/'
  && (not (String.contains path '\000'))
  && List.for_all (fun part -> part <> ".." && part <> "") (String.split_on_char '/' path)

let check_path path =
  if String.length path > 0xFFFF then invalid_arg "Archive: path too long";
  if not (path_is_safe path) then invalid_arg ("Archive: unsafe path " ^ path)

let encode entries =
  let buffer = Buffer.create 4096 in
  Buffer.add_string buffer magic;
  Buffer.add_uint8 buffer version;
  let count = Bytes.create 4 in
  Bytes.set_int32_be count 0 (Int32.of_int (List.length entries));
  Buffer.add_bytes buffer count;
  let add_u16 v =
    let b = Bytes.create 2 in
    Bytes.set_uint16_be b 0 v;
    Buffer.add_bytes buffer b
  in
  let add_u32 v =
    let b = Bytes.create 4 in
    Bytes.set_int32_be b 0 (Int32.of_int v);
    Buffer.add_bytes buffer b
  in
  List.iter
    (fun entry ->
      match entry with
      | Directory path ->
          check_path path;
          Buffer.add_uint8 buffer 0;
          add_u16 (String.length path);
          Buffer.add_string buffer path
      | File { path; content } ->
          check_path path;
          if String.length content > 1 lsl 30 then invalid_arg "Archive: file too large";
          Buffer.add_uint8 buffer 1;
          add_u16 (String.length path);
          Buffer.add_string buffer path;
          add_u32 (String.length content);
          Buffer.add_string buffer content)
    entries;
  let body = Buffer.contents buffer in
  let crc = Packet.Checksum.crc32_string body in
  let trailer = Bytes.create 4 in
  Bytes.set_int32_be trailer 0 crc;
  body ^ Bytes.to_string trailer

let decode archive =
  let len = String.length archive in
  if len < 13 then Error Truncated
  else begin
    let body_len = len - 4 in
    let stored_crc = Bytes.get_int32_be (Bytes.of_string (String.sub archive body_len 4)) 0 in
    let computed =
      Packet.Checksum.crc32 (Bytes.unsafe_of_string archive) ~pos:0 ~len:body_len
    in
    if stored_crc <> computed then Error Bad_checksum
    else if String.sub archive 0 4 <> magic then Error Bad_magic
    else if Char.code archive.[4] <> version then Error (Bad_version (Char.code archive.[4]))
    else begin
      let buf = Bytes.unsafe_of_string archive in
      let u16 pos = Bytes.get_uint16_be buf pos in
      let u32 pos = Int32.to_int (Bytes.get_int32_be buf pos) land 0xFFFFFFFF in
      let count = u32 5 in
      let exception Fail of error in
      let position = ref 9 in
      let need n = if !position + n > body_len then raise (Fail Truncated) in
      let take_string n =
        need n;
        let s = String.sub archive !position n in
        position := !position + n;
        s
      in
      try
        let entries =
          List.init count (fun _ ->
              need 3;
              let kind = Char.code archive.[!position] in
              let path_len = u16 (!position + 1) in
              position := !position + 3;
              let path = take_string path_len in
              if not (path_is_safe path) then raise (Fail (Unsafe_path path));
              match kind with
              | 0 -> Directory path
              | 1 ->
                  need 4;
                  let content_len = u32 !position in
                  position := !position + 4;
                  File { path; content = take_string content_len }
              | _ -> raise (Fail Truncated))
        in
        if !position <> body_len then Error Truncated else Ok entries
      with Fail e -> Error e
    end
  end

let of_directory root =
  let entries = ref [] in
  let rec walk relative =
    let absolute = if relative = "" then root else Filename.concat root relative in
    match (Unix.lstat absolute).Unix.st_kind with
    | Unix.S_DIR ->
        if relative <> "" then entries := Directory relative :: !entries;
        let children = Sys.readdir absolute in
        Array.sort compare children;
        Array.iter
          (fun child ->
            walk (if relative = "" then child else relative ^ "/" ^ child))
          children
    | Unix.S_REG ->
        let ic = open_in_bin absolute in
        let content =
          Fun.protect
            ~finally:(fun () -> close_in ic)
            (fun () -> really_input_string ic (in_channel_length ic))
        in
        entries := File { path = relative; content } :: !entries
    | _ -> () (* symlinks, sockets, devices: skipped *)
  in
  walk "";
  List.rev !entries

let rec mkdir_p path =
  if path <> "" && path <> "." && path <> "/" && not (Sys.file_exists path) then begin
    mkdir_p (Filename.dirname path);
    try Unix.mkdir path 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let extract ~root entries =
  mkdir_p root;
  List.iter
    (fun entry ->
      let path = match entry with Directory p -> p | File { path; _ } -> path in
      if not (path_is_safe path) then failwith ("Archive.extract: unsafe path " ^ path);
      let absolute = Filename.concat root path in
      match entry with
      | Directory _ -> mkdir_p absolute
      | File { content; _ } ->
          mkdir_p (Filename.dirname absolute);
          let oc = open_out_bin absolute in
          Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc content))
    entries;
  List.length entries
