(* Consistent-hash placement: which servers hold which stripe. See the
   interface for the design contract. *)

type t = {
  seed : int;
  vnodes : int;
  nodes : int list;  (* distinct, ascending *)
  points : (int * int) array;  (* (ring point, node), ascending *)
}

(* The key space and the point space must be uncorrelated — a node id that
   collides with a key hash would always capture it — so key hashing salts
   the seed with a tag the point hash never uses. *)
let key_salt = 0x52494e47 (* "RING" *)

let create ?(vnodes = 64) ~seed nodes =
  if nodes = [] then invalid_arg "Placement.create: empty ring";
  if vnodes <= 0 then invalid_arg "Placement.create: vnodes must be positive";
  let nodes = List.sort_uniq compare nodes in
  let points =
    List.concat_map
      (fun node -> List.init vnodes (fun v -> (Stats.Hash.mix2 ~seed node v, node)))
      nodes
    |> Array.of_list
  in
  (* Ties on the point value (astronomically rare but possible) break by
     node id, so the ring order is a pure function of (seed, nodes). *)
  Array.sort compare points;
  { seed; vnodes; nodes; points }

let nodes t = t.nodes
let size t = List.length t.nodes
let vnodes t = t.vnodes
let seed t = t.seed

let remove t node =
  match List.filter (fun n -> n <> node) t.nodes with
  | [] -> invalid_arg "Placement.remove: cannot empty the ring"
  | rest -> create ~vnodes:t.vnodes ~seed:t.seed rest

let key t ~object_id ~stripe =
  Stats.Hash.mix2 ~seed:(t.seed lxor key_salt) object_id stripe

(* First point strictly after [k], wrapping — the classic clockwise walk. *)
let start_index t k =
  let n = Array.length t.points in
  let rec search lo hi =
    (* invariant: points.(lo-1) <= k < points.(hi) (with virtual sentinels) *)
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if fst t.points.(mid) <= k then search (mid + 1) hi else search lo mid
  in
  search 0 n mod n

let successors t ~object_id ~stripe =
  let n = Array.length t.points in
  let want = size t in
  let start = start_index t (key t ~object_id ~stripe) in
  let seen = Hashtbl.create want in
  let rec walk i acc found =
    if found = want then List.rev acc
    else
      let node = snd t.points.((start + i) mod n) in
      if Hashtbl.mem seen node then walk (i + 1) acc found
      else begin
        Hashtbl.add seen node ();
        walk (i + 1) (node :: acc) (found + 1)
      end
  in
  walk 0 [] 0

let replicas t ~object_id ~stripe ~r =
  if r <= 0 then invalid_arg "Placement.replicas: r must be positive";
  List.filteri (fun i _ -> i < r) (successors t ~object_id ~stripe)
