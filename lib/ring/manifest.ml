(* Client-side aggregate of per-server MREP answers: who holds which
   stripe, and does what they hold match the bytes we blasted. *)

type holding = { server : int; bytes : int; crc : int32 }

type t = {
  object_id : int;
  stripes : int;
  table : holding list array;  (* stripe index -> holdings, newest first *)
}

let create ~object_id ~stripes =
  if stripes <= 0 then invalid_arg "Manifest.create: stripes must be positive";
  { object_id; stripes; table = Array.make stripes [] }

let object_id t = t.object_id
let stripes t = t.stripes

let record t ~server entries =
  List.iter
    (fun (e : Packet.Stripe.entry) ->
      let s = e.Packet.Stripe.stripe in
      (* An answer about another object, or with a geometry that disagrees
         with ours, is not evidence about this transfer — skip it rather
         than let a confused server poison the replication count. *)
      if
        s.Packet.Stripe.object_id = t.object_id
        && s.Packet.Stripe.count = t.stripes
        && s.Packet.Stripe.index >= 0
        && s.Packet.Stripe.index < t.stripes
      then
        let index = s.Packet.Stripe.index in
        let others =
          List.filter (fun h -> h.server <> server) t.table.(index)
        in
        t.table.(index) <-
          { server; bytes = e.Packet.Stripe.bytes; crc = e.Packet.Stripe.crc }
          :: others)
    entries

let holders t ~stripe = List.map (fun h -> h.server) t.table.(stripe)

(* A holder counts only if its copy re-reads as the bytes we wrote: the
   CRC is the end-to-end identity of the stripe, not its name. *)
let valid_holders t ~stripe ~crc =
  List.filter_map
    (fun h -> if h.crc = crc then Some h.server else None)
    t.table.(stripe)

let replication t ~crcs =
  if Array.length crcs <> t.stripes then
    invalid_arg "Manifest.replication: crcs length mismatch";
  Array.init t.stripes (fun i -> List.length (valid_holders t ~stripe:i ~crc:crcs.(i)))

let quorum_met t ~quorum ~crcs =
  Array.for_all (fun n -> n >= quorum) (replication t ~crcs)

let under_replicated t ~replicas ~crcs =
  if Array.length crcs <> t.stripes then
    invalid_arg "Manifest.under_replicated: crcs length mismatch";
  List.init t.stripes (fun i -> (i, valid_holders t ~stripe:i ~crc:crcs.(i)))
  |> List.filter (fun (_, valid) -> List.length valid < replicas)
