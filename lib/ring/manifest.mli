(** The client's view of one object's replication state, aggregated from
    per-server [MREQ]/[MREP] exchanges.

    Servers answer with the {!Packet.Stripe.entry} records of stripes they
    settled with a verified CRC; {!record} folds each answer in, keyed by
    the answering server. Validity is end-to-end: a holder counts toward
    replication only when the CRC it reports equals the CRC of the bytes
    the client blasted ([crcs.(stripe)]), so a torn or stale copy can
    never satisfy a quorum. *)

type t

val create : object_id:int -> stripes:int -> t
(** Empty view of an object with the given stripe count. Raises
    [Invalid_argument] on a non-positive count. *)

val object_id : t -> int
val stripes : t -> int

val record : t -> server:int -> Packet.Stripe.entry list -> unit
(** Fold one server's manifest answer in. Entries about other objects or
    with a disagreeing stripe count are ignored; a repeated answer from
    the same server replaces its older claims (newest wins). *)

val holders : t -> stripe:int -> int list
(** Servers claiming the stripe, whatever bytes they claim. *)

val valid_holders : t -> stripe:int -> crc:int32 -> int list
(** Servers whose claimed CRC matches the expected one — the replicas
    that count. *)

val replication : t -> crcs:int32 array -> int array
(** Per-stripe valid-replica count. Raises [Invalid_argument] unless
    [crcs] has exactly [stripes t] entries. *)

val quorum_met : t -> quorum:int -> crcs:int32 array -> bool
(** Every stripe has at least [quorum] valid replicas. *)

val under_replicated : t -> replicas:int -> crcs:int32 array -> (int * int list) list
(** Stripes holding fewer than [replicas] valid copies, with their
    current valid holders — the repair pass's work list, in stripe
    order. *)
