(** Consistent-hash stripe placement over a ring of servers.

    Each server contributes [vnodes] points to the ring, hashed from
    [(seed, node, vnode)] via {!Stats.Hash.mix2} — the same splitmix-style
    mixer behind memnet's REUSEPORT steering, so placement and steering
    share one hash discipline. A stripe's replica set is the first [r]
    {e distinct} servers clockwise from the point of its key
    [(object_id, stripe index)].

    Two properties the tests assert, both classic consistent-hashing
    results the virtual nodes buy:
    - {e balance}: over many stripes, each of [N] servers owns roughly
      [1/N] of the primary placements;
    - {e minimal remapping}: removing one server moves only the stripes it
      held — every stripe whose replica set excluded the victim keeps its
      placement bit-for-bit, which is exactly why the repair pass after a
      server death only re-blasts the victim's stripes. *)

type t

val create : ?vnodes:int -> seed:int -> int list -> t
(** Ring over the given server ids (deduplicated). Pure function of
    [(seed, vnodes, nodes)]: equal inputs build identical rings on every
    host, which is what keeps DST placement replayable. Default 64 virtual
    nodes per server. Raises [Invalid_argument] on an empty list or
    non-positive [vnodes]. *)

val remove : t -> int -> t
(** The ring without one server — the live ring a repair pass plans
    against after a death. Same [seed] and [vnodes], so surviving
    placements do not move. Raises [Invalid_argument] if it would empty
    the ring. *)

val nodes : t -> int list
(** Member server ids, ascending. *)

val size : t -> int
val vnodes : t -> int
val seed : t -> int

val successors : t -> object_id:int -> stripe:int -> int list
(** Every server in clockwise preference order from the stripe's key
    point — head is the primary, and dropping dead entries from this list
    is how repair picks replacement holders. Length [size t]. *)

val replicas : t -> object_id:int -> stripe:int -> r:int -> int list
(** First [min r (size t)] servers of {!successors} — the stripe's
    intended replica set. Raises [Invalid_argument] on non-positive
    [r]. *)
