(** A ring of N transfer servers over real UDP: one {!Server.Engine} per
    member, each on its own port and serving domain — the
    process-per-server shape of a deployment, as one value.

    Observability merges the {!Server.Shard_group} way: every member's
    trace lanes and snapshot labels carry its ["r<i>:"] prefix (the
    engine's [lane_prefix]), and {!snapshot} aggregates the fleet into one
    [lanrepro-stat/1] document with summed totals/counters, merged
    loop-health histograms ({!Obs.Hist.merge} roll-up) and a [per_server]
    breakdown — admission totals, manifest size and loop health per
    member, which is what `lanrepro stat` renders for a ring.

    {!kill} is the fault the ring subsystem exists to absorb: the member
    stops for good, its port goes dark, and in-flight blasts at it fail
    with clean typed outcomes while the write quorum decides whether the
    object survived. *)

type t

val create :
  ?address:string ->
  ?base_port:int ->
  ?max_flows:int ->
  ?idle_timeout_ns:int ->
  ?linger_ns:int ->
  ?fallback_suite:Protocol.Suite.t ->
  ?scenario:Faults.Scenario.t ->
  ?seed:int ->
  ?drain_budget:int ->
  ?ctx:Sockets.Io_ctx.t ->
  ?on_complete:(int -> Server.Engine.completion_event -> unit) ->
  ?flowtrace:Obs.Flowtrace.t ->
  ?admin_port:int ->
  ?stats_interval_ns:int ->
  ?on_snapshot:(Obs.Json.t -> unit) ->
  servers:int ->
  unit ->
  t
(** N members on [address] (default loopback). With [base_port] member [i]
    binds [base_port + i]; default 0 gives every member an ephemeral port
    (read them back with {!ports} / {!peer_of}). Engine knobs apply to
    every member; member [i] seeds its fault streams from
    [seed + 7919 * i], so a ring under a scenario is as replayable as a
    single engine. [on_complete] receives the member index alongside the
    event, serialized across domains. [admin_port] opens one fleet-wide
    stat socket answering with the merged {!snapshot}. *)

val start : t -> unit
(** Spawn one serving domain per member (plus the admin/stats thread when
    configured). *)

val stop : t -> unit
(** Ask every live member to stop. *)

val join : t -> unit
(** Wait for every serving domain, then close the admin socket and every
    remaining socket. *)

val kill : t -> int -> unit
(** Permanently remove member [i], mid-traffic by design: stop its
    engine, join its domain, close its socket. Idempotent. The member
    stays dead — there is no resurrection; repair re-homes its stripes
    onto survivors instead. *)

val servers : t -> int
val alive : t -> int list
(** Indices not yet {!kill}ed, ascending. *)

val ports : t -> int array
val port : t -> int -> int
val peer_of : t -> int -> Unix.sockaddr
(** Member [i]'s datagram address — the [peer_of] a {!Client.put} against
    this fleet wants. *)

val placement : ?vnodes:int -> seed:int -> t -> Placement.t
(** The full ring [0..servers-1] as a {!Placement}. *)

val live_placement : ?vnodes:int -> seed:int -> t -> Placement.t
(** The ring restricted to {!alive} members — what a repair pass plans
    against. Raises [Invalid_argument] if every member is dead. *)

val engines : t -> Server.Engine.t array
val admin_port : t -> int option

val snapshot : t -> Obs.Json.t
(** Merged fleet snapshot ([lanrepro-stat/1]): summed admission totals and
    protocol counters, the union of per-flow listings (lane-prefixed,
    capped at 128 with [flows_omitted]), merged health histograms, fleet
    manifest size, and the [per_server] breakdown. Running members answer
    at their next idle point (bounded by a wake); members marked
    [unresponsive] failed to answer within the budget. Thread-safe. *)

val totals : t -> Server.Engine.totals
val rollup : t -> Protocol.Counters.t
val invariant_violations : t -> string list
