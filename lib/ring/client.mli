(** The striped sender: one object in, [stripes x replicas] ordinary blast
    sub-transfers out.

    Each stripe is an even slice of the object (remainder bytes spread
    over the first stripes), blasted to the [r] servers
    {!Placement.replicas} names for [(object_id, stripe index)]. Every
    sub-transfer is a completely ordinary flow — REQ carrying the
    {!Packet.Stripe} framing plus the slice's CRC, then the blast protocol
    as usual — on its own ephemeral socket, so the receiving engines need
    nothing ring-specific on the data path. The object is durable under
    the write-quorum rule: every stripe settled [Success] (hence
    CRC-verified, {!Sockets.Flow.integrity}) on at least [quorum]
    replicas. *)

type job = {
  stripe : int;
  replica : int;  (** 0 = primary *)
  server : int;
  offset : int;
  bytes : int;
}

val pp_job : Format.formatter -> job -> unit

val stripe_bounds : total:int -> stripes:int -> index:int -> int * int
(** [(offset, length)] of one stripe. Pure; sender and repair agree by
    construction. Raises [Invalid_argument] when [total < stripes], on a
    non-positive stripe count, or an out-of-range index. *)

val stripe_slice : data:string -> stripes:int -> index:int -> string
val stripe_crcs : data:string -> stripes:int -> int32 array
(** Per-stripe CRC-32 of the slices — the validity reference every
    manifest answer is checked against. *)

val plan :
  Placement.t -> object_id:int -> total:int -> stripes:int -> replicas:int -> job list
(** The full fan-out, stripe-major then replica order: deterministic given
    the placement, so a DST trial and a real run blast identical plans. *)

type blast_result = {
  job : job;
  outcome : Protocol.Action.outcome;
  elapsed_ns : int;
}

val blast :
  ?ctx:Sockets.Io_ctx.t ->
  ?packet_bytes:int ->
  ?tuning:Protocol.Tuning.t ->
  ?suite:Protocol.Suite.t ->
  peer_of:(int -> Unix.sockaddr) ->
  object_id:int ->
  stripes:int ->
  data:string ->
  job ->
  blast_result
(** One stripe replica to one server, as an ordinary blast flow on its own
    ephemeral socket — the unit {!put} fans out and {!Repair.run}
    re-drives at replacement holders. *)

type put_result = {
  results : blast_result list;  (** plan order *)
  acked : int array;  (** per stripe, replicas settled [Success] *)
  quorum_met : bool;  (** every stripe acked by >= quorum replicas *)
  elapsed_ns : int;  (** wall clock around the whole fan-out *)
}

val put :
  ?pool:Exec.Pool.t ->
  ?jobs:int ->
  ?ctx:Sockets.Io_ctx.t ->
  ?packet_bytes:int ->
  ?tuning:Protocol.Tuning.t ->
  ?suite:Protocol.Suite.t ->
  placement:Placement.t ->
  peer_of:(int -> Unix.sockaddr) ->
  object_id:int ->
  stripes:int ->
  replicas:int ->
  quorum:int ->
  data:string ->
  unit ->
  put_result
(** Blast the whole plan over real UDP, [jobs] sub-transfers in flight at
    once (an {!Exec.Pool} — default the shared pool's width). [peer_of]
    maps a ring server id to its datagram address. A dead server costs its
    jobs a clean [Peer_unreachable] after the handshake gives up; the put
    still reports [quorum_met] honestly from the survivors. Default suite
    go-back-N blast. Raises [Invalid_argument] unless
    [0 < quorum <= replicas]. *)
