(* N independent engines, one per ring member, each on its own UDP port
   and serving domain — the process-per-server shape of a real deployment,
   with merged observability in the Shard_group style. *)

type server = {
  index : int;
  port : int;
  socket : Unix.file_descr;
  poller : Sockets.Poller.t;
  engine : Server.Engine.t;
  want_snapshot : bool Atomic.t;
  snap_cell : Obs.Json.t option Atomic.t;
  finished : bool Atomic.t;
  mutable domain : unit Domain.t option;
  mutable killed : bool;
}

type t = {
  servers : server array;
  address : string;
  clock : unit -> int;
  admin : Server.Admin.t option;
  stats_interval_ns : int option;
  on_snapshot : Obs.Json.t -> unit;
  admin_stop : bool Atomic.t;
  mutable admin_thread : Thread.t option;
}

let servers t = Array.length t.servers
let ports t = Array.map (fun s -> s.port) t.servers
let port t index = t.servers.(index).port
let engines t = Array.map (fun s -> s.engine) t.servers

let peer_of t index =
  Unix.ADDR_INET (Unix.inet_addr_of_string t.address, t.servers.(index).port)

let alive t =
  Array.to_list t.servers
  |> List.filter_map (fun s -> if s.killed then None else Some s.index)

let placement ?vnodes ~seed t =
  Placement.create ?vnodes ~seed (List.init (servers t) Fun.id)

let live_placement ?vnodes ~seed t =
  Placement.create ?vnodes ~seed (alive t)

let create ?(address = "127.0.0.1") ?(base_port = 0) ?max_flows
    ?idle_timeout_ns ?linger_ns ?fallback_suite ?scenario
    ?(seed = 1) ?drain_budget ?ctx ?(on_complete = fun _ _ -> ()) ?flowtrace
    ?admin_port ?stats_interval_ns ?(on_snapshot = fun _ -> ()) ~servers () =
  if servers <= 0 then invalid_arg "Fleet.create: servers must be positive";
  let ctx = match ctx with Some c -> c | None -> Sockets.Io_ctx.default () in
  let clock = ctx.Sockets.Io_ctx.clock in
  (* Settlements arrive on N serving domains; serialize them so the
     caller's accounting needs no locking of its own. *)
  let complete_lock = Mutex.create () in
  let on_complete index event =
    Mutex.lock complete_lock;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock complete_lock)
      (fun () -> on_complete index event)
  in
  let make_server index =
    let port = if base_port = 0 then 0 else base_port + index in
    let socket, bound = Sockets.Udp.create_socket ~address ~port () in
    let port =
      match bound with Unix.ADDR_INET (_, p) -> p | Unix.ADDR_UNIX _ -> port
    in
    let poller = Sockets.Poller.create () in
    let transport =
      Sockets.Transport.udp ~batch:ctx.Sockets.Io_ctx.batch ~poller ~socket ()
    in
    let want_snapshot = Atomic.make false in
    let snap_cell = Atomic.make None in
    let engine_ref = ref None in
    (* Runs on the member's serving thread, where a live snapshot is
       legal; the engine value exists only after [create], hence the ref. *)
    let on_idle () =
      if Atomic.get want_snapshot then
        match !engine_ref with
        | None -> ()
        | Some engine ->
            Atomic.set snap_cell (Some (Server.Engine.snapshot engine));
            Atomic.set want_snapshot false
    in
    let engine =
      Server.Engine.create ?max_flows
        ?idle_timeout_ns ?linger_ns ?fallback_suite ?scenario
        ~seed:(seed + (7919 * index))
        ?drain_budget ~ctx ~on_complete:(on_complete index) ?flowtrace ~on_idle
        ~lane_prefix:(Printf.sprintf "r%d:" index)
        ~transport ()
    in
    engine_ref := Some engine;
    {
      index;
      port;
      socket;
      poller;
      engine;
      want_snapshot;
      snap_cell;
      finished = Atomic.make false;
      domain = None;
      killed = false;
    }
  in
  let admin = Option.map (fun port -> Server.Admin.create ~port ()) admin_port in
  {
    servers = Array.init servers make_server;
    address;
    clock;
    admin;
    stats_interval_ns;
    on_snapshot;
    admin_stop = Atomic.make false;
    admin_thread = None;
  }

let admin_port t = Option.map Server.Admin.port t.admin

(* ---- Snapshot aggregation -------------------------------------------- *)

let get path json =
  List.fold_left
    (fun acc key -> Option.bind acc (Obs.Json.member key))
    (Some json) path

let get_int path json =
  match get path json with
  | Some j -> Option.value ~default:0 (Obs.Json.to_int j)
  | None -> 0

let totals_keys =
  [
    "accepted"; "completed"; "aborted"; "rejected"; "superseded";
    "stray_datagrams"; "garbage"; "send_failures";
  ]

let counters_keys =
  [
    "data_sent"; "retransmitted_data"; "acks_sent"; "nacks_sent"; "rounds";
    "timeouts"; "duplicates_received"; "delivered"; "faults_injected";
    "corrupt_detected"; "garbage_received";
  ]

let sum_section section keys snaps =
  Obs.Json.Obj
    (List.map
       (fun key ->
         ( key,
           Obs.Json.Int
             (List.fold_left (fun acc s -> acc + get_int [ section; key ] s) 0 snaps) ))
       keys)

let snapshot_flow_cap = 128

(* One member's answer without touching its flow table from this thread: a
   running engine serves the request at its next idle point; a member that
   is not running — never started, killed, or wound down — is snapshotted
   directly, the documented safe case. *)
let fetch_snapshot s =
  let running =
    match s.domain with Some _ -> not (Atomic.get s.finished) | None -> false
  in
  if not running then Some (Server.Engine.snapshot s.engine)
  else begin
    Atomic.set s.snap_cell None;
    Atomic.set s.want_snapshot true;
    Server.Engine.wake s.engine;
    let deadline = Unix.gettimeofday () +. 0.25 in
    let rec spin () =
      match Atomic.get s.snap_cell with
      | Some json -> Some json
      | None ->
          if Atomic.get s.finished then Some (Server.Engine.snapshot s.engine)
          else if Unix.gettimeofday () > deadline then None
          else begin
            Thread.delay 0.0005;
            spin ()
          end
    in
    spin ()
  end

(* The per-server breakdown rides inside the aggregate — satellite
   observability for `lanrepro stat` against a ring: every member's
   admission totals, manifest size and loop health, attributable because
   the merged flow listing keeps the "r<i>:" lane prefixes. *)
let per_server_json servers snaps =
  Obs.Json.List
    (List.map2
       (fun (s : server) snap ->
         match snap with
         | None ->
             Obs.Json.Obj
               [
                 ("server", Obs.Json.Int s.index);
                 ("port", Obs.Json.Int s.port);
                 ("unresponsive", Obs.Json.Bool true);
               ]
         | Some snap ->
             Obs.Json.Obj
               [
                 ("server", Obs.Json.Int s.index);
                 ("port", Obs.Json.Int s.port);
                 ("alive", Obs.Json.Bool (not s.killed));
                 ("active_flows", Obs.Json.Int (get_int [ "active_flows" ] snap));
                 ( "manifest_stripes",
                   Obs.Json.Int (get_int [ "manifest_stripes" ] snap) );
                 ( "totals",
                   Option.value ~default:Obs.Json.Null (get [ "totals" ] snap) );
                 ( "health",
                   Obs.Json.Obj
                     [
                       ("ticks", Obs.Json.Int (get_int [ "health"; "ticks" ] snap));
                       ( "drain_exhausted",
                         Obs.Json.Int (get_int [ "health"; "drain_exhausted" ] snap) );
                       ( "spurious_wakeups",
                         Obs.Json.Int (get_int [ "health"; "spurious_wakeups" ] snap) );
                       ( "timer_heap",
                         Obs.Json.Int (get_int [ "health"; "timer_heap" ] snap) );
                     ] );
               ])
       (Array.to_list servers) snaps)

let merged_health_json t snaps =
  let merged = Server.Engine.create_health () in
  Array.iter
    (fun s -> Server.Engine.merge_health ~into:merged (Server.Engine.health s.engine))
    t.servers;
  Obs.Json.Obj
    [
      ("ticks", Obs.Json.Int merged.Server.Engine.ticks);
      ("drain_exhausted", Obs.Json.Int merged.Server.Engine.drain_exhausted);
      ("spurious_wakeups", Obs.Json.Int merged.Server.Engine.spurious_wakeups);
      ( "timer_heap",
        Obs.Json.Int
          (List.fold_left (fun acc s -> acc + get_int [ "health"; "timer_heap" ] s) 0 snaps) );
      ("tick_duration_ns", Obs.Hist.to_json merged.Server.Engine.tick_duration_ns);
      ("recv_drained", Obs.Hist.to_json merged.Server.Engine.recv_drained);
      ("flush_train", Obs.Hist.to_json merged.Server.Engine.flush_train);
      ("timer_heap_depth", Obs.Hist.to_json merged.Server.Engine.timer_heap_depth);
    ]

let snapshot t =
  let now = t.clock () in
  let snaps = Array.to_list (Array.map fetch_snapshot t.servers) in
  let answered = List.filter_map Fun.id snaps in
  let unresponsive = List.length snaps - List.length answered in
  let flows =
    List.concat_map
      (fun s ->
        match get [ "flows" ] s with Some (Obs.Json.List l) -> l | _ -> [])
      answered
  in
  let flow_label j =
    match Obs.Json.member "flow" j with Some (Obs.Json.String l) -> l | _ -> ""
  in
  let flows = List.sort (fun a b -> compare (flow_label a) (flow_label b)) flows in
  let shown = List.filteri (fun i _ -> i < snapshot_flow_cap) flows in
  let omitted =
    List.fold_left (fun acc s -> acc + get_int [ "flows_omitted" ] s) 0 answered
    + max 0 (List.length flows - snapshot_flow_cap)
  in
  let uptime =
    List.fold_left (fun acc s -> max acc (get_int [ "uptime_ns" ] s)) 0 answered
  in
  Obs.Json.Obj
    [
      ("schema", Obs.Json.String "lanrepro-stat/1");
      ("now_ns", Obs.Json.Int now);
      ("uptime_ns", Obs.Json.Int uptime);
      ("servers", Obs.Json.Int (Array.length t.servers));
      ("servers_alive", Obs.Json.Int (List.length (alive t)));
      ("servers_unresponsive", Obs.Json.Int unresponsive);
      ( "max_flows",
        Obs.Json.Int
          (List.fold_left (fun acc s -> acc + get_int [ "max_flows" ] s) 0 answered) );
      ( "active_flows",
        Obs.Json.Int
          (List.fold_left (fun acc s -> acc + get_int [ "active_flows" ] s) 0 answered) );
      ( "manifest_stripes",
        Obs.Json.Int
          (List.fold_left
             (fun acc s -> acc + get_int [ "manifest_stripes" ] s)
             0 answered) );
      ("flows_omitted", Obs.Json.Int omitted);
      ("totals", sum_section "totals" totals_keys answered);
      ("flows", Obs.Json.List shown);
      ("health", merged_health_json t answered);
      ("counters", sum_section "counters" counters_keys answered);
      ("per_server", per_server_json t.servers snaps);
    ]

(* ---- Lifecycle ------------------------------------------------------- *)

let start t =
  Array.iter
    (fun s ->
      match s.domain with
      | Some _ -> invalid_arg "Fleet.start: already started"
      | None ->
          s.domain <-
            Some
              (Domain.spawn (fun () ->
                   Server.Engine.run s.engine;
                   Atomic.set s.finished true)))
    t.servers;
  if Option.is_some t.admin || Option.is_some t.stats_interval_ns then
    t.admin_thread <-
      Some
        (Thread.create
           (fun () ->
             let next_stats =
               ref
                 (match t.stats_interval_ns with
                 | Some interval -> t.clock () + interval
                 | None -> max_int)
             in
             while not (Atomic.get t.admin_stop) do
               Option.iter
                 (fun admin ->
                   Server.Admin.poll admin ~snapshot:(fun () -> snapshot t))
                 t.admin;
               (match t.stats_interval_ns with
               | Some interval when t.clock () >= !next_stats ->
                   t.on_snapshot (snapshot t);
                   next_stats := t.clock () + interval
               | _ -> ());
               Thread.delay 0.02
             done)
           ())

(* A killed member is dead for good: engine stopped, domain joined, socket
   closed — from here on its port answers nothing, blasts at it fail the
   handshake cleanly, and manifest surveys time out. Exactly the failure
   the write quorum absorbs and the repair pass routes around. *)
let kill t index =
  let s = t.servers.(index) in
  if not s.killed then begin
    s.killed <- true;
    Server.Engine.stop s.engine;
    (match s.domain with
    | None -> ()
    | Some d ->
        Domain.join d;
        s.domain <- None;
        Atomic.set s.finished true);
    Sockets.Poller.close s.poller;
    Sockets.Udp.close s.socket
  end

let stop t =
  Array.iter (fun s -> if not s.killed then Server.Engine.stop s.engine) t.servers

let join t =
  Array.iter
    (fun s ->
      match s.domain with
      | None -> ()
      | Some d ->
          Domain.join d;
          s.domain <- None;
          Atomic.set s.finished true)
    t.servers;
  Atomic.set t.admin_stop true;
  (match t.admin_thread with
  | None -> ()
  | Some th ->
      Thread.join th;
      t.admin_thread <- None);
  Option.iter Server.Admin.close t.admin;
  Array.iter
    (fun s ->
      if not s.killed then begin
        Sockets.Poller.close s.poller;
        Sockets.Udp.close s.socket
      end)
    t.servers

(* ---- Post-run roll-ups ----------------------------------------------- *)

let totals t =
  let sum = Server.Engine.create_totals () in
  Array.iter
    (fun s ->
      let a = Server.Engine.totals s.engine in
      sum.Server.Engine.accepted <- sum.Server.Engine.accepted + a.Server.Engine.accepted;
      sum.Server.Engine.completed <- sum.Server.Engine.completed + a.Server.Engine.completed;
      sum.Server.Engine.aborted <- sum.Server.Engine.aborted + a.Server.Engine.aborted;
      sum.Server.Engine.rejected <- sum.Server.Engine.rejected + a.Server.Engine.rejected;
      sum.Server.Engine.superseded <-
        sum.Server.Engine.superseded + a.Server.Engine.superseded;
      sum.Server.Engine.stray_datagrams <-
        sum.Server.Engine.stray_datagrams + a.Server.Engine.stray_datagrams;
      sum.Server.Engine.garbage <- sum.Server.Engine.garbage + a.Server.Engine.garbage;
      sum.Server.Engine.send_failures <-
        sum.Server.Engine.send_failures + a.Server.Engine.send_failures)
    t.servers;
  sum

let rollup t =
  let total = Protocol.Counters.create () in
  Array.iter
    (fun s -> Protocol.Counters.merge ~into:total (Server.Engine.rollup s.engine))
    t.servers;
  total

let invariant_violations t =
  Array.to_list t.servers
  |> List.concat_map (fun s ->
         List.map
           (fun v -> Printf.sprintf "server %d: %s" s.index v)
           (Server.Engine.invariant_violations s.engine))
