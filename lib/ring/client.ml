(* Striped, replicated put: one large object becomes stripes x replicas
   ordinary blast sub-transfers, fanned out over an Exec.Pool. *)

type job = { stripe : int; replica : int; server : int; offset : int; bytes : int }

let pp_job ppf j =
  Format.fprintf ppf "stripe %d replica %d -> server %d [%d+%d]" j.stripe j.replica
    j.server j.offset j.bytes

(* Even split, remainder spread over the first stripes — every stripe is
   within one byte of the others, and offsets are a pure function of
   (total, stripes), so sender and repair agree on bounds forever. *)
let stripe_bounds ~total ~stripes ~index =
  if stripes <= 0 then invalid_arg "Client.stripe_bounds: stripes must be positive";
  if total < stripes then
    invalid_arg "Client.stripe_bounds: fewer bytes than stripes";
  if index < 0 || index >= stripes then invalid_arg "Client.stripe_bounds: index out of range";
  let base = total / stripes and rem = total mod stripes in
  let offset = (index * base) + min index rem in
  let len = base + if index < rem then 1 else 0 in
  (offset, len)

let stripe_slice ~data ~stripes ~index =
  let offset, len = stripe_bounds ~total:(String.length data) ~stripes ~index in
  String.sub data offset len

let stripe_crcs ~data ~stripes =
  Array.init stripes (fun index ->
      Packet.Checksum.crc32_string (stripe_slice ~data ~stripes ~index))

let plan placement ~object_id ~total ~stripes ~replicas =
  List.concat
    (List.init stripes (fun stripe ->
         let offset, bytes = stripe_bounds ~total ~stripes ~index:stripe in
         Placement.replicas placement ~object_id ~stripe ~r:replicas
         |> List.mapi (fun replica server -> { stripe; replica; server; offset; bytes })))

(* ---- Real-UDP driver --------------------------------------------------- *)

type blast_result = {
  job : job;
  outcome : Protocol.Action.outcome;
  elapsed_ns : int;
}

type put_result = {
  results : blast_result list;  (** plan order: stripe-major, then replica *)
  acked : int array;  (** per stripe, replicas that settled [Success] *)
  quorum_met : bool;
  elapsed_ns : int;
}

(* One stripe replica to one server, as an ordinary blast flow on its own
   ephemeral socket: distinct source ports keep the engine's (address,
   transfer id) flow keys distinct even though every sub-transfer shares
   the object id. *)
let blast ?ctx ?packet_bytes ?tuning
    ?(suite = Protocol.Suite.Blast Protocol.Blast.Go_back_n) ~peer_of ~object_id
    ~stripes ~data job =
  (* [tuning] supersedes whatever the shared context carries — every
     sub-transfer of one put must run the same regime. *)
  let ctx =
    match tuning with
    | None -> ctx
    | Some tuning ->
        let base = match ctx with Some c -> c | None -> Sockets.Io_ctx.default () in
        Some { base with Sockets.Io_ctx.tuning }
  in
  let socket, _ = Sockets.Udp.create_socket () in
  Fun.protect
    ~finally:(fun () -> Sockets.Udp.close socket)
    (fun () ->
      let stripe =
        { Packet.Stripe.object_id; index = job.stripe; count = stripes }
      in
      let result =
        Sockets.Peer.send ?ctx ?packet_bytes
          ~transfer_id:object_id ~stripe ~socket ~peer:(peer_of job.server) ~suite
          ~data:(String.sub data job.offset job.bytes) ()
      in
      {
        job;
        outcome = result.Sockets.Peer.outcome;
        elapsed_ns = result.Sockets.Peer.elapsed_ns;
      })

let put ?pool ?jobs ?ctx ?packet_bytes ?tuning
    ?(suite = Protocol.Suite.Blast Protocol.Blast.Go_back_n) ~placement ~peer_of
    ~object_id ~stripes ~replicas ~quorum ~data () =
  if quorum <= 0 || quorum > replicas then
    invalid_arg "Client.put: need 0 < quorum <= replicas";
  let started = Sockets.Udp.now_ns () in
  let work =
    plan placement ~object_id ~total:(String.length data) ~stripes ~replicas
  in
  let results =
    Exec.Pool.map ?pool ?jobs
      ~f:(blast ?ctx ?packet_bytes ?tuning ~suite ~peer_of
            ~object_id ~stripes ~data)
      work
  in
  let acked = Array.make stripes 0 in
  List.iter
    (fun r ->
      if r.outcome = Protocol.Action.Success then
        acked.(r.job.stripe) <- acked.(r.job.stripe) + 1)
    results;
  {
    results;
    acked;
    quorum_met = Array.for_all (fun n -> n >= quorum) acked;
    elapsed_ns = Sockets.Udp.now_ns () - started;
  }
