(** Read-repair: reconcile what the ring actually holds with what the
    write quorum promised, and re-blast the difference.

    The pass is writer-driven — the client still holding the object
    surveys every live server with an [MREQ] datagram, folds the answers
    into a {!Manifest}, and re-blasts each under-replicated stripe to the
    next live servers in its {!Placement.successors} order (the live ring,
    with dead members {!Placement.remove}d). Because validity is the
    stripe CRC, a server that answered with stale or torn bytes is simply
    re-blasted over, and because the re-blast is an ordinary sub-transfer,
    convergence is verified the same way the original put was: the flow
    settles [Success] only on a verified CRC. *)

type action = { stripe : int; server : int }

val pp_action : Format.formatter -> action -> unit

val plan :
  placement:Placement.t ->
  object_id:int ->
  replicas:int ->
  crcs:int32 array ->
  Manifest.t ->
  action list
(** Pure repair plan against the {e live} placement: for every stripe with
    fewer than [replicas] valid holders, the missing count of successor
    servers not already holding it, in stripe order. Empty when fully
    replicated. *)

val query_via :
  ?attempts:int ->
  ?timeout_ns:int ->
  clock:(unit -> int) ->
  transport:Sockets.Transport.t ->
  peer:Unix.sockaddr ->
  object_id:int ->
  unit ->
  Packet.Stripe.entry list option
(** One manifest interrogation over an abstract transport: [MREQ] out,
    wait [timeout_ns] (default 200 ms) for the matching [MREP], retry up
    to [attempts] (default 5) times; [None] means the server never
    answered — dead, or partitioned. [clock] must be the transport's
    notion of time. The DST ring scenario drives exactly this function
    under virtual time. *)

val query :
  ?attempts:int ->
  ?timeout_ns:int ->
  peer:Unix.sockaddr ->
  object_id:int ->
  unit ->
  Packet.Stripe.entry list option
(** {!query_via} over a fresh ephemeral UDP socket. *)

type report = {
  answered : (int * int) list;  (** (server, entry count) that answered *)
  unresponsive : int list;  (** servers that never answered the survey *)
  before : int array;  (** per-stripe valid replicas found by the survey *)
  actions : (action * Protocol.Action.outcome) list;  (** re-blasts and their outcomes *)
  after : int array;  (** per-stripe valid replicas on the closing survey *)
  fully_replicated : bool;  (** every stripe at [replicas] on re-survey *)
  elapsed_ns : int;
}

val run :
  ?pool:Exec.Pool.t ->
  ?jobs:int ->
  ?ctx:Sockets.Io_ctx.t ->
  ?packet_bytes:int ->
  ?tuning:Protocol.Tuning.t ->
  ?suite:Protocol.Suite.t ->
  ?attempts:int ->
  ?timeout_ns:int ->
  placement:Placement.t ->
  peer_of:(int -> Unix.sockaddr) ->
  object_id:int ->
  stripes:int ->
  replicas:int ->
  data:string ->
  unit ->
  report
(** The whole pass over real UDP: survey every member of [placement],
    plan, re-blast concurrently over the {!Exec.Pool}, then survey again —
    the verdict ([after], [fully_replicated]) comes from the ring's own
    answers, never from the blasts' view of themselves. [placement] should
    be the live ring: pass the full ring {!Placement.remove}d of known-dead
    members so successors skip them. *)
