(* Read-repair: interrogate the ring for what actually survived, then
   re-blast the difference to each stripe's live successors. *)

type action = { stripe : int; server : int }

let pp_action ppf a =
  Format.fprintf ppf "re-blast stripe %d -> server %d" a.stripe a.server

let plan ~placement ~object_id ~replicas ~crcs manifest =
  Manifest.under_replicated manifest ~replicas ~crcs
  |> List.concat_map (fun (stripe, valid) ->
         let needed = replicas - List.length valid in
         Placement.successors placement ~object_id ~stripe
         |> List.filter (fun s -> not (List.mem s valid))
         |> List.filteri (fun i _ -> i < needed)
         |> List.map (fun server -> { stripe; server }))

(* ---- Manifest query ---------------------------------------------------- *)

(* One MREQ/MREP exchange against an abstract transport: datagram out,
   wait for the matching reply, retry on silence. Works identically over a
   real socket and a memnet endpoint — which is what lets the DST scenario
   drive the very same repair code under virtual time. *)
let query_via ?(attempts = 5) ?(timeout_ns = 200_000_000) ~clock ~transport ~peer
    ~object_id () =
  let encoded = Packet.Codec.encode (Packet.Stripe.manifest_query ~object_id) in
  let rec attempt k =
    if k <= 0 then None
    else begin
      transport.Sockets.Transport.send ~peer ~on_outcome:(fun _ -> ()) encoded;
      transport.Sockets.Transport.flush ();
      let deadline = clock () + timeout_ns in
      let rec wait () =
        let remaining = deadline - clock () in
        if remaining <= 0 then attempt (k - 1)
        else
          match Sockets.Transport.recv_message transport ~timeout_ns:remaining () with
          | `Timeout -> attempt (k - 1)
          | `Garbage _ -> wait ()
          | `Message (m, _) -> (
              if
                m.Packet.Message.kind = Packet.Kind.Mrep
                && m.Packet.Message.transfer_id = object_id
              then
                match Packet.Stripe.decode_manifest m.Packet.Message.payload with
                | Some entries -> Some entries
                | None -> wait ()
              else
                (* Stray traffic on our ephemeral port — late acks of the
                   put, or an answer about another object. Keep waiting. *)
                wait ())
      in
      wait ()
    end
  in
  attempt attempts

let query ?attempts ?timeout_ns ~peer ~object_id () =
  let socket, _ = Sockets.Udp.create_socket () in
  Fun.protect
    ~finally:(fun () -> Sockets.Udp.close socket)
    (fun () ->
      let transport = Sockets.Transport.udp ~batch:false ~socket () in
      query_via ?attempts ?timeout_ns ~clock:Sockets.Udp.now_ns ~transport ~peer
        ~object_id ())

(* ---- Real-UDP driver --------------------------------------------------- *)

type report = {
  answered : (int * int) list;  (** (server, entries) per answering server *)
  unresponsive : int list;
  before : int array;  (** per-stripe valid replicas, as queried *)
  actions : (action * Protocol.Action.outcome) list;
  after : int array;  (** per-stripe valid replicas on re-query *)
  fully_replicated : bool;
  elapsed_ns : int;
}

let survey ?attempts ?timeout_ns ~peer_of ~object_id ~stripes servers =
  let manifest = Manifest.create ~object_id ~stripes in
  let answered = ref [] and unresponsive = ref [] in
  List.iter
    (fun server ->
      match
        query ?attempts ?timeout_ns ~peer:(peer_of server) ~object_id ()
      with
      | Some entries ->
          Manifest.record manifest ~server entries;
          answered := (server, List.length entries) :: !answered
      | None -> unresponsive := server :: !unresponsive)
    servers;
  (manifest, List.rev !answered, List.rev !unresponsive)

let run ?pool ?jobs ?ctx ?packet_bytes ?tuning ?suite
    ?attempts ?timeout_ns ~placement ~peer_of ~object_id ~stripes ~replicas ~data
    () =
  let started = Sockets.Udp.now_ns () in
  let crcs = Client.stripe_crcs ~data ~stripes in
  let servers = Placement.nodes placement in
  let manifest, answered, unresponsive =
    survey ?attempts ?timeout_ns ~peer_of ~object_id ~stripes servers
  in
  let before = Manifest.replication manifest ~crcs in
  let actions = plan ~placement ~object_id ~replicas ~crcs manifest in
  let outcomes =
    Exec.Pool.map ?pool ?jobs
      ~f:(fun a ->
        let offset, bytes =
          Client.stripe_bounds ~total:(String.length data) ~stripes ~index:a.stripe
        in
        let job =
          { Client.stripe = a.stripe; replica = -1; server = a.server; offset; bytes }
        in
        let r =
          Client.blast ?ctx ?packet_bytes ?tuning ?suite
            ~peer_of ~object_id ~stripes ~data job
        in
        (a, r.Client.outcome))
      actions
  in
  (* Trust nothing: the verdict comes from a second survey, not from the
     blasts' own view of themselves. *)
  let manifest', _, _ =
    survey ?attempts ?timeout_ns ~peer_of ~object_id ~stripes servers
  in
  let after = Manifest.replication manifest' ~crcs in
  {
    answered;
    unresponsive;
    before;
    actions = outcomes;
    after;
    fully_replicated = Array.for_all (fun n -> n >= replicas) after;
    elapsed_ns = Sockets.Udp.now_ns () - started;
  }
