(** A shard fleet: N {!Engine}s, each on its own [Domain.t] with its own
    [SO_REUSEPORT] socket on one shared port, with merged observability.

    The single-domain engine loop is the concurrency ceiling the
    [serve_concurrency] bench measures; a shard group raises it the way
    scalable receivers do — by letting the kernel's REUSEPORT 4-tuple hash
    spread {e flows} (not datagrams) across shards. A sender keeps one
    socket for a whole transfer, so its 4-tuple is stable and every
    datagram of a flow lands on the same shard: per-flow state never
    migrates and the engines share nothing on the data path. (Memnet has
    no kernel to hash for it; {!Memnet.Net.bind_shard} makes the same
    steering explicit and seeded for DST runs, which drive engines as
    simulation processes rather than through this module.)

    Observability rolls up without stopping anything: totals and counters
    via {!Protocol.Counters.merge}, loop-health histograms via
    {!Obs.Hist.merge}, and one aggregated [lanrepro-stat/1] snapshot — sum
    of the per-shard snapshots, plus a [per_shard] breakdown and the
    merged, shard-prefixed ([s<i>:]) flow listing — served on a group
    {!Admin} socket from the group's own thread. Live per-shard snapshots
    are fetched through each engine's idle hook (a request flag plus
    {!Engine.wake}), because [Engine.snapshot] is only legal on the
    serving thread. *)

type t

val create :
  ?address:string ->
  ?port:int ->
  ?max_flows:int ->
  ?idle_timeout_ns:int ->
  ?linger_ns:int ->
  ?fallback_suite:Protocol.Suite.t ->
  ?scenario:Faults.Scenario.t ->
  ?seed:int ->
  ?drain_budget:int ->
  ?ctx:Sockets.Io_ctx.t ->
  ?on_complete:(Engine.completion_event -> unit) ->
  ?flowtrace:Obs.Flowtrace.t ->
  ?admin_port:int ->
  ?stats_interval_ns:int ->
  ?on_snapshot:(Obs.Json.t -> unit) ->
  shards:int ->
  unit ->
  t
(** [shards] sockets bound to one port (the first fixes it; [port = 0]
    picks an ephemeral one), each wrapped in an epoll-backed transport and
    an engine tagged [~shard:i]. Engine options mean what they do on
    {!Engine.create}, per shard ([max_flows] is the {e per-shard}
    admission cap); [seed] is decorrelated per shard. [on_complete] is
    serialized under a group lock, so one callback serves all shards
    without its own locking. [flowtrace] may be shared — it is
    mutex-guarded and lanes are shard-prefixed. [admin_port] opens one
    group stat socket answering the {e aggregated} snapshot.
    [stats_interval_ns] calls [on_snapshot] with that same aggregated
    snapshot at roughly that period, from the group's service thread (not
    a serving domain). Raises [Invalid_argument] on [shards <= 0]. *)

val start : t -> unit
(** Spawn one domain per shard running [Engine.run], plus the group
    service thread when an admin port or stats interval was given. *)

val stop : t -> unit
(** {!Engine.stop} every shard (each is woken out of its idle wait).
    Thread-safe. *)

val join : t -> unit
(** Wait for every shard's [run] to return, then stop the admin thread and
    release sockets and pollers. After [join], the post-run accessors read
    quiescent engines. *)

val shards : t -> int

val address : t -> Unix.sockaddr
(** The shared bound address (resolved: a requested port 0 shows the
    actual port). *)

val port : t -> int

val admin_port : t -> int option
(** The group stat socket's resolved port (an [admin_port] of 0 binds an
    ephemeral one), if one was requested. *)

val engines : t -> Engine.t list
(** The member engines, in shard order — for per-shard inspection after
    {!join} (live use must respect {!Engine.snapshot}'s threading rule). *)

val snapshot : t -> Obs.Json.t
(** The aggregated [lanrepro-stat/1] snapshot: summed [totals], [counters],
    [active_flows] and [max_flows]; merged health histograms; the merged
    flow listing (shard-prefixed labels, capped at 128 with [flows_omitted]
    counting the rest); [shards]/[shards_unresponsive]; and a [per_shard]
    breakdown. Safe while shards serve: running engines answer through
    their idle hook, engines not running are read directly; a running shard
    that fails to answer within ~250 ms is reported unresponsive rather
    than blocking the stats plane. *)

val shard_snapshots : t -> Obs.Json.t option list
(** Each shard's own snapshot, in shard order ([None] = unresponsive) —
    what [per_shard] and the reconciliation tests are built from. *)

val totals : t -> Engine.totals
(** Field-wise sum of the per-shard totals. Quiescent reads (post-{!join})
    are exact; live reads are a best-effort racy sum. *)

val rollup : t -> Protocol.Counters.t
(** {!Protocol.Counters.merge} over every shard's {!Engine.rollup}.
    Post-{!join}. *)

val invariant_violations : t -> string list
(** Every shard's {!Engine.invariant_violations}, each prefixed
    ["shard N: "]. Post-{!join} (the underlying check walks live flow
    tables). *)
