(** Binary min-heap of timer deadlines for the server event loop.

    Deadlines are monotonic-clock nanoseconds; payloads are opaque. The heap
    supports lazy invalidation: callers push a new entry whenever a wake-up
    moves earlier and revalidate against current state on pop, so entries
    made stale by a later deadline simply pop early and are re-armed. *)

type 'a t

val create : unit -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool

val add : 'a t -> deadline:int -> 'a -> unit

val peek_deadline : 'a t -> int option
(** Earliest pending deadline; [None] when empty. *)

val pop : 'a t -> (int * 'a) option
(** Removes and returns the earliest [(deadline, payload)]. *)

val pop_due : 'a t -> now:int -> 'a option
(** [pop] restricted to entries with [deadline <= now]; [None] when the
    earliest entry is still in the future. *)

val iter : 'a t -> (deadline:int -> 'a -> unit) -> unit
(** Visits every pending entry, stale ones included, in unspecified order —
    the invariant checker's window into the heap. *)
