(* N engines, one port: an SO_REUSEPORT shard fleet with merged
   observability. See the interface for the design contract. *)

type shard = {
  index : int;
  socket : Unix.file_descr;
  poller : Sockets.Poller.t;
  engine : Engine.t;
  want_snapshot : bool Atomic.t;
      (** request flag read by the engine's idle hook *)
  snap_cell : Obs.Json.t option Atomic.t;  (** the idle hook's answer slot *)
  finished : bool Atomic.t;  (** set after [Engine.run] returned *)
  mutable domain : unit Domain.t option;
}

type t = {
  shards : shard array;
  address : Unix.sockaddr;
  clock : unit -> int;
  admin : Admin.t option;
  stats_interval_ns : int option;
  on_snapshot : Obs.Json.t -> unit;
  admin_stop : bool Atomic.t;
  mutable admin_thread : Thread.t option;
  created_ns : int;
}

let shards t = Array.length t.shards
let address t = t.address

let port t =
  match t.address with Unix.ADDR_INET (_, p) -> p | Unix.ADDR_UNIX _ -> 0

let create ?(address = "127.0.0.1") ?(port = 0) ?max_flows
    ?idle_timeout_ns ?linger_ns ?fallback_suite ?scenario
    ?(seed = 1) ?drain_budget ?ctx ?(on_complete = fun _ -> ()) ?flowtrace
    ?admin_port ?stats_interval_ns ?(on_snapshot = fun _ -> ()) ~shards () =
  if shards <= 0 then invalid_arg "Shard_group.create: shards must be positive";
  let ctx = match ctx with Some c -> c | None -> Sockets.Io_ctx.default () in
  let clock = ctx.Sockets.Io_ctx.clock in
  (* The first socket fixes the port (it may be ephemeral); the rest join
     it. All carry SO_REUSEPORT — also when shards = 1, so a group of one
     is the same object, just narrower. *)
  let socket0, bound = Sockets.Udp.create_socket ~address ~port ~reuseport:true () in
  let bound_port =
    match bound with Unix.ADDR_INET (_, p) -> p | Unix.ADDR_UNIX _ -> port
  in
  let sockets =
    Array.init shards (fun i ->
        if i = 0 then socket0
        else
          fst (Sockets.Udp.create_socket ~address ~port:bound_port ~reuseport:true ()))
  in
  (* Settlement callbacks arrive on N serving domains; serialize them so
     the caller's accounting needs no locking of its own. *)
  let complete_lock = Mutex.create () in
  let on_complete event =
    Mutex.lock complete_lock;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock complete_lock)
      (fun () -> on_complete event)
  in
  let make_shard index socket =
    let poller = Sockets.Poller.create () in
    let transport =
      Sockets.Transport.udp ~batch:ctx.Sockets.Io_ctx.batch ~poller ~socket ()
    in
    let want_snapshot = Atomic.make false in
    let snap_cell = Atomic.make None in
    (* The idle hook runs on the shard's serving thread, where a live
       [Engine.snapshot] is legal; the engine value exists only after
       [create], hence the ref. *)
    let engine_ref = ref None in
    let on_idle () =
      if Atomic.get want_snapshot then
        match !engine_ref with
        | None -> ()
        | Some engine ->
            Atomic.set snap_cell (Some (Engine.snapshot engine));
            Atomic.set want_snapshot false
    in
    let engine =
      Engine.create ?max_flows ?idle_timeout_ns
        ?linger_ns ?fallback_suite ?scenario
        ~seed:(seed + (7919 * index))
        ?drain_budget ~ctx ~on_complete ?flowtrace ~on_idle ~shard:index
        ~transport ()
    in
    engine_ref := Some engine;
    {
      index;
      socket;
      poller;
      engine;
      want_snapshot;
      snap_cell;
      finished = Atomic.make false;
      domain = None;
    }
  in
  let admin = Option.map (fun port -> Admin.create ~port ()) admin_port in
  {
    shards = Array.mapi make_shard sockets;
    address = bound;
    clock;
    admin;
    stats_interval_ns;
    on_snapshot;
    admin_stop = Atomic.make false;
    admin_thread = None;
    created_ns = clock ();
  }

let engines t = Array.to_list (Array.map (fun s -> s.engine) t.shards)
let admin_port t = Option.map Admin.port t.admin

(* ---- Snapshot aggregation -------------------------------------------- *)

let get path json =
  List.fold_left
    (fun acc key -> Option.bind acc (Obs.Json.member key))
    (Some json) path

let get_int path json =
  match get path json with Some j -> Option.value ~default:0 (Obs.Json.to_int j) | None -> 0

let totals_keys =
  [
    "accepted"; "completed"; "aborted"; "rejected"; "superseded";
    "stray_datagrams"; "garbage"; "send_failures";
  ]

let counters_keys =
  [
    "data_sent"; "retransmitted_data"; "acks_sent"; "nacks_sent"; "rounds";
    "timeouts"; "duplicates_received"; "delivered"; "faults_injected";
    "corrupt_detected"; "garbage_received";
  ]

let sum_section section keys snaps =
  Obs.Json.Obj
    (List.map
       (fun key ->
         ( key,
           Obs.Json.Int
             (List.fold_left (fun acc s -> acc + get_int [ section; key ] s) 0 snaps) ))
       keys)

let snapshot_flow_cap = 128

(* One shard's answer, fetched without touching its flow table from this
   thread: a running engine serves the request at its next idle point (the
   wake bounds how long that takes); an engine that is not running — not
   yet started, or already stopped — is snapshotted directly, which is the
   documented safe case. [None] only if a running shard failed to answer
   within the budget. *)
let fetch_snapshot s =
  let running =
    match s.domain with Some _ -> not (Atomic.get s.finished) | None -> false
  in
  if not running then Some (Engine.snapshot s.engine)
  else begin
    Atomic.set s.snap_cell None;
    Atomic.set s.want_snapshot true;
    Engine.wake s.engine;
    let deadline = Unix.gettimeofday () +. 0.25 in
    let rec spin () =
      match Atomic.get s.snap_cell with
      | Some json -> Some json
      | None ->
          if Atomic.get s.finished then Some (Engine.snapshot s.engine)
          else if Unix.gettimeofday () > deadline then None
          else begin
            Thread.delay 0.0005;
            spin ()
          end
    in
    spin ()
  end

let shard_snapshots t =
  Array.to_list (Array.map (fun s -> fetch_snapshot s) t.shards)

(* The per-shard breakdown rides inside the aggregate; flow listings stay
   out of it (they are in the merged [flows] list, shard-prefixed) so the
   reply fits one datagram at sensible shard counts. *)
let per_shard_json snaps =
  Obs.Json.List
    (List.filter_map
       (fun (s, snap) ->
         match snap with
         | None ->
             Some
               (Obs.Json.Obj
                  [
                    ("shard", Obs.Json.Int s.index);
                    ("unresponsive", Obs.Json.Bool true);
                  ])
         | Some snap ->
             Some
               (Obs.Json.Obj
                  [
                    ("shard", Obs.Json.Int s.index);
                    ("active_flows", Obs.Json.Int (get_int [ "active_flows" ] snap));
                    ("uptime_ns", Obs.Json.Int (get_int [ "uptime_ns" ] snap));
                    ( "totals",
                      Option.value ~default:Obs.Json.Null (get [ "totals" ] snap) );
                    ( "health",
                      Obs.Json.Obj
                        [
                          ("ticks", Obs.Json.Int (get_int [ "health"; "ticks" ] snap));
                          ( "drain_exhausted",
                            Obs.Json.Int (get_int [ "health"; "drain_exhausted" ] snap) );
                          ( "spurious_wakeups",
                            Obs.Json.Int (get_int [ "health"; "spurious_wakeups" ] snap) );
                          ( "timer_heap",
                            Obs.Json.Int (get_int [ "health"; "timer_heap" ] snap) );
                        ] );
                  ]))
       snaps)

let merged_health_json t snaps =
  let merged = Engine.create_health () in
  Array.iter (fun s -> Engine.merge_health ~into:merged (Engine.health s.engine)) t.shards;
  Obs.Json.Obj
    [
      ("ticks", Obs.Json.Int merged.Engine.ticks);
      ("drain_exhausted", Obs.Json.Int merged.Engine.drain_exhausted);
      ("spurious_wakeups", Obs.Json.Int merged.Engine.spurious_wakeups);
      ( "timer_heap",
        Obs.Json.Int
          (List.fold_left (fun acc s -> acc + get_int [ "health"; "timer_heap" ] s) 0 snaps) );
      ("tick_duration_ns", Obs.Hist.to_json merged.Engine.tick_duration_ns);
      ("recv_drained", Obs.Hist.to_json merged.Engine.recv_drained);
      ("flush_train", Obs.Hist.to_json merged.Engine.flush_train);
      ("timer_heap_depth", Obs.Hist.to_json merged.Engine.timer_heap_depth);
    ]

let snapshot t =
  let now = t.clock () in
  let tagged = Array.to_list (Array.map (fun s -> (s, fetch_snapshot s)) t.shards) in
  let answered = List.filter_map snd tagged in
  let unresponsive = List.length tagged - List.length answered in
  let flows =
    List.concat_map
      (fun s -> match get [ "flows" ] s with
        | Some (Obs.Json.List l) -> l
        | _ -> [])
      answered
  in
  let flow_label j =
    match Obs.Json.member "flow" j with
    | Some (Obs.Json.String l) -> l
    | _ -> ""
  in
  let flows = List.sort (fun a b -> compare (flow_label a) (flow_label b)) flows in
  let shown = List.filteri (fun i _ -> i < snapshot_flow_cap) flows in
  let omitted =
    List.fold_left (fun acc s -> acc + get_int [ "flows_omitted" ] s) 0 answered
    + max 0 (List.length flows - snapshot_flow_cap)
  in
  let uptime =
    List.fold_left (fun acc s -> max acc (get_int [ "uptime_ns" ] s)) 0 answered
  in
  Obs.Json.Obj
    [
      ("schema", Obs.Json.String "lanrepro-stat/1");
      ("now_ns", Obs.Json.Int now);
      ("uptime_ns", Obs.Json.Int uptime);
      ("shards", Obs.Json.Int (Array.length t.shards));
      ("shards_unresponsive", Obs.Json.Int unresponsive);
      ( "max_flows",
        Obs.Json.Int (List.fold_left (fun acc s -> acc + get_int [ "max_flows" ] s) 0 answered) );
      ( "active_flows",
        Obs.Json.Int
          (List.fold_left (fun acc s -> acc + get_int [ "active_flows" ] s) 0 answered) );
      ("flows_omitted", Obs.Json.Int omitted);
      ("totals", sum_section "totals" totals_keys answered);
      ("flows", Obs.Json.List shown);
      ("health", merged_health_json t answered);
      ("counters", sum_section "counters" counters_keys answered);
      ("per_shard", per_shard_json tagged);
    ]

(* ---- Lifecycle ------------------------------------------------------- *)

let start t =
  Array.iter
    (fun s ->
      match s.domain with
      | Some _ -> invalid_arg "Shard_group.start: already started"
      | None ->
          s.domain <-
            Some
              (Domain.spawn (fun () ->
                   Engine.run s.engine;
                   Atomic.set s.finished true)))
    t.shards;
  if Option.is_some t.admin || Option.is_some t.stats_interval_ns then
    (* The group's stat socket and stats emitter run on their own thread —
       shard engines never see them, so their waits stay purely
       work-derived. [Admin.poll] is non-blocking; the delay is the service
       cadence. *)
    t.admin_thread <-
      Some
        (Thread.create
           (fun () ->
             let next_stats =
               ref
                 (match t.stats_interval_ns with
                 | Some interval -> t.clock () + interval
                 | None -> max_int)
             in
             while not (Atomic.get t.admin_stop) do
               Option.iter
                 (fun admin -> Admin.poll admin ~snapshot:(fun () -> snapshot t))
                 t.admin;
               (match t.stats_interval_ns with
               | Some interval when t.clock () >= !next_stats ->
                   t.on_snapshot (snapshot t);
                   next_stats := t.clock () + interval
               | _ -> ());
               Thread.delay 0.02
             done)
           ())

let stop t = Array.iter (fun s -> Engine.stop s.engine) t.shards

let join t =
  Array.iter
    (fun s ->
      match s.domain with
      | None -> ()
      | Some d ->
          Domain.join d;
          s.domain <- None;
          Atomic.set s.finished true)
    t.shards;
  Atomic.set t.admin_stop true;
  (match t.admin_thread with
  | None -> ()
  | Some th ->
      Thread.join th;
      t.admin_thread <- None);
  Option.iter Admin.close t.admin;
  Array.iter
    (fun s ->
      Sockets.Poller.close s.poller;
      Sockets.Udp.close s.socket)
    t.shards

(* ---- Post-run roll-ups ----------------------------------------------- *)

let totals t =
  let sum = Engine.create_totals () in
  Array.iter
    (fun s ->
      let a = Engine.totals s.engine in
      sum.Engine.accepted <- sum.Engine.accepted + a.Engine.accepted;
      sum.Engine.completed <- sum.Engine.completed + a.Engine.completed;
      sum.Engine.aborted <- sum.Engine.aborted + a.Engine.aborted;
      sum.Engine.rejected <- sum.Engine.rejected + a.Engine.rejected;
      sum.Engine.superseded <- sum.Engine.superseded + a.Engine.superseded;
      sum.Engine.stray_datagrams <- sum.Engine.stray_datagrams + a.Engine.stray_datagrams;
      sum.Engine.garbage <- sum.Engine.garbage + a.Engine.garbage;
      sum.Engine.send_failures <- sum.Engine.send_failures + a.Engine.send_failures)
    t.shards;
  sum

let rollup t =
  let total = Protocol.Counters.create () in
  Array.iter
    (fun s -> Protocol.Counters.merge ~into:total (Engine.rollup s.engine))
    t.shards;
  total

let invariant_violations t =
  Array.to_list t.shards
  |> List.concat_map (fun s ->
         List.map
           (fun v -> Printf.sprintf "shard %d: %s" s.index v)
           (Engine.invariant_violations s.engine))
