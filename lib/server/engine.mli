(** Concurrent transfer server: many flows multiplexed over one UDP socket.

    A single event loop (the transport's readiness wait — epoll-backed via
    {!Sockets.Poller} on a real socket — plus a timer heap) demultiplexes
    datagrams by [(peer address, transfer id)] into a table of sans-IO
    {!Sockets.Flow} instances — the same engine {!Sockets.Peer.serve_one}
    drives single-flow. Each admitted flow gets its own counters, probe lane
    ([flow-N]) and, under a fault scenario, its own deterministically-seeded
    {!Faults.Netem} whose delayed emissions are scheduled on the timer heap
    rather than slept inline, so injecting latency into one flow never
    stalls the others.

    {b Admission control.} At most [max_flows] concurrent transfers; a REQ
    beyond the cap is answered with a [REJ] datagram, which the sender
    surfaces as the clean {!Protocol.Action.Rejected} outcome.

    {b Fairness.} Each loop round drains at most [drain_budget] datagrams
    before servicing due timers, so one saturating sender cannot starve the
    other flows' retransmission or watchdog timers.

    {b No-hang guarantee.} Every flow's idle watchdog runs off the shared
    heap; [stop] wakes a blocked loop through the transport's wake
    capability (or, on a transport without one, is honoured within the
    ~50 ms service cap); shutdown force-settles every live flow to a typed
    completion.

    {b Idle cost.} The wait is derived from pending work alone — earliest
    timer deadline, next stats emission, admin service cap. An idle engine
    on a wakeable transport with no admin socket blocks indefinitely
    instead of ticking 20x a second; wakeups that turn out to have nothing
    to do are counted in [health.spurious_wakeups]. *)

type totals = {
  mutable accepted : int;  (** REQs admitted into the flow table *)
  mutable completed : int;  (** flows settled with [Success] *)
  mutable aborted : int;  (** flows settled with any other outcome *)
  mutable rejected : int;  (** REQs refused with a REJ (admission cap) *)
  mutable superseded : int;
      (** stale flows settled because their sender's address and transfer id
          were reused by a REQ describing a different transfer *)
  mutable stray_datagrams : int;
      (** well-formed datagrams matching no flow — late packets of settled
          transfers, retries of rejected handshakes *)
  mutable garbage : int;  (** undecodable datagrams and malformed REQs *)
  mutable send_failures : int;  (** transient send errors, counted as loss *)
}

val create_totals : unit -> totals
val pp_totals : Format.formatter -> totals -> unit

type completion_event = {
  peer : Unix.sockaddr;
  completion : Sockets.Flow.completion;
  started_ns : int;  (** monotonic, REQ admission *)
  finished_ns : int;  (** monotonic, flow settled *)
}

(** Loop health, observed from inside the serving loop. [tick_duration_ns]
    measures work per wakeup {e excluding} the blocking wait, so its p99
    rises exactly when the single-domain loop saturates; [recv_drained] is
    datagrams consumed per wakeup that had any; [flush_train] is datagrams
    per non-empty flush point (the sendmmsg train size under a batching
    transport); [drain_exhausted] counts wakeups that consumed the whole
    drain budget — standing-backlog evidence; [spurious_wakeups] counts
    wakeups that found nothing to do at all. *)
type health = {
  tick_duration_ns : Obs.Hist.t;
  recv_drained : Obs.Hist.t;
  flush_train : Obs.Hist.t;
  timer_heap_depth : Obs.Hist.t;
  mutable ticks : int;
  mutable drain_exhausted : int;
  mutable last_drain_exhausted : int;
  mutable spurious_wakeups : int;
}

val create_health : unit -> health
(** A fresh, empty health record with the engine's histogram geometries —
    the identity element of {!merge_health}. *)

val merge_health : into:health -> health -> unit
(** Shard roll-up: histograms via {!Obs.Hist.merge} (safe while the source
    engine is still serving — each histogram merges under its own lock),
    plain counters by addition. *)

type t

val create :
  ?max_flows:int ->
  ?idle_timeout_ns:int ->
  ?linger_ns:int ->
  ?fallback_suite:Protocol.Suite.t ->
  ?scenario:Faults.Scenario.t ->
  ?seed:int ->
  ?drain_budget:int ->
  ?ctx:Sockets.Io_ctx.t ->
  ?on_complete:(completion_event -> unit) ->
  ?flowtrace:Obs.Flowtrace.t ->
  ?admin:Admin.t ->
  ?stats_interval_ns:int ->
  ?on_snapshot:(Obs.Json.t -> unit) ->
  ?on_idle:(unit -> unit) ->
  ?trace_epoch:int ->
  ?shard:int ->
  ?lane_prefix:string ->
  transport:Sockets.Transport.t ->
  unit ->
  t
(** The engine serves on [transport] — {!Sockets.Transport.udp} over a real
    socket, or a memnet endpoint under virtual time; the loop cannot tell.
    Defaults: 64 concurrent flows, drain budget 64; timers and attempts come
    from [ctx.tuning] (default {!Protocol.Tuning.wire_default} — 50 ms
    retransmission interval, 50 attempts). Every admitted flow advertises a
    train budget to adaptive senders: a fair share of the tuning's
    [max_train] across active flows, halved while the drain loop is
    exhausting its budget or the timer heap runs deep — engine health as
    flow control. [scenario] injects faults independently per
    flow, seeded from [seed] and the flow's admission index
    ([Stats.Rng.derive]), so a run replays exactly — [ctx.faults] is ignored
    here, since one shared pipeline would entangle the flows' randomness;
    per-flow [scenario] supersedes it.

    [ctx] otherwise carries the loop's telemetry and clock, which must be
    the transport's notion of time ([ctx.batch] is ignored — the transport
    already decided how it sends; a batching UDP transport drains each round
    through one [recvmmsg] and flushes every queued ack/REJ/delayed emission
    as one [sendmmsg] train). [ctx.metrics]
    carries an [active_flows] gauge, admission counters and, at shutdown,
    the merged counter roll-up, all labelled [side=server]. [on_complete]
    fires once per settled flow, from the serving thread. Raises
    [Invalid_argument] on a negative [max_flows] or non-positive
    [drain_budget]; [max_flows = 0] refuses everything — the admission
    test's degenerate case.

    [flowtrace] records every flow's lifecycle (admitted → first-data →
    rounds → verify → exactly one of done/failed/rejected/superseded),
    timestamped from [ctx.clock] so real-UDP and DST runs trace
    identically; [trace_epoch] namespaces the lanes of successive engine
    incarnations sharing one flowtrace (DST restarts). [admin] is polled
    once per loop round at the idle point — a stat query costs the data
    path nothing (and keeps the loop's wait bounded by the ~50 ms service
    cap, since admin requests arrive on a fd the transport cannot watch).
    [stats_interval_ns] calls [on_snapshot] with {!snapshot}'s JSON at
    that period, from the serving thread; the wait derivation honours the
    emission instant exactly. [on_idle] also runs once per round at the
    idle point, on the serving thread — {!Shard_group} uses it to answer
    cross-thread snapshot requests; pair it with {!wake} to bound its
    latency. [shard] tags the engine as member [i] of a shard group: every
    trace lane and snapshot label is prefixed ["s<i>:"] and the snapshot
    gains a [shard] field, so merged observability stays attributable.
    [lane_prefix] overrides that derived prefix verbatim — a ring fleet
    tags member [i]'s lanes ["r<i>:"] so replica flows of one striped
    object stay attributable after the per-server roll-up merges. *)

val run : ?max_transfers:int -> t -> unit
(** Serves until {!stop}, or — with [max_transfers] — until that many flows
    have settled and the table is empty. Runs in the calling thread;
    shutdown force-settles any flow still live. *)

val stop : t -> unit
(** Thread-safe. Sets the stop flag and {!wake}s the loop, so [run]
    returns promptly even from an unbounded idle wait (on a transport
    without wake, within the ~50 ms service cap). *)

val wake : t -> unit
(** Nudge a blocked serving loop from any thread: its current [recv]
    returns promptly and the loop passes its idle point (admin poll,
    [on_idle], stats) again. Spurious wakes are counted, never harmful. A
    no-op on transports without the wake capability. *)

val totals : t -> totals
val active_flows : t -> int
val health : t -> health

val manifest : t -> object_id:int -> Packet.Stripe.entry list
(** The stripes of [object_id] this server durably holds, sorted by stripe
    index — exactly the records an [MREQ] datagram is answered with. A
    stripe enters the manifest only when its flow settles [Success] with
    the whole-segment CRC verified, so every entry re-reads correctly by
    construction. Not thread-safe; call from the serving thread or after
    {!run} returns. *)

val manifest_size : t -> int
(** Total manifest entries across all objects (snapshot field
    [manifest_stripes]). *)

val rollup : t -> Protocol.Counters.t
(** Field-wise merge ({!Protocol.Counters.merge}) of every flow's counters —
    settled and live — plus the server's pre-admission garbage accounting. *)

val snapshot : t -> Obs.Json.t
(** The live-introspection snapshot ([{"schema":"lanrepro-stat/1",…}]):
    uptime, admission totals, a sorted per-flow listing (status, phase,
    delivered/total progress, rounds, age, next deadline; capped at 128
    entries with [flows_omitted] counting the rest), loop-health histogram
    summaries, and the same counter roll-up {!rollup} returns — the
    snapshot's [counters] reconcile with the final roll-up by
    construction. {b Not thread-safe}: call from the serving thread (the
    admin poll and stats timer do) or after {!run} has returned. *)

val invariant_violations : t -> string list
(** Structural invariants the event loop maintains between rounds, as
    human-readable violations (empty = healthy): the flow table respects
    [max_flows] and holds no closed flow, every live flow's next deadline is
    covered by a timer-heap entry at or before it (lazy invalidation may
    leave extra later entries, never a missing earlier one), and the
    admission totals balance. The deterministic-simulation harness calls
    this after every scheduler step; it is also safe to call from the
    serving thread between [run] rounds. When violations are found and the
    engine has a recorder, the flight ring is dumped automatically
    ({!Obs.Recorder.postmortem}) so the last datagrams before the breakage
    survive. *)
