(** Swarm load generator: N concurrent senders against one {!Engine}.

    Spins the server engine up on its own domain, then drives [flows]
    independent {!Sockets.Peer.send} transfers through an {!Exec.Pool} — each
    sender with its own socket, transfer id, deterministically-derived
    payload and (optionally) its own seeded fault pipeline. The whole run is
    reproducible from [seed]: payloads, sender faults and server faults are
    all derived from it.

    Every sender finishes with a typed outcome — [Success], [Rejected] (the
    admission cap refused it), or a clean failure — and the report pairs the
    senders' view with the server's: its totals, its merged counter roll-up,
    and the per-flow completion events including the whole-segment CRC
    verdict. *)

type sender_report = {
  index : int;
  outcome : Protocol.Action.outcome;
  elapsed_ns : int;
  bytes : int;
}

type report = {
  flows : int;
  jobs : int;  (** effective pool parallelism (after the pool's clamp) *)
  shards : int;  (** server-side shard count (1 = single engine) *)
  bytes_per_flow : int;
  completed : int;  (** senders that finished [Success] *)
  rejected : int;  (** senders refused by admission control *)
  failed : int;  (** any other outcome *)
  elapsed_ns : int;  (** wall clock over the whole swarm *)
  aggregate_mbit_s : float;  (** successful payload bits over the wall clock *)
  latency_ms : Obs.Hist.t;
      (** per-transfer latency of successful flows; report p50/p90/p99/max
          via {!Obs.Hist.snapshot} *)
  senders : sender_report list;  (** in flow-index order *)
  completions : Engine.completion_event list;
      (** server-side view of every settled flow, in settlement order *)
  server : Engine.totals;
  rollup : Protocol.Counters.t;
  engine_snapshot : Obs.Json.t;
      (** {!Engine.snapshot} taken after the engine loop exited — its
          [health] section is the loop-health record of the whole run *)
  invariants : string list;  (** {!Engine.invariant_violations} at the end *)
}

val server_verified : report -> int
(** Flows whose server-side completion carried [Verified] end-to-end CRC. *)

val pp_report : Format.formatter -> report -> unit

val run :
  ?max_flows:int ->
  ?jobs:int ->
  ?bytes:int ->
  ?packet_bytes:int ->
  ?tuning:Protocol.Tuning.t ->
  ?idle_timeout_ns:int ->
  ?suite:Protocol.Suite.t ->
  ?scenario:Faults.Scenario.t ->
  ?server_scenario:Faults.Scenario.t ->
  ?seed:int ->
  ?ctx:Sockets.Io_ctx.t ->
  ?flowtrace:Obs.Flowtrace.t ->
  ?admin_port:int ->
  ?stats_interval_ns:int ->
  ?on_snapshot:(Obs.Json.t -> unit) ->
  ?shards:int ->
  flows:int ->
  unit ->
  report
(** Defaults: 64 KiB per flow, 1 KiB packets, fixed tuning with a 20 ms
    retransmission interval and 50 attempts, go-back-N blast, seed 42,
    [jobs = flows] (the pool clamps
    to at most 64 — true concurrency for any [flows] the engine's default
    cap admits). [scenario] faults the senders, [server_scenario] the
    server; both are per-flow independent and seeded from [seed] —
    [ctx.faults] is superseded on both sides.

    [ctx] carries the telemetry sinks and the batching switch for the
    engine and every sender: [ctx.recorder]/[ctx.metrics] are wired to the
    engine ([flow-N] lanes, [side=server] metrics) plus swarm-level
    aggregate gauges; [ctx.batch] turns sendmmsg/recvmmsg trains on for the
    engine loop and each sender's blast bursts. Not re-entrant from inside
    an [Exec.Pool] task (the pool contract forbids nested batches).

    [flowtrace], [stats_interval_ns] and [on_snapshot] pass through to
    {!Engine.create}. [admin_port] binds a stat socket ({!Admin}) on
    127.0.0.1 for the engine to answer while the swarm runs — query it
    with [lanrepro stat] — and closes it when the run ends. If the engine
    finishes with invariant violations they are returned in the report,
    logged, and the flight ring (when [ctx.recorder] is set) is dumped
    automatically.

    [shards] (default 1) picks the server shape: 1 keeps the single engine
    on one domain; N > 1 serves through a {!Shard_group} — N engines on N
    domains sharing the port via [SO_REUSEPORT], with [admin_port],
    [stats_interval_ns]/[on_snapshot], totals, roll-up, snapshot and
    invariants all aggregated across the fleet. The report's [server],
    [rollup], [engine_snapshot] and [invariants] are then the merged
    views; [engine_snapshot] additionally carries the [per_shard]
    breakdown. *)
