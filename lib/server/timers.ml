(* Array-backed binary min-heap keyed by deadline. The engine pushes a fresh
   entry whenever a flow's wake-up moves earlier and revalidates on pop, so
   stale entries are cheap: they pop, fail the check, and vanish. *)

type 'a t = { mutable heap : (int * 'a) array; mutable size : int }

let create () = { heap = [||]; size = 0 }
let length t = t.size
let is_empty t = t.size = 0

let grow t =
  let capacity = max 16 (2 * Array.length t.heap) in
  let heap = Array.make capacity t.heap.(0) in
  Array.blit t.heap 0 heap 0 t.size;
  t.heap <- heap

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if fst t.heap.(i) < fst t.heap.(parent) then begin
      let tmp = t.heap.(i) in
      t.heap.(i) <- t.heap.(parent);
      t.heap.(parent) <- tmp;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let left = (2 * i) + 1 and right = (2 * i) + 2 in
  let smallest = ref i in
  if left < t.size && fst t.heap.(left) < fst t.heap.(!smallest) then smallest := left;
  if right < t.size && fst t.heap.(right) < fst t.heap.(!smallest) then smallest := right;
  if !smallest <> i then begin
    let tmp = t.heap.(i) in
    t.heap.(i) <- t.heap.(!smallest);
    t.heap.(!smallest) <- tmp;
    sift_down t !smallest
  end

let add t ~deadline payload =
  if t.size = 0 && Array.length t.heap = 0 then t.heap <- Array.make 16 (deadline, payload)
  else if t.size = Array.length t.heap then grow t;
  t.heap.(t.size) <- (deadline, payload);
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let peek_deadline t = if t.size = 0 then None else Some (fst t.heap.(0))

let pop t =
  if t.size = 0 then None
  else begin
    let deadline, payload = t.heap.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.heap.(0) <- t.heap.(t.size);
      sift_down t 0
    end;
    Some (deadline, payload)
  end

let iter t f =
  for i = 0 to t.size - 1 do
    let deadline, payload = t.heap.(i) in
    f ~deadline payload
  done

let pop_due t ~now =
  match peek_deadline t with
  | Some deadline when deadline - now <= 0 -> (
      match pop t with Some (_, payload) -> Some payload | None -> None)
  | _ -> None
