(** Admin stat socket: a tiny request/response plane beside the data path.

    The engine binds a second UDP socket on its own port and answers
    ["stat"] datagrams with one JSON snapshot datagram. The socket is
    non-blocking and only ever touched from the engine loop's idle point
    ({!poll}), so an operator querying a loaded server costs one recvfrom
    and one sendto per query and can never stall a flow. The protocol is a
    single datagram each way — no connection, no framing — which is why
    {!query} (the client half used by [lanrepro stat]/[top] and the tests)
    just retries on timeout like any datagram protocol. *)

type t

val create : ?address:string -> port:int -> unit -> t
(** Binds the socket (default address ["127.0.0.1"]). [port = 0] picks an
    ephemeral port — read it back with {!port}. Raises [Unix.Unix_error]
    when the bind fails (port in use). *)

val port : t -> int

val poll : t -> snapshot:(unit -> Obs.Json.t) -> unit
(** Answers every request currently queued on the socket (bounded per call
    so a request flood cannot starve the data path). [snapshot] is invoked
    at most once per poll, and only when a request is actually waiting.
    Replies that would exceed one datagram are replaced by an error
    object. Never raises on socket errors — a dead client's ICMP bounce is
    ignored. *)

val close : t -> unit

val query :
  ?timeout_ms:int ->
  ?retries:int ->
  Unix.sockaddr ->
  (Obs.Json.t, string) result
(** One-shot client: sends ["stat"], waits [timeout_ms] (default 1000) for
    the reply, retrying the whole exchange [retries] times (default 3).
    [Error] carries a human-readable reason (timeout, socket error, or a
    reply that is not valid JSON). *)

val parse_address : string -> (Unix.sockaddr, string) result
(** ["host:port"] (host defaults to 127.0.0.1 when the string is just a
    port number). *)
