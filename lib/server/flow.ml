(* The sans-IO flow engine lives in [lib/sockets] so the single-flow
   [Peer.serve_one] can drive it without a dependency cycle; re-exporting it
   here (an [include], so every type equality is preserved) gives the server
   library its natural name for the same module: [Server.Flow.t] and
   [Sockets.Flow.t] are the same type. *)
include Sockets.Flow
