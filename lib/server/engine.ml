let log = Logs.Src.create "server.engine" ~doc:"concurrent UDP transfer server"

module Log = (val Logs.src_log log : Logs.LOG)

type totals = {
  mutable accepted : int;
  mutable completed : int;
  mutable aborted : int;
  mutable rejected : int;
  mutable superseded : int;
  mutable stray_datagrams : int;
  mutable garbage : int;
  mutable send_failures : int;
}

let create_totals () =
  {
    accepted = 0;
    completed = 0;
    aborted = 0;
    rejected = 0;
    superseded = 0;
    stray_datagrams = 0;
    garbage = 0;
    send_failures = 0;
  }

let pp_totals ppf t =
  Format.fprintf ppf
    "accepted %d, completed %d, aborted %d, rejected %d, superseded %d, stray %d, garbage %d, send failures %d"
    t.accepted t.completed t.aborted t.rejected t.superseded t.stray_datagrams t.garbage
    t.send_failures

type completion_event = {
  peer : Unix.sockaddr;
  completion : Sockets.Flow.completion;
  started_ns : int;
  finished_ns : int;
}

(* Loop health: where the serving thread's time goes, observed from inside
   the loop itself. Tick duration deliberately excludes the blocking wait —
   it measures work, not idleness — so its p99 is the number that degrades
   when the single-domain loop saturates. *)
type health = {
  tick_duration_ns : Obs.Hist.t;
  recv_drained : Obs.Hist.t;  (** datagrams consumed per wakeup that had any *)
  flush_train : Obs.Hist.t;  (** datagrams sent per non-empty flush point *)
  timer_heap_depth : Obs.Hist.t;
  mutable ticks : int;
  mutable drain_exhausted : int;
      (** wakeups that consumed the whole drain budget — backlog evidence *)
  mutable last_drain_exhausted : int;
      (** [drain_exhausted] at the previous budget advert — a fresh
          exhaustion since then reads as live socket pressure *)
  mutable spurious_wakeups : int;
      (** wakeups that found nothing: no datagram, no due timer, no stats
          emission, no admin socket to poll — the waste the derived wait
          eliminates (legacy capped waits show up here at ~20/s idle) *)
}

let create_health () =
  {
    tick_duration_ns = Obs.Hist.create ();
    recv_drained = Obs.Hist.create ~lo:1. ~hi:1e6 ~bins:120 ();
    flush_train = Obs.Hist.create ~lo:1. ~hi:1e6 ~bins:120 ();
    timer_heap_depth = Obs.Hist.create ~lo:1. ~hi:1e6 ~bins:120 ();
    ticks = 0;
    drain_exhausted = 0;
    last_drain_exhausted = 0;
    spurious_wakeups = 0;
  }

(* Shard roll-up: histograms merge under their own locks (safe while the
   source engine is still serving), plain counters add. *)
let merge_health ~into src =
  Obs.Hist.merge ~into:into.tick_duration_ns src.tick_duration_ns;
  Obs.Hist.merge ~into:into.recv_drained src.recv_drained;
  Obs.Hist.merge ~into:into.flush_train src.flush_train;
  Obs.Hist.merge ~into:into.timer_heap_depth src.timer_heap_depth;
  into.ticks <- into.ticks + src.ticks;
  into.drain_exhausted <- into.drain_exhausted + src.drain_exhausted;
  into.spurious_wakeups <- into.spurious_wakeups + src.spurious_wakeups

(* A flow is keyed by who is talking and which transfer they mean: two
   transfers from the same source port never collide (distinct ids), and two
   senders reusing id 1 never collide either (distinct sockaddrs). *)
type key = Unix.sockaddr * int

type timer_payload =
  | Flow_tick of key
  | Delayed_send of { peer : Unix.sockaddr; data : bytes }
      (** a netem-delayed emission: the engine never sleeps inline, it
          schedules the datagram and keeps serving other flows *)

type flow_state = {
  flow : Sockets.Flow.t;
  peer : Unix.sockaddr;
  faults : Faults.Netem.t option;
  started_ns : int;
  label : string;  (** flowtrace lane / snapshot key, unique per incarnation *)
  mutable saw_data : bool;  (** first DATA datagram reached the flow *)
  mutable seen_rounds : int;
      (** ack+nack response high-water — the receiver-side round marker
          behind the flowtrace [Round] events *)
  mutable scheduled_at : int;  (** earliest heap entry for this flow; [max_int] = none *)
}

type t = {
  transport : Sockets.Transport.t;
  max_flows : int;
  tuning : Protocol.Tuning.t;
  idle_timeout_ns : int option;
  linger_ns : int option;
  fallback_suite : Protocol.Suite.t option;
  scenario : Faults.Scenario.t option;
  seed : int;
  drain_budget : int;
  recorder : Obs.Recorder.t option;
  metrics : Obs.Metrics.t option;
  clock : unit -> int;
  on_complete : completion_event -> unit;
  flowtrace : Obs.Flowtrace.t option;
  admin : Admin.t option;
  stats_interval_ns : int option;
  on_snapshot : Obs.Json.t -> unit;
  on_idle : unit -> unit;
  trace_epoch : int;
  shard : int option;
  label_prefix : string;  (** shard tag on every trace lane; "" unsharded *)
  created_ns : int;
  health : health;
  flows : (key, flow_state) Hashtbl.t;
  manifests : (int * int, Packet.Stripe.entry) Hashtbl.t;
      (** stripes this server holds, keyed [(object_id, stripe index)] —
          recorded only for CRC-verified successes, answered over MREQ *)
  timers : timer_payload Timers.t;
  totals : totals;
  settled : Protocol.Counters.t;  (** merged counters of finished flows *)
  server_counters : Protocol.Counters.t;  (** pre-admission garbage accounting *)
  server_probe : Obs.Probe.t;
  stopped : bool Atomic.t;
  mutable next_index : int;
  mutable next_reject : int;  (** uniquifier for rejected-REQ trace lanes *)
  mutable flight_dumped : bool;  (** one automatic postmortem per engine *)
  mutable next_stats_ns : int;
  mutable tx_queued : int;  (** sends since the last flush point *)
}

let create ?(max_flows = 64)
    ?idle_timeout_ns ?linger_ns ?fallback_suite ?scenario ?(seed = 1)
    ?(drain_budget = 64) ?ctx ?(on_complete = fun _ -> ()) ?flowtrace ?admin
    ?stats_interval_ns ?(on_snapshot = fun _ -> ()) ?(on_idle = fun () -> ())
    ?(trace_epoch = 0) ?shard ?lane_prefix ~transport () =
  if max_flows < 0 then invalid_arg "Engine.create: negative max_flows";
  if drain_budget <= 0 then invalid_arg "Engine.create: drain_budget must be positive";
  let ctx = match ctx with Some c -> c | None -> Sockets.Io_ctx.default () in
  let { Sockets.Io_ctx.recorder; metrics; clock; batch = _; faults = _; tuning } = ctx in
  Option.iter (fun r -> Obs.Recorder.set_clock r clock) recorder;
  let label_prefix =
    match (lane_prefix, shard) with
    | Some p, _ -> p
    | None, Some i -> Printf.sprintf "s%d:" i
    | None, None -> ""
  in
  let server_counters = Protocol.Counters.create () in
  let server_probe =
    Obs.Probe.create ?recorder ~lane:(label_prefix ^ "server")
      ~counters:server_counters ()
  in
  let created_ns = clock () in
  {
    transport;
    max_flows;
    tuning;
    idle_timeout_ns;
    linger_ns;
    fallback_suite;
    scenario = (match scenario with Some s when Faults.Scenario.is_clean s -> None | s -> s);
    seed;
    drain_budget;
    recorder;
    metrics;
    clock;
    on_complete;
    flowtrace;
    admin;
    stats_interval_ns;
    on_snapshot;
    on_idle;
    trace_epoch;
    shard;
    label_prefix;
    created_ns;
    health = create_health ();
    flows = Hashtbl.create 64;
    manifests = Hashtbl.create 16;
    timers = Timers.create ();
    totals = create_totals ();
    settled = Protocol.Counters.create ();
    server_counters;
    server_probe;
    stopped = Atomic.make false;
    next_index = 0;
    next_reject = 0;
    flight_dumped = false;
    next_stats_ns =
      (match stats_interval_ns with
      | None -> max_int
      | Some interval -> created_ns + interval);
    tx_queued = 0;
  }

let totals t = t.totals
let active_flows t = Hashtbl.length t.flows
let health t = t.health
let manifest_size t =
  let keys = Hashtbl.create 16 in
  Hashtbl.iter (fun k _ -> Hashtbl.replace keys k ()) t.manifests;
  Hashtbl.iter
    (fun _ fs ->
      match (Sockets.Flow.completed fs.flow, Sockets.Flow.stripe fs.flow) with
      | Some c, Some s
        when c.Sockets.Flow.outcome = Protocol.Action.Success
             && c.Sockets.Flow.integrity = Sockets.Flow.Verified ->
          Hashtbl.replace keys (s.Packet.Stripe.object_id, s.Packet.Stripe.index) ()
      | _ -> ())
    t.flows;
  Hashtbl.length keys

let manifest t ~object_id =
  (* Settled stripes, plus flows whose machine already completed but are
     still in their linger grace period: their bytes are final, and a
     repair survey racing the tail of a blast must count them. *)
  let best = Hashtbl.create 8 in
  Hashtbl.iter
    (fun (oid, idx) entry -> if oid = object_id then Hashtbl.replace best idx entry)
    t.manifests;
  Hashtbl.iter
    (fun _ fs ->
      match (Sockets.Flow.completed fs.flow, Sockets.Flow.stripe fs.flow) with
      | Some c, Some stripe
        when c.Sockets.Flow.outcome = Protocol.Action.Success
             && c.Sockets.Flow.integrity = Sockets.Flow.Verified
             && stripe.Packet.Stripe.object_id = object_id ->
          Hashtbl.replace best stripe.Packet.Stripe.index
            {
              Packet.Stripe.stripe;
              bytes = String.length c.Sockets.Flow.data;
              crc = Packet.Checksum.crc32_string c.Sockets.Flow.data;
            }
      | _ -> ())
    t.flows;
  Hashtbl.fold (fun _ entry acc -> entry :: acc) best []
  |> List.sort (fun a b ->
         compare a.Packet.Stripe.stripe.Packet.Stripe.index
           b.Packet.Stripe.stripe.Packet.Stripe.index)

let string_of_sockaddr = function
  | Unix.ADDR_UNIX path -> path
  | Unix.ADDR_INET (addr, port) ->
      Printf.sprintf "%s:%d" (Unix.string_of_inet_addr addr) port

let trace t event ~flow ~now =
  match t.flowtrace with
  | None -> ()
  | Some ft -> Obs.Flowtrace.record ft ~flow event ~now

let rollup t =
  let total = Protocol.Counters.create () in
  Protocol.Counters.merge ~into:total t.settled;
  Protocol.Counters.merge ~into:total t.server_counters;
  Hashtbl.iter
    (fun _ fs -> Protocol.Counters.merge ~into:total (Sockets.Flow.counters fs.flow))
    t.flows;
  total

let metric_counter t name =
  Option.map (fun m -> Obs.Metrics.counter m ~labels:[ ("side", "server") ] name) t.metrics

let bump t name = Option.iter Obs.Metrics.inc (metric_counter t name)

let publish_gauges t =
  match t.metrics with
  | None -> ()
  | Some m ->
      Obs.Metrics.set_gauge
        (Obs.Metrics.gauge m ~labels:[ ("side", "server") ] "active_flows")
        (float_of_int (Hashtbl.length t.flows))

let put t = function
  | Sockets.Udp.Sent -> ()
  | Sockets.Udp.Send_failed _ -> t.totals.send_failures <- t.totals.send_failures + 1

(* One datagram out — joining the pending train when the transport batches,
   in its own syscall otherwise. The outcome callback fires per datagram
   either way, so the send-failure accounting is identical batched or not. *)
let send_now t ~on_outcome peer data =
  t.tx_queued <- t.tx_queued + 1;
  t.transport.Sockets.Transport.send ~peer ~on_outcome data

(* Flush points bracket every burst, so the queued count at flush time is
   the train a batching transport submits as one sendmmsg — and a useful
   proxy for burst size even on the per-datagram path. *)
let flush_tx t =
  if t.tx_queued > 0 then begin
    Obs.Hist.add t.health.flush_train (float_of_int t.tx_queued);
    t.tx_queued <- 0
  end;
  t.transport.Sockets.Transport.flush ()

(* Per-flow transmit: the probe's tx event fires per protocol send (before
   fault injection, agreeing with the machine's counters); delayed netem
   emissions go on the timer heap instead of blocking the loop. *)
let transmit t fs message =
  let probe = Sockets.Flow.probe fs.flow in
  Obs.Probe.tx probe message;
  let encoded = Packet.Codec.encode message in
  match fs.faults with
  | None ->
      send_now t fs.peer encoded ~on_outcome:(function
        | Sockets.Udp.Sent -> ()
        | Sockets.Udp.Send_failed _ ->
            Obs.Probe.drop probe `Tx;
            t.totals.send_failures <- t.totals.send_failures + 1)
  | Some netem ->
      List.iter
        (fun { Faults.Netem.delay_ns; data } ->
          if delay_ns <= 0 then send_now t fs.peer data ~on_outcome:(put t)
          else
            Timers.add t.timers
              ~deadline:(t.clock () + delay_ns)
              (Delayed_send { peer = fs.peer; data }))
        (Faults.Netem.tx_bytes netem encoded)

let execute t fs actions =
  List.iter (fun (Sockets.Flow.Transmit m) -> transmit t fs m) actions

let reschedule t key fs =
  if Hashtbl.mem t.flows key then
    match Sockets.Flow.next_deadline fs.flow with
    | None -> ()
    | Some deadline ->
        if deadline < fs.scheduled_at then begin
          Timers.add t.timers ~deadline (Flow_tick key);
          fs.scheduled_at <- deadline
        end

let finalize ?(superseded = false) t key fs (completion : Sockets.Flow.completion)
    ~now =
  Hashtbl.remove t.flows key;
  (* Exactly one terminal trace event per admitted flow, whatever path
     settles it: normal completion, shutdown force-settle, or supersede. *)
  (match t.flowtrace with
  | None -> ()
  | Some _ ->
      let state =
        if superseded then Obs.Flowtrace.Superseded
        else
          match completion.Sockets.Flow.outcome with
          | Protocol.Action.Success -> Obs.Flowtrace.Done
          | _ -> Obs.Flowtrace.Failed
      in
      if completion.Sockets.Flow.integrity = Sockets.Flow.Verified then
        trace t Obs.Flowtrace.Verify ~flow:fs.label ~now;
      trace t (Obs.Flowtrace.Terminal state) ~flow:fs.label ~now);
  (match fs.faults with
  | None -> ()
  | Some netem ->
      (* Release held-back (reordered) datagrams so a sender waiting on its
         final ack is not starved by our own fault pipeline. *)
      List.iter
        (fun { Faults.Netem.delay_ns; data } ->
          if delay_ns <= 0 then send_now t ~on_outcome:(put t) fs.peer data
          else
            Timers.add t.timers ~deadline:(now + delay_ns)
              (Delayed_send { peer = fs.peer; data }))
        (Faults.Netem.flush netem));
  Protocol.Counters.merge ~into:t.settled completion.Sockets.Flow.counters;
  (* A CRC-verified striped success makes this server a durable replica of
     that stripe: record it, so MREQ queries (and the repair pass behind
     them) see exactly what would survive a re-read. *)
  (match (completion.Sockets.Flow.outcome, Sockets.Flow.stripe fs.flow) with
  | Protocol.Action.Success, Some stripe
    when completion.Sockets.Flow.integrity = Sockets.Flow.Verified ->
      Hashtbl.replace t.manifests
        (stripe.Packet.Stripe.object_id, stripe.Packet.Stripe.index)
        {
          Packet.Stripe.stripe;
          bytes = String.length completion.Sockets.Flow.data;
          crc = Packet.Checksum.crc32_string completion.Sockets.Flow.data;
        }
  | _ -> ());
  (match completion.Sockets.Flow.outcome with
  | Protocol.Action.Success ->
      t.totals.completed <- t.totals.completed + 1;
      bump t "flows_completed"
  | _ ->
      t.totals.aborted <- t.totals.aborted + 1;
      bump t "flows_aborted");
  publish_gauges t;
  Log.debug (fun f ->
      f "flow %d settled (%a); %d active" completion.Sockets.Flow.transfer_id
        Protocol.Action.pp_outcome completion.Sockets.Flow.outcome
        (Hashtbl.length t.flows));
  t.on_complete { peer = fs.peer; completion; started_ns = fs.started_ns; finished_ns = now }

let settle_if_done t key fs ~now =
  match Sockets.Flow.status fs.flow with
  | `Done completion -> finalize t key fs completion ~now
  | `Running | `Lingering -> ()

let reject t ~now ~from ~transfer_id =
  t.totals.rejected <- t.totals.rejected + 1;
  bump t "flows_rejected";
  (match t.flowtrace with
  | None -> ()
  | Some _ ->
      (* A refused REQ never owned a flow; a lone terminal on its own lane
         is its whole lifecycle. Each retry is its own lane — one REQ, one
         REJ, one trace record. *)
      let flow =
        Printf.sprintf "%s%s#%d/%d.r%d" t.label_prefix (string_of_sockaddr from)
          transfer_id t.trace_epoch t.next_reject
      in
      t.next_reject <- t.next_reject + 1;
      trace t (Obs.Flowtrace.Terminal Obs.Flowtrace.Rejected) ~flow ~now);
  Log.debug (fun f ->
      f "rejecting transfer %d: %d/%d flows busy" transfer_id (Hashtbl.length t.flows)
        t.max_flows);
  send_now t ~on_outcome:(put t) from (Packet.Codec.encode (Packet.Message.rej ~transfer_id))

(* Receiver-advertised train budget, recomputed at every solicit. The pool
   an adaptive sender may fill is the tuning's [max_train] (or the nominal
   128 when the engine itself runs fixed tuning), shared fairly across the
   flows currently multiplexed on this engine; when the drain loop has been
   hitting its budget (socket pressure) or the timer heap is backed up
   relative to the flow count, the advert is halved. Every input — flow
   count, heap depth, drain-exhaustion count — is a deterministic function
   of the event stream, so the advert is reproducible under DST virtual
   time. *)
let advertised_budget t =
  let pool =
    match Protocol.Tuning.aimd t.tuning with
    | Some aimd -> aimd.Protocol.Tuning.max_train
    | None -> 128
  in
  let active = max 1 (Hashtbl.length t.flows) in
  (* Fair share, floored at half the drain budget: the socket buffer absorbs
     a train-sized burst per flow and every wakeup retires [drain_budget]
     datagrams, so capping each of N flows to a 1/N sliver of the pool just
     idles the engine between wakeups. Genuine pressure still halves the
     advert below the floor. *)
  let share = max 1 (max (min pool (t.drain_budget / 2)) (pool / active)) in
  let heap_backlog = Timers.length t.timers > 2 * active in
  let drain_pressure = t.health.drain_exhausted > t.health.last_drain_exhausted in
  t.health.last_drain_exhausted <- t.health.drain_exhausted;
  if heap_backlog || drain_pressure then max 1 (share / 2) else share

let admit t ~now ~from message =
  if Hashtbl.length t.flows >= t.max_flows then
    reject t ~now ~from ~transfer_id:message.Packet.Message.transfer_id
  else begin
    let index = t.next_index in
    let counters = Protocol.Counters.create () in
    let probe =
      Obs.Probe.create ?recorder:t.recorder
        ~lane:(Printf.sprintf "%sflow-%d" t.label_prefix index)
        ~counters ()
    in
    let faults =
      match t.scenario with
      | None -> None
      | Some scenario ->
          (* Every flow gets its own independent, reproducible fault stream:
             one shared Netem would entangle flows' randomness and make
             per-flow replay impossible. *)
          let rng = Stats.Rng.derive ~root:t.seed ~index in
          let seed = Int64.to_int (Stats.Rng.bits64 rng) land max_int in
          let netem = Faults.Netem.create ~counters ~seed scenario in
          Faults.Netem.set_observer netem (Obs.Probe.fault probe);
          Some netem
    in
    match
      Sockets.Flow.create ?fallback_suite:t.fallback_suite ~tuning:t.tuning
        ~budget:(fun () -> advertised_budget t)
        ?idle_timeout_ns:t.idle_timeout_ns ?linger_ns:t.linger_ns ~probe ~counters ~now
        message
    with
    | Error (`Not_a_req | `Bad_geometry) ->
        (* A REQ whose geometry does not decode is indistinguishable from
           noise: count it where pre-admission garbage is counted. *)
        t.totals.garbage <- t.totals.garbage + 1;
        t.server_counters.Protocol.Counters.garbage_received <-
          t.server_counters.Protocol.Counters.garbage_received + 1
    | Ok (flow, actions) ->
        t.next_index <- index + 1;
        t.totals.accepted <- t.totals.accepted + 1;
        bump t "flows_accepted";
        let key = (from, message.Packet.Message.transfer_id) in
        let label =
          (* Unique per incarnation: the epoch distinguishes engine restarts
             (DST) and the admission index distinguishes supersede reuses of
             the same (address, transfer id). *)
          Printf.sprintf "%s%s#%d/%d.%d" t.label_prefix (string_of_sockaddr from)
            message.Packet.Message.transfer_id t.trace_epoch index
        in
        let fs =
          {
            flow;
            peer = from;
            faults;
            started_ns = now;
            label;
            saw_data = false;
            seen_rounds =
              counters.Protocol.Counters.acks_sent
              + counters.Protocol.Counters.nacks_sent;
            scheduled_at = max_int;
          }
        in
        Hashtbl.replace t.flows key fs;
        trace t Obs.Flowtrace.Admitted ~flow:label ~now;
        publish_gauges t;
        Log.debug (fun f ->
            f "admitted flow %d (transfer %d); %d active" index
              message.Packet.Message.transfer_id (Hashtbl.length t.flows));
        execute t fs actions;
        settle_if_done t key fs ~now;
        reschedule t key fs
  end

(* The sender's address and transfer id have been reused by a *different*
   transfer — a restarted process landed on the same ephemeral port while the
   old flow lingers in the table. Feeding the new REQ into the old machine
   would ack progress the new sender never made, so the old flow settles now
   (its typed completion fires as usual) and the REQ is admitted fresh. *)
let supersede t key fs ~now ~from message =
  t.totals.superseded <- t.totals.superseded + 1;
  bump t "flows_superseded";
  Log.debug (fun f ->
      f "transfer %d: address reuse with different geometry — superseding stale flow"
        message.Packet.Message.transfer_id);
  Obs.Probe.timeout (Sockets.Flow.probe fs.flow) ~detail:"superseded" ();
  let completion = Sockets.Flow.force_done fs.flow ~now in
  finalize ~superseded:true t key fs completion ~now;
  admit t ~now ~from message

(* One blast round, seen from the receiving side: the flow answering with
   an ACK or NACK. [Counters.rounds] itself only advances on the sender, so
   the response counters are the engine's per-round signal — the same
   per-flow rhythm the 1985 paper's diagnosis method watches. *)
let observe_rounds t fs ~now =
  match t.flowtrace with
  | None -> ()
  | Some _ ->
      let c = Sockets.Flow.counters fs.flow in
      let responses =
        c.Protocol.Counters.acks_sent + c.Protocol.Counters.nacks_sent
      in
      if responses > fs.seen_rounds then begin
        fs.seen_rounds <- responses;
        trace t Obs.Flowtrace.Round ~flow:fs.label ~now
      end

let handle_datagram t ~buf ~from ~len =
  let now = t.clock () in
  match Packet.Codec.decode_sub buf ~pos:0 ~len with
  | Error reason ->
      (* No trustworthy header, so no flow to attribute it to. *)
      t.totals.garbage <- t.totals.garbage + 1;
      Sockets.Flow.count_garbage ~probe:t.server_probe t.server_counters reason
  | Ok message when message.Packet.Message.kind = Packet.Kind.Mreq ->
      (* Manifest query: which stripes of this object does the server hold?
         Flow-less, like REJ — the reply is one datagram built from the
         manifest table, so a repair pass can interrogate a loaded server
         without consuming a flow slot. *)
      let object_id = message.Packet.Message.transfer_id in
      let entries =
        manifest t ~object_id
        |> List.filteri (fun i _ -> i < Packet.Stripe.max_entries)
      in
      send_now t ~on_outcome:(put t) from
        (Packet.Codec.encode (Packet.Stripe.manifest_reply ~object_id entries))
  | Ok message when message.Packet.Message.kind = Packet.Kind.Mrep ->
      (* Servers answer manifests, they never ask: a reply arriving here is
         a misdelivery, absorbed like any other stray. *)
      t.totals.stray_datagrams <- t.totals.stray_datagrams + 1
  | Ok message -> (
      let key = (from, message.Packet.Message.transfer_id) in
      match Hashtbl.find_opt t.flows key with
      | Some fs ->
          if
            message.Packet.Message.kind = Packet.Kind.Req
            && not (Sockets.Flow.same_request fs.flow message)
          then supersede t key fs ~now ~from message
          else begin
            if message.Packet.Message.kind = Packet.Kind.Data && not fs.saw_data
            then begin
              fs.saw_data <- true;
              trace t Obs.Flowtrace.First_data ~flow:fs.label ~now
            end;
            execute t fs (Sockets.Flow.on_message fs.flow ~now message);
            observe_rounds t fs ~now;
            settle_if_done t key fs ~now;
            reschedule t key fs
          end
      | None ->
          if message.Packet.Message.kind = Packet.Kind.Req then admit t ~now ~from message
          else
            (* Late datagrams of an already-settled flow, or acks for a
               handshake we refused — expected traffic, silently absorbed. *)
            t.totals.stray_datagrams <- t.totals.stray_datagrams + 1)

(* Service everything the heap owes us at [now]: delayed fault emissions go
   out, and each due flow gets its tick (machine timer, idle watchdog, or
   linger expiry). Stale heap entries — the flow's deadline moved later or
   the flow is gone — are dropped or re-armed. *)
let rec service_timers t ~now =
  match Timers.pop_due t.timers ~now with
  | None -> ()
  | Some (Delayed_send { peer; data }) ->
      send_now t ~on_outcome:(put t) peer data;
      service_timers t ~now
  | Some (Flow_tick key) ->
      (match Hashtbl.find_opt t.flows key with
      | None -> ()
      | Some fs ->
          fs.scheduled_at <- max_int;
          (match Sockets.Flow.next_deadline fs.flow with
          | Some deadline when deadline - now <= 0 ->
              execute t fs (Sockets.Flow.on_tick fs.flow ~now);
              observe_rounds t fs ~now;
              settle_if_done t key fs ~now
          | _ -> ());
          reschedule t key fs);
      service_timers t ~now

(* Drain at most [budget] datagrams, then return to timer service: the
   budget is the fairness knob — one blast sender saturating the socket
   cannot starve the other flows' retransmission timers. A batching
   transport serves the whole budget out of one or two [recvmmsg] rings.
   Returns how many datagrams it consumed. *)
let rec drain t budget =
  if budget <= 0 then 0
  else
    match t.transport.Sockets.Transport.poll () with
    | `Empty -> 0
    | `Datagram { Sockets.Transport.buf; len; from } ->
        handle_datagram t ~buf ~from ~len;
        1 + drain t (budget - 1)

let counters_json (c : Protocol.Counters.t) =
  Obs.Json.Obj
    [
      ("data_sent", Obs.Json.Int c.data_sent);
      ("retransmitted_data", Obs.Json.Int c.retransmitted_data);
      ("acks_sent", Obs.Json.Int c.acks_sent);
      ("nacks_sent", Obs.Json.Int c.nacks_sent);
      ("rounds", Obs.Json.Int c.rounds);
      ("timeouts", Obs.Json.Int c.timeouts);
      ("duplicates_received", Obs.Json.Int c.duplicates_received);
      ("delivered", Obs.Json.Int c.delivered);
      ("faults_injected", Obs.Json.Int c.faults_injected);
      ("corrupt_detected", Obs.Json.Int c.corrupt_detected);
      ("garbage_received", Obs.Json.Int c.garbage_received);
    ]

let totals_json (a : totals) =
  Obs.Json.Obj
    [
      ("accepted", Obs.Json.Int a.accepted);
      ("completed", Obs.Json.Int a.completed);
      ("aborted", Obs.Json.Int a.aborted);
      ("rejected", Obs.Json.Int a.rejected);
      ("superseded", Obs.Json.Int a.superseded);
      ("stray_datagrams", Obs.Json.Int a.stray_datagrams);
      ("garbage", Obs.Json.Int a.garbage);
      ("send_failures", Obs.Json.Int a.send_failures);
    ]

let health_json t =
  let h = t.health in
  Obs.Json.Obj
    [
      ("ticks", Obs.Json.Int h.ticks);
      ("drain_exhausted", Obs.Json.Int h.drain_exhausted);
      ("spurious_wakeups", Obs.Json.Int h.spurious_wakeups);
      ("timer_heap", Obs.Json.Int (Timers.length t.timers));
      ("tick_duration_ns", Obs.Hist.to_json h.tick_duration_ns);
      ("recv_drained", Obs.Hist.to_json h.recv_drained);
      ("flush_train", Obs.Hist.to_json h.flush_train);
      ("timer_heap_depth", Obs.Hist.to_json h.timer_heap_depth);
    ]

(* One UDP datagram bounds the admin reply, so the per-flow listing is
   capped; [flows_omitted] says how many a loaded server held back. *)
let snapshot_flow_cap = 128

let flow_json ~now fs =
  let c = Sockets.Flow.counters fs.flow in
  Obs.Json.Obj
    [
      ("flow", Obs.Json.String fs.label);
      ("peer", Obs.Json.String (string_of_sockaddr fs.peer));
      ("id", Obs.Json.Int (Sockets.Flow.transfer_id fs.flow));
      ( "status",
        Obs.Json.String
          (match Sockets.Flow.status fs.flow with
          | `Running -> "running"
          | `Lingering -> "lingering"
          | `Done _ -> "done") );
      ( "phase",
        Obs.Json.String (if fs.saw_data then "blast" else "handshake") );
      ("delivered", Obs.Json.Int c.Protocol.Counters.delivered);
      ("total_packets", Obs.Json.Int (Sockets.Flow.total_packets fs.flow));
      ("total_bytes", Obs.Json.Int (Sockets.Flow.total_bytes fs.flow));
      ("rounds", Obs.Json.Int c.Protocol.Counters.rounds);
      ("age_ns", Obs.Json.Int (now - fs.started_ns));
      ( "deadline_in_ns",
        match Sockets.Flow.next_deadline fs.flow with
        | None -> Obs.Json.Null
        | Some d -> Obs.Json.Int (d - now) );
    ]

(* Not thread-safe: reads the live flow table, so it must run on the serving
   thread (the loop's own admin poll / stats tick) or after [run] returned. *)
let snapshot t =
  let now = t.clock () in
  let flows = Hashtbl.fold (fun _ fs acc -> fs :: acc) t.flows [] in
  let flows = List.sort (fun a b -> compare a.label b.label) flows in
  let shown = List.filteri (fun i _ -> i < snapshot_flow_cap) flows in
  Obs.Json.Obj
    ((match t.shard with
     | None -> []
     | Some i -> [ ("shard", Obs.Json.Int i) ])
    @ [
      ("schema", Obs.Json.String "lanrepro-stat/1");
      ("now_ns", Obs.Json.Int now);
      ("uptime_ns", Obs.Json.Int (now - t.created_ns));
      ("max_flows", Obs.Json.Int t.max_flows);
      ("active_flows", Obs.Json.Int (Hashtbl.length t.flows));
      ( "flows_omitted",
        Obs.Json.Int (max 0 (List.length flows - snapshot_flow_cap)) );
      ("totals", totals_json t.totals);
      ("manifest_stripes", Obs.Json.Int (manifest_size t));
      ("flows", Obs.Json.List (List.map (flow_json ~now) shown));
      ("health", health_json t);
      ("counters", counters_json (rollup t));
    ])

let maybe_emit_stats t ~now =
  match t.stats_interval_ns with
  | None -> ()
  | Some interval ->
      if now >= t.next_stats_ns then begin
        t.on_snapshot (snapshot t);
        t.next_stats_ns <- now + interval
      end

(* Bounded service cap, used only when something outside the transport
   needs periodic attention: an admin socket (its requests arrive on a fd
   the transport cannot see, so it is polled), or a transport without a
   [wake] capability (where a cross-thread [stop] can only be noticed by
   waking up). An engine with neither blocks indefinitely when idle. *)
let service_cap_ns = 50_000_000

let run ?max_transfers t =
  let served () = t.totals.completed + t.totals.aborted in
  let finished () =
    match max_transfers with
    | Some n -> served () >= n && Hashtbl.length t.flows = 0
    | None -> false
  in
  Log.info (fun f -> f "serving (max %d concurrent flows)" t.max_flows);
  while (not (Atomic.get t.stopped)) && not (finished ()) do
    let now = t.clock () in
    service_timers t ~now;
    (* Everything the timers and the previous drain queued goes out as one
       train; acks never wait longer than one loop round. *)
    flush_tx t;
    (* Stats plane, serviced at the loop's idle point: never between a
       datagram and its ack, never blocking. *)
    Option.iter (fun a -> Admin.poll a ~snapshot:(fun () -> snapshot t)) t.admin;
    t.on_idle ();
    maybe_emit_stats t ~now;
    Obs.Hist.add t.health.timer_heap_depth (float_of_int (Timers.length t.timers));
    (* The wait is derived purely from pending work: the earliest timer
       deadline, the next stats emission, and (when present) the admin
       service cap. With a wakeable transport and none of those, the wait
       is unbounded — an idle engine sleeps until traffic, a wake, or
       stop, instead of ticking 20x a second. *)
    let timeout_ns =
      let bound = max_int in
      let bound =
        match Timers.peek_deadline t.timers with
        | None -> bound
        | Some deadline -> min bound (max 0 (deadline - now))
      in
      let bound =
        match t.stats_interval_ns with
        | None -> bound
        | Some _ -> min bound (max 0 (t.next_stats_ns - now))
      in
      let bound =
        if Option.is_some t.admin then min bound service_cap_ns else bound
      in
      let bound =
        if Option.is_none t.transport.Sockets.Transport.wake then
          min bound service_cap_ns
        else bound
      in
      if bound = max_int then None else Some bound
    in
    let pre_wait = t.clock () in
    let resumed, drained =
      match t.transport.Sockets.Transport.recv ~timeout_ns with
      | `Timeout -> (t.clock (), 0)
      | `Datagram { Sockets.Transport.buf; len; from } ->
          let resumed = t.clock () in
          handle_datagram t ~buf ~from ~len;
          (resumed, 1 + drain t (t.drain_budget - 1))
    in
    flush_tx t;
    t.health.ticks <- t.health.ticks + 1;
    if drained > 0 then
      Obs.Hist.add t.health.recv_drained (float_of_int drained);
    if drained >= t.drain_budget then
      t.health.drain_exhausted <- t.health.drain_exhausted + 1;
    (* A wakeup that found no datagram, no due timer, no stats emission,
       and has no admin socket to service did nothing at all. *)
    if drained = 0 then begin
      let now' = t.clock () in
      let timer_due =
        match Timers.peek_deadline t.timers with
        | Some d -> d - now' <= 0
        | None -> false
      in
      let stats_due =
        match t.stats_interval_ns with
        | Some _ -> now' >= t.next_stats_ns
        | None -> false
      in
      if
        (not timer_due) && (not stats_due)
        && Option.is_none t.admin
        && not (Atomic.get t.stopped)
      then t.health.spurious_wakeups <- t.health.spurious_wakeups + 1
    end;
    (* Work time only — the blocking wait between [pre_wait] and [resumed]
       is idleness, not load, and would drown the signal at 50 ms a tick. *)
    Obs.Hist.add t.health.tick_duration_ns
      (float_of_int (pre_wait - now + (t.clock () - resumed)))
  done;
  (* Shutdown settles every live flow to a typed result — nothing is left
     dangling, and the caller's on_complete sees each one exactly once. *)
  let remaining = Hashtbl.fold (fun key fs acc -> (key, fs) :: acc) t.flows [] in
  List.iter
    (fun (key, fs) ->
      let now = t.clock () in
      let completion = Sockets.Flow.force_done fs.flow ~now in
      finalize t key fs completion ~now)
    remaining;
  flush_tx t;
  publish_gauges t;
  (match t.metrics with
  | None -> ()
  | Some m -> Obs.Metrics.bridge_counters m ~labels:[ ("side", "server") ] (rollup t));
  Log.info (fun f -> f "server loop exits: %a" pp_totals t.totals)

(* Nudge a blocked serving loop: its next [recv] returns promptly. Safe
   from any thread (the transport's wake is); a no-op on transports
   without the capability, whose waits stay capped instead. *)
let wake t =
  match t.transport.Sockets.Transport.wake with
  | None -> ()
  | Some w -> w ()

let stop t =
  Atomic.set t.stopped true;
  wake t

(* Structural invariants the event loop maintains between rounds; the
   deterministic-simulation harness calls this after every scheduler step.
   Empty list = healthy. *)
let invariant_violations t =
  let violations = ref [] in
  let fail fmt = Format.kasprintf (fun s -> violations := s :: !violations) fmt in
  if Hashtbl.length t.flows > t.max_flows then
    fail "flow table holds %d flows, cap is %d" (Hashtbl.length t.flows) t.max_flows;
  (* Earliest live heap entry per flow key: lazy invalidation means extra,
     later entries are fine, but a live flow's next deadline must always be
     covered by an entry at or before it, or the loop could sleep past it. *)
  let heap_min : (key, int) Hashtbl.t = Hashtbl.create 16 in
  Timers.iter t.timers (fun ~deadline -> function
    | Delayed_send _ -> ()
    | Flow_tick key -> (
        match Hashtbl.find_opt heap_min key with
        | Some d when d <= deadline -> ()
        | _ -> Hashtbl.replace heap_min key deadline));
  Hashtbl.iter
    (fun key fs ->
      let id = Sockets.Flow.transfer_id fs.flow in
      match Sockets.Flow.status fs.flow with
      | `Done _ -> fail "flow %d is closed but still in the table" id
      | `Running | `Lingering -> (
          match Sockets.Flow.next_deadline fs.flow with
          | None -> fail "live flow %d has no deadline (watchdog unarmed)" id
          | Some deadline -> (
              match Hashtbl.find_opt heap_min key with
              | Some h when h <= deadline -> ()
              | Some h ->
                  fail "flow %d: earliest heap entry %d is after its deadline %d" id h
                    deadline
              | None -> fail "flow %d: deadline %d has no timer-heap entry" id deadline)))
    t.flows;
  let a = t.totals in
  if a.accepted <> a.completed + a.aborted + Hashtbl.length t.flows then
    fail "totals drift: accepted %d <> completed %d + aborted %d + active %d" a.accepted
      a.completed a.aborted (Hashtbl.length t.flows);
  let violations = List.rev !violations in
  (* A broken invariant is exactly the moment "what were the last N
     datagrams doing" matters: dump the flight ring alongside the report. *)
  (match (violations, t.recorder) with
  | first :: _, Some recorder when not t.flight_dumped ->
      t.flight_dumped <- true;
      ignore
        (Obs.Recorder.postmortem recorder
           ~reason:("engine invariant violated: " ^ first))
  | _ -> ());
  violations
