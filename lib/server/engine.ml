let log = Logs.Src.create "server.engine" ~doc:"concurrent UDP transfer server"

module Log = (val Logs.src_log log : Logs.LOG)

type totals = {
  mutable accepted : int;
  mutable completed : int;
  mutable aborted : int;
  mutable rejected : int;
  mutable superseded : int;
  mutable stray_datagrams : int;
  mutable garbage : int;
  mutable send_failures : int;
}

let create_totals () =
  {
    accepted = 0;
    completed = 0;
    aborted = 0;
    rejected = 0;
    superseded = 0;
    stray_datagrams = 0;
    garbage = 0;
    send_failures = 0;
  }

let pp_totals ppf t =
  Format.fprintf ppf
    "accepted %d, completed %d, aborted %d, rejected %d, superseded %d, stray %d, garbage %d, send failures %d"
    t.accepted t.completed t.aborted t.rejected t.superseded t.stray_datagrams t.garbage
    t.send_failures

type completion_event = {
  peer : Unix.sockaddr;
  completion : Sockets.Flow.completion;
  started_ns : int;
  finished_ns : int;
}

(* A flow is keyed by who is talking and which transfer they mean: two
   transfers from the same source port never collide (distinct ids), and two
   senders reusing id 1 never collide either (distinct sockaddrs). *)
type key = Unix.sockaddr * int

type timer_payload =
  | Flow_tick of key
  | Delayed_send of { peer : Unix.sockaddr; data : bytes }
      (** a netem-delayed emission: the engine never sleeps inline, it
          schedules the datagram and keeps serving other flows *)

type flow_state = {
  flow : Sockets.Flow.t;
  peer : Unix.sockaddr;
  faults : Faults.Netem.t option;
  started_ns : int;
  mutable scheduled_at : int;  (** earliest heap entry for this flow; [max_int] = none *)
}

type t = {
  transport : Sockets.Transport.t;
  max_flows : int;
  retransmit_ns : int;
  max_attempts : int;
  idle_timeout_ns : int option;
  linger_ns : int option;
  fallback_suite : Protocol.Suite.t option;
  scenario : Faults.Scenario.t option;
  seed : int;
  drain_budget : int;
  recorder : Obs.Recorder.t option;
  metrics : Obs.Metrics.t option;
  clock : unit -> int;
  on_complete : completion_event -> unit;
  flows : (key, flow_state) Hashtbl.t;
  timers : timer_payload Timers.t;
  totals : totals;
  settled : Protocol.Counters.t;  (** merged counters of finished flows *)
  server_counters : Protocol.Counters.t;  (** pre-admission garbage accounting *)
  server_probe : Obs.Probe.t;
  stopped : bool Atomic.t;
  mutable next_index : int;
}

let create ?(max_flows = 64) ?(retransmit_ns = 50_000_000) ?(max_attempts = 50)
    ?idle_timeout_ns ?linger_ns ?fallback_suite ?scenario ?(seed = 1)
    ?(drain_budget = 64) ?ctx ?(on_complete = fun _ -> ()) ~transport () =
  if max_flows < 0 then invalid_arg "Engine.create: negative max_flows";
  if drain_budget <= 0 then invalid_arg "Engine.create: drain_budget must be positive";
  let ctx = match ctx with Some c -> c | None -> Sockets.Io_ctx.default () in
  let { Sockets.Io_ctx.recorder; metrics; clock; batch = _; faults = _ } = ctx in
  Option.iter (fun r -> Obs.Recorder.set_clock r clock) recorder;
  let server_counters = Protocol.Counters.create () in
  let server_probe = Obs.Probe.create ?recorder ~lane:"server" ~counters:server_counters () in
  {
    transport;
    max_flows;
    retransmit_ns;
    max_attempts;
    idle_timeout_ns;
    linger_ns;
    fallback_suite;
    scenario = (match scenario with Some s when Faults.Scenario.is_clean s -> None | s -> s);
    seed;
    drain_budget;
    recorder;
    metrics;
    clock;
    on_complete;
    flows = Hashtbl.create 64;
    timers = Timers.create ();
    totals = create_totals ();
    settled = Protocol.Counters.create ();
    server_counters;
    server_probe;
    stopped = Atomic.make false;
    next_index = 0;
  }

let totals t = t.totals
let active_flows t = Hashtbl.length t.flows

let rollup t =
  let total = Protocol.Counters.create () in
  Protocol.Counters.merge ~into:total t.settled;
  Protocol.Counters.merge ~into:total t.server_counters;
  Hashtbl.iter
    (fun _ fs -> Protocol.Counters.merge ~into:total (Sockets.Flow.counters fs.flow))
    t.flows;
  total

let metric_counter t name =
  Option.map (fun m -> Obs.Metrics.counter m ~labels:[ ("side", "server") ] name) t.metrics

let bump t name = Option.iter Obs.Metrics.inc (metric_counter t name)

let publish_gauges t =
  match t.metrics with
  | None -> ()
  | Some m ->
      Obs.Metrics.set_gauge
        (Obs.Metrics.gauge m ~labels:[ ("side", "server") ] "active_flows")
        (float_of_int (Hashtbl.length t.flows))

let put t = function
  | Sockets.Udp.Sent -> ()
  | Sockets.Udp.Send_failed _ -> t.totals.send_failures <- t.totals.send_failures + 1

(* One datagram out — joining the pending train when the transport batches,
   in its own syscall otherwise. The outcome callback fires per datagram
   either way, so the send-failure accounting is identical batched or not. *)
let send_now t ~on_outcome peer data = t.transport.Sockets.Transport.send ~peer ~on_outcome data
let flush_tx t = t.transport.Sockets.Transport.flush ()

(* Per-flow transmit: the probe's tx event fires per protocol send (before
   fault injection, agreeing with the machine's counters); delayed netem
   emissions go on the timer heap instead of blocking the loop. *)
let transmit t fs message =
  let probe = Sockets.Flow.probe fs.flow in
  Obs.Probe.tx probe message;
  let encoded = Packet.Codec.encode message in
  match fs.faults with
  | None ->
      send_now t fs.peer encoded ~on_outcome:(function
        | Sockets.Udp.Sent -> ()
        | Sockets.Udp.Send_failed _ ->
            Obs.Probe.drop probe `Tx;
            t.totals.send_failures <- t.totals.send_failures + 1)
  | Some netem ->
      List.iter
        (fun { Faults.Netem.delay_ns; data } ->
          if delay_ns <= 0 then send_now t fs.peer data ~on_outcome:(put t)
          else
            Timers.add t.timers
              ~deadline:(t.clock () + delay_ns)
              (Delayed_send { peer = fs.peer; data }))
        (Faults.Netem.tx_bytes netem encoded)

let execute t fs actions =
  List.iter (fun (Sockets.Flow.Transmit m) -> transmit t fs m) actions

let reschedule t key fs =
  if Hashtbl.mem t.flows key then
    match Sockets.Flow.next_deadline fs.flow with
    | None -> ()
    | Some deadline ->
        if deadline < fs.scheduled_at then begin
          Timers.add t.timers ~deadline (Flow_tick key);
          fs.scheduled_at <- deadline
        end

let finalize t key fs (completion : Sockets.Flow.completion) ~now =
  Hashtbl.remove t.flows key;
  (match fs.faults with
  | None -> ()
  | Some netem ->
      (* Release held-back (reordered) datagrams so a sender waiting on its
         final ack is not starved by our own fault pipeline. *)
      List.iter
        (fun { Faults.Netem.delay_ns; data } ->
          if delay_ns <= 0 then send_now t ~on_outcome:(put t) fs.peer data
          else
            Timers.add t.timers ~deadline:(now + delay_ns)
              (Delayed_send { peer = fs.peer; data }))
        (Faults.Netem.flush netem));
  Protocol.Counters.merge ~into:t.settled completion.Sockets.Flow.counters;
  (match completion.Sockets.Flow.outcome with
  | Protocol.Action.Success ->
      t.totals.completed <- t.totals.completed + 1;
      bump t "flows_completed"
  | _ ->
      t.totals.aborted <- t.totals.aborted + 1;
      bump t "flows_aborted");
  publish_gauges t;
  Log.debug (fun f ->
      f "flow %d settled (%a); %d active" completion.Sockets.Flow.transfer_id
        Protocol.Action.pp_outcome completion.Sockets.Flow.outcome
        (Hashtbl.length t.flows));
  t.on_complete { peer = fs.peer; completion; started_ns = fs.started_ns; finished_ns = now }

let settle_if_done t key fs ~now =
  match Sockets.Flow.status fs.flow with
  | `Done completion -> finalize t key fs completion ~now
  | `Running | `Lingering -> ()

let reject t ~from ~transfer_id =
  t.totals.rejected <- t.totals.rejected + 1;
  bump t "flows_rejected";
  Log.debug (fun f ->
      f "rejecting transfer %d: %d/%d flows busy" transfer_id (Hashtbl.length t.flows)
        t.max_flows);
  send_now t ~on_outcome:(put t) from (Packet.Codec.encode (Packet.Message.rej ~transfer_id))

let admit t ~now ~from message =
  if Hashtbl.length t.flows >= t.max_flows then
    reject t ~from ~transfer_id:message.Packet.Message.transfer_id
  else begin
    let index = t.next_index in
    let counters = Protocol.Counters.create () in
    let probe =
      Obs.Probe.create ?recorder:t.recorder
        ~lane:(Printf.sprintf "flow-%d" index)
        ~counters ()
    in
    let faults =
      match t.scenario with
      | None -> None
      | Some scenario ->
          (* Every flow gets its own independent, reproducible fault stream:
             one shared Netem would entangle flows' randomness and make
             per-flow replay impossible. *)
          let rng = Stats.Rng.derive ~root:t.seed ~index in
          let seed = Int64.to_int (Stats.Rng.bits64 rng) land max_int in
          let netem = Faults.Netem.create ~counters ~seed scenario in
          Faults.Netem.set_observer netem (Obs.Probe.fault probe);
          Some netem
    in
    match
      Sockets.Flow.create ?fallback_suite:t.fallback_suite ~retransmit_ns:t.retransmit_ns
        ~max_attempts:t.max_attempts ?idle_timeout_ns:t.idle_timeout_ns
        ?linger_ns:t.linger_ns ~probe ~counters ~now message
    with
    | Error (`Not_a_req | `Bad_geometry) ->
        (* A REQ whose geometry does not decode is indistinguishable from
           noise: count it where pre-admission garbage is counted. *)
        t.totals.garbage <- t.totals.garbage + 1;
        t.server_counters.Protocol.Counters.garbage_received <-
          t.server_counters.Protocol.Counters.garbage_received + 1
    | Ok (flow, actions) ->
        t.next_index <- index + 1;
        t.totals.accepted <- t.totals.accepted + 1;
        bump t "flows_accepted";
        let key = (from, message.Packet.Message.transfer_id) in
        let fs = { flow; peer = from; faults; started_ns = now; scheduled_at = max_int } in
        Hashtbl.replace t.flows key fs;
        publish_gauges t;
        Log.debug (fun f ->
            f "admitted flow %d (transfer %d); %d active" index
              message.Packet.Message.transfer_id (Hashtbl.length t.flows));
        execute t fs actions;
        settle_if_done t key fs ~now;
        reschedule t key fs
  end

(* The sender's address and transfer id have been reused by a *different*
   transfer — a restarted process landed on the same ephemeral port while the
   old flow lingers in the table. Feeding the new REQ into the old machine
   would ack progress the new sender never made, so the old flow settles now
   (its typed completion fires as usual) and the REQ is admitted fresh. *)
let supersede t key fs ~now ~from message =
  t.totals.superseded <- t.totals.superseded + 1;
  bump t "flows_superseded";
  Log.debug (fun f ->
      f "transfer %d: address reuse with different geometry — superseding stale flow"
        message.Packet.Message.transfer_id);
  Obs.Probe.timeout (Sockets.Flow.probe fs.flow) ~detail:"superseded" ();
  let completion = Sockets.Flow.force_done fs.flow ~now in
  finalize t key fs completion ~now;
  admit t ~now ~from message

let handle_datagram t ~buf ~from ~len =
  let now = t.clock () in
  match Packet.Codec.decode_sub buf ~pos:0 ~len with
  | Error reason ->
      (* No trustworthy header, so no flow to attribute it to. *)
      t.totals.garbage <- t.totals.garbage + 1;
      Sockets.Flow.count_garbage ~probe:t.server_probe t.server_counters reason
  | Ok message -> (
      let key = (from, message.Packet.Message.transfer_id) in
      match Hashtbl.find_opt t.flows key with
      | Some fs ->
          if
            message.Packet.Message.kind = Packet.Kind.Req
            && not (Sockets.Flow.same_request fs.flow message)
          then supersede t key fs ~now ~from message
          else begin
            execute t fs (Sockets.Flow.on_message fs.flow ~now message);
            settle_if_done t key fs ~now;
            reschedule t key fs
          end
      | None ->
          if message.Packet.Message.kind = Packet.Kind.Req then admit t ~now ~from message
          else
            (* Late datagrams of an already-settled flow, or acks for a
               handshake we refused — expected traffic, silently absorbed. *)
            t.totals.stray_datagrams <- t.totals.stray_datagrams + 1)

(* Service everything the heap owes us at [now]: delayed fault emissions go
   out, and each due flow gets its tick (machine timer, idle watchdog, or
   linger expiry). Stale heap entries — the flow's deadline moved later or
   the flow is gone — are dropped or re-armed. *)
let rec service_timers t ~now =
  match Timers.pop_due t.timers ~now with
  | None -> ()
  | Some (Delayed_send { peer; data }) ->
      send_now t ~on_outcome:(put t) peer data;
      service_timers t ~now
  | Some (Flow_tick key) ->
      (match Hashtbl.find_opt t.flows key with
      | None -> ()
      | Some fs ->
          fs.scheduled_at <- max_int;
          (match Sockets.Flow.next_deadline fs.flow with
          | Some deadline when deadline - now <= 0 ->
              execute t fs (Sockets.Flow.on_tick fs.flow ~now);
              settle_if_done t key fs ~now
          | _ -> ());
          reschedule t key fs);
      service_timers t ~now

(* Drain at most [budget] datagrams, then return to timer service: the
   budget is the fairness knob — one blast sender saturating the socket
   cannot starve the other flows' retransmission timers. A batching
   transport serves the whole budget out of one or two [recvmmsg] rings. *)
let rec drain t budget =
  if budget > 0 then
    match t.transport.Sockets.Transport.poll () with
    | `Empty -> ()
    | `Datagram { Sockets.Transport.buf; len; from } ->
        handle_datagram t ~buf ~from ~len;
        drain t (budget - 1)

(* Cap each wait so [stop] from another thread is honoured promptly even
   when the transport is silent and no timer is due. *)
let max_select_ns = 50_000_000

let run ?max_transfers t =
  let served () = t.totals.completed + t.totals.aborted in
  let finished () =
    match max_transfers with
    | Some n -> served () >= n && Hashtbl.length t.flows = 0
    | None -> false
  in
  Log.info (fun f -> f "serving (max %d concurrent flows)" t.max_flows);
  while (not (Atomic.get t.stopped)) && not (finished ()) do
    let now = t.clock () in
    service_timers t ~now;
    (* Everything the timers and the previous drain queued goes out as one
       train; acks never wait longer than one loop round. *)
    flush_tx t;
    let timeout_ns =
      match Timers.peek_deadline t.timers with
      | None -> max_select_ns
      | Some deadline -> max 0 (min (deadline - now) max_select_ns)
    in
    (match t.transport.Sockets.Transport.recv ~timeout_ns:(Some timeout_ns) with
    | `Timeout -> ()
    | `Datagram { Sockets.Transport.buf; len; from } ->
        handle_datagram t ~buf ~from ~len;
        drain t (t.drain_budget - 1));
    flush_tx t
  done;
  (* Shutdown settles every live flow to a typed result — nothing is left
     dangling, and the caller's on_complete sees each one exactly once. *)
  let remaining = Hashtbl.fold (fun key fs acc -> (key, fs) :: acc) t.flows [] in
  List.iter
    (fun (key, fs) ->
      let now = t.clock () in
      let completion = Sockets.Flow.force_done fs.flow ~now in
      finalize t key fs completion ~now)
    remaining;
  flush_tx t;
  publish_gauges t;
  (match t.metrics with
  | None -> ()
  | Some m -> Obs.Metrics.bridge_counters m ~labels:[ ("side", "server") ] (rollup t));
  Log.info (fun f -> f "server loop exits: %a" pp_totals t.totals)

let stop t = Atomic.set t.stopped true

(* Structural invariants the event loop maintains between rounds; the
   deterministic-simulation harness calls this after every scheduler step.
   Empty list = healthy. *)
let invariant_violations t =
  let violations = ref [] in
  let fail fmt = Format.kasprintf (fun s -> violations := s :: !violations) fmt in
  if Hashtbl.length t.flows > t.max_flows then
    fail "flow table holds %d flows, cap is %d" (Hashtbl.length t.flows) t.max_flows;
  (* Earliest live heap entry per flow key: lazy invalidation means extra,
     later entries are fine, but a live flow's next deadline must always be
     covered by an entry at or before it, or the loop could sleep past it. *)
  let heap_min : (key, int) Hashtbl.t = Hashtbl.create 16 in
  Timers.iter t.timers (fun ~deadline -> function
    | Delayed_send _ -> ()
    | Flow_tick key -> (
        match Hashtbl.find_opt heap_min key with
        | Some d when d <= deadline -> ()
        | _ -> Hashtbl.replace heap_min key deadline));
  Hashtbl.iter
    (fun key fs ->
      let id = Sockets.Flow.transfer_id fs.flow in
      match Sockets.Flow.status fs.flow with
      | `Done _ -> fail "flow %d is closed but still in the table" id
      | `Running | `Lingering -> (
          match Sockets.Flow.next_deadline fs.flow with
          | None -> fail "live flow %d has no deadline (watchdog unarmed)" id
          | Some deadline -> (
              match Hashtbl.find_opt heap_min key with
              | Some h when h <= deadline -> ()
              | Some h ->
                  fail "flow %d: earliest heap entry %d is after its deadline %d" id h
                    deadline
              | None -> fail "flow %d: deadline %d has no timer-heap entry" id deadline)))
    t.flows;
  let a = t.totals in
  if a.accepted <> a.completed + a.aborted + Hashtbl.length t.flows then
    fail "totals drift: accepted %d <> completed %d + aborted %d + active %d" a.accepted
      a.completed a.aborted (Hashtbl.length t.flows);
  List.rev !violations
