type t = { socket : Unix.file_descr; port : int; buf : Bytes.t }

(* One datagram each way; replies must fit a single UDP datagram. *)
let max_reply_bytes = 65000

let create ?(address = "127.0.0.1") ~port () =
  let socket = Unix.socket Unix.PF_INET Unix.SOCK_DGRAM 0 in
  (match
     Unix.setsockopt socket Unix.SO_REUSEADDR true;
     Unix.bind socket (Unix.ADDR_INET (Unix.inet_addr_of_string address, port))
   with
  | () -> ()
  | exception e ->
      (try Unix.close socket with Unix.Unix_error _ -> ());
      raise e);
  Unix.set_nonblock socket;
  let port =
    match Unix.getsockname socket with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> port
  in
  { socket; port; buf = Bytes.create 512 }

let port t = t.port

(* At most this many requests answered per engine loop round: an operator
   polling at human rates needs one; a flood must not starve the data path. *)
let poll_budget = 8

let poll t ~snapshot =
  (* The snapshot is built lazily and at most once per poll — serializing
     the flow table is the expensive part, and most polls find no request. *)
  let reply = ref None in
  let reply_bytes () =
    match !reply with
    | Some r -> r
    | None ->
        let body = Obs.Json.to_string (snapshot ()) in
        let body =
          if String.length body <= max_reply_bytes then body
          else
            Obs.Json.to_string
              (Obs.Json.Obj
                 [
                   ("error", Obs.Json.String "snapshot exceeds one datagram");
                   ("bytes", Obs.Json.Int (String.length body));
                 ])
        in
        let r = Bytes.of_string body in
        reply := Some r;
        r
  in
  let rec loop budget =
    if budget > 0 then
      match Unix.recvfrom t.socket t.buf 0 (Bytes.length t.buf) [] with
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop budget
      | exception Unix.Unix_error (_, _, _) ->
          (* e.g. ECONNREFUSED bounced back from a previous reply; drain on. *)
          loop (budget - 1)
      | _, from ->
          (* Any datagram is a stat request; the payload is ignored so old
             and new clients stay compatible. *)
          let r = reply_bytes () in
          (try ignore (Unix.sendto t.socket r 0 (Bytes.length r) [] from)
           with Unix.Unix_error _ -> ());
          loop (budget - 1)
  in
  loop poll_budget

let close t = try Unix.close t.socket with Unix.Unix_error _ -> ()

let parse_address s =
  let host, port_s =
    match String.rindex_opt s ':' with
    | Some i ->
        (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))
    | None -> ("127.0.0.1", s)
  in
  let host = if host = "" then "127.0.0.1" else host in
  match int_of_string_opt port_s with
  | None -> Error (Printf.sprintf "%S: expected HOST:PORT" s)
  | Some port -> (
      match Unix.inet_addr_of_string host with
      | addr -> Ok (Unix.ADDR_INET (addr, port))
      | exception Failure _ -> (
          match Unix.gethostbyname host with
          | { Unix.h_addr_list = [||]; _ } | (exception Not_found) ->
              Error (Printf.sprintf "%S: unknown host" host)
          | { Unix.h_addr_list; _ } -> Ok (Unix.ADDR_INET (h_addr_list.(0), port))))

let query ?(timeout_ms = 1000) ?(retries = 3) addr =
  let socket = Unix.socket Unix.PF_INET Unix.SOCK_DGRAM 0 in
  let finally () = try Unix.close socket with Unix.Unix_error _ -> () in
  Fun.protect ~finally (fun () ->
      let request = Bytes.of_string "stat" in
      let buf = Bytes.create Sockets.Udp.max_datagram_bytes in
      let rec attempt n last_err =
        if n <= 0 then Error last_err
        else
          match Unix.sendto socket request 0 (Bytes.length request) [] addr with
          | exception Unix.Unix_error (e, _, _) ->
              attempt (n - 1) (Unix.error_message e)
          | _ -> (
              match
                Unix.select [ socket ] [] [] (float_of_int timeout_ms /. 1000.)
              with
              | [], _, _ -> attempt (n - 1) "timed out waiting for snapshot"
              | _ -> (
                  match Unix.recvfrom socket buf 0 (Bytes.length buf) [] with
                  | exception Unix.Unix_error (e, _, _) ->
                      attempt (n - 1) (Unix.error_message e)
                  | len, _ -> (
                      match Obs.Json.parse (Bytes.sub_string buf 0 len) with
                      | Ok json -> Ok json
                      | Error e ->
                          Error (Printf.sprintf "reply is not valid JSON: %s" e))))
      in
      attempt (max 1 retries) "no attempts made")
