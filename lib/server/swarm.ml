let log = Logs.Src.create "server.swarm" ~doc:"concurrent-sender load generator"

module Log = (val Logs.src_log log : Logs.LOG)

type sender_report = {
  index : int;
  outcome : Protocol.Action.outcome;
  elapsed_ns : int;
  bytes : int;
}

type report = {
  flows : int;
  jobs : int;
  shards : int;
  bytes_per_flow : int;
  completed : int;
  rejected : int;
  failed : int;
  elapsed_ns : int;
  aggregate_mbit_s : float;
  latency_ms : Obs.Hist.t;
  senders : sender_report list;
  completions : Engine.completion_event list;
      (** server-side view of every settled flow, in settlement order *)
  server : Engine.totals;
  rollup : Protocol.Counters.t;
  engine_snapshot : Obs.Json.t;
  invariants : string list;
}

let server_verified report =
  List.length
    (List.filter
       (fun (e : Engine.completion_event) ->
         e.Engine.completion.Sockets.Flow.integrity = Sockets.Flow.Verified)
       report.completions)

let pp_report ppf r =
  let lat = Obs.Hist.snapshot r.latency_ms in
  Format.fprintf ppf
    "%d flows over %d jobs to %d shard%s: %d completed, %d rejected, %d failed in %.1f ms \
     (%.2f Mbit/s aggregate; latency p50 %.2f / p90 %.2f / p99 %.2f / max %.2f ms); server: %a"
    r.flows r.jobs r.shards
    (if r.shards = 1 then "" else "s")
    r.completed r.rejected r.failed
    (float_of_int r.elapsed_ns /. 1e6)
    r.aggregate_mbit_s lat.Obs.Hist.p50 lat.Obs.Hist.p90 lat.Obs.Hist.p99
    lat.Obs.Hist.max Engine.pp_totals r.server

(* Deterministic per-sender payload: reproducible from (seed, index) alone,
   byte-varied so misdelivery between flows cannot go unnoticed by the CRC. *)
let payload_for rng bytes = String.init bytes (fun _ -> Char.chr (Stats.Rng.int rng 256))

let run ?max_flows ?jobs ?(bytes = 64 * 1024) ?(packet_bytes = 1024)
    ?(tuning = Protocol.Tuning.fixed ~retransmit_ns:20_000_000 ()) ?idle_timeout_ns
    ?(suite = Protocol.Suite.Blast Protocol.Blast.Go_back_n) ?scenario ?server_scenario
    ?(seed = 42) ?ctx ?flowtrace ?admin_port ?stats_interval_ns ?on_snapshot
    ?(shards = 1) ~flows () =
  if flows <= 0 then invalid_arg "Swarm.run: flows must be positive";
  if bytes <= 0 then invalid_arg "Swarm.run: bytes must be positive";
  if shards <= 0 then invalid_arg "Swarm.run: shards must be positive";
  let ctx = match ctx with Some c -> c | None -> Sockets.Io_ctx.default () in
  (* One tuning for the whole swarm: the engines read it from their context,
     the senders from theirs. *)
  let ctx = { ctx with Sockets.Io_ctx.tuning } in
  let metrics = ctx.Sockets.Io_ctx.metrics in
  let completions = ref [] in
  let on_complete event = completions := event :: !completions in
  (* The server side gets its own domain(s): the pool below keeps every
     other domain (including this one) busy running senders, and the server
     must keep ticking its timers while they all blast at it. A swarm at
     [shards = 1] keeps the single-engine shape (direct admin/stat wiring,
     no REUSEPORT) so the default path stays byte-identical to before;
     [shards > 1] serves through a {!Shard_group}, whose REUSEPORT hash
     spreads the senders' flows across shard engines. *)
  let server =
    if shards = 1 then begin
      let socket, server_address = Sockets.Udp.create_socket () in
      let poller = Sockets.Poller.create () in
      let transport =
        Sockets.Transport.udp ~batch:ctx.Sockets.Io_ctx.batch ~poller ~socket ()
      in
      let admin = Option.map (fun port -> Admin.create ~port ()) admin_port in
      let engine =
        Engine.create ?max_flows ?idle_timeout_ns
          ?scenario:server_scenario ~seed:(seed + 1) ~ctx ~on_complete ?flowtrace ?admin
          ?stats_interval_ns ?on_snapshot ~transport ()
      in
      let server_domain = Domain.spawn (fun () -> Engine.run engine) in
      `Single (socket, poller, admin, engine, server_domain, server_address)
    end
    else begin
      let group =
        Shard_group.create ?max_flows ?idle_timeout_ns
          ?scenario:server_scenario ~seed:(seed + 1) ~ctx ~on_complete ?flowtrace
          ?admin_port ?stats_interval_ns ?on_snapshot ~shards ()
      in
      Shard_group.start group;
      `Group group
    end
  in
  let server_address =
    match server with
    | `Single (_, _, _, _, _, addr) -> addr
    | `Group group -> Shard_group.address group
  in
  let jobs = match jobs with Some j -> j | None -> flows in
  let one index =
    let rng = Stats.Rng.derive ~root:seed ~index in
    let data = payload_for rng bytes in
    let faults =
      match scenario with
      | Some sc when not (Faults.Scenario.is_clean sc) ->
          Some
            (Faults.Netem.create ~seed:(Int64.to_int (Stats.Rng.bits64 rng) land max_int) sc)
      | _ -> None
    in
    (* Each sender shares the swarm's telemetry context but owns its fault
       pipeline; the server side never sees ctx.faults (per-flow scenario
       seeding covers it). *)
    let sender_ctx = { ctx with Sockets.Io_ctx.faults } in
    let sender_socket, _ = Sockets.Udp.create_socket () in
    Fun.protect
      ~finally:(fun () -> Sockets.Udp.close sender_socket)
      (fun () ->
        let result =
          Sockets.Peer.send ~ctx:sender_ctx ~transfer_id:(index + 1) ~packet_bytes
            ?idle_timeout_ns ~socket:sender_socket ~peer:server_address ~suite ~data ()
        in
        {
          index;
          outcome = result.Sockets.Peer.outcome;
          elapsed_ns = result.Sockets.Peer.elapsed_ns;
          bytes;
        })
  in
  (* Elapsed time from the context clock — the same source every timeout in
     the run uses, and the hook a virtual-time harness overrides. *)
  let clock = ctx.Sockets.Io_ctx.clock in
  let started = clock () in
  let senders = Exec.Pool.map ~jobs ~f:one (List.init flows Fun.id) in
  let elapsed_ns = clock () - started in
  (* Read the server side only after its domain(s) exited: snapshot and the
     invariant check walk live flow tables. A violated invariant also dumps
     the flight ring from inside [invariant_violations]. *)
  let engine_snapshot, invariants, server_totals, server_rollup =
    match server with
    | `Single (socket, poller, admin, engine, server_domain, _) ->
        Engine.stop engine;
        Domain.join server_domain;
        let snap = Engine.snapshot engine in
        let invariants = Engine.invariant_violations engine in
        Option.iter Admin.close admin;
        Sockets.Poller.close poller;
        Sockets.Udp.close socket;
        (snap, invariants, Engine.totals engine, Engine.rollup engine)
    | `Group group ->
        Shard_group.stop group;
        Shard_group.join group;
        ( Shard_group.snapshot group,
          Shard_group.invariant_violations group,
          Shard_group.totals group,
          Shard_group.rollup group )
  in
  let count outcome =
    List.length (List.filter (fun s -> s.outcome = outcome) senders)
  in
  let completed = count Protocol.Action.Success in
  let rejected = count Protocol.Action.Rejected in
  let failed = flows - completed - rejected in
  (* Millisecond latencies: 1 µs … 1000 s at ~24 buckets per decade. *)
  let latency_ms = Obs.Hist.create ~lo:1e-3 ~hi:1e6 ~bins:216 () in
  List.iter
    (fun s ->
      if s.outcome = Protocol.Action.Success then
        Obs.Hist.add latency_ms (float_of_int s.elapsed_ns /. 1e6))
    senders;
  let aggregate_mbit_s =
    if elapsed_ns <= 0 then 0.0
    else float_of_int (completed * bytes * 8) /. (float_of_int elapsed_ns /. 1e9) /. 1e6
  in
  (match metrics with
  | None -> ()
  | Some m ->
      let labels = [ ("side", "swarm") ] in
      Obs.Metrics.set_gauge (Obs.Metrics.gauge m ~labels "aggregate_mbit_s") aggregate_mbit_s;
      Obs.Metrics.set_gauge
        (Obs.Metrics.gauge m ~labels "completed")
        (float_of_int completed);
      let lat = Obs.Hist.snapshot latency_ms in
      if lat.Obs.Hist.count > 0 then begin
        Obs.Metrics.set_gauge (Obs.Metrics.gauge m ~labels "latency_ms_p50") lat.Obs.Hist.p50;
        Obs.Metrics.set_gauge (Obs.Metrics.gauge m ~labels "latency_ms_p99") lat.Obs.Hist.p99
      end);
  let report =
    {
      flows;
      jobs = Stdlib.min 64 (Stdlib.max 1 jobs);
      shards;
      bytes_per_flow = bytes;
      completed;
      rejected;
      failed;
      elapsed_ns;
      aggregate_mbit_s;
      latency_ms;
      senders;
      completions = List.rev !completions;
      server = server_totals;
      rollup = server_rollup;
      engine_snapshot;
      invariants;
    }
  in
  if invariants <> [] then
    Log.warn (fun f ->
        f "engine invariants violated: %s" (String.concat "; " invariants));
  Log.info (fun f -> f "%a" pp_report report);
  report
