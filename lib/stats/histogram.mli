(** Fixed-bin histograms over floats, with linear or logarithmic bin edges. *)

type t

val linear : lo:float -> hi:float -> bins:int -> t
(** [linear ~lo ~hi ~bins] covers [\[lo, hi)] with [bins] equal-width bins.
    Out-of-range observations are counted in underflow/overflow. Requires
    [hi > lo] and [bins > 0]. *)

val logarithmic : lo:float -> hi:float -> bins:int -> t
(** Same, with log-spaced edges. Requires [0 < lo < hi]. *)

val add : t -> float -> unit
val count : t -> int
(** Total observations, including under/overflow. *)

val bin_count : t -> int -> int
(** [bin_count t i] is the number of observations in bin [i]. *)

val bin_bounds : t -> int -> float * float
(** Lower (inclusive) and upper (exclusive) edge of bin [i]. *)

val bins : t -> int
val underflow : t -> int
val overflow : t -> int

val quantile : t -> float -> float
(** [quantile t q] approximates the [q]-quantile (0 <= q <= 1) from the binned
    counts by linear interpolation within the containing bin. Under/overflow
    observations clamp to the histogram range. [nan] when empty. *)

val pp : Format.formatter -> t -> unit
(** Renders a compact ASCII bar chart, one line per non-empty bin. *)
