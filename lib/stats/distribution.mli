(** Probability helpers for the paper's error analysis.

    All computations use log-space arithmetic where overflow or catastrophic
    cancellation would otherwise occur (the paper sweeps packet error rates
    down to 1e-7 over trains of hundreds of packets). *)

val exchange_failure_prob : packet_loss:float -> packets:int -> float
(** [exchange_failure_prob ~packet_loss ~packets] is
    [1 - (1 - packet_loss)^packets], the probability that at least one of
    [packets] independent transmissions fails — computed stably via expm1/log1p.
    This is the paper's [p_c]. *)

val geometric_mean : fail:float -> float
(** Expected number of failures before first success: [fail / (1 - fail)]. *)

val geometric_variance : fail:float -> float
(** Variance of the number of failures before first success:
    [fail / (1 - fail)^2]. *)

val geometric_pmf : fail:float -> int -> float
(** [geometric_pmf ~fail k] is the probability of exactly [k] failures before
    the first success. *)

val geometric_cdf : fail:float -> int -> float
(** Probability of at most [k] failures before the first success. *)

val binomial_pmf : n:int -> p:float -> int -> float
(** [binomial_pmf ~n ~p k]: probability of exactly [k] successes among [n]
    independent Bernoulli([p]) trials; computed in log space. *)

val binomial_mean : n:int -> p:float -> float

val log_choose : int -> int -> float
(** [log_choose n k] = log (n choose k), via lgamma. *)
