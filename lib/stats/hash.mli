(** Seeded integer hashing shared by deterministic placement decisions:
    memnet's shard steering and the ring's consistent-hash point space.

    All results are non-negative and depend only on the arguments — no
    global state, no wall clock — so any placement derived from them
    replays bit-for-bit. *)

val mix : int -> int
(** splitmix64-style avalanche of one int; non-negative. *)

val mix2 : seed:int -> int -> int -> int
(** Seeded avalanche of an (a, b) pair; order-sensitive, non-negative. *)

val steer : seed:int -> int -> int
(** [steer ~seed port] — the shard-steering hash: the deterministic
    stand-in for the kernel's SO_REUSEPORT 4-tuple hash, applied to a
    source port under a trial seed. Callers reduce it [mod shards]. *)
