type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64 }

(* splitmix64 is used only to expand the seed into the four xoshiro words; it
   guarantees a non-zero state for any seed. *)
let splitmix64_next state =
  let open Int64 in
  state := add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let create ~seed =
  let state = ref (Int64.of_int seed) in
  let s0 = splitmix64_next state in
  let s1 = splitmix64_next state in
  let s2 = splitmix64_next state in
  let s3 = splitmix64_next state in
  { s0; s1; s2; s3 }

let derive ~root ~index =
  if index < 0 then invalid_arg "Rng.derive: index must be non-negative";
  (* Finalize the root, fold the raw index into the result, and finalize
     again before expanding: both arguments go through a full splitmix64
     avalanche, so adjacent roots or adjacent indices land on unrelated
     xoshiro states. The naive [root * k + index] seeding this replaces
     made trial [i+1] of seed [s] collide with trial [i] of nearby seeds
     and kept derived states linearly related. *)
  let state = ref (Int64.of_int root) in
  let mixed_root = splitmix64_next state in
  let state = ref (Int64.logxor mixed_root (Int64.of_int index)) in
  let state = ref (splitmix64_next state) in
  let s0 = splitmix64_next state in
  let s1 = splitmix64_next state in
  let s2 = splitmix64_next state in
  let s3 = splitmix64_next state in
  { s0; s1; s2; s3 }

let rotl x k = Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

let bits64 t =
  let open Int64 in
  let result = mul (rotl (mul t.s1 5L) 7) 9L in
  let tmp = shift_left t.s1 17 in
  t.s2 <- logxor t.s2 t.s0;
  t.s3 <- logxor t.s3 t.s1;
  t.s1 <- logxor t.s1 t.s2;
  t.s0 <- logxor t.s0 t.s3;
  t.s2 <- logxor t.s2 tmp;
  t.s3 <- rotl t.s3 45;
  result

let copy t = { s0 = t.s0; s1 = t.s1; s2 = t.s2; s3 = t.s3 }

let split t =
  (* Derive a fresh seed from the parent stream and re-expand it; this is the
     standard splitmix-style split and keeps the two streams decorrelated. *)
  let seed = Int64.to_int (bits64 t) land max_int in
  create ~seed

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  let nonnegative = Int64.to_int (bits64 t) land max_int in
  nonnegative mod bound

let float t =
  (* 53 high-quality bits mapped to [0,1). *)
  let bits = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  bits *. (1.0 /. 9007199254740992.0)

let bool t = Int64.logand (bits64 t) 1L = 1L

let bernoulli t ~p =
  if not (p >= 0.0 && p <= 1.0) then invalid_arg "Rng.bernoulli: p outside [0,1]";
  float t < p

let geometric t ~p =
  if not (p > 0.0 && p <= 1.0) then invalid_arg "Rng.geometric: p outside (0,1]";
  if p = 1.0 then 0
  else
    let u = float t in
    (* Inverse CDF: failures = floor(log(1-u) / log(1-p)). *)
    let failures = Stdlib.log1p (-.u) /. Stdlib.log1p (-.p) in
    int_of_float failures

let exponential t ~mean =
  if not (mean > 0.0) then invalid_arg "Rng.exponential: mean must be positive";
  -.mean *. Stdlib.log1p (-.(float t))

let uniform_float t ~lo ~hi =
  if not (hi > lo) then invalid_arg "Rng.uniform_float: empty interval";
  lo +. ((hi -. lo) *. float t)

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
