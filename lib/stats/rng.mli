(** Deterministic, splittable pseudo-random number generator.

    The generator is xoshiro256** seeded through splitmix64, implemented from
    scratch so that every experiment in this repository is reproducible from a
    single integer seed, independent of the OCaml stdlib [Random] state. *)

type t

val create : seed:int -> t
(** [create ~seed] builds a generator from a 63-bit seed. Equal seeds yield
    equal streams. *)

val derive : root:int -> index:int -> t
(** [derive ~root ~index] builds the generator for task [index] of the
    experiment seeded by [root]. Both arguments pass through a full
    splitmix64 avalanche before the state is expanded, so streams derived
    from nearby roots or nearby indices are statistically independent —
    this is the one seeding rule every trial loop in the tree uses.
    [index] must be non-negative. *)

val split : t -> t
(** [split t] returns a new generator whose stream is statistically
    independent of [t]'s subsequent output. [t] is advanced. *)

val copy : t -> t
(** [copy t] duplicates the current state; both generators then produce the
    same stream. *)

val bits64 : t -> int64
(** Next raw 64 bits. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. [bound] must be positive. *)

val float : t -> float
(** Uniform in [\[0, 1)]. *)

val bool : t -> bool

val bernoulli : t -> p:float -> bool
(** [bernoulli t ~p] is [true] with probability [p]. Requires
    [0 <= p && p <= 1]. *)

val geometric : t -> p:float -> int
(** [geometric t ~p] samples the number of failures before the first success
    of a Bernoulli([p]) sequence; support is [0, 1, 2, ...]. Requires
    [0 < p <= 1]. *)

val exponential : t -> mean:float -> float
(** Exponential with the given mean. Requires [mean > 0]. *)

val uniform_float : t -> lo:float -> hi:float -> float
(** Uniform in [\[lo, hi)]. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)
