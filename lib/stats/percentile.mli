(** Exact quantiles over materialized samples. *)

val quantile : float array -> float -> float
(** [quantile xs q] is the [q]-quantile (0 <= q <= 1) of [xs] using linear
    interpolation between order statistics (type-7, the R default). The input
    array is not modified. Raises [Invalid_argument] on an empty array or
    [q] outside [0, 1]. *)

val median : float array -> float

val iqr : float array -> float
(** Interquartile range: q(0.75) - q(0.25). *)
