(* One seeded integer hash for every deterministic placement decision in
   the tree: memnet's shard steering (the stand-in for the kernel's
   SO_REUSEPORT 4-tuple hash) and the ring's consistent-hash point space.
   Both need the same properties — seeded, stable across runs and
   platforms, cheap, well-mixed — so they share one implementation
   instead of each growing a private formula. *)

(* splitmix64's finalizer, run in Int64 (the constants exceed the native
   63-bit range) and truncated back; the final mask keeps results
   non-negative so callers can [mod] freely. *)
let mix x =
  let open Int64 in
  let x = of_int x in
  let x = logxor x (shift_right_logical x 30) in
  let x = mul x 0xBF58476D1CE4E5B9L in
  let x = logxor x (shift_right_logical x 27) in
  let x = mul x 0x94D049BB133111EBL in
  let x = logxor x (shift_right_logical x 31) in
  to_int x land Stdlib.max_int

(* Seeded avalanche of two ints. The golden-ratio odd constants separate
   the argument lanes before mixing, so (a, b) and (b, a) land apart. *)
let mix2 ~seed a b = mix (seed lxor (a * 0x9E3779B1) lxor (mix (b * 0x85EBCA77)))

(* The shard-steering hash: which member of a sharded memnet port a source
   lands on. The formula is the historical DST one — multiplicative mix of
   the source port against the trial seed, high bits kept — preserved
   verbatim so existing sharded DST journals replay unchanged. *)
let steer ~seed port =
  let mixed = (port * 0x9E3779B1) lxor (seed * 0x85EBCA77) in
  (mixed lsr 11) land 0x3FFF_FFFF
