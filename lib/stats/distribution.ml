let exchange_failure_prob ~packet_loss ~packets =
  if not (packet_loss >= 0.0 && packet_loss <= 1.0) then
    invalid_arg "Distribution.exchange_failure_prob: loss outside [0,1]";
  if packets < 0 then invalid_arg "Distribution.exchange_failure_prob: negative packets";
  if packet_loss = 1.0 && packets > 0 then 1.0
  else -.Float.expm1 (float_of_int packets *. Float.log1p (-.packet_loss))

let check_fail fail =
  if not (fail >= 0.0 && fail < 1.0) then
    invalid_arg "Distribution: failure probability outside [0,1)"

let geometric_mean ~fail =
  check_fail fail;
  fail /. (1.0 -. fail)

let geometric_variance ~fail =
  check_fail fail;
  fail /. ((1.0 -. fail) *. (1.0 -. fail))

let geometric_pmf ~fail k =
  check_fail fail;
  if k < 0 then 0.0 else (fail ** float_of_int k) *. (1.0 -. fail)

let geometric_cdf ~fail k =
  check_fail fail;
  if k < 0 then 0.0 else -.Float.expm1 (float_of_int (k + 1) *. log fail)

(* Lanczos approximation (g = 7, 9 coefficients), ~1e-13 relative accuracy
   for the positive arguments log_choose uses. *)
let lanczos_coefficients =
  [|
    0.99999999999980993;
    676.5203681218851;
    -1259.1392167224028;
    771.32342877765313;
    -176.61502916214059;
    12.507343278686905;
    -0.13857109526572012;
    9.9843695780195716e-6;
    1.5056327351493116e-7;
  |]

let lgamma x =
  let z = x -. 1.0 in
  let acc = ref lanczos_coefficients.(0) in
  for i = 1 to 8 do
    acc := !acc +. (lanczos_coefficients.(i) /. (z +. float_of_int i))
  done;
  let t = z +. 7.5 in
  (0.5 *. log (2.0 *. Float.pi)) +. ((z +. 0.5) *. log t) -. t +. log !acc

let log_choose n k =
  if k < 0 || k > n then neg_infinity
  else if k = 0 || k = n then 0.0
  else
    lgamma (float_of_int (n + 1))
    -. lgamma (float_of_int (k + 1))
    -. lgamma (float_of_int (n - k + 1))

let binomial_pmf ~n ~p k =
  if not (p >= 0.0 && p <= 1.0) then invalid_arg "Distribution.binomial_pmf: p outside [0,1]";
  if k < 0 || k > n then 0.0
  else if p = 0.0 then if k = 0 then 1.0 else 0.0
  else if p = 1.0 then if k = n then 1.0 else 0.0
  else
    exp
      (log_choose n k
      +. (float_of_int k *. log p)
      +. (float_of_int (n - k) *. Float.log1p (-.p)))

let binomial_mean ~n ~p = float_of_int n *. p
