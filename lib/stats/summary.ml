type t = {
  mutable count : int;
  mutable mean : float;
  mutable m2 : float;
  mutable min : float;
  mutable max : float;
  mutable total : float;
}

let create () =
  { count = 0; mean = 0.0; m2 = 0.0; min = infinity; max = neg_infinity; total = 0.0 }

let add t x =
  t.count <- t.count + 1;
  let delta = x -. t.mean in
  t.mean <- t.mean +. (delta /. float_of_int t.count);
  t.m2 <- t.m2 +. (delta *. (x -. t.mean));
  if x < t.min then t.min <- x;
  if x > t.max then t.max <- x;
  t.total <- t.total +. x

let add_seq t seq = Seq.iter (add t) seq

let of_array xs =
  let t = create () in
  Array.iter (add t) xs;
  t

let count t = t.count
let mean t = if t.count = 0 then nan else t.mean
let variance t = if t.count < 2 then nan else t.m2 /. float_of_int (t.count - 1)
let stddev t = sqrt (variance t)
let min t = if t.count = 0 then nan else t.min
let max t = if t.count = 0 then nan else t.max
let total t = t.total

let merge a b =
  if a.count = 0 then { b with count = b.count }
  else if b.count = 0 then { a with count = a.count }
  else
    let count = a.count + b.count in
    let na = float_of_int a.count and nb = float_of_int b.count in
    let delta = b.mean -. a.mean in
    let mean = a.mean +. (delta *. nb /. float_of_int count) in
    let m2 = a.m2 +. b.m2 +. (delta *. delta *. na *. nb /. float_of_int count) in
    {
      count;
      mean;
      m2;
      min = Stdlib.min a.min b.min;
      max = Stdlib.max a.max b.max;
      total = a.total +. b.total;
    }

let ci95_halfwidth t =
  if t.count < 2 then nan else 1.96 *. stddev t /. sqrt (float_of_int t.count)

let pp ppf t =
  Format.fprintf ppf "n=%d mean=%.6g sd=%.6g min=%.6g max=%.6g" t.count (mean t)
    (stddev t) (min t) (max t)
