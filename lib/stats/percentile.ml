let quantile xs q =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Percentile.quantile: empty sample";
  if not (q >= 0.0 && q <= 1.0) then invalid_arg "Percentile.quantile: q outside [0,1]";
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  let h = q *. float_of_int (n - 1) in
  let lo = int_of_float (floor h) in
  let hi = Stdlib.min (n - 1) (lo + 1) in
  let frac = h -. float_of_int lo in
  sorted.(lo) +. (frac *. (sorted.(hi) -. sorted.(lo)))

let median xs = quantile xs 0.5
let iqr xs = quantile xs 0.75 -. quantile xs 0.25
