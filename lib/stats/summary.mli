(** Streaming descriptive statistics (Welford's online algorithm).

    Numerically stable single-pass mean/variance, plus min/max and merge, so
    trial campaigns can be aggregated across independent runs. *)

type t

val create : unit -> t

val add : t -> float -> unit
(** [add t x] folds one observation into the summary. *)

val add_seq : t -> float Seq.t -> unit

val of_array : float array -> t

val count : t -> int
val mean : t -> float
(** Mean of the observations; [nan] when empty. *)

val variance : t -> float
(** Unbiased sample variance (divides by n-1); [nan] when [count < 2]. *)

val stddev : t -> float
val min : t -> float
val max : t -> float
val total : t -> float

val merge : t -> t -> t
(** [merge a b] is the summary of the union of both observation streams
    (Chan's parallel update). Inputs are unchanged. *)

val ci95_halfwidth : t -> float
(** Half-width of the normal-approximation 95% confidence interval of the
    mean: [1.96 * stddev / sqrt count]. [nan] when [count < 2]. *)

val pp : Format.formatter -> t -> unit
