type scale = Linear | Log

type t = {
  scale : scale;
  lo : float;
  hi : float;
  counts : int array;
  mutable underflow : int;
  mutable overflow : int;
  mutable total : int;
}

let linear ~lo ~hi ~bins =
  if not (hi > lo) then invalid_arg "Histogram.linear: empty range";
  if bins <= 0 then invalid_arg "Histogram.linear: bins must be positive";
  { scale = Linear; lo; hi; counts = Array.make bins 0; underflow = 0; overflow = 0; total = 0 }

let logarithmic ~lo ~hi ~bins =
  if not (lo > 0.0 && hi > lo) then invalid_arg "Histogram.logarithmic: need 0 < lo < hi";
  if bins <= 0 then invalid_arg "Histogram.logarithmic: bins must be positive";
  { scale = Log; lo; hi; counts = Array.make bins 0; underflow = 0; overflow = 0; total = 0 }

let bins t = Array.length t.counts

let position t x =
  match t.scale with
  | Linear -> (x -. t.lo) /. (t.hi -. t.lo)
  | Log -> (log x -. log t.lo) /. (log t.hi -. log t.lo)

let edge t frac =
  match t.scale with
  | Linear -> t.lo +. (frac *. (t.hi -. t.lo))
  | Log -> exp (log t.lo +. (frac *. (log t.hi -. log t.lo)))

let add t x =
  t.total <- t.total + 1;
  if x < t.lo || (t.scale = Log && x <= 0.0) then t.underflow <- t.underflow + 1
  else if x >= t.hi then t.overflow <- t.overflow + 1
  else begin
    let i = int_of_float (position t x *. float_of_int (bins t)) in
    let i = Stdlib.min (bins t - 1) (Stdlib.max 0 i) in
    t.counts.(i) <- t.counts.(i) + 1
  end

let count t = t.total
let bin_count t i = t.counts.(i)
let underflow t = t.underflow
let overflow t = t.overflow

let bin_bounds t i =
  let n = float_of_int (bins t) in
  (edge t (float_of_int i /. n), edge t (float_of_int (i + 1) /. n))

let quantile t q =
  if not (q >= 0.0 && q <= 1.0) then invalid_arg "Histogram.quantile: q outside [0,1]";
  if t.total = 0 then nan
  else begin
    let target = q *. float_of_int t.total in
    let acc = ref (float_of_int t.underflow) in
    let result = ref t.hi in
    (try
       if !acc >= target then begin
         result := t.lo;
         raise Exit
       end;
       for i = 0 to bins t - 1 do
         let c = float_of_int t.counts.(i) in
         if !acc +. c >= target && c > 0.0 then begin
           let lo, hi = bin_bounds t i in
           let frac = (target -. !acc) /. c in
           result := lo +. (frac *. (hi -. lo));
           raise Exit
         end;
         acc := !acc +. c
       done
     with Exit -> ());
    !result
  end

let pp ppf t =
  let max_count = Array.fold_left Stdlib.max 1 t.counts in
  Format.fprintf ppf "@[<v>";
  Array.iteri
    (fun i c ->
      if c > 0 then begin
        let lo, hi = bin_bounds t i in
        let width = c * 40 / max_count in
        Format.fprintf ppf "[%10.4g, %10.4g) %6d %s@," lo hi c (String.make width '#')
      end)
    t.counts;
  if t.underflow > 0 then Format.fprintf ppf "underflow %d@," t.underflow;
  if t.overflow > 0 then Format.fprintf ppf "overflow %d@," t.overflow;
  Format.fprintf ppf "@]"
