type terminal = Done | Failed | Rejected | Superseded

type event =
  | Admitted
  | First_data
  | Round
  | Verify
  | Terminal of terminal

type record = { flow : string; event : event; ts_ns : int }
type t = { mutable rev : record list; lock : Mutex.t }

let create () = { rev = []; lock = Mutex.create () }

let record t ~flow event ~now =
  Mutex.lock t.lock;
  t.rev <- { flow; event; ts_ns = now } :: t.rev;
  Mutex.unlock t.lock

let records t =
  Mutex.lock t.lock;
  let r = t.rev in
  Mutex.unlock t.lock;
  List.rev r

let terminal_name = function
  | Done -> "done"
  | Failed -> "failed"
  | Rejected -> "rejected"
  | Superseded -> "superseded"

let event_name = function
  | Admitted -> "admitted"
  | First_data -> "first-data"
  | Round -> "round"
  | Verify -> "verify"
  | Terminal t -> terminal_name t

(* Group records by flow, preserving first-appearance order of flows and
   recording order within each flow. *)
let by_flow t =
  let tbl = Hashtbl.create 64 in
  let order = ref [] in
  List.iter
    (fun r ->
      match Hashtbl.find_opt tbl r.flow with
      | Some rev -> Hashtbl.replace tbl r.flow (r :: rev)
      | None ->
          Hashtbl.add tbl r.flow [ r ];
          order := r.flow :: !order)
    (records t);
  List.rev_map (fun flow -> (flow, List.rev (Hashtbl.find tbl flow))) !order
  |> List.rev

let spans t =
  let span lane kind start_ns end_ns =
    { Span.lane; kind; start_ns; dur_ns = max 0 (end_ns - start_ns) }
  in
  let instant lane kind ts = span lane kind ts ts in
  List.concat_map
    (fun (flow, recs) ->
      let ts_of ev =
        List.find_map
          (fun r -> if r.event = ev then Some r.ts_ns else None)
          recs
      in
      let first = (List.hd recs).ts_ns in
      let last = (List.nth recs (List.length recs - 1)).ts_ns in
      let outer = span flow "flow" first last in
      let phases =
        match (ts_of Admitted, ts_of First_data) with
        | Some adm, Some fd ->
            [ span flow "handshake" adm fd; span flow "blast" fd last ]
        | Some adm, None -> [ span flow "handshake" adm last ]
        | None, _ -> []
      in
      let instants =
        List.filter_map
          (fun r ->
            match r.event with
            | Admitted | First_data -> None
            | (Round | Verify | Terminal _) as ev ->
                Some (instant flow (event_name ev) r.ts_ns))
          recs
      in
      (outer :: phases) @ instants)
    (by_flow t)

let validate t =
  let problems = ref [] in
  let problem fmt = Printf.ksprintf (fun s -> problems := s :: !problems) fmt in
  List.iter
    (fun (flow, recs) ->
      let terminals =
        List.filter (fun r -> match r.event with Terminal _ -> true | _ -> false) recs
      in
      (match terminals with
      | [] -> problem "flow %s has no terminal state" flow
      | [ _ ] -> ()
      | many -> problem "flow %s has %d terminal states" flow (List.length many));
      (match recs with
      | { event = Admitted; _ } :: _ -> ()
      | [ { event = Terminal Rejected; _ } ] -> ()
      | _ -> problem "flow %s does not start with admitted" flow);
      let rec check_order prev_ts terminated = function
        | [] -> ()
        | r :: rest ->
            if terminated then
              problem "flow %s has %s after a terminal state" flow
                (event_name r.event);
            if r.ts_ns < prev_ts then
              problem "flow %s timestamps go backwards at %s" flow
                (event_name r.event);
            let terminated =
              terminated || match r.event with Terminal _ -> true | _ -> false
            in
            check_order r.ts_ns terminated rest
      in
      check_order min_int false recs)
    (by_flow t);
  List.rev !problems

let record_to_json r =
  Json.Obj
    [
      ("flow", Json.String r.flow);
      ("ev", Json.String (event_name r.event));
      ("ts", Json.Int r.ts_ns);
    ]

let to_jsonl t =
  let buf = Buffer.create 1024 in
  List.iter
    (fun r ->
      Json.to_buffer buf (record_to_json r);
      Buffer.add_char buf '\n')
    (records t);
  Buffer.contents buf

let to_json t = Json.List (List.map record_to_json (records t))
