type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ---------------------------------------------------------------- writer *)

let escape_to buffer s =
  Buffer.add_char buffer '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buffer "\\\""
      | '\\' -> Buffer.add_string buffer "\\\\"
      | '\n' -> Buffer.add_string buffer "\\n"
      | '\r' -> Buffer.add_string buffer "\\r"
      | '\t' -> Buffer.add_string buffer "\\t"
      | '\b' -> Buffer.add_string buffer "\\b"
      | '\012' -> Buffer.add_string buffer "\\f"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buffer (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buffer c)
    s;
  Buffer.add_char buffer '"'

let float_to_string f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else
    (* Shortest representation that round-trips. *)
    let s = Printf.sprintf "%.15g" f in
    if float_of_string s = f then s else Printf.sprintf "%.17g" f

let rec to_buffer buffer = function
  | Null -> Buffer.add_string buffer "null"
  | Bool b -> Buffer.add_string buffer (if b then "true" else "false")
  | Int n -> Buffer.add_string buffer (string_of_int n)
  | Float f ->
      if Float.is_finite f then Buffer.add_string buffer (float_to_string f)
      else Buffer.add_string buffer "null"
  | String s -> escape_to buffer s
  | List items ->
      Buffer.add_char buffer '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buffer ',';
          to_buffer buffer item)
        items;
      Buffer.add_char buffer ']'
  | Obj fields ->
      Buffer.add_char buffer '{';
      List.iteri
        (fun i (key, value) ->
          if i > 0 then Buffer.add_char buffer ',';
          escape_to buffer key;
          Buffer.add_char buffer ':';
          to_buffer buffer value)
        fields;
      Buffer.add_char buffer '}'

let to_string t =
  let buffer = Buffer.create 256 in
  to_buffer buffer t;
  Buffer.contents buffer

(* ---------------------------------------------------------------- parser *)

exception Fail of string

type cursor = { text : string; mutable pos : int }

let fail cursor fmt =
  Printf.ksprintf (fun m -> raise (Fail (Printf.sprintf "at %d: %s" cursor.pos m))) fmt

let peek cursor = if cursor.pos < String.length cursor.text then Some cursor.text.[cursor.pos] else None

let advance cursor = cursor.pos <- cursor.pos + 1

let skip_ws cursor =
  let rec loop () =
    match peek cursor with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance cursor;
        loop ()
    | _ -> ()
  in
  loop ()

let expect cursor c =
  match peek cursor with
  | Some got when got = c -> advance cursor
  | Some got -> fail cursor "expected %c, found %c" c got
  | None -> fail cursor "expected %c, found end of input" c

let literal cursor word value =
  let n = String.length word in
  if
    cursor.pos + n <= String.length cursor.text
    && String.sub cursor.text cursor.pos n = word
  then begin
    cursor.pos <- cursor.pos + n;
    value
  end
  else fail cursor "invalid literal"

(* UTF-8 encode one code point (the \uXXXX path). *)
let add_utf8 buffer cp =
  if cp < 0x80 then Buffer.add_char buffer (Char.chr cp)
  else if cp < 0x800 then begin
    Buffer.add_char buffer (Char.chr (0xC0 lor (cp lsr 6)));
    Buffer.add_char buffer (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else if cp < 0x10000 then begin
    Buffer.add_char buffer (Char.chr (0xE0 lor (cp lsr 12)));
    Buffer.add_char buffer (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buffer (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else begin
    Buffer.add_char buffer (Char.chr (0xF0 lor (cp lsr 18)));
    Buffer.add_char buffer (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
    Buffer.add_char buffer (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buffer (Char.chr (0x80 lor (cp land 0x3F)))
  end

let hex4 cursor =
  let code = ref 0 in
  for _ = 1 to 4 do
    let digit =
      match peek cursor with
      | Some ('0' .. '9' as c) -> Char.code c - Char.code '0'
      | Some ('a' .. 'f' as c) -> Char.code c - Char.code 'a' + 10
      | Some ('A' .. 'F' as c) -> Char.code c - Char.code 'A' + 10
      | _ -> fail cursor "invalid \\u escape"
    in
    advance cursor;
    code := (!code * 16) + digit
  done;
  !code

let parse_string cursor =
  expect cursor '"';
  let buffer = Buffer.create 16 in
  let rec loop () =
    match peek cursor with
    | None -> fail cursor "unterminated string"
    | Some '"' -> advance cursor
    | Some '\\' -> begin
        advance cursor;
        (match peek cursor with
        | Some '"' -> advance cursor; Buffer.add_char buffer '"'
        | Some '\\' -> advance cursor; Buffer.add_char buffer '\\'
        | Some '/' -> advance cursor; Buffer.add_char buffer '/'
        | Some 'n' -> advance cursor; Buffer.add_char buffer '\n'
        | Some 't' -> advance cursor; Buffer.add_char buffer '\t'
        | Some 'r' -> advance cursor; Buffer.add_char buffer '\r'
        | Some 'b' -> advance cursor; Buffer.add_char buffer '\b'
        | Some 'f' -> advance cursor; Buffer.add_char buffer '\012'
        | Some 'u' ->
            advance cursor;
            let cp = hex4 cursor in
            let cp =
              (* A high surrogate must be followed by \u of the low half. *)
              if cp >= 0xD800 && cp <= 0xDBFF then begin
                expect cursor '\\';
                expect cursor 'u';
                let low = hex4 cursor in
                if low < 0xDC00 || low > 0xDFFF then fail cursor "invalid surrogate pair";
                0x10000 + ((cp - 0xD800) lsl 10) + (low - 0xDC00)
              end
              else cp
            in
            add_utf8 buffer cp
        | _ -> fail cursor "invalid escape");
        loop ()
      end
    | Some c when Char.code c < 0x20 -> fail cursor "raw control character in string"
    | Some c ->
        advance cursor;
        Buffer.add_char buffer c;
        loop ()
  in
  loop ();
  Buffer.contents buffer

let parse_number cursor =
  let start = cursor.pos in
  let integral = ref true in
  let consume () = advance cursor in
  (match peek cursor with Some '-' -> consume () | _ -> ());
  let rec digits () =
    match peek cursor with
    | Some '0' .. '9' ->
        consume ();
        digits ()
    | _ -> ()
  in
  digits ();
  (match peek cursor with
  | Some '.' ->
      integral := false;
      consume ();
      digits ()
  | _ -> ());
  (match peek cursor with
  | Some ('e' | 'E') ->
      integral := false;
      consume ();
      (match peek cursor with Some ('+' | '-') -> consume () | _ -> ());
      digits ()
  | _ -> ());
  let token = String.sub cursor.text start (cursor.pos - start) in
  if !integral then
    match int_of_string_opt token with
    | Some n -> Int n
    | None -> (
        match float_of_string_opt token with
        | Some f -> Float f
        | None -> fail cursor "invalid number %S" token)
  else
    match float_of_string_opt token with
    | Some f -> Float f
    | None -> fail cursor "invalid number %S" token

let rec parse_value cursor =
  skip_ws cursor;
  match peek cursor with
  | None -> fail cursor "unexpected end of input"
  | Some 'n' -> literal cursor "null" Null
  | Some 't' -> literal cursor "true" (Bool true)
  | Some 'f' -> literal cursor "false" (Bool false)
  | Some '"' -> String (parse_string cursor)
  | Some ('-' | '0' .. '9') -> parse_number cursor
  | Some '[' ->
      advance cursor;
      skip_ws cursor;
      if peek cursor = Some ']' then begin
        advance cursor;
        List []
      end
      else begin
        let items = ref [ parse_value cursor ] in
        let rec loop () =
          skip_ws cursor;
          match peek cursor with
          | Some ',' ->
              advance cursor;
              items := parse_value cursor :: !items;
              loop ()
          | Some ']' -> advance cursor
          | _ -> fail cursor "expected , or ] in array"
        in
        loop ();
        List (List.rev !items)
      end
  | Some '{' ->
      advance cursor;
      skip_ws cursor;
      if peek cursor = Some '}' then begin
        advance cursor;
        Obj []
      end
      else begin
        let field () =
          skip_ws cursor;
          let key = parse_string cursor in
          skip_ws cursor;
          expect cursor ':';
          (key, parse_value cursor)
        in
        let fields = ref [ field () ] in
        let rec loop () =
          skip_ws cursor;
          match peek cursor with
          | Some ',' ->
              advance cursor;
              fields := field () :: !fields;
              loop ()
          | Some '}' -> advance cursor
          | _ -> fail cursor "expected , or } in object"
        in
        loop ();
        Obj (List.rev !fields)
      end
  | Some c -> fail cursor "unexpected character %c" c

let parse text =
  let cursor = { text; pos = 0 } in
  match parse_value cursor with
  | value ->
      skip_ws cursor;
      if cursor.pos = String.length text then Ok value
      else Error (Printf.sprintf "trailing characters at %d" cursor.pos)
  | exception Fail message -> Error message

(* ------------------------------------------------------------- accessors *)

let member key = function Obj fields -> List.assoc_opt key fields | _ -> None

let to_int = function
  | Int n -> Some n
  | Float f when Float.is_integer f -> Some (int_of_float f)
  | _ -> None

let to_float = function Float f -> Some f | Int n -> Some (float_of_int n) | _ -> None
let to_str = function String s -> Some s | _ -> None
let to_list = function List items -> Some items | _ -> None
