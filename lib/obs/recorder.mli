(** Flight recorder: a bounded, thread-safe ring of datagram events.

    A recorder keeps the last [capacity] events (default 4096) of a transfer
    in memory for near-zero cost, timestamps them from a pluggable clock
    (simulation time or [CLOCK_MONOTONIC]), and normalizes timestamps to the
    first recorded event so journals from both transports start near zero.
    On a failure outcome the transports call {!postmortem}, which dumps the
    ring as JSONL — to the configured path, or to a fresh temp file —
    so "what were the last N datagrams doing" survives the crash site. *)

type t

val create : ?capacity:int -> ?now:(unit -> int) -> ?postmortem:string -> unit -> t
(** [capacity] must be positive (default 4096). [now] supplies raw
    timestamps in nanoseconds; the default is a logical tick counter, and
    transports install their own clock via {!set_clock}. [postmortem] is the
    JSONL path {!postmortem} dumps to; without it a temp file is created on
    demand. *)

val set_clock : t -> (unit -> int) -> unit
(** Installs the timestamp source. The simulator points this at [Sim.now];
    the UDP peer at the monotonic-clock stub. Idempotent per transport. *)

val set_postmortem : t -> string -> unit

val emit :
  t -> lane:string -> kind:Event.kind -> ?detail:string -> ?seq:int -> unit -> unit
(** Stamps and records one event, overwriting the oldest when full. *)

val record : t -> Event.t -> unit
(** Records a pre-stamped event verbatim (no clock, no normalization). *)

val events : t -> Event.t list
(** Oldest to newest; at most [capacity] of them. *)

val total : t -> int
(** All-time count, including events the ring has already overwritten. *)

val capacity : t -> int
val clear : t -> unit

val postmortem : t -> reason:string -> string option
(** Dumps the ring as JSONL — a meta line
    [{"postmortem":reason,"dropped":n}] followed by one event per line — and
    returns the path written, or [None] when the ring is empty. Also logs
    the path at warning level so an aborted CLI run points at its journal. *)
