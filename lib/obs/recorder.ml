let log = Logs.Src.create "obs.recorder" ~doc:"telemetry flight recorder"

module Log = (val Logs.src_log log : Logs.LOG)

type t = {
  ring : Event.t option array;
  mutable next : int;  (** next write slot *)
  mutable total : int;
  mutable clock : unit -> int;
  mutable origin : int option;  (** raw timestamp of the first event *)
  mutable postmortem_path : string option;
  lock : Mutex.t;
}

let default_clock () =
  (* A logical tick counter: still monotone, so journals recorded without a
     real clock keep their ordering. Atomic because [emit] samples the clock
     outside the ring lock, and recorders are now shared across domains. *)
  let ticks = Atomic.make 0 in
  fun () -> Atomic.fetch_and_add ticks 1 + 1

let create ?(capacity = 4096) ?now ?postmortem () =
  if capacity <= 0 then invalid_arg "Recorder.create: capacity must be positive";
  {
    ring = Array.make capacity None;
    next = 0;
    total = 0;
    clock = (match now with Some f -> f | None -> default_clock ());
    origin = None;
    postmortem_path = postmortem;
    lock = Mutex.create ();
  }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let set_clock t now = t.clock <- now
let set_postmortem t path = t.postmortem_path <- Some path
let capacity t = Array.length t.ring

let record t event =
  locked t (fun () ->
      t.ring.(t.next) <- Some event;
      t.next <- (t.next + 1) mod Array.length t.ring;
      t.total <- t.total + 1)

let emit t ~lane ~kind ?detail ?seq () =
  let raw = t.clock () in
  locked t (fun () ->
      let origin =
        match t.origin with
        | Some o -> o
        | None ->
            t.origin <- Some raw;
            raw
      in
      (* The clock is monotone on both transports, but normalize defensively:
         the journal contract is non-negative timestamps. *)
      let ts_ns = max 0 (raw - origin) in
      t.ring.(t.next) <- Some (Event.make ~ts_ns ~lane ~kind ?detail ?seq ());
      t.next <- (t.next + 1) mod Array.length t.ring;
      t.total <- t.total + 1)

let events t =
  locked t (fun () ->
      let n = Array.length t.ring in
      let kept = min t.total n in
      let oldest = (t.next - kept + n) mod n in
      List.init kept (fun i ->
          match t.ring.((oldest + i) mod n) with
          | Some e -> e
          | None -> assert false))

let total t = locked t (fun () -> t.total)

let clear t =
  locked t (fun () ->
      Array.fill t.ring 0 (Array.length t.ring) None;
      t.next <- 0;
      t.total <- 0;
      t.origin <- None)

let postmortem t ~reason =
  let recorded = events t in
  if recorded = [] then None
  else begin
    let path =
      match t.postmortem_path with
      | Some p -> p
      | None -> Filename.temp_file "lanrepro-flight" ".jsonl"
    in
    let dropped = total t - List.length recorded in
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () ->
        output_string oc
          (Json.to_string
             (Json.Obj [ ("postmortem", Json.String reason); ("dropped", Json.Int dropped) ]));
        output_char oc '\n';
        List.iter
          (fun event ->
            output_string oc (Json.to_string (Event.to_json event));
            output_char oc '\n')
          recorded);
    Log.warn (fun f ->
        f "flight recorder: %d events dumped to %s (%s)" (List.length recorded) path reason);
    Some path
  end
