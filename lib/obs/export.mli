(** Exporters: JSONL event journals and Chrome [trace_event] JSON.

    The JSONL journal is one {!Event} object per line and round-trips
    exactly ({!events_of_jsonl} is the inverse of {!jsonl_of_events}); lines
    that are valid JSON but not events — such as the flight recorder's
    postmortem meta line — are skipped on read. The Chrome exporter emits
    the [trace_event] format that Perfetto and [chrome://tracing] load
    directly: spans as ["ph":"X"] complete events, journal events as
    ["ph":"i"] instants, one thread per lane, microsecond timestamps sorted
    ascending. *)

val jsonl_of_events : Event.t list -> string
val events_of_jsonl : string -> (Event.t list, string) result
(** Fails on the first malformed line; skips blank and non-event lines. *)

val write_jsonl : string -> Event.t list -> unit
val read_jsonl_file : string -> (Event.t list, string) result

val chrome : ?spans:Span.t list -> ?events:Event.t list -> unit -> Json.t
(** [{"traceEvents":[…],"displayTimeUnit":"ms"}]. Instants carry their
    journal [detail]/[seq] in ["args"], so event categories remain countable
    in the exported file (the acceptance check that retransmit/fault counts
    match the transfer's counters greps exactly this). *)

val chrome_string : ?spans:Span.t list -> ?events:Event.t list -> unit -> string
val write_chrome : string -> ?spans:Span.t list -> ?events:Event.t list -> unit -> unit
