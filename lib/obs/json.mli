(** Minimal self-contained JSON tree, writer and parser.

    The repository deliberately has no third-party JSON dependency, so the
    telemetry exporters (JSONL event journals, Chrome [trace_event] files)
    carry their own small implementation. The writer emits strictly valid
    JSON (non-finite floats become [null]); the parser accepts everything the
    writer produces plus ordinary interchange JSON, which is enough to
    round-trip journals and to validate exported traces in tests. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_buffer : Buffer.t -> t -> unit
val to_string : t -> string

val parse : string -> (t, string) result
(** Parses one JSON value; trailing non-whitespace is an error. Numbers
    without fraction or exponent become [Int], all others [Float]. *)

val member : string -> t -> t option
(** Field lookup in an [Obj]; [None] on missing field or non-object. *)

val to_int : t -> int option
(** [Int n], or a [Float] with an exact integer value. *)

val to_float : t -> float option
(** [Float] or [Int]. *)

val to_str : t -> string option
val to_list : t -> t list option
