(** Per-endpoint instrumentation shim between a transport and a recorder.

    A probe owns the endpoint's lane name and watches its
    {!Protocol.Counters.t} so that the events it emits agree {e exactly} with
    the counter record: a data [Send] is classified [Retransmit] precisely
    when the machine bumped [retransmitted_data] for it, and [Duplicate]
    events mirror [duplicates_received]. Every operation is a no-op when no
    recorder is attached, so the instrumented hot paths cost one branch. *)

type t

val create : ?recorder:Recorder.t -> lane:string -> counters:Protocol.Counters.t -> unit -> t
val enabled : t -> bool
val recorder : t -> Recorder.t option

val tx : t -> Packet.Message.t -> unit
(** Call on each executed [Send]. Emits [Tx], or [Retransmit] for a data
    packet the machine accounted as a retransmission. *)

val rx : t -> Packet.Message.t -> unit
(** Call when a decoded datagram arrives, before the machine handles it. *)

val handled : t -> Packet.Message.t -> unit
(** Call after the machine handled an incoming message; emits [Duplicate]
    if the machine classified it as one. *)

val timeout : t -> ?detail:string -> unit -> unit
val deliver : t -> seq:int -> unit
val complete : t -> Protocol.Action.outcome -> unit
val drop : t -> [ `Tx | `Rx ] -> unit
val reject : t -> Packet.Codec.error -> unit
(** Emits [Corrupt_reject] for checksum/CRC failures, [Garbage] otherwise —
    the same split the counters use. *)

val fault : t -> string -> unit
(** Target for {!Faults.Netem.set_observer}: one injected fault, by name. *)

val postmortem : t -> reason:string -> string option
(** Delegates to the recorder; [None] when disabled or empty. *)
