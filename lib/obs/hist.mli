(** Mergeable log-bucketed histogram for hot-path latency/size tracking.

    Buckets are geometrically spaced between [lo] and [hi] (defaults cover
    100 ns … 1000 s at ~24 buckets per decade, ≤ ~10% quantile error),
    with exact min/max/sum kept alongside so the tail quantile and the mean
    never suffer bucket rounding at the extremes. Every operation takes the
    instance mutex, so one histogram may be fed from several domains
    (engine shards roll up via {!merge}). Unlike {!Stats.Summary} this
    reports p50/p90/p99 rather than mean-only, and unlike
    {!Stats.Histogram} it is self-locking and mergeable. *)

type t

val create : ?lo:float -> ?hi:float -> ?bins:int -> unit -> t
(** Geometric bucket grid over [\[lo, hi)]. Requires [0 < lo < hi] and
    [bins > 0]; defaults [lo = 100.], [hi = 1e12], [bins = 240] — sized
    for nanosecond durations. Values below [lo] (or non-positive) land in
    an underflow bucket pinned at [lo]; values at or above [hi] land in an
    overflow bucket pinned at the exact observed max. *)

val add : t -> float -> unit
(** Records one observation. NaN is ignored. *)

val count : t -> int
val min_value : t -> float
(** Exact smallest observation; [nan] when empty. *)

val max_value : t -> float
(** Exact largest observation; [nan] when empty. *)

val sum : t -> float
val mean : t -> float
(** [nan] when empty. *)

val quantile : t -> float -> float
(** [quantile t q] for [0 <= q <= 1], interpolated within the bucket grid
    and clamped to the exact observed [\[min, max\]]. [nan] when empty;
    [Invalid_argument] outside [\[0, 1\]]. *)

val merge : into:t -> t -> unit
(** Adds every bucket and the exact min/max/sum of the second histogram
    into [into] (the source is unchanged). Both histograms must share the
    same [(lo, hi, bins)] geometry — [Invalid_argument] otherwise. Safe
    against concurrent {!add} on either side. *)

type summary = {
  count : int;
  p50 : float;
  p90 : float;
  p99 : float;
  max : float;
  mean : float;
}

val snapshot : t -> summary
(** One consistent read under a single lock acquisition. Quantile fields
    are [nan] when empty. *)

val summary_to_json : summary -> Json.t
(** [{"count":…,"p50":…,"p90":…,"p99":…,"max":…,"mean":…}] — non-finite
    fields serialize as [null] (the {!Json} writer's rule). *)

val to_json : t -> Json.t
(** [summary_to_json (snapshot t)]. *)

val pp : Format.formatter -> t -> unit
(** [n=… p50=… p90=… p99=… max=…] — for report lines. *)
