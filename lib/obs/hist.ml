type t = {
  lo : float;
  hi : float;
  bins : int;
  log_lo : float;
  log_span : float; (* log (hi /. lo) *)
  counts : int array;
  mutable underflow : int;
  mutable overflow : int;
  mutable total : int;
  mutable min_v : float;
  mutable max_v : float;
  mutable sum_v : float;
  lock : Mutex.t;
}

let create ?(lo = 100.) ?(hi = 1e12) ?(bins = 240) () =
  if not (lo > 0. && hi > lo) then invalid_arg "Hist.create: need 0 < lo < hi";
  if bins <= 0 then invalid_arg "Hist.create: bins must be positive";
  {
    lo;
    hi;
    bins;
    log_lo = log lo;
    log_span = log (hi /. lo);
    counts = Array.make bins 0;
    underflow = 0;
    overflow = 0;
    total = 0;
    min_v = infinity;
    max_v = neg_infinity;
    sum_v = 0.;
    lock = Mutex.create ();
  }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let bucket_index t v =
  let i =
    int_of_float (float_of_int t.bins *. ((log v -. t.log_lo) /. t.log_span))
  in
  if i < 0 then 0 else if i >= t.bins then t.bins - 1 else i

(* Upper edge of bucket [i]; bucket [i] covers [edge (i-1), edge i). *)
let bucket_edge t i = t.lo *. exp (t.log_span *. (float_of_int (i + 1) /. float_of_int t.bins))

let add t v =
  if not (Float.is_nan v) then
    locked t (fun () ->
        t.total <- t.total + 1;
        t.sum_v <- t.sum_v +. v;
        if v < t.min_v then t.min_v <- v;
        if v > t.max_v then t.max_v <- v;
        if v < t.lo then t.underflow <- t.underflow + 1
        else if v >= t.hi then t.overflow <- t.overflow + 1
        else
          let i = bucket_index t v in
          t.counts.(i) <- t.counts.(i) + 1)

let count t = locked t (fun () -> t.total)
let min_value t = locked t (fun () -> if t.total = 0 then nan else t.min_v)
let max_value t = locked t (fun () -> if t.total = 0 then nan else t.max_v)
let sum t = locked t (fun () -> t.sum_v)

let mean t =
  locked t (fun () ->
      if t.total = 0 then nan else t.sum_v /. float_of_int t.total)

(* Caller holds the lock. Walk the cumulative distribution — underflow,
   then the geometric grid, then overflow — and interpolate inside the
   target bucket; clamp to the exact observed extremes so p0/p100 (and any
   quantile that lands in the under/overflow buckets) stay honest. *)
let quantile_locked t q =
  if t.total = 0 then nan
  else
    let clamp v = Float.max t.min_v (Float.min t.max_v v) in
    let target = q *. float_of_int t.total in
    let acc = ref (float_of_int t.underflow) in
    if !acc >= target then clamp t.lo
    else begin
      let result = ref nan in
      (try
         for i = 0 to t.bins - 1 do
           let c = float_of_int t.counts.(i) in
           if c > 0. && !acc +. c >= target then begin
             let lo_edge = if i = 0 then t.lo else bucket_edge t (i - 1) in
             let hi_edge = bucket_edge t i in
             let frac = (target -. !acc) /. c in
             result := lo_edge +. ((hi_edge -. lo_edge) *. frac);
             raise Exit
           end;
           acc := !acc +. c
         done;
         (* Landed in the overflow bucket. *)
         result := t.max_v
       with Exit -> ());
      clamp !result
    end

let quantile t q =
  if not (q >= 0. && q <= 1.) then invalid_arg "Hist.quantile: q outside [0,1]";
  locked t (fun () -> quantile_locked t q)

let merge ~into src =
  if into == src then invalid_arg "Hist.merge: into == src";
  if not (into.lo = src.lo && into.hi = src.hi && into.bins = src.bins) then
    invalid_arg "Hist.merge: mismatched bucket geometry";
  (* Snapshot the source under its own lock first, then apply under the
     destination lock — never hold both at once, so concurrent merges in
     either direction cannot deadlock. *)
  let counts, underflow, overflow, total, min_v, max_v, sum_v =
    locked src (fun () ->
        ( Array.copy src.counts,
          src.underflow,
          src.overflow,
          src.total,
          src.min_v,
          src.max_v,
          src.sum_v ))
  in
  locked into (fun () ->
      Array.iteri (fun i c -> into.counts.(i) <- into.counts.(i) + c) counts;
      into.underflow <- into.underflow + underflow;
      into.overflow <- into.overflow + overflow;
      into.total <- into.total + total;
      into.sum_v <- into.sum_v +. sum_v;
      if min_v < into.min_v then into.min_v <- min_v;
      if max_v > into.max_v then into.max_v <- max_v)

type summary = {
  count : int;
  p50 : float;
  p90 : float;
  p99 : float;
  max : float;
  mean : float;
}

let snapshot t =
  locked t (fun () ->
      let empty = t.total = 0 in
      {
        count = t.total;
        p50 = quantile_locked t 0.5;
        p90 = quantile_locked t 0.9;
        p99 = quantile_locked t 0.99;
        max = (if empty then nan else t.max_v);
        mean = (if empty then nan else t.sum_v /. float_of_int t.total);
      })

let summary_to_json s =
  Json.Obj
    [
      ("count", Json.Int s.count);
      ("p50", Json.Float s.p50);
      ("p90", Json.Float s.p90);
      ("p99", Json.Float s.p99);
      ("max", Json.Float s.max);
      ("mean", Json.Float s.mean);
    ]

let to_json t = summary_to_json (snapshot t)

let pp fmt t =
  let s = snapshot t in
  Format.fprintf fmt "n=%d p50=%.1f p90=%.1f p99=%.1f max=%.1f" s.count s.p50
    s.p90 s.p99 s.max
