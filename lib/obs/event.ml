type kind =
  | Tx
  | Retransmit
  | Rx
  | Duplicate
  | Drop
  | Timeout
  | Fault
  | Corrupt_reject
  | Garbage
  | Deliver
  | Complete

type t = { ts_ns : int; lane : string; kind : kind; detail : string; seq : int }

let make ~ts_ns ~lane ~kind ?(detail = "") ?(seq = -1) () = { ts_ns; lane; kind; detail; seq }

let kind_to_string = function
  | Tx -> "tx"
  | Retransmit -> "retransmit"
  | Rx -> "rx"
  | Duplicate -> "duplicate"
  | Drop -> "drop"
  | Timeout -> "timeout"
  | Fault -> "fault"
  | Corrupt_reject -> "corrupt-reject"
  | Garbage -> "garbage"
  | Deliver -> "deliver"
  | Complete -> "complete"

let all_kinds =
  [ Tx; Retransmit; Rx; Duplicate; Drop; Timeout; Fault; Corrupt_reject; Garbage; Deliver; Complete ]

let kind_of_string s = List.find_opt (fun k -> kind_to_string k = s) all_kinds

let equal a b =
  a.ts_ns = b.ts_ns && a.lane = b.lane && a.kind = b.kind && a.detail = b.detail
  && a.seq = b.seq

let pp ppf t =
  Format.fprintf ppf "%.3fms %s %s" (float_of_int t.ts_ns /. 1e6) t.lane (kind_to_string t.kind);
  if t.seq >= 0 then Format.fprintf ppf " seq=%d" t.seq;
  if t.detail <> "" then Format.fprintf ppf " (%s)" t.detail

let to_json t =
  let fields =
    [ ("ts", Json.Int t.ts_ns); ("lane", Json.String t.lane);
      ("ev", Json.String (kind_to_string t.kind)) ]
  in
  let fields = if t.detail = "" then fields else fields @ [ ("detail", Json.String t.detail) ] in
  let fields = if t.seq < 0 then fields else fields @ [ ("seq", Json.Int t.seq) ] in
  Json.Obj fields

let of_json json =
  let ( let* ) = Result.bind in
  let field name extract =
    match Option.bind (Json.member name json) extract with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "event: missing or invalid %S" name)
  in
  let* ts_ns = field "ts" Json.to_int in
  let* lane = field "lane" Json.to_str in
  let* kind_name = field "ev" Json.to_str in
  let* kind =
    match kind_of_string kind_name with
    | Some k -> Ok k
    | None -> Error (Printf.sprintf "event: unknown kind %S" kind_name)
  in
  let detail = Option.value ~default:"" (Option.bind (Json.member "detail" json) Json.to_str) in
  let seq = Option.value ~default:(-1) (Option.bind (Json.member "seq" json) Json.to_int) in
  Ok { ts_ns; lane; kind; detail; seq }
