(** The unified span model: simulator traces and UDP event journals
    normalized into one [(lane, kind, start, duration)] shape.

    {!Eventsim.Trace} spans map across losslessly ({!of_trace} /
    {!to_trace} round-trip exactly, so {!Report.Timeline} renders a
    converted trace identically). Point events from the UDP journal become
    zero-length spans whose kinds reuse the simulator's vocabulary
    ([transmit-data], [copy-data-in], …), which is what lets the timeline
    renderer draw a Figure-3-style diagram for either transport. *)

type t = { lane : string; kind : string; start_ns : int; dur_ns : int }

val of_trace : Eventsim.Trace.t -> t list
(** In recording order. *)

val to_trace : t list -> Eventsim.Trace.t

val of_events : Event.t list -> t list
(** Maps journal events onto the timeline vocabulary: [Tx]/[Retransmit] of
    data become [transmit-data] (acks/reqs/nacks [transmit-ack]), [Rx]
    becomes [copy-data-in]/[copy-ack-in], [Deliver] becomes [copy-data-out];
    every other kind keeps its journal name (rendered with the fallback
    glyph). All spans are zero-length instants. *)

val end_ns : t list -> int
(** Largest [start_ns + dur_ns]; [0] when empty. *)
