(** Structured datagram events — the cross-transport journal entry.

    Both transports (the discrete-event simulator and the real UDP peer)
    reduce their activity to the same vocabulary of timestamped events, so a
    chaos run over loopback and a simulated transfer produce journals that
    tools downstream (the flight recorder, the JSONL/Chrome exporters, the
    timeline renderer) treat identically. Timestamps are simulation time on
    the simulator and [CLOCK_MONOTONIC] on UDP, normalized by the recorder to
    the journal's first event. *)

type kind =
  | Tx  (** a protocol [Send] handed to the transport *)
  | Retransmit  (** a data packet re-sent for an already-transmitted seq *)
  | Rx  (** a decoded datagram arrived at the endpoint *)
  | Duplicate  (** the machine classified the last datagram as a duplicate *)
  | Drop  (** the endpoint loss layer discarded a datagram ([detail]: tx/rx) *)
  | Timeout  (** a retransmission or handshake timer fired *)
  | Fault  (** the Netem pipeline injected a fault; [detail] names it *)
  | Corrupt_reject  (** checksum/CRC rejected an incoming datagram *)
  | Garbage  (** an incoming datagram was undecodable for any other reason *)
  | Deliver  (** a data packet reached the application buffer *)
  | Complete  (** the machine finished; [detail] is the outcome *)

type t = {
  ts_ns : int;  (** journal-relative nanoseconds, never negative *)
  lane : string;  (** emitting endpoint, e.g. ["sender"], ["receiver"] *)
  kind : kind;
  detail : string;  (** packet kind / fault name / outcome; [""] when n/a *)
  seq : int;  (** sequence number; [-1] when not applicable *)
}

val make : ts_ns:int -> lane:string -> kind:kind -> ?detail:string -> ?seq:int -> unit -> t

val kind_to_string : kind -> string
val kind_of_string : string -> kind option
val all_kinds : kind list

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

val to_json : t -> Json.t
(** Compact object: [{"ts":…,"lane":…,"ev":…}] plus ["detail"]/["seq"] only
    when meaningful. *)

val of_json : Json.t -> (t, string) result
