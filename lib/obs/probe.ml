type t = {
  recorder : Recorder.t option;
  lane : string;
  counters : Protocol.Counters.t;
  mutable seen_retx : int;
  mutable seen_dups : int;
}

let create ?recorder ~lane ~counters () =
  {
    recorder;
    lane;
    counters;
    (* Machines may share one counters record across wrappers (multi-blast);
       start the deltas from wherever the record already is. *)
    seen_retx = counters.Protocol.Counters.retransmitted_data;
    seen_dups = counters.Protocol.Counters.duplicates_received;
  }

let enabled t = t.recorder <> None
let recorder t = t.recorder

let emit t kind ?detail ?seq () =
  match t.recorder with
  | None -> ()
  | Some r -> Recorder.emit r ~lane:t.lane ~kind ?detail ?seq ()

let kind_name (m : Packet.Message.t) =
  match m.Packet.Message.kind with
  | Packet.Kind.Req -> "req"
  | Packet.Kind.Data -> "data"
  | Packet.Kind.Ack -> "ack"
  | Packet.Kind.Nack -> "nack"
  | Packet.Kind.Rej -> "rej"
  | Packet.Kind.Mreq -> "mreq"
  | Packet.Kind.Mrep -> "mrep"

let tx t (m : Packet.Message.t) =
  match t.recorder with
  | None -> ()
  | Some _ ->
      let detail = kind_name m in
      let seq = m.Packet.Message.seq in
      (* The machine bumps [retransmitted_data] while generating the Send
         batch, so by execution time the counter carries one credit per
         retransmitted data packet in the batch. Consuming credits in order
         keeps the journal's retransmit count identical to the counter. *)
      if
        m.Packet.Message.kind = Packet.Kind.Data
        && t.counters.Protocol.Counters.retransmitted_data > t.seen_retx
      then begin
        t.seen_retx <- t.seen_retx + 1;
        emit t Event.Retransmit ~detail ~seq ()
      end
      else emit t Event.Tx ~detail ~seq ()

let rx t (m : Packet.Message.t) =
  emit t Event.Rx ~detail:(kind_name m) ~seq:m.Packet.Message.seq ()

let handled t (m : Packet.Message.t) =
  if t.counters.Protocol.Counters.duplicates_received > t.seen_dups then begin
    t.seen_dups <- t.counters.Protocol.Counters.duplicates_received;
    emit t Event.Duplicate ~detail:(kind_name m) ~seq:m.Packet.Message.seq ()
  end

let timeout t ?detail () = emit t Event.Timeout ?detail ()
let deliver t ~seq = emit t Event.Deliver ~detail:"data" ~seq ()

let complete t outcome =
  emit t Event.Complete ~detail:(Format.asprintf "%a" Protocol.Action.pp_outcome outcome) ()

let drop t dir = emit t Event.Drop ~detail:(match dir with `Tx -> "tx" | `Rx -> "rx") ()

let reject t (err : Packet.Codec.error) =
  match err with
  | Packet.Codec.Bad_header_checksum | Packet.Codec.Bad_payload_checksum ->
      emit t Event.Corrupt_reject ~detail:(Format.asprintf "%a" Packet.Codec.pp_error err) ()
  | _ -> emit t Event.Garbage ~detail:(Format.asprintf "%a" Packet.Codec.pp_error err) ()

let fault t name = emit t Event.Fault ~detail:name ()

let postmortem t ~reason =
  match t.recorder with None -> None | Some r -> Recorder.postmortem r ~reason
