(* ----------------------------------------------------------------- JSONL *)

let jsonl_of_events events =
  let buffer = Buffer.create 1024 in
  List.iter
    (fun event ->
      Json.to_buffer buffer (Event.to_json event);
      Buffer.add_char buffer '\n')
    events;
  Buffer.contents buffer

let events_of_jsonl text =
  let lines = String.split_on_char '\n' text in
  let rec loop acc index = function
    | [] -> Ok (List.rev acc)
    | line :: rest ->
        let line = String.trim line in
        if line = "" then loop acc (index + 1) rest
        else begin
          match Json.parse line with
          | Error e -> Error (Printf.sprintf "line %d: %s" index e)
          | Ok json -> (
              match Json.member "ev" json with
              | None -> loop acc (index + 1) rest (* meta line, not an event *)
              | Some _ -> (
                  match Event.of_json json with
                  | Ok event -> loop (event :: acc) (index + 1) rest
                  | Error e -> Error (Printf.sprintf "line %d: %s" index e)))
        end
  in
  loop [] 1 lines

let write_file path contents =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc contents)

let write_jsonl path events = write_file path (jsonl_of_events events)

let read_jsonl_file path =
  let ic = open_in path in
  let contents =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  events_of_jsonl contents

(* ---------------------------------------------------- Chrome trace_event *)

let us_of_ns ns = float_of_int ns /. 1e3

(* One emission record, so spans and instants sort into one timeline. *)
type emission = { ts_ns : int; json : Json.t }

let chrome ?(spans = []) ?(events = []) () =
  let lanes =
    let seen = Hashtbl.create 8 in
    let next = ref 0 in
    let tid lane =
      match Hashtbl.find_opt seen lane with
      | Some tid -> tid
      | None ->
          incr next;
          Hashtbl.add seen lane !next;
          !next
    in
    List.iter (fun (s : Span.t) -> ignore (tid s.Span.lane : int)) spans;
    List.iter (fun (e : Event.t) -> ignore (tid e.Event.lane : int)) events;
    tid
  in
  let span_emission (s : Span.t) =
    {
      ts_ns = s.Span.start_ns;
      json =
        Json.Obj
          [ ("name", Json.String s.Span.kind); ("ph", Json.String "X");
            ("pid", Json.Int 1); ("tid", Json.Int (lanes s.Span.lane));
            ("ts", Json.Float (us_of_ns s.Span.start_ns));
            ("dur", Json.Float (us_of_ns s.Span.dur_ns));
            ("cat", Json.String "span") ];
    }
  in
  let event_emission (e : Event.t) =
    let args =
      (if e.Event.detail = "" then [] else [ ("detail", Json.String e.Event.detail) ])
      @ if e.Event.seq < 0 then [] else [ ("seq", Json.Int e.Event.seq) ]
    in
    {
      ts_ns = e.Event.ts_ns;
      json =
        Json.Obj
          ([ ("name", Json.String (Event.kind_to_string e.Event.kind));
             ("ph", Json.String "i"); ("s", Json.String "t"); ("pid", Json.Int 1);
             ("tid", Json.Int (lanes e.Event.lane));
             ("ts", Json.Float (us_of_ns e.Event.ts_ns));
             ("cat", Json.String "event") ]
          @ if args = [] then [] else [ ("args", Json.Obj args) ]);
    }
  in
  let emissions =
    List.map span_emission spans @ List.map event_emission events
    |> List.stable_sort (fun a b -> compare a.ts_ns b.ts_ns)
  in
  let lane_names =
    (* Collect in tid order for stable metadata records. *)
    let table = Hashtbl.create 8 in
    List.iter
      (fun (s : Span.t) -> Hashtbl.replace table (lanes s.Span.lane) s.Span.lane)
      spans;
    List.iter
      (fun (e : Event.t) -> Hashtbl.replace table (lanes e.Event.lane) e.Event.lane)
      events;
    Hashtbl.fold (fun tid name acc -> (tid, name) :: acc) table []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  let metadata =
    List.map
      (fun (tid, name) ->
        Json.Obj
          [ ("name", Json.String "thread_name"); ("ph", Json.String "M");
            ("pid", Json.Int 1); ("tid", Json.Int tid);
            ("args", Json.Obj [ ("name", Json.String name) ]) ])
      lane_names
  in
  Json.Obj
    [ ("traceEvents", Json.List (metadata @ List.map (fun e -> e.json) emissions));
      ("displayTimeUnit", Json.String "ms") ]

let chrome_string ?spans ?events () = Json.to_string (chrome ?spans ?events ())
let write_chrome path ?spans ?events () = write_file path (chrome_string ?spans ?events ())
