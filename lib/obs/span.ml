open Eventsim

type t = { lane : string; kind : string; start_ns : int; dur_ns : int }

let of_trace trace =
  List.map
    (fun (s : Trace.span) ->
      {
        lane = s.Trace.lane;
        kind = s.Trace.kind;
        start_ns = Time.to_ns s.Trace.start;
        dur_ns = Time.span_to_ns (Time.diff s.Trace.stop s.Trace.start);
      })
    (Trace.spans trace)

let to_trace spans =
  let trace = Trace.create () in
  List.iter
    (fun s ->
      Trace.record trace ~lane:s.lane ~kind:s.kind ~start:(Time.of_ns s.start_ns)
        ~stop:(Time.of_ns (s.start_ns + s.dur_ns)))
    spans;
  trace

let kind_of_event (e : Event.t) =
  match e.Event.kind with
  | Event.Tx | Event.Retransmit ->
      if e.Event.detail = "data" then "transmit-data" else "transmit-ack"
  | Event.Rx -> if e.Event.detail = "data" then "copy-data-in" else "copy-ack-in"
  | Event.Deliver -> "copy-data-out"
  | kind -> Event.kind_to_string kind

let of_events events =
  List.map
    (fun (e : Event.t) ->
      { lane = e.Event.lane; kind = kind_of_event e; start_ns = e.Event.ts_ns; dur_ns = 0 })
    events

let end_ns spans = List.fold_left (fun acc s -> max acc (s.start_ns + s.dur_ns)) 0 spans
