(** Named, labelled metrics registry — the single sink every component
    publishes through.

    Counters and gauges are registered on first use and shared on every later
    lookup of the same (name, labels) pair; histograms wrap
    {!Stats.Histogram} and summaries {!Stats.Summary}, so the statistical
    machinery the campaigns already use feeds the same snapshots. A
    {!Protocol.Counters.t} record bridges in wholesale via {!add_counters},
    which is how protocol machines, [Simnet.Driver], [Sockets.Peer] and the
    chaos soak all land in one registry. Snapshots render as an aligned text
    table or as JSON.

    The registry is safe under concurrent domains, not just threads:
    counters and gauges are atomics, histograms and summaries carry a
    per-instrument lock, and snapshots read every instrument under its
    lock. *)

type t

type counter
type gauge
type histogram
type summary

val create : unit -> t

val counter : t -> ?labels:(string * string) list -> string -> counter
(** Registers (or retrieves) the counter with this name and label set.
    Raises [Invalid_argument] if the name is already registered as a
    different instrument type. *)

val inc : ?by:int -> counter -> unit
val counter_value : counter -> int

val gauge : t -> ?labels:(string * string) list -> string -> gauge
val set_gauge : gauge -> float -> unit
val gauge_value : gauge -> float

val histogram :
  t ->
  ?labels:(string * string) list ->
  ?log:bool ->
  lo:float ->
  hi:float ->
  bins:int ->
  string ->
  histogram
(** The bin geometry is fixed by the first registration; later lookups
    return the same histogram and ignore the geometry arguments. *)

val observe : histogram -> float -> unit
(** Records one observation, under the instrument's lock. *)

val summary : t -> ?labels:(string * string) list -> string -> summary

val record : summary -> float -> unit
(** Records one observation, under the instrument's lock. *)

val bridge_counters : t -> ?labels:(string * string) list -> Protocol.Counters.t -> unit
(** Adds every field of a {!Protocol.Counters.t} into counters named
    [protocol_data_sent], [protocol_retransmitted_data], … under the given
    labels. Call it once per finished transfer. *)

val to_table : t -> string
(** One aligned line per instrument, sorted by name then labels. *)

val to_json : t -> Json.t
(** A list of [{"name";"labels";"type";…}] objects, sorted like
    {!to_table}. *)

val pp : Format.formatter -> t -> unit
