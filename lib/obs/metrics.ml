(* Counters and gauges are lock-free atomics so concurrent domains can
   publish without contending on the registry lock and without losing
   updates; histograms and summaries mutate multi-word state, so each
   carries its own mutex. *)
type counter = int Atomic.t
type gauge = float Atomic.t
type histogram = { histogram : Stats.Histogram.t; histogram_lock : Mutex.t }
type summary = { summary : Stats.Summary.t; summary_lock : Mutex.t }

type instrument =
  | Counter of counter
  | Gauge of gauge
  | Histogram of histogram
  | Summary of summary

type entry = { name : string; labels : (string * string) list; instrument : instrument }

type t = { table : (string * (string * string) list, entry) Hashtbl.t; lock : Mutex.t }

let create () = { table = Hashtbl.create 64; lock = Mutex.create () }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let normalize labels = List.sort (fun (a, _) (b, _) -> String.compare a b) labels

let instrument_type = function
  | Counter _ -> "counter"
  | Gauge _ -> "gauge"
  | Histogram _ -> "histogram"
  | Summary _ -> "summary"

let register t ~labels name build =
  let labels = normalize labels in
  locked t (fun () ->
      match Hashtbl.find_opt t.table (name, labels) with
      | Some entry -> entry.instrument
      | None ->
          let instrument = build () in
          (* One name, one instrument type, whatever the labels: mixing a
             counter and a gauge under the same name would make the snapshot
             unreadable. *)
          Hashtbl.iter
            (fun (existing, _) entry ->
              if existing = name && instrument_type entry.instrument <> instrument_type instrument
              then
                invalid_arg
                  (Printf.sprintf "Metrics: %S is already a %s" name
                     (instrument_type entry.instrument)))
            t.table;
          Hashtbl.add t.table (name, labels) { name; labels; instrument };
          instrument)

let counter t ?(labels = []) name =
  match register t ~labels name (fun () -> Counter (Atomic.make 0)) with
  | Counter c -> c
  | _ -> invalid_arg (Printf.sprintf "Metrics: %S is not a counter" name)

let inc ?(by = 1) c = ignore (Atomic.fetch_and_add c by : int)
let counter_value c = Atomic.get c

let gauge t ?(labels = []) name =
  match register t ~labels name (fun () -> Gauge (Atomic.make 0.0)) with
  | Gauge g -> g
  | _ -> invalid_arg (Printf.sprintf "Metrics: %S is not a gauge" name)

let set_gauge g v = Atomic.set g v
let gauge_value g = Atomic.get g

let histogram t ?(labels = []) ?(log = false) ~lo ~hi ~bins name =
  let build () =
    Histogram
      {
        histogram =
          (if log then Stats.Histogram.logarithmic ~lo ~hi ~bins
           else Stats.Histogram.linear ~lo ~hi ~bins);
        histogram_lock = Mutex.create ();
      }
  in
  match register t ~labels name build with
  | Histogram h -> h
  | _ -> invalid_arg (Printf.sprintf "Metrics: %S is not a histogram" name)

let observe h v =
  Mutex.lock h.histogram_lock;
  Stats.Histogram.add h.histogram v;
  Mutex.unlock h.histogram_lock

let summary t ?(labels = []) name =
  match
    register t ~labels name (fun () ->
        Summary { summary = Stats.Summary.create (); summary_lock = Mutex.create () })
  with
  | Summary s -> s
  | _ -> invalid_arg (Printf.sprintf "Metrics: %S is not a summary" name)

let record s v =
  Mutex.lock s.summary_lock;
  Stats.Summary.add s.summary v;
  Mutex.unlock s.summary_lock

let bridge_counters t ?(labels = []) (c : Protocol.Counters.t) =
  let add name value = inc ~by:value (counter t ~labels ("protocol_" ^ name)) in
  add "data_sent" c.Protocol.Counters.data_sent;
  add "retransmitted_data" c.Protocol.Counters.retransmitted_data;
  add "acks_sent" c.Protocol.Counters.acks_sent;
  add "nacks_sent" c.Protocol.Counters.nacks_sent;
  add "rounds" c.Protocol.Counters.rounds;
  add "timeouts" c.Protocol.Counters.timeouts;
  add "duplicates_received" c.Protocol.Counters.duplicates_received;
  add "delivered" c.Protocol.Counters.delivered;
  add "faults_injected" c.Protocol.Counters.faults_injected;
  add "corrupt_detected" c.Protocol.Counters.corrupt_detected;
  add "garbage_received" c.Protocol.Counters.garbage_received

(* ------------------------------------------------------------- snapshots *)

let sorted_entries t =
  locked t (fun () -> Hashtbl.fold (fun _ entry acc -> entry :: acc) t.table [])
  |> List.sort (fun a b ->
         match String.compare a.name b.name with
         | 0 -> compare a.labels b.labels
         | c -> c)

let label_string labels =
  if labels = [] then ""
  else
    "{"
    ^ String.concat "," (List.map (fun (k, v) -> Printf.sprintf "%s=%s" k v) labels)
    ^ "}"

let float_repr f = Printf.sprintf "%g" f

let to_table t =
  let rows =
    List.map
      (fun entry ->
        let value =
          match entry.instrument with
          | Counter c -> string_of_int (Atomic.get c)
          | Gauge g -> float_repr (Atomic.get g)
          | Histogram h ->
              Mutex.lock h.histogram_lock;
              Fun.protect ~finally:(fun () -> Mutex.unlock h.histogram_lock) (fun () ->
                  Printf.sprintf "count=%d p50=%s p99=%s"
                    (Stats.Histogram.count h.histogram)
                    (float_repr (Stats.Histogram.quantile h.histogram 0.5))
                    (float_repr (Stats.Histogram.quantile h.histogram 0.99)))
          | Summary s ->
              Mutex.lock s.summary_lock;
              Fun.protect ~finally:(fun () -> Mutex.unlock s.summary_lock) (fun () ->
                  Printf.sprintf "count=%d mean=%s min=%s max=%s"
                    (Stats.Summary.count s.summary)
                    (float_repr (Stats.Summary.mean s.summary))
                    (float_repr (Stats.Summary.min s.summary))
                    (float_repr (Stats.Summary.max s.summary)))
        in
        ( entry.name ^ label_string entry.labels,
          instrument_type entry.instrument,
          value ))
      (sorted_entries t)
  in
  let width f = List.fold_left (fun acc row -> max acc (String.length (f row))) 0 rows in
  let name_width = width (fun (n, _, _) -> n) in
  let type_width = width (fun (_, t, _) -> t) in
  String.concat "\n"
    (List.map
       (fun (name, kind, value) ->
         Printf.sprintf "%-*s  %-*s  %s" name_width name type_width kind value)
       rows)

let to_json t =
  let entry_json entry =
    let base =
      [ ("name", Json.String entry.name);
        ("labels", Json.Obj (List.map (fun (k, v) -> (k, Json.String v)) entry.labels));
        ("type", Json.String (instrument_type entry.instrument)) ]
    in
    let value =
      match entry.instrument with
      | Counter c -> [ ("value", Json.Int (Atomic.get c)) ]
      | Gauge g -> [ ("value", Json.Float (Atomic.get g)) ]
      | Histogram h ->
          Mutex.lock h.histogram_lock;
          Fun.protect ~finally:(fun () -> Mutex.unlock h.histogram_lock) (fun () ->
              [ ("count", Json.Int (Stats.Histogram.count h.histogram));
                ("p50", Json.Float (Stats.Histogram.quantile h.histogram 0.5));
                ("p90", Json.Float (Stats.Histogram.quantile h.histogram 0.9));
                ("p99", Json.Float (Stats.Histogram.quantile h.histogram 0.99)) ])
      | Summary s ->
          Mutex.lock s.summary_lock;
          Fun.protect ~finally:(fun () -> Mutex.unlock s.summary_lock) (fun () ->
              [ ("count", Json.Int (Stats.Summary.count s.summary));
                ("mean", Json.Float (Stats.Summary.mean s.summary));
                ("stddev", Json.Float (Stats.Summary.stddev s.summary));
                ("min", Json.Float (Stats.Summary.min s.summary));
                ("max", Json.Float (Stats.Summary.max s.summary)) ])
    in
    Json.Obj (base @ value)
  in
  Json.List (List.map entry_json (sorted_entries t))

let pp ppf t = Format.pp_print_string ppf (to_table t)
