(** Per-flow lifecycle tracing for the multiplexed serve path.

    A flowtrace records the coarse lifecycle of every flow the engine
    touches — admitted → first-data → blast rounds → verify → exactly one
    terminal state — as timestamped events keyed by an opaque flow label
    (the engine formats ["host:port#id/epoch.index"] from its
    [(sockaddr, transfer_id)] key; this module deliberately has no [Unix]
    dependency). Timestamps come from whatever clock the caller reads
    ({!Sockets.Io_ctx.clock}), so the same engine produces byte-identical
    traces over real UDP and under DST virtual time.

    {!spans} renders the lifecycle as well-nested {!Span.t} lanes for the
    existing Perfetto export path; {!validate} checks the lifecycle
    grammar and is the substance of the lifecycle-ordering tests. *)

type terminal = Done | Failed | Rejected | Superseded

type event =
  | Admitted
  | First_data  (** first DATA datagram accepted by the flow *)
  | Round  (** the flow's rounds counter advanced (retransmission round) *)
  | Verify  (** payload integrity verified (precedes [Terminal Done]) *)
  | Terminal of terminal

type record = { flow : string; event : event; ts_ns : int }

type t

val create : unit -> t
(** Thread-safe; events may arrive from any domain. *)

val record : t -> flow:string -> event -> now:int -> unit
val records : t -> record list
(** In recording order. *)

val event_name : event -> string
(** [admitted | first-data | round | verify | done | failed | rejected |
    superseded]. *)

val spans : t -> Span.t list
(** One lane per flow label. Each flow gets an outer [flow] span covering
    its whole lifetime, a [handshake] span from admission to first data (or
    to the terminal event when no data arrived), a [blast] span from first
    data to verify/terminal, and zero-length instants for rounds, verify
    and the terminal state — all nested inside the outer span. *)

val validate : t -> string list
(** Lifecycle grammar violations, empty when clean: every flow ends in
    exactly one terminal state; nothing follows a terminal event; any flow
    that progressed past admission started with [Admitted] (a lone
    [Terminal Rejected] is the legal admission-refused shape); timestamps
    are non-decreasing per flow. *)

val to_jsonl : t -> string
(** One [{"flow":…,"ev":…,"ts":…}] object per line, recording order —
    the canonical byte-comparable export for DST replay-invariance. *)

val to_json : t -> Json.t
(** The same records as a JSON list. *)
