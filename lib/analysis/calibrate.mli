(** Recovering the cost model from measurements.

    The paper derives its per-operation constants from measured elapsed
    times; this module does the inverse experiment for any measured ladder:
    fit [T(N) = slope * N + intercept] by ordinary least squares and
    translate slope/intercept back into the model's constants using the
    closed forms of {!Error_free}. *)

type fit = { slope : float; intercept : float; r_square : float }

val least_squares : (float * float) list -> fit
(** Ordinary least squares over (x, y) points. Raises [Invalid_argument]
    with fewer than two distinct x values. *)

type recovered = {
  copy_data_ms : float;  (** C *)
  copy_ack_ms : float;  (** Ca *)
  fit_blast : fit;
  fit_sliding_window : fit;
}

val recover_constants :
  blast:(int * float) list ->
  sliding_window:(int * float) list ->
  transmit_ms:float ->
  recovered
(** [recover_constants ~blast ~sliding_window ~transmit_ms] takes two
    measured ladders (packets, elapsed ms) and the known data transmission
    time [T]. The blast slope is [C + T], so [C = slope - T]; the
    sliding-window slope is [C + Ca + T], so [Ca] falls out of the
    difference of the two slopes. *)
