(** Closed-form error-free elapsed times (Section 2.1.3), in milliseconds.

    All formulas include the two propagation delays the paper drops as
    negligible, so they match the event-driven simulator exactly:

    {v
    T_SAW = N (2C + 2Ca + T + Ta + 2 tau)
    T_B   = N (C + T) + C + 2Ca + Ta + 2 tau
    T_SW  = N (C + Ca + T) + C + Ca + Ta + 2 tau
    T_dbl = T <= C:  N C + T + C + 2Ca + Ta + 2 tau
            T >  C:  N T + 2C + 2Ca + Ta + 2 tau
    v}

    (The paper prints T_SW with a single trailing Ca; the extra Ca here is
    the copy-out of the final ack, which its own Figure 3.c shows. The
    difference is one ack copy over the whole transfer.) *)

val stop_and_wait : Costs.t -> packets:int -> float
val blast : Costs.t -> packets:int -> float
val sliding_window : Costs.t -> packets:int -> float
val double_buffered : Costs.t -> packets:int -> float

val sliding_window_paper : Costs.t -> packets:int -> float
(** The formula exactly as printed: [N (C + Ca + T) + C + Ta]. *)

val blast_paced : Costs.t -> packets:int -> pacing_ms:float -> float
(** A blast whose sender inserts a fixed gap after every data packet —
    [N (C + T + P) + C + 2Ca + Ta + 2 tau]. Pacing is the flow-control
    alternative to letting a slow receiver overrun and repairing with
    retransmissions. *)

val network_utilization : Costs.t -> packets:int -> float
(** [(N T + Ta) / T_B]: fraction of the blast elapsed time the wire is
    busy — 38% for the paper's 64 KiB example. *)

val naive_stop_and_wait : Costs.t -> packets:int -> float
val naive_sliding_window : Costs.t -> packets:int -> float
val naive_blast : Costs.t -> packets:int -> float
(** The Section 2.1 transmission-time-only estimates (no copy costs): with
    {!Costs.paper_rounded} and N = 64 these give 57.024, 55.764 and
    52.551 ms. *)
