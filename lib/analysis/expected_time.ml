let saw_exchange_failure ~pn = Stats.Distribution.exchange_failure_prob ~packet_loss:pn ~packets:2

let blast_failure ~pn ~packets =
  Stats.Distribution.exchange_failure_prob ~packet_loss:pn ~packets:(packets + 1)

let expected ~t0 ~tr ~pc =
  if not (pc >= 0.0 && pc <= 1.0) then invalid_arg "Expected_time.expected: pc outside [0,1]";
  if pc >= 1.0 then infinity else t0 +. ((t0 +. tr) *. pc /. (1.0 -. pc))

let stop_and_wait ~t0_packet ~tr ~pn ~packets =
  if packets <= 0 then invalid_arg "Expected_time.stop_and_wait: packets must be positive";
  let pc = saw_exchange_failure ~pn in
  float_of_int packets *. expected ~t0:t0_packet ~tr ~pc

let blast ~t0 ~tr ~pn ~packets =
  if packets <= 0 then invalid_arg "Expected_time.blast: packets must be positive";
  let pc = blast_failure ~pn ~packets in
  expected ~t0 ~tr ~pc
