open Costs

let check packets = if packets <= 0 then invalid_arg "Error_free: packets must be positive"

let stop_and_wait k ~packets =
  check packets;
  float_of_int packets *. ((2.0 *. k.c) +. (2.0 *. k.ca) +. k.t +. k.ta +. (2.0 *. k.tau))

let blast k ~packets =
  check packets;
  (float_of_int packets *. (k.c +. k.t)) +. k.c +. (2.0 *. k.ca) +. k.ta +. (2.0 *. k.tau)

let sliding_window k ~packets =
  check packets;
  (float_of_int packets *. (k.c +. k.ca +. k.t)) +. k.c +. k.ca +. k.ta +. (2.0 *. k.tau)

let blast_paced k ~packets ~pacing_ms =
  check packets;
  if pacing_ms < 0.0 then invalid_arg "Error_free.blast_paced: negative pacing";
  (float_of_int packets *. (k.c +. k.t +. pacing_ms))
  +. k.c +. (2.0 *. k.ca) +. k.ta +. (2.0 *. k.tau)

let sliding_window_paper k ~packets =
  check packets;
  (float_of_int packets *. (k.c +. k.ca +. k.t)) +. k.c +. k.ta

let double_buffered k ~packets =
  check packets;
  let n = float_of_int packets in
  let tail = (2.0 *. k.ca) +. k.ta +. (2.0 *. k.tau) in
  if k.t <= k.c then (n *. k.c) +. k.t +. k.c +. tail else (n *. k.t) +. (2.0 *. k.c) +. tail

let network_utilization k ~packets =
  check packets;
  let n = float_of_int packets in
  ((n *. k.t) +. k.ta) /. blast k ~packets

let naive_stop_and_wait k ~packets =
  check packets;
  float_of_int packets *. (k.t +. k.ta +. (2.0 *. k.tau))

let naive_sliding_window k ~packets =
  check packets;
  (float_of_int packets *. (k.t +. k.ta)) +. (2.0 *. k.tau)

let naive_blast k ~packets =
  check packets;
  (float_of_int packets *. k.t) +. k.ta +. (2.0 *. k.tau)
