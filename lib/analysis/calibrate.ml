type fit = { slope : float; intercept : float; r_square : float }

let least_squares points =
  let n = List.length points in
  if n < 2 then invalid_arg "Calibrate.least_squares: need at least two points";
  let sum f = List.fold_left (fun acc p -> acc +. f p) 0.0 points in
  let nf = float_of_int n in
  let sx = sum fst and sy = sum snd in
  let sxx = sum (fun (x, _) -> x *. x) in
  let sxy = sum (fun (x, y) -> x *. y) in
  let denominator = (nf *. sxx) -. (sx *. sx) in
  if Float.abs denominator < 1e-12 then
    invalid_arg "Calibrate.least_squares: x values are degenerate";
  let slope = ((nf *. sxy) -. (sx *. sy)) /. denominator in
  let intercept = (sy -. (slope *. sx)) /. nf in
  let mean_y = sy /. nf in
  let ss_total = sum (fun (_, y) -> (y -. mean_y) ** 2.0) in
  let ss_residual =
    sum (fun (x, y) -> (y -. (slope *. x) -. intercept) ** 2.0)
  in
  let r_square = if ss_total = 0.0 then 1.0 else 1.0 -. (ss_residual /. ss_total) in
  { slope; intercept; r_square }

type recovered = {
  copy_data_ms : float;
  copy_ack_ms : float;
  fit_blast : fit;
  fit_sliding_window : fit;
}

let to_float_points ladder = List.map (fun (n, ms) -> (float_of_int n, ms)) ladder

let recover_constants ~blast ~sliding_window ~transmit_ms =
  let fit_blast = least_squares (to_float_points blast) in
  let fit_sliding_window = least_squares (to_float_points sliding_window) in
  {
    copy_data_ms = fit_blast.slope -. transmit_ms;
    copy_ack_ms = fit_sliding_window.slope -. fit_blast.slope;
    fit_blast;
    fit_sliding_window;
  }
