(** The paper's per-operation cost constants, as floating-point milliseconds
    for formula work.

    [c]: processor copy of a data packet into/out of the interface;
    [ca]: same for an ack packet; [t]/[ta]: network transmission times;
    [tau]: one-way propagation delay. *)

type t = { c : float; ca : float; t : float; ta : float; tau : float }

val of_params : Netmodel.Params.t -> t
(** Exact conversion of the simulator's integer-nanosecond constants, so that
    formula and simulator agree to the nanosecond. *)

val standalone : t
(** Table 2 constants. *)

val vkernel : t
(** Table 3 constants (header handling, demultiplexing, interrupt overhead
    folded into the copy costs). *)

val paper_rounded : t
(** The rounded values used in the paper's Section 2.1 back-of-envelope
    (T = 0.820 ms, Ta = 0.051 ms, tau = 0.010 ms): reproduces the in-text
    57 024 / 55 764 / 52 551 us figures digit for digit. *)

val pp : Format.formatter -> t -> unit
