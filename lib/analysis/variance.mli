(** Standard deviation of the elapsed time for the blast retransmission
    strategies (Section 3.2), in milliseconds.

    With independent attempts, the number of failed attempts [i] before
    success is geometric with parameter [pc]. When every failed attempt
    costs a constant [t_fail] the elapsed time is
    [i * t_fail + T0], so

    {v sigma = t_fail * sqrt(pc) / (1 - pc) v}

    {!full_retransmit} takes [t_fail = T0 + Tr] (the failed train plus the
    full timeout); {!full_retransmit_nack} takes [t_fail ~= T0] (the NACK
    arrives as the train ends, so the retransmission interval contributes
    only when the terminator or the NACK itself is lost — negligible for
    [pn << 1/D], the regime the paper analyses).

    The paper's printed formulas carry an additional [sqrt(1 + pc)] factor
    (they account for the spread between failed- and successful-attempt
    durations); both forms are provided, and the Monte-Carlo benchmark shows
    they are indistinguishable in the regime of interest. Go-back-n and
    selective retransmission have no closed form — the paper simulated them,
    and so do we ({!Montecarlo}). *)

val geometric_sigma : t_fail:float -> pc:float -> float
(** [t_fail * sqrt(pc) / (1 - pc)]. *)

val full_retransmit : t0:float -> tr:float -> pc:float -> float
val full_retransmit_nack : t0:float -> pc:float -> float

val paper_full_retransmit : t0:float -> tr:float -> pc:float -> float
(** [(T0 + Tr) * sqrt(pc (1 + pc)) / (1 - pc)] — the formula as printed. *)

val paper_full_retransmit_nack : t0:float -> pc:float -> float
