(** Expected elapsed time in the presence of iid packet loss (Section 3.1),
    in milliseconds.

    An exchange that fails is retried after the retransmission interval
    [tr]; attempts are independent, so the number of failures is geometric
    with parameter [pc] and

    {v E[T] = T0 + (T0 + Tr) * pc / (1 - pc) v} *)

val saw_exchange_failure : pn:float -> float
(** [pc] for one packet + ack: [1 - (1 - pn)^2]. *)

val blast_failure : pn:float -> packets:int -> float
(** [pc] for a D-packet train + ack: [1 - (1 - pn)^(D+1)]. *)

val expected : t0:float -> tr:float -> pc:float -> float
(** The generic geometric-retry expectation. [pc = 1] gives [infinity]. *)

val stop_and_wait : t0_packet:float -> tr:float -> pn:float -> packets:int -> float
(** [D * (t0(1) + (t0(1) + tr) * pc/(1-pc))] with the per-packet [pc]. *)

val blast : t0:float -> tr:float -> pn:float -> packets:int -> float
(** Full retransmission on error: [t0] is the error-free train time
    [T0(D)]. *)
