let check_pc pc =
  if not (pc >= 0.0 && pc < 1.0) then invalid_arg "Variance: pc outside [0,1)"

let geometric_sigma ~t_fail ~pc =
  check_pc pc;
  t_fail *. sqrt pc /. (1.0 -. pc)

let full_retransmit ~t0 ~tr ~pc = geometric_sigma ~t_fail:(t0 +. tr) ~pc
let full_retransmit_nack ~t0 ~pc = geometric_sigma ~t_fail:t0 ~pc

let paper_sigma ~t_fail ~pc =
  check_pc pc;
  t_fail *. sqrt (pc *. (1.0 +. pc)) /. (1.0 -. pc)

let paper_full_retransmit ~t0 ~tr ~pc = paper_sigma ~t_fail:(t0 +. tr) ~pc
let paper_full_retransmit_nack ~t0 ~pc = paper_sigma ~t_fail:t0 ~pc
