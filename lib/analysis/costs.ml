open Eventsim

type t = { c : float; ca : float; t : float; ta : float; tau : float }

let of_params (p : Netmodel.Params.t) =
  {
    c = Time.span_to_ms p.Netmodel.Params.copy_data;
    ca = Time.span_to_ms p.Netmodel.Params.copy_ack;
    t = Time.span_to_ms (Netmodel.Params.data_transmit p);
    ta = Time.span_to_ms (Netmodel.Params.ack_transmit p);
    tau = Time.span_to_ms p.Netmodel.Params.propagation;
  }

let standalone = of_params Netmodel.Params.standalone
let vkernel = of_params Netmodel.Params.vkernel
let paper_rounded = { c = 1.35; ca = 0.17; t = 0.820; ta = 0.051; tau = 0.010 }

let pp ppf { c; ca; t; ta; tau } =
  Format.fprintf ppf "C=%.3f Ca=%.3f T=%.4f Ta=%.4f tau=%.4f (ms)" c ca t ta tau
