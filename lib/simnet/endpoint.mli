(** One protocol machine bound to a station.

    The endpoint owns the machine's event queue, retransmission timer and
    main process; arriving messages are fed in with {!inject} by whoever
    demultiplexes the station's receive path (the {!Driver} uses a dedicated
    pump per station; the V kernel's dispatcher routes by transfer id). *)

type t

val frame_bytes : Netmodel.Params.t -> Packet.Message.t -> int
(** On-the-wire size of a message under the paper's sizing: data packets are
    the full data packet size, control packets the ack size (a selective
    NACK also carries its bitmap). *)

val create :
  ?faults:Faults.Netem.t ->
  ?on_undecodable:(Packet.Codec.error -> unit) ->
  ?probe:Obs.Probe.t ->
  ?rtt:Protocol.Rtt.t ->
  ?pacing:Eventsim.Time.span ->
  sim:Eventsim.Sim.t ->
  params:Netmodel.Params.t ->
  station:Packet.Message.t Netmodel.Station.t ->
  peer:int ->
  machine:Protocol.Machine.t ->
  deliver:(int -> string -> unit) ->
  on_complete:(Protocol.Action.outcome -> unit) ->
  unit ->
  t
(** Builds the endpoint and spawns its main process, which runs
    [machine.start] and then serves events forever (completion included —
    the machine keeps answering duplicate terminators). [on_complete] fires
    at the simulated instant the machine completes.

    With [pacing], the sender sleeps for that span after every data packet —
    rate-based flow control for receivers slower than the pipeline.
    With [rtt], the machine's requested timer intervals are replaced by the
    estimator's current timeout; round-trip samples are fed from the gap
    between each transmission and the next incoming message (skipping
    exchanges that suffered a timeout, per Karn's rule), and each timeout
    doubles the estimate until the next clean sample.

    With [faults], every outgoing message runs through the Netem pipeline:
    one [Send] becomes zero or more wire emissions (drops, duplicates,
    reordered or delayed copies, corruptions). Emissions the codec can no
    longer decode are discarded — the wire carries typed messages — and
    reported through [on_undecodable], standing in for the receiving
    interface rejecting a frame with a bad checksum.

    [probe] journals the endpoint's datagram activity (tx/retransmit, rx,
    duplicates, timeouts, delivery, completion) into an attached flight
    recorder; without one a disabled probe is used and every hook is a
    no-op. *)

val inject : t -> Protocol.Action.event -> unit
(** Queues an event for the machine (safe from any process or callback). *)

val machine : t -> Protocol.Machine.t
