type cell = {
  suite : Protocol.Suite.t;
  packets : int;
  network_loss : float;
  mean_ms : float;
  stddev_ms : float;
  retransmissions : float;
  failures : int;
}

type t = { cells : cell list }

let run ?(params = Netmodel.Params.standalone) ?(trials = 10) ?(seed = 1) ?pool ?jobs
    ~suites ~packets ~losses () =
  (* The cross product is embarrassingly parallel, so the pool runs whole
     cells; each cell's campaign then runs its trials serially ([jobs:1]) —
     nesting both levels would deadlock the pool and oversubscribe the
     machine. Cell order and per-cell seeds are fixed up front, so the table
     is identical at any parallelism. *)
  let coordinates =
    List.concat_map
      (fun suite ->
        List.concat_map
          (fun n -> List.map (fun network_loss -> (suite, n, network_loss)) losses)
          packets)
      suites
  in
  let cells =
    Exec.Pool.map ?pool ?jobs coordinates ~f:(fun (suite, n, network_loss) ->
        let spec =
          Campaign.default ~params ~network_loss
            ~trials:(if network_loss = 0.0 then 1 else trials)
            ~seed ~suite
            ~config:(Protocol.Config.make ~total_packets:n ())
            ()
        in
        let outcome = Campaign.run ~jobs:1 spec in
        let stddev = Stats.Summary.stddev outcome.Campaign.elapsed_ms in
        {
          suite;
          packets = n;
          network_loss;
          mean_ms = Stats.Summary.mean outcome.Campaign.elapsed_ms;
          stddev_ms = (if Float.is_nan stddev then 0.0 else stddev);
          retransmissions = Stats.Summary.mean outcome.Campaign.retransmissions;
          failures = outcome.Campaign.failures;
        })
  in
  { cells }

let rows t =
  List.map
    (fun cell ->
      [
        Protocol.Suite.name cell.suite;
        string_of_int cell.packets;
        Printf.sprintf "%g" cell.network_loss;
        Printf.sprintf "%.4f" cell.mean_ms;
        Printf.sprintf "%.4f" cell.stddev_ms;
        Printf.sprintf "%.1f" cell.retransmissions;
        string_of_int cell.failures;
      ])
    t.cells

let header = [ "protocol"; "packets"; "loss"; "mean_ms"; "stddev_ms"; "retx"; "failures" ]
let to_csv t = Report.Csv.to_string ~header ~rows:(rows t)
let to_table t = Report.Table.render ~header ~rows:(rows t) ()
