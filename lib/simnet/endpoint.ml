open Eventsim

type t = {
  events : Protocol.Action.event Mailbox.t;
  machine : Protocol.Machine.t;
}

let frame_bytes (params : Netmodel.Params.t) (m : Packet.Message.t) =
  match m.Packet.Message.kind with
  | Packet.Kind.Data -> params.Netmodel.Params.data_packet_bytes
  | Packet.Kind.Req | Packet.Kind.Ack | Packet.Kind.Rej | Packet.Kind.Mreq ->
      params.Netmodel.Params.ack_packet_bytes
  | Packet.Kind.Nack | Packet.Kind.Mrep ->
      params.Netmodel.Params.ack_packet_bytes + String.length m.Packet.Message.payload

let create ?faults ?on_undecodable ?probe ?rtt ?(pacing = Time.span_zero) ~sim ~params
    ~station ~peer ~machine ~deliver ~on_complete () =
  let probe =
    match probe with
    | Some p -> p
    | None -> Obs.Probe.create ~lane:(Netmodel.Station.name station) ~counters:machine.Protocol.Machine.counters ()
  in
  let events : Protocol.Action.event Mailbox.t = Mailbox.create ~capacity:max_int in
  let timer =
    Timer.create sim ~on_fire:(fun () -> ignore (Mailbox.try_put events Protocol.Action.Timeout))
  in
  (* Adaptive-timeout bookkeeping: the round-trip sample is the gap between
     the last transmission and the next incoming message, discarded when a
     timeout intervened (Karn's rule). *)
  let last_send = ref None in
  let timed_out_since_send = ref false in
  let put_on_wire m = Netmodel.Station.send station ~dst:peer ~bytes:(frame_bytes params m) m in
  (* With a fault pipeline, one protocol [Send] becomes zero or more wire
     emissions. Station.send blocks (buffer reservation, copy cost), so
     delayed emissions get their own short-lived process rather than a raw
     simulator callback. *)
  let transmit m =
    match faults with
    | None -> put_on_wire m
    | Some netem ->
        Faults.Netem.tx_message ?on_undecodable netem m
        |> List.iter (fun (delay_ns, emission) ->
               if delay_ns = 0 then put_on_wire emission
               else
                 Proc.spawn (Proc.env sim)
                   ~name:(Netmodel.Station.name station ^ "-delayed-emission")
                   (fun () ->
                     Proc.sleep (Time.span_ns delay_ns);
                     put_on_wire emission))
  in
  let execute action =
    match action with
    | Protocol.Action.Send m ->
        Obs.Probe.tx probe m;
        transmit m;
        (* Sender-side pacing: breathe between data packets so a slower
           receiver is never overrun (flow control by rate). *)
        if
          Time.span_to_ns pacing > 0
          && m.Packet.Message.kind = Packet.Kind.Data
        then Proc.sleep pacing;
        last_send := Some (Sim.now sim);
        timed_out_since_send := false
    | Protocol.Action.Arm_timer ns ->
        let ns = match rtt with Some r -> Protocol.Rtt.timeout_ns r | None -> ns in
        Timer.arm timer (Time.span_ns ns)
    | Protocol.Action.Stop_timer -> Timer.stop timer
    | Protocol.Action.Deliver { seq; payload } ->
        Obs.Probe.deliver probe ~seq;
        deliver seq payload
    | Protocol.Action.Complete outcome ->
        Obs.Probe.complete probe outcome;
        on_complete outcome
  in
  let note_event event =
    match (rtt, event) with
    | Some r, Protocol.Action.Timeout ->
        timed_out_since_send := true;
        Protocol.Rtt.backoff r
    | Some r, Protocol.Action.Message _ -> begin
        match !last_send with
        | Some sent when not !timed_out_since_send ->
            let sample_ns = Time.span_to_ns (Time.diff (Sim.now sim) sent) in
            if sample_ns > 0 then Protocol.Rtt.observe r ~sample_ns
        | _ -> ()
      end
    | None, _ -> ()
  in
  let t = { events; machine } in
  (* Receiver machines reach completion without emitting a [Complete] action
     (they deliver the last packet and simply are done); notice that too. *)
  let notified = ref false in
  let check_quiet_completion () =
    if (not !notified) && machine.Protocol.Machine.is_complete () then begin
      notified := true;
      match machine.Protocol.Machine.outcome () with
      | Some outcome ->
          Obs.Probe.complete probe outcome;
          on_complete outcome
      | None -> ()
    end
  in
  let execute action =
    (match action with
    | Protocol.Action.Complete _ -> notified := true
    | Protocol.Action.Send _ | Protocol.Action.Arm_timer _ | Protocol.Action.Stop_timer
    | Protocol.Action.Deliver _ ->
        ());
    execute action
  in
  Proc.spawn (Proc.env sim)
    ~name:(Netmodel.Station.name station ^ "-endpoint")
    (fun () ->
      List.iter execute (machine.Protocol.Machine.start ());
      check_quiet_completion ();
      while true do
        let event = Mailbox.get events in
        note_event event;
        (match event with
        | Protocol.Action.Message m -> Obs.Probe.rx probe m
        | Protocol.Action.Timeout -> Obs.Probe.timeout probe ());
        List.iter execute (machine.Protocol.Machine.handle event);
        (match event with
        | Protocol.Action.Message m -> Obs.Probe.handled probe m
        | Protocol.Action.Timeout -> ());
        check_quiet_completion ()
      done);
  t

let inject t event = ignore (Mailbox.try_put t.events event)
let machine t = t.machine
