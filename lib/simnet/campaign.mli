(** Repeated-trial measurement campaigns.

    The paper repeats each measurement "a number of times" and averages; a
    campaign does the same over independently seeded simulations. *)

type spec = {
  params : Netmodel.Params.t;
  suite : Protocol.Suite.t;
  config : Protocol.Config.t;
  network_loss : float;  (** iid network loss probability *)
  interface_loss : float;  (** iid interface loss probability *)
  trials : int;
  seed : int;
}

val default :
  ?params:Netmodel.Params.t ->
  ?network_loss:float ->
  ?interface_loss:float ->
  ?trials:int ->
  ?seed:int ->
  suite:Protocol.Suite.t ->
  config:Protocol.Config.t ->
  unit ->
  spec

type outcome = {
  elapsed_ms : Stats.Summary.t;  (** over successful trials *)
  failures : int;  (** trials that gave up *)
  retransmissions : Stats.Summary.t;  (** retransmitted data packets per trial *)
}

val run : ?pool:Exec.Pool.t -> ?jobs:int -> spec -> outcome
(** Runs [trials] independent transfers; trial [i] derives its error-model
    RNG via [Stats.Rng.derive ~root:seed ~index:i], so campaigns are
    reproducible and trials are independent. Trials are distributed over an
    {!Exec.Pool} ([jobs] defaults to {!Exec.Pool.default_jobs}) and
    aggregated in trial order: the outcome is bit-for-bit identical at any
    parallelism. *)

val run_one : spec -> rng:Stats.Rng.t -> Driver.result
