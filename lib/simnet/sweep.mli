(** Structured parameter sweeps with CSV output.

    A sweep is the cross product of transfer sizes, protocols and error
    rates, each cell measured by a {!Campaign}; the result renders as a
    table or as CSV rows for downstream plotting — how a user of this
    library regenerates the paper's figure data for their own parameters. *)

type cell = {
  suite : Protocol.Suite.t;
  packets : int;
  network_loss : float;
  mean_ms : float;
  stddev_ms : float;
  retransmissions : float;  (** mean retransmitted packets per trial *)
  failures : int;
}

type t = { cells : cell list }

val run :
  ?params:Netmodel.Params.t ->
  ?trials:int ->
  ?seed:int ->
  ?pool:Exec.Pool.t ->
  ?jobs:int ->
  suites:Protocol.Suite.t list ->
  packets:int list ->
  losses:float list ->
  unit ->
  t
(** Error-free cells run a single deterministic trial; lossy cells run
    [trials] (default 10). Cells are independent and run in parallel over
    an {!Exec.Pool} ([jobs] defaults to {!Exec.Pool.default_jobs}); cell
    seeds are fixed before execution, so the result is identical at any
    parallelism. *)

val to_csv : t -> string
(** Header: [protocol,packets,loss,mean_ms,stddev_ms,retx,failures]. *)

val to_table : t -> string
(** An aligned table, one row per cell. *)
