open Eventsim

type result = {
  outcome : Protocol.Action.outcome;
  elapsed : Time.span;
  utilization : float;
  wire : Netmodel.Wire.counters;
  sender : Protocol.Counters.t;
  receiver : Protocol.Counters.t;
  received : (int * string) list;
  sender_cpu_busy : Time.span;
  receiver_cpu_busy : Time.span;
}

let frame_bytes = Endpoint.frame_bytes

(* One protocol endpoint plus a receive pump copying frames out of the
   interface and feeding them to the machine. *)
let endpoint ?faults ?on_undecodable ?probe ?rtt ?pacing ~sim ~params ~station ~peer
    ~(machine : Protocol.Machine.t) ~(on_deliver : int -> string -> unit)
    ~(on_complete : Protocol.Action.outcome -> unit) () =
  let endpoint =
    Endpoint.create ?faults ?on_undecodable ?probe ?rtt ?pacing ~sim ~params ~station ~peer
      ~machine ~deliver:on_deliver ~on_complete ()
  in
  Proc.spawn (Proc.env sim) ~name:(Netmodel.Station.name station ^ "-rx") (fun () ->
      while true do
        let frame = Netmodel.Station.recv station in
        Endpoint.inject endpoint (Protocol.Action.Message frame.Netmodel.Wire.payload)
      done)

let run ?(params = Netmodel.Params.standalone) ?network_error ?interface_error ?trace
    ?arbiter ?(background = fun _ -> ()) ?rtt ?pacing ?sender_faults ?receiver_faults
    ?recorder ?metrics ?(payload = fun _ -> "") ~suite ~(config : Protocol.Config.t) () =
  let sim = Sim.create () in
  (* Journal timestamps are simulation time on this transport. *)
  Option.iter
    (fun r -> Obs.Recorder.set_clock r (fun () -> Time.to_ns (Sim.now sim)))
    recorder;
  let wire =
    Netmodel.Wire.create sim ~params ?network_error ?interface_error ?trace ?arbiter ()
  in
  background wire;
  let sender_station = Netmodel.Station.create wire ~name:"sender" in
  let receiver_station = Netmodel.Station.create wire ~name:"receiver" in
  let sender_counters = Protocol.Counters.create () in
  let receiver_counters = Protocol.Counters.create () in
  let sender_probe = Obs.Probe.create ?recorder ~lane:"sender" ~counters:sender_counters () in
  let receiver_probe =
    Obs.Probe.create ?recorder ~lane:"receiver" ~counters:receiver_counters ()
  in
  Option.iter (fun n -> Faults.Netem.set_observer n (Obs.Probe.fault sender_probe)) sender_faults;
  Option.iter
    (fun n -> Faults.Netem.set_observer n (Obs.Probe.fault receiver_probe))
    receiver_faults;
  (* Each side's injection count lands in its own counters; an emission the
     codec rejects would have been discarded by the *other* side's interface,
     so the detection is charged there. *)
  Option.iter (fun n -> Faults.Netem.attach_counters n sender_counters) sender_faults;
  Option.iter (fun n -> Faults.Netem.attach_counters n receiver_counters) receiver_faults;
  let reject probe (counters : Protocol.Counters.t) (err : Packet.Codec.error) =
    Obs.Probe.reject probe err;
    match err with
    | Packet.Codec.Bad_header_checksum | Packet.Codec.Bad_payload_checksum ->
        counters.Protocol.Counters.corrupt_detected <-
          counters.Protocol.Counters.corrupt_detected + 1
    | _ ->
        counters.Protocol.Counters.garbage_received <-
          counters.Protocol.Counters.garbage_received + 1
  in
  let sender_machine = Protocol.Suite.sender suite ~counters:sender_counters config ~payload in
  let receiver_machine = Protocol.Suite.receiver suite ~counters:receiver_counters config in
  let delivered : (int, string) Hashtbl.t = Hashtbl.create 64 in
  let completion = ref None in
  endpoint ?faults:receiver_faults
    ~on_undecodable:(reject sender_probe sender_counters)
    ~probe:receiver_probe ~sim ~params ~station:receiver_station
    ~peer:(Netmodel.Station.address sender_station)
    ~machine:receiver_machine
    ~on_deliver:(fun seq payload ->
      if Hashtbl.mem delivered seq then failwith "Driver.run: packet delivered twice";
      Hashtbl.add delivered seq payload)
    ~on_complete:(fun _ -> ())
    ();
  endpoint ?faults:sender_faults
    ~on_undecodable:(reject receiver_probe receiver_counters)
    ~probe:sender_probe ?rtt ?pacing ~sim ~params ~station:sender_station
    ~peer:(Netmodel.Station.address receiver_station)
    ~machine:sender_machine
    ~on_deliver:(fun _ _ -> ())
    ~on_complete:(fun outcome ->
      if !completion = None then completion := Some (outcome, Sim.now sim))
    ();
  (* Step rather than drain: background load generators (Load.attach) keep
     the event queue populated forever. *)
  let continue_stepping = ref true in
  while !continue_stepping && !completion = None do
    continue_stepping := Sim.step sim
  done;
  match !completion with
  | None -> failwith "Driver.run: simulation drained before the sender completed"
  | Some (outcome, finished_at) ->
      (match metrics with
      | None -> ()
      | Some m ->
          (* Both machines publish through the one sink, split by label. *)
          Obs.Metrics.bridge_counters m
            ~labels:[ ("side", "sender"); ("transport", "sim") ]
            sender_counters;
          Obs.Metrics.bridge_counters m
            ~labels:[ ("side", "receiver"); ("transport", "sim") ]
            receiver_counters;
          Obs.Metrics.set_gauge
            (Obs.Metrics.gauge m ~labels:[ ("transport", "sim") ] "elapsed_ms")
            (Time.span_to_ms (Time.diff finished_at Time.zero));
          Obs.Metrics.set_gauge
            (Obs.Metrics.gauge m ~labels:[ ("transport", "sim") ] "wire_utilization")
            (Netmodel.Wire.utilization wire));
      (match outcome with
      | Protocol.Action.Success -> ()
      | Protocol.Action.Too_many_attempts | Protocol.Action.Peer_unreachable
      | Protocol.Action.Rejected ->
          (* Failure outcome: flush the flight recorder for postmortem. *)
          Option.iter
            (fun r ->
              ignore
                (Obs.Recorder.postmortem r
                   ~reason:(Format.asprintf "%a" Protocol.Action.pp_outcome outcome)
                  : string option))
            recorder);
      let received =
        Hashtbl.fold (fun seq payload acc -> (seq, payload) :: acc) delivered []
        |> List.sort (fun (a, _) (b, _) -> compare a b)
      in
      {
        outcome;
        elapsed = Time.diff finished_at Time.zero;
        (* The simulation clock stops within one ack copy of the completion
           instant, so the wire's busy fraction over the whole run is the
           utilization figure the paper reports. *)
        utilization = Netmodel.Wire.utilization wire;
        sender_cpu_busy = Netmodel.Station.cpu_busy_span sender_station ~now:(Sim.now sim);
        receiver_cpu_busy =
          Netmodel.Station.cpu_busy_span receiver_station ~now:(Sim.now sim);
        wire = Netmodel.Wire.counters wire;
        sender = sender_counters;
        receiver = receiver_counters;
        received;
      }

let elapsed_ms result = Time.span_to_ms result.elapsed
