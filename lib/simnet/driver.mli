(** Runs a protocol sender/receiver pair over the simulated LAN and measures
    the transfer.

    Each station runs two processes, mirroring the interrupt-level structure
    of the V kernel implementation: a receive pump that copies arriving
    frames out of the interface (at [C]/[Ca] CPU cost) and hands them to the
    protocol machine, and a main process that executes the machine's actions
    (each [Send] is a blocking copy-and-transmit on the shared CPU). All of
    the paper's timing behaviour — copy overlap between the two machines,
    the ack-handling cost of the sliding-window protocol, busy-wait
    serialization — emerges from this structure rather than being hard-coded.

    Frame sizes on the wire follow the paper: data packets are
    [Params.data_packet_bytes], acks (and REQs) [Params.ack_packet_bytes];
    a selective NACK additionally carries its bitmap. *)

type result = {
  outcome : Protocol.Action.outcome;
  elapsed : Eventsim.Time.span;  (** transfer start to sender completion *)
  utilization : float;  (** wire busy fraction over the elapsed time *)
  wire : Netmodel.Wire.counters;
  sender : Protocol.Counters.t;
  receiver : Protocol.Counters.t;
  received : (int * string) list;
      (** delivered packets in [seq] order, with payloads (empty payloads
          unless [payload] was supplied) *)
  sender_cpu_busy : Eventsim.Time.span;
      (** host CPU busy time on the sending station (copies, busy-waits,
          command issue) — the figure a DMA interface reduces *)
  receiver_cpu_busy : Eventsim.Time.span;
}

val frame_bytes : Netmodel.Params.t -> Packet.Message.t -> int

val run :
  ?params:Netmodel.Params.t ->
  ?network_error:Netmodel.Error_model.t ->
  ?interface_error:Netmodel.Error_model.t ->
  ?trace:Eventsim.Trace.t ->
  ?arbiter:Netmodel.Arbiter.t ->
  ?background:(Packet.Message.t Netmodel.Wire.t -> unit) ->
  ?rtt:Protocol.Rtt.t ->
  ?pacing:Eventsim.Time.span ->
  ?sender_faults:Faults.Netem.t ->
  ?receiver_faults:Faults.Netem.t ->
  ?recorder:Obs.Recorder.t ->
  ?metrics:Obs.Metrics.t ->
  ?payload:(int -> string) ->
  suite:Protocol.Suite.t ->
  config:Protocol.Config.t ->
  unit ->
  result
(** [arbiter] selects the medium-access model (default FIFO). [background]
    runs after the wire is created and before the transfer starts — attach
    {!Load} flows or extra stations there. [rtt] gives the sender an adaptive
    retransmission timeout instead of the fixed [Config.retransmit_ns];
    [pacing] inserts a fixed gap after each data packet. The
    run stops at the instant the sender completes, so immortal background
    processes are fine.

    [sender_faults] / [receiver_faults] put a {!Faults.Netem} pipeline on
    that side's outgoing messages — the same scenarios the UDP chaos soak
    uses. Each Netem's injection count is attached to its side's counters;
    emissions the codec rejects are charged to the {e opposite} side's
    [corrupt_detected]/[garbage_received] (the interface that would have
    discarded the frame).

    [recorder] journals both endpoints' datagram events (lanes ["sender"] /
    ["receiver"], timestamps in simulation time) and is dumped automatically
    on a failure outcome. [metrics] receives both counter records plus
    elapsed-time and utilization gauges when the run completes. *)

val elapsed_ms : result -> float
