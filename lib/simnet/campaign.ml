type spec = {
  params : Netmodel.Params.t;
  suite : Protocol.Suite.t;
  config : Protocol.Config.t;
  network_loss : float;
  interface_loss : float;
  trials : int;
  seed : int;
}

let default ?(params = Netmodel.Params.standalone) ?(network_loss = 0.0)
    ?(interface_loss = 0.0) ?(trials = 30) ?(seed = 1) ~suite ~config () =
  if trials <= 0 then invalid_arg "Campaign.default: trials must be positive";
  { params; suite; config; network_loss; interface_loss; trials; seed }

type outcome = {
  elapsed_ms : Stats.Summary.t;
  failures : int;
  retransmissions : Stats.Summary.t;
}

let error_model rng loss =
  if loss = 0.0 then Netmodel.Error_model.perfect () else Netmodel.Error_model.iid rng ~loss

let run_one spec ~rng =
  let network_error = error_model (Stats.Rng.split rng) spec.network_loss in
  let interface_error = error_model (Stats.Rng.split rng) spec.interface_loss in
  Driver.run ~params:spec.params ~network_error ~interface_error ~suite:spec.suite
    ~config:spec.config ()

let run ?pool ?jobs spec =
  (* One pool task per trial; the per-trial measurements are folded into the
     summaries in trial order afterwards, so the outcome is bit-for-bit
     independent of [jobs]. *)
  let trial_results =
    Exec.Pool.init ?pool ?jobs spec.trials ~f:(fun trial ->
        let rng = Stats.Rng.derive ~root:spec.seed ~index:trial in
        let result = run_one spec ~rng in
        match result.Driver.outcome with
        | Protocol.Action.Success ->
            Some
              ( Driver.elapsed_ms result,
                float_of_int result.Driver.sender.Protocol.Counters.retransmitted_data )
        | Protocol.Action.Too_many_attempts | Protocol.Action.Peer_unreachable
        | Protocol.Action.Rejected ->
            None)
  in
  let elapsed = Stats.Summary.create () in
  let retransmissions = Stats.Summary.create () in
  let failures = ref 0 in
  Array.iter
    (function
      | Some (elapsed_ms, retransmitted) ->
          Stats.Summary.add elapsed elapsed_ms;
          Stats.Summary.add retransmissions retransmitted
      | None -> incr failures)
    trial_results;
  { elapsed_ms = elapsed; failures = !failures; retransmissions }
