type spec = {
  params : Netmodel.Params.t;
  suite : Protocol.Suite.t;
  config : Protocol.Config.t;
  network_loss : float;
  interface_loss : float;
  trials : int;
  seed : int;
}

let default ?(params = Netmodel.Params.standalone) ?(network_loss = 0.0)
    ?(interface_loss = 0.0) ?(trials = 30) ?(seed = 1) ~suite ~config () =
  if trials <= 0 then invalid_arg "Campaign.default: trials must be positive";
  { params; suite; config; network_loss; interface_loss; trials; seed }

type outcome = {
  elapsed_ms : Stats.Summary.t;
  failures : int;
  retransmissions : Stats.Summary.t;
}

let error_model rng loss =
  if loss = 0.0 then Netmodel.Error_model.perfect () else Netmodel.Error_model.iid rng ~loss

let run_one spec ~rng =
  let network_error = error_model (Stats.Rng.split rng) spec.network_loss in
  let interface_error = error_model (Stats.Rng.split rng) spec.interface_loss in
  Driver.run ~params:spec.params ~network_error ~interface_error ~suite:spec.suite
    ~config:spec.config ()

let run spec =
  let elapsed = Stats.Summary.create () in
  let retransmissions = Stats.Summary.create () in
  let failures = ref 0 in
  for trial = 0 to spec.trials - 1 do
    let rng = Stats.Rng.create ~seed:((spec.seed * 1_000_003) + trial) in
    let result = run_one spec ~rng in
    match result.Driver.outcome with
    | Protocol.Action.Success ->
        Stats.Summary.add elapsed (Driver.elapsed_ms result);
        Stats.Summary.add retransmissions
          (float_of_int result.Driver.sender.Protocol.Counters.retransmitted_data)
    | Protocol.Action.Too_many_attempts | Protocol.Action.Peer_unreachable ->
        incr failures
  done;
  { elapsed_ms = elapsed; failures = !failures; retransmissions }
