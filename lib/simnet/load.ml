open Eventsim

type flow = { mutable sent : int }

let attach ~rng ~offered_load ?frame_bytes wire =
  if not (offered_load > 0.0 && offered_load < 1.0) then
    invalid_arg "Load.attach: offered_load outside (0,1)";
  let params = Netmodel.Wire.params wire in
  let frame_bytes =
    Option.value frame_bytes ~default:params.Netmodel.Params.data_packet_bytes
  in
  (* Background traffic models other machines: only its occupancy of the
     medium matters, so frames go straight onto the wire with no host CPU
     costs. The flow talks to itself through a deep receive port that a drain
     process empties. *)
  let address, mailbox = Netmodel.Wire.register wire ~rx_buffers:1024 in
  let serialization =
    Netmodel.Units.transmit_span ~bandwidth_bps:params.Netmodel.Params.bandwidth_bps
      ~bytes:frame_bytes
  in
  let mean_gap_ms = Time.span_to_ms serialization /. offered_load in
  let flow = { sent = 0 } in
  let env = Proc.env (Netmodel.Wire.sim wire) in
  let filler =
    (* An id no real transfer allocates, so protocol demultiplexers ignore
       any stray delivery. *)
    Packet.Message.data ~transfer_id:0xFFFFFFFF ~seq:0 ~total:1 ~payload:""
  in
  let frame = { Netmodel.Wire.src = address; dst = address; bytes = frame_bytes; payload = filler } in
  Proc.spawn env ~name:"bg-source" (fun () ->
      while true do
        Proc.sleep (Time.span_ms (Stats.Rng.exponential rng ~mean:mean_gap_ms));
        (* Each frame contends on its own, so offered load is independent of
           how long any one frame waits for the medium. *)
        Proc.spawn env ~name:"bg-frame" (fun () -> Netmodel.Wire.transmit wire frame);
        flow.sent <- flow.sent + 1
      done);
  Proc.spawn env ~name:"bg-sink" (fun () ->
      while true do
        ignore (Mailbox.get mailbox)
      done);
  flow

let frames_sent flow = flow.sent
