(** Background traffic generation.

    The paper measured on an idle network and warns its conclusions hold
    under low load; these generators create the non-idle regime so the load
    ablation can map where the conclusions bend. Each flow is a pair of extra
    stations: a Poisson source that blind-sends fixed-size frames, and a sink
    process that drains them (so sink-side buffers do not overflow and skew
    the overrun counters). *)

type flow

val attach :
  rng:Stats.Rng.t ->
  offered_load:float ->
  ?frame_bytes:int ->
  Packet.Message.t Netmodel.Wire.t ->
  flow
(** [attach ~rng ~offered_load wire] adds one background flow whose mean
    offered load is [offered_load] of the wire's bandwidth (0 < load < 1):
    frame inter-arrival times are exponential with mean
    [serialization_time / offered_load]. Frames default to the data packet
    size. The flow starts immediately and runs for the life of the
    simulation. *)

val frames_sent : flow -> int
