(** Binary wire format.

    Layout (all integers big-endian):
    {v
      0  magic      0xB1A5                    (2 bytes)
      2  version    1 | 2                     (1)
      3  kind                                 (1)
      4  transfer_id                          (4)
      8  seq                                  (4)
      12 total                                (4)
      16 payload length                       (2)
      18 header checksum (Internet, field 0)  (2)
      20 payload CRC-32                       (4)
      24 payload ...                          (v1)
      24 receiver budget                      (4, v2 only)
      28 payload ...                          (v2)
    v}

    A message with [budget = None] encodes as v1 — byte-identical to the
    pre-budget wire format — so old peers interoperate until both ends have
    opted into adaptive trains. [decode] accepts both versions. *)

type error =
  | Too_short
  | Bad_magic
  | Bad_version of int
  | Bad_kind of int
  | Bad_header_checksum
  | Bad_payload_checksum
  | Length_mismatch of { declared : int; actual : int }

val pp_error : Format.formatter -> error -> unit

val header_bytes : int
(** v1 header size; also the minimum decodable datagram. *)

val header_bytes_v2 : int

val encode : Message.t -> bytes

val decode : bytes -> (Message.t, error) result
(** Rejects truncated, corrupted or trailing-garbage datagrams. *)

val decode_sub : bytes -> pos:int -> len:int -> (Message.t, error) result
