let internet ?(initial = 0) buf ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Bytes.length buf then
    invalid_arg "Checksum.internet: range out of bounds";
  let sum = ref initial in
  let i = ref pos in
  let stop = pos + len in
  while !i + 1 < stop do
    sum := !sum + (Char.code (Bytes.get buf !i) lsl 8) + Char.code (Bytes.get buf (!i + 1));
    i := !i + 2
  done;
  if !i < stop then sum := !sum + (Char.code (Bytes.get buf !i) lsl 8);
  let folded = ref !sum in
  while !folded > 0xFFFF do
    folded := (!folded land 0xFFFF) + (!folded lsr 16)
  done;
  lnot !folded land 0xFFFF

let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref (Int32.of_int n) in
         for _ = 0 to 7 do
           if Int32.logand !c 1l <> 0l then
             c := Int32.logxor 0xEDB88320l (Int32.shift_right_logical !c 1)
           else c := Int32.shift_right_logical !c 1
         done;
         !c))

let crc32 buf ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Bytes.length buf then
    invalid_arg "Checksum.crc32: range out of bounds";
  let table = Lazy.force crc_table in
  let crc = ref 0xFFFFFFFFl in
  for i = pos to pos + len - 1 do
    let index = Int32.to_int (Int32.logand (Int32.logxor !crc (Int32.of_int (Char.code (Bytes.get buf i)))) 0xFFl) in
    crc := Int32.logxor table.(index) (Int32.shift_right_logical !crc 8)
  done;
  Int32.logxor !crc 0xFFFFFFFFl

let crc32_string s = crc32 (Bytes.unsafe_of_string s) ~pos:0 ~len:(String.length s)
