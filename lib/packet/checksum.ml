let internet ?(initial = 0) buf ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Bytes.length buf then
    invalid_arg "Checksum.internet: range out of bounds";
  let sum = ref initial in
  let i = ref pos in
  let stop = pos + len in
  while !i + 1 < stop do
    sum := !sum + (Char.code (Bytes.get buf !i) lsl 8) + Char.code (Bytes.get buf (!i + 1));
    i := !i + 2
  done;
  if !i < stop then sum := !sum + (Char.code (Bytes.get buf !i) lsl 8);
  let folded = ref !sum in
  while !folded > 0xFFFF do
    folded := (!folded land 0xFFFF) + (!folded lsr 16)
  done;
  lnot !folded land 0xFFFF

(* The table and the running CRC live in native ints (the polynomial fits in
   63 bits with room to spare): boxed [Int32] arithmetic in the per-byte loop
   allocates on every step, and this is the hottest loop in the simulated
   data path. Only the final result is boxed. *)
let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           if !c land 1 <> 0 then c := 0xEDB88320 lxor (!c lsr 1) else c := !c lsr 1
         done;
         !c))

let crc32 buf ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Bytes.length buf then
    invalid_arg "Checksum.crc32: range out of bounds";
  let table = Lazy.force crc_table in
  let crc = ref 0xFFFFFFFF in
  for i = pos to pos + len - 1 do
    let index = (!crc lxor Char.code (Bytes.unsafe_get buf i)) land 0xFF in
    crc := Array.unsafe_get table index lxor (!crc lsr 8)
  done;
  Int32.of_int (!crc lxor 0xFFFFFFFF)

let crc32_string s = crc32 (Bytes.unsafe_of_string s) ~pos:0 ~len:(String.length s)
