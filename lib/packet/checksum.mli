(** Checksums used by the wire format.

    The 16-bit ones'-complement ("Internet") checksum protects the header;
    CRC-32 (IEEE 802.3, the Ethernet polynomial) protects the payload —
    matching the paper's setting where the data link layer CRC is the only
    integrity check. *)

val internet : ?initial:int -> bytes -> pos:int -> len:int -> int
(** Ones'-complement sum over the given range (odd lengths are zero-padded),
    folded to 16 bits and complemented. Result in [0, 0xFFFF]. *)

val crc32 : bytes -> pos:int -> len:int -> int32
(** IEEE CRC-32 (reflected, init/xorout 0xFFFFFFFF) over the range. *)

val crc32_string : string -> int32
