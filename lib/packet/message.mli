(** Protocol messages.

    This is the unit the protocol state machines exchange. On the simulated
    network messages travel as-is (the simulator models time, not bytes); on
    the UDP transport they are serialized by {!Codec}. *)

type t = {
  kind : Kind.t;
  transfer_id : int;  (** identifies one bulk transfer; 32-bit *)
  seq : int;
      (** [Data]: index of this packet in the train, from 0.
          [Ack]: number of packets cumulatively received in order
          (SAW/sliding-window) or the train length (blast completion).
          [Nack]: first missing packet index.
          [Req]: 0. *)
  total : int;  (** number of data packets in the transfer *)
  payload : string;
      (** [Data]: the data bytes; [Nack] with selective information: an
          encoded {!Bitset} of received packets; otherwise empty *)
  budget : int option;
      (** Receiver-advertised train budget (adaptive flow control). [None]
          travels as wire v1 — byte-identical to the pre-budget format — so
          fixed-tuning peers interoperate unchanged; [Some _] travels as
          wire v2. On a REQ, [Some 0] announces the sender speaks v2 and
          wants adaptive trains; on an ACK/NACK it caps the next train. *)
}

val make :
  ?budget:int -> Kind.t -> transfer_id:int -> seq:int -> total:int -> payload:string -> t
(** The general constructor behind the shorthands below; validates the
    u32 fields and the payload cap. *)

val req : transfer_id:int -> total:int -> t

val req_with_geometry : transfer_id:int -> packet_bytes:int -> total_bytes:int -> t
(** A transfer announcement whose payload carries the full geometry, so a
    receiver can size its buffer before the train arrives (the V kernel's
    pre-allocated-buffer contract). [total] is derived. *)

val geometry : t -> (int * int) option
(** [geometry t] is [(packet_bytes, total_bytes)] of a geometry-carrying
    [Req], [None] otherwise. *)

val rej : transfer_id:int -> t
(** The deterministic busy reply: a server at its admission cap answers the
    transfer's [Req] with this. *)

val data : transfer_id:int -> seq:int -> total:int -> payload:string -> t
val ack : transfer_id:int -> seq:int -> total:int -> t
val nack : transfer_id:int -> first_missing:int -> total:int -> ?received:Bitset.t -> unit -> t

val received_set : t -> Bitset.t option
(** Decodes the bitmap a selective NACK carries. *)

val with_budget : t -> int -> t
(** Stamps a receiver-advertised budget onto a message (forces wire v2). *)

val budget : t -> int option

val wire_bytes : t -> int
(** Size of the message on the wire (header + payload), for timing models. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
