(** Packet kinds of the bulk-transfer wire protocol. *)

type t =
  | Req  (** transfer announcement: carries the packet count of the train *)
  | Data  (** one data packet of the train *)
  | Ack  (** positive acknowledgement *)
  | Nack
      (** negative acknowledgement; carries the first missing sequence number
          and, for selective retransmission, a bitmap of received packets *)
  | Rej
      (** transfer refused at admission: a busy server answers a [Req] with
          this instead of the handshake [Ack], and the sender gives up
          immediately with a clean outcome instead of retrying the REQ *)
  | Mreq
      (** manifest query: which stripes of object [transfer_id] does this
          server hold? Rides the data path — unlike the admin stat socket
          it exists under memnet too, so ring repair is DST-testable *)
  | Mrep
      (** manifest reply: the server's verified stripe holdings for the
          queried object, payload encoded by {!Stripe.encode_manifest} *)

val to_byte : t -> int
val of_byte : int -> t option
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val all : t list
