(** Fixed-size bitmaps of received packets.

    A selective NACK carries one of these so the sender can retransmit
    exactly the missing packets; go-back-n uses only {!first_missing}. *)

type t

val create : int -> t
(** [create n] is an all-clear bitmap over sequence numbers [0 .. n-1].
    Requires [n >= 0]. *)

val length : t -> int
val set : t -> int -> unit
val clear : t -> int -> unit
val mem : t -> int -> bool
val count : t -> int
(** Number of set bits. *)

val is_full : t -> bool
val first_missing : t -> int option
(** Lowest clear index, [None] when full. *)

val missing : t -> int list
(** All clear indices, ascending. *)

val set_all : t -> unit
val reset : t -> unit
val copy : t -> t

val to_bytes : t -> bytes
(** Wire encoding: 4-byte big-endian length (in bits) then packed bits,
    LSB-first within each byte. *)

val of_bytes : bytes -> t option
(** Inverse of {!to_bytes}; [None] on malformed input. *)

val pp : Format.formatter -> t -> unit
