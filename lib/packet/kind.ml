type t = Req | Data | Ack | Nack | Rej

let to_byte = function Req -> 1 | Data -> 2 | Ack -> 3 | Nack -> 4 | Rej -> 5

let of_byte = function
  | 1 -> Some Req
  | 2 -> Some Data
  | 3 -> Some Ack
  | 4 -> Some Nack
  | 5 -> Some Rej
  | _ -> None

let equal a b = a = b

let pp ppf t =
  Format.pp_print_string ppf
    (match t with Req -> "REQ" | Data -> "DATA" | Ack -> "ACK" | Nack -> "NACK" | Rej -> "REJ")

let all = [ Req; Data; Ack; Nack; Rej ]
