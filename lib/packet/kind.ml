type t = Req | Data | Ack | Nack | Rej | Mreq | Mrep

let to_byte = function
  | Req -> 1
  | Data -> 2
  | Ack -> 3
  | Nack -> 4
  | Rej -> 5
  | Mreq -> 6
  | Mrep -> 7

let of_byte = function
  | 1 -> Some Req
  | 2 -> Some Data
  | 3 -> Some Ack
  | 4 -> Some Nack
  | 5 -> Some Rej
  | 6 -> Some Mreq
  | 7 -> Some Mrep
  | _ -> None

let equal a b = a = b

let pp ppf t =
  Format.pp_print_string ppf
    (match t with
    | Req -> "REQ"
    | Data -> "DATA"
    | Ack -> "ACK"
    | Nack -> "NACK"
    | Rej -> "REJ"
    | Mreq -> "MREQ"
    | Mrep -> "MREP")

let all = [ Req; Data; Ack; Nack; Rej; Mreq; Mrep ]
