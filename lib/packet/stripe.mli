(** Stripe framing and manifest wire form for ring transfers.

    A striped sub-transfer is an ordinary blast flow whose REQ payload
    carries a fixed extension naming which slice of which object it is;
    servers that verify such a flow record it in a manifest table, and
    answer [Mreq] queries with the encoded holdings. Everything here is
    transport-agnostic, so ring repair behaves identically over real UDP
    and memnet virtual time. *)

type t = {
  object_id : int;  (** the large object; 32-bit, equals the transfer id *)
  index : int;  (** which stripe of the object, from 0 *)
  count : int;  (** total stripes of the object *)
}

val ext_bytes : int
(** Size of the REQ-payload extension (12). *)

val encode_ext : t -> string
(** Raises [Invalid_argument] on out-of-range fields. *)

val decode_ext : string -> t option
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

(** One verified holding: a stripe this server CRC-checked end to end. *)
type entry = { stripe : t; bytes : int; crc : int32 }

val entry_bytes : int
val max_entries : int

val encode_manifest : entry list -> string
val decode_manifest : string -> entry list option

val manifest_query : object_id:int -> Message.t
(** The [Mreq] datagram: which stripes of [object_id] do you hold? *)

val manifest_reply : object_id:int -> entry list -> Message.t
(** The [Mrep] answer carrying {!encode_manifest} of the holdings. *)
