type t = {
  kind : Kind.t;
  transfer_id : int;
  seq : int;
  total : int;
  payload : string;
  budget : int option;
}

let check_u32 name v =
  if v < 0 || v > 0xFFFFFFFF then invalid_arg ("Message: " ^ name ^ " outside u32")

let make ?budget kind ~transfer_id ~seq ~total ~payload =
  check_u32 "transfer_id" transfer_id;
  check_u32 "seq" seq;
  check_u32 "total" total;
  (match budget with Some b -> check_u32 "budget" b | None -> ());
  if String.length payload > 0xFFFF then invalid_arg "Message: payload too large";
  { kind; transfer_id; seq; total; payload; budget }

let req ~transfer_id ~total = make Kind.Req ~transfer_id ~seq:0 ~total ~payload:""

let req_with_geometry ~transfer_id ~packet_bytes ~total_bytes =
  if packet_bytes <= 0 || total_bytes <= 0 then
    invalid_arg "Message.req_with_geometry: sizes must be positive";
  let total = (total_bytes + packet_bytes - 1) / packet_bytes in
  let payload = Bytes.create 8 in
  Bytes.set_int32_be payload 0 (Int32.of_int packet_bytes);
  Bytes.set_int32_be payload 4 (Int32.of_int total_bytes);
  make Kind.Req ~transfer_id ~seq:0 ~total ~payload:(Bytes.to_string payload)

let geometry t =
  if t.kind <> Kind.Req || String.length t.payload <> 8 then None
  else begin
    let buf = Bytes.of_string t.payload in
    let packet_bytes = Int32.to_int (Bytes.get_int32_be buf 0) in
    let total_bytes = Int32.to_int (Bytes.get_int32_be buf 4) in
    if packet_bytes <= 0 || total_bytes <= 0 then None else Some (packet_bytes, total_bytes)
  end

let rej ~transfer_id = make Kind.Rej ~transfer_id ~seq:0 ~total:0 ~payload:""

let data ~transfer_id ~seq ~total ~payload =
  if seq >= total then invalid_arg "Message.data: seq beyond total";
  make Kind.Data ~transfer_id ~seq ~total ~payload

let ack ~transfer_id ~seq ~total = make Kind.Ack ~transfer_id ~seq ~total ~payload:""

let nack ~transfer_id ~first_missing ~total ?received () =
  let payload =
    match received with
    | Some set -> Bytes.to_string (Bitset.to_bytes set)
    | None -> ""
  in
  make Kind.Nack ~transfer_id ~seq:first_missing ~total ~payload

let received_set t =
  if t.kind <> Kind.Nack || String.length t.payload = 0 then None
  else Bitset.of_bytes (Bytes.of_string t.payload)

let with_budget t budget =
  check_u32 "budget" budget;
  { t with budget = Some budget }

let budget t = t.budget

let header_bytes = 24
let header_bytes_v2 = 28
let wire_bytes t =
  (match t.budget with None -> header_bytes | Some _ -> header_bytes_v2)
  + String.length t.payload

let equal a b =
  Kind.equal a.kind b.kind && a.transfer_id = b.transfer_id && a.seq = b.seq
  && a.total = b.total
  && String.equal a.payload b.payload
  && a.budget = b.budget

let pp ppf t =
  Format.fprintf ppf "%a#%d seq=%d/%d (%d B payload)%a" Kind.pp t.kind t.transfer_id t.seq
    t.total (String.length t.payload)
    (fun ppf -> function None -> () | Some b -> Format.fprintf ppf " budget=%d" b)
    t.budget
