type error =
  | Too_short
  | Bad_magic
  | Bad_version of int
  | Bad_kind of int
  | Bad_header_checksum
  | Bad_payload_checksum
  | Length_mismatch of { declared : int; actual : int }

let pp_error ppf = function
  | Too_short -> Format.pp_print_string ppf "datagram too short"
  | Bad_magic -> Format.pp_print_string ppf "bad magic"
  | Bad_version v -> Format.fprintf ppf "unsupported version %d" v
  | Bad_kind k -> Format.fprintf ppf "unknown packet kind %d" k
  | Bad_header_checksum -> Format.pp_print_string ppf "header checksum mismatch"
  | Bad_payload_checksum -> Format.pp_print_string ppf "payload CRC mismatch"
  | Length_mismatch { declared; actual } ->
      Format.fprintf ppf "declared payload %d bytes, got %d" declared actual

(* v1 is the original 24-byte header. v2 appends a u32 receiver budget at
   offset 24 (payload then starts at 28) and is emitted only for messages
   that carry one, so a fixed-tuning peer never sees bytes it cannot parse
   unless the other end explicitly negotiated adaptive trains. *)
let header_bytes = 24
let header_bytes_v2 = 28
let magic = 0xB1A5
let version = 1
let version_v2 = 2

let encode (m : Message.t) =
  let payload_len = String.length m.Message.payload in
  let header, version, budget =
    match m.Message.budget with
    | None -> (header_bytes, version, 0)
    | Some b -> (header_bytes_v2, version_v2, b)
  in
  let buf = Bytes.create (header + payload_len) in
  Bytes.set_uint16_be buf 0 magic;
  Bytes.set_uint8 buf 2 version;
  Bytes.set_uint8 buf 3 (Kind.to_byte m.Message.kind);
  Bytes.set_int32_be buf 4 (Int32.of_int m.Message.transfer_id);
  Bytes.set_int32_be buf 8 (Int32.of_int m.Message.seq);
  Bytes.set_int32_be buf 12 (Int32.of_int m.Message.total);
  Bytes.set_uint16_be buf 16 payload_len;
  Bytes.set_uint16_be buf 18 0;
  if header > header_bytes then Bytes.set_int32_be buf 24 (Int32.of_int budget);
  Bytes.blit_string m.Message.payload 0 buf header payload_len;
  Bytes.set_int32_be buf 20 (Checksum.crc32 buf ~pos:header ~len:payload_len);
  let sum = Checksum.internet buf ~pos:0 ~len:header in
  Bytes.set_uint16_be buf 18 sum;
  buf

let u32 buf pos = Int32.to_int (Bytes.get_int32_be buf pos) land 0xFFFFFFFF

let decode_sub buf ~pos ~len =
  (* Total function over arbitrary byte ranges: a hostile or truncated
     datagram must yield [Error], never an exception. *)
  if pos < 0 || len < 0 || pos > Bytes.length buf - len then Error Too_short
  else if len < header_bytes then Error Too_short
  else begin
    let view = Bytes.sub buf pos len in
    if Bytes.get_uint16_be view 0 <> magic then Error Bad_magic
    else begin
      let v = Bytes.get_uint8 view 2 in
      if v <> version && v <> version_v2 then Error (Bad_version v)
      else begin
        let header = if v = version then header_bytes else header_bytes_v2 in
        if len < header then Error Too_short
        else begin
          let declared = Bytes.get_uint16_be view 16 in
          let actual = len - header in
          if declared <> actual then Error (Length_mismatch { declared; actual })
          else begin
            let stored_sum = Bytes.get_uint16_be view 18 in
            Bytes.set_uint16_be view 18 0;
            let computed = Checksum.internet view ~pos:0 ~len:header in
            if stored_sum <> computed then Error Bad_header_checksum
            else begin
              match Kind.of_byte (Bytes.get_uint8 view 3) with
              | None -> Error (Bad_kind (Bytes.get_uint8 view 3))
              | Some kind ->
                  let stored_crc = Bytes.get_int32_be view 20 in
                  let crc = Checksum.crc32 view ~pos:header ~len:actual in
                  if stored_crc <> crc then Error Bad_payload_checksum
                  else
                    Ok
                      {
                        Message.kind;
                        transfer_id = u32 view 4;
                        seq = u32 view 8;
                        total = u32 view 12;
                        payload = Bytes.sub_string view header actual;
                        budget = (if v = version then None else Some (u32 view 24));
                      }
            end
          end
        end
      end
    end
  end

let decode buf = decode_sub buf ~pos:0 ~len:(Bytes.length buf)
