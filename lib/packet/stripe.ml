(* Stripe framing for ring transfers. A striped sub-transfer is an ordinary
   blast flow whose REQ payload carries, after the geometry/suite/CRC block,
   a fixed 12-byte extension naming which slice of which object it is. The
   manifest codec is the wire form of a server's verified holdings for one
   object, carried in MREP replies on the same data path. *)

type t = { object_id : int; index : int; count : int }

let ext_bytes = 12

let check { object_id; index; count } =
  if object_id < 0 || object_id > 0xFFFFFFFF then
    invalid_arg "Stripe: object_id out of u32 range";
  if count <= 0 || count > 0xFFFF then invalid_arg "Stripe: count out of range";
  if index < 0 || index >= count then invalid_arg "Stripe: index out of range"

(* u32 object_id | u16 index | u16 count | u32 magic. The magic ("RS01")
   keeps a truncated or foreign payload from parsing as a stripe. *)
let ext_magic = 0x52533031l

let encode_ext stripe =
  check stripe;
  let buf = Bytes.create ext_bytes in
  Bytes.set_int32_be buf 0 (Int32.of_int stripe.object_id);
  Bytes.set_uint16_be buf 4 stripe.index;
  Bytes.set_uint16_be buf 6 stripe.count;
  Bytes.set_int32_be buf 8 ext_magic;
  Bytes.unsafe_to_string buf

let decode_ext s =
  if String.length s <> ext_bytes then None
  else
    let buf = Bytes.unsafe_of_string s in
    if Bytes.get_int32_be buf 8 <> ext_magic then None
    else
      let object_id = Int32.to_int (Bytes.get_int32_be buf 0) land 0xFFFFFFFF in
      let index = Bytes.get_uint16_be buf 4 in
      let count = Bytes.get_uint16_be buf 6 in
      if count <= 0 || index >= count then None
      else Some { object_id; index; count }

let equal a b = a.object_id = b.object_id && a.index = b.index && a.count = b.count

let pp ppf { object_id; index; count } =
  Format.fprintf ppf "obj %d stripe %d/%d" object_id index count

(* ---- Manifest wire form ---------------------------------------------- *)

type entry = { stripe : t; bytes : int; crc : int32 }

let entry_bytes = ext_bytes + 8

(* One UDP datagram bounds the reply; at 20 bytes per entry this caps a
   manifest reply at ~3200 stripes, far above any sane stripe count. *)
let max_entries = (0xFFFF - 2) / entry_bytes

let encode_manifest entries =
  let entries =
    if List.length entries > max_entries then invalid_arg "Stripe.encode_manifest: too many entries"
    else entries
  in
  let n = List.length entries in
  let buf = Bytes.create (2 + (n * entry_bytes)) in
  Bytes.set_uint16_be buf 0 n;
  List.iteri
    (fun i { stripe; bytes; crc } ->
      check stripe;
      if bytes < 0 || bytes > 0xFFFFFFFF then
        invalid_arg "Stripe.encode_manifest: bytes out of u32 range";
      let off = 2 + (i * entry_bytes) in
      Bytes.blit_string (encode_ext stripe) 0 buf off ext_bytes;
      Bytes.set_int32_be buf (off + ext_bytes) (Int32.of_int bytes);
      Bytes.set_int32_be buf (off + ext_bytes + 4) crc)
    entries;
  Bytes.unsafe_to_string buf

let decode_manifest s =
  let len = String.length s in
  if len < 2 then None
  else
    let buf = Bytes.unsafe_of_string s in
    let n = Bytes.get_uint16_be buf 0 in
    if len <> 2 + (n * entry_bytes) then None
    else
      let rec entries i acc =
        if i = n then Some (List.rev acc)
        else
          let off = 2 + (i * entry_bytes) in
          match decode_ext (String.sub s off ext_bytes) with
          | None -> None
          | Some stripe ->
              let bytes = Int32.to_int (Bytes.get_int32_be buf (off + ext_bytes)) land 0xFFFFFFFF in
              let crc = Bytes.get_int32_be buf (off + ext_bytes + 4) in
              entries (i + 1) ({ stripe; bytes; crc } :: acc)
      in
      entries 0 []

(* ---- Messages -------------------------------------------------------- *)

let manifest_query ~object_id =
  Message.make Kind.Mreq ~transfer_id:object_id ~seq:0 ~total:0 ~payload:""

let manifest_reply ~object_id entries =
  Message.make Kind.Mrep ~transfer_id:object_id ~seq:0 ~total:(List.length entries)
    ~payload:(encode_manifest entries)
