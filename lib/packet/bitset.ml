type t = { length : int; bits : Bytes.t }

let bytes_for n = (n + 7) / 8

let create n =
  if n < 0 then invalid_arg "Bitset.create: negative length";
  { length = n; bits = Bytes.make (bytes_for n) '\000' }

let length t = t.length

let check t i = if i < 0 || i >= t.length then invalid_arg "Bitset: index out of range"

let set t i =
  check t i;
  let b = Char.code (Bytes.get t.bits (i / 8)) in
  Bytes.set t.bits (i / 8) (Char.chr (b lor (1 lsl (i mod 8))))

let clear t i =
  check t i;
  let b = Char.code (Bytes.get t.bits (i / 8)) in
  Bytes.set t.bits (i / 8) (Char.chr (b land lnot (1 lsl (i mod 8)) land 0xFF))

let mem t i =
  check t i;
  Char.code (Bytes.get t.bits (i / 8)) land (1 lsl (i mod 8)) <> 0

let count t =
  let total = ref 0 in
  for i = 0 to t.length - 1 do
    if mem t i then incr total
  done;
  !total

let is_full t = count t = t.length

let first_missing t =
  let rec loop i = if i >= t.length then None else if mem t i then loop (i + 1) else Some i in
  loop 0

let missing t =
  let rec loop i acc = if i < 0 then acc else loop (i - 1) (if mem t i then acc else i :: acc) in
  loop (t.length - 1) []

let set_all t =
  for i = 0 to t.length - 1 do
    set t i
  done

let reset t = Bytes.fill t.bits 0 (Bytes.length t.bits) '\000'
let copy t = { length = t.length; bits = Bytes.copy t.bits }

let to_bytes t =
  let out = Bytes.create (4 + Bytes.length t.bits) in
  Bytes.set_int32_be out 0 (Int32.of_int t.length);
  Bytes.blit t.bits 0 out 4 (Bytes.length t.bits);
  out

let of_bytes buf =
  if Bytes.length buf < 4 then None
  else
    let length = Int32.to_int (Bytes.get_int32_be buf 0) in
    if length < 0 || Bytes.length buf <> 4 + bytes_for length then None
    else begin
      let t = create length in
      Bytes.blit buf 4 t.bits 0 (bytes_for length);
      (* Reject set bits beyond [length] so equal bitmaps have equal bytes. *)
      let ok = ref true in
      for i = length to (bytes_for length * 8) - 1 do
        if Char.code (Bytes.get t.bits (i / 8)) land (1 lsl (i mod 8)) <> 0 then ok := false
      done;
      if !ok then Some t else None
    end

let pp ppf t =
  Format.fprintf ppf "%d/%d set" (count t) t.length
