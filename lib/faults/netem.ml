type stats = {
  mutable dropped : int;
  mutable duplicated : int;
  mutable reordered : int;
  mutable corrupted : int;
  mutable truncated : int;
  mutable delayed : int;
}

let create_stats () =
  { dropped = 0; duplicated = 0; reordered = 0; corrupted = 0; truncated = 0; delayed = 0 }

let total stats =
  stats.dropped + stats.duplicated + stats.reordered + stats.corrupted + stats.truncated
  + stats.delayed

let pp_stats ppf s =
  Format.fprintf ppf "drop=%d dup=%d reorder=%d corrupt=%d truncate=%d delay=%d" s.dropped
    s.duplicated s.reordered s.corrupted s.truncated s.delayed

type emission = { delay_ns : int; data : bytes }

(* A held-back datagram: released after [countdown] further transmissions. *)
type held = { mutable countdown : int; emission : emission }

type stage =
  | Drop of Netmodel.Error_model.t
  | Duplicate of float
  | Hold of { p : float; gap : int }
  | Flip of { p : float; max_bits : int }
  | Cut of float
  | Jitter of { p : float; min_ns : int; max_ns : int }

type t = {
  rng : Stats.Rng.t;
  scenario : Scenario.t;
  stages : stage list;
  stats : stats;
  mutable counters : Protocol.Counters.t option;
  mutable observer : (string -> unit) option;
  mutable held : held list;
}

let stage_of_injector rng = function
  | Scenario.Drop_iid p -> Drop (Netmodel.Error_model.iid rng ~loss:p)
  | Scenario.Drop_burst { mean_loss; burst_length } ->
      Drop (Netmodel.Error_model.matched_gilbert_elliott rng ~mean_loss ~burst_length)
  | Scenario.Duplicate p -> Duplicate p
  | Scenario.Reorder { p; gap } -> Hold { p; gap }
  | Scenario.Corrupt { p; max_bits } -> Flip { p; max_bits }
  | Scenario.Truncate p -> Cut p
  | Scenario.Delay { p; min_ns; max_ns } -> Jitter { p; min_ns; max_ns }

let create ?counters ?(seed = 1) scenario =
  let rng = Stats.Rng.create ~seed in
  {
    rng;
    scenario;
    stages = List.map (stage_of_injector rng) (Scenario.injectors scenario);
    stats = create_stats ();
    counters;
    observer = None;
    held = [];
  }

let scenario t = t.scenario
let stats t = t.stats
let attach_counters t counters = t.counters <- Some counters
let set_observer t observer = t.observer <- Some observer

let note t label bump =
  bump t.stats;
  (match t.observer with None -> () | Some f -> f label);
  match t.counters with
  | None -> ()
  | Some c -> c.Protocol.Counters.faults_injected <- c.Protocol.Counters.faults_injected + 1

let flip_bits t ~max_bits data =
  let copy = Bytes.copy data in
  let bits = 1 + Stats.Rng.int t.rng max_bits in
  for _ = 1 to bits do
    let bit = Stats.Rng.int t.rng (8 * Bytes.length copy) in
    let byte = bit / 8 in
    Bytes.set_uint8 copy byte (Bytes.get_uint8 copy byte lxor (1 lsl (bit mod 8)))
  done;
  copy

let apply_stage t emissions stage =
  match stage with
  | Drop model ->
      List.filter
        (fun _ ->
          if Netmodel.Error_model.drops model then begin
            note t "drop" (fun s -> s.dropped <- s.dropped + 1);
            false
          end
          else true)
        emissions
  | Duplicate p ->
      List.concat_map
        (fun e ->
          if p > 0.0 && Stats.Rng.bernoulli t.rng ~p then begin
            note t "duplicate" (fun s -> s.duplicated <- s.duplicated + 1);
            [ e; { e with data = Bytes.copy e.data } ]
          end
          else [ e ])
        emissions
  | Hold { p; gap } ->
      List.filter
        (fun e ->
          if p > 0.0 && Stats.Rng.bernoulli t.rng ~p then begin
            note t "reorder" (fun s -> s.reordered <- s.reordered + 1);
            t.held <- { countdown = gap; emission = e } :: t.held;
            false
          end
          else true)
        emissions
  | Flip { p; max_bits } ->
      List.map
        (fun e ->
          if p > 0.0 && Bytes.length e.data > 0 && Stats.Rng.bernoulli t.rng ~p then begin
            note t "corrupt" (fun s -> s.corrupted <- s.corrupted + 1);
            { e with data = flip_bits t ~max_bits e.data }
          end
          else e)
        emissions
  | Cut p ->
      List.map
        (fun e ->
          if p > 0.0 && Bytes.length e.data > 0 && Stats.Rng.bernoulli t.rng ~p then begin
            note t "truncate" (fun s -> s.truncated <- s.truncated + 1);
            { e with data = Bytes.sub e.data 0 (Stats.Rng.int t.rng (Bytes.length e.data)) }
          end
          else e)
        emissions
  | Jitter { p; min_ns; max_ns } ->
      List.map
        (fun e ->
          if p > 0.0 && Stats.Rng.bernoulli t.rng ~p then begin
            note t "delay" (fun s -> s.delayed <- s.delayed + 1);
            let extra = min_ns + Stats.Rng.int t.rng (max_ns - min_ns + 1) in
            { e with delay_ns = e.delay_ns + extra }
          end
          else e)
        emissions

let take_due t =
  List.iter (fun h -> h.countdown <- h.countdown - 1) t.held;
  let due, still = List.partition (fun h -> h.countdown <= 0) t.held in
  t.held <- still;
  List.map (fun h -> h.emission) due

let tx_bytes t data =
  (* Held-back datagrams released this round bypass the pipeline: the fault
     that delayed them has already been applied. *)
  let released = take_due t in
  let out =
    List.fold_left (apply_stage t) [ { delay_ns = 0; data = Bytes.copy data } ] t.stages
  in
  out @ released

let flush t =
  let pending = List.map (fun h -> h.emission) t.held in
  t.held <- [];
  pending

let tx_message ?(on_undecodable = fun _ -> ()) t message =
  tx_bytes t (Packet.Codec.encode message)
  |> List.filter_map (fun e ->
         match Packet.Codec.decode e.data with
         | Ok m -> Some (e.delay_ns, m)
         | Error err ->
             (* A faulted frame the receiving codec would reject: on a real
                socket it crosses the wire and is discarded on arrival; on
                the simulated wire we discard it here and let the caller
                account for the detection. *)
             on_undecodable err;
             None)

let drops t =
  let dropped =
    List.fold_left
      (fun acc stage ->
        match stage with
        | Drop model -> Netmodel.Error_model.drops model || acc
        | Duplicate _ | Hold _ | Flip _ | Cut _ | Jitter _ -> acc)
      false t.stages
  in
  if dropped then note t "drop" (fun s -> s.dropped <- s.dropped + 1);
  dropped
