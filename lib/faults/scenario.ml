type injector =
  | Drop_iid of float
  | Drop_burst of { mean_loss : float; burst_length : float }
  | Duplicate of float
  | Reorder of { p : float; gap : int }
  | Corrupt of { p : float; max_bits : int }
  | Truncate of float
  | Delay of { p : float; min_ns : int; max_ns : int }

type t = { name : string; injectors : injector list }

let check_prob what p =
  if not (p >= 0.0 && p <= 1.0) then
    invalid_arg (Printf.sprintf "Scenario: %s probability %g outside [0,1]" what p)

let validate_injector = function
  | Drop_iid p -> check_prob "drop" p
  | Drop_burst { mean_loss; burst_length } ->
      if not (mean_loss >= 0.0 && mean_loss < 1.0) then
        invalid_arg "Scenario: burst mean_loss outside [0,1)";
      if not (burst_length >= 1.0) then invalid_arg "Scenario: burst_length < 1"
  | Duplicate p -> check_prob "duplicate" p
  | Reorder { p; gap } ->
      check_prob "reorder" p;
      if gap < 1 then invalid_arg "Scenario: reorder gap < 1"
  | Corrupt { p; max_bits } ->
      check_prob "corrupt" p;
      if max_bits < 1 then invalid_arg "Scenario: corrupt max_bits < 1"
  | Truncate p -> check_prob "truncate" p
  | Delay { p; min_ns; max_ns } ->
      check_prob "delay" p;
      if min_ns < 0 || max_ns < min_ns then invalid_arg "Scenario: delay window empty";
      if max_ns > 1_000_000_000 then invalid_arg "Scenario: delay beyond 1s"

let make ~name injectors =
  List.iter validate_injector injectors;
  { name; injectors }

let name t = t.name
let injectors t = t.injectors
let is_clean t = t.injectors = []

let injector_name = function
  | Drop_iid _ -> "drop"
  | Drop_burst _ -> "drop-burst"
  | Duplicate _ -> "duplicate"
  | Reorder _ -> "reorder"
  | Corrupt _ -> "corrupt"
  | Truncate _ -> "truncate"
  | Delay _ -> "delay"

let pp_injector ppf = function
  | Drop_iid p -> Format.fprintf ppf "drop(p=%g)" p
  | Drop_burst { mean_loss; burst_length } ->
      Format.fprintf ppf "drop-burst(loss=%g, burst=%g)" mean_loss burst_length
  | Duplicate p -> Format.fprintf ppf "duplicate(p=%g)" p
  | Reorder { p; gap } -> Format.fprintf ppf "reorder(p=%g, gap=%d)" p gap
  | Corrupt { p; max_bits } -> Format.fprintf ppf "corrupt(p=%g, bits<=%d)" p max_bits
  | Truncate p -> Format.fprintf ppf "truncate(p=%g)" p
  | Delay { p; min_ns; max_ns } ->
      Format.fprintf ppf "delay(p=%g, %.1f..%.1f ms)" p
        (float_of_int min_ns /. 1e6)
        (float_of_int max_ns /. 1e6)

let pp ppf t =
  if is_clean t then Format.fprintf ppf "%s: (no faults)" t.name
  else
    Format.fprintf ppf "%s: %a" t.name
      (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " + ") pp_injector)
      t.injectors

(* The named scenarios. Corruption is restricted to single-bit flips on
   purpose: a single flipped bit is always caught — in the header by the
   16-bit internet checksum (a one-word change of +/-2^k never preserves the
   one's-complement sum) and in the payload by the CRC32 — so the chaos
   invariant "never deliver corrupt data" is provable rather than a matter of
   seed luck. Multi-bit flips can defeat a 16-bit internet checksum (two
   flips in the same bit column of different words cancel); experiments that
   want to probe that real limitation can build their own scenario with
   [Corrupt { max_bits > 1 }]. *)

let clean = make ~name:"clean" []
let lossy2 = make ~name:"lossy2" [ Drop_iid 0.02 ]

let bursty =
  make ~name:"bursty" [ Drop_burst { mean_loss = 0.05; burst_length = 4.0 } ]

let corrupting =
  make ~name:"corrupting" [ Corrupt { p = 0.05; max_bits = 1 }; Truncate 0.03 ]

let chaos =
  make ~name:"chaos"
    [
      Drop_burst { mean_loss = 0.03; burst_length = 3.0 };
      Duplicate 0.03;
      Reorder { p = 0.05; gap = 2 };
      Corrupt { p = 0.03; max_bits = 1 };
      Truncate 0.02;
      Delay { p = 0.1; min_ns = 100_000; max_ns = 2_000_000 };
    ]

let all = [ clean; lossy2; bursty; corrupting; chaos ]
let find name = List.find_opt (fun s -> String.equal s.name name) all
