(** Composable fault-injection scenarios.

    A scenario is an ordered pipeline of injectors applied to every outgoing
    datagram. The same scenario value drives both transports — the simulated
    wire ({!Simnet}) and the real UDP socket path ({!Sockets}) — so a
    protocol's behaviour under a named adversary is directly comparable
    between them. *)

type injector =
  | Drop_iid of float  (** drop each datagram independently with probability p *)
  | Drop_burst of { mean_loss : float; burst_length : float }
      (** Gilbert-Elliott bursts at the given stationary loss rate
          (reuses {!Netmodel.Error_model.matched_gilbert_elliott}) *)
  | Duplicate of float  (** emit a second copy with probability p *)
  | Reorder of { p : float; gap : int }
      (** hold the datagram back and release it after [gap] later sends *)
  | Corrupt of { p : float; max_bits : int }
      (** flip 1..max_bits random bits; the packet codec's header checksum and
          payload CRC are expected to catch it *)
  | Truncate of float  (** cut the datagram to a random shorter length *)
  | Delay of { p : float; min_ns : int; max_ns : int }
      (** add uniform extra latency within [min_ns, max_ns] *)

type t

val make : name:string -> injector list -> t
(** Validates every injector (probabilities in [0,1], positive gaps, delay
    windows under a second) and raises [Invalid_argument] otherwise. *)

val name : t -> string
val injectors : t -> injector list
val is_clean : t -> bool

val injector_name : injector -> string
val pp_injector : Format.formatter -> injector -> unit
val pp : Format.formatter -> t -> unit

(** {2 Named registry}

    [clean] injects nothing; [lossy2] drops 2% iid; [bursty] drops 5% in
    bursts of mean length 4; [corrupting] flips single bits and truncates;
    [chaos] composes every injector at once. Single-bit corruption is
    deliberate: it is always detected by the codec's checksums, which makes
    the soak invariant (never deliver corrupt data) hold by construction. *)

val clean : t
val lossy2 : t
val bursty : t
val corrupting : t
val chaos : t

val all : t list
val find : string -> t option
