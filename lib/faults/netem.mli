(** Deterministically-seeded network fault injection ("netem").

    A [Netem.t] instantiates a {!Scenario.t} against a seeded random stream
    and transforms each outgoing datagram into zero or more emissions:
    dropped (iid or Gilbert-Elliott bursts), duplicated, held back and
    released later (reordering), bit-flipped, truncated, or delayed. The
    engine is transport-agnostic — it works on raw encoded datagrams — so the
    UDP socket path and the simulated wire share one fault model and one
    statistics record. All randomness comes from the creation seed: the same
    seed and the same send sequence replay the same faults. *)

type stats = {
  mutable dropped : int;
  mutable duplicated : int;
  mutable reordered : int;
  mutable corrupted : int;
  mutable truncated : int;
  mutable delayed : int;
}

val create_stats : unit -> stats

val total : stats -> int
(** Sum of all injected fault events. *)

val pp_stats : Format.formatter -> stats -> unit

type emission = { delay_ns : int; data : bytes }
(** One datagram to put on the wire, [delay_ns] after the send instant. *)

type t

val create : ?counters:Protocol.Counters.t -> ?seed:int -> Scenario.t -> t
(** When [counters] is given, every injected fault also bumps its
    [faults_injected] field, so transfer results surface the injection count
    alongside the protocol statistics. Default seed 1. *)

val scenario : t -> Scenario.t
val stats : t -> stats

val attach_counters : t -> Protocol.Counters.t -> unit
(** Redirects the [faults_injected] accounting to [counters] — the transports
    call this so a transfer's own counter record reflects the injections,
    even though the Netem was created before the transfer's counters. *)

val set_observer : t -> (string -> unit) -> unit
(** Installs a callback fired once per injected fault with its name
    ("drop", "duplicate", "reorder", "corrupt", "truncate", "delay") — the
    telemetry layer's journal hook. Fires exactly when [faults_injected]
    is bumped, so event counts and counters agree. *)

val tx_bytes : t -> bytes -> emission list
(** Runs one outgoing datagram through the injector pipeline. The input is
    copied, never mutated. An empty result means the datagram was dropped or
    held back; a held datagram reappears in the result of a later call, after
    its reorder gap has elapsed. *)

val tx_message :
  ?on_undecodable:(Packet.Codec.error -> unit) -> t -> Packet.Message.t -> (int * Packet.Message.t) list
(** Message-level front end for the simulated wire: encodes, runs
    {!tx_bytes}, and re-decodes each emission. Emissions the codec rejects
    (corrupted or truncated beyond recognition) are discarded —
    [on_undecodable] is called for each, letting the caller count the
    detection on the receiving side. Returns [(delay_ns, message)] pairs. *)

val flush : t -> emission list
(** Releases every held-back datagram immediately (end of a transfer). *)

val drops : t -> bool
(** Samples only the drop injectors for a single keep/drop decision — the
    {!Sockets.Lossy} compatibility path, and receive-side loss, where no byte
    transformation applies. *)
