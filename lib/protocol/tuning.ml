type pacing = No_pacing | Fixed_gap of int | Rtt_spread

let pacing_name = function
  | No_pacing -> "none"
  | Fixed_gap ns -> Printf.sprintf "gap=%dns" ns
  | Rtt_spread -> "rtt-spread"

let pp_pacing ppf p = Format.pp_print_string ppf (pacing_name p)

type fixed = { retransmit_ns : int; max_attempts : int; pacing : pacing }

type aimd = {
  init_train : int;
  min_train : int;
  max_train : int;
  increase : int;
  decrease : float;
  retransmit_ns : int;
  max_attempts : int;
  pacing : pacing;
}

type t = Fixed of fixed | Adaptive of aimd

let check_pacing = function
  | Fixed_gap ns when ns <= 0 -> invalid_arg "Tuning: pacing gap must be positive"
  | No_pacing | Fixed_gap _ | Rtt_spread -> ()

let check_timers ~retransmit_ns ~max_attempts =
  if retransmit_ns <= 0 then invalid_arg "Tuning: retransmit_ns must be positive";
  if max_attempts <= 0 then invalid_arg "Tuning: max_attempts must be positive"

let fixed ?(retransmit_ns = 200_000_000) ?(max_attempts = 50) ?(pacing = No_pacing) () =
  check_timers ~retransmit_ns ~max_attempts;
  check_pacing pacing;
  Fixed { retransmit_ns; max_attempts; pacing }

let adaptive ?(init_train = 8) ?(min_train = 1) ?(max_train = 128) ?(increase = 4)
    ?(decrease = 0.5) ?(retransmit_ns = 200_000_000) ?(max_attempts = 50)
    ?(pacing = No_pacing) () =
  check_timers ~retransmit_ns ~max_attempts;
  check_pacing pacing;
  if min_train <= 0 then invalid_arg "Tuning.adaptive: min_train must be positive";
  if max_train < min_train then invalid_arg "Tuning.adaptive: max_train below min_train";
  if init_train < min_train || init_train > max_train then
    invalid_arg "Tuning.adaptive: init_train outside [min_train, max_train]";
  if increase <= 0 then invalid_arg "Tuning.adaptive: increase must be positive";
  if not (decrease > 0.0 && decrease < 1.0) then
    invalid_arg "Tuning.adaptive: decrease must lie in (0, 1)";
  Adaptive
    { init_train; min_train; max_train; increase; decrease; retransmit_ns; max_attempts;
      pacing }

(* The paper's a-priori geometry: fixed trains, 200 ms timer (what
   [Config.make] always defaulted to). *)
let default = fixed ()

(* The transport layers historically defaulted to a 50 ms timer — loopback
   and LAN RTTs make the paper's 200 ms needlessly slow there. *)
let wire_default = fixed ~retransmit_ns:50_000_000 ()

let retransmit_ns = function
  | Fixed { retransmit_ns; _ } | Adaptive { retransmit_ns; _ } -> retransmit_ns

let max_attempts = function
  | Fixed { max_attempts; _ } | Adaptive { max_attempts; _ } -> max_attempts

let pacing = function Fixed { pacing; _ } | Adaptive { pacing; _ } -> pacing

let is_adaptive = function Adaptive _ -> true | Fixed _ -> false
let aimd = function Adaptive a -> Some a | Fixed _ -> None

let with_retransmit_ns t retransmit_ns =
  check_timers ~retransmit_ns ~max_attempts:(max_attempts t);
  match t with
  | Fixed f -> Fixed { f with retransmit_ns }
  | Adaptive a -> Adaptive { a with retransmit_ns }

let with_max_attempts t max_attempts =
  check_timers ~retransmit_ns:(retransmit_ns t) ~max_attempts;
  match t with
  | Fixed f -> Fixed { f with max_attempts }
  | Adaptive a -> Adaptive { a with max_attempts }

let with_pacing t pacing =
  check_pacing pacing;
  match t with
  | Fixed f -> Fixed { f with pacing }
  | Adaptive a -> Adaptive { a with pacing }

(* An adaptive sender that discovers a fixed-only (or pre-budget) peer
   falls back to this: same timers, same pacing, trains pinned at the
   controller's initial length. *)
let negotiate_down = function
  | Fixed _ as t -> t
  | Adaptive a ->
      Fixed
        { retransmit_ns = a.retransmit_ns; max_attempts = a.max_attempts;
          pacing = a.pacing }

let name = function Fixed _ -> "fixed" | Adaptive _ -> "adaptive"

(* One self-describing line for bench / DST journal headers: every field
   that shapes a run, stable under reformatting. *)
let to_string = function
  | Fixed { retransmit_ns; max_attempts; pacing } ->
      Printf.sprintf "fixed{retransmit_ns=%d;max_attempts=%d;pacing=%s}" retransmit_ns
        max_attempts (pacing_name pacing)
  | Adaptive a ->
      Printf.sprintf
        "adaptive{train=%d..%d(init %d);+%d;x%.3f;retransmit_ns=%d;max_attempts=%d;pacing=%s}"
        a.min_train a.max_train a.init_train a.increase a.decrease a.retransmit_ns
        a.max_attempts (pacing_name a.pacing)

let pp ppf t = Format.pp_print_string ppf (to_string t)

let equal (a : t) (b : t) = a = b
