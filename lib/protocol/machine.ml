type t = {
  name : string;
  start : unit -> Action.t list;
  handle : Action.event -> Action.t list;
  is_complete : unit -> bool;
  outcome : unit -> Action.outcome option;
  counters : Counters.t;
}

let make ~name ~start ~handle ~is_complete ~outcome ~counters =
  let started = ref false in
  let checked_start () =
    if !started then invalid_arg "Machine.start: already started";
    started := true;
    start ()
  in
  { name; start = checked_start; handle; is_complete; outcome; counters }

let constant_payload config seq =
  let n = config.Config.packet_bytes in
  String.init n (fun i -> Char.chr ((seq + i) land 0xFF))
