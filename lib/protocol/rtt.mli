(** Adaptive retransmission-timeout estimation (Jacobson/Karn style).

    The paper uses a fixed retransmission interval [T_r] and shows in its
    Figure 6 how much the choice matters for the variance of full
    retransmission. An estimator that tracks the smoothed round-trip time and
    its deviation makes the timeout self-tuning — the "more sophisticated"
    repair machinery its Section 3.2 gestures at. All times are integer
    nanoseconds. *)

type t

val create : ?alpha:float -> ?beta:float -> ?k:float -> initial_ns:int -> unit -> t
(** [alpha] smooths the RTT estimate (default 1/8), [beta] the deviation
    (default 1/4), [k] scales the deviation term (default 4.0). Until the
    first sample, {!timeout_ns} returns [initial_ns]. *)

val observe : t -> sample_ns:int -> unit
(** Folds one round-trip sample in. Per Karn's rule, callers must not feed
    samples from exchanges that were retransmitted. Non-positive samples are
    rejected with [Invalid_argument]. *)

val timeout_ns : t -> int
(** [srtt + k * rttvar], clamped to at least [min_timeout_ns] (1 ms) and at
    most 100x the initial value. *)

val backoff : t -> unit
(** Doubles the current timeout (applied on each timeout expiry, reset by the
    next successful observation). *)

val samples : t -> int
val srtt_ns : t -> int option
