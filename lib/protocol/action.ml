type outcome = Success | Too_many_attempts | Peer_unreachable | Rejected

type t =
  | Send of Packet.Message.t
  | Arm_timer of int
  | Stop_timer
  | Deliver of { seq : int; payload : string }
  | Complete of outcome

type event = Message of Packet.Message.t | Timeout

let pp_outcome ppf = function
  | Success -> Format.pp_print_string ppf "success"
  | Too_many_attempts -> Format.pp_print_string ppf "too many attempts"
  | Peer_unreachable -> Format.pp_print_string ppf "peer unreachable"
  | Rejected -> Format.pp_print_string ppf "rejected (server busy)"

let pp ppf = function
  | Send m -> Format.fprintf ppf "send %a" Packet.Message.pp m
  | Arm_timer ns -> Format.fprintf ppf "arm timer %.3f ms" (float_of_int ns /. 1e6)
  | Stop_timer -> Format.pp_print_string ppf "stop timer"
  | Deliver { seq; payload } -> Format.fprintf ppf "deliver seq=%d (%d B)" seq (String.length payload)
  | Complete outcome -> Format.fprintf ppf "complete: %a" pp_outcome outcome

let pp_event ppf = function
  | Message m -> Format.fprintf ppf "message %a" Packet.Message.pp m
  | Timeout -> Format.pp_print_string ppf "timeout"
