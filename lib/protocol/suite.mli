(** The protocol family as first-class values, for sweeps and benchmarks. *)

type t =
  | Stop_and_wait
  | Sliding_window of { window : int }
  | Blast of Blast.strategy
  | Multi_blast of { strategy : Blast.strategy; chunk_packets : int }

val name : t -> string
val pp : Format.formatter -> t -> unit

val error_free_trio : t list
(** SAW, never-closing sliding window, plain blast — Table 1's columns.
    (The window is chosen per-transfer by the drivers via
    [Sliding_window {window = max_int}], interpreted as "never closes".) *)

val all_blast_strategies : t list

val sender : t -> ?counters:Counters.t -> Config.t -> payload:(int -> string) -> Machine.t
val receiver : t -> ?counters:Counters.t -> Config.t -> Machine.t
