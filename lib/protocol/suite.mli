(** The protocol family as first-class values, for sweeps and benchmarks. *)

type t =
  | Stop_and_wait
  | Sliding_window of { window : int }
  | Blast of Blast.strategy
  | Multi_blast of { strategy : Blast.strategy; chunk_packets : int }

val name : t -> string
val pp : Format.formatter -> t -> unit

val error_free_trio : t list
(** SAW, never-closing sliding window, plain blast — Table 1's columns.
    (The window is chosen per-transfer by the drivers via
    [Sliding_window {window = max_int}], interpreted as "never closes".) *)

val all_blast_strategies : t list

val sender :
  t ->
  ?counters:Counters.t ->
  ?ctrl:Adapt.t ->
  Config.t ->
  payload:(int -> string) ->
  Machine.t
(** When the config's tuning is [Adaptive], blast-family suites dispatch to
    {!Adapt.sender} — the carried strategy/chunking only matters as the
    negotiated-down fallback. [?ctrl] exposes the AIMD controller to the
    caller (for pacing); ignored by non-adaptive machines. *)

val receiver : t -> ?counters:Counters.t -> ?budget:(unit -> int) -> Config.t -> Machine.t
(** [?budget] is the receiver's advertised-budget source, sampled per
    solicit by {!Adapt.receiver}; ignored by fixed-tuning machines. *)
