open Action

(* AIMD controller over the blast train length.

   The classic additive-increase / multiplicative-decrease shape: a clean
   round (every packet of the train accounted for) grows the next train by a
   fixed step; any loss in the round multiplies it down. The receiver's
   advertised budget — carried in the v2 ACK/NACK wire format — is a hard
   cap layered on top, so an overloaded engine sheds load through the
   protocol instead of through drops. Everything here is integer/float
   arithmetic on explicit inputs: no clocks, no randomness — the controller
   is exactly as deterministic as its event stream, which is what lets DST
   journal it bit-for-bit. *)

type t = {
  params : Tuning.aimd;
  mutable train : int;
  mutable budget : int option;  (** latest receiver-advertised cap *)
  mutable rounds : int;  (** rounds observed (loss or clean) *)
  mutable loss_rounds : int;
}

let create (params : Tuning.aimd) =
  { params; train = params.init_train; budget = None; rounds = 0; loss_rounds = 0 }

let params t = t.params

let clamp t v =
  let ceiling =
    match t.budget with
    | Some b -> min t.params.Tuning.max_train (max b 0)
    | None -> t.params.Tuning.max_train
  in
  (* The floor wins over the budget: a receiver advertising 0 throttles us
     to min_train, it cannot stall the transfer entirely. *)
  max t.params.Tuning.min_train (min ceiling v)

let train t = clamp t t.train

let on_budget t ~budget =
  t.budget <- Some budget;
  t.train <- clamp t t.train

let decrease t ~factor =
  t.loss_rounds <- t.loss_rounds + 1;
  t.train <- clamp t (int_of_float (floor (float_of_int t.train *. factor)))

let on_round t ~sent ~lost =
  if sent > 0 then begin
    t.rounds <- t.rounds + 1;
    if lost > 0 then begin
      (* Proportional backoff (the DCTCP shape): a fully lost train backs
         off by the configured factor, one loss in a long train barely
         nudges it. Mild iid wire loss — the LAN regime this repo models —
         must not starve the pipe the way blind halving does. *)
      let frac = float_of_int (min lost sent) /. float_of_int sent in
      decrease t ~factor:(1.0 -. ((1.0 -. t.params.Tuning.decrease) *. frac))
    end
    else t.train <- clamp t (t.train + t.params.Tuning.increase)
  end

(* A retransmission timeout is the strongest congestion signal we get —
   the whole tail of the train (solicit included) vanished. Full backoff. *)
let on_timeout t =
  t.rounds <- t.rounds + 1;
  decrease t ~factor:t.params.Tuning.decrease

let open_train t ~train = t.train <- clamp t (max t.train train)

let loss_rounds t = t.loss_rounds
let rounds t = t.rounds

(* Spread one train across one smoothed RTT. Before the first RTT sample
   (or under [No_pacing]) the gap is 0 — blast back-to-back, as the paper
   does. *)
let pacing_gap_ns t ~srtt_ns =
  match t.params.Tuning.pacing with
  | Tuning.No_pacing -> 0
  | Tuning.Fixed_gap ns -> ns
  | Tuning.Rtt_spread -> (
      match srtt_ns with
      | Some srtt when srtt > 0 -> srtt / max 1 (train t)
      | Some _ | None -> 0)

let pp ppf t =
  Format.fprintf ppf "train=%d budget=%s rounds=%d loss-rounds=%d" (train t)
    (match t.budget with None -> "-" | Some b -> string_of_int b)
    t.rounds t.loss_rounds

(* ------------------------------------------------------------------ *)
(* The adaptive blast machine pair.

   Coordinates stay global (no chunk translation): each round the sender
   blasts the first [train] still-missing packets and marks the last one as
   the solicit by stamping a budget field onto it (any v2 DATA is a solicit
   — the value itself is unused sender->receiver). The receiver answers
   every solicit with either a cumulative ACK (transfer complete) or a
   selective NACK carrying its full received bitmap, both stamped with its
   advertised budget. The sender folds the bitmap into its view, feeds the
   controller, and blasts the next train. *)

let aimd_of (config : Config.t) =
  match Tuning.aimd config.Config.tuning with
  | Some a -> a
  | None ->
      invalid_arg "Adapt: config carries fixed tuning; use a blast machine instead"

let sender ?(counters = Counters.create ()) ?ctrl (config : Config.t) ~payload =
  let params = aimd_of config in
  let ctrl = match ctrl with Some c -> c | None -> create params in
  let total = config.Config.total_packets in
  let outcome = ref None in
  let acked = Packet.Bitset.create total in
  let sent_before = Array.make total false in
  let attempts = ref 0 in  (* consecutive rounds without fresh progress *)
  let budget_opened = ref false in
  let flight = ref [] in  (* seqs of the train in flight *)
  let solicit = ref 0 in  (* last seq of the current train *)
  let send_one ~last seq =
    counters.Counters.data_sent <- counters.Counters.data_sent + 1;
    if sent_before.(seq) then
      counters.Counters.retransmitted_data <- counters.Counters.retransmitted_data + 1;
    sent_before.(seq) <- true;
    let m =
      Packet.Message.data ~transfer_id:config.Config.transfer_id ~seq ~total
        ~payload:(payload seq)
    in
    Send (if last then Packet.Message.with_budget m 0 else m)
  in
  let rec mark_last acc = function
    | [] -> List.rev acc
    | [ seq ] -> List.rev (send_one ~last:true seq :: acc)
    | seq :: rest -> mark_last (send_one ~last:false seq :: acc) rest
  in
  let take n l =
    let rec go acc n = function
      | x :: rest when n > 0 -> go (x :: acc) (n - 1) rest
      | _ -> List.rev acc
    in
    go [] n l
  in
  (* The timer of the round being answered is still ticking when feedback
     arrives, and a long train can take longer than the timeout to serialize
     onto the wire — so retire it *before* the sends, not after. Leaving it
     armed fires a stale timeout mid-blast, duplicates the solicit, and the
     duplicate's NACK then mis-reports the next round's in-flight packets as
     lost. *)
  let blast () =
    counters.Counters.rounds <- counters.Counters.rounds + 1;
    let missing = Packet.Bitset.missing acked in
    let seqs = take (train ctrl) missing in
    let seqs = if seqs = [] then [ total - 1 ] else seqs in
    flight := seqs;
    solicit := List.nth seqs (List.length seqs - 1);
    (Stop_timer :: mark_last [] seqs) @ [ Arm_timer params.Tuning.retransmit_ns ]
  in
  let give_up () =
    outcome := Some Too_many_attempts;
    [ Stop_timer; Complete Too_many_attempts ]
  in
  let resend_solicit () =
    counters.Counters.rounds <- counters.Counters.rounds + 1;
    flight := [ !solicit ];
    (Stop_timer :: mark_last [] [ !solicit ]) @ [ Arm_timer params.Tuning.retransmit_ns ]
  in
  let ours m = m.Packet.Message.total = total in
  let handle event =
    if !outcome <> None then []
    else
      match event with
      | Message m when m.Packet.Message.kind = Packet.Kind.Ack && ours m ->
          if m.Packet.Message.seq >= total then begin
            (match Packet.Message.budget m with
            | Some b -> on_budget ctrl ~budget:b
            | None -> ());
            on_round ctrl ~sent:(List.length !flight) ~lost:0;
            outcome := Some Success;
            [ Stop_timer; Complete Success ]
          end
          else []
      | Message m when m.Packet.Message.kind = Packet.Kind.Nack && ours m -> begin
          match Packet.Message.received_set m with
          | Some received when Packet.Bitset.length received = total ->
              let before = Packet.Bitset.count acked in
              List.iter
                (fun seq ->
                  if Packet.Bitset.mem received seq then Packet.Bitset.set acked seq)
                (Packet.Bitset.missing acked);
              let after = Packet.Bitset.count acked in
              (match Packet.Message.budget m with
              | Some b ->
                  on_budget ctrl ~budget:b;
                  (* The first advertisement doubles as the opening window
                     (the UDP peer gets the same signal on its handshake
                     ACK): flow control said this much fits, so jump there
                     instead of paying the additive ramp — the round's loss
                     feedback below still scales it straight back down. *)
                  if not !budget_opened then begin
                    budget_opened := true;
                    open_train ctrl ~train:b
                  end
              | None -> ());
              if not (Packet.Bitset.mem received !solicit) then
                (* A response generated before the current solicit reached
                   the receiver — the echo of a duplicated solicit, or one
                   delayed past a retransmission. Its bitmap predates the
                   round in flight, so scoring the round against it would
                   count every in-flight packet as lost and re-blast them
                   all. Keep the bitmap (it only adds information), skip the
                   controller, and let the real response — or the timer
                   still armed for it — drive the next train. *)
                []
              else begin
                let lost =
                  List.length
                    (List.filter (fun seq -> not (Packet.Bitset.mem received seq)) !flight)
                in
                on_round ctrl ~sent:(List.length !flight) ~lost;
                if after > before then attempts := 0 else incr attempts;
                if !attempts >= params.Tuning.max_attempts then give_up () else blast ()
              end
          | Some _ | None ->
              (* Malformed or foreign bitmap: count a no-progress round and
                 repeat the solicit rather than guessing a repair train. *)
              incr attempts;
              if !attempts >= params.Tuning.max_attempts then give_up ()
              else resend_solicit ()
        end
      | Message _ -> []
      | Timeout ->
          counters.Counters.timeouts <- counters.Counters.timeouts + 1;
          incr attempts;
          if !attempts >= params.Tuning.max_attempts then give_up ()
          else begin
            on_timeout ctrl;
            (* Only the solicit is repeated: its NACK tells us exactly what
               else the round lost, and a vanished train usually means the
               path wants fewer packets, not a full re-blast. *)
            resend_solicit ()
          end
  in
  Machine.make ~name:"adaptive blast sender" ~start:blast ~handle
    ~is_complete:(fun () -> !outcome <> None)
    ~outcome:(fun () -> !outcome)
    ~counters

let receiver ?(counters = Counters.create ()) ?budget (config : Config.t) =
  let total = config.Config.total_packets in
  let default_budget =
    match Tuning.aimd config.Config.tuning with
    | Some a -> a.Tuning.max_train
    | None -> 0xFFFF
  in
  let budget = match budget with Some f -> f | None -> fun () -> default_budget in
  let received = Packet.Bitset.create total in
  let respond () =
    let b = max 0 (budget ()) in
    if Packet.Bitset.is_full received then begin
      counters.Counters.acks_sent <- counters.Counters.acks_sent + 1;
      [
        Send
          (Packet.Message.with_budget
             (Packet.Message.ack ~transfer_id:config.Config.transfer_id ~seq:total ~total)
             b);
      ]
    end
    else begin
      let first_missing = Option.get (Packet.Bitset.first_missing received) in
      counters.Counters.nacks_sent <- counters.Counters.nacks_sent + 1;
      [
        Send
          (Packet.Message.with_budget
             (Packet.Message.nack ~transfer_id:config.Config.transfer_id ~first_missing
                ~total ~received ())
             b);
      ]
    end
  in
  let handle = function
    | Message m when m.Packet.Message.kind = Packet.Kind.Data ->
        let seq = m.Packet.Message.seq in
        if m.Packet.Message.total <> total || seq >= total then []
        else begin
          let fresh = not (Packet.Bitset.mem received seq) in
          let deliver =
            if fresh then begin
              Packet.Bitset.set received seq;
              counters.Counters.delivered <- counters.Counters.delivered + 1;
              [ Deliver { seq; payload = m.Packet.Message.payload } ]
            end
            else begin
              counters.Counters.duplicates_received <-
                counters.Counters.duplicates_received + 1;
              []
            end
          in
          (* Budget presence marks the train solicit; it always gets a
             response, duplicate or not, exactly like the blast terminator. *)
          if Packet.Message.budget m <> None then deliver @ respond () else deliver
        end
    | Message _ | Timeout -> []
  in
  Machine.make ~name:"adaptive blast receiver"
    ~start:(fun () -> [])
    ~handle
    ~is_complete:(fun () -> Packet.Bitset.is_full received)
    ~outcome:(fun () -> if Packet.Bitset.is_full received then Some Success else None)
    ~counters
