type t =
  | Stop_and_wait
  | Sliding_window of { window : int }
  | Blast of Blast.strategy
  | Multi_blast of { strategy : Blast.strategy; chunk_packets : int }

let name = function
  | Stop_and_wait -> "stop-and-wait"
  | Sliding_window { window } ->
      if window = max_int then "sliding-window" else Printf.sprintf "sliding-window(w=%d)" window
  | Blast strategy -> "blast/" ^ Blast.strategy_name strategy
  | Multi_blast { strategy; chunk_packets } ->
      Printf.sprintf "multi-blast/%s(%d)" (Blast.strategy_name strategy) chunk_packets

let pp ppf t = Format.pp_print_string ppf (name t)

let error_free_trio =
  [ Stop_and_wait; Sliding_window { window = max_int }; Blast Blast.Go_back_n ]

let all_blast_strategies = List.map (fun s -> Blast s) Blast.all_strategies

let effective_window window (config : Config.t) =
  if window = max_int then config.Config.total_packets else window

(* Adaptive tuning replaces the blast-family machines wholesale: train
   length is the controller's to choose, so the a-priori strategy/chunking
   carried by the suite only matters as the negotiated-down fallback.
   Stop-and-wait and sliding-window have no trains to adapt; they use the
   tuning's timers and otherwise ignore the AIMD parameters. *)
let adaptive (config : Config.t) = Tuning.is_adaptive config.Config.tuning

let sender t ?counters ?ctrl config ~payload =
  match t with
  | Stop_and_wait -> Stop_and_wait.sender ?counters config ~payload
  | Sliding_window { window } ->
      Sliding_window.sender ?counters ~window:(effective_window window config) config ~payload
  | (Blast _ | Multi_blast _) when adaptive config ->
      Adapt.sender ?counters ?ctrl config ~payload
  | Blast strategy -> Blast.sender ?counters ~strategy config ~payload
  | Multi_blast { strategy; chunk_packets } ->
      Multi_blast.sender ?counters ~strategy ~chunk_packets config ~payload

let receiver t ?counters ?budget config =
  match t with
  | Stop_and_wait -> Stop_and_wait.receiver ?counters config
  | Sliding_window _ -> Sliding_window.receiver ?counters config
  | (Blast _ | Multi_blast _) when adaptive config ->
      Adapt.receiver ?counters ?budget config
  | Blast strategy -> Blast.receiver ?counters ~strategy config
  | Multi_blast { strategy; chunk_packets } ->
      Multi_blast.receiver ?counters ~strategy ~chunk_packets config
