(** Multiple blasts: for very large transfers the paper suggests breaking the
    data into a number of consecutive blasts, each run to completion under
    the ordinary blast protocol, so a late error never forces retransmission
    of the whole transfer.

    Wire messages carry global sequence numbers; each chunk's inner blast
    machine works in chunk-local coordinates and this wrapper translates. *)

val chunk_count : total_packets:int -> chunk_packets:int -> int

val sender :
  ?counters:Counters.t ->
  strategy:Blast.strategy ->
  chunk_packets:int ->
  Config.t ->
  payload:(int -> string) ->
  Machine.t
(** Runs one blast per chunk, strictly in order; the transfer completes when
    the last chunk's blast completes. Raises [Invalid_argument] when
    [chunk_packets <= 0]. *)

val receiver :
  ?counters:Counters.t -> strategy:Blast.strategy -> chunk_packets:int -> Config.t -> Machine.t
