(** The uniform interface drivers program against.

    A machine is a bundle of closures over some hidden protocol state; the
    concrete modules ({!Stop_and_wait}, {!Sliding_window}, {!Blast},
    {!Multi_blast}) build them. *)

type t = {
  name : string;
  start : unit -> Action.t list;
      (** must be called exactly once, before any [handle] *)
  handle : Action.event -> Action.t list;
  is_complete : unit -> bool;
  outcome : unit -> Action.outcome option;
  counters : Counters.t;
}

val make :
  name:string ->
  start:(unit -> Action.t list) ->
  handle:(Action.event -> Action.t list) ->
  is_complete:(unit -> bool) ->
  outcome:(unit -> Action.outcome option) ->
  counters:Counters.t ->
  t

val constant_payload : Config.t -> int -> string
(** [constant_payload config seq] is a deterministic test payload for packet
    [seq]: [packet_bytes] bytes derived from the seq, so corruption and
    misordering are detectable. *)
