(** Inputs and outputs of protocol state machines.

    Machines are transport-agnostic: they consume {!event}s and emit
    {!t} actions, and a driver (simulator, UDP peer, test harness) interprets
    the actions. All machine logic is therefore testable without any clock or
    network. *)

type outcome =
  | Success
  | Too_many_attempts  (** gave up after [Config.max_attempts] rounds *)
  | Peer_unreachable
      (** clean abort by a transport watchdog: the far end stopped talking
          (no datagram for the idle window, or the opening handshake never
          completed). Machines never emit this themselves — it is the
          transport's way of bounding a transfer whose peer died. *)
  | Rejected
      (** the receiving server refused the transfer at admission (it answered
          the handshake [Req] with a [Rej] busy reply). Like
          [Peer_unreachable] this is a transport-level outcome: machines
          never emit it, and the sender gives up immediately instead of
          retrying into a saturated server. *)

type t =
  | Send of Packet.Message.t
  | Arm_timer of int  (** (re)arm the machine's retransmission timer, ns *)
  | Stop_timer
  | Deliver of { seq : int; payload : string }
      (** receiver side: packet [seq] is new — write it to the
          pre-registered buffer at offset [seq * packet_bytes] *)
  | Complete of outcome

type event =
  | Message of Packet.Message.t
  | Timeout  (** the machine's retransmission timer fired *)

val pp : Format.formatter -> t -> unit
val pp_event : Format.formatter -> event -> unit
val pp_outcome : Format.formatter -> outcome -> unit
