(** AIMD train-length controller and the adaptive blast machine pair.

    The controller is pure bookkeeping over explicit inputs — per-round
    loss, timeouts, and the receiver-advertised budget from the v2 wire
    format — so it is exactly as deterministic as its event stream (the
    property DST asserts bit-for-bit).

    The machines speak the same global coordinates as {!Blast} but in
    variable-length trains: the last packet of each train is a {e solicit}
    (marked by carrying a wire-v2 budget field), answered by a cumulative
    ACK on completion or a selective NACK with the receiver's full bitmap,
    both stamped with the receiver's advertised budget. *)

type t
(** Controller state: current train length, latest budget, round counts. *)

val create : Tuning.aimd -> t
val params : t -> Tuning.aimd

val train : t -> int
(** Train length for the next round, clamped to
    [[min_train, min max_train budget]]. The floor wins over the budget: a
    receiver advertising 0 throttles the sender to [min_train], it cannot
    stall the transfer. *)

val on_round : t -> sent:int -> lost:int -> unit
(** Account one solicited round: additive increase when [lost = 0],
    multiplicative decrease otherwise — scaled by the round's loss fraction
    (the DCTCP shape), so a fully lost train backs off by the tuning's
    [decrease] factor while a single loss in a long train barely nudges it.
    [sent <= 0] is ignored. *)

val on_timeout : t -> unit
(** A retransmission timeout: full multiplicative decrease (the whole train
    tail vanished — the strongest congestion signal available). *)

val open_train : t -> train:int -> unit
(** Jump-start the train to the receiver's opening advertisement (the
    budget on the handshake ACK), clamped like everything else. Never
    shrinks the current train — a cap is [on_budget]'s job. *)

val on_budget : t -> budget:int -> unit
(** Record the receiver's advertised cap and re-clamp. *)

val pacing_gap_ns : t -> srtt_ns:int option -> int
(** Inter-packet gap for the tuning's pacing mode: 0 for [No_pacing] (and
    for [Rtt_spread] before the first RTT sample), the configured gap for
    [Fixed_gap], or [srtt / train] for [Rtt_spread]. *)

val rounds : t -> int
val loss_rounds : t -> int
val pp : Format.formatter -> t -> unit

val sender :
  ?counters:Counters.t -> ?ctrl:t -> Config.t -> payload:(int -> string) -> Machine.t
(** Adaptive blast sender. The config's tuning must be [Adaptive] (raises
    [Invalid_argument] otherwise). Pass [?ctrl] to observe the controller
    from outside (the UDP peer does, to derive pacing gaps); one is created
    internally when omitted. The first receiver advertisement opens the
    train ({!open_train}); after that the controller governs. Gives up
    after [max_attempts] consecutive rounds without fresh progress. *)

val receiver : ?counters:Counters.t -> ?budget:(unit -> int) -> Config.t -> Machine.t
(** Adaptive blast receiver. [budget] is sampled at every solicit response
    and stamped onto the ACK/NACK — the server flow passes a closure over
    engine health; the default advertises the tuning's [max_train]. *)
