open Action

let sender ?(counters = Counters.create ()) (config : Config.t) ~payload =
  let base = ref 0 in
  (* acked packets *)
  let attempts = ref 0 in
  (* transmission attempts for the packet at [base] *)
  let outcome = ref None in
  let send_current ~retransmission =
    incr attempts;
    counters.Counters.rounds <- counters.Counters.rounds + 1;
    counters.Counters.data_sent <- counters.Counters.data_sent + 1;
    if retransmission then
      counters.Counters.retransmitted_data <- counters.Counters.retransmitted_data + 1;
    [
      Send
        (Packet.Message.data ~transfer_id:config.Config.transfer_id ~seq:!base
           ~total:config.Config.total_packets ~payload:(payload !base));
      Arm_timer (Config.retransmit_ns config);
    ]
  in
  let start () = send_current ~retransmission:false in
  let handle = function
    | Message m when m.Packet.Message.kind = Packet.Kind.Ack ->
        if !outcome <> None then []
        else if m.Packet.Message.seq > !base then begin
          base := m.Packet.Message.seq;
          attempts := 0;
          if !base >= config.Config.total_packets then begin
            outcome := Some Success;
            [ Stop_timer; Complete Success ]
          end
          else send_current ~retransmission:false
        end
        else []
    | Message _ -> []
    | Timeout ->
        if !outcome <> None then []
        else begin
          counters.Counters.timeouts <- counters.Counters.timeouts + 1;
          if !attempts >= (Config.max_attempts config) then begin
            outcome := Some Too_many_attempts;
            [ Stop_timer; Complete Too_many_attempts ]
          end
          else send_current ~retransmission:true
        end
  in
  Machine.make ~name:"stop-and-wait sender" ~start ~handle
    ~is_complete:(fun () -> !outcome <> None)
    ~outcome:(fun () -> !outcome)
    ~counters

let receiver ?(counters = Counters.create ()) (config : Config.t) =
  let expected = ref 0 in
  let ack () =
    counters.Counters.acks_sent <- counters.Counters.acks_sent + 1;
    Send
      (Packet.Message.ack ~transfer_id:config.Config.transfer_id ~seq:!expected
         ~total:config.Config.total_packets)
  in
  let handle = function
    | Message m when m.Packet.Message.kind = Packet.Kind.Data ->
        if m.Packet.Message.seq = !expected then begin
          incr expected;
          counters.Counters.delivered <- counters.Counters.delivered + 1;
          [ Deliver { seq = m.Packet.Message.seq; payload = m.Packet.Message.payload }; ack () ]
        end
        else begin
          (* Duplicate (seq < expected) or — impossible with one packet
             outstanding, but tolerated — a future packet: re-acknowledge the
             current position without delivering. *)
          counters.Counters.duplicates_received <- counters.Counters.duplicates_received + 1;
          [ ack () ]
        end
    | Message _ | Timeout -> []
  in
  Machine.make ~name:"stop-and-wait receiver"
    ~start:(fun () -> [])
    ~handle
    ~is_complete:(fun () -> !expected >= config.Config.total_packets)
    ~outcome:(fun () ->
      if !expected >= config.Config.total_packets then Some Success else None)
    ~counters
