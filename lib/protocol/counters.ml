type t = {
  mutable data_sent : int;
  mutable retransmitted_data : int;
  mutable acks_sent : int;
  mutable nacks_sent : int;
  mutable rounds : int;
  mutable timeouts : int;
  mutable duplicates_received : int;
  mutable delivered : int;
  mutable faults_injected : int;
  mutable corrupt_detected : int;
  mutable garbage_received : int;
}

let create () =
  {
    data_sent = 0;
    retransmitted_data = 0;
    acks_sent = 0;
    nacks_sent = 0;
    rounds = 0;
    timeouts = 0;
    duplicates_received = 0;
    delivered = 0;
    faults_injected = 0;
    corrupt_detected = 0;
    garbage_received = 0;
  }

(* Every field prints even when zero, so logs from clean and faulty runs
   stay grep-stable. *)
let pp ppf t =
  Format.fprintf ppf
    "data=%d (retx %d) acks=%d nacks=%d rounds=%d timeouts=%d dups=%d delivered=%d \
     faults=%d corrupt-rejects=%d garbage=%d"
    t.data_sent t.retransmitted_data t.acks_sent t.nacks_sent t.rounds t.timeouts
    t.duplicates_received t.delivered t.faults_injected t.corrupt_detected
    t.garbage_received
