type t = {
  mutable data_sent : int;
  mutable retransmitted_data : int;
  mutable acks_sent : int;
  mutable nacks_sent : int;
  mutable rounds : int;
  mutable timeouts : int;
  mutable duplicates_received : int;
  mutable delivered : int;
  mutable faults_injected : int;
  mutable corrupt_detected : int;
  mutable garbage_received : int;
}

let create () =
  {
    data_sent = 0;
    retransmitted_data = 0;
    acks_sent = 0;
    nacks_sent = 0;
    rounds = 0;
    timeouts = 0;
    duplicates_received = 0;
    delivered = 0;
    faults_injected = 0;
    corrupt_detected = 0;
    garbage_received = 0;
  }

(* Field-by-field addition, spelled out so a new field cannot silently be
   left out of server roll-ups: adding one to the record type makes this
   function fail to compile until it is summed here too. *)
let merge ~into:a b =
  a.data_sent <- a.data_sent + b.data_sent;
  a.retransmitted_data <- a.retransmitted_data + b.retransmitted_data;
  a.acks_sent <- a.acks_sent + b.acks_sent;
  a.nacks_sent <- a.nacks_sent + b.nacks_sent;
  a.rounds <- a.rounds + b.rounds;
  a.timeouts <- a.timeouts + b.timeouts;
  a.duplicates_received <- a.duplicates_received + b.duplicates_received;
  a.delivered <- a.delivered + b.delivered;
  a.faults_injected <- a.faults_injected + b.faults_injected;
  a.corrupt_detected <- a.corrupt_detected + b.corrupt_detected;
  a.garbage_received <- a.garbage_received + b.garbage_received

let sum counters =
  let total = create () in
  List.iter (fun c -> merge ~into:total c) counters;
  total

(* Every field prints even when zero, so logs from clean and faulty runs
   stay grep-stable. *)
let pp ppf t =
  Format.fprintf ppf
    "data=%d (retx %d) acks=%d nacks=%d rounds=%d timeouts=%d dups=%d delivered=%d \
     faults=%d corrupt-rejects=%d garbage=%d"
    t.data_sent t.retransmitted_data t.acks_sent t.nacks_sent t.rounds t.timeouts
    t.duplicates_received t.delivered t.faults_injected t.corrupt_detected
    t.garbage_received
