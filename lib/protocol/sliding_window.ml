open Action

let sender ?(counters = Counters.create ()) ~window (config : Config.t) ~payload =
  if window <= 0 then invalid_arg "Sliding_window.sender: window must be positive";
  let total = config.Config.total_packets in
  let base = ref 0 in
  (* cumulative acked *)
  let next = ref 0 in
  (* next never-sent packet *)
  let attempts = ref 0 in
  (* retransmission rounds for the current base *)
  let outcome = ref None in
  let send_one ~retransmission seq =
    counters.Counters.data_sent <- counters.Counters.data_sent + 1;
    if retransmission then
      counters.Counters.retransmitted_data <- counters.Counters.retransmitted_data + 1;
    Send
      (Packet.Message.data ~transfer_id:config.Config.transfer_id ~seq ~total
         ~payload:(payload seq))
  in
  let fill_window () =
    let actions = ref [] in
    while !next < total && !next < !base + window do
      actions := send_one ~retransmission:false !next :: !actions;
      incr next
    done;
    List.rev !actions
  in
  let start () =
    counters.Counters.rounds <- counters.Counters.rounds + 1;
    fill_window () @ [ Arm_timer (Config.retransmit_ns config) ]
  in
  let handle = function
    | Message m when m.Packet.Message.kind = Packet.Kind.Ack ->
        if !outcome <> None then []
        else if m.Packet.Message.seq > !base then begin
          base := m.Packet.Message.seq;
          attempts := 0;
          if !base >= total then begin
            outcome := Some Success;
            [ Stop_timer; Complete Success ]
          end
          else begin
            let opened = fill_window () in
            opened @ [ Arm_timer (Config.retransmit_ns config) ]
          end
        end
        else []
    | Message _ -> []
    | Timeout ->
        if !outcome <> None then []
        else begin
          counters.Counters.timeouts <- counters.Counters.timeouts + 1;
          incr attempts;
          if !attempts >= (Config.max_attempts config) then begin
            outcome := Some Too_many_attempts;
            [ Stop_timer; Complete Too_many_attempts ]
          end
          else begin
            (* Go-back-n: retransmit the whole outstanding window. *)
            counters.Counters.rounds <- counters.Counters.rounds + 1;
            let resend = ref [] in
            for seq = !next - 1 downto !base do
              resend := send_one ~retransmission:true seq :: !resend
            done;
            !resend @ [ Arm_timer (Config.retransmit_ns config) ]
          end
        end
  in
  Machine.make ~name:"sliding-window sender" ~start ~handle
    ~is_complete:(fun () -> !outcome <> None)
    ~outcome:(fun () -> !outcome)
    ~counters

let receiver ?(counters = Counters.create ()) (config : Config.t) =
  let expected = ref 0 in
  let ack () =
    counters.Counters.acks_sent <- counters.Counters.acks_sent + 1;
    Send
      (Packet.Message.ack ~transfer_id:config.Config.transfer_id ~seq:!expected
         ~total:config.Config.total_packets)
  in
  let handle = function
    | Message m when m.Packet.Message.kind = Packet.Kind.Data ->
        if m.Packet.Message.seq = !expected then begin
          incr expected;
          counters.Counters.delivered <- counters.Counters.delivered + 1;
          [ Deliver { seq = m.Packet.Message.seq; payload = m.Packet.Message.payload }; ack () ]
        end
        else begin
          counters.Counters.duplicates_received <- counters.Counters.duplicates_received + 1;
          [ ack () ]
        end
    | Message _ | Timeout -> []
  in
  Machine.make ~name:"sliding-window receiver"
    ~start:(fun () -> [])
    ~handle
    ~is_complete:(fun () -> !expected >= config.Config.total_packets)
    ~outcome:(fun () ->
      if !expected >= config.Config.total_packets then Some Success else None)
    ~counters
