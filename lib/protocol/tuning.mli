(** Transfer tuning, constructed once and carried everywhere a knob used to
    be a scattered optional argument.

    [Fixed] is the paper's regime: train length and retransmission timer
    chosen a priori. [Adaptive] layers an AIMD controller (see {!Adapt})
    over the blast train length, driven by per-round loss and the
    receiver-advertised budget in the wire format's v2 ACK/NACK. *)

type pacing =
  | No_pacing  (** blast back-to-back (the paper's behaviour) *)
  | Fixed_gap of int  (** sleep this many ns between data packets *)
  | Rtt_spread
      (** derive the gap from the smoothed RTT: one train spread across one
          RTT, so the wire sees a steady stream instead of bursts *)

val pacing_name : pacing -> string
val pp_pacing : Format.formatter -> pacing -> unit

type fixed = { retransmit_ns : int; max_attempts : int; pacing : pacing }

type aimd = {
  init_train : int;  (** train length for the first round *)
  min_train : int;  (** floor; the controller never goes below *)
  max_train : int;  (** ceiling, further capped by the receiver's budget *)
  increase : int;  (** additive growth per clean round *)
  decrease : float;
      (** multiplicative backoff for a fully lost round, in (0, 1); partial
          loss scales the backoff by the round's loss fraction *)
  retransmit_ns : int;
  max_attempts : int;  (** give up after this many rounds without progress *)
  pacing : pacing;
}

type t = Fixed of fixed | Adaptive of aimd

val fixed : ?retransmit_ns:int -> ?max_attempts:int -> ?pacing:pacing -> unit -> t
(** Defaults: 200 ms timer, 50 attempts, no pacing — the values
    [Config.make] always defaulted to. Raises [Invalid_argument] on
    non-positive knobs. *)

val adaptive :
  ?init_train:int ->
  ?min_train:int ->
  ?max_train:int ->
  ?increase:int ->
  ?decrease:float ->
  ?retransmit_ns:int ->
  ?max_attempts:int ->
  ?pacing:pacing ->
  unit ->
  t
(** Defaults: trains 1..128 starting at 8, +4 per clean round, halve on
    loss, 200 ms timer, 50 no-progress rounds, no pacing. Validates the
    train bounds and backoff factor. *)

val default : t
(** [fixed ()] — the paper's a-priori geometry. *)

val wire_default : t
(** [fixed ~retransmit_ns:50_000_000 ()] — the timer the UDP transport
    layers have always defaulted to (LAN RTTs make 200 ms needlessly slow). *)

val retransmit_ns : t -> int
val max_attempts : t -> int
val pacing : t -> pacing
val is_adaptive : t -> bool

val aimd : t -> aimd option
(** The controller parameters of an [Adaptive] tuning. *)

val with_retransmit_ns : t -> int -> t
val with_max_attempts : t -> int -> t
val with_pacing : t -> pacing -> t

val negotiate_down : t -> t
(** What an adaptive sender runs against a peer that cannot (old wire
    version) or will not (fixed-tuned receiver) advertise budgets: same
    timers and pacing, fixed trains. Identity on [Fixed]. *)

val name : t -> string
(** ["fixed"] or ["adaptive"]. *)

val to_string : t -> string
(** Self-describing one-liner for bench and DST journal headers. *)

val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool
