(** Stop-and-wait: one packet outstanding, every packet individually
    acknowledged before the next is sent.

    Acknowledgements are cumulative: [Ack seq = n] means the receiver has
    delivered packets [0 .. n-1]. A lost data packet or lost ack is repaired
    by the sender's retransmission timer ([Config.retransmit_ns] per
    packet). *)

val sender : ?counters:Counters.t -> Config.t -> payload:(int -> string) -> Machine.t
(** [payload seq] supplies the bytes of packet [seq]. *)

val receiver : ?counters:Counters.t -> Config.t -> Machine.t
(** Passive: acknowledges in-order arrivals, re-acknowledges duplicates.
    Complete once every packet has been delivered (it keeps answering
    duplicates afterwards). *)
