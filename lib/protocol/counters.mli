(** Mutable per-transfer statistics, shared between a machine and its
    wrapper (multi-blast sums across chunks by sharing one record). *)

type t = {
  mutable data_sent : int;  (** data packet transmissions, including retransmissions *)
  mutable retransmitted_data : int;  (** data transmissions beyond the first of each seq *)
  mutable acks_sent : int;
  mutable nacks_sent : int;
  mutable rounds : int;  (** transmission attempts: 1 + retransmission rounds *)
  mutable timeouts : int;
  mutable duplicates_received : int;
  mutable delivered : int;  (** distinct data packets delivered (receiver side) *)
  mutable faults_injected : int;
      (** datagram fault events injected by an attached fault layer (Netem) *)
  mutable corrupt_detected : int;
      (** incoming datagrams rejected by the codec's header checksum or
          payload CRC — corruption caught before it reached the machine *)
  mutable garbage_received : int;
      (** incoming datagrams undecodable for any other reason (truncated,
          wrong magic, alien traffic) *)
}

val create : unit -> t

val merge : into:t -> t -> unit
(** [merge ~into:a b] adds every field of [b] into [a] ([b] is unchanged).
    Field-exact: the merged record sums with per-flow snapshots with no
    field dropped — the concurrent server's roll-up and {!Report} both rely
    on this. *)

val sum : t list -> t
(** A fresh record holding the field-wise sum of the list. *)

val pp : Format.formatter -> t -> unit
