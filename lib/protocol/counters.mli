(** Mutable per-transfer statistics, shared between a machine and its
    wrapper (multi-blast sums across chunks by sharing one record). *)

type t = {
  mutable data_sent : int;  (** data packet transmissions, including retransmissions *)
  mutable retransmitted_data : int;  (** data transmissions beyond the first of each seq *)
  mutable acks_sent : int;
  mutable nacks_sent : int;
  mutable rounds : int;  (** transmission attempts: 1 + retransmission rounds *)
  mutable timeouts : int;
  mutable duplicates_received : int;
  mutable delivered : int;  (** distinct data packets delivered (receiver side) *)
}

val create : unit -> t
val pp : Format.formatter -> t -> unit
