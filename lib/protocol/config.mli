(** Per-transfer protocol configuration, agreed by both ends before the
    transfer starts (the paper's recipient has its buffers — and hence the
    transfer geometry — established in advance). Timer and train behaviour
    live in the carried {!Tuning.t}. *)

type t = {
  transfer_id : int;
  total_packets : int;  (** D: number of data packets; must be positive *)
  packet_bytes : int;  (** data payload bytes per packet *)
  tuning : Tuning.t;  (** timers, attempts, train adaptation, pacing *)
}

val make :
  ?transfer_id:int ->
  ?packet_bytes:int ->
  ?tuning:Tuning.t ->
  total_packets:int ->
  unit ->
  t
(** Defaults: 1024-byte packets, {!Tuning.default} (fixed trains, 200 ms
    timer, 50 attempts). When [transfer_id] is omitted a fresh process-unique
    id is derived — two concurrent senders that both leave it unspecified can
    no longer collide on a server's [(sockaddr, transfer_id)] key.
    Raises [Invalid_argument] on non-positive [total_packets]. *)

val fresh_transfer_id : unit -> int
(** Next process-unique non-zero u32 transfer id. *)

val byte_size : t -> int
(** Total transfer size implied by the geometry. *)

val tuning : t -> Tuning.t
val retransmit_ns : t -> int
val max_attempts : t -> int
val with_tuning : t -> Tuning.t -> t
