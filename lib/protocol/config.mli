(** Per-transfer protocol configuration, agreed by both ends before the
    transfer starts (the paper's recipient has its buffers — and hence the
    transfer geometry — established in advance). *)

type t = {
  transfer_id : int;
  total_packets : int;  (** D: number of data packets; must be positive *)
  packet_bytes : int;  (** data payload bytes per packet *)
  retransmit_ns : int;  (** T_r: retransmission interval *)
  max_attempts : int;  (** give up after this many transmission rounds *)
}

val make :
  ?transfer_id:int ->
  ?packet_bytes:int ->
  ?retransmit_ns:int ->
  ?max_attempts:int ->
  total_packets:int ->
  unit ->
  t
(** Defaults: id 0, 1024-byte packets, 200 ms interval, 50 attempts.
    Raises [Invalid_argument] on non-positive [total_packets]. *)

val byte_size : t -> int
(** Total transfer size implied by the geometry. *)
