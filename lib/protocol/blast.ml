open Action

type strategy = Full_retransmit | Full_retransmit_nack | Go_back_n | Selective

let strategy_name = function
  | Full_retransmit -> "full-retransmit"
  | Full_retransmit_nack -> "full-retransmit+nack"
  | Go_back_n -> "go-back-n"
  | Selective -> "selective"

let pp_strategy ppf s = Format.pp_print_string ppf (strategy_name s)
let all_strategies = [ Full_retransmit; Full_retransmit_nack; Go_back_n; Selective ]

let sender ?(counters = Counters.create ()) ~strategy (config : Config.t) ~payload =
  let total = config.Config.total_packets in
  let last = total - 1 in
  let rounds = ref 0 in
  let outcome = ref None in
  let sent_before = Array.make total false in
  let send_one seq =
    counters.Counters.data_sent <- counters.Counters.data_sent + 1;
    if sent_before.(seq) then
      counters.Counters.retransmitted_data <- counters.Counters.retransmitted_data + 1;
    sent_before.(seq) <- true;
    Send
      (Packet.Message.data ~transfer_id:config.Config.transfer_id ~seq ~total
         ~payload:(payload seq))
  in
  let blast seqs =
    incr rounds;
    counters.Counters.rounds <- counters.Counters.rounds + 1;
    List.map send_one seqs @ [ Arm_timer (Config.retransmit_ns config) ]
  in
  let give_up () =
    outcome := Some Too_many_attempts;
    [ Stop_timer; Complete Too_many_attempts ]
  in
  let range lo hi = List.init (max 0 (hi - lo + 1)) (fun i -> lo + i) in
  let start () = blast (range 0 last) in
  (* Acks and nacks echo the geometry we declared in the REQ. A mismatched
     [total] is a straggler from a different transfer that happens to share
     this address and id — an earlier incarnation on a reused ephemeral
     port — and acting on it would complete or repair against progress this
     transfer never made. *)
  let ours m = m.Packet.Message.total = total in
  let handle event =
    if !outcome <> None then []
    else
      match event with
      | Message m when m.Packet.Message.kind = Packet.Kind.Ack && ours m ->
          if m.Packet.Message.seq >= total then begin
            outcome := Some Success;
            [ Stop_timer; Complete Success ]
          end
          else []
      | Message m when m.Packet.Message.kind = Packet.Kind.Nack && ours m ->
          if !rounds >= (Config.max_attempts config) then give_up ()
          else begin
            let first_missing = max 0 (min m.Packet.Message.seq last) in
            match strategy with
            | Full_retransmit ->
                (* This variant never solicits NACKs; treat a stray one as a
                   timeout-equivalent signal. *)
                blast (range 0 last)
            | Full_retransmit_nack -> blast (range 0 last)
            | Go_back_n -> blast (range first_missing last)
            | Selective -> begin
                match Packet.Message.received_set m with
                | Some received when Packet.Bitset.length received = total ->
                    let missing = Packet.Bitset.missing received in
                    (* A budget-stamped NACK (wire v2) caps the repair train;
                       later holes wait for the next round's NACK. The
                       terminator stays in the train so a response is always
                       solicited. *)
                    let missing =
                      match Packet.Message.budget m with
                      | Some b when b > 0 && List.length missing > b ->
                          List.filteri (fun i _ -> i < b) missing
                      | Some _ | None -> missing
                    in
                    let train =
                      if List.mem last missing then missing else missing @ [ last ]
                    in
                    blast train
                | Some _ | None ->
                    (* Malformed bitmap: fall back to go-back-n repair. *)
                    blast (range first_missing last)
              end
          end
      | Message _ -> []
      | Timeout ->
          counters.Counters.timeouts <- counters.Counters.timeouts + 1;
          if !rounds >= (Config.max_attempts config) then give_up ()
          else begin
            match strategy with
            | Full_retransmit | Full_retransmit_nack -> blast (range 0 last)
            | Go_back_n | Selective ->
                (* Only the reliable terminator is repeated; its ACK/NACK
                   tells us what else to resend. *)
                blast [ last ]
          end
  in
  Machine.make
    ~name:("blast sender (" ^ strategy_name strategy ^ ")")
    ~start ~handle
    ~is_complete:(fun () -> !outcome <> None)
    ~outcome:(fun () -> !outcome)
    ~counters

let receiver ?(counters = Counters.create ()) ~strategy (config : Config.t) =
  let total = config.Config.total_packets in
  let received = Packet.Bitset.create total in
  let respond_to_terminator () =
    if Packet.Bitset.is_full received then begin
      counters.Counters.acks_sent <- counters.Counters.acks_sent + 1;
      [
        Send
          (Packet.Message.ack ~transfer_id:config.Config.transfer_id ~seq:total ~total);
      ]
    end
    else
      match strategy with
      | Full_retransmit -> [] (* stay silent; the sender's timer repairs *)
      | Full_retransmit_nack | Go_back_n ->
          let first_missing = Option.get (Packet.Bitset.first_missing received) in
          counters.Counters.nacks_sent <- counters.Counters.nacks_sent + 1;
          [
            Send
              (Packet.Message.nack ~transfer_id:config.Config.transfer_id ~first_missing
                 ~total ());
          ]
      | Selective ->
          let first_missing = Option.get (Packet.Bitset.first_missing received) in
          counters.Counters.nacks_sent <- counters.Counters.nacks_sent + 1;
          [
            Send
              (Packet.Message.nack ~transfer_id:config.Config.transfer_id ~first_missing
                 ~total ~received ());
          ]
  in
  let handle = function
    | Message m when m.Packet.Message.kind = Packet.Kind.Data ->
        let seq = m.Packet.Message.seq in
        (* A data packet whose [total] disagrees with the handshake belongs
           to a different transfer on a reused address; accepting it would
           assemble foreign bytes into this segment. *)
        if m.Packet.Message.total <> total || seq >= total then []
        else begin
          let fresh = not (Packet.Bitset.mem received seq) in
          let deliver =
            if fresh then begin
              Packet.Bitset.set received seq;
              counters.Counters.delivered <- counters.Counters.delivered + 1;
              [ Deliver { seq; payload = m.Packet.Message.payload } ]
            end
            else begin
              counters.Counters.duplicates_received <- counters.Counters.duplicates_received + 1;
              []
            end
          in
          (* The terminator always gets a response, duplicate or not: the
             sender repeats it until an ACK/NACK comes back. *)
          if seq = total - 1 then deliver @ respond_to_terminator () else deliver
        end
    | Message _ | Timeout -> []
  in
  Machine.make
    ~name:("blast receiver (" ^ strategy_name strategy ^ ")")
    ~start:(fun () -> [])
    ~handle
    ~is_complete:(fun () -> Packet.Bitset.is_full received)
    ~outcome:(fun () -> if Packet.Bitset.is_full received then Some Success else None)
    ~counters
