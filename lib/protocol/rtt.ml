type t = {
  alpha : float;
  beta : float;
  k : float;
  initial_ns : int;
  mutable srtt : float option;
  mutable rttvar : float;
  mutable backoff_factor : int;
  mutable samples : int;
}

let min_timeout_ns = 1_000_000

let create ?(alpha = 0.125) ?(beta = 0.25) ?(k = 4.0) ~initial_ns () =
  if initial_ns <= 0 then invalid_arg "Rtt.create: initial_ns must be positive";
  { alpha; beta; k; initial_ns; srtt = None; rttvar = 0.0; backoff_factor = 1; samples = 0 }

let observe t ~sample_ns =
  if sample_ns <= 0 then invalid_arg "Rtt.observe: sample must be positive";
  let sample = float_of_int sample_ns in
  (match t.srtt with
  | None ->
      t.srtt <- Some sample;
      t.rttvar <- sample /. 2.0
  | Some srtt ->
      let err = Float.abs (sample -. srtt) in
      t.rttvar <- ((1.0 -. t.beta) *. t.rttvar) +. (t.beta *. err);
      t.srtt <- Some (((1.0 -. t.alpha) *. srtt) +. (t.alpha *. sample)));
  t.backoff_factor <- 1;
  t.samples <- t.samples + 1

let timeout_ns t =
  (* Clamp to the cap BEFORE applying the backoff multiplier: a large srtt
     (e.g. a wall clock that stepped) times a 1024x backoff overflows the
     native int if multiplied first, and the old post-multiply clamp then
     compared against a negative number. *)
  let cap =
    if t.initial_ns > max_int / 100 then max_int else t.initial_ns * 100
  in
  let base =
    match t.srtt with
    | None -> t.initial_ns
    | Some srtt ->
        let raw = srtt +. (t.k *. t.rttvar) in
        if raw >= float_of_int cap then cap else max 1 (int_of_float raw)
  in
  let backed_off =
    if base >= cap / t.backoff_factor then cap else base * t.backoff_factor
  in
  max min_timeout_ns (min backed_off cap)

let backoff t = if t.backoff_factor < 1024 then t.backoff_factor <- t.backoff_factor * 2
let samples t = t.samples
let srtt_ns t = Option.map int_of_float t.srtt
