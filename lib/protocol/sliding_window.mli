(** Sliding-window (go-back-n flavour): the sender keeps up to [window]
    packets outstanding; the receiver acknowledges every packet with a
    cumulative ack and discards out-of-order arrivals.

    The paper's measurements assume a window that never closes; pass
    [window >= Config.total_packets] to reproduce that regime, or a smaller
    window for the window-size ablation. On timeout the sender re-sends the
    whole outstanding window. *)

val sender :
  ?counters:Counters.t -> window:int -> Config.t -> payload:(int -> string) -> Machine.t

val receiver : ?counters:Counters.t -> Config.t -> Machine.t
