(** Blast protocols: the whole packet train is sent in sequence with a single
    acknowledgement for the train. Variants differ only in how errors are
    repaired (Section 3.2 of the paper):

    {ul
    {- {!Full_retransmit}: no negative acknowledgement. The receiver stays
       silent unless the train arrived complete; the sender repairs any loss
       by retransmitting the {e entire} train after the timeout [T_r].}
    {- {!Full_retransmit_nack}: the receiver answers the train's final packet
       with an ACK or a NACK; a NACK (or a timeout) triggers retransmission
       of the entire train, but the NACK makes the effective retransmission
       interval ~0.}
    {- {!Go_back_n} ("partial retransmission"): the NACK names the first
       packet not received; the sender retransmits from there. The final
       packet of every (re)transmission is sent reliably — on timeout only it
       is repeated to elicit a fresh ACK/NACK.}
    {- {!Selective}: the NACK carries a bitmap of received packets; the
       sender retransmits exactly the missing ones (plus the final packet as
       train terminator when it is not itself missing).}} *)

type strategy = Full_retransmit | Full_retransmit_nack | Go_back_n | Selective

val strategy_name : strategy -> string
val pp_strategy : Format.formatter -> strategy -> unit
val all_strategies : strategy list

val sender :
  ?counters:Counters.t -> strategy:strategy -> Config.t -> payload:(int -> string) -> Machine.t

val receiver : ?counters:Counters.t -> strategy:strategy -> Config.t -> Machine.t
(** Delivers each distinct packet once, in arrival order (packets carry their
    offset, so the pre-registered buffer absorbs any order). Responds to the
    train terminator — packet [total-1] — every time it arrives, even as a
    duplicate: that reply is what makes the terminator reliable. *)
