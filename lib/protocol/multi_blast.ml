open Action

let chunk_count ~total_packets ~chunk_packets =
  if chunk_packets <= 0 then invalid_arg "Multi_blast: chunk_packets must be positive";
  (total_packets + chunk_packets - 1) / chunk_packets

let chunk_geometry (config : Config.t) ~chunk_packets index =
  let offset = index * chunk_packets in
  let len = min chunk_packets (config.Config.total_packets - offset) in
  (offset, len)

let chunk_config (config : Config.t) ~len =
  { config with Config.total_packets = len }

(* Translate between global wire coordinates and chunk-local machine
   coordinates. [seq] is a packet index for Data/Nack and a cumulative count
   for Ack; both shift by the chunk offset. The Nack bitmap stays chunk-local
   (both ends agree on chunk boundaries). *)
let to_local ~offset ~len (m : Packet.Message.t) =
  { m with Packet.Message.seq = m.Packet.Message.seq - offset; total = len }

let to_global ~offset (config : Config.t) (m : Packet.Message.t) =
  { m with Packet.Message.seq = m.Packet.Message.seq + offset; total = config.Config.total_packets }

let translate_actions ~offset (config : Config.t) actions =
  List.map
    (function
      | Send m -> Send (to_global ~offset config m)
      | Deliver { seq; payload } -> Deliver { seq = seq + offset; payload }
      | (Arm_timer _ | Stop_timer | Complete _) as a -> a)
    actions

let sender ?(counters = Counters.create ()) ~strategy ~chunk_packets (config : Config.t)
    ~payload =
  let chunks = chunk_count ~total_packets:config.Config.total_packets ~chunk_packets in
  let current = ref 0 in
  let outcome = ref None in
  let make_inner index =
    let offset, len = chunk_geometry config ~chunk_packets index in
    let inner_config = chunk_config config ~len in
    let inner_payload local_seq = payload (local_seq + offset) in
    (offset, len, Blast.sender ~counters ~strategy inner_config ~payload:inner_payload)
  in
  let inner = ref (make_inner 0) in
  (* Rewrites an inner machine's completion: intermediate chunks roll over to
     the next blast instead of completing the whole transfer. *)
  let rec absorb actions =
    let offset, _, _ = !inner in
    let translated = translate_actions ~offset config actions in
    let rec scan acc = function
      | [] -> List.rev acc
      | Complete Success :: rest ->
          if !current = chunks - 1 then begin
            outcome := Some Success;
            List.rev acc @ (Complete Success :: rest)
          end
          else begin
            current := !current + 1;
            inner := make_inner !current;
            let _, _, machine = !inner in
            let followup = absorb (machine.Machine.start ()) in
            List.rev acc @ rest @ followup
          end
      | Complete Too_many_attempts :: rest ->
          outcome := Some Too_many_attempts;
          List.rev acc @ (Complete Too_many_attempts :: rest)
      | a :: rest -> scan (a :: acc) rest
    in
    scan [] translated
  in
  let start () =
    let _, _, machine = !inner in
    absorb (machine.Machine.start ())
  in
  let handle event =
    if !outcome <> None then []
    else begin
      let offset, len, machine = !inner in
      let event =
        match event with
        | Message m ->
            (* Only feed messages that belong to the active chunk. An Ack's
               cumulative seq belongs to chunk i when offset < seq <=
               offset+len; a Nack's packet index when offset <= seq <
               offset+len. *)
            let seq = (match event with Message mm -> mm.Packet.Message.seq | Timeout -> 0) in
            let belongs =
              match m.Packet.Message.kind with
              | Packet.Kind.Ack -> seq > offset && seq <= offset + len
              | Packet.Kind.Nack -> seq >= offset && seq < offset + len
              | Packet.Kind.Data | Packet.Kind.Req | Packet.Kind.Rej
              | Packet.Kind.Mreq | Packet.Kind.Mrep ->
                  false
            in
            if belongs then Some (Message (to_local ~offset ~len m)) else None
        | Timeout -> Some Timeout
      in
      match event with
      | None -> []
      | Some event -> absorb (machine.Machine.handle event)
    end
  in
  Machine.make
    ~name:
      (Printf.sprintf "multi-blast sender (%s, %d-packet chunks)"
         (Blast.strategy_name strategy) chunk_packets)
    ~start ~handle
    ~is_complete:(fun () -> !outcome <> None)
    ~outcome:(fun () -> !outcome)
    ~counters

let receiver ?(counters = Counters.create ()) ~strategy ~chunk_packets (config : Config.t) =
  let chunks = chunk_count ~total_packets:config.Config.total_packets ~chunk_packets in
  let machines =
    Array.init chunks (fun index ->
        let offset, len = chunk_geometry config ~chunk_packets index in
        (offset, len, Blast.receiver ~counters ~strategy (chunk_config config ~len)))
  in
  Array.iter (fun (_, _, m) -> ignore (m.Machine.start ())) machines;
  let handle = function
    | Message m when m.Packet.Message.kind = Packet.Kind.Data ->
        let seq = m.Packet.Message.seq in
        if seq < 0 || seq >= config.Config.total_packets then []
        else begin
          let index = seq / chunk_packets in
          let offset, len, machine = machines.(index) in
          translate_actions ~offset config
            (machine.Machine.handle (Message (to_local ~offset ~len m)))
        end
    | Message _ | Timeout -> []
  in
  let is_complete () =
    Array.for_all (fun (_, _, m) -> m.Machine.is_complete ()) machines
  in
  Machine.make
    ~name:
      (Printf.sprintf "multi-blast receiver (%s, %d-packet chunks)"
         (Blast.strategy_name strategy) chunk_packets)
    ~start:(fun () -> [])
    ~handle ~is_complete
    ~outcome:(fun () -> if is_complete () then Some Success else None)
    ~counters
