type t = {
  transfer_id : int;
  total_packets : int;
  packet_bytes : int;
  retransmit_ns : int;
  max_attempts : int;
}

let make ?(transfer_id = 0) ?(packet_bytes = 1024) ?(retransmit_ns = 200_000_000)
    ?(max_attempts = 50) ~total_packets () =
  if total_packets <= 0 then invalid_arg "Config.make: total_packets must be positive";
  if packet_bytes <= 0 then invalid_arg "Config.make: packet_bytes must be positive";
  if retransmit_ns <= 0 then invalid_arg "Config.make: retransmit_ns must be positive";
  if max_attempts <= 0 then invalid_arg "Config.make: max_attempts must be positive";
  { transfer_id; total_packets; packet_bytes; retransmit_ns; max_attempts }

let byte_size t = t.total_packets * t.packet_bytes
