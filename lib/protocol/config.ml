type t = {
  transfer_id : int;
  total_packets : int;
  packet_bytes : int;
  tuning : Tuning.t;
}

(* Fresh-id source for callers that do not pick one: a colliding default
   (the old 0) let two concurrent CLI sends land on the same engine
   [(sockaddr, transfer_id)] key. In-process uniqueness is enough — distinct
   processes already differ by source address. 0 is skipped so "unspecified"
   can never collide with the old explicit default. *)
let next_id = Atomic.make 1

let fresh_transfer_id () =
  let rec draw () =
    let id = Atomic.fetch_and_add next_id 1 land 0xFFFFFFFF in
    if id = 0 then draw () else id
  in
  draw ()

let make ?transfer_id ?(packet_bytes = 1024) ?(tuning = Tuning.default) ~total_packets () =
  if total_packets <= 0 then invalid_arg "Config.make: total_packets must be positive";
  if packet_bytes <= 0 then invalid_arg "Config.make: packet_bytes must be positive";
  let transfer_id =
    match transfer_id with Some id -> id | None -> fresh_transfer_id ()
  in
  { transfer_id; total_packets; packet_bytes; tuning }

let byte_size t = t.total_packets * t.packet_bytes
let tuning t = t.tuning
let retransmit_ns t = Tuning.retransmit_ns t.tuning
let max_attempts t = Tuning.max_attempts t.tuning
let with_tuning t tuning = { t with tuning }
