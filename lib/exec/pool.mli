(** Fixed pool of {!Domain.t} workers over a shared work queue — the
    execution core every independent-trial loop in the tree runs through.

    The contract is {e deterministic parallelism}: a batch of [n] tasks is
    identified by index, every task is a pure function of its index, and the
    caller aggregates the per-index results in index order. Scheduling
    therefore never leaks into results — [jobs = 1] and [jobs = N] produce
    bit-for-bit identical output, which the test suite enforces.

    Pools are small and cheap but not free (one spawned domain per worker),
    so hot paths that run many batches should create one pool and pass it
    to every call; one-shot callers can rely on the ephemeral pool the
    [?jobs] path creates and tears down internally.

    Tasks must not submit new batches to the pool that is running them
    (the batch would deadlock waiting for a free worker). Nested
    parallelism should run the inner level with [~jobs:1]. *)

type t

val default_jobs : unit -> int
(** The [jobs] knob default: [LANREPRO_JOBS] when set to a positive
    integer, otherwise {!Domain.recommended_domain_count}. *)

val create : ?jobs:int -> unit -> t
(** [create ~jobs ()] spawns [jobs - 1] worker domains (the submitting
    domain is the remaining worker). [jobs] defaults to {!default_jobs};
    values are clamped to [1, 64]. *)

val jobs : t -> int
(** Total parallelism of the pool, including the submitting domain. *)

val shutdown : t -> unit
(** Joins all worker domains. Idempotent. The pool must be idle. *)

val with_pool : ?jobs:int -> (t -> 'a) -> 'a
(** [with_pool f] runs [f] with a fresh pool and always shuts it down. *)

val init : ?pool:t -> ?jobs:int -> int -> f:(int -> 'a) -> 'a array
(** [init n ~f] is [Array.init n f] with the calls distributed over the
    pool. Results land in index order. If any task raises, the whole batch
    still drains, the pool stays usable, and the exception of the
    lowest-index failing task is re-raised — the same exception a serial
    [Array.init] would have surfaced first. When [pool] is given it is
    used as is ([jobs] is ignored); otherwise an ephemeral pool of [jobs]
    workers serves the one batch. *)

val map : ?pool:t -> ?jobs:int -> f:('a -> 'b) -> 'a list -> 'b list
(** [map ~f xs] is [List.map f xs] over the pool, order preserved. *)

val fold :
  ?pool:t -> ?jobs:int -> int -> f:(int -> 'a) -> merge:('a -> 'a -> 'a) -> init:'a -> 'a
(** [fold tasks ~f ~merge ~init] computes [f i] for every [i < tasks] in
    parallel, then merges the results {e sequentially in index order}:
    [merge (... (merge init (f 0)) ...) (f (tasks-1))]. Because the merge
    order is fixed, the result is independent of [jobs] even for
    non-associative merges (floating-point summaries included). *)
