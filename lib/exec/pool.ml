(* A batch is a slice of indices [0, size) drained through one shared atomic
   cursor; workers (spawned domains plus the submitting domain) race for
   indices, and the last task to finish clears the batch and wakes the
   submitter. Determinism comes from the protocol, not the scheduler: tasks
   are pure functions of their index and the caller folds results in index
   order. *)

type batch = {
  size : int;
  next : int Atomic.t;  (** next index to claim *)
  remaining : int Atomic.t;  (** tasks not yet finished *)
  run : int -> unit;  (** must never raise; errors are captured by the caller *)
}

type t = {
  jobs : int;
  mutex : Mutex.t;
  work : Condition.t;  (** a new batch was published, or the pool is stopping *)
  idle : Condition.t;  (** a batch finished draining *)
  mutable batch : batch option;
  mutable generation : int;  (** bumped once per published batch *)
  mutable stopping : bool;
  mutable workers : unit Domain.t list;
}

let max_jobs = 64

let default_jobs () =
  match Sys.getenv_opt "LANREPRO_JOBS" with
  | Some v -> (
      match int_of_string_opt (String.trim v) with
      | Some n when n > 0 -> min n max_jobs
      | Some _ | None -> Domain.recommended_domain_count ())
  | None -> Domain.recommended_domain_count ()

let jobs t = t.jobs

let drain t b =
  let rec loop () =
    let i = Atomic.fetch_and_add b.next 1 in
    if i < b.size then begin
      b.run i;
      if Atomic.fetch_and_add b.remaining (-1) = 1 then begin
        (* Last task out clears the batch under the lock so the submitter's
           wait cannot miss the wakeup. *)
        Mutex.lock t.mutex;
        t.batch <- None;
        Condition.broadcast t.idle;
        Mutex.unlock t.mutex
      end;
      loop ()
    end
  in
  loop ()

let rec worker t seen_generation =
  Mutex.lock t.mutex;
  while (not t.stopping) && (Option.is_none t.batch || t.generation = seen_generation) do
    Condition.wait t.work t.mutex
  done;
  if t.stopping then Mutex.unlock t.mutex
  else begin
    let generation = t.generation in
    let b = match t.batch with Some b -> b | None -> assert false in
    Mutex.unlock t.mutex;
    drain t b;
    worker t generation
  end

let create ?jobs () =
  let jobs =
    match jobs with Some j -> max 1 (min j max_jobs) | None -> default_jobs ()
  in
  let t =
    {
      jobs;
      mutex = Mutex.create ();
      work = Condition.create ();
      idle = Condition.create ();
      batch = None;
      generation = 0;
      stopping = false;
      workers = [];
    }
  in
  t.workers <- List.init (jobs - 1) (fun _ -> Domain.spawn (fun () -> worker t 0));
  t

let shutdown t =
  Mutex.lock t.mutex;
  t.stopping <- true;
  Condition.broadcast t.work;
  Mutex.unlock t.mutex;
  List.iter Domain.join t.workers;
  t.workers <- []

let with_pool ?jobs f =
  let t = create ?jobs () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

let run_batch t n run =
  if n > 0 then begin
    let b = { size = n; next = Atomic.make 0; remaining = Atomic.make n; run } in
    Mutex.lock t.mutex;
    (* One batch at a time; a concurrent submitter queues here. *)
    while Option.is_some t.batch do
      Condition.wait t.idle t.mutex
    done;
    t.batch <- Some b;
    t.generation <- t.generation + 1;
    Condition.broadcast t.work;
    Mutex.unlock t.mutex;
    (* The submitting domain is a full worker for its own batch. *)
    drain t b;
    Mutex.lock t.mutex;
    while Atomic.get b.remaining > 0 do
      Condition.wait t.idle t.mutex
    done;
    Mutex.unlock t.mutex
  end

let init_on pool n ~f =
  let results = Array.make n None in
  run_batch pool n (fun i ->
      results.(i) <- Some (try Ok (f i) with e -> Error e));
  (* Re-raise the lowest-index failure — the one a serial run would have
     surfaced first — after the batch has fully drained. *)
  Array.iter
    (function Some (Error e) -> raise e | Some (Ok _) | None -> ())
    results;
  Array.map
    (function Some (Ok v) -> v | Some (Error _) | None -> assert false)
    results

let init ?pool ?jobs n ~f =
  if n < 0 then invalid_arg "Pool.init: negative size";
  match pool with
  | Some pool -> init_on pool n ~f
  | None ->
      let jobs =
        match jobs with Some j -> max 1 (min j max_jobs) | None -> default_jobs ()
      in
      if jobs <= 1 || n <= 1 then Array.init n f
      else with_pool ~jobs:(min jobs n) (fun pool -> init_on pool n ~f)

let map ?pool ?jobs ~f xs =
  let items = Array.of_list xs in
  Array.to_list (init ?pool ?jobs (Array.length items) ~f:(fun i -> f items.(i)))

let fold ?pool ?jobs tasks ~f ~merge ~init:acc =
  let parts = init ?pool ?jobs tasks ~f in
  Array.fold_left merge acc parts
