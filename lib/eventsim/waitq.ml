type t = { queue : (unit -> unit) Queue.t }

let create () = { queue = Queue.create () }
let wait t = Proc.suspend (fun resume -> Queue.push resume t.queue)

let signal t =
  match Queue.take_opt t.queue with Some resume -> resume () | None -> ()

let broadcast t =
  let pending = Queue.length t.queue in
  for _ = 1 to pending do
    signal t
  done

let waiters t = Queue.length t.queue
