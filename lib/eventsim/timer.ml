type t = {
  sim : Sim.t;
  on_fire : unit -> unit;
  mutable pending : (Sim.handle * Time.t) option;
}

let create sim ~on_fire = { sim; on_fire; pending = None }

let stop t =
  match t.pending with
  | Some (handle, _) ->
      Sim.cancel handle;
      t.pending <- None
  | None -> ()

let arm t span =
  stop t;
  let deadline = Time.add (Sim.now t.sim) span in
  let handle =
    Sim.schedule_at t.sim deadline (fun () ->
        t.pending <- None;
        t.on_fire ())
  in
  t.pending <- Some (handle, deadline)

let is_armed t = t.pending <> None
let deadline t = Option.map snd t.pending
