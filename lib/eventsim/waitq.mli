(** FIFO wait queues for processes (condition-variable style). *)

type t

val create : unit -> t

val wait : t -> unit
(** Parks the calling process until a subsequent {!signal} or {!broadcast}
    reaches it. Wake-ups are FIFO. *)

val signal : t -> unit
(** Wakes the oldest waiter, if any. *)

val broadcast : t -> unit
(** Wakes every current waiter. *)

val waiters : t -> int
