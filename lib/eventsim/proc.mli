(** Lightweight simulated processes on top of {!Sim}, built with OCaml 5
    effect handlers.

    A process is ordinary blocking-style code: it sleeps for simulated
    durations and waits on conditions, and the engine interleaves all
    processes deterministically on the simulation clock. This mirrors the
    paper's standalone measurement programs, which busy-wait on the
    completion of each operation.

    All blocking operations ({!sleep}, {!suspend}, and the operations of
    {!Waitq}, {!Resource}, {!Mailbox}) must be called from inside a process
    body; calling them elsewhere raises [Not_in_process]. *)

exception Not_in_process

type env
(** The per-simulation process environment. *)

val env : Sim.t -> env
(** [env sim] returns a process environment for [sim]. Environments are
    stateless handles: every call is equivalent, and none is retained by
    this module (safe across domains). *)

val spawn : env -> ?name:string -> (unit -> unit) -> unit
(** [spawn e body] starts a process immediately-after-now (at the current
    instant, after already-queued events). Exceptions escaping [body]
    propagate out of the simulation run. *)

val sleep : Time.span -> unit
(** Blocks the current process for a simulated duration. *)

val suspend : ((unit -> unit) -> unit) -> unit
(** [suspend register] parks the current process and hands a [resume]
    function to [register]. Calling [resume] once re-schedules the process at
    the instant of the call; further calls are errors (assertion). This is
    the primitive from which wait queues are built. *)

val current_sim : unit -> Sim.t
(** Simulation owning the currently running process. *)
