type 'a t = { capacity : int; items : 'a Queue.t; nonempty : Waitq.t }

let create ~capacity =
  if capacity <= 0 then invalid_arg "Mailbox.create: capacity must be positive";
  { capacity; items = Queue.create (); nonempty = Waitq.create () }

let try_put t item =
  if Queue.length t.items >= t.capacity then false
  else begin
    Queue.push item t.items;
    Waitq.signal t.nonempty;
    true
  end

let rec peek t =
  match Queue.peek_opt t.items with
  | Some item -> item
  | None ->
      Waitq.wait t.nonempty;
      peek t

let remove t =
  match Queue.take_opt t.items with
  | Some _ -> ()
  | None -> invalid_arg "Mailbox.remove: empty"

let get t =
  let item = peek t in
  remove t;
  item

let length t = Queue.length t.items
let capacity t = t.capacity
let is_empty t = Queue.is_empty t.items
