(** Span-based activity tracing.

    Every component of the simulated hardware (a CPU copying a packet, the
    wire carrying a frame) records [(lane, kind, start, stop)] spans. The
    report library renders these as the paper's Figure 2 / Figure 3
    timelines, and the Table 2 reproduction aggregates span durations by
    kind. *)

type span = {
  lane : string;  (** e.g. ["sender cpu"], ["wire"], ["receiver cpu"] *)
  kind : string;  (** e.g. ["copy-data-in"], ["transmit-data"] *)
  start : Time.t;
  stop : Time.t;
}

type t

val create : unit -> t
val enabled : t -> bool
val set_enabled : t -> bool -> unit

val record : t -> lane:string -> kind:string -> start:Time.t -> stop:Time.t -> unit
(** No-op when disabled. Raises [Invalid_argument] if [stop < start]. *)

val spans : t -> span list
(** In recording order. *)

val clear : t -> unit

val total_by_kind : t -> (string * Time.span) list
(** Sum of span durations grouped by [kind], sorted by kind name. *)

val lanes : t -> string list
(** Distinct lanes in first-appearance order. *)

val end_time : t -> Time.t
(** Largest [stop] recorded; [Time.zero] when empty. *)
