(** The discrete-event simulation engine.

    A simulation owns a virtual clock and an event queue. Callbacks scheduled
    for an instant run with the clock set to that instant; they may schedule
    further events (including at the current instant — such events run after
    all previously scheduled same-instant events, in scheduling order).

    This callback engine plays the role of the paper's "network interrupt
    level": protocol actions run to completion with no process-scheduling
    delay, exactly the execution model the V kernel implementation assumes. *)

type t

type handle
(** A cancellable reference to a scheduled event. *)

val create : unit -> t

val id : t -> int
(** A process-unique identifier (sims contain closures, so they can never be
    compared structurally — key tables by this instead). *)

val now : t -> Time.t

val schedule_at : t -> Time.t -> (unit -> unit) -> handle
(** [schedule_at t time f] runs [f] when the clock reaches [time]. Raises
    [Invalid_argument] if [time] is in the past. *)

val schedule_after : t -> Time.span -> (unit -> unit) -> handle

val cancel : handle -> unit
(** Cancelling an already-fired or already-cancelled event is a no-op. *)

val is_pending : handle -> bool

val step : t -> bool
(** Runs the earliest pending event. Returns [false] when no events remain. *)

val run : ?until:Time.t -> ?max_events:int -> t -> unit
(** Runs events in time order until the queue drains, the clock would pass
    [until], or [max_events] events have fired. With [until], the clock is
    left at [until] (events at later instants stay queued). *)

val pending : t -> int
(** Number of queued, non-cancelled events. *)
