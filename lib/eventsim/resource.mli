(** Counting semaphores over simulated processes.

    Models exclusive or slotted hardware: a CPU (capacity 1), the Ethernet
    wire (capacity 1), NIC transmit buffers (capacity 1 for the paper's 3-Com
    interface, 2 for the hypothetical double-buffered interface). *)

type t

val create : capacity:int -> t
(** Requires [capacity > 0]. *)

val acquire : t -> unit
(** Blocks the calling process until a unit is available, FIFO. *)

val try_acquire : t -> bool
(** Non-blocking; [true] on success. *)

val release : t -> unit
(** Raises [Invalid_argument] when releasing above capacity. *)

val with_resource : t -> (unit -> 'a) -> 'a
(** Acquire, run, release (also on exception). *)

val available : t -> int
val capacity : t -> int

val busy_span : t -> now:Time.t -> Time.span
(** Cumulative time during which at least one unit was held, up to [now] —
    used for the network-utilization measurement. *)
