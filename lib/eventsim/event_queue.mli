(** A monotone priority queue of timestamped events.

    Ties are broken by insertion order, so two events scheduled for the same
    instant fire in the order they were scheduled — protocol state machines
    rely on this determinism. *)

type 'a t

val create : unit -> 'a t

val push : 'a t -> time:Time.t -> 'a -> unit

val pop : 'a t -> (Time.t * 'a) option
(** Removes and returns the earliest event, or [None] when empty. *)

val peek_time : 'a t -> Time.t option
val length : 'a t -> int
val is_empty : 'a t -> bool
val clear : 'a t -> unit
