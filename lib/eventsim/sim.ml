type t = {
  id : int;
  mutable clock : Time.t;
  queue : handle Event_queue.t;
  mutable live : int; (* queued events not yet cancelled or fired *)
}

and handle = {
  mutable state : [ `Pending | `Cancelled | `Fired ];
  action : unit -> unit;
  owner : t;
}

(* Atomic so simulations created concurrently from several domains (the
   parallel campaign runners) still get distinct ids. *)
let next_id = Atomic.make 0

let create () =
  {
    id = Atomic.fetch_and_add next_id 1 + 1;
    clock = Time.zero;
    queue = Event_queue.create ();
    live = 0;
  }

let id t = t.id
let now t = t.clock

let schedule_at t time f =
  if Time.( < ) time t.clock then invalid_arg "Sim.schedule_at: time is in the past";
  let handle = { state = `Pending; action = f; owner = t } in
  Event_queue.push t.queue ~time handle;
  t.live <- t.live + 1;
  handle

let schedule_after t span f = schedule_at t (Time.add t.clock span) f

let cancel handle =
  match handle.state with
  | `Pending ->
      handle.state <- `Cancelled;
      handle.owner.live <- handle.owner.live - 1
  | `Cancelled | `Fired -> ()

let is_pending handle = handle.state = `Pending

let rec step t =
  match Event_queue.pop t.queue with
  | None -> false
  | Some (time, handle) -> begin
      match handle.state with
      | `Cancelled -> step t
      | `Fired -> assert false
      | `Pending ->
          t.clock <- time;
          handle.state <- `Fired;
          t.live <- t.live - 1;
          handle.action ();
          true
    end

let run ?until ?max_events t =
  let fired = ref 0 in
  let budget_left () = match max_events with None -> true | Some m -> !fired < m in
  let rec loop () =
    if budget_left () then begin
      let proceed =
        match (until, Event_queue.peek_time t.queue) with
        | Some limit, Some next -> Time.( <= ) next limit
        | _, None -> false
        | None, Some _ -> true
      in
      if proceed && step t then begin
        incr fired;
        loop ()
      end
    end
  in
  loop ();
  match until with
  | Some limit -> if Time.( < ) t.clock limit then t.clock <- limit
  | None -> ()

let pending t = t.live
