type t = int
type span = int

let zero = 0
let of_ns ns = if ns < 0 then invalid_arg "Time.of_ns: negative" else ns
let to_ns t = t

let span_ns ns = if ns < 0 then invalid_arg "Time.span_ns: negative" else ns

let round_to_ns x =
  if x < 0.0 then invalid_arg "Time.span: negative duration";
  int_of_float (Float.round x)

let span_us us = round_to_ns (us *. 1e3)
let span_ms ms = round_to_ns (ms *. 1e6)
let span_zero = 0
let span_to_ns s = s
let span_to_us s = float_of_int s /. 1e3
let span_to_ms s = float_of_int s /. 1e6

let add t s = t + s

let diff later earlier =
  if later < earlier then invalid_arg "Time.diff: negative span" else later - earlier

let span_add a b = a + b
let span_sub a b = if a < b then invalid_arg "Time.span_sub: negative result" else a - b
let span_scale k s = if k < 0 then invalid_arg "Time.span_scale: negative factor" else k * s
let span_max = Stdlib.max
let span_min = Stdlib.min
let compare = Stdlib.compare
let ( <= ) = Stdlib.( <= )
let ( < ) = Stdlib.( < )
let to_ms t = float_of_int t /. 1e6
let to_us t = float_of_int t /. 1e3
let pp ppf t = Format.fprintf ppf "%.3fms" (to_ms t)
let pp_span ppf s = Format.fprintf ppf "%.3fms" (span_to_ms s)
