(** Restartable one-shot timers on top of {!Sim}.

    Protocol machines express retransmission timeouts as timers that are
    armed, re-armed (which cancels the previous deadline) and stopped.
    A timer fires at most once per arming. *)

type t

val create : Sim.t -> on_fire:(unit -> unit) -> t

val arm : t -> Time.span -> unit
(** [arm t span] (re)schedules the timer to fire [span] from now, replacing
    any previously armed deadline. *)

val stop : t -> unit
(** Cancels a pending deadline; no-op when idle. *)

val is_armed : t -> bool

val deadline : t -> Time.t option
(** The instant the timer will fire at, when armed. *)
