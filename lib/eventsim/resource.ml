type t = {
  capacity : int;
  mutable available : int;
  waiters : Waitq.t;
  mutable busy_since : Time.t option;
  mutable busy_total : Time.span;
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Resource.create: capacity must be positive";
  {
    capacity;
    available = capacity;
    waiters = Waitq.create ();
    busy_since = None;
    busy_total = Time.span_zero;
  }

let note_busy_start t now = if t.busy_since = None then t.busy_since <- Some now

let note_busy_stop t now =
  match t.busy_since with
  | Some since when t.available = t.capacity ->
      t.busy_total <- Time.span_add t.busy_total (Time.diff now since);
      t.busy_since <- None
  | _ -> ()

let take t =
  t.available <- t.available - 1;
  note_busy_start t (Sim.now (Proc.current_sim ()))

(* Fair (non-barging) semaphore: a releaser hands its unit directly to the
   oldest waiter, so a process that re-acquires in a tight loop cannot starve
   one that was already queued. Without this, the sliding-window sender's
   receive pump never gets the CPU between back-to-back sends and every ack
   overruns the interface. *)
let acquire t =
  if t.available > 0 && Waitq.waiters t.waiters = 0 then take t
  else
    (* Ownership is transferred by the releaser; when the wait returns this
       process holds a unit already accounted as taken. *)
    Waitq.wait t.waiters

let try_acquire t =
  if t.available > 0 && Waitq.waiters t.waiters = 0 then begin
    take t;
    true
  end
  else false

let release t =
  if Waitq.waiters t.waiters > 0 then
    (* Hand off: [available] stays decremented on behalf of the new owner. *)
    Waitq.signal t.waiters
  else begin
    if t.available >= t.capacity then invalid_arg "Resource.release: not held";
    t.available <- t.available + 1;
    note_busy_stop t (Sim.now (Proc.current_sim ()))
  end

let with_resource t f =
  acquire t;
  match f () with
  | result ->
      release t;
      result
  | exception exn ->
      release t;
      raise exn

let available t = t.available
let capacity t = t.capacity

let busy_span t ~now =
  match t.busy_since with
  | None -> t.busy_total
  | Some since -> Time.span_add t.busy_total (Time.diff now since)
