(** Bounded FIFO mailboxes between processes.

    Models a NIC's receive buffering: arriving frames occupy a slot until the
    host CPU copies them out; an arrival finding every slot occupied is
    dropped by the caller (interface overrun) — {!try_put} reports this. *)

type 'a t

val create : capacity:int -> 'a t
(** Requires [capacity > 0]. *)

val try_put : 'a t -> 'a -> bool
(** Non-blocking enqueue from any context (also outside processes);
    [false] when full. *)

val get : 'a t -> 'a
(** Blocks the calling process until an item is available (FIFO wake-up).
    The slot is freed immediately on return; model any copy-out latency
    before calling {!free}-style accounting yourself if the slot must stay
    occupied — see {!peek}/{!remove} for that pattern. *)

val peek : 'a t -> 'a
(** Blocks until an item is available and returns it WITHOUT freeing the
    slot; the item stays at the head. Use with {!remove} to model a buffer
    that remains occupied while the host copies the frame out. *)

val remove : 'a t -> unit
(** Drops the head item, freeing its slot. Raises [Invalid_argument] when
    empty. *)

val length : 'a t -> int
val capacity : 'a t -> int
val is_empty : 'a t -> bool
