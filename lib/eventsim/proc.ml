exception Not_in_process

type env = { sim : Sim.t }

type _ Effect.t +=
  | Sleep : Time.span -> unit Effect.t
  | Suspend : ((unit -> unit) -> unit) -> unit Effect.t
  | Current_sim : Sim.t Effect.t

(* The environment carries no state beyond the sim itself, so there is
   nothing to memoize: allocating one per call keeps this module free of
   global mutable state (the previous module-level table was both a leak —
   sims were never evicted — and a data race once simulations started
   running on concurrent domains). *)
let env sim = { sim }

let run_body e body =
  let open Effect.Deep in
  match_with body ()
    {
      retc = (fun () -> ());
      exnc = raise;
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Sleep span ->
              Some
                (fun (k : (a, unit) continuation) ->
                  ignore (Sim.schedule_after e.sim span (fun () -> continue k ())))
          | Suspend register ->
              Some
                (fun (k : (a, unit) continuation) ->
                  let resumed = ref false in
                  let resume () =
                    assert (not !resumed);
                    resumed := true;
                    (* Defer to a fresh event so a resume issued from inside
                       another process runs the woken process on its own
                       stack, at the same instant. *)
                    ignore (Sim.schedule_after e.sim Time.span_zero (fun () -> continue k ()))
                  in
                  register resume)
          | Current_sim -> Some (fun (k : (a, unit) continuation) -> continue k e.sim)
          | _ -> None);
    }

let spawn e ?name:_ body =
  ignore (Sim.schedule_after e.sim Time.span_zero (fun () -> run_body e body))

let in_process f = try f () with Effect.Unhandled _ -> raise Not_in_process
let sleep span = in_process (fun () -> Effect.perform (Sleep span))
let suspend register = in_process (fun () -> Effect.perform (Suspend register))
let current_sim () = in_process (fun () -> Effect.perform Current_sim)
