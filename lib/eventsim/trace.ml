type span = { lane : string; kind : string; start : Time.t; stop : Time.t }
type t = { mutable spans : span list; mutable enabled : bool }

let create () = { spans = []; enabled = true }
let enabled t = t.enabled
let set_enabled t flag = t.enabled <- flag

let record t ~lane ~kind ~start ~stop =
  if Time.( < ) stop start then invalid_arg "Trace.record: stop before start";
  if t.enabled then t.spans <- { lane; kind; start; stop } :: t.spans

let spans t = List.rev t.spans
let clear t = t.spans <- []

let total_by_kind t =
  let table = Hashtbl.create 16 in
  List.iter
    (fun s ->
      let duration = Time.diff s.stop s.start in
      let current = Option.value ~default:Time.span_zero (Hashtbl.find_opt table s.kind) in
      Hashtbl.replace table s.kind (Time.span_add current duration))
    t.spans;
  Hashtbl.fold (fun kind total acc -> (kind, total) :: acc) table []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let lanes t =
  let seen = Hashtbl.create 8 in
  List.filter_map
    (fun s ->
      if Hashtbl.mem seen s.lane then None
      else begin
        Hashtbl.add seen s.lane ();
        Some s.lane
      end)
    (spans t)

let end_time t =
  List.fold_left (fun acc s -> if Time.( < ) acc s.stop then s.stop else acc) Time.zero t.spans
