(** Simulated time.

    Time is an integer count of nanoseconds since the start of the
    simulation. 63-bit nanoseconds cover ~292 years, far beyond any
    experiment here, while keeping arithmetic exact — the error-free
    elapsed-time tests require the simulator to match the paper's closed-form
    formulas to the nanosecond. *)

type t = private int
(** An absolute instant, in nanoseconds. Totally ordered. *)

type span = private int
(** A duration, in nanoseconds. May be zero, never negative. *)

val zero : t
val of_ns : int -> t
val to_ns : t -> int

val span_ns : int -> span
val span_us : float -> span
val span_ms : float -> span
(** Durations from nanoseconds / microseconds / milliseconds. Fractional
    micro/milliseconds are rounded to the nearest nanosecond. Negative inputs
    raise [Invalid_argument]. *)

val span_zero : span
val span_to_ns : span -> int
val span_to_us : span -> float
val span_to_ms : span -> float

val add : t -> span -> t
val diff : t -> t -> span
(** [diff later earlier]; raises [Invalid_argument] if [later < earlier]. *)

val span_add : span -> span -> span
val span_sub : span -> span -> span
(** Raises [Invalid_argument] if the result would be negative. *)

val span_scale : int -> span -> span
val span_max : span -> span -> span
val span_min : span -> span -> span

val compare : t -> t -> int
val ( <= ) : t -> t -> bool
val ( < ) : t -> t -> bool

val to_ms : t -> float
val to_us : t -> float

val pp : Format.formatter -> t -> unit
val pp_span : Format.formatter -> span -> unit
