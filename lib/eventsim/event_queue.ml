type 'a entry = { time : Time.t; seq : int; payload : 'a }

type 'a t = {
  mutable heap : 'a entry array;
  mutable size : int;
  mutable next_seq : int;
  mutable dummy : 'a entry option; (* first-ever entry, reused as filler *)
}

let create () = { heap = [||]; size = 0; next_seq = 0; dummy = None }

let entry_before a b =
  match Time.compare a.time b.time with 0 -> a.seq < b.seq | c -> c < 0

let grow t entry =
  let capacity = Array.length t.heap in
  if t.size = capacity then begin
    let fresh = Array.make (Stdlib.max 16 (2 * capacity)) entry in
    Array.blit t.heap 0 fresh 0 t.size;
    t.heap <- fresh
  end

let rec sift_up heap i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if entry_before heap.(i) heap.(parent) then begin
      let tmp = heap.(i) in
      heap.(i) <- heap.(parent);
      heap.(parent) <- tmp;
      sift_up heap parent
    end
  end

let rec sift_down heap size i =
  let left = (2 * i) + 1 in
  if left < size then begin
    let smallest = if entry_before heap.(left) heap.(i) then left else i in
    let right = left + 1 in
    let smallest =
      if right < size && entry_before heap.(right) heap.(smallest) then right else smallest
    in
    if smallest <> i then begin
      let tmp = heap.(i) in
      heap.(i) <- heap.(smallest);
      heap.(smallest) <- tmp;
      sift_down heap size smallest
    end
  end

let push t ~time payload =
  let entry = { time; seq = t.next_seq; payload } in
  t.next_seq <- t.next_seq + 1;
  if t.dummy = None then t.dummy <- Some entry;
  grow t entry;
  t.heap.(t.size) <- entry;
  t.size <- t.size + 1;
  sift_up t.heap (t.size - 1)

let pop t =
  if t.size = 0 then None
  else begin
    let top = t.heap.(0) in
    t.size <- t.size - 1;
    t.heap.(0) <- t.heap.(t.size);
    (match t.dummy with Some d -> t.heap.(t.size) <- d | None -> ());
    sift_down t.heap t.size 0;
    Some (top.time, top.payload)
  end

let peek_time t = if t.size = 0 then None else Some t.heap.(0).time
let length t = t.size
let is_empty t = t.size = 0

let clear t =
  (match t.dummy with
  | Some d -> Array.fill t.heap 0 t.size d
  | None -> ());
  t.size <- 0
