(** The complete public API of the reproduction, under one roof.

    {2 Substrates}

    - {!Stats}: deterministic randomness and descriptive statistics
    - {!Eventsim}: the discrete-event kernel and its process layer
    - {!Netmodel}: the simulated hardware (stations, wire, error models)
    - {!Packet}: the wire format

    {2 The paper's contribution}

    - {!Protocol}: the protocol family as transport-agnostic machines
    - {!Analysis}: the closed-form performance model
    - {!Montecarlo}: strategy simulation under loss

    {2 Systems built on top}

    - {!Simnet}: transfers over the simulated LAN
    - {!Sockets}: the same machines over real UDP
    - {!Server}: many concurrent transfers multiplexed over one socket
    - {!Vkernel}: MoveTo/MoveFrom and Send/Receive/Reply IPC
    - {!Workload}, {!Report}, {!Experiments}: experiment plumbing *)

module Stats = Stats
module Eventsim = Eventsim
module Netmodel = Netmodel
module Packet = Packet
module Protocol = Protocol
module Simnet = Simnet
module Analysis = Analysis
module Montecarlo = Montecarlo
module Sockets = Sockets
module Server = Server
module Vkernel = Vkernel
module Workload = Workload
module Report = Report
module Experiments = Experiments
